// Package omega is a reproduction of "Heterogeneous Memory Subsystem for
// Natural Graph Analytics" (Addisie, Kassa, Matthews, Bertacco — IISWC
// 2018): the OMEGA architecture — per-core scratchpads holding the
// most-connected vertices of a power-law graph, with Processing-In-
// SCratchpad (PISC) engines executing offloaded atomic updates — built as
// an execution-driven architectural simulator plus a Ligra-style
// vertex-centric graph framework.
//
// The package is a facade over the internal packages: it exposes graph
// construction, machine configuration, the framework, the eight paper
// algorithms, and the experiment harness behind a compact API. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Quick start:
//
//	g := omega.RMAT(14, 42)                     // power-law graph
//	g = omega.ReorderByInDegree(g)              // §VI static placement
//	cmp, _ := omega.Compare("PageRank", g, 0.20)
//	fmt.Printf("OMEGA speedup: %.2fx\n", cmp.Speedup())
package omega

import (
	"context"
	"fmt"
	"io"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/experiments"
	"omega/internal/graph"
	"omega/internal/graph/datasets"
	"omega/internal/graph/gen"
	"omega/internal/graph/gio"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
	"omega/internal/obs"
	"omega/internal/power"
)

// Re-exported primary types.
type (
	// Graph is a CSR graph with both edge directions.
	Graph = graph.Graph
	// Edge is a directed, optionally weighted arc.
	Edge = graph.Edge
	// DegreeStats is the Table I characterization of a graph.
	DegreeStats = graph.DegreeStats
	// Machine is one simulated system (baseline CMP or OMEGA).
	Machine = core.Machine
	// MachineConfig parameterizes a machine (Table III).
	MachineConfig = core.Config
	// MachineStats is the statistical snapshot of a finished run.
	MachineStats = core.MachineStats
	// Framework is the Ligra-style vertex-centric framework bound to a
	// machine and a graph.
	Framework = ligra.Framework
	// AlgorithmSpec is the Table II characterization plus a run entry
	// point.
	AlgorithmSpec = algorithms.Spec
	// EnergyBreakdown is the Figure 21 memory-system energy result.
	EnergyBreakdown = power.EnergyBreakdown
	// ExperimentTable is a formatted experiment result.
	ExperimentTable = experiments.Table
	// ExperimentOptions configures the experiment harness.
	ExperimentOptions = experiments.Options
	// DatasetCache memoizes deterministic graph construction; share one
	// via ExperimentOptions.Datasets to amortize generation across runs.
	DatasetCache = datasets.Cache
	// CellCache memoizes complete simulation cells — (machine config,
	// dataset, workload) triples — with singleflight dedup; share one via
	// ExperimentOptions.Cells to skip re-simulating identical cells across
	// experiments and repeated runs.
	CellCache = experiments.CellCache

	// Sink receives metric samples — the one instrumentation surface of
	// the simulator. Attach one with Machine.AttachSink (or set
	// ExperimentOptions.Metrics for harness runs) to stream per-iteration
	// telemetry; see internal/obs for the registry model and the optional
	// per-access / per-span extension interfaces. Prefer this over
	// post-hoc poking at Machine.LevelProfile maps: sinks see every
	// iteration, carry stable component × name × level addresses, and
	// cost nothing when detached.
	Sink = obs.Sink
	// MetricSample is one observed metric value (component × name ×
	// level, cumulative, emitted at iteration boundaries).
	MetricSample = obs.MetricSample
	// MetricsBuffer is a thread-safe in-memory Sink for programmatic
	// consumption (NewMetricsBuffer).
	MetricsBuffer = obs.Buffer
)

// NewMetricsBuffer returns an empty in-memory metrics sink. Attach it to
// a Machine (or ExperimentOptions.Metrics) and read the samples back
// with its Samples/Drain methods.
func NewMetricsBuffer() *MetricsBuffer { return obs.NewBuffer() }

// NewDatasetCache returns an empty dataset cache.
func NewDatasetCache() *DatasetCache { return datasets.New() }

// NewCellCache returns an empty simulation-cell cache.
func NewCellCache() *CellCache { return experiments.NewCellCache() }

// RMAT generates a power-law R-MAT graph with 2^scale vertices.
func RMAT(scale int, seed uint64) *Graph {
	return gen.RMAT(gen.DefaultRMAT(scale, seed))
}

// SocialGraph generates a preferential-attachment graph with back edges,
// a stand-in for social datasets like lj/orkut.
func SocialGraph(numVertices int, seed uint64) *Graph {
	return gen.BarabasiAlbert(gen.BAConfig{
		NumVertices:      numVertices,
		EdgesPerVertex:   12,
		Seed:             seed,
		BackEdgeFraction: 0.3,
	})
}

// RoadGraph generates a planar road-network-like graph (non-power-law),
// a stand-in for roadNet-CA/PA and Western-USA.
func RoadGraph(side int, seed uint64) *Graph {
	return gen.RoadGrid(gen.RoadConfig{Side: side, ExtraFraction: 0.1, Seed: seed})
}

// LoadEdgeList reads a SNAP-style edge list.
func LoadEdgeList(r io.Reader, undirected bool, name string) (*Graph, error) {
	return gio.LoadEdgeList(r, undirected, name)
}

// ReorderByInDegree relabels a graph so vertex 0 is the most-connected —
// OMEGA's offline preprocessing (paper §VI).
func ReorderByInDegree(g *Graph) *Graph {
	return reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
}

// Characterize computes the Table I statistics of a graph.
func Characterize(g *Graph) DegreeStats { return graph.ComputeDegreeStats(g) }

// BaselineConfig returns the Table III baseline CMP.
func BaselineConfig() MachineConfig { return core.Baseline() }

// OMEGAConfig returns the Table III OMEGA machine.
func OMEGAConfig() MachineConfig { return core.OMEGA() }

// ScaledConfigs returns a same-total-storage (baseline, OMEGA) pair sized
// so the scratchpads hold `coverage` of the graph's vtxProp (DESIGN.md §3).
func ScaledConfigs(g *Graph, vtxPropBytes int, coverage float64) (MachineConfig, MachineConfig) {
	return core.ScaledPair(g.NumVertices(), vtxPropBytes, coverage)
}

// NewMachine builds a machine from a configuration.
func NewMachine(cfg MachineConfig) *Machine { return core.NewMachine(cfg) }

// NewFramework binds a graph to a machine.
func NewFramework(m *Machine, g *Graph) *Framework { return ligra.New(m, g) }

// Algorithms returns the eight paper algorithms in Table II order.
func Algorithms() []AlgorithmSpec { return algorithms.All() }

// AlgorithmByName resolves an algorithm ("PageRank", "BFS", "SSSP", "BC",
// "Radii", "CC", "TC", "KC").
func AlgorithmByName(name string) (AlgorithmSpec, bool) {
	return algorithms.ByName(name)
}

// Comparison is the outcome of running one algorithm on both machines.
type Comparison struct {
	// Baseline and OMEGA hold each machine's run statistics.
	Baseline, OMEGA MachineStats
	// BaselineEnergy and OMEGAEnergy hold the Figure 21 energy models.
	BaselineEnergy, OMEGAEnergy EnergyBreakdown

	// samples holds both runs' per-iteration metric series (Series).
	samples []MetricSample
}

// Series returns the per-iteration metric samples of both runs, sorted
// canonically (baseline before omega by machine name, then iteration,
// then metric address). This is the supported way to see inside a
// comparison — per-level hit rates, NoC bytes, offloads, frontier sizes
// per iteration — without attaching a custom Sink.
func (c Comparison) Series() []MetricSample {
	return append([]MetricSample(nil), c.samples...)
}

// Speedup returns OMEGA's speedup over the baseline.
func (c Comparison) Speedup() float64 { return c.OMEGA.Speedup(c.Baseline) }

// EnergySaving returns OMEGA's energy saving factor.
func (c Comparison) EnergySaving() float64 {
	return c.OMEGAEnergy.Saving(c.BaselineEnergy)
}

// TrafficReduction returns the on-chip traffic reduction factor.
func (c Comparison) TrafficReduction() float64 {
	if c.OMEGA.NoCBytes == 0 {
		return 0
	}
	return float64(c.Baseline.NoCBytes) / float64(c.OMEGA.NoCBytes)
}

// Compare runs one algorithm on a scaled baseline/OMEGA machine pair over
// g and returns the paired results. The graph should already be reordered
// by in-degree (ReorderByInDegree); coverage is the scratchpad sizing
// fraction (0.20 in the paper).
func Compare(algorithm string, g *Graph, coverage float64) (Comparison, error) {
	spec, ok := algorithms.ByName(algorithm)
	if !ok {
		return Comparison{}, fmt.Errorf("omega: unknown algorithm %q", algorithm)
	}
	if spec.NeedsUndirected && !g.Undirected {
		return Comparison{}, fmt.Errorf("omega: %s requires an undirected graph", algorithm)
	}
	baseCfg, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, coverage)
	var c Comparison
	buf := obs.NewBuffer()
	mb := core.NewMachine(baseCfg)
	mb.AttachSink(buf)
	c.Baseline = spec.Run(ligra.New(mb, g))
	mo := core.NewMachine(omCfg)
	mo.AttachSink(buf)
	c.OMEGA = spec.Run(ligra.New(mo, g))
	c.BaselineEnergy = power.Energy(baseCfg, c.Baseline)
	c.OMEGAEnergy = power.Energy(omCfg, c.OMEGA)
	c.samples = buf.Drain()
	obs.SortSamples(c.samples)
	return c, nil
}

// RunExperiment regenerates one paper artifact by ID ("Table I",
// "Figure 14", "Ablation A1", ...). See DESIGN.md §4 for the index. It is
// a convenience wrapper over RunExperimentContext with a background
// context.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return RunExperimentContext(context.Background(), id, opts)
}

// RunExperimentContext regenerates one paper artifact by ID under ctx:
// the runner executes with panic recovery and, when opts.Timeout is set,
// a watchdog, so a broken experiment returns a Failed table rather than
// tearing the caller down. The ID set is experiments.Registry() — the
// same single source that drives ExperimentIDs, RunSuite, and
// cmd/omega-bench — so the facade cannot drift from the registry.
func RunExperimentContext(ctx context.Context, id string, opts ExperimentOptions) (*ExperimentTable, error) {
	spec, ok := experiments.SpecByID(id)
	if !ok {
		return nil, fmt.Errorf("omega: unknown experiment %q", id)
	}
	return experiments.RunSafe(ctx, spec, opts, opts.Timeout), nil
}

// RunSuite regenerates every registered artifact across a bounded worker
// pool (opts.Parallelism; zero = GOMAXPROCS) with a shared deterministic
// dataset cache, returning the tables in registry order plus a telemetry
// summary table (per-experiment wall time, cache hits/misses, peak
// goroutines). Parallel, sequential, and cached runs produce identical
// experiment tables; only the summary varies with timing.
func RunSuite(ctx context.Context, opts ExperimentOptions) ([]*ExperimentTable, *ExperimentTable) {
	res := experiments.Suite(ctx, experiments.Registry(), opts, nil)
	return res.Tables, res.Summary
}

// ExperimentIDs lists the runnable experiment IDs in DESIGN.md §4 order,
// derived from experiments.Registry().
func ExperimentIDs() []string {
	specs := experiments.Registry()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}
