package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Timeline collects activity spans and renders them in the Chrome Trace
// Event JSON format (chrome://tracing, Perfetto): one process per
// machine, one thread per core, simulated cycles mapped 1:1 onto trace
// microseconds. It is safe for concurrent use, so one timeline can serve
// several machines running on separate goroutines; rendering sorts the
// spans canonically, keeping the output deterministic regardless of
// interleaving.
//
// Timeline is a samples-agnostic SpanSink: metric samples are dropped,
// so it composes with a series writer via Tee without duplicating data.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Sample implements Sink (dropped; the timeline renders spans only).
func (t *Timeline) Sample(MetricSample) {}

// Span implements SpanSink.
func (t *Timeline) Span(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of collected spans.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// traceEvent is one Chrome Trace Event ("X" = complete span, "M" =
// metadata).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the collected spans as a Chrome Trace Event
// JSON document.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Name < b.Name
	})

	// One trace process per machine, numbered in name order.
	pids := map[string]int{}
	var names []string
	for _, s := range spans {
		if _, ok := pids[s.Machine]; !ok {
			pids[s.Machine] = 0
			names = append(names, s.Machine)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		pids[n] = i + 1
	}

	events := make([]traceEvent, 0, len(spans)+len(names))
	for _, n := range names {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pids[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		events = append(events, traceEvent{
			Name: s.Name, Ph: "X",
			Ts: uint64(s.Start), Dur: uint64(s.End - s.Start),
			Pid: pids[s.Machine], Tid: s.Core,
		})
	}
	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		TimeUnit    string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
