package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"omega/internal/memsys"
)

func TestRegistryOrderAndReplace(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("cache", "read_hits", "L1", func() uint64 { return 1 })
	r.RegisterCounter("dram", "accesses", "", func() uint64 { return 2 })
	r.RegisterCounter("cache", "read_hits", "L1", func() uint64 { return 7 }) // replace
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replace must not duplicate)", r.Len())
	}
	var order []string
	r.Each(func(d Desc) { order = append(order, d.Component+"."+d.Name) })
	if order[0] != "cache.read_hits" || order[1] != "dram.accesses" {
		t.Fatalf("registration order not preserved: %v", order)
	}
	if v, ok := r.Value("cache", "read_hits", "L1"); !ok || v != 7 {
		t.Fatalf("Value after replace = %d,%v, want 7,true (latest wins)", v, ok)
	}
	if got := r.Get("nope", "missing", ""); got != 0 {
		t.Fatalf("Get(unregistered) = %d, want 0", got)
	}
}

func TestRegistryEmitSuppressesZeros(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("a", "nonzero", "", func() uint64 { return 5 })
	r.RegisterCounter("a", "zero", "", func() uint64 { return 0 })
	r.RegisterGauge("b", "gauge", "L2+", func() uint64 { return 9 })
	b := NewBuffer()
	r.Emit(b, "omega", 3)
	got := b.Samples()
	if len(got) != 2 {
		t.Fatalf("emitted %d samples, want 2 (zero suppressed): %+v", len(got), got)
	}
	want0 := MetricSample{Machine: "omega", Iteration: 3, Component: "a", Name: "nonzero", Value: 5}
	if got[0] != want0 {
		t.Fatalf("sample[0] = %+v, want %+v", got[0], want0)
	}
	if got[1].Level != "L2+" || got[1].Value != 9 {
		t.Fatalf("sample[1] = %+v", got[1])
	}
	// Nil sink must be a no-op, not a panic.
	r.Emit(nil, "omega", 4)
}

func TestRegistryEmitHistogramBuckets(t *testing.T) {
	h := HistSnapshot{Bounds: []uint64{1, 4, 16}, Counts: []uint64{2, 0, 3, 1}}
	r := NewRegistry()
	r.RegisterHistogram("dram", "latency", "", func() HistSnapshot { return h })
	b := NewBuffer()
	r.Emit(b, "m", 1)
	got := b.Samples()
	names := make([]string, len(got))
	for i, s := range got {
		names[i] = s.Name
	}
	want := []string{"latency_le_1", "latency_le_16", "latency_le_inf"}
	if len(got) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("histogram buckets = %v, want %v", names, want)
	}
	if got[0].Value != 2 || got[1].Value != 3 || got[2].Value != 1 {
		t.Fatalf("bucket values wrong: %+v", got)
	}
}

func TestSortSamplesIsTotalOrder(t *testing.T) {
	mk := func(exp, run, m string, it uint64, comp, name, lvl string, v uint64) MetricSample {
		return MetricSample{Experiment: exp, Run: run, Machine: m, Iteration: it,
			Component: comp, Name: name, Level: lvl, Value: v}
	}
	base := []MetricSample{
		mk("F3", "rmat", "omega", 2, "noc", "bytes", "line", 10),
		mk("F3", "rmat", "omega", 1, "noc", "bytes", "line", 4),
		mk("F3", "rmat", "baseline", 1, "noc", "bytes", "line", 6),
		mk("F3", "amazon", "omega", 1, "cache", "read_hits", "L1", 3),
		mk("F2", "rmat", "omega", 1, "noc", "bytes", "ctrl", 1),
		mk("F3", "rmat", "omega", 1, "noc", "bytes", "ctrl", 2),
	}
	want := append([]MetricSample(nil), base...)
	SortSamples(want)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		s := append([]MetricSample(nil), base...)
		rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		SortSamples(s)
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("trial %d: sort not canonical at %d: %+v != %+v", trial, i, s[i], want[i])
			}
		}
	}
}

func TestBufferDrain(t *testing.T) {
	b := NewBuffer()
	b.Sample(MetricSample{Machine: "m", Component: "c", Name: "n", Value: 1})
	b.Sample(MetricSample{Machine: "m", Component: "c", Name: "n", Value: 2})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	s := b.Drain()
	if len(s) != 2 || b.Len() != 0 {
		t.Fatalf("Drain returned %d, left %d", len(s), b.Len())
	}
}

func TestWithRunStampsSamples(t *testing.T) {
	b := NewBuffer()
	s := WithRun(b, "pagerank/rmat")
	s.Sample(MetricSample{Machine: "omega", Component: "c", Name: "n", Value: 1})
	got := b.Samples()
	if got[0].Run != "pagerank/rmat" {
		t.Fatalf("Run = %q, want pagerank/rmat", got[0].Run)
	}
	// WithRun deliberately narrows to the base Sink interface.
	if _, ok := s.(AccessSink); ok {
		t.Fatal("WithRun must not forward the per-access extension")
	}
	if _, ok := s.(SpanSink); ok {
		t.Fatal("WithRun must not forward the span extension")
	}
}

// sinkOnly is a bare Sink for capability tests.
type sinkOnly struct{ n int }

func (s *sinkOnly) Sample(MetricSample) { s.n++ }

// accessRec counts access events.
type accessRec struct {
	sinkOnly
	acc int
}

func (a *accessRec) Access(memsys.Cycles, memsys.Access, memsys.Result) { a.acc++ }

func TestTeeCapabilityPreservation(t *testing.T) {
	plain := &sinkOnly{}
	tl := NewTimeline()
	ar := &accessRec{}

	// Plain-only tee must not claim extensions.
	tp := Tee(plain, nil)
	if _, ok := tp.(AccessSink); ok {
		t.Fatal("tee of plain sinks must not implement AccessSink")
	}
	if _, ok := tp.(SpanSink); ok {
		t.Fatal("tee of plain sinks must not implement SpanSink")
	}

	// Mixed tee forwards each event class to the capable children only.
	tm := Tee(plain, tl, ar)
	tm.Sample(MetricSample{Machine: "m", Component: "c", Name: "n", Value: 1})
	tm.(AccessSink).Access(0, memsys.Access{}, memsys.Result{})
	tm.(SpanSink).Span(Span{Machine: "m", Core: 0, Name: "parallel", Start: 0, End: 5})
	if plain.n != 1 || ar.n != 1 {
		t.Fatalf("samples fanned out wrong: plain=%d ar=%d", plain.n, ar.n)
	}
	if ar.acc != 1 {
		t.Fatalf("access events = %d, want 1", ar.acc)
	}
	if tl.Len() != 1 {
		t.Fatalf("spans = %d, want 1", tl.Len())
	}
}

func TestJSONLWriterAndValidate(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Sample(MetricSample{Experiment: "Figure 3", Machine: "omega", Iteration: 1,
		Component: "noc", Name: "bytes", Level: "line", Value: 640})
	w.Sample(MetricSample{Machine: "baseline", Iteration: 2,
		Component: "cache", Name: "read_hits", Level: "L1", Value: 12})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var round MetricSample
	if err := json.Unmarshal([]byte(lines[0]), &round); err != nil {
		t.Fatal(err)
	}
	if round.Experiment != "Figure 3" || round.Value != 640 {
		t.Fatalf("round trip = %+v", round)
	}
	rep, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 2 || rep.Machines != 2 || rep.Components != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestValidateJSONLRejectsBadSample(t *testing.T) {
	bad := `{"machine":"m","iteration":1,"component":"","name":"x","value":1}` + "\n"
	if _, err := ValidateJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("expected validation error for empty component")
	}
	if _, err := ValidateJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTSVWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSVWriter(&buf)
	w.Sample(MetricSample{Experiment: "Table II", Run: "rmat", Machine: "omega",
		Iteration: 1, Component: "dram", Name: "accesses", Value: 99})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := tsvHeader + "\n" + "Table II\trmat\tomega\t1\tdram\taccesses\t\t99\n"
	if buf.String() != want {
		t.Fatalf("tsv = %q, want %q", buf.String(), want)
	}

	// Empty series still yields the header.
	var empty bytes.Buffer
	we := NewTSVWriter(&empty)
	if err := we.Flush(); err != nil {
		t.Fatal(err)
	}
	if empty.String() != tsvHeader+"\n" {
		t.Fatalf("empty tsv = %q", empty.String())
	}
}

func TestTimelineChromeTrace(t *testing.T) {
	tl := NewTimeline()
	tl.Span(Span{Machine: "omega", Core: 1, Name: "parallel", Start: 10, End: 30})
	tl.Span(Span{Machine: "baseline", Core: 0, Name: "parallel", Start: 0, End: 8})
	tl.Span(Span{Machine: "omega", Core: 0, Name: "sequential", Start: 2, End: 4})
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 2 process_name metadata + 3 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[1].Ph != "M" {
		t.Fatalf("metadata events must lead: %+v", doc.TraceEvents[:2])
	}
	// baseline sorts before omega → pid 1; its span precedes omega's.
	sp := doc.TraceEvents[2]
	if sp.Pid != 1 || sp.Ts != 0 || sp.Dur != 8 {
		t.Fatalf("first span = %+v, want baseline pid 1 ts 0 dur 8", sp)
	}
}

func TestAccessAgg(t *testing.T) {
	var g AccessAgg
	a := memsys.Access{Kind: memsys.KindVtxProp}
	g.Observe(a, memsys.Result{Latency: 3, Level: memsys.LevelL1})
	g.Observe(a, memsys.Result{Latency: 5, Level: memsys.LevelL1})
	g.Observe(memsys.Access{Kind: memsys.KindEdgeList}, memsys.Result{Latency: 100, Level: memsys.LevelL2Plus})
	c := g.Cell(memsys.KindVtxProp, memsys.LevelL1)
	if c.Count != 2 || c.Latency != 8 {
		t.Fatalf("cell = %+v, want count 2 latency 8", c)
	}
	if avg := c.AvgLatency(); avg != 4 {
		t.Fatalf("avg = %v, want 4", avg)
	}
	if q := g.Quantile(memsys.KindEdgeList, 0.5); q < 100 {
		t.Fatalf("p50 = %d, want >= 100", q)
	}
	if q := g.Quantile(memsys.KindNGraphData, 0.5); q != 0 {
		t.Fatalf("unobserved kind quantile = %d, want 0", q)
	}
	hs := g.HistSnapshot(memsys.KindVtxProp)
	var n uint64
	for _, c := range hs.Counts {
		n += c
	}
	if n != 2 {
		t.Fatalf("hist total = %d, want 2", n)
	}
}
