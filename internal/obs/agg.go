package obs

import (
	"omega/internal/memsys"
	"omega/internal/stats"
)

// AccessAgg aggregates a per-access event stream into dense
// (kind × level) count/latency cells plus a per-kind latency histogram —
// the standard reduction behind trace summaries and ad-hoc studies.
// Indexing dense enum arrays keeps Observe allocation-free after the
// first access of each kind.
type AccessAgg struct {
	cells [memsys.NumKinds][memsys.NumLevels]AggCell
	hist  [memsys.NumKinds]*stats.Histogram
}

// AggCell is one (kind, level) aggregate.
type AggCell struct {
	// Count is the number of accesses served.
	Count uint64
	// Latency is the summed completion latency in cycles.
	Latency uint64
}

// AvgLatency returns Latency/Count, or 0 when empty.
func (c AggCell) AvgLatency() float64 {
	if c.Count == 0 {
		return 0
	}
	return float64(c.Latency) / float64(c.Count)
}

// Observe folds one access into the aggregate.
func (g *AccessAgg) Observe(a memsys.Access, r memsys.Result) {
	c := &g.cells[a.Kind][r.Level]
	c.Count++
	c.Latency += uint64(r.Latency)
	h := g.hist[a.Kind]
	if h == nil {
		h = stats.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
		g.hist[a.Kind] = h
	}
	h.Observe(uint64(r.Latency))
}

// Cell reads one (kind, level) aggregate.
func (g *AccessAgg) Cell(k memsys.Kind, l memsys.Level) AggCell {
	return g.cells[k][l]
}

// Quantile returns the q-quantile latency estimate for one access kind
// (0 when the kind was never observed).
func (g *AccessAgg) Quantile(k memsys.Kind, q float64) uint64 {
	h := g.hist[k]
	if h == nil {
		return 0
	}
	return h.Quantile(q)
}

// HistSnapshot reads one kind's latency histogram (empty when the kind
// was never observed).
func (g *AccessAgg) HistSnapshot(k memsys.Kind) HistSnapshot {
	h := g.hist[k]
	if h == nil {
		return HistSnapshot{}
	}
	bounds, counts := h.Buckets()
	return HistSnapshot{Bounds: bounds, Counts: counts}
}
