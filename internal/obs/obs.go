// Package obs is the simulator's unified observability layer: a typed
// metrics registry (counters / gauges / histograms keyed by component ×
// name × hierarchy level) and the Sink contract through which every
// consumer — per-iteration series emitters, the access tracer, span
// timelines, the experiment harness — receives telemetry.
//
// The design follows three rules (DESIGN.md §10):
//
//   - Observation never perturbs simulation. Registry metrics are
//     read-only closures over live component counters; emitting a sample
//     reads state, it never writes any.
//   - The disabled path is free. A machine with no sink attached pays one
//     nil check per hook site and allocates nothing (the zero-alloc
//     guards in core enforce this).
//   - Consumers opt into cost. The base Sink receives only iteration-
//     boundary samples; the per-access and per-span firehoses are
//     optional extension interfaces (AccessSink, SpanSink) detected once
//     at attach time, so a samples-only sink adds zero per-access work.
package obs

import (
	"strconv"

	"omega/internal/memsys"
)

// MetricSample is one observed metric value. Samples are emitted at
// iteration boundaries (and once more after the final partial iteration),
// carry cumulative values, and are addressed by component × name × level.
// Experiment and Run are harness-side labels stamped by wrappers
// (WithRun, the experiments harness); the machine itself fills only
// Machine, Iteration, and the metric address.
type MetricSample struct {
	// Experiment is the artifact ID ("Figure 14") when emitted through
	// the experiment harness, empty otherwise.
	Experiment string `json:"experiment,omitempty"`
	// Run labels the run within an experiment (dataset, algorithm/dataset,
	// sweep point), empty for direct machine attachment.
	Run string `json:"run,omitempty"`
	// Machine is the emitting machine's configuration name
	// ("baseline"/"omega"), or "harness" for harness-level samples.
	Machine string `json:"machine"`
	// Iteration is the algorithm iteration the sample closes (1-based;
	// iterations+1 marks the final end-of-run flush; 0 marks
	// harness-level samples).
	Iteration uint64 `json:"iteration"`
	// Component addresses the emitting component ("cache", "dram", "noc",
	// "scratchpad", "pisc", "machine", "sched", ...).
	Component string `json:"component"`
	// Name is the metric name within the component.
	Name string `json:"name"`
	// Level is the hierarchy level / traffic class / access kind the
	// metric is keyed by, empty for component-global metrics.
	Level string `json:"level,omitempty"`
	// Value is the cumulative metric value. Zero-valued samples are
	// suppressed at emission: absence means zero.
	Value uint64 `json:"value"`
}

// Sink receives metric samples. Implementations attached to machines
// driven by concurrent goroutines (the experiment harness's variant
// fan-out) must be safe for concurrent use; Buffer is.
type Sink interface {
	Sample(MetricSample)
}

// AccessSink is the optional per-access extension of Sink: a sink that
// also implements it receives every simulated access with its timing
// outcome (the trace.Collector firehose). Machines resolve the interface
// once at AttachSink time, so plain sinks pay nothing per access.
type AccessSink interface {
	Sink
	Access(now memsys.Cycles, a memsys.Access, r memsys.Result)
}

// SpanSink is the optional activity-span extension of Sink: a sink that
// also implements it receives one Span per core per parallel/sequential
// region (the chrome://tracing timeline source).
type SpanSink interface {
	Sink
	Span(Span)
}

// Span is one core's activity inside one scheduled region, in simulated
// cycles. Start/End are the core's local clock entering and leaving the
// region (before the end-of-region barrier aligns clocks).
type Span struct {
	// Machine is the emitting machine's configuration name.
	Machine string
	// Core is the simulated core ID.
	Core int
	// Name labels the region ("parallel", "sequential").
	Name string
	// Start and End bound the activity.
	Start, End memsys.Cycles
}

// MetricKind types a registry entry.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing cumulative count.
	KindCounter MetricKind = iota
	// KindGauge is an instantaneous value (occupancy, residency).
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "metric"
}

// HistSnapshot is a histogram read-out: Counts[i] is the number of
// samples in (Bounds[i-1], Bounds[i]]; the last count is the overflow
// bucket.
type HistSnapshot struct {
	Bounds []uint64
	Counts []uint64
}

// Desc describes one registered metric. Read (counters, gauges) or Hist
// (histograms) is a closure over the owning component's live state, so a
// registry is a view: it can never disagree with the counters the rest
// of the system reads directly.
type Desc struct {
	Component string
	Name      string
	Level     string
	Kind      MetricKind
	Read      func() uint64
	Hist      func() HistSnapshot
}

type metricKey struct {
	component, name, level string
}

// Registry is an ordered collection of metric descriptors. Registration
// order is emission order (deterministic for deterministically built
// machines); re-registering an existing (component, name, level) replaces
// the descriptor in place (latest wins), so a framework re-binding to a
// machine refreshes its gauges instead of duplicating them.
//
// A Registry is built and read by the single goroutine driving its
// machine; it is not safe for concurrent use.
type Registry struct {
	metrics []Desc
	index   map[metricKey]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[metricKey]int)}
}

// Register adds (or replaces) a descriptor.
func (r *Registry) Register(d Desc) {
	k := metricKey{d.Component, d.Name, d.Level}
	if i, ok := r.index[k]; ok {
		r.metrics[i] = d
		return
	}
	r.index[k] = len(r.metrics)
	r.metrics = append(r.metrics, d)
}

// RegisterCounter registers a cumulative counter read through fn.
func (r *Registry) RegisterCounter(component, name, level string, fn func() uint64) {
	r.Register(Desc{Component: component, Name: name, Level: level, Kind: KindCounter, Read: fn})
}

// RegisterGauge registers an instantaneous gauge read through fn.
func (r *Registry) RegisterGauge(component, name, level string, fn func() uint64) {
	r.Register(Desc{Component: component, Name: name, Level: level, Kind: KindGauge, Read: fn})
}

// RegisterHistogram registers a histogram read through fn.
func (r *Registry) RegisterHistogram(component, name, level string, fn func() HistSnapshot) {
	r.Register(Desc{Component: component, Name: name, Level: level, Kind: KindHistogram, Hist: fn})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Each visits every descriptor in registration order.
func (r *Registry) Each(fn func(Desc)) {
	for _, d := range r.metrics {
		fn(d)
	}
}

// Value reads one counter/gauge by address, reporting whether it is
// registered.
func (r *Registry) Value(component, name, level string) (uint64, bool) {
	i, ok := r.index[metricKey{component, name, level}]
	if !ok || r.metrics[i].Read == nil {
		return 0, false
	}
	return r.metrics[i].Read(), true
}

// Get is Value without the registration report: unregistered metrics
// read as zero. MachineStats is derived through Get, so a stats field
// whose probe was never registered is zero rather than stale.
func (r *Registry) Get(component, name, level string) uint64 {
	v, _ := r.Value(component, name, level)
	return v
}

// Emit reads every registered metric and sends the non-zero values to s
// as samples stamped with the given machine name and iteration.
// Histograms emit one sample per non-empty bucket, the bucket upper
// bound appended to the name ("latency_le_64"; "latency_le_inf" for the
// overflow bucket). Zero-valued samples are suppressed: absence means
// zero, and the emitted series stays proportional to activity.
func (r *Registry) Emit(s Sink, machine string, iteration uint64) {
	if s == nil {
		return
	}
	sample := MetricSample{Machine: machine, Iteration: iteration}
	for _, d := range r.metrics {
		sample.Component, sample.Name, sample.Level = d.Component, d.Name, d.Level
		if d.Kind == KindHistogram {
			if d.Hist == nil {
				continue
			}
			emitHist(s, sample, d.Hist())
			continue
		}
		if d.Read == nil {
			continue
		}
		if v := d.Read(); v != 0 {
			sample.Value = v
			s.Sample(sample)
		}
	}
}

func emitHist(s Sink, base MetricSample, h HistSnapshot) {
	name := base.Name
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if i < len(h.Bounds) {
			base.Name = name + "_le_" + strconv.FormatUint(h.Bounds[i], 10)
		} else {
			base.Name = name + "_le_inf"
		}
		base.Value = c
		s.Sample(base)
	}
}
