package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"omega/internal/memsys"
)

// Buffer is a thread-safe in-memory sink: machines driven by concurrent
// goroutines (the harness's variant fan-out) can share one. The harness
// drains it, sorts canonically, and replays into the user's sink, which
// is how parallel and sequential suite runs emit byte-identical series.
type Buffer struct {
	mu      sync.Mutex
	samples []MetricSample
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Sample implements Sink.
func (b *Buffer) Sample(s MetricSample) {
	b.mu.Lock()
	b.samples = append(b.samples, s)
	b.mu.Unlock()
}

// Len returns the number of buffered samples.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.samples)
}

// Drain returns the buffered samples and empties the buffer.
func (b *Buffer) Drain() []MetricSample {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.samples
	b.samples = nil
	return s
}

// Samples returns a copy of the buffered samples without draining.
func (b *Buffer) Samples() []MetricSample {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]MetricSample(nil), b.samples...)
}

// SortSamples orders samples by the full canonical tuple (Experiment,
// Run, Machine, Iteration, Component, Name, Level, Value). The order is
// total: two samples comparing equal are identical, so any goroutine
// interleaving of the same sample multiset sorts to the same sequence —
// the determinism contract of the parallel experiment harness.
func SortSamples(s []MetricSample) {
	sort.Slice(s, func(i, j int) bool {
		a, b := &s[i], &s[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Iteration != b.Iteration {
			return a.Iteration < b.Iteration
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		return a.Value < b.Value
	})
}

// runSink stamps a Run label on every sample. It deliberately forwards
// only MetricSamples: run labels address the sample series, and dropping
// the access/span extensions keeps a wrapped samples-only sink free of
// per-access dispatch.
type runSink struct {
	inner Sink
	run   string
}

// WithRun returns a sink that stamps run into every sample's Run field
// before forwarding to s. See runSink for why extensions are dropped.
func WithRun(s Sink, run string) Sink { return &runSink{inner: s, run: run} }

// Sample implements Sink.
func (w *runSink) Sample(s MetricSample) {
	s.Run = w.run
	w.inner.Sample(s)
}

// tee fans telemetry out to several sinks. Access and span events are
// forwarded only to the children that implement the extension.
type tee struct {
	sinks []Sink
	acc   []AccessSink
	span  []SpanSink
}

func (t *tee) Sample(s MetricSample) {
	for _, c := range t.sinks {
		c.Sample(s)
	}
}

type teeAccess struct{ tee }

func (t *teeAccess) Access(now memsys.Cycles, a memsys.Access, r memsys.Result) {
	for _, c := range t.acc {
		c.Access(now, a, r)
	}
}

type teeSpan struct{ tee }

func (t *teeSpan) Span(s Span) {
	for _, c := range t.span {
		c.Span(s)
	}
}

type teeAccessSpan struct{ tee }

func (t *teeAccessSpan) Access(now memsys.Cycles, a memsys.Access, r memsys.Result) {
	for _, c := range t.acc {
		c.Access(now, a, r)
	}
}

func (t *teeAccessSpan) Span(s Span) {
	for _, c := range t.span {
		c.Span(s)
	}
}

// Tee combines sinks into one. The returned sink implements AccessSink /
// SpanSink only when at least one child does, so teeing plain sinks does
// not opt a machine into the per-access firehose.
func Tee(sinks ...Sink) Sink {
	var t tee
	for _, s := range sinks {
		if s == nil {
			continue
		}
		t.sinks = append(t.sinks, s)
		if a, ok := s.(AccessSink); ok {
			t.acc = append(t.acc, a)
		}
		if sp, ok := s.(SpanSink); ok {
			t.span = append(t.span, sp)
		}
	}
	switch {
	case len(t.acc) > 0 && len(t.span) > 0:
		return &teeAccessSpan{t}
	case len(t.acc) > 0:
		return &teeAccess{t}
	case len(t.span) > 0:
		return &teeSpan{t}
	default:
		return &t
	}
}

// JSONLWriter streams samples as one JSON object per line. It is not
// safe for concurrent use; the harness serializes emission (Buffer +
// canonical sort) before samples reach a writer. The first write error
// sticks and suppresses further output; check Err after the run.
type JSONLWriter struct {
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Sample implements Sink.
func (j *JSONLWriter) Sample(s MetricSample) {
	if j.err != nil {
		return
	}
	data, err := json.Marshal(s)
	if err == nil {
		_, err = j.w.Write(data)
	}
	if err == nil {
		err = j.w.WriteByte('\n')
	}
	j.err = err
}

// Flush drains the write buffer.
func (j *JSONLWriter) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// tsvHeader is the column order of the TSV series format.
const tsvHeader = "experiment\trun\tmachine\titeration\tcomponent\tname\tlevel\tvalue"

// TSVWriter streams samples as tab-separated values with a header line.
// Same concurrency and error contract as JSONLWriter.
type TSVWriter struct {
	w      *bufio.Writer
	err    error
	headed bool
}

// NewTSVWriter wraps w.
func NewTSVWriter(w io.Writer) *TSVWriter {
	return &TSVWriter{w: bufio.NewWriter(w)}
}

// Sample implements Sink.
func (t *TSVWriter) Sample(s MetricSample) {
	if t.err != nil {
		return
	}
	if !t.headed {
		t.headed = true
		if _, err := fmt.Fprintln(t.w, tsvHeader); err != nil {
			t.err = err
			return
		}
	}
	_, t.err = fmt.Fprintf(t.w, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%d\n",
		s.Experiment, s.Run, s.Machine, s.Iteration, s.Component, s.Name, s.Level, s.Value)
}

// Flush drains the write buffer (writing the header even for an empty
// series, so downstream tooling sees a well-formed file).
func (t *TSVWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	if !t.headed {
		t.headed = true
		if _, err := fmt.Fprintln(t.w, tsvHeader); err != nil {
			t.err = err
			return err
		}
	}
	t.err = t.w.Flush()
	return t.err
}

// Err returns the first write error, if any.
func (t *TSVWriter) Err() error { return t.err }

// ValidationReport summarizes a JSONL series validation.
type ValidationReport struct {
	// Samples is the number of valid sample lines.
	Samples int
	// Experiments / Machines / Components are the distinct label counts.
	Experiments, Machines, Components int
}

// ValidateJSONL schema-checks a JSONL metric series: every line must
// parse as a MetricSample with non-empty Machine, Component, and Name.
// It returns the first violation as an error, with the summary of what
// was read up to that point.
func ValidateJSONL(r io.Reader) (ValidationReport, error) {
	var rep ValidationReport
	exps := map[string]bool{}
	machines := map[string]bool{}
	comps := map[string]bool{}
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var s MetricSample
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return rep, fmt.Errorf("sample %d: %w", line, err)
		}
		if s.Machine == "" || s.Component == "" || s.Name == "" {
			return rep, fmt.Errorf("sample %d: missing machine/component/name: %+v", line, s)
		}
		rep.Samples++
		exps[s.Experiment] = true
		machines[s.Machine] = true
		comps[s.Component] = true
	}
	rep.Experiments = len(exps)
	rep.Machines = len(machines)
	rep.Components = len(comps)
	return rep, nil
}
