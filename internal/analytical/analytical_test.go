package analytical

import (
	"strings"
	"testing"
)

func TestPaperScenariosShape(t *testing.T) {
	m := DefaultModel()
	// twitter PageRank at 5% coverage: paper reports 1.68x.
	tw := m.Estimate(PageRankScenario("twitter", 41.6e6, 1468e6, 0.05, 0.47, 0.35))
	if tw.Speedup() < 1.3 || tw.Speedup() > 2.3 {
		t.Fatalf("twitter PR speedup %.2f outside paper band (~1.68x)", tw.Speedup())
	}
	// uk at 10% coverage should beat twitter at 5% (more accesses covered).
	uk := m.Estimate(PageRankScenario("uk", 18.5e6, 298e6, 0.10, 0.60, 0.40))
	if uk.Speedup() <= tw.Speedup() {
		t.Fatalf("more coverage must help: uk %.2f <= twitter %.2f",
			uk.Speedup(), tw.Speedup())
	}
}

func TestBFSLessThanPageRank(t *testing.T) {
	// BFS has far fewer atomics per edge, so its modeled gain is smaller
	// (paper: 1.35x BFS vs 1.68x PR on twitter).
	m := DefaultModel()
	pr := m.Estimate(PageRankScenario("g", 40e6, 1400e6, 0.05, 0.47, 0.35))
	bfs := m.Estimate(BFSScenario("g", 40e6, 1400e6, 0.05, 0.47, 0.35))
	if bfs.Speedup() >= pr.Speedup() {
		t.Fatalf("BFS %.2f should gain less than PR %.2f", bfs.Speedup(), pr.Speedup())
	}
	if bfs.Speedup() < 1.0 {
		t.Fatalf("BFS should still win: %.2f", bfs.Speedup())
	}
}

func TestMoreHotCoverageMoreSpeedup(t *testing.T) {
	m := DefaultModel()
	prev := 0.0
	for _, share := range []float64{0.2, 0.4, 0.6, 0.8} {
		r := m.Estimate(PageRankScenario("g", 1e6, 16e6, share, share, 0.4))
		if r.Speedup() <= prev {
			t.Fatalf("speedup must grow with hot share: %.2f at %.1f", r.Speedup(), share)
		}
		prev = r.Speedup()
	}
}

func TestLowerLLCHitHelpsOMEGAMore(t *testing.T) {
	// The worse the baseline's cache behaves, the bigger OMEGA's win.
	m := DefaultModel()
	good := m.Estimate(PageRankScenario("g", 1e6, 16e6, 0.2, 0.7, 0.8))
	bad := m.Estimate(PageRankScenario("g", 1e6, 16e6, 0.2, 0.7, 0.2))
	if bad.Speedup() <= good.Speedup() {
		t.Fatalf("lower LLC hit should widen the gap: %.2f vs %.2f",
			bad.Speedup(), good.Speedup())
	}
}

func TestBaselineCyclesScaleWithEdges(t *testing.T) {
	m := DefaultModel()
	small := m.Estimate(PageRankScenario("s", 1e6, 16e6, 0.2, 0.7, 0.4))
	big := m.Estimate(PageRankScenario("b", 1e6, 160e6, 0.2, 0.7, 0.4))
	if big.BaselineCycles <= small.BaselineCycles*9 {
		t.Fatal("10x edges should be ~10x cycles")
	}
}

func TestZeroOmegaCycles(t *testing.T) {
	var r Result
	if r.Speedup() != 0 {
		t.Fatal("zero omega cycles should report 0 speedup")
	}
}

func TestResultString(t *testing.T) {
	m := DefaultModel()
	r := m.Estimate(PageRankScenario("x", 1e6, 16e6, 0.2, 0.7, 0.4))
	if !strings.Contains(r.String(), "speedup") {
		t.Fatal("result string malformed")
	}
}

func TestPISCThroughputBound(t *testing.T) {
	// An extreme scenario where offload demand exceeds PISC capacity must
	// not report absurd speedups: the engines bound the gain.
	m := DefaultModel()
	m.FrameworkCyclesPerEdge = 0
	m.StreamCyclesPerEdge = 0
	p := PageRankScenario("hot", 1e6, 64e6, 0.99, 0.999, 0.99)
	r := m.Estimate(p)
	// Offloaded ops ~= edges; engines absorb 3 cycles per op over 16
	// engines -> at least edges*3/48 cycles.
	min := float64(p.Edges) * 0.999 * m.AtomicCycles / (3 * 16)
	if r.OMEGACycles < min*0.9 {
		t.Fatalf("PISC bound violated: %.3e < %.3e", r.OMEGACycles, min)
	}
}
