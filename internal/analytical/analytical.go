// Package analytical implements the paper's high-level performance model
// for very large datasets (uk, twitter — Figure 20), which gem5 (and our
// detailed simulator) cannot traverse in reasonable time.
//
// The paper's recipe, which we follow exactly:
//   - DRAM access count for vtxProp is derived from the fraction of
//     accesses covered by the scratchpad-resident hot set (measured or
//     taken from the access skew), with a 100-cycle DRAM access;
//   - remote scratchpad accesses cost the measured crossbar average of
//     17 cycles;
//   - baseline atomic execution is charged the same cycles as the PISC
//     routine ("a conservative approach");
//   - LLC and scratchpad hit latencies are accounted.
package analytical

import "fmt"

// Params describes one large-graph scenario.
type Params struct {
	// Name labels the dataset ("uk-2002", "twitter-2010").
	Name string
	// Vertices and Edges give the graph scale.
	Vertices int64
	Edges    int64
	// HotCoverage is the fraction of vtxProp entries the scratchpads can
	// hold (e.g. 0.05 for twitter with 16 MB of scratchpad).
	HotCoverage float64
	// HotAccessShare is the fraction of vtxProp accesses that target the
	// scratchpad-resident vertices (from the skew profile, e.g. 0.47 for
	// twitter at 5% coverage).
	HotAccessShare float64
	// BaselineLLCHitRate is the baseline machine's LLC hit rate for the
	// workload (the paper measures it with VTune on the Xeon).
	BaselineLLCHitRate float64
	// AtomicsPerEdge and RandomReadsPerEdge characterize the algorithm
	// (1 and 0 for PageRank push; BFS has ~1 random read and rare CAS).
	AtomicsPerEdge     float64
	RandomReadsPerEdge float64
	// ActiveEdgeFraction scales how many edges are traversed (1 for
	// PageRank; <1 for traversals that touch each edge about once).
	ActiveEdgeFraction float64
}

// Model holds the machine constants of the paper's high-level simulator.
type Model struct {
	Cores int
	// DRAMCycles is the flat off-chip access cost (100 in the paper).
	DRAMCycles float64
	// RemoteSPCycles is the average crossbar round trip (17).
	RemoteSPCycles float64
	// LLCHitCycles / SPHitCycles are on-chip access costs.
	LLCHitCycles float64
	SPHitCycles  float64
	// AtomicCycles is the PISC routine cost, charged to baseline cores
	// as well (the paper's conservative choice).
	AtomicCycles float64
	// StreamCyclesPerEdge covers the sequential edge-list work per edge
	// (amortized: mostly L1 hits plus the occasional line fill).
	StreamCyclesPerEdge float64
	// FrameworkCyclesPerEdge is the machine-independent per-edge cost of
	// the framework (frontier maintenance, conversions, copy passes,
	// issue slots), calibrated once against the detailed simulator.
	FrameworkCyclesPerEdge float64
	// MLP is the number of overlapped outstanding misses for
	// non-blocking accesses.
	MLP float64
	// LocalSPFraction is how often a scratchpad access lands on the
	// local slice (1/Cores for uniform partitioning).
	LocalSPFraction float64
}

// DefaultModel returns the constants of the paper's §X "Scalability to
// large datasets" study at Table III geometry.
func DefaultModel() Model {
	return Model{
		Cores:                  16,
		DRAMCycles:             100,
		RemoteSPCycles:         17,
		LLCHitCycles:           6,
		SPHitCycles:            3,
		AtomicCycles:           9,
		StreamCyclesPerEdge:    2.5,
		FrameworkCyclesPerEdge: 26,
		MLP:                    16,
		LocalSPFraction:        1.0 / 16,
	}
}

// Result reports estimated per-machine cycles and the speedup.
type Result struct {
	Params         Params
	BaselineCycles float64
	OMEGACycles    float64
}

// Speedup returns baseline/OMEGA.
func (r Result) Speedup() float64 {
	if r.OMEGACycles == 0 {
		return 0
	}
	return r.BaselineCycles / r.OMEGACycles
}

// Estimate runs the high-level model for one scenario.
func (m Model) Estimate(p Params) Result {
	edges := float64(p.Edges) * p.ActiveEdgeFraction
	perCoreEdges := edges / float64(m.Cores)

	// --- Baseline ---
	// Every atomic blocks the core: on-chip hit or DRAM miss, plus the
	// (PISC-equal) atomic execution cost.
	atomicAvg := p.BaselineLLCHitRate*m.LLCHitCycles +
		(1-p.BaselineLLCHitRate)*m.DRAMCycles + m.AtomicCycles
	// Random reads overlap in the OoO window.
	readAvg := (p.BaselineLLCHitRate*m.LLCHitCycles +
		(1-p.BaselineLLCHitRate)*m.DRAMCycles) / m.MLP
	baseline := perCoreEdges * (m.StreamCyclesPerEdge + m.FrameworkCyclesPerEdge +
		p.AtomicsPerEdge*atomicAvg +
		p.RandomReadsPerEdge*readAvg)

	// --- OMEGA ---
	// Hot-share accesses are offloaded word-size to the home PISC
	// (fire-and-forget); the cold share behaves like the baseline but
	// against the halved LLC — the paper approximates its hit rate with
	// the same measured LLC rate.
	coldAtomic := p.BaselineLLCHitRate*m.LLCHitCycles +
		(1-p.BaselineLLCHitRate)*m.DRAMCycles + m.AtomicCycles
	hotAtomicCoreCost := 1.0 // issue the word packet and move on
	omegaAtomic := p.HotAccessShare*hotAtomicCoreCost + (1-p.HotAccessShare)*coldAtomic
	// Random reads: hot ones hit local/remote scratchpads (overlapped),
	// cold ones as baseline.
	hotRead := (m.LocalSPFraction*m.SPHitCycles +
		(1-m.LocalSPFraction)*(m.RemoteSPCycles+m.SPHitCycles)) / m.MLP
	coldRead := readAvg
	omegaRead := p.HotAccessShare*hotRead + (1-p.HotAccessShare)*coldRead
	// PISC throughput check: the engines must absorb the offloaded rate;
	// if they cannot, the offload cost rises to the serialization bound.
	offloadedOps := edges * p.AtomicsPerEdge * p.HotAccessShare
	omega := perCoreEdges * (m.StreamCyclesPerEdge + m.FrameworkCyclesPerEdge +
		p.AtomicsPerEdge*omegaAtomic +
		p.RandomReadsPerEdge*omegaRead)
	piscBound := offloadedOps * m.AtomicCycles / (3 * float64(m.Cores)) // pipelined engines
	if piscBound > omega {
		omega = piscBound
	}

	return Result{Params: p, BaselineCycles: baseline, OMEGACycles: omega}
}

// PageRankScenario builds Figure 20's PageRank parameters for a graph.
func PageRankScenario(name string, vertices, edges int64, hotCoverage, hotShare, llcHit float64) Params {
	return Params{
		Name: name, Vertices: vertices, Edges: edges,
		HotCoverage: hotCoverage, HotAccessShare: hotShare,
		BaselineLLCHitRate: llcHit,
		AtomicsPerEdge:     1, RandomReadsPerEdge: 0,
		ActiveEdgeFraction: 1,
	}
}

// BFSScenario builds Figure 20's BFS parameters: roughly one random
// vtxProp read per edge (the visited check) and a CAS only on first
// touches (~vertices/edges of the edges).
func BFSScenario(name string, vertices, edges int64, hotCoverage, hotShare, llcHit float64) Params {
	return Params{
		Name: name, Vertices: vertices, Edges: edges,
		HotCoverage: hotCoverage, HotAccessShare: hotShare,
		BaselineLLCHitRate: llcHit,
		AtomicsPerEdge:     float64(vertices) / float64(edges),
		RandomReadsPerEdge: 1,
		ActiveEdgeFraction: 1,
	}
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-12s baseline=%.3e omega=%.3e speedup=%.2fx",
		r.Params.Name, r.BaselineCycles, r.OMEGACycles, r.Speedup())
}
