// Package ligra is a vertex-centric graph-processing framework in the
// mold of Ligra (Shun & Blelloch, PPoPP'13), the framework the paper runs
// on its machines: vertexSubset frontiers with sparse and dense
// representations, edgeMap with push (sparse, atomic) and pull (dense)
// traversal, vertexMap, and the per-vertex property arrays whose access
// pattern OMEGA targets.
//
// The framework is execution-driven in the simulator: it computes real
// algorithm results in ordinary Go memory while emitting every logical
// memory access to the simulated machine (see core.Ctx). The programming
// interface is unchanged between the baseline and OMEGA machines, which is
// the paper's headline deployment property.
package ligra

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/memsys"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
)

// CostModel holds the instruction-count charges for framework bookkeeping;
// they convert logical work into cpu.Exec cycles.
type CostModel struct {
	// PerEdge is charged for each edge processed (index arithmetic,
	// compare, branch).
	PerEdge int
	// PerVertex is charged for each vertex visited in a map.
	PerVertex int
	// PerFrontierCheck is charged per dense-frontier membership test.
	PerFrontierCheck int
}

// DefaultCostModel reflects the compiled Ligra inner loops.
func DefaultCostModel() CostModel {
	return CostModel{PerEdge: 4, PerVertex: 6, PerFrontierCheck: 1}
}

// Framework binds a graph to a machine: it allocates the simulated regions
// for the CSR arrays and manages property arrays and frontiers.
type Framework struct {
	m    *core.Machine
	g    *graph.Graph
	cost CostModel

	outOffsets *core.Region
	outEdges   *core.Region
	inOffsets  *core.Region
	inEdges    *core.Region
	outWeights *core.Region
	inWeights  *core.Region
	scratch    *core.Region // nGraphData: loop temporaries, counters

	props []*PropArray

	// denseThresholdDen is Ligra's |E|/20 switching threshold denominator.
	denseThresholdDen int
	// densePull selects Ligra's gather-style dense traversal (edgeMapDense)
	// instead of the default scatter-style edgeMapDenseForward. The paper's
	// atomic-centric characterization (Table II) corresponds to the
	// forward variant, so forward is the default.
	densePull bool

	configured bool
	resident   int

	// frontierSize caches the size of the frontier entering the current
	// edgeMap, feeding the "ligra/frontier_size" gauge. It is maintained
	// only while a telemetry sink is attached (Size() walks dense
	// bitmaps, too costly to pay unobserved).
	frontierSize uint64

	// Mode statistics for analysis: edgeMap invocations and edges
	// traversed per direction.
	DenseMaps   int
	SparseMaps  int
	DenseEdges  uint64
	SparseEdges uint64
}

// New binds graph g to machine m.
func New(m *core.Machine, g *graph.Graph) *Framework {
	f := &Framework{
		m:                 m,
		g:                 g,
		cost:              DefaultCostModel(),
		denseThresholdDen: 20,
	}
	n := g.NumVertices()
	e := g.NumEdges()
	f.outOffsets = m.Alloc("edgeList.outOffsets", n+1, 8, memsys.KindEdgeList)
	f.outEdges = m.Alloc("edgeList.outEdges", maxInt(e, 1), 4, memsys.KindEdgeList)
	f.inOffsets = m.Alloc("edgeList.inOffsets", n+1, 8, memsys.KindEdgeList)
	f.inEdges = m.Alloc("edgeList.inEdges", maxInt(e, 1), 4, memsys.KindEdgeList)
	if g.Weighted() {
		f.outWeights = m.Alloc("edgeList.outWeights", maxInt(e, 1), 4, memsys.KindEdgeList)
		f.inWeights = m.Alloc("edgeList.inWeights", maxInt(e, 1), 4, memsys.KindEdgeList)
	}
	f.scratch = m.Alloc("nGraphData", maxInt(n, 1), 8, memsys.KindNGraphData)

	// Register framework-level probes on the machine's registry. The
	// registry replaces on re-registration (latest wins), so binding a
	// new framework to a machine re-points the gauges instead of
	// duplicating them.
	reg := m.Metrics()
	reg.RegisterGauge("ligra", "frontier_size", "", func() uint64 { return f.frontierSize })
	reg.RegisterCounter("ligra", "dense_maps", "", func() uint64 { return uint64(f.DenseMaps) })
	reg.RegisterCounter("ligra", "sparse_maps", "", func() uint64 { return uint64(f.SparseMaps) })
	reg.RegisterCounter("ligra", "dense_edges", "", func() uint64 { return f.DenseEdges })
	reg.RegisterCounter("ligra", "sparse_edges", "", func() uint64 { return f.SparseEdges })
	reg.RegisterGauge("ligra", "resident", "", func() uint64 { return uint64(f.resident) })
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Machine returns the bound machine.
func (f *Framework) Machine() *core.Machine { return f.m }

// Graph returns the bound graph.
func (f *Framework) Graph() *graph.Graph { return f.g }

// SetCostModel overrides the bookkeeping cost model.
func (f *Framework) SetCostModel(c CostModel) { f.cost = c }

// SetDensePull switches dense edgeMaps to the gather (pull) variant.
func (f *Framework) SetDensePull(pull bool) { f.densePull = pull }

// NumVertices is a convenience accessor.
func (f *Framework) NumVertices() int { return f.g.NumVertices() }

// PropArray is one vtxProp structure: functional 64-bit values plus the
// simulated region that gives every entry an address.
type PropArray struct {
	Name   string
	Region *core.Region
	vals   []pisc.Value
	fw     *Framework
}

// NewProp allocates a vtxProp array with entryBytes-sized simulated
// entries, initialized to init.
func (f *Framework) NewProp(name string, entryBytes int, init pisc.Value) *PropArray {
	if f.configured {
		panic("ligra: NewProp after Configure")
	}
	n := f.g.NumVertices()
	p := &PropArray{
		Name:   name,
		Region: f.m.Alloc("vtxProp."+name, maxInt(n, 1), entryBytes, memsys.KindVtxProp),
		vals:   make([]pisc.Value, n),
		fw:     f,
	}
	for i := range p.vals {
		p.vals[i] = init
	}
	f.props = append(f.props, p)
	return p
}

// Configure loads the machine's scratchpad monitor registers and PISC
// microcode for the registered properties — the startup code the paper's
// source-to-source translation tool generates (§V.F). Call it after all
// NewProp calls and before running the algorithm. Returns the number of
// scratchpad-resident vertices (0 on the baseline machine).
func (f *Framework) Configure(mc pisc.Microcode) int {
	monitors := make([]scratchpad.MonitorRegister, 0, len(f.props))
	for _, p := range f.props {
		monitors = append(monitors, f.m.MonitorFor(p.Region))
	}
	f.resident = f.m.ConfigureGraph(monitors, f.g.NumVertices(), mc)
	f.configured = true
	return f.resident
}

// Resident returns the scratchpad-resident vertex count.
func (f *Framework) Resident() int { return f.resident }

// Props returns the registered property arrays in registration order
// (result validation in the resilience campaigns walks them to compare
// algorithm outputs against a fault-free golden run).
func (f *Framework) Props() []*PropArray { return f.props }

// Raw returns the functional values without emitting simulated accesses
// (initialization and result extraction).
func (p *PropArray) Raw() []pisc.Value { return p.vals }

// Fill sets every entry functionally (no simulation).
func (p *PropArray) Fill(v pisc.Value) {
	for i := range p.vals {
		p.vals[i] = v
	}
}

// Get reads entry v, emitting a plain load.
func (p *PropArray) Get(ctx *core.Ctx, v uint32) pisc.Value {
	ctx.Read(p.Region, int(v))
	return p.vals[v]
}

// GetSrc reads entry v as a source-vertex read (buffer-eligible on OMEGA).
func (p *PropArray) GetSrc(ctx *core.Ctx, v uint32) pisc.Value {
	ctx.ReadSrc(p.Region, int(v))
	return p.vals[v]
}

// Set writes entry v, emitting a store.
func (p *PropArray) Set(ctx *core.Ctx, v uint32, val pisc.Value) {
	ctx.Write(p.Region, int(v))
	p.vals[v] = val
}

// Update applies op(current, operand) non-atomically (pull-mode updates
// where one thread owns the destination), emitting a read and, when the
// value changes, a write.
func (p *PropArray) Update(ctx *core.Ctx, v uint32, op pisc.Op, operand pisc.Value) bool {
	ctx.Read(p.Region, int(v))
	nv, changed := op.Apply(p.vals[v], operand)
	if changed {
		p.vals[v] = nv
		ctx.Write(p.Region, int(v))
	}
	return changed
}

// AtomicUpdate applies op atomically (push-mode updates), emitting one
// atomic access; OMEGA machines offload it to the home PISC. Returns
// whether the value changed.
func (p *PropArray) AtomicUpdate(ctx *core.Ctx, v uint32, op pisc.Op, operand pisc.Value) bool {
	ctx.Atomic(p.Region, int(v))
	nv, changed := op.Apply(p.vals[v], operand)
	if mask := ctx.TakeALUFault(); mask != 0 {
		// Injected PISC ALU transient: the offloaded op computed a wrong
		// value. The corruption lands in the functional result — algorithm
		// outputs go wrong silently, exactly what SDC classification and
		// re-execution recovery exist for.
		nv ^= pisc.Value(mask)
		changed = true
	}
	if changed {
		p.vals[v] = nv
	}
	return changed
}

// Value reads entry v functionally (no simulated access).
func (p *PropArray) Value(v uint32) pisc.Value { return p.vals[v] }

// OutEdgesRegion exposes the simulated out-edge array region for
// algorithms with custom scan orders (e.g. TC's intersections).
func (f *Framework) OutEdgesRegion() *core.Region { return f.outEdges }

// OutOffsetsRegion exposes the simulated out-offset array region.
func (f *Framework) OutOffsetsRegion() *core.Region { return f.outOffsets }

// ScratchRegion exposes the shared nGraphData scratch region.
func (f *Framework) ScratchRegion() *core.Region { return f.scratch }

// edgeSpanGrain bounds how many edges of one source vertex form a single
// parallel work item. Ligra splits high-degree vertices' edge lists across
// workers the same way; without this, a hub's edges serialize on one core
// and the barrier waits for it.
const edgeSpanGrain = 128

// edgeSpan is one parallel work item: a slice of a source's out-edges.
type edgeSpan struct {
	src    uint32
	lo, hi int // neighbor-index range within src's list
}

// buildSpans splits the given sources into edge spans.
func (f *Framework) buildSpans(sources []uint32) []edgeSpan {
	spans := make([]edgeSpan, 0, len(sources)+8)
	for _, s := range sources {
		deg := f.g.OutDegree(graph.VertexID(s))
		if deg == 0 {
			continue
		}
		for lo := 0; lo < deg; lo += edgeSpanGrain {
			hi := lo + edgeSpanGrain
			if hi > deg {
				hi = deg
			}
			spans = append(spans, edgeSpan{src: s, lo: lo, hi: hi})
		}
	}
	return spans
}

// ParallelOutEdges processes the out-edges of the given sources in
// parallel with Ligra-style granular splitting: each span of up to
// edgeSpanGrain edges is an independent work item. pre runs once per span
// (charge per-vertex costs and source-side reads there); edge runs per
// out-edge with the neighbor's global edge index, destination, and weight.
func (f *Framework) ParallelOutEdges(sources []uint32,
	pre func(ctx *core.Ctx, s uint32),
	edge func(ctx *core.Ctx, s uint32, j int, d uint32, w int32)) {
	spans := f.buildSpans(sources)
	f.m.ParallelForGrain(len(spans), 1, func(ctx *core.Ctx, i int) {
		sp := spans[i]
		s := sp.src
		if pre != nil {
			pre(ctx, s)
		}
		ctx.Read(f.outOffsets, int(s))
		neighbors := f.g.OutNeighbors(graph.VertexID(s))
		weights := f.g.OutWeights(graph.VertexID(s))
		base := int(f.g.OutOffsets[s])
		for j := sp.lo; j < sp.hi; j++ {
			ctx.Exec(f.cost.PerEdge)
			ctx.Read(f.outEdges, base+j)
			var w int32 = 1
			if weights != nil {
				ctx.Read(f.outWeights, base+j)
				w = weights[j]
			}
			edge(ctx, s, base+j, neighbors[j], w)
		}
	})
}

// EmitOutEdgeScan charges the offset read and the sequential edge (and
// weight) reads of iterating s's outgoing edges, invoking fn once per edge
// with the edge's position, destination, and weight.
func (f *Framework) EmitOutEdgeScan(ctx *core.Ctx, s uint32, fn func(j int, d uint32, w int32)) {
	ctx.Read(f.outOffsets, int(s))
	neighbors := f.g.OutNeighbors(graph.VertexID(s))
	weights := f.g.OutWeights(graph.VertexID(s))
	base := int(f.g.OutOffsets[s])
	for j, d := range neighbors {
		ctx.Exec(f.cost.PerEdge)
		ctx.Read(f.outEdges, base+j)
		var w int32 = 1
		if weights != nil {
			ctx.Read(f.outWeights, base+j)
			w = weights[j]
		}
		fn(j, d, w)
	}
}

// EmitInEdgeScan is EmitOutEdgeScan for incoming edges.
func (f *Framework) EmitInEdgeScan(ctx *core.Ctx, d uint32, fn func(j int, s uint32, w int32)) {
	ctx.Read(f.inOffsets, int(d))
	neighbors := f.g.InNeighbors(graph.VertexID(d))
	weights := f.g.InWeightsOf(graph.VertexID(d))
	base := int(f.g.InOffsets[d])
	for j, s := range neighbors {
		ctx.Exec(f.cost.PerEdge)
		ctx.Read(f.inEdges, base+j)
		var w int32 = 1
		if weights != nil {
			ctx.Read(f.inWeights, base+j)
			w = weights[j]
		}
		fn(j, s, w)
	}
}
