package ligra

import (
	"testing"
	"testing/quick"

	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/graph/gen"
	"omega/internal/pisc"
	"omega/internal/stats"
)

// randomGraph builds a small random directed graph.
func randomGraph(seed uint64) *graph.Graph {
	r := stats.NewRand(seed)
	n := 8 + r.Intn(56)
	b := graph.NewBuilder(n, false)
	m := n * (1 + r.Intn(6))
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), 1)
	}
	b.Dedup()
	return b.Build("prop")
}

// bfsFrontiers runs one BFS expansion in the given mode and returns the
// resulting frontier IDs plus the final parent assignment.
func bfsFrontiers(g *graph.Graph, root uint32, mode Mode, densePull bool) ([]uint32, []pisc.Value) {
	_, cfg := core.ScaledPair(g.NumVertices(), 4, 0.2)
	fw := New(core.NewMachine(cfg), g)
	fw.SetDensePull(densePull)
	parents := fw.NewProp("p", 4, pisc.Value(^uint64(0)))
	fw.Configure(pisc.StandardMicrocode("p", pisc.OpUnsignedCompareSwap, true, true))
	parents.Raw()[root] = pisc.Value(uint64(root))
	frontier := fw.NewVertexSubsetSparse([]uint32{root})
	for !frontier.IsEmpty() {
		frontier = fw.EdgeMap(frontier, bfsFns(parents), mode)
	}
	return frontier.IDs(), parents.Raw()
}

// TestTraversalModesAgreeOnReachability: push, dense-forward, and
// dense-pull traversals must discover exactly the same vertex set from any
// root on any graph (parents may differ — any in-neighbor is valid).
func TestTraversalModesAgreeOnReachability(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed)
		root := uint32(seed % uint64(g.NumVertices()))
		if g.OutDegree(graph.VertexID(root)) == 0 {
			return true
		}
		reached := func(parents []pisc.Value) []bool {
			out := make([]bool, len(parents))
			for v, p := range parents {
				out[v] = uint64(p) != ^uint64(0)
			}
			return out
		}
		_, pushParents := bfsFrontiers(g, root, Push, false)
		_, fwdParents := bfsFrontiers(g, root, Pull, false) // dense-forward
		_, pullParents := bfsFrontiers(g, root, Pull, true) // dense-pull
		a, b, c := reached(pushParents), reached(fwdParents), reached(pullParents)
		for v := range a {
			if a[v] != b[v] || a[v] != c[v] {
				t.Logf("seed %d: vertex %d reachability disagrees push=%v fwd=%v pull=%v",
					seed, v, a[v], b[v], c[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVertexSubsetConversionRoundTrip: sparse -> dense -> sparse preserves
// the member set exactly.
func TestVertexSubsetConversionRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed)
		_, cfg := core.ScaledPair(g.NumVertices(), 4, 0.2)
		fw := New(core.NewMachine(cfg), g)
		fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
		r := stats.NewRand(seed + 1)
		var ids []uint32
		for v := 0; v < g.NumVertices(); v++ {
			if r.Intn(3) == 0 {
				ids = append(ids, uint32(v))
			}
		}
		s := fw.NewVertexSubsetSparse(ids)
		before := s.IDs()
		fw.toDense(s)
		fw.toSparse(s)
		after := s.IDs()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelOutEdgesCoversEveryEdgeOnce: the granular edge iterator must
// visit each out-edge of the requested sources exactly once, regardless of
// degree distribution.
func TestParallelOutEdgesCoversEveryEdgeOnce(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed)
		_, cfg := core.ScaledPair(g.NumVertices(), 8, 0.2)
		fw := New(core.NewMachine(cfg), g)
		fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
		r := stats.NewRand(seed + 2)
		var sources []uint32
		for v := 0; v < g.NumVertices(); v++ {
			if r.Intn(2) == 0 {
				sources = append(sources, uint32(v))
			}
		}
		seen := map[int]int{}
		fw.ParallelOutEdges(sources, nil,
			func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
				seen[j]++
			})
		want := 0
		for _, s := range sources {
			lo := int(g.OutOffsets[s])
			hi := int(g.OutOffsets[s+1])
			want += hi - lo
			for j := lo; j < hi; j++ {
				if seen[j] != 1 {
					return false
				}
			}
		}
		return len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulationDeterminismAcrossMachines: repeated runs of the same
// workload on freshly built machines give bit-identical cycle counts.
func TestSimulationDeterminismAcrossMachines(t *testing.T) {
	run := func() (uint64, uint64) {
		g := gen.RMAT(gen.DefaultRMAT(9, 33))
		bcfg, ocfg := core.ScaledPair(g.NumVertices(), 4, 0.2)
		var out [2]uint64
		for i, cfg := range []core.Config{bcfg, ocfg} {
			fw := New(core.NewMachine(cfg), g)
			parents := fw.NewProp("p", 4, pisc.Value(^uint64(0)))
			fw.Configure(pisc.StandardMicrocode("p", pisc.OpUnsignedCompareSwap, true, true))
			parents.Raw()[0] = pisc.Value(0)
			frontier := fw.NewVertexSubsetSparse([]uint32{0})
			for !frontier.IsEmpty() {
				frontier = fw.EdgeMap(frontier, bfsFns(parents), Auto)
			}
			out[i] = uint64(fw.Machine().ElapsedCycles())
		}
		return out[0], out[1]
	}
	b1, o1 := run()
	b2, o2 := run()
	if b1 != b2 || o1 != o2 {
		t.Fatalf("nondeterministic simulation: %d/%d vs %d/%d", b1, o1, b2, o2)
	}
}
