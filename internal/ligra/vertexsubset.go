package ligra

import (
	"slices"
	"sort"

	"omega/internal/core"
	"omega/internal/memsys"
)

// VertexSubset is Ligra's frontier abstraction: a set of active vertices
// with either a sparse (ID list) or dense (bit per vertex) representation.
// The simulated backing store is an active-list region (Table II's
// "active-list" column is about maintaining these).
type VertexSubset struct {
	n      int
	dense  []bool
	sparse []uint32
	// isDense selects the current representation.
	isDense bool
	region  *core.Region
}

// NewVertexSubsetSparse builds a sparse frontier from IDs (deduplicated,
// sorted for determinism).
func (f *Framework) NewVertexSubsetSparse(ids []uint32) *VertexSubset {
	sorted := append([]uint32(nil), ids...)
	slices.Sort(sorted)
	out := sorted[:0]
	var last uint32
	for i, v := range sorted {
		if i > 0 && v == last {
			continue
		}
		out = append(out, v)
		last = v
	}
	return &VertexSubset{
		n:      f.g.NumVertices(),
		sparse: out,
		region: f.allocActiveRegion(),
	}
}

// NewVertexSubsetAll builds a dense frontier containing every vertex.
func (f *Framework) NewVertexSubsetAll() *VertexSubset {
	n := f.g.NumVertices()
	d := make([]bool, n)
	for i := range d {
		d[i] = true
	}
	return &VertexSubset{n: n, dense: d, isDense: true, region: f.allocActiveRegion()}
}

// NewVertexSubsetEmpty builds an empty sparse frontier.
func (f *Framework) NewVertexSubsetEmpty() *VertexSubset {
	return &VertexSubset{n: f.g.NumVertices(), region: f.allocActiveRegion()}
}

func (f *Framework) allocActiveRegion() *core.Region {
	return f.m.Alloc("activeList", maxInt(f.g.NumVertices(), 1), 1, memsys.KindActiveList)
}

// Size returns the number of active vertices.
func (s *VertexSubset) Size() int {
	if !s.isDense {
		return len(s.sparse)
	}
	c := 0
	for _, b := range s.dense {
		if b {
			c++
		}
	}
	return c
}

// IsEmpty reports whether no vertex is active.
func (s *VertexSubset) IsEmpty() bool { return s.Size() == 0 }

// IsDense reports the current representation.
func (s *VertexSubset) IsDense() bool { return s.isDense }

// Contains reports membership functionally (no simulated access).
func (s *VertexSubset) Contains(v uint32) bool {
	if s.isDense {
		return s.dense[v]
	}
	i := sort.Search(len(s.sparse), func(i int) bool { return s.sparse[i] >= v })
	return i < len(s.sparse) && s.sparse[i] == v
}

// IDs returns the active vertex IDs in ascending order (functional).
func (s *VertexSubset) IDs() []uint32 {
	if !s.isDense {
		return append([]uint32(nil), s.sparse...)
	}
	var ids []uint32
	for v, b := range s.dense {
		if b {
			ids = append(ids, uint32(v))
		}
	}
	return ids
}

// toDense converts to the dense representation, charging the parallel
// conversion pass Ligra performs (writes one byte per active vertex).
func (f *Framework) toDense(s *VertexSubset) {
	if s.isDense {
		return
	}
	d := make([]bool, s.n)
	ids := s.sparse
	f.m.ParallelFor(len(ids), func(ctx *core.Ctx, i int) {
		ctx.Exec(f.cost.PerVertex)
		ctx.Write(s.region, int(ids[i]))
		d[ids[i]] = true
	})
	s.dense = d
	s.isDense = true
	s.sparse = nil
}

// toSparse converts to the sparse representation, charging the scan.
func (f *Framework) toSparse(s *VertexSubset) {
	if !s.isDense {
		return
	}
	var ids []uint32
	f.m.ParallelFor(s.n, func(ctx *core.Ctx, i int) {
		ctx.Exec(1)
		ctx.Read(s.region, i)
	})
	// The compaction result is produced deterministically outside the
	// per-core closures (prefix-sum compaction in real Ligra).
	for v, b := range s.dense {
		if b {
			ids = append(ids, uint32(v))
		}
	}
	s.sparse = ids
	s.isDense = false
	s.dense = nil
}
