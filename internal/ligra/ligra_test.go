package ligra

import (
	"testing"

	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/pisc"
)

// testSetup builds a small framework over a diamond graph:
// 0->1, 0->2, 1->3, 2->3 (directed).
func testSetup(t testing.TB) (*Framework, *graph.Graph) {
	t.Helper()
	g := graph.FromEdges(4, false, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	}, "diamond")
	_, cfg := core.ScaledPair(g.NumVertices(), 8, 0.2)
	return New(core.NewMachine(cfg), g), g
}

func TestNewAllocatesCSRRegions(t *testing.T) {
	fw, g := testSetup(t)
	regions := fw.Machine().Regions()
	names := map[string]bool{}
	for _, r := range regions {
		names[r.Name] = true
	}
	for _, want := range []string{"edgeList.outOffsets", "edgeList.outEdges",
		"edgeList.inOffsets", "edgeList.inEdges", "nGraphData"} {
		if !names[want] {
			t.Fatalf("missing region %q", want)
		}
	}
	if fw.NumVertices() != g.NumVertices() {
		t.Fatal("vertex count mismatch")
	}
}

func TestPropArrayFunctional(t *testing.T) {
	fw, _ := testSetup(t)
	p := fw.NewProp("x", 8, pisc.IntValue(7))
	for v := uint32(0); v < 4; v++ {
		if p.Value(v).Int() != 7 {
			t.Fatal("init value lost")
		}
	}
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpSignedAdd, false, false))
	m := fw.Machine()
	m.Sequential(func(ctx *core.Ctx) {
		p.Set(ctx, 1, pisc.IntValue(42))
		if p.Get(ctx, 1).Int() != 42 {
			t.Fatal("set/get broken")
		}
		if !p.AtomicUpdate(ctx, 1, pisc.OpSignedAdd, pisc.IntValue(8)) {
			t.Fatal("atomic add should change")
		}
		if p.Value(1).Int() != 50 {
			t.Fatal("atomic result wrong")
		}
		if p.Update(ctx, 1, pisc.OpSignedMin, pisc.IntValue(10)) != true {
			t.Fatal("min update should change")
		}
		if p.Value(1).Int() != 10 {
			t.Fatal("min result wrong")
		}
	})
	if fw.Machine().Stats().Atomics != 1 {
		t.Fatal("atomic not counted")
	}
}

func TestNewPropAfterConfigurePanics(t *testing.T) {
	fw, _ := testSetup(t)
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fw.NewProp("late", 8, 0)
}

func TestVertexSubsetSparse(t *testing.T) {
	fw, _ := testSetup(t)
	s := fw.NewVertexSubsetSparse([]uint32{3, 1, 3, 1})
	if s.Size() != 2 {
		t.Fatalf("size %d, want 2 (dedup)", s.Size())
	}
	if !s.Contains(1) || !s.Contains(3) || s.Contains(0) {
		t.Fatal("membership wrong")
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("ids %v", ids)
	}
	if s.IsDense() {
		t.Fatal("should start sparse")
	}
}

func TestVertexSubsetAllAndEmpty(t *testing.T) {
	fw, _ := testSetup(t)
	all := fw.NewVertexSubsetAll()
	if all.Size() != 4 || !all.IsDense() {
		t.Fatal("all-subset wrong")
	}
	empty := fw.NewVertexSubsetEmpty()
	if !empty.IsEmpty() {
		t.Fatal("empty subset not empty")
	}
}

func TestSubsetConversions(t *testing.T) {
	fw, _ := testSetup(t)
	s := fw.NewVertexSubsetSparse([]uint32{0, 2})
	fw.toDense(s)
	if !s.IsDense() || s.Size() != 2 || !s.Contains(2) {
		t.Fatal("toDense broken")
	}
	fw.toSparse(s)
	if s.IsDense() || s.Size() != 2 || !s.Contains(0) {
		t.Fatal("toSparse broken")
	}
}

// bfsFns returns BFS-style edgeMap functions over a parent prop.
func bfsFns(parents *PropArray) EdgeMapFns {
	unset := uint64(^uint64(0))
	return EdgeMapFns{
		UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			return parents.AtomicUpdate(ctx, d, pisc.OpUnsignedCompareSwap,
				pisc.Value(uint64(s)))
		},
		Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			return parents.Update(ctx, d, pisc.OpUnsignedCompareSwap,
				pisc.Value(uint64(s)))
		},
		Cond: func(ctx *core.Ctx, d uint32) bool {
			return uint64(parents.Get(ctx, d)) == unset
		},
	}
}

func TestEdgeMapPushTraversal(t *testing.T) {
	fw, _ := testSetup(t)
	parents := fw.NewProp("parents", 4, pisc.Value(^uint64(0)))
	fw.Configure(pisc.StandardMicrocode("bfs", pisc.OpUnsignedCompareSwap, true, true))
	parents.Raw()[0] = pisc.Value(0)
	frontier := fw.NewVertexSubsetSparse([]uint32{0})
	next := fw.EdgeMap(frontier, bfsFns(parents), Push)
	ids := next.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("push frontier %v, want [1 2]", ids)
	}
	final := fw.EdgeMap(next, bfsFns(parents), Push)
	if final.Size() != 1 || !final.Contains(3) {
		t.Fatalf("second hop wrong: %v", final.IDs())
	}
	if fw.SparseMaps != 2 || fw.DenseMaps != 0 {
		t.Fatalf("mode counters: %d sparse %d dense", fw.SparseMaps, fw.DenseMaps)
	}
}

func TestEdgeMapDenseForwardMatchesPush(t *testing.T) {
	fwA, _ := testSetup(t)
	pA := fwA.NewProp("p", 4, pisc.Value(^uint64(0)))
	fwA.Configure(pisc.StandardMicrocode("t", pisc.OpUnsignedCompareSwap, true, true))
	pA.Raw()[0] = pisc.Value(0)
	fA := fwA.EdgeMap(fwA.NewVertexSubsetSparse([]uint32{0}), bfsFns(pA), Pull)

	fwB, _ := testSetup(t)
	pB := fwB.NewProp("p", 4, pisc.Value(^uint64(0)))
	fwB.Configure(pisc.StandardMicrocode("t", pisc.OpUnsignedCompareSwap, true, true))
	pB.Raw()[0] = pisc.Value(0)
	fB := fwB.EdgeMap(fwB.NewVertexSubsetSparse([]uint32{0}), bfsFns(pB), Push)

	a, b := fA.IDs(), fB.IDs()
	if len(a) != len(b) {
		t.Fatalf("dense-forward %v vs push %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dense-forward %v vs push %v", a, b)
		}
	}
}

func TestEdgeMapDensePullVariant(t *testing.T) {
	fw, _ := testSetup(t)
	fw.SetDensePull(true)
	p := fw.NewProp("p", 4, pisc.Value(^uint64(0)))
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpUnsignedCompareSwap, true, true))
	p.Raw()[0] = pisc.Value(0)
	f := fw.EdgeMap(fw.NewVertexSubsetSparse([]uint32{0}), bfsFns(p), Pull)
	ids := f.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("pull frontier %v", ids)
	}
	// Pull mode must not issue atomics.
	if fw.Machine().Stats().Atomics != 0 {
		t.Fatal("pull mode issued atomics")
	}
}

func TestEdgeMapAutoSwitches(t *testing.T) {
	fw, _ := testSetup(t)
	p := fw.NewProp("p", 4, pisc.Value(^uint64(0)))
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpUnsignedCompareSwap, true, true))
	p.Raw()[0] = pisc.Value(0)
	// |frontier|+outdeg = 1+2 = 3 > |E|/20 = 0 -> dense.
	fw.EdgeMap(fw.NewVertexSubsetSparse([]uint32{0}), bfsFns(p), Auto)
	if fw.DenseMaps != 1 {
		t.Fatal("tiny graph should pick dense under Ligra's threshold")
	}
}

func TestVertexMapFilters(t *testing.T) {
	fw, _ := testSetup(t)
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
	all := fw.NewVertexSubsetAll()
	odd := fw.VertexMap(all, func(ctx *core.Ctx, v uint32) bool { return v%2 == 1 })
	ids := odd.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("vertexMap filter %v", ids)
	}
}

func TestForAllVertices(t *testing.T) {
	fw, _ := testSetup(t)
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
	count := 0
	fw.ForAllVertices(func(ctx *core.Ctx, v uint32) { count++ })
	if count != 4 {
		t.Fatalf("visited %d, want 4", count)
	}
}

func TestEmitEdgeScans(t *testing.T) {
	fw, g := testSetup(t)
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
	var outs, ins []uint32
	fw.Machine().Sequential(func(ctx *core.Ctx) {
		fw.EmitOutEdgeScan(ctx, 0, func(j int, d uint32, w int32) {
			outs = append(outs, d)
		})
		fw.EmitInEdgeScan(ctx, 3, func(j int, s uint32, w int32) {
			ins = append(ins, s)
		})
	})
	if len(outs) != 2 || outs[0] != 1 || outs[1] != 2 {
		t.Fatalf("out scan %v", outs)
	}
	if len(ins) != 2 || ins[0] != 1 || ins[1] != 2 {
		t.Fatalf("in scan %v", ins)
	}
	_ = g
}

func TestWeightedEdgeScan(t *testing.T) {
	g := graph.FromEdges(2, false, nil, "w")
	b := graph.NewBuilder(2, false)
	b.SetWeighted()
	b.AddEdge(0, 1, 17)
	g = b.Build("w")
	_, cfg := core.ScaledPair(2, 8, 0.2)
	fw := New(core.NewMachine(cfg), g)
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
	var got int32
	fw.Machine().Sequential(func(ctx *core.Ctx) {
		fw.EmitOutEdgeScan(ctx, 0, func(j int, d uint32, w int32) { got = w })
	})
	if got != 17 {
		t.Fatalf("weight %d", got)
	}
}

func TestSortUint32(t *testing.T) {
	// Exercise both the insertion-sort and radix-sort paths.
	small := []uint32{5, 1, 4, 1, 3}
	sortUint32(small)
	for i := 1; i < len(small); i++ {
		if small[i-1] > small[i] {
			t.Fatalf("small sort broken: %v", small)
		}
	}
	big := make([]uint32, 1000)
	for i := range big {
		big[i] = uint32((i * 2654435761) % 100000)
	}
	sortUint32(big)
	for i := 1; i < len(big); i++ {
		if big[i-1] > big[i] {
			t.Fatalf("radix sort broken at %d", i)
		}
	}
}

func TestDedupSorted(t *testing.T) {
	out := dedupSorted([]uint32{3, 1, 3, 2, 1})
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("dedup %v", out)
	}
	if dedupSorted(nil) != nil {
		t.Fatal("nil in, nil out")
	}
}

func TestFrontierOutDegree(t *testing.T) {
	fw, _ := testSetup(t)
	fw.Configure(pisc.StandardMicrocode("t", pisc.OpNop, false, false))
	s := fw.NewVertexSubsetSparse([]uint32{0, 1})
	if d := fw.frontierOutDegree(s); d != 3 {
		t.Fatalf("outdeg %d, want 3", d)
	}
	fw.toDense(s)
	if d := fw.frontierOutDegree(s); d != 3 {
		t.Fatalf("dense outdeg %d, want 3", d)
	}
}
