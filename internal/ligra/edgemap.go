package ligra

import (
	"omega/internal/core"
	"omega/internal/graph"
)

// EdgeMapFns bundles the per-edge callbacks of an edgeMap, mirroring
// Ligra's (update, updateAtomic, cond) triple.
type EdgeMapFns struct {
	// UpdateAtomic processes edge s->d in push (sparse) mode using
	// atomic updates; it returns whether d became newly active.
	UpdateAtomic func(ctx *core.Ctx, s, d uint32, w int32) bool
	// Update processes edge s->d in pull (dense) mode, where a single
	// simulated thread owns destination d and atomics are unnecessary;
	// it returns whether d became newly active.
	Update func(ctx *core.Ctx, s, d uint32, w int32) bool
	// Cond gates destinations: edges into d where Cond is false are
	// skipped, and pull-mode processing of d stops once it turns false.
	// nil means always true.
	Cond func(ctx *core.Ctx, d uint32) bool
}

// Mode forces an edgeMap traversal direction.
type Mode int

const (
	// Auto applies Ligra's |frontier|+outDegree > |E|/20 threshold.
	Auto Mode = iota
	// Push forces sparse traversal.
	Push
	// Pull forces dense traversal.
	Pull
)

// EdgeMap applies fns over the edges leaving frontier, returning the new
// frontier. It reproduces Ligra's direction-switching heuristic and the
// bookkeeping traffic of frontier maintenance.
func (f *Framework) EdgeMap(frontier *VertexSubset, fns EdgeMapFns, mode Mode) *VertexSubset {
	if f.m.SinkAttached() {
		// Publish the frontier entering this edgeMap before the iteration
		// boundary emits: the frontier is the previous iteration's output,
		// so the sample closing that iteration carries it.
		f.frontierSize = uint64(frontier.Size())
	}
	f.m.BeginIteration()
	switch mode {
	case Push:
		return f.edgeMapSparse(frontier, fns)
	case Pull:
		return f.edgeMapDense(frontier, fns)
	}
	size := frontier.Size()
	outDeg := f.frontierOutDegree(frontier)
	if size+outDeg > f.g.NumEdges()/f.denseThresholdDen {
		return f.edgeMapDense(frontier, fns)
	}
	return f.edgeMapSparse(frontier, fns)
}

// frontierOutDegree computes the summed out-degree of the frontier — the
// reduction Ligra performs each iteration to pick a direction. The offset
// reads are charged to the machine.
func (f *Framework) frontierOutDegree(s *VertexSubset) int {
	total := 0
	if s.isDense {
		f.m.ParallelFor(s.n, func(ctx *core.Ctx, i int) {
			ctx.Exec(1)
			ctx.Read(s.region, i)
			if s.dense[i] {
				ctx.Read(f.outOffsets, i)
				total += f.g.OutDegree(graph.VertexID(i))
			}
		})
		return total
	}
	ids := s.sparse
	f.m.ParallelFor(len(ids), func(ctx *core.Ctx, i int) {
		ctx.Exec(2)
		ctx.Read(s.region, i)
		ctx.Read(f.outOffsets, int(ids[i]))
		total += f.g.OutDegree(graph.VertexID(ids[i]))
	})
	return total
}

// edgeMapSparse is push-mode traversal: each frontier vertex scatters
// along its out-edges with atomic updates.
func (f *Framework) edgeMapSparse(frontier *VertexSubset, fns EdgeMapFns) *VertexSubset {
	f.SparseMaps++
	f.toSparse(frontier)
	out := f.NewVertexSubsetEmpty()
	inOut := make([]bool, f.g.NumVertices())
	var appended []uint32
	suppressSP := f.m.Config().PISC

	ids := frontier.sparse
	f.ParallelOutEdges(ids,
		func(ctx *core.Ctx, s uint32) {
			ctx.Exec(f.cost.PerVertex)
			ctx.Read(frontier.region, int(s))
		},
		func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
			f.SparseEdges++
			if fns.Cond != nil && !fns.Cond(ctx, d) {
				return
			}
			if fns.UpdateAtomic(ctx, s, d, w) && !inOut[d] {
				inOut[d] = true
				appended = append(appended, d)
				// Active-list maintenance: on OMEGA the PISC sets the
				// dense bit / emits the sparse ID in-scratchpad for
				// resident vertices (§V.B); otherwise the core writes it.
				if !(suppressSP && int(d) < f.resident) {
					ctx.Write(out.region, int(d))
				}
			}
		})
	out.sparse = dedupSorted(appended)
	return out
}

// edgeMapDense dispatches to the configured dense traversal.
func (f *Framework) edgeMapDense(frontier *VertexSubset, fns EdgeMapFns) *VertexSubset {
	f.DenseMaps++
	f.toDense(frontier)
	if !f.densePull {
		return f.edgeMapDenseForward(frontier, fns)
	}
	return f.edgeMapDensePull(frontier, fns)
}

// edgeMapDenseForward is Ligra's edgeMapDenseForward: scatter-style dense
// traversal — every frontier vertex pushes along its out-edges with atomic
// updates, with the frontier membership test being a cheap sequential read
// of the vertex's own bit.
func (f *Framework) edgeMapDenseForward(frontier *VertexSubset, fns EdgeMapFns) *VertexSubset {
	out := f.NewVertexSubsetEmpty()
	out.isDense = true
	out.dense = make([]bool, f.g.NumVertices())
	suppressSP := f.m.Config().PISC

	// Membership scan: every vertex checks its own frontier bit (a cheap
	// sequential read), collecting the active sources.
	var active []uint32
	f.m.ParallelFor(f.g.NumVertices(), func(ctx *core.Ctx, s int) {
		ctx.Exec(f.cost.PerVertex)
		ctx.Read(frontier.region, s)
		if frontier.dense[s] {
			active = append(active, uint32(s))
		}
	})
	f.ParallelOutEdges(active, nil,
		func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
			f.DenseEdges++
			if fns.Cond != nil && !fns.Cond(ctx, d) {
				return
			}
			if fns.UpdateAtomic(ctx, s, d, w) && !out.dense[d] {
				out.dense[d] = true
				if !(suppressSP && int(d) < f.resident) {
					ctx.Write(out.region, int(d))
				}
			}
		})
	return out
}

// edgeMapDensePull is Ligra's edgeMapDense: every vertex gathers from its
// in-neighbors that are in the frontier, without atomics.
func (f *Framework) edgeMapDensePull(frontier *VertexSubset, fns EdgeMapFns) *VertexSubset {
	out := f.NewVertexSubsetEmpty()
	out.isDense = true
	out.dense = make([]bool, f.g.NumVertices())
	out.sparse = nil
	update := fns.Update
	if update == nil {
		// Fall back to the atomic variant; correct, if conservative.
		update = fns.UpdateAtomic
	}

	f.m.ParallelFor(f.g.NumVertices(), func(ctx *core.Ctx, d int) {
		ctx.Exec(f.cost.PerVertex)
		if fns.Cond != nil && !fns.Cond(ctx, uint32(d)) {
			return
		}
		ctx.Read(f.inOffsets, d)
		neighbors := f.g.InNeighbors(graph.VertexID(d))
		weights := f.g.InWeightsOf(graph.VertexID(d))
		base := int(f.g.InOffsets[d])
		f.DenseEdges += uint64(len(neighbors))
		for j, s := range neighbors {
			ctx.Exec(f.cost.PerEdge + f.cost.PerFrontierCheck)
			ctx.Read(f.inEdges, base+j)
			ctx.Read(frontier.region, int(s))
			if !frontier.dense[s] {
				continue
			}
			var w int32 = 1
			if weights != nil {
				ctx.Read(f.inWeights, base+j)
				w = weights[j]
			}
			if update(ctx, s, uint32(d), w) && !out.dense[d] {
				out.dense[d] = true
				ctx.Write(out.region, d)
			}
			if fns.Cond != nil && !fns.Cond(ctx, uint32(d)) {
				break
			}
		}
	})
	return out
}

func dedupSorted(ids []uint32) []uint32 {
	if len(ids) == 0 {
		return nil
	}
	sorted := append([]uint32(nil), ids...)
	// Insertion of already-mostly-ordered data; use sort for clarity.
	sortUint32(sorted)
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortUint32(s []uint32) {
	// Simple LSD radix sort keeps frontier construction O(n) and
	// allocation-light for large frontiers.
	if len(s) < 64 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	buf := make([]uint32, len(s))
	for shift := uint(0); shift < 32; shift += 8 {
		var counts [257]int
		for _, v := range s {
			counts[((v>>shift)&0xFF)+1]++
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for _, v := range s {
			b := (v >> shift) & 0xFF
			buf[counts[b]] = v
			counts[b]++
		}
		s, buf = buf, s
	}
	// 4 passes (even) leave the result in the original slice.
}

// VertexMap applies fn to every vertex in s, returning the subset where fn
// reported true. Costs are charged per visited vertex.
func (f *Framework) VertexMap(s *VertexSubset, fn func(ctx *core.Ctx, v uint32) bool) *VertexSubset {
	out := f.NewVertexSubsetEmpty()
	var kept []uint32
	if s.isDense {
		f.m.ParallelFor(s.n, func(ctx *core.Ctx, i int) {
			ctx.Exec(1)
			ctx.Read(s.region, i)
			if !s.dense[i] {
				return
			}
			ctx.Exec(f.cost.PerVertex)
			if fn(ctx, uint32(i)) {
				kept = append(kept, uint32(i))
				ctx.Write(out.region, i)
			}
		})
	} else {
		ids := s.sparse
		f.m.ParallelFor(len(ids), func(ctx *core.Ctx, i int) {
			ctx.Exec(f.cost.PerVertex)
			ctx.Read(s.region, i)
			if fn(ctx, ids[i]) {
				kept = append(kept, ids[i])
				ctx.Write(out.region, int(ids[i]))
			}
		})
	}
	out.sparse = dedupSorted(kept)
	return out
}

// ForAllVertices runs fn over every vertex (a vertexMap without a
// frontier, as in PageRank's per-iteration normalization).
func (f *Framework) ForAllVertices(fn func(ctx *core.Ctx, v uint32)) {
	f.m.ParallelFor(f.g.NumVertices(), func(ctx *core.Ctx, i int) {
		ctx.Exec(f.cost.PerVertex)
		fn(ctx, uint32(i))
	})
}
