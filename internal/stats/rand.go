// Package stats provides deterministic randomness, counters, and histogram
// helpers shared by the simulator, generators, and experiment harness.
//
// Everything in this package is deliberately dependency-free and
// allocation-conscious: the simulator calls into these types on hot paths.
package stats

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift128+ variant). It is not safe for concurrent use; give each
// goroutine its own instance via Split.
//
// We intentionally do not use math/rand here: simulations must be
// reproducible across Go releases, and math/rand's global source ordering
// has changed between versions.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a generator seeded from seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state. A zero seed is remapped so the state is
// never all-zero (which would be a fixed point for xorshift).
func (r *Rand) Seed(seed uint64) {
	// SplitMix64 expansion of the seed into 128 bits of state.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	r.s0 = z ^ (z >> 31)
	z = seed + 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	r.s1 = z ^ (z >> 31)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// State returns the generator's internal 128-bit state, for
// checkpointing. Restore it with SetState to resume the exact stream.
func (r *Rand) State() (s0, s1 uint64) { return r.s0, r.s1 }

// SetState restores a state captured by State. An all-zero state (a
// xorshift fixed point) is remapped the same way Seed does.
func (r *Rand) SetState(s0, s1 uint64) {
	if s0 == 0 && s1 == 0 {
		s0 = 1
	}
	r.s0, r.s1 = s0, s1
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Split derives an independent generator from this one. The parent stream
// advances by one value.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
