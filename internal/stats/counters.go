package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio is a hit/total style pair with a convenience rate.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one event that either hit or missed.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// AddHits records n hits (and n totals).
func (r *Ratio) AddHits(n uint64) { r.Hits += n; r.Total += n }

// AddMisses records n misses (n totals, no hits).
func (r *Ratio) AddMisses(n uint64) { r.Total += n }

// Rate returns Hits/Total, or 0 when empty.
func (r *Ratio) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Set is an ordered collection of named counters, used for stats dumps.
type Set struct {
	names  []string
	values map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{values: make(map[string]*Counter)}
}

// Get returns the counter with the given name, creating it on first use.
func (s *Set) Get(name string) *Counter {
	if c, ok := s.values[name]; ok {
		return c
	}
	c := &Counter{}
	s.values[name] = c
	s.names = append(s.names, name)
	return c
}

// Value returns the count for name, or zero when never touched.
func (s *Set) Value(name string) uint64 {
	if c, ok := s.values[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns the counter names in first-use order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// String renders the set sorted by name, one "name=value" per line.
func (s *Set) String() string {
	names := s.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.values[n].Value())
	}
	return b.String()
}

// Histogram is a fixed-bucket histogram over non-negative integer samples.
type Histogram struct {
	bounds []uint64 // ascending upper bounds; implicit +Inf last bucket
	counts []uint64
	sum    uint64
	n      uint64
	max    uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. A sample x lands in the first bucket with x <= bound, or in the
// overflow bucket.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(x uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return x <= h.bounds[i] })
	h.counts[i]++
	h.sum += x
	h.n++
	if x > h.max {
		h.max = x
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the sample mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Buckets returns (upperBound, count) pairs; the final pair has bound
// ^uint64(0) for the overflow bucket.
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	bounds := append(append([]uint64(nil), h.bounds...), ^uint64(0))
	counts := append([]uint64(nil), h.counts...)
	return bounds, counts
}

// Quantile returns an upper-bound estimate of the q-quantile (0<=q<=1)
// using bucket upper bounds. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}
