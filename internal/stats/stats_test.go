package stats

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 equal values", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero seed produced only %d distinct values", len(seen))
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRandFloat64Uniformish(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandSplitIndependent(t *testing.T) {
	parent := NewRand(5)
	child := parent.Split()
	a := child.Uint64()
	b := parent.Uint64()
	if a == b {
		t.Fatal("split stream should not mirror parent")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("got %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Rate() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	r.AddHits(2)
	r.AddMisses(3)
	if r.Hits != 4 || r.Total != 8 {
		t.Fatalf("got %d/%d", r.Hits, r.Total)
	}
	if r.Rate() != 0.5 {
		t.Fatalf("rate = %v", r.Rate())
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Get("b").Add(2)
	s.Get("a").Inc()
	s.Get("b").Inc()
	if s.Value("b") != 3 || s.Value("a") != 1 || s.Value("missing") != 0 {
		t.Fatalf("unexpected values: %v", s.String())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names order: %v", names)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, x := range []uint64{1, 5, 10, 11, 100, 500, 5000} {
		h.Observe(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 5000 {
		t.Fatalf("max %d", h.Max())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatalf("bucket shape: %v %v", bounds, counts)
	}
	// <=10: {1,5,10} ; <=100: {11,100} ; <=1000: {500} ; overflow: {5000}
	want := []uint64{3, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	h.Observe(10)
	h.Observe(20)
	if h.Mean() != 15 {
		t.Fatalf("mean %v", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16)
	for i := uint64(0); i < 100; i++ {
		h.Observe(i % 10)
	}
	if q := h.Quantile(0.5); q < 4 || q > 8 {
		t.Fatalf("median estimate %d", q)
	}
	if h.Quantile(1.0) < 8 {
		t.Fatalf("p100 %d", h.Quantile(1.0))
	}
	empty := NewHistogram(1)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram(5, 5)
}
