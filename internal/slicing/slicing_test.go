package slicing

import (
	"math"
	"testing"

	"omega/internal/algorithms"
	"omega/internal/graph/gen"
	"omega/internal/graph/reorder"
)

func TestPlanTilesAllVertices(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(11, 9))
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
	for _, mode := range []Mode{Plain, PowerLawAware} {
		p := BuildPlan(g, 100, 0.20, mode)
		if err := p.Validate(g); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestPowerLawAwareNeedsFewerSlices(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 9))
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
	capacity := g.NumVertices() / 25
	plain := BuildPlan(g, capacity, 0.20, Plain)
	aware := BuildPlan(g, capacity, 0.20, PowerLawAware)
	red := float64(plain.NumSlices()) / float64(aware.NumSlices())
	if red < 4 || red > 6 {
		t.Fatalf("power-law slicing should cut slices ~5x (paper §VII.3): got %.1fx (%d -> %d)",
			red, plain.NumSlices(), aware.NumSlices())
	}
	if Reduction(g, capacity, 0.20) != red {
		t.Fatal("Reduction helper disagrees")
	}
}

func TestSlicedPageRankMatchesUnsliced(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 13))
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
	want := algorithms.ReferencePageRank(g, 3, 0.85)
	for _, mode := range []Mode{Plain, PowerLawAware} {
		plan := BuildPlan(g, g.NumVertices()/10, 0.20, mode)
		got := PageRankSliced(g, plan, 3, 0.85)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("%v: rank[%d] = %v, want %v", mode, v, got[v], want[v])
			}
		}
	}
}

func TestSingleSliceWhenEverythingFits(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 5))
	p := BuildPlan(g, g.NumVertices(), 0.20, Plain)
	if p.NumSlices() != 1 {
		t.Fatalf("full capacity should need one slice, got %d", p.NumSlices())
	}
}

func TestTinyCapacity(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 5))
	p := BuildPlan(g, 1, 0.20, Plain)
	if p.NumSlices() != g.NumVertices() {
		t.Fatalf("capacity 1 should give one slice per vertex, got %d", p.NumSlices())
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesAccounted(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 3))
	p := BuildPlan(g, 97, 0.20, PowerLawAware)
	sum := 0
	for _, sl := range p.Slices {
		sum += sl.Edges
	}
	if sum != g.NumEdges() || p.TotalEdges != g.NumEdges() {
		t.Fatalf("edges %d+%d, want %d", sum, p.TotalEdges, g.NumEdges())
	}
}

func TestModeStrings(t *testing.T) {
	if Plain.String() != "plain" || PowerLawAware.String() != "power-law-aware" {
		t.Fatal("mode names wrong")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestDefaultsOnBadInputs(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 5))
	p := BuildPlan(g, 0, -1, Plain) // capacity and fraction clamped
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}
