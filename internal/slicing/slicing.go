// Package slicing implements the graph slicing/segmentation techniques of
// paper §VII for graphs whose vertex data exceeds on-chip storage:
//
//   - Plain slicing (§VII.2, after [19][45]): partition the destination
//     vertices into ranges small enough that a slice's whole vtxProp fits
//     on chip; process one slice at a time and merge.
//   - Power-law-aware slicing (§VII.3, the paper's proposal): a slice only
//     needs the vtxProp of its *most-connected* vertices to fit — the cold
//     tail streams from memory anyway — which cuts the slice count by up
//     to 5x on natural graphs.
//
// The package provides the slicing planner, a functional sliced PageRank
// used to verify that slice-by-slice processing computes the same result,
// and the bookkeeping (per-slice edge counts, replication overhead) the
// §VII experiment reports.
package slicing

import (
	"fmt"

	"omega/internal/graph"
)

// Mode selects the slicing strategy.
type Mode int

const (
	// Plain requires each slice's full vtxProp range to fit on chip.
	Plain Mode = iota
	// PowerLawAware requires only each slice's hot (top-connectivity)
	// vertices to fit, exploiting the 80/20 access skew.
	PowerLawAware
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Plain:
		return "plain"
	case PowerLawAware:
		return "power-law-aware"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Slice is one unit of slice-by-slice processing: the destination-vertex
// range [Lo, Hi) whose updates this slice performs, and how many edges
// target it.
type Slice struct {
	Lo, Hi int
	Edges  int
}

// Plan is the output of the slicing planner.
type Plan struct {
	Mode Mode
	// CapacityVertices is how many vtxProp entries fit on chip.
	CapacityVertices int
	// HotFraction is the share of vertices treated as hot (power-law
	// mode; 0.20 in the paper).
	HotFraction float64
	Slices      []Slice
	// TotalEdges across slices (equals the graph's edge count).
	TotalEdges int
}

// NumSlices returns the slice count — the quantity §VII.3 reduces by ~5x.
func (p Plan) NumSlices() int { return len(p.Slices) }

// BuildPlan partitions g (which must be in-degree reordered for power-law
// mode: hottest vertices first) into slices for the given on-chip
// capacity (in vtxProp entries).
func BuildPlan(g *graph.Graph, capacityVertices int, hotFraction float64, mode Mode) Plan {
	n := g.NumVertices()
	if capacityVertices < 1 {
		capacityVertices = 1
	}
	if hotFraction <= 0 || hotFraction > 1 {
		hotFraction = 0.20
	}
	p := Plan{Mode: mode, CapacityVertices: capacityVertices, HotFraction: hotFraction}
	if n == 0 {
		return p
	}
	// verticesPerSlice is how many destination vertices one slice may
	// cover.
	verticesPerSlice := capacityVertices
	if mode == PowerLawAware {
		// Only the hot prefix of each slice must fit: a slice of V
		// vertices has ~hotFraction*V hot members (the graph is ordered
		// hottest-first, so we interleave slices across the hot prefix;
		// equivalently each slice may cover capacity/hotFraction
		// vertices).
		verticesPerSlice = int(float64(capacityVertices) / hotFraction)
	}
	if verticesPerSlice < 1 {
		verticesPerSlice = 1
	}
	for lo := 0; lo < n; lo += verticesPerSlice {
		hi := lo + verticesPerSlice
		if hi > n {
			hi = n
		}
		edges := 0
		for v := lo; v < hi; v++ {
			edges += g.InDegree(graph.VertexID(v))
		}
		p.Slices = append(p.Slices, Slice{Lo: lo, Hi: hi, Edges: edges})
		p.TotalEdges += edges
	}
	return p
}

// Reduction returns how many times fewer slices power-law-aware slicing
// needs than plain slicing at the same capacity.
func Reduction(g *graph.Graph, capacityVertices int, hotFraction float64) float64 {
	plain := BuildPlan(g, capacityVertices, hotFraction, Plain)
	aware := BuildPlan(g, capacityVertices, hotFraction, PowerLawAware)
	if aware.NumSlices() == 0 {
		return 0
	}
	return float64(plain.NumSlices()) / float64(aware.NumSlices())
}

// PageRankSliced runs PageRank iteration-by-iteration, processing the
// graph one slice at a time (each slice applies only the updates into its
// destination range) and merging at iteration end. It is functionally
// identical to unsliced PageRank — the property the §VII experiment
// verifies — while touching only one slice's vtxProp at a time.
func PageRankSliced(g *graph.Graph, plan Plan, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	curr := make([]float64, n)
	next := make([]float64, n)
	for v := range curr {
		curr[v] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		for v := range next {
			next[v] = 0
		}
		// Slice-by-slice: each slice pulls along the in-edges of its
		// destination range, so its vtxProp writes stay inside the
		// slice's on-chip window.
		for _, sl := range plan.Slices {
			for d := sl.Lo; d < sl.Hi; d++ {
				for _, s := range g.InNeighbors(graph.VertexID(d)) {
					deg := g.OutDegree(graph.VertexID(s))
					if deg > 0 {
						next[d] += curr[s] / float64(deg)
					}
				}
			}
		}
		// Merge: fold damping (the per-slice results are disjoint, so
		// the merge is the plain fold).
		for v := range curr {
			curr[v] = (1-damping)/float64(n) + damping*next[v]
		}
	}
	return curr
}

// Validate checks plan invariants: slices tile [0, n) without gaps or
// overlap and account for every in-edge.
func (p Plan) Validate(g *graph.Graph) error {
	n := g.NumVertices()
	expect := 0
	for i, sl := range p.Slices {
		if sl.Lo != expect {
			return fmt.Errorf("slicing: slice %d starts at %d, want %d", i, sl.Lo, expect)
		}
		if sl.Hi <= sl.Lo {
			return fmt.Errorf("slicing: slice %d empty", i)
		}
		expect = sl.Hi
	}
	if len(p.Slices) > 0 && expect != n {
		return fmt.Errorf("slicing: slices end at %d, want %d", expect, n)
	}
	if p.TotalEdges != g.NumEdges() {
		return fmt.Errorf("slicing: %d edges planned, graph has %d", p.TotalEdges, g.NumEdges())
	}
	return nil
}
