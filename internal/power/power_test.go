package power

import (
	"math"
	"strings"
	"testing"

	"omega/internal/core"
)

func TestBudgetMatchesTableIV(t *testing.T) {
	base := Budget(core.Baseline())
	om := Budget(core.OMEGA())
	// Paper Table IV: baseline 6.17 W / 32.91 mm2; OMEGA 6.21 W / 32.15 mm2.
	within := func(got, want, tolPct float64) bool {
		return math.Abs(got-want)/want*100 <= tolPct
	}
	if !within(base.TotalPower(), 6.17, 3) {
		t.Fatalf("baseline power %.2f, paper 6.17", base.TotalPower())
	}
	if !within(base.TotalArea(), 32.91, 3) {
		t.Fatalf("baseline area %.2f, paper 32.91", base.TotalArea())
	}
	if !within(om.TotalPower(), 6.21, 3) {
		t.Fatalf("omega power %.2f, paper 6.21", om.TotalPower())
	}
	if !within(om.TotalArea(), 32.15, 3) {
		t.Fatalf("omega area %.2f, paper 32.15", om.TotalArea())
	}
}

func TestOMEGANodeSlightlySmallerSlightlyHotter(t *testing.T) {
	// The paper's punchline: OMEGA is -2.31% area, +0.65% power.
	base := Budget(core.Baseline())
	om := Budget(core.OMEGA())
	if om.TotalArea() >= base.TotalArea() {
		t.Fatal("OMEGA node should be slightly smaller (no tags on scratchpads)")
	}
	if om.TotalPower() <= base.TotalPower() {
		t.Fatal("OMEGA node should be slightly higher peak power")
	}
}

func TestPISCIsTiny(t *testing.T) {
	om := Budget(core.OMEGA())
	var pisc, total float64
	for _, c := range om.Components {
		total += c.AreaMM2
		if c.Name == "PISC" {
			pisc = c.AreaMM2
		}
	}
	if pisc <= 0 || pisc/total > 0.01 {
		t.Fatalf("PISC area overhead %.4f should be <<1%%", pisc/total)
	}
}

func TestBaselineHasNoScratchpadComponents(t *testing.T) {
	base := Budget(core.Baseline())
	for _, c := range base.Components {
		if c.Name == "Scratchpad" || c.Name == "PISC" {
			t.Fatalf("baseline should not include %s", c.Name)
		}
	}
}

func TestBudgetFormat(t *testing.T) {
	s := Budget(core.OMEGA()).Format()
	for _, want := range []string{"omega node", "Core", "Scratchpad", "PISC", "Node total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format missing %q:\n%s", want, s)
		}
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	cfg := core.Baseline()
	small := core.MachineStats{Cycles: 1000, L1HitRate: 0.9}
	small.AccessesByKind[0] = 1000
	big := small
	big.AccessesByKind[0] = 100000
	big.DRAMBytes = 1 << 20
	eSmall := Energy(cfg, small)
	eBig := Energy(cfg, big)
	if eBig.TotaluJ() <= eSmall.TotaluJ() {
		t.Fatal("more activity must cost more energy")
	}
	if eBig.DRAMuJ == 0 {
		t.Fatal("DRAM energy missing")
	}
}

func TestEnergySavingShape(t *testing.T) {
	// An OMEGA-like run (fewer DRAM bytes, fewer cycles, SP accesses)
	// must save energy vs a baseline-like run — the Figure 21 shape.
	baseCfg, omCfg := core.ScaledPair(1<<14, 8, 0.2)
	baseStats := core.MachineStats{Cycles: 2000000, L1HitRate: 0.7, DRAMBytes: 14 << 20, NoCBytes: 13 << 20}
	baseStats.AccessesByKind[0] = 500000
	baseStats.AccessesByKind[1] = 500000
	omStats := core.MachineStats{Cycles: 800000, L1HitRate: 0.85, DRAMBytes: 4 << 20, NoCBytes: 4 << 20,
		SPAccesses: 400000, PISCOps: 300000}
	omStats.AccessesByKind[0] = 500000
	omStats.AccessesByKind[1] = 500000
	be := Energy(baseCfg, baseStats)
	oe := Energy(omCfg, omStats)
	if oe.Saving(be) < 1.5 {
		t.Fatalf("OMEGA-shaped run should save >1.5x energy, got %.2f", oe.Saving(be))
	}
}

func TestEnergySPAccountingExcludesSPFromCachePath(t *testing.T) {
	cfg := core.OMEGA()
	st := core.MachineStats{Cycles: 1000, L1HitRate: 0.5, SPAccesses: 1000}
	st.AccessesByKind[0] = 1000 // all accesses were SP-served
	e := Energy(cfg, st)
	if e.L1uJ != 0 || e.L2uJ != 0 {
		t.Fatalf("SP-served accesses charged to caches: L1 %v L2 %v", e.L1uJ, e.L2uJ)
	}
	if e.SPuJ == 0 {
		t.Fatal("SP energy missing")
	}
}

func TestEnergyFormat(t *testing.T) {
	e := EnergyBreakdown{Machine: "m", L1uJ: 1, DRAMuJ: 2}
	if !strings.Contains(e.Format(), "DRAM") {
		t.Fatal("format missing DRAM")
	}
	var zero EnergyBreakdown
	if zero.Saving(e) != 0 {
		t.Fatal("zero-energy saving should be 0")
	}
}
