// Package power is the area/power/energy model of paper §X.B: the role
// McPAT (cores), Cacti (SRAM arrays), and IBM 45 nm synthesis (PISC) play
// in the paper. Component constants are calibrated so a Table III-sized
// node reproduces Table IV; smaller scaled machines get proportionally
// smaller arrays.
package power

import (
	"fmt"
	"math"
	"strings"

	"omega/internal/core"
)

// Component describes one block's peak power and area.
type Component struct {
	Name    string
	PowerW  float64
	AreaMM2 float64
}

// NodeBudget is the Table IV breakdown for one machine.
type NodeBudget struct {
	Machine    string
	Components []Component
}

// TotalPower sums component peak power in watts.
func (n NodeBudget) TotalPower() float64 {
	var t float64
	for _, c := range n.Components {
		t += c.PowerW
	}
	return t
}

// TotalArea sums component area in mm².
func (n NodeBudget) TotalArea() float64 {
	var t float64
	for _, c := range n.Components {
		t += c.AreaMM2
	}
	return t
}

// Per-node calibration constants (one core's slice of the chip), taken
// from Table IV of the paper: a 2 MB 8-way L2 bank is 2.86 W / 8.41 mm²,
// a 1 MB scratchpad is 1.40 W / 3.17 mm², etc. SRAM power/area scale
// close to linearly with capacity at fixed technology, which is what
// Cacti reports in this range.
const (
	corePowerW  = 3.11
	coreAreaMM2 = 24.08

	l1PowerW   = 0.20
	l1AreaMM2  = 0.42
	l1RefBytes = 64 << 10 // I+D reference (32 KB each in the testbed)

	// SRAM arrays scale sub-linearly with capacity; the exponents are
	// fit from Table IV's two L2 points (2 MB: 2.86 W / 8.41 mm²,
	// 1 MB: 1.50 W / 4.47 mm²).
	l2Power1MBW  = 1.50
	l2Area1MBMM2 = 4.47
	sramPowerExp = 0.931
	sramAreaExp  = 0.912
	sp1MBPowerW  = 1.40 // Table IV scratchpad (no tags)
	sp1MBAreaMM2 = 3.17

	piscPowerW  = 0.004
	piscAreaMM2 = 0.01
)

// sramScale applies the sub-linear capacity scaling.
func sramScale(base1MB float64, mb, exp float64) float64 {
	if mb <= 0 {
		return 0
	}
	return base1MB * math.Pow(mb, exp)
}

// Budget computes the per-node (per-core slice) Table IV budget for a
// machine configuration.
func Budget(cfg core.Config) NodeBudget {
	mb := func(bytes int) float64 { return float64(bytes) / (1 << 20) }
	b := NodeBudget{Machine: cfg.Name}
	b.Components = append(b.Components,
		Component{"Core", corePowerW, coreAreaMM2},
		Component{"L1 caches", l1PowerW * float64(cfg.L1Bytes*2) / l1RefBytes,
			l1AreaMM2 * float64(cfg.L1Bytes*2) / l1RefBytes},
	)
	if cfg.SPBytesPerCore > 0 {
		b.Components = append(b.Components,
			Component{"Scratchpad", sramScale(sp1MBPowerW, mb(cfg.SPBytesPerCore), sramPowerExp),
				sramScale(sp1MBAreaMM2, mb(cfg.SPBytesPerCore), sramAreaExp)})
		if cfg.PISC {
			b.Components = append(b.Components, Component{"PISC", piscPowerW, piscAreaMM2})
		}
	}
	b.Components = append(b.Components,
		Component{"L2 cache", sramScale(l2Power1MBW, mb(cfg.L2BytesPerCore), sramPowerExp),
			sramScale(l2Area1MBMM2, mb(cfg.L2BytesPerCore), sramAreaExp)})
	return b
}

// Format renders the budget as a Table IV-style block.
func (n NodeBudget) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s node:\n", n.Machine)
	for _, c := range n.Components {
		fmt.Fprintf(&b, "  %-11s %7.3f W  %7.2f mm2\n", c.Name, c.PowerW, c.AreaMM2)
	}
	fmt.Fprintf(&b, "  %-11s %7.3f W  %7.2f mm2\n", "Node total", n.TotalPower(), n.TotalArea())
	return b.String()
}

// Per-event and per-byte energies (picojoules) for the Figure 21 memory-
// system energy breakdown, Cacti/DRAM-power-class constants at 45 nm.
// The scratchpad beats the cache per access because it has no tag array
// or comparators (the paper's explanation for OMEGA's energy edge).
const (
	l1AccessPJ    = 15
	l2AccessPJ    = 120
	spAccessPJ    = 45
	piscOpPJ      = 8
	nocPJPerByte  = 6
	dramPJPerByte = 60
	// Static (leakage+clock) power charged per cycle per MB of on-chip
	// SRAM and per node of logic.
	sramStaticPJPerCycleMB = 0.08
)

// EnergyBreakdown is the Figure 21 result for one run: energy spent per
// memory-system component, in microjoules.
type EnergyBreakdown struct {
	Machine string
	L1uJ    float64
	L2uJ    float64
	SPuJ    float64
	PISCuJ  float64
	NoCuJ   float64
	DRAMuJ  float64
	// StaticuJ is on-chip SRAM leakage over the run.
	StaticuJ float64
}

// TotaluJ sums all buckets.
func (e EnergyBreakdown) TotaluJ() float64 {
	return e.L1uJ + e.L2uJ + e.SPuJ + e.PISCuJ + e.NoCuJ + e.DRAMuJ + e.StaticuJ
}

// Energy computes the memory-system energy of a finished run from its
// machine statistics (Figure 21).
func Energy(cfg core.Config, st core.MachineStats) EnergyBreakdown {
	pjToUJ := 1e-6
	// Scratchpad-served accesses bypass the cache path entirely.
	l1Accesses := float64(st.TotalAccesses()) - float64(st.SPAccesses)
	if l1Accesses < 0 {
		l1Accesses = 0
	}
	l2Accesses := l1Accesses * (1 - st.L1HitRate)
	e := EnergyBreakdown{Machine: cfg.Name}
	e.L1uJ = l1Accesses * l1AccessPJ * pjToUJ
	e.L2uJ = l2Accesses * l2AccessPJ * pjToUJ
	e.SPuJ = float64(st.SPAccesses) * spAccessPJ * pjToUJ
	e.PISCuJ = float64(st.PISCOps) * piscOpPJ * pjToUJ
	e.NoCuJ = float64(st.NoCBytes) * nocPJPerByte * pjToUJ
	e.DRAMuJ = float64(st.DRAMBytes) * dramPJPerByte * pjToUJ
	onChipMB := float64(cfg.TotalOnChipStorage()) / (1 << 20)
	e.StaticuJ = float64(st.Cycles) * onChipMB * sramStaticPJPerCycleMB * pjToUJ
	return e
}

// Saving returns how many times less energy e uses than other.
func (e EnergyBreakdown) Saving(other EnergyBreakdown) float64 {
	if e.TotaluJ() == 0 {
		return 0
	}
	return other.TotaluJ() / e.TotaluJ()
}

// Format renders the breakdown.
func (e EnergyBreakdown) Format() string {
	return fmt.Sprintf(
		"[%s] total %.1f uJ (L1 %.1f, L2 %.1f, SP %.1f, PISC %.2f, NoC %.1f, DRAM %.1f, static %.1f)",
		e.Machine, e.TotaluJ(), e.L1uJ, e.L2uJ, e.SPuJ, e.PISCuJ, e.NoCuJ, e.DRAMuJ, e.StaticuJ)
}
