package cache

import (
	"testing"
	"testing/quick"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// refCache is an executable specification of the cache: a map-based
// set-associative LRU used to cross-check the real implementation
// access-by-access.
type refCache struct {
	ways    int
	numSets uint64
	sets    map[uint64][]refLine // set -> MRU-ordered lines
}

type refLine struct {
	tag    uint64
	dirty  bool
	pinned bool
}

func newRefCache(sizeBytes, ways int) *refCache {
	return &refCache{
		ways:    ways,
		numSets: uint64(sizeBytes / (memsys.LineSize * ways)),
		sets:    make(map[uint64][]refLine),
	}
}

func (r *refCache) locate(a memsys.Addr) (uint64, uint64) {
	la := uint64(memsys.LineAddr(a)) / memsys.LineSize
	return la % r.numSets, la / r.numSets
}

// access returns hit and updates LRU/dirty like the real cache.
func (r *refCache) access(a memsys.Addr, write bool) bool {
	set, tag := r.locate(a)
	lines := r.sets[set]
	for i, l := range lines {
		if l.tag == tag {
			if write {
				l.dirty = true
			}
			// Move to MRU position.
			lines = append(lines[:i], lines[i+1:]...)
			r.sets[set] = append([]refLine{l}, lines...)
			return true
		}
	}
	return false
}

// fill installs a line, evicting LRU if needed; returns the victim tag.
func (r *refCache) fill(a memsys.Addr, dirty bool) (victimAddr memsys.Addr, evicted bool) {
	set, tag := r.locate(a)
	lines := r.sets[set]
	for i, l := range lines {
		if l.tag == tag {
			if dirty {
				l.dirty = true
			}
			lines = append(lines[:i], lines[i+1:]...)
			r.sets[set] = append([]refLine{l}, lines...)
			return 0, false
		}
	}
	if len(lines) >= r.ways {
		// Evict LRU (last, skipping pinned).
		vi := -1
		for i := len(lines) - 1; i >= 0; i-- {
			if !lines[i].pinned {
				vi = i
				break
			}
		}
		if vi == -1 {
			return 0, false // fully pinned: reject
		}
		victim := lines[vi]
		victimAddr = memsys.Addr((victim.tag*r.numSets + set) * memsys.LineSize)
		lines = append(lines[:vi], lines[vi+1:]...)
		evicted = true
	}
	r.sets[set] = append([]refLine{{tag: tag, dirty: dirty}}, lines...)
	return victimAddr, evicted
}

// TestCacheMatchesReferenceModel drives random access/fill traces through
// the real cache and the executable spec and requires identical hit/miss
// and eviction behaviour.
func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		sizeBytes := 1 << 10
		ways := []int{1, 2, 4}[r.Intn(3)]
		real := New(Config{SizeBytes: sizeBytes, Ways: ways, LatencyCycles: 1, Name: "p"})
		ref := newRefCache(sizeBytes, ways)
		for i := 0; i < 3000; i++ {
			a := memsys.Addr(r.Intn(1 << 14))
			write := r.Intn(3) == 0
			gotHit := real.Access(a, write)
			wantHit := ref.access(a, write)
			if gotHit != wantHit {
				t.Logf("seed %d step %d addr %#x: hit %v, ref %v", seed, i, a, gotHit, wantHit)
				return false
			}
			if !gotHit {
				gotV, gotEv := real.Fill(a, write)
				wantV, wantEv := ref.fill(a, write)
				if gotEv != wantEv {
					t.Logf("seed %d step %d: evicted %v, ref %v", seed, i, gotEv, wantEv)
					return false
				}
				if gotEv && gotV.Addr != wantV {
					t.Logf("seed %d step %d: victim %#x, ref %#x", seed, i, gotV.Addr, wantV)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPinExcludesFromEviction pins random lines, then floods the cache and
// requires every pinned line to still be present.
func TestPinExcludesFromEviction(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		c := New(Config{SizeBytes: 1 << 10, Ways: 4, LatencyCycles: 1, Name: "p"})
		var pinned []memsys.Addr
		for i := 0; i < 8; i++ {
			a := memsys.Addr(r.Intn(1<<13)) &^ 63
			if c.Pin(a) {
				pinned = append(pinned, a)
			}
		}
		for i := 0; i < 2000; i++ {
			a := memsys.Addr(r.Intn(1 << 15))
			if !c.Access(a, false) {
				c.Fill(a, false)
			}
		}
		for _, a := range pinned {
			if !c.Lookup(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPinRefusesFullSet(t *testing.T) {
	// 2-way cache: second pin into the same set must fail (a set must
	// keep one replaceable way).
	c := New(Config{SizeBytes: 1 << 10, Ways: 2, LatencyCycles: 1, Name: "p"})
	numSets := (1 << 10) / (64 * 2)
	a1 := memsys.Addr(0)
	a2 := memsys.Addr(numSets * 64) // same set, next tag
	if !c.Pin(a1) {
		t.Fatal("first pin should succeed")
	}
	if c.Pin(a2) {
		t.Fatal("pin must keep one replaceable way per set")
	}
	if c.PinnedLines() != 1 {
		t.Fatalf("pinned lines %d", c.PinnedLines())
	}
	// Re-pinning the same line is idempotent.
	if !c.Pin(a1) || c.PinnedLines() != 1 {
		t.Fatal("re-pin should be idempotent")
	}
}
