package cache

import (
	"testing"

	"omega/internal/memsys"
)

// benchLines sizes the fill sweep at 4× the benchmark cache's capacity,
// so after one warm lap every fill misses and runs the full victim-scan
// and eviction-accounting path.
const benchLines = 4 * benchCacheBytes / memsys.LineSize

const benchCacheBytes = 32 << 10

func benchCache() *Cache {
	return New(Config{SizeBytes: benchCacheBytes, Ways: 8, LatencyCycles: 1, Name: "bench"})
}

// BenchmarkCacheFill measures the install path under steady eviction
// pressure: probe, victim scan over the set's uses row, eviction
// accounting, and the tag/lastUse/dirty writes.
func BenchmarkCacheFill(b *testing.B) {
	c := benchCache()
	for k := 0; k < benchLines; k++ { // warm: every set full, free masks drained
		c.Fill(memsys.Addr(k*memsys.LineSize), false)
	}
	i := 0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Fill(memsys.Addr((i&(benchLines-1))*memsys.LineSize), false)
		i++
	}
}

// TestCacheFillZeroAlloc pins the install path's allocation contract:
// fills — including evicting fills — allocate nothing.
func TestCacheFillZeroAlloc(t *testing.T) {
	c := benchCache()
	for k := 0; k < benchLines; k++ {
		c.Fill(memsys.Addr(k*memsys.LineSize), false)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		c.Fill(memsys.Addr((i&(benchLines-1))*memsys.LineSize), false)
		i++
	})
	if allocs != 0 {
		t.Fatalf("evicting fill allocates %.1f objects/fill, want 0", allocs)
	}
}
