package cache

import (
	"testing"
	"testing/quick"

	"omega/internal/memsys"
	"omega/internal/stats"
)

func small() *Cache {
	// 1 KB, 2-way, 64 B lines -> 8 sets.
	return New(Config{SizeBytes: 1 << 10, Ways: 2, LatencyCycles: 3, Name: "t"})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000, false) {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatal("filled line should hit")
	}
	if !c.Access(0x1038, false) {
		t.Fatal("same line, different offset should hit")
	}
	if c.Access(0x1040, false) {
		t.Fatal("next line should miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small() // 8 sets => set stride is 8*64 = 512 bytes
	const stride = 512
	// Fill both ways of set 0.
	c.Fill(0*stride, false)
	c.Fill(1*stride, false)
	// Touch the first line so the second becomes LRU.
	c.Access(0*stride, false)
	// Fill a third line in set 0: must evict line 1 (LRU).
	victim, evicted := c.Fill(2*stride, false)
	if !evicted {
		t.Fatal("full set must evict")
	}
	if victim.Addr != 1*stride {
		t.Fatalf("evicted %#x, want %#x", victim.Addr, stride)
	}
	if !c.Lookup(0) || c.Lookup(1*stride) || !c.Lookup(2*stride) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := small()
	const stride = 512
	c.Fill(0, true) // dirty
	c.Fill(stride, false)
	victim, evicted := c.Fill(2*stride, false)
	if !evicted || !victim.Dirty || victim.Addr != 0 {
		t.Fatalf("expected dirty victim at 0, got %+v evicted=%v", victim, evicted)
	}
	if c.Writebacks.Value() != 1 {
		t.Fatalf("writebacks=%d", c.Writebacks.Value())
	}
}

func TestWriteDirtiesLine(t *testing.T) {
	c := small()
	c.Fill(0, false)
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("present=%v dirty=%v", present, dirty)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x2000, false)
	present, dirty := c.Invalidate(0x2000)
	if !present || dirty {
		t.Fatalf("present=%v dirty=%v", present, dirty)
	}
	if c.Lookup(0x2000) {
		t.Fatal("line should be gone")
	}
	if present, _ := c.Invalidate(0x9999); present {
		t.Fatal("absent line should report not present")
	}
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := small()
	c.Fill(0, false)
	if _, evicted := c.Fill(0, true); evicted {
		t.Fatal("refilling present line must not evict")
	}
	// The refill with dirty should mark it dirty.
	_, dirty := c.Invalidate(0)
	if !dirty {
		t.Fatal("refill-dirty lost")
	}
}

func TestHitRateAccounting(t *testing.T) {
	c := small()
	c.Access(0, false) // miss
	c.Fill(0, false)
	c.Access(0, false) // hit
	c.Access(0, true)  // hit (write)
	c.Access(64, true) // miss (write)
	if c.Reads.Total != 2 || c.Reads.Hits != 1 {
		t.Fatalf("reads %d/%d", c.Reads.Hits, c.Reads.Total)
	}
	if c.Writes.Total != 2 || c.Writes.Hits != 1 {
		t.Fatalf("writes %d/%d", c.Writes.Hits, c.Writes.Total)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestReset(t *testing.T) {
	c := small()
	c.Fill(0, true)
	c.Access(0, false)
	c.Reset()
	if c.Lookup(0) || c.Reads.Total != 0 || c.Writebacks.Value() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	// Property: for any filled address, the victim produced by conflicting
	// fills reports the original line address.
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		c := New(Config{SizeBytes: 2 << 10, Ways: 1, LatencyCycles: 1, Name: "dm"})
		numSets := (2 << 10) / 64
		set := r.Intn(numSets)
		a1 := memsys.Addr((r.Intn(100)*numSets + set) * 64)
		a2 := memsys.Addr(((r.Intn(100)+200)*numSets + set) * 64)
		c.Fill(a1, false)
		victim, evicted := c.Fill(a2, false)
		return evicted && victim.Addr == memsys.LineAddr(a1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInclusionNeverExceedsCapacity(t *testing.T) {
	c := small()
	r := stats.NewRand(77)
	live := map[memsys.Addr]bool{}
	for i := 0; i < 5000; i++ {
		a := memsys.Addr(r.Intn(1<<16)) &^ 63
		if !c.Access(a, r.Intn(2) == 0) {
			if victim, evicted := c.Fill(a, false); evicted {
				if !live[victim.Addr] {
					t.Fatalf("evicted line %#x never filled", victim.Addr)
				}
				delete(live, victim.Addr)
			}
			live[a] = true
		}
	}
	if len(live) > 16 { // 1KB / 64B
		t.Fatalf("tracking says %d live lines > capacity", len(live))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0, Ways: 1},
		{SizeBytes: 1000, Ways: 3}, // not multiple of 3*64
		{SizeBytes: 1 << 10, Ways: 0},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigAccessors(t *testing.T) {
	c := small()
	if c.Config().Ways != 2 || c.Latency() != 3 {
		t.Fatal("accessors wrong")
	}
}
