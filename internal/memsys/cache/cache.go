// Package cache models a set-associative, write-back, write-allocate cache
// with true LRU replacement. Tag state is tracked exactly (every line has a
// real tag entry), so hit rates reported by the simulator are measured, not
// estimated.
package cache

import (
	"fmt"
	"math/bits"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is total capacity; must be a multiple of LineSize*Ways.
	SizeBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// LatencyCycles is the hit latency.
	LatencyCycles memsys.Cycles
	// Name labels the cache in stats ("L1D-3", "L2-0", ...).
	Name string
}

// setMeta packs one set's per-way bit state into a single 24-byte record,
// so a fill reads one struct where the old layout touched a pin word and a
// flag byte array in separate allocations.
type setMeta struct {
	// pin has bit w set iff way w holds a valid pinned line (the §IX
	// "locked cache lines" alternative to scratchpads — pinned lines are
	// excluded from replacement).
	pin uint64
	// dirty has bit w set iff way w holds a modified line.
	dirty uint64
	// free has bit w set iff way w is invalid (holds no line). Fills into
	// a set with free ways install at the lowest free bit — exactly the
	// first-invalid-way choice of a linear scan — without scanning at
	// all, which covers every warmup fill and every fill after an
	// invalidation.
	free uint64
}

// Cache is one cache instance. Not safe for concurrent use.
//
// Line state lives in one struct-of-arrays slab: per set, the tag words of
// all ways followed by the lastUse words of all ways, contiguously. An
// 8-way set's entire replacement state is 128 adjacent bytes (two hardware
// lines), so the probe loop and the victim scan — the simulator's hottest
// loops — each run over one bounds-check-free contiguous row, and a probe
// followed by a victim scan touches memory once. Per-way flag bits
// (dirty/pinned/free) are packed into one setMeta word-triple per set.
//
// A way index (as returned by HotWay and accepted by PresentAt/SetLastUse)
// is the slab index of the way's tag cell; the way's lastUse cell is at
// index+Ways.
type Cache struct {
	cfg      Config
	ways     int
	numSets  uint64
	useClock uint64
	// setShift/setMask strength-reduce locate's divisions to shift/mask
	// when numSets is a power of two (setShift is -1 otherwise). Scaled
	// geometries are rounded to arbitrary multiples of a set, so both
	// paths stay live.
	setShift int
	setMask  uint64

	// slab[set*2*Ways : set*2*Ways+Ways] holds the set's tag keys (tag+1
	// for a valid way, 0 for an invalid one, so a probe is a single
	// compare per way — an invalid way can never match a key, which is
	// always >= 1); the following Ways words hold the LRU stamps.
	slab []uint64
	meta []setMeta

	// hotLine/hotIdx memoize the line of the most recent read hit so a
	// streaming run of reads to the same 64 B line skips the set probe
	// (SameLineReadHit); hotIdx is -1 when no memo is armed. gen
	// invalidates the memo — and any caller-side buffer keyed on Gen() —
	// whenever the memoized line's identity could have changed: an
	// eviction or invalidation of that line, or a Reset.
	hotLine memsys.Addr
	hotIdx  int
	gen     uint64

	// Stats
	Reads      stats.Ratio // read hits/total
	Writes     stats.Ratio // write hits/total
	Evictions  stats.Counter
	Writebacks stats.Counter
}

// New builds a cache. It panics on nonsensical geometry, since
// configurations are static experiment inputs.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %s: ways must be in 1..64", cfg.Name))
	}
	setBytes := memsys.LineSize * cfg.Ways
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%setBytes != 0 {
		panic(fmt.Sprintf("cache %s: size %d not a multiple of %d",
			cfg.Name, cfg.SizeBytes, setBytes))
	}
	numSets := cfg.SizeBytes / setBytes
	c := &Cache{
		cfg:      cfg,
		ways:     cfg.Ways,
		numSets:  uint64(numSets),
		slab:     make([]uint64, numSets*2*cfg.Ways),
		meta:     make([]setMeta, numSets),
		setShift: -1,
		hotIdx:   -1,
	}
	allFree := c.waysMask()
	for i := range c.meta {
		c.meta[i].free = allFree
	}
	if numSets&(numSets-1) == 0 {
		c.setShift = bits.TrailingZeros64(uint64(numSets))
		c.setMask = uint64(numSets) - 1
	}
	return c
}

// waysMask returns the bitmask with one bit per way.
func (c *Cache) waysMask() uint64 { return ^uint64(0) >> uint(64-c.ways) }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency.
func (c *Cache) Latency() memsys.Cycles { return c.cfg.LatencyCycles }

// Ref is a resolved line coordinate in one cache: set index, the set's
// tag-row base in the slab, and the probe key. Resolving once and reusing
// the Ref lets a caller chain probe → fill → invalidate steps on the same
// line without re-deriving the set arithmetic per step. A Ref stays valid
// across any content mutation (it encodes address geometry, not state)
// but is specific to one cache geometry.
type Ref struct {
	la   memsys.Addr
	set  uint64
	base int
	key  uint64
}

// Resolve maps an address to its Ref.
func (c *Cache) Resolve(a memsys.Addr) Ref {
	la := uint64(memsys.LineAddr(a)) / memsys.LineSize
	if c.setShift >= 0 {
		set := la & c.setMask
		return Ref{
			la:   memsys.Addr(la * memsys.LineSize),
			set:  set,
			base: int(set) * 2 * c.ways,
			key:  (la >> uint(c.setShift)) + 1,
		}
	}
	set := la % c.numSets
	return Ref{
		la:   memsys.Addr(la * memsys.LineSize),
		set:  set,
		base: int(set) * 2 * c.ways,
		key:  la/c.numSets + 1,
	}
}

// findIdx probes one set for key and returns the matching way's tag-cell
// slab index, or -1. It is the single probe loop behind Lookup, Access,
// Invalidate, and Pin.
func (c *Cache) findIdx(base int, key uint64) int {
	for i, t := range c.slab[base : base+c.ways] {
		if t == key {
			return base + i
		}
	}
	return -1
}

// Lookup probes the cache without modifying replacement or contents, and
// reports whether addr is present.
func (c *Cache) Lookup(a memsys.Addr) bool {
	r := c.Resolve(a)
	return c.findIdx(r.base, r.key) >= 0
}

// LookupAt is Lookup over a pre-resolved Ref.
func (c *Cache) LookupAt(r Ref) bool { return c.findIdx(r.base, r.key) >= 0 }

// Gen returns the cache's line-buffer generation. It advances whenever a
// line's identity may have changed (fill-evict, invalidation, Reset), so
// callers can memoize "addr hits this cache" results keyed on (line, Gen)
// and be guaranteed a stale memo never validates.
func (c *Cache) Gen() uint64 { return c.gen }

// dropHot invalidates the same-line memo and advances the generation.
func (c *Cache) dropHot() {
	c.hotIdx = -1
	c.gen++
}

// DropHot force-invalidates the same-line memo and advances the
// generation. It exists for events outside the cache's own view — fault
// degrades, scratchpad reconfiguration — that must conservatively kill
// caller-side line buffers keyed on Gen().
func (c *Cache) DropHot() { c.dropHot() }

// SameLineReadHit is the same-line fast path: if addr falls in the line of
// the most recent read hit and that line is provably untouched since (the
// memo survives only until any eviction or invalidation of it), the read
// is recorded as a hit — replaying exactly the accounting the full probe
// would have done (use-clock tick, LRU touch, read-hit counter) — and true
// is returned. Otherwise nothing is recorded and the caller must take the
// full Access path.
func (c *Cache) SameLineReadHit(a memsys.Addr) bool {
	if c.hotIdx < 0 || memsys.LineAddr(a) != c.hotLine {
		return false
	}
	c.useClock++
	c.slab[c.hotIdx+c.ways] = c.useClock
	c.Reads.Observe(true)
	return true
}

// FillStream is Fill that additionally seeds the same-line memo with the
// installed (or refreshed) line, arming SameLineReadHit for the reads that
// follow a streaming miss. Seeding is skipped when the fill is rejected
// (fully pinned set), so the memo never points at an absent line.
func (c *Cache) FillStream(a memsys.Addr, dirty bool) (victim EvictedLine, evicted bool) {
	r := c.Resolve(a)
	victim, evicted, idx := c.fillAt(r, dirty)
	if idx >= 0 {
		c.hotLine = r.la
		c.hotIdx = idx
	}
	return victim, evicted
}

// HotWay returns the way index of the same-line memo when it is armed for
// the line containing a, and -1 otherwise. Callers batching same-line
// reads use it to learn which way a SameLineReadHit would stamp, so the
// stamps can be applied in bulk later (FoldReadHits/SetLastUse).
func (c *Cache) HotWay(a memsys.Addr) int {
	if c.hotIdx >= 0 && memsys.LineAddr(a) == c.hotLine {
		return c.hotIdx
	}
	return -1
}

// PresentAt reports whether way index idx currently holds the line
// containing a. It is the validation step of the run-fold batching path:
// a cached (line, way) pair from an earlier probe is only trusted when the
// tag still matches, so any eviction or invalidation since simply fails
// the check and the caller falls back to a full probe. idx may be stale
// or from another cache of identical geometry; an out-of-set idx can
// never match (the set's key is unique to it), but is range-checked
// against the line's own tag row anyway so a wild index cannot read a
// coincidentally equal tag from a different set.
func (c *Cache) PresentAt(idx int, a memsys.Addr) bool {
	r := c.Resolve(a)
	return idx >= r.base && idx < r.base+c.ways && c.slab[idx] == r.key
}

// FoldReadHits applies the accounting of n same-line read hits in one
// step — n use-clock ticks and n read hits, exactly what n calls of
// SameLineReadHit (or hitting AccessStreamRead probes) would record — and
// returns the use clock after the fold, from which the caller back-computes
// the LRU stamps each folded hit would have left (SetLastUse).
func (c *Cache) FoldReadHits(n uint64) uint64 {
	c.useClock += n
	c.Reads.AddHits(n)
	return c.useClock
}

// SetLastUse stamps the LRU clock of way idx, completing a fold: the
// stamp must be the use-clock value the last replayed hit of that way
// would have observed.
func (c *Cache) SetLastUse(idx int, use uint64) { c.slab[idx+c.ways] = use }

// ArmHot re-seeds the same-line memo with a (line, way) pair the caller
// has validated via PresentAt — the state a hitting AccessStreamRead of
// that line would have left. It touches no counters and no generation.
func (c *Cache) ArmHot(a memsys.Addr, idx int) {
	c.hotLine = memsys.LineAddr(a)
	c.hotIdx = idx
}

// EvictedLine describes a victim produced by a fill.
type EvictedLine struct {
	Addr  memsys.Addr
	Dirty bool
}

// Access performs a read or write of addr. On a hit, LRU is updated and the
// line is dirtied for writes. On a miss, the line is *not* filled — callers
// first consult the next level, then call Fill. The hit result lets the
// hierarchy charge the correct latency chain.
func (c *Cache) Access(a memsys.Addr, write bool) (hit bool) {
	return c.AccessAt(c.Resolve(a), write)
}

// AccessAt is Access over a pre-resolved Ref.
func (c *Cache) AccessAt(r Ref, write bool) (hit bool) {
	c.useClock++
	if i := c.findIdx(r.base, r.key); i >= 0 {
		c.slab[i+c.ways] = c.useClock
		if write {
			c.meta[r.set].dirty |= 1 << uint(i-r.base)
			c.Writes.Observe(true)
		} else {
			c.Reads.Observe(true)
		}
		return true
	}
	if write {
		c.Writes.Observe(false)
	} else {
		c.Reads.Observe(false)
	}
	return false
}

// AccessStreamRead is Access(a, false) that additionally seeds the
// same-line memo on a hit, arming SameLineReadHit for the next read of
// this line. The hierarchy calls it for the streaming access kinds
// (edge lists, graph metadata) and plain Access for everything else, so
// point accesses (vertex properties) interleaved with a stream do not
// evict the stream's memo. Seeding affects only which later reads take
// the fast path — the replayed accounting is identical either way.
func (c *Cache) AccessStreamRead(a memsys.Addr) (hit bool) {
	return c.AccessStreamReadAt(c.Resolve(a))
}

// AccessStreamReadAt is AccessStreamRead over a pre-resolved Ref.
func (c *Cache) AccessStreamReadAt(r Ref) (hit bool) {
	c.useClock++
	if i := c.findIdx(r.base, r.key); i >= 0 {
		c.slab[i+c.ways] = c.useClock
		c.Reads.Observe(true)
		c.hotLine = r.la
		c.hotIdx = i
		return true
	}
	c.Reads.Observe(false)
	return false
}

// Fill installs the line containing addr, returning the evicted victim if
// any. If dirty is set the new line is installed dirty (write-allocate
// stores).
func (c *Cache) Fill(a memsys.Addr, dirty bool) (victim EvictedLine, evicted bool) {
	victim, evicted, _ = c.fillAt(c.Resolve(a), dirty)
	return victim, evicted
}

// FillAt is Fill over a pre-resolved Ref.
func (c *Cache) FillAt(r Ref, dirty bool) (victim EvictedLine, evicted bool) {
	victim, evicted, _ = c.fillAt(r, dirty)
	return victim, evicted
}

// FillMissAt installs a line the caller has just probed for and missed —
// the known-absent fill contract: between the missing probe and this call
// the cache saw no fill (invalidations are fine; they only remove lines),
// so the present-line refresh probe is skipped entirely. With a free way
// available the fill then touches exactly one way's state, no scan at all.
func (c *Cache) FillMissAt(r Ref, dirty bool) (victim EvictedLine, evicted bool) {
	c.useClock++
	victim, evicted, _ = c.install(r, dirty)
	return victim, evicted
}

// FillMissStreamAt is FillMissAt that additionally seeds the same-line
// memo with the installed line (the known-absent counterpart of
// FillStream). Seeding is skipped when the fill is rejected (fully pinned
// set), so the memo never points at an absent line.
func (c *Cache) FillMissStreamAt(r Ref, dirty bool) (victim EvictedLine, evicted bool) {
	c.useClock++
	victim, evicted, idx := c.install(r, dirty)
	if idx >= 0 {
		c.hotLine = r.la
		c.hotIdx = idx
	}
	return victim, evicted
}

// fillAt is the shared Fill body; it also returns the tag-cell index of
// the way holding addr after the fill (-1 when a fully pinned set rejected
// it). In the steady-state case — full set, nothing pinned — one fused
// pass probes the tag row while tracking the LRU victim: a key match wins
// (refresh), else the first strict-minimum lastUse way, exactly the
// choices the probe-then-scan sequence makes. Cold or pinned sets take
// the general probe-then-install path.
func (c *Cache) fillAt(r Ref, dirty bool) (victim EvictedLine, evicted bool, installed int) {
	c.useClock++
	m := &c.meta[r.set]
	if m.free == 0 && m.pin == 0 {
		tags := c.slab[r.base : r.base+c.ways]
		uses := c.slab[r.base+c.ways : r.base+2*c.ways]
		w := 0
		min := uses[0]
		for i, t := range tags {
			if t == r.key {
				// Already present (e.g. refilled by a racing path): refresh.
				uses[i] = c.useClock
				if dirty {
					m.dirty |= 1 << uint(i)
				}
				return EvictedLine{}, false, r.base + i
			}
			if u := uses[i]; u < min {
				w, min = i, u
			}
		}
		t := tags[w]
		c.Evictions.Inc()
		d := m.dirty>>uint(w)&1 != 0
		if d {
			c.Writebacks.Inc()
		}
		victim = EvictedLine{Addr: c.reconstruct(r.set, t-1), Dirty: d}
		idx := r.base + w
		if idx == c.hotIdx {
			c.dropHot()
		}
		tags[w] = r.key
		bit := uint64(1) << uint(w)
		if dirty {
			m.dirty |= bit
		} else {
			m.dirty &^= bit
		}
		uses[w] = c.useClock
		return victim, true, idx
	}
	if i := c.findIdx(r.base, r.key); i >= 0 {
		// Already present (e.g. refilled by a racing path): refresh.
		c.slab[i+c.ways] = c.useClock
		if dirty {
			m.dirty |= 1 << uint(i-r.base)
		}
		return EvictedLine{}, false, i
	}
	return c.install(r, dirty)
}

// install places a known-absent line: lowest free way first (no scan),
// else the LRU victim among non-pinned ways, else rejection when the
// whole set is pinned. The use clock has already been ticked by the
// caller.
func (c *Cache) install(r Ref, dirty bool) (victim EvictedLine, evicted bool, installed int) {
	m := &c.meta[r.set]
	var w int
	if m.free != 0 {
		// Free way: the lowest free bit is the first invalid way a linear
		// scan would pick.
		w = bits.TrailingZeros64(m.free)
		m.free &^= 1 << uint(w)
	} else {
		// Victim scan over the contiguous lastUse row: first way with the
		// minimum stamp, skipping pinned ways.
		uses := c.slab[r.base+c.ways : r.base+2*c.ways]
		if m.pin == 0 {
			w = 0
			min := uses[0]
			for i := 1; i < len(uses); i++ {
				if uses[i] < min {
					w, min = i, uses[i]
				}
			}
		} else {
			w = -1
			var min uint64
			for i, u := range uses {
				if m.pin>>uint(i)&1 != 0 {
					continue
				}
				if w == -1 || u < min {
					w, min = i, u
				}
			}
			if w == -1 {
				// A fully pinned set rejects the fill (the caller treats
				// the access as uncached).
				return EvictedLine{}, false, -1
			}
		}
		idx := r.base + w
		t := c.slab[idx] // valid: free == 0 means every way holds a line
		c.Evictions.Inc()
		d := m.dirty>>uint(w)&1 != 0
		if d {
			c.Writebacks.Inc()
		}
		victim = EvictedLine{Addr: c.reconstruct(r.set, t-1), Dirty: d}
		evicted = true
	}
	idx := r.base + w
	if idx == c.hotIdx {
		// Reached on eviction of the memoized way; for free ways the memo
		// can never point here (it never points at an invalid way), but
		// the check keeps the generation contract unconditional.
		c.dropHot()
	}
	// The installed way is never pinned (pinned valid ways are excluded
	// from victim selection and pin implies valid), so no pin update is
	// needed.
	c.slab[idx] = r.key
	bit := uint64(1) << uint(w)
	if dirty {
		m.dirty |= bit
	} else {
		m.dirty &^= bit
	}
	c.slab[idx+c.ways] = c.useClock
	return victim, evicted, idx
}

// Pin installs the line containing addr (if absent) and excludes it from
// replacement — the §IX "locked cache lines" technique. It fails (returns
// false) when pinning would fill the whole set, which must keep at least
// one replaceable way.
func (c *Cache) Pin(a memsys.Addr) bool {
	r := c.Resolve(a)
	if i := c.findIdx(r.base, r.key); i >= 0 {
		c.meta[r.set].pin |= 1 << uint(i-r.base)
		return true
	}
	if bits.OnesCount64(c.meta[r.set].pin) >= c.ways-1 {
		return false
	}
	c.FillAt(r, false)
	if i := c.findIdx(r.base, r.key); i >= 0 {
		c.meta[r.set].pin |= 1 << uint(i-r.base)
		return true
	}
	return false
}

// PinnedLines counts pinned lines across the cache.
func (c *Cache) PinnedLines() int {
	n := 0
	for i := range c.meta {
		n += bits.OnesCount64(c.meta[i].pin)
	}
	return n
}

// Invalidate drops the line containing addr if present, returning whether
// it was present and dirty (the caller is responsible for the writeback).
func (c *Cache) Invalidate(a memsys.Addr) (present, dirty bool) {
	return c.InvalidateAt(c.Resolve(a))
}

// InvalidateAt is Invalidate over a pre-resolved Ref. Because a Ref
// encodes only geometry, one Ref can drive the invalidation sweep across
// every same-geometry cache in a hierarchy.
func (c *Cache) InvalidateAt(r Ref) (present, dirty bool) {
	if i := c.findIdx(r.base, r.key); i >= 0 {
		if i == c.hotIdx {
			c.dropHot()
		}
		m := &c.meta[r.set]
		bit := uint64(1) << uint(i-r.base)
		present, dirty = true, m.dirty&bit != 0
		c.slab[i] = 0
		m.dirty &^= bit
		m.pin &^= bit
		m.free |= bit
	}
	return
}

// reconstruct rebuilds a line-aligned address from set index and tag.
func (c *Cache) reconstruct(set, tag uint64) memsys.Addr {
	return memsys.Addr((tag*c.numSets + set) * memsys.LineSize)
}

// HitRate returns the combined read+write hit rate.
func (c *Cache) HitRate() float64 {
	total := c.Reads.Total + c.Writes.Total
	if total == 0 {
		return 0
	}
	return float64(c.Reads.Hits+c.Writes.Hits) / float64(total)
}

// State is an opaque cache checkpoint: contents, replacement state, the
// same-line memo, the generation, and statistics.
type State struct {
	slab     []uint64
	meta     []setMeta
	useClock uint64
	hotLine  memsys.Addr
	hotIdx   int
	gen      uint64

	reads, writes         stats.Ratio
	evictions, writebacks stats.Counter
}

// Snapshot captures the full cache state for later Restore.
func (c *Cache) Snapshot() State {
	return State{
		slab:       append([]uint64(nil), c.slab...),
		meta:       append([]setMeta(nil), c.meta...),
		useClock:   c.useClock,
		hotLine:    c.hotLine,
		hotIdx:     c.hotIdx,
		gen:        c.gen,
		reads:      c.Reads,
		writes:     c.Writes,
		evictions:  c.Evictions,
		writebacks: c.Writebacks,
	}
}

// Restore rewinds the cache to a Snapshot (which must come from a cache
// of identical geometry).
func (c *Cache) Restore(s State) {
	copy(c.slab, s.slab)
	copy(c.meta, s.meta)
	c.useClock = s.useClock
	c.hotLine = s.hotLine
	c.hotIdx = s.hotIdx
	c.gen = s.gen
	c.Reads = s.reads
	c.Writes = s.writes
	c.Evictions = s.evictions
	c.Writebacks = s.writebacks
}

// Reset clears contents and statistics. The line-buffer generation is NOT
// reset — it advances, so memos taken before the Reset can never validate.
func (c *Cache) Reset() {
	c.dropHot()
	clear(c.slab)
	allFree := c.waysMask()
	for i := range c.meta {
		c.meta[i] = setMeta{free: allFree}
	}
	c.useClock = 0
	c.Reads = stats.Ratio{}
	c.Writes = stats.Ratio{}
	c.Evictions.Reset()
	c.Writebacks.Reset()
}
