// Package cache models a set-associative, write-back, write-allocate cache
// with true LRU replacement. Tag state is tracked exactly (every line has a
// real tag entry), so hit rates reported by the simulator are measured, not
// estimated.
package cache

import (
	"fmt"
	"math/bits"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is total capacity; must be a multiple of LineSize*Ways.
	SizeBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// LatencyCycles is the hit latency.
	LatencyCycles memsys.Cycles
	// Name labels the cache in stats ("L1D-3", "L2-0", ...).
	Name string
}

// flagDirty marks a way dirty (see Cache.flags).
const flagDirty uint8 = 1

// Cache is one cache instance. Not safe for concurrent use.
//
// Line state is stored structure-of-arrays, indexed by set*Ways+way: a tag
// probe scans one contiguous run of tagp (64 bytes for an 8-way set — a
// single hardware cache line), and the LRU stamps and flag bytes are only
// touched on the way that matters. This layout roughly halves the probe
// cost of the simulator's hottest loops (findIdx, fill) compared to an
// array-of-structs set.
type Cache struct {
	cfg      Config
	ways     int
	numSets  uint64
	useClock uint64
	// setShift/setMask strength-reduce locate's divisions to shift/mask
	// when numSets is a power of two (setShift is -1 otherwise). Scaled
	// geometries are rounded to arbitrary multiples of a set, so both
	// paths stay live.
	setShift int
	setMask  uint64

	// tagp[i] holds tag+1 for a valid way and 0 for an invalid one, so a
	// probe is a single compare per way (an invalid way can never match a
	// key, which is always >= 1). flags[i] carries the dirty bit;
	// lastUse[i] implements LRU via the monotonic use counter.
	tagp    []uint64
	flags   []uint8
	lastUse []uint64
	// pinMask[set] has bit w set iff way w of the set holds a valid pinned
	// line (the §IX "locked cache lines" alternative to scratchpads —
	// pinned lines are excluded from replacement). Keeping pin state per
	// set instead of per way means the fill victim scan touches one word
	// that is zero in every cache that never pins, instead of the flags
	// byte of every way.
	pinMask []uint64

	// hotLine/hotIdx memoize the line of the most recent read hit so a
	// streaming run of reads to the same 64 B line skips the set probe
	// (SameLineReadHit); hotIdx is -1 when no memo is armed. gen
	// invalidates the memo — and any caller-side buffer keyed on Gen() —
	// whenever the memoized line's identity could have changed: an
	// eviction or invalidation of that line, or a Reset.
	hotLine memsys.Addr
	hotIdx  int
	gen     uint64

	// Stats
	Reads      stats.Ratio // read hits/total
	Writes     stats.Ratio // write hits/total
	Evictions  stats.Counter
	Writebacks stats.Counter
}

// New builds a cache. It panics on nonsensical geometry, since
// configurations are static experiment inputs.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %s: ways must be in 1..64", cfg.Name))
	}
	setBytes := memsys.LineSize * cfg.Ways
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%setBytes != 0 {
		panic(fmt.Sprintf("cache %s: size %d not a multiple of %d",
			cfg.Name, cfg.SizeBytes, setBytes))
	}
	numSets := cfg.SizeBytes / setBytes
	n := numSets * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		ways:     cfg.Ways,
		numSets:  uint64(numSets),
		tagp:     make([]uint64, n),
		flags:    make([]uint8, n),
		lastUse:  make([]uint64, n),
		pinMask:  make([]uint64, numSets),
		setShift: -1,
		hotIdx:   -1,
	}
	if numSets&(numSets-1) == 0 {
		c.setShift = bits.TrailingZeros64(uint64(numSets))
		c.setMask = uint64(numSets) - 1
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency.
func (c *Cache) Latency() memsys.Cycles { return c.cfg.LatencyCycles }

// locate maps an address to its set index, the set's base index in the way
// arrays, and the probe key (tag+1).
func (c *Cache) locate(a memsys.Addr) (set uint64, base int, key uint64) {
	la := uint64(memsys.LineAddr(a)) / memsys.LineSize
	if c.setShift >= 0 {
		set = la & c.setMask
		return set, int(set) * c.ways, (la >> uint(c.setShift)) + 1
	}
	set = la % c.numSets
	return set, int(set) * c.ways, la/c.numSets + 1
}

// findIdx probes one set for key and returns the matching way's index, or
// -1. It is the single probe loop behind Lookup, Access, Invalidate, and
// Pin.
func (c *Cache) findIdx(base int, key uint64) int {
	for i, t := range c.tagp[base : base+c.ways] {
		if t == key {
			return base + i
		}
	}
	return -1
}

// Lookup probes the cache without modifying replacement or contents, and
// reports whether addr is present.
func (c *Cache) Lookup(a memsys.Addr) bool {
	_, base, key := c.locate(a)
	return c.findIdx(base, key) >= 0
}

// Gen returns the cache's line-buffer generation. It advances whenever a
// line's identity may have changed (fill-evict, invalidation, Reset), so
// callers can memoize "addr hits this cache" results keyed on (line, Gen)
// and be guaranteed a stale memo never validates.
func (c *Cache) Gen() uint64 { return c.gen }

// dropHot invalidates the same-line memo and advances the generation.
func (c *Cache) dropHot() {
	c.hotIdx = -1
	c.gen++
}

// DropHot force-invalidates the same-line memo and advances the
// generation. It exists for events outside the cache's own view — fault
// degrades, scratchpad reconfiguration — that must conservatively kill
// caller-side line buffers keyed on Gen().
func (c *Cache) DropHot() { c.dropHot() }

// SameLineReadHit is the same-line fast path: if addr falls in the line of
// the most recent read hit and that line is provably untouched since (the
// memo survives only until any eviction or invalidation of it), the read
// is recorded as a hit — replaying exactly the accounting the full probe
// would have done (use-clock tick, LRU touch, read-hit counter) — and true
// is returned. Otherwise nothing is recorded and the caller must take the
// full Access path.
func (c *Cache) SameLineReadHit(a memsys.Addr) bool {
	if c.hotIdx < 0 || memsys.LineAddr(a) != c.hotLine {
		return false
	}
	c.useClock++
	c.lastUse[c.hotIdx] = c.useClock
	c.Reads.Observe(true)
	return true
}

// FillStream is Fill that additionally seeds the same-line memo with the
// installed (or refreshed) line, arming SameLineReadHit for the reads that
// follow a streaming miss. Seeding is skipped when the fill is rejected
// (fully pinned set), so the memo never points at an absent line.
func (c *Cache) FillStream(a memsys.Addr, dirty bool) (victim EvictedLine, evicted bool) {
	victim, evicted, idx := c.fill(a, dirty)
	if idx >= 0 {
		c.hotLine = memsys.LineAddr(a)
		c.hotIdx = idx
	}
	return victim, evicted
}

// HotWay returns the way index (into the flat way arrays) of the
// same-line memo when it is armed for the line containing a, and -1
// otherwise. Callers batching same-line reads use it to learn which way a
// SameLineReadHit would stamp, so the stamps can be applied in bulk later
// (FoldReadHits/SetLastUse).
func (c *Cache) HotWay(a memsys.Addr) int {
	if c.hotIdx >= 0 && memsys.LineAddr(a) == c.hotLine {
		return c.hotIdx
	}
	return -1
}

// PresentAt reports whether way index idx currently holds the line
// containing a. It is the validation step of the run-fold batching path:
// a cached (line, way) pair from an earlier probe is only trusted when the
// tag still matches, so any eviction or invalidation since simply fails
// the check and the caller falls back to a full probe. idx may be stale
// or from another cache of identical geometry; an out-of-set idx can
// never match (the set's key is unique to it), but is range-checked
// against the line's own set anyway so a wild index cannot read a
// coincidentally equal tag from a different set.
func (c *Cache) PresentAt(idx int, a memsys.Addr) bool {
	_, base, key := c.locate(a)
	return idx >= base && idx < base+c.ways && c.tagp[idx] == key
}

// FoldReadHits applies the accounting of n same-line read hits in one
// step — n use-clock ticks and n read hits, exactly what n calls of
// SameLineReadHit (or hitting AccessStreamRead probes) would record — and
// returns the use clock after the fold, from which the caller back-computes
// the LRU stamps each folded hit would have left (SetLastUse).
func (c *Cache) FoldReadHits(n uint64) uint64 {
	c.useClock += n
	c.Reads.AddHits(n)
	return c.useClock
}

// SetLastUse stamps the LRU clock of way idx, completing a fold: the
// stamp must be the use-clock value the last replayed hit of that way
// would have observed.
func (c *Cache) SetLastUse(idx int, use uint64) { c.lastUse[idx] = use }

// ArmHot re-seeds the same-line memo with a (line, way) pair the caller
// has validated via PresentAt — the state a hitting AccessStreamRead of
// that line would have left. It touches no counters and no generation.
func (c *Cache) ArmHot(a memsys.Addr, idx int) {
	c.hotLine = memsys.LineAddr(a)
	c.hotIdx = idx
}

// EvictedLine describes a victim produced by a fill.
type EvictedLine struct {
	Addr  memsys.Addr
	Dirty bool
}

// Access performs a read or write of addr. On a hit, LRU is updated and the
// line is dirtied for writes. On a miss, the line is *not* filled — callers
// first consult the next level, then call Fill. The hit result lets the
// hierarchy charge the correct latency chain.
func (c *Cache) Access(a memsys.Addr, write bool) (hit bool) {
	_, base, key := c.locate(a)
	c.useClock++
	if i := c.findIdx(base, key); i >= 0 {
		c.lastUse[i] = c.useClock
		if write {
			c.flags[i] |= flagDirty
			c.Writes.Observe(true)
		} else {
			c.Reads.Observe(true)
		}
		return true
	}
	if write {
		c.Writes.Observe(false)
	} else {
		c.Reads.Observe(false)
	}
	return false
}

// AccessStreamRead is Access(a, false) that additionally seeds the
// same-line memo on a hit, arming SameLineReadHit for the next read of
// this line. The hierarchy calls it for the streaming access kinds
// (edge lists, graph metadata) and plain Access for everything else, so
// point accesses (vertex properties) interleaved with a stream do not
// evict the stream's memo. Seeding affects only which later reads take
// the fast path — the replayed accounting is identical either way.
func (c *Cache) AccessStreamRead(a memsys.Addr) (hit bool) {
	_, base, key := c.locate(a)
	c.useClock++
	if i := c.findIdx(base, key); i >= 0 {
		c.lastUse[i] = c.useClock
		c.Reads.Observe(true)
		c.hotLine = memsys.LineAddr(a)
		c.hotIdx = i
		return true
	}
	c.Reads.Observe(false)
	return false
}

// Fill installs the line containing addr, returning the evicted victim if
// any. If dirty is set the new line is installed dirty (write-allocate
// stores).
func (c *Cache) Fill(a memsys.Addr, dirty bool) (victim EvictedLine, evicted bool) {
	victim, evicted, _ = c.fill(a, dirty)
	return victim, evicted
}

// fill is the shared Fill body; it also returns the index of the way
// holding addr after the fill (-1 when a fully pinned set rejected it).
//
// The set is scanned once, resolving presence and victim selection in the
// same pass: a key match takes the refresh path; otherwise the first
// invalid way wins (the tail must still be scanned for a key match), and
// failing that the first minimum-lastUse non-pinned way — the identical
// outcome of a findIdx probe followed by a separate victim scan.
func (c *Cache) fill(a memsys.Addr, dirty bool) (victim EvictedLine, evicted bool, installed int) {
	set, base, key := c.locate(a)
	c.useClock++
	pinned := c.pinMask[set]
	// Subslice the way arrays once so the scan indexes bounds-check-free;
	// this loop dominates the simulator's profile (every L2 fill plus every
	// pollution fill runs it).
	tags := c.tagp[base : base+c.ways]
	uses := c.lastUse[base : base+c.ways]
	victimIdx := -1
	haveInvalid := false
	var victimUse uint64
	for i, t := range tags {
		if t == 0 {
			if !haveInvalid {
				victimIdx = base + i
				haveInvalid = true
			}
			continue
		}
		if t == key {
			// Already present (e.g. refilled by a racing path): refresh.
			c.lastUse[base+i] = c.useClock
			if dirty {
				c.flags[base+i] |= flagDirty
			}
			return EvictedLine{}, false, base + i
		}
		if haveInvalid || pinned>>uint(i)&1 != 0 {
			continue
		}
		if victimIdx == -1 || uses[i] < victimUse {
			victimIdx = base + i
			victimUse = uses[i]
		}
	}
	// A fully pinned set rejects the fill (the caller treats the access
	// as uncached).
	if victimIdx == -1 {
		return EvictedLine{}, false, -1
	}
	if victimIdx == c.hotIdx {
		c.dropHot()
	}
	if t := c.tagp[victimIdx]; t != 0 {
		c.Evictions.Inc()
		d := c.flags[victimIdx]&flagDirty != 0
		if d {
			c.Writebacks.Inc()
		}
		victim = EvictedLine{Addr: c.reconstruct(set, t-1), Dirty: d}
		evicted = true
	}
	// The victim way is never pinned (pinned valid ways are excluded from
	// selection and pinMask implies valid), so no pinMask update is needed.
	c.tagp[victimIdx] = key
	if dirty {
		c.flags[victimIdx] = flagDirty
	} else {
		c.flags[victimIdx] = 0
	}
	c.lastUse[victimIdx] = c.useClock
	return victim, evicted, victimIdx
}

// Pin installs the line containing addr (if absent) and excludes it from
// replacement — the §IX "locked cache lines" technique. It fails (returns
// false) when pinning would fill the whole set, which must keep at least
// one replaceable way.
func (c *Cache) Pin(a memsys.Addr) bool {
	set, base, key := c.locate(a)
	if i := c.findIdx(base, key); i >= 0 {
		c.pinMask[set] |= 1 << uint(i-base)
		return true
	}
	if bits.OnesCount64(c.pinMask[set]) >= c.ways-1 {
		return false
	}
	c.Fill(a, false)
	if i := c.findIdx(base, key); i >= 0 {
		c.pinMask[set] |= 1 << uint(i-base)
		return true
	}
	return false
}

// PinnedLines counts pinned lines across the cache.
func (c *Cache) PinnedLines() int {
	n := 0
	for _, m := range c.pinMask {
		n += bits.OnesCount64(m)
	}
	return n
}

// Invalidate drops the line containing addr if present, returning whether
// it was present and dirty (the caller is responsible for the writeback).
func (c *Cache) Invalidate(a memsys.Addr) (present, dirty bool) {
	set, base, key := c.locate(a)
	if i := c.findIdx(base, key); i >= 0 {
		if i == c.hotIdx {
			c.dropHot()
		}
		present, dirty = true, c.flags[i]&flagDirty != 0
		c.tagp[i] = 0
		c.flags[i] = 0
		if c.pinMask[set] != 0 {
			c.pinMask[set] &^= 1 << uint(i-base)
		}
	}
	return
}

// reconstruct rebuilds a line-aligned address from set index and tag.
func (c *Cache) reconstruct(set, tag uint64) memsys.Addr {
	return memsys.Addr((tag*c.numSets + set) * memsys.LineSize)
}

// HitRate returns the combined read+write hit rate.
func (c *Cache) HitRate() float64 {
	total := c.Reads.Total + c.Writes.Total
	if total == 0 {
		return 0
	}
	return float64(c.Reads.Hits+c.Writes.Hits) / float64(total)
}

// State is an opaque cache checkpoint: contents, replacement state, the
// same-line memo, the generation, and statistics.
type State struct {
	tagp     []uint64
	flags    []uint8
	lastUse  []uint64
	pinMask  []uint64
	useClock uint64
	hotLine  memsys.Addr
	hotIdx   int
	gen      uint64

	reads, writes          stats.Ratio
	evictions, writebacks  stats.Counter
}

// Snapshot captures the full cache state for later Restore.
func (c *Cache) Snapshot() State {
	return State{
		tagp:       append([]uint64(nil), c.tagp...),
		flags:      append([]uint8(nil), c.flags...),
		lastUse:    append([]uint64(nil), c.lastUse...),
		pinMask:    append([]uint64(nil), c.pinMask...),
		useClock:   c.useClock,
		hotLine:    c.hotLine,
		hotIdx:     c.hotIdx,
		gen:        c.gen,
		reads:      c.Reads,
		writes:     c.Writes,
		evictions:  c.Evictions,
		writebacks: c.Writebacks,
	}
}

// Restore rewinds the cache to a Snapshot (which must come from a cache
// of identical geometry).
func (c *Cache) Restore(s State) {
	copy(c.tagp, s.tagp)
	copy(c.flags, s.flags)
	copy(c.lastUse, s.lastUse)
	copy(c.pinMask, s.pinMask)
	c.useClock = s.useClock
	c.hotLine = s.hotLine
	c.hotIdx = s.hotIdx
	c.gen = s.gen
	c.Reads = s.reads
	c.Writes = s.writes
	c.Evictions = s.evictions
	c.Writebacks = s.writebacks
}

// Reset clears contents and statistics. The line-buffer generation is NOT
// reset — it advances, so memos taken before the Reset can never validate.
func (c *Cache) Reset() {
	c.dropHot()
	clear(c.tagp)
	clear(c.flags)
	clear(c.lastUse)
	clear(c.pinMask)
	c.useClock = 0
	c.Reads = stats.Ratio{}
	c.Writes = stats.Ratio{}
	c.Evictions.Reset()
	c.Writebacks.Reset()
}
