// Package cache models a set-associative, write-back, write-allocate cache
// with true LRU replacement. Tag state is tracked exactly (every line has a
// real tag entry), so hit rates reported by the simulator are measured, not
// estimated.
package cache

import (
	"fmt"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is total capacity; must be a multiple of LineSize*Ways.
	SizeBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// LatencyCycles is the hit latency.
	LatencyCycles memsys.Cycles
	// Name labels the cache in stats ("L1D-3", "L2-0", ...).
	Name string
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// pinned lines are excluded from replacement (the §IX "locked
	// cache lines" alternative to scratchpads).
	pinned bool
	// lastUse implements LRU via a monotonic use counter.
	lastUse uint64
}

// Cache is one cache instance. Not safe for concurrent use.
type Cache struct {
	cfg      Config
	sets     [][]line
	numSets  uint64
	useClock uint64

	// Stats
	Reads      stats.Ratio // read hits/total
	Writes     stats.Ratio // write hits/total
	Evictions  stats.Counter
	Writebacks stats.Counter
}

// New builds a cache. It panics on nonsensical geometry, since
// configurations are static experiment inputs.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", cfg.Name))
	}
	setBytes := memsys.LineSize * cfg.Ways
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%setBytes != 0 {
		panic(fmt.Sprintf("cache %s: size %d not a multiple of %d",
			cfg.Name, cfg.SizeBytes, setBytes))
	}
	numSets := cfg.SizeBytes / setBytes
	c := &Cache{
		cfg:     cfg,
		numSets: uint64(numSets),
		sets:    make([][]line, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency.
func (c *Cache) Latency() memsys.Cycles { return c.cfg.LatencyCycles }

func (c *Cache) locate(a memsys.Addr) (setIdx uint64, tag uint64) {
	la := uint64(memsys.LineAddr(a)) / memsys.LineSize
	return la % c.numSets, la / c.numSets
}

// findLine probes one set for tag and returns the matching valid line, or
// nil. It is the single probe loop behind Lookup, Access, Fill, Invalidate,
// and Pin.
func (c *Cache) findLine(set, tag uint64) *line {
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return &s[i]
		}
	}
	return nil
}

// Lookup probes the cache without modifying replacement or contents, and
// reports whether addr is present.
func (c *Cache) Lookup(a memsys.Addr) bool {
	set, tag := c.locate(a)
	return c.findLine(set, tag) != nil
}

// EvictedLine describes a victim produced by a fill.
type EvictedLine struct {
	Addr  memsys.Addr
	Dirty bool
}

// Access performs a read or write of addr. On a hit, LRU is updated and the
// line is dirtied for writes. On a miss, the line is *not* filled — callers
// first consult the next level, then call Fill. The hit result lets the
// hierarchy charge the correct latency chain.
func (c *Cache) Access(a memsys.Addr, write bool) (hit bool) {
	set, tag := c.locate(a)
	c.useClock++
	if l := c.findLine(set, tag); l != nil {
		l.lastUse = c.useClock
		if write {
			l.dirty = true
			c.Writes.Observe(true)
		} else {
			c.Reads.Observe(true)
		}
		return true
	}
	if write {
		c.Writes.Observe(false)
	} else {
		c.Reads.Observe(false)
	}
	return false
}

// Fill installs the line containing addr, returning the evicted victim if
// any. If dirty is set the new line is installed dirty (write-allocate
// stores).
func (c *Cache) Fill(a memsys.Addr, dirty bool) (victim EvictedLine, evicted bool) {
	set, tag := c.locate(a)
	c.useClock++
	if l := c.findLine(set, tag); l != nil {
		// Already present (e.g. refilled by a racing path): refresh.
		l.lastUse = c.useClock
		if dirty {
			l.dirty = true
		}
		return EvictedLine{}, false
	}
	// Prefer an invalid way; otherwise evict the least recently used
	// non-pinned line. A fully pinned set rejects the fill (the caller
	// treats the access as uncached).
	victimIdx := -1
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			victimIdx = i
			break
		}
	}
	if victimIdx == -1 {
		for i := range c.sets[set] {
			if c.sets[set][i].pinned {
				continue
			}
			if victimIdx == -1 || c.sets[set][i].lastUse < c.sets[set][victimIdx].lastUse {
				victimIdx = i
			}
		}
	}
	if victimIdx == -1 {
		return EvictedLine{}, false
	}
	l := &c.sets[set][victimIdx]
	if l.valid {
		c.Evictions.Inc()
		if l.dirty {
			c.Writebacks.Inc()
		}
		victim = EvictedLine{Addr: c.reconstruct(set, l.tag), Dirty: l.dirty}
		evicted = true
	}
	*l = line{tag: tag, valid: true, dirty: dirty, lastUse: c.useClock}
	return victim, evicted
}

// Pin installs the line containing addr (if absent) and excludes it from
// replacement — the §IX "locked cache lines" technique. It fails (returns
// false) when pinning would fill the whole set, which must keep at least
// one replaceable way.
func (c *Cache) Pin(a memsys.Addr) bool {
	set, tag := c.locate(a)
	if l := c.findLine(set, tag); l != nil {
		l.pinned = true
		return true
	}
	pinned := 0
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].pinned {
			pinned++
		}
	}
	if pinned >= len(c.sets[set])-1 {
		return false
	}
	c.Fill(a, false)
	if l := c.findLine(set, tag); l != nil {
		l.pinned = true
		return true
	}
	return false
}

// PinnedLines counts pinned lines across the cache.
func (c *Cache) PinnedLines() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i] {
			if c.sets[i][j].valid && c.sets[i][j].pinned {
				n++
			}
		}
	}
	return n
}

// Invalidate drops the line containing addr if present, returning whether
// it was present and dirty (the caller is responsible for the writeback).
func (c *Cache) Invalidate(a memsys.Addr) (present, dirty bool) {
	set, tag := c.locate(a)
	if l := c.findLine(set, tag); l != nil {
		present, dirty = true, l.dirty
		l.valid = false
		l.dirty = false
	}
	return
}

// reconstruct rebuilds a line-aligned address from set index and tag.
func (c *Cache) reconstruct(set, tag uint64) memsys.Addr {
	return memsys.Addr((tag*c.numSets + set) * memsys.LineSize)
}

// HitRate returns the combined read+write hit rate.
func (c *Cache) HitRate() float64 {
	total := c.Reads.Total + c.Writes.Total
	if total == 0 {
		return 0
	}
	return float64(c.Reads.Hits+c.Writes.Hits) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.useClock = 0
	c.Reads = stats.Ratio{}
	c.Writes = stats.Ratio{}
	c.Evictions.Reset()
	c.Writebacks.Reset()
}
