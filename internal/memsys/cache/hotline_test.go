package cache

import "testing"

// The same-line memo (hotLine/hotIdx, exported via SameLineReadHit and
// the Gen counter) must die on every event that can change the identity
// of the memoized way: invalidation, eviction, Reset, and explicit
// DropHot. These tests pin each edge individually; the machine-level
// equivalence tests in internal/core cover the composed behaviour.

func TestSameLineReadHitColdRefuses(t *testing.T) {
	c := small()
	if c.SameLineReadHit(0x1000) {
		t.Fatal("cold cache validated a memo")
	}
}

func TestFillStreamArmsAndReplaysHit(t *testing.T) {
	c := small()
	c.Fill(0x2000, false) // plain fill: must NOT arm the memo
	if c.SameLineReadHit(0x2000) {
		t.Fatal("plain Fill armed the memo")
	}
	c.FillStream(0x1000, false)
	hitsBefore := c.Reads.Hits
	if !c.SameLineReadHit(0x1008) {
		t.Fatal("streamed fill did not arm the memo for its line")
	}
	if c.Reads.Hits != hitsBefore+1 {
		t.Fatalf("replay did not record exactly one read hit: %d -> %d", hitsBefore, c.Reads.Hits)
	}
	if c.SameLineReadHit(0x1040) {
		t.Fatal("memo validated a different line")
	}
}

func TestAccessStreamReadArmsOnHit(t *testing.T) {
	c := small()
	c.Fill(0x1000, false)
	if !c.AccessStreamRead(0x1000) {
		t.Fatal("expected hit")
	}
	if !c.SameLineReadHit(0x1010) {
		t.Fatal("stream read hit did not arm the memo")
	}
	// A plain (non-stream) access of another line must not move the memo.
	c.Fill(0x2000, false)
	c.Access(0x2000, false)
	if !c.SameLineReadHit(0x1010) {
		t.Fatal("plain access of another line disturbed the memo")
	}
}

func TestInvalidateDropsMemoAndBumpsGen(t *testing.T) {
	c := small()
	c.FillStream(0x1000, false)
	g := c.Gen()
	c.Invalidate(0x1000)
	if c.SameLineReadHit(0x1000) {
		t.Fatal("memo survived invalidation of its line")
	}
	if c.Gen() <= g {
		t.Fatal("generation did not advance on invalidation")
	}
}

func TestEvictionDropsMemo(t *testing.T) {
	c := small() // 2-way, 8 sets, set stride 512 B
	const stride = 512
	c.FillStream(0*stride, false)
	// Two conflicting fills into the same set evict the memoized way.
	c.Fill(8*stride, false)
	c.Fill(16*stride, false)
	if c.SameLineReadHit(0) {
		t.Fatal("memo survived eviction of its way")
	}
}

func TestDropHotForcesReprobeThenRearms(t *testing.T) {
	c := small()
	c.FillStream(0x1000, false)
	g := c.Gen()
	c.DropHot()
	if c.SameLineReadHit(0x1000) {
		t.Fatal("memo survived DropHot")
	}
	if c.Gen() <= g {
		t.Fatal("DropHot did not advance the generation")
	}
	if !c.AccessStreamRead(0x1000) {
		t.Fatal("line should still be present")
	}
	if !c.SameLineReadHit(0x1000) {
		t.Fatal("stream read did not re-arm after DropHot")
	}
}

func TestResetDropsMemoKeepsGenMonotonic(t *testing.T) {
	c := small()
	c.FillStream(0x1000, false)
	g := c.Gen()
	c.Reset()
	if c.SameLineReadHit(0x1000) {
		t.Fatal("memo survived Reset")
	}
	if c.Gen() <= g {
		t.Fatal("generation must stay monotonic across Reset so pre-Reset memos never validate")
	}
}
