package memsys

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The Enqueue golden pins the queue's M/D/1 delay arithmetic directly:
// every (now, service) sample of a deterministic sweep is committed with
// its returned wait and the exact bits of the smoothed utilization
// (hex float), so a change to the expression order or the window
// bookkeeping is diffed at the first diverging call instead of only
// through the suite-level goldens. Regenerate (after a deliberate model
// change only) with:
//
//	go test ./internal/memsys -run TestQueueEnqueueGolden -update-queue-golden
var updateQueueGolden = flag.Bool("update-queue-golden", false,
	"rewrite testdata/queue_enqueue_golden.tsv from the current implementation")

// queueGoldenSweep drives fresh queues through load patterns covering
// every arithmetic path: the idle integer fast path, sub-window folding,
// window-boundary smoothing, the utilization cap, and out-of-order
// arrival times (bounded core clock skew).
func queueGoldenSweep() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# pattern\ti\tnow\tservice\twait\tutil\n")
	type pattern struct {
		name string
		n    int
		at   func(i int) (now, service Cycles)
	}
	patterns := []pattern{
		// Widely spaced requests: utilization never leaves zero.
		{"idle", 64, func(i int) (Cycles, Cycles) {
			return Cycles(i) * 100000, 10
		}},
		// 1% utilization: smoothing stays tiny but nonzero.
		{"light", 768, func(i int) (Cycles, Cycles) {
			return Cycles(i) * 100, 1
		}},
		// 25% utilization, mixed service times.
		{"quarter", 768, func(i int) (Cycles, Cycles) {
			return Cycles(i) * 40, Cycles(8 + 3*(i%2))
		}},
		// Just below saturation (11 cycles of service every 12).
		{"heavy", 768, func(i int) (Cycles, Cycles) {
			return Cycles(i) * 12, 11
		}},
		// 4x oversubscribed: exercises both clamps.
		{"saturated", 768, func(i int) (Cycles, Cycles) {
			return Cycles(i) * 10, 40
		}},
		// Alternating bursts and quiet: windows swing between extremes.
		{"burst", 1024, func(i int) (Cycles, Cycles) {
			base := Cycles(i/128) * 10000
			if i%128 < 48 {
				return base + Cycles(i%128)*2, 16
			}
			return base + 96 + Cycles(i%128-48)*250, 4
		}},
		// Out-of-order arrivals: a far-future requester followed by
		// requesters in its past (now < horizon path).
		{"skew", 512, func(i int) (Cycles, Cycles) {
			if i%16 == 0 {
				return 1000000 + Cycles(i)*1000, 10
			}
			return Cycles(i) * 37, 10
		}},
	}
	for _, p := range patterns {
		var q Queue
		for i := 0; i < p.n; i++ {
			now, svc := p.at(i)
			w := q.Enqueue(now, svc)
			fmt.Fprintf(&b, "%s\t%d\t%d\t%d\t%d\t%s\n", p.name, i, now, svc, w,
				strconv.FormatFloat(q.Utilization(), 'x', -1, 64))
		}
	}
	return b.Bytes()
}

func TestQueueEnqueueGolden(t *testing.T) {
	path := filepath.Join("testdata", "queue_enqueue_golden.tsv")
	got := queueGoldenSweep()
	if *updateQueueGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update-queue-golden): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("queue arithmetic diverged from golden at line %d:\ngot:  %s\nwant: %s",
				i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("queue golden length changed: got %d lines, want %d", len(gl), len(wl))
}

// TestQueueWaitNeverNegative pins that the delay expression can never go
// negative (which, through the Cycles conversion, would appear as an
// enormous wait): across randomized request streams every wait stays
// within the analytic maximum of ~50 service times set by maxUtil.
func TestQueueWaitNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		var now Cycles
		for i := 0; i < 4000; i++ {
			gap := Cycles(rng.Intn(200))
			svc := Cycles(1 + rng.Intn(64))
			if rng.Intn(8) == 0 && now > 5000 {
				// Out-of-order arrival in the recent past.
				w := q.Enqueue(now-5000, svc)
				if max := Cycles(50) * svc; w > max {
					t.Fatalf("trial %d: skewed wait %d exceeds analytic max %d", trial, w, max)
				}
				continue
			}
			now += gap
			w := q.Enqueue(now, svc)
			if max := Cycles(50) * svc; w > max {
				t.Fatalf("trial %d i=%d: wait %d exceeds analytic max %d (service %d)",
					trial, i, w, max, svc)
			}
		}
	}
}

// TestQueueWaitMonotoneInUtil pins that a higher smoothed utilization
// never yields a smaller wait for the same service demand: u/(2(1-u)) is
// increasing on [0, maxUtil], and the implementation must preserve that
// through its caching of utilization-dependent terms.
func TestQueueWaitMonotoneInUtil(t *testing.T) {
	// Drive queues to increasing utilization levels with identical
	// request spacing, then probe each with one identical request just
	// after a window boundary (span below the fold threshold, so the
	// wait reflects only the smoothed utilization).
	levels := []Cycles{1, 5, 10, 25, 50, 80, 95}
	var lastWait Cycles
	var lastUtil float64
	for li, svc := range levels {
		var q Queue
		var now Cycles
		for i := 0; i < 20000; i++ {
			now += 100
			q.Enqueue(now, svc) // svc per 100 cycles = svc% utilization
		}
		w := q.Enqueue(now+1, 100)
		u := q.Utilization()
		if li > 0 {
			if u < lastUtil {
				t.Fatalf("utilization not monotone in load: %v then %v", lastUtil, u)
			}
			if w < lastWait {
				t.Fatalf("wait not monotone in utilization: util %v -> wait %d, then util %v -> wait %d",
					lastUtil, lastWait, u, w)
			}
		}
		lastWait, lastUtil = w, u
	}
	if lastWait == 0 {
		t.Fatal("95% utilization probe should wait")
	}
}

// TestQueueSmoothingConverges pins the window smoothing: under constant
// load the utilization estimate converges to the demanded level and
// stays there (each window halves the distance; after many windows the
// estimate must sit within a tight band).
func TestQueueSmoothingConverges(t *testing.T) {
	for _, tc := range []struct {
		name   string
		gap    Cycles
		svc    Cycles
		target float64
	}{
		{"10%", 100, 10, 0.10},
		{"50%", 20, 10, 0.50},
		{"90%", 100, 90, 0.90},
	} {
		var q Queue
		var now Cycles
		// 200 windows of constant demand.
		for now < 200*2048 {
			now += tc.gap
			q.Enqueue(now, tc.svc)
		}
		u := q.Utilization()
		if d := u - tc.target; d > 0.02 || d < -0.02 {
			t.Fatalf("%s load: smoothed utilization %v has not converged to %v",
				tc.name, u, tc.target)
		}
		// Convergence is stable: another 50 windows stay in the band.
		for now < 250*2048 {
			now += tc.gap
			q.Enqueue(now, tc.svc)
		}
		if d := q.Utilization() - tc.target; d > 0.02 || d < -0.02 {
			t.Fatalf("%s load: utilization %v drifted after convergence", tc.name, q.Utilization())
		}
	}
}
