// Package memsys defines the vocabulary shared by every component of the
// simulated memory hierarchy: simulated addresses, cycle time, access
// descriptors, and the data-structure classification (vtxProp / edgeList /
// nGraphData / active-list) that drives OMEGA's heterogeneous routing.
package memsys

import "fmt"

// Cycles counts simulated processor clock cycles (2 GHz in the paper's
// testbed, Table III).
type Cycles uint64

// Addr is a simulated byte address. The simulated address space is flat;
// the allocator in package core hands out disjoint regions per data
// structure.
type Addr uint64

// LineSize is the cache-line size in bytes (Table III).
const LineSize = 64

// LineAddr returns the line-aligned address containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// Kind classifies the graph data structure behind an access (paper §II,
// "Graph data structures").
type Kind uint8

const (
	// KindVtxProp is vertex-property data: randomly accessed, the target
	// of OMEGA's scratchpads.
	KindVtxProp Kind = iota
	// KindEdgeList is CSR adjacency data: overwhelmingly sequential.
	KindEdgeList
	// KindNGraphData is everything else (loop counters, frontier arrays,
	// temporaries): small, mostly sequential.
	KindNGraphData
	// KindActiveList is the frontier bookkeeping (dense bit vector or
	// sparse ID list).
	KindActiveList
)

// String names the kind for stats output.
func (k Kind) String() string {
	switch k {
	case KindVtxProp:
		return "vtxProp"
	case KindEdgeList:
		return "edgeList"
	case KindNGraphData:
		return "nGraphData"
	case KindActiveList:
		return "activeList"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is the operation an access performs.
type Op uint8

const (
	// OpRead is a plain load.
	OpRead Op = iota
	// OpWrite is a plain store.
	OpWrite
	// OpAtomic is an atomic read-modify-write (CAS / fetch-add / min...).
	OpAtomic
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAtomic:
		return "atomic"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumKinds is the number of Kind values, for dense per-kind arrays.
const NumKinds = 4

// Level identifies the hierarchy component that satisfied an access. It is
// a dense enum so the per-access bookkeeping (machine level profiles, trace
// aggregation) can index fixed-size arrays instead of hashing strings — the
// steady-state access path must not allocate.
type Level uint8

const (
	// LevelL1 is a private L1 data cache hit.
	LevelL1 Level = iota
	// LevelL2Plus covers everything the cache path resolves beyond the L1:
	// L2 bank hits, cache-to-cache transfers, and DRAM fills.
	LevelL2Plus
	// LevelSPLocal is the issuing core's own scratchpad slice.
	LevelSPLocal
	// LevelSPRemote is a remote scratchpad slice across the NoC.
	LevelSPRemote
	// LevelSPAtomic is a core-executed atomic on a scratchpad word (the
	// no-PISC ablation).
	LevelSPAtomic
	// LevelSPDegraded is a parity-degraded vertex line falling back to the
	// cache hierarchy.
	LevelSPDegraded
	// LevelSrcBuf is the per-core source vertex buffer.
	LevelSrcBuf
	// LevelPISC is an atomic offloaded to a processing-in-scratchpad engine.
	LevelPISC
	// NumLevels is the number of Level values, for dense per-level arrays.
	NumLevels
)

// levelNames holds the stable display names; they are part of the tool
// output format (trace summaries, level profiles) and must not change.
var levelNames = [NumLevels]string{
	"L1", "L2+", "SP-local", "SP-remote", "SP-atomic", "SP-degraded",
	"SrcBuf", "PISC",
}

// String names the level for stats output.
func (l Level) String() string {
	if l < NumLevels {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Access describes one logical memory access emitted by the framework.
type Access struct {
	// Core is the issuing core ID in [0, NumCores).
	Core int
	// Addr is the simulated byte address.
	Addr Addr
	// Size is the access size in bytes (1..8 for word accesses).
	Size uint8
	// Op is read/write/atomic.
	Op Op
	// Kind is the data-structure classification.
	Kind Kind
	// Vertex is the vertex ID for vtxProp/active-list accesses (used by
	// the scratchpad partition unit); ignored otherwise.
	Vertex uint32
	// SrcRead marks a read of a *source* vertex's property during edge
	// processing — the access class served by OMEGA's source vertex
	// buffer (paper §V.C).
	SrcRead bool
	// Dependent marks a load whose value gates further progress of the
	// core (the core must stall for it rather than merely tracking an
	// outstanding miss).
	Dependent bool
}

// Result reports the outcome of simulating one access.
type Result struct {
	// Latency is the time from issue to completion.
	Latency Cycles
	// Blocking forces the issuing core to stall for the full latency
	// (atomics on the baseline; dependent reads anywhere).
	Blocking bool
	// Offloaded reports that the operation was handed to a PISC engine
	// and the core does not wait for completion.
	Offloaded bool
	// Level identifies the component that satisfied the access.
	Level Level
}

// Hierarchy is a memory subsystem that can satisfy accesses. Both the
// baseline CMP hierarchy and the OMEGA heterogeneous hierarchy implement
// it. Implementations are not safe for concurrent use; the simulation
// driver serializes calls (it is itself single-threaded event scheduling).
type Hierarchy interface {
	// Access simulates one access issued at time now and returns its
	// timing outcome.
	Access(now Cycles, a Access) Result
	// BeginIteration signals an algorithm-level iteration boundary
	// (OMEGA invalidates source-vertex buffers here, paper §V.C).
	BeginIteration()
}
