package coherence

import (
	"testing"

	"omega/internal/memsys"
)

func TestCorruptEntryEmptyTable(t *testing.T) {
	d := New(4)
	if d.CorruptEntry(5, 3) {
		t.Fatal("corrupting an empty table reported success")
	}
	if d.Scrub() != 0 {
		t.Fatal("scrubbing an empty table repaired something")
	}
}

func TestCorruptEntryThenScrub(t *testing.T) {
	d := New(4)
	for i := 0; i < 32; i++ {
		d.AcquireShared(memsys.Addr(0x1000+i*memsys.LineSize), 0)
	}
	if d.Lines() != 32 {
		t.Fatalf("lines %d", d.Lines())
	}
	if !d.CorruptEntry(7, 3) {
		t.Fatal("corruption found no victim")
	}
	// A clean scrub pass must erase exactly the corrupted entry (its
	// flipped tag no longer matches the stored check byte) and nothing
	// else; the directory then has one fewer tracked line.
	if repaired := d.Scrub(); repaired != 1 {
		t.Fatalf("scrub repaired %d entries, want 1", repaired)
	}
	if d.Lines() != 31 {
		t.Fatalf("lines after scrub %d, want 31", d.Lines())
	}
	if d.Scrub() != 0 {
		t.Fatal("second scrub found more corruption")
	}
}

// TestScrubKeepsTableUsable: after corrupt+scrub, the erased line simply
// re-inserts on next use and probe chains still resolve every other line
// (the backward-shift erase left no broken chains).
func TestScrubKeepsTableUsable(t *testing.T) {
	d := New(4)
	lines := make([]memsys.Addr, 64)
	for i := range lines {
		lines[i] = memsys.Addr(0x4000 + i*memsys.LineSize)
		d.AcquireShared(lines[i], i%4)
	}
	for trial := uint64(0); trial < 8; trial++ {
		if !d.CorruptEntry(trial*37, trial) {
			t.Fatal("no victim")
		}
		d.Scrub()
	}
	for i, l := range lines {
		// Re-acquiring is always legal: either the line survived (hit) or
		// was scrubbed away (fresh insert). Holders must end up >= 1.
		d.AcquireShared(l, i%4)
		if d.Holders(l) < 1 {
			t.Fatalf("line %d lost after scrubs", i)
		}
	}
}

// TestCorruptWithoutScrubPerturbsLookup: with scrubbing disabled the
// flipped tag makes the directory treat the victim as a brand-new line —
// the silent-corruption arm the campaign's directory site measures.
func TestCorruptWithoutScrubPerturbsLookup(t *testing.T) {
	d := New(4)
	d.AcquireShared(line, 0)
	d.AcquireShared(line, 1)
	if !d.CorruptEntry(0, 2) {
		t.Fatal("no victim")
	}
	// The original address now misses its entry: the directory believes
	// nobody holds it.
	if h := d.Holders(line); h != 0 {
		t.Fatalf("corrupted entry still found: holders %d", h)
	}
}
