package coherence

import (
	"testing"

	"omega/internal/memsys"
)

// BenchmarkDirectory measures the open-addressing directory on the mix
// the hierarchy generates: shared acquisitions, exclusive upgrades
// (invalidating sharers), and drops that erase entries. The working set
// cycles so lookups, inserts, and backward-shift deletions all stay hot.
func BenchmarkDirectory(b *testing.B) {
	const (
		cores = 16
		lines = 8192
	)
	d := New(cores)
	// Warm the table to its steady-state capacity.
	for i := 0; i < lines; i++ {
		d.AcquireShared(memsys.Addr(i*memsys.LineSize), i%cores)
	}
	b.Run("acquire-shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.AcquireShared(memsys.Addr(i%lines*memsys.LineSize), i%cores)
		}
	})
	b.Run("acquire-exclusive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.AcquireExclusive(memsys.Addr(i%lines*memsys.LineSize), i%cores)
		}
	})
	b.Run("drop-reacquire", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			line := memsys.Addr(i % lines * memsys.LineSize)
			core := i % cores
			d.Drop(line, core)
			d.AcquireShared(line, core)
		}
	})
	b.Run("lookup", func(b *testing.B) {
		b.ReportAllocs()
		var holders int
		for i := 0; i < b.N; i++ {
			holders += d.Holders(memsys.Addr(i % lines * memsys.LineSize))
		}
		_ = holders
	})
}
