package coherence

import (
	"testing"

	"omega/internal/memsys"
	"omega/internal/stats"
)

const line = memsys.Addr(0x1000)

func TestReadSharing(t *testing.T) {
	d := New(4)
	out := d.AcquireShared(line, 0)
	if out.DirtyOwner != -1 {
		t.Fatal("clean line should have no dirty owner")
	}
	d.AcquireShared(line, 1)
	d.AcquireShared(line, 2)
	if d.Holders(line) != 3 {
		t.Fatalf("holders %d", d.Holders(line))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New(4)
	d.AcquireShared(line, 0)
	d.AcquireShared(line, 1)
	d.AcquireShared(line, 2)
	out := d.AcquireExclusive(line, 0)
	if out.Invalidated != 2 {
		t.Fatalf("invalidated %d, want 2", out.Invalidated)
	}
	if d.Holders(line) != 1 || !d.IsModifiedBy(line, 0) {
		t.Fatal("writer should be sole modified holder")
	}
	if d.Invalidations.Value() != 2 {
		t.Fatalf("invalidation count %d", d.Invalidations.Value())
	}
}

func TestWriteAfterWriteIsC2C(t *testing.T) {
	d := New(4)
	d.AcquireExclusive(line, 0)
	out := d.AcquireExclusive(line, 1)
	if out.DirtyOwner != 0 {
		t.Fatalf("dirty owner %d, want 0", out.DirtyOwner)
	}
	if out.Invalidated != 1 {
		t.Fatalf("invalidated %d, want 1 (the old owner)", out.Invalidated)
	}
	if !d.IsModifiedBy(line, 1) || d.IsModifiedBy(line, 0) {
		t.Fatal("ownership transfer broken")
	}
	if d.C2CTransfers.Value() != 1 {
		t.Fatalf("c2c %d", d.C2CTransfers.Value())
	}
}

func TestReadAfterWriteDowngrades(t *testing.T) {
	d := New(4)
	d.AcquireExclusive(line, 0)
	out := d.AcquireShared(line, 1)
	if out.DirtyOwner != 0 {
		t.Fatalf("dirty owner %d", out.DirtyOwner)
	}
	if d.Downgrades.Value() != 1 {
		t.Fatal("downgrade not counted")
	}
	// Both now share.
	if d.Holders(line) != 2 {
		t.Fatalf("holders %d", d.Holders(line))
	}
	// Neither is Modified any more.
	if d.IsModifiedBy(line, 0) || d.IsModifiedBy(line, 1) {
		t.Fatal("M state should be gone after downgrade")
	}
}

func TestReadHitUnderOwnModified(t *testing.T) {
	d := New(4)
	d.AcquireExclusive(line, 2)
	out := d.AcquireShared(line, 2)
	if out.DirtyOwner != -1 {
		t.Fatal("own M copy is not a remote intervention")
	}
	if !d.IsModifiedBy(line, 2) {
		t.Fatal("owner must keep M on its own read")
	}
}

func TestDrop(t *testing.T) {
	d := New(4)
	d.AcquireExclusive(line, 0)
	if !d.Drop(line, 0) {
		t.Fatal("dropping the M copy should report modified")
	}
	if d.Holders(line) != 0 {
		t.Fatal("holders should be empty after drop")
	}
	if d.Drop(line, 0) {
		t.Fatal("double drop should be a no-op")
	}
	d.AcquireShared(line, 1)
	if d.Drop(line, 1) {
		t.Fatal("dropping a shared copy is not a modified drop")
	}
}

func TestDropUnknownLine(t *testing.T) {
	d := New(2)
	if d.Drop(0xdead000, 0) {
		t.Fatal("unknown line drop should be false")
	}
}

func TestManyLinesIndependent(t *testing.T) {
	d := New(8)
	r := stats.NewRand(5)
	for i := 0; i < 1000; i++ {
		l := memsys.Addr(r.Intn(64)) * 64
		c := r.Intn(8)
		if r.Intn(2) == 0 {
			d.AcquireShared(l, c)
		} else {
			d.AcquireExclusive(l, c)
			if !d.IsModifiedBy(l, c) {
				t.Fatal("writer must own after exclusive")
			}
			if d.Holders(l) != 1 {
				t.Fatalf("holders %d after exclusive", d.Holders(l))
			}
		}
	}
}

func TestInvariantSingleOwner(t *testing.T) {
	// Property: at most one core holds M for a line, and the M holder is
	// always in the sharer set.
	d := New(4)
	r := stats.NewRand(11)
	lines := []memsys.Addr{0, 64, 128}
	for i := 0; i < 2000; i++ {
		l := lines[r.Intn(len(lines))]
		c := r.Intn(4)
		switch r.Intn(3) {
		case 0:
			d.AcquireShared(l, c)
		case 1:
			d.AcquireExclusive(l, c)
		case 2:
			d.Drop(l, c)
		}
		owners := 0
		for core := 0; core < 4; core++ {
			if d.IsModifiedBy(l, core) {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("line %#x has %d owners", l, owners)
		}
	}
}

func TestReset(t *testing.T) {
	d := New(4)
	d.AcquireExclusive(line, 0)
	d.AcquireExclusive(line, 1)
	d.Reset()
	if d.Holders(line) != 0 || d.Invalidations.Value() != 0 || d.C2CTransfers.Value() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBadCoreCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

// TestTableGrowthAndErase drives the open-addressing table through
// several doublings and a full teardown, checking that every line keeps
// its state across rehashes and that backward-shift deletion never
// strands a reachable entry.
func TestTableGrowthAndErase(t *testing.T) {
	const n = 20000 // well past several growths from the initial capacity
	d := New(16)
	for i := 0; i < n; i++ {
		d.AcquireShared(memsys.Addr(i*memsys.LineSize), i%16)
	}
	if d.Lines() != n {
		t.Fatalf("Lines() = %d, want %d", d.Lines(), n)
	}
	for i := 0; i < n; i++ {
		line := memsys.Addr(i * memsys.LineSize)
		if d.Holders(line) != 1 {
			t.Fatalf("line %d lost after growth: holders %d", i, d.Holders(line))
		}
	}
	// Erase every other line, then verify survivors are still reachable
	// through any backward-shifted probe chains.
	for i := 0; i < n; i += 2 {
		d.Drop(memsys.Addr(i*memsys.LineSize), i%16)
	}
	if d.Lines() != n/2 {
		t.Fatalf("Lines() = %d after drops, want %d", d.Lines(), n/2)
	}
	for i := 0; i < n; i++ {
		want := i % 2
		if got := d.Holders(memsys.Addr(i * memsys.LineSize)); got != want {
			t.Fatalf("line %d: holders %d, want %d", i, got, want)
		}
	}
	// Reset keeps capacity but empties the table.
	d.Reset()
	if d.Lines() != 0 {
		t.Fatalf("Lines() = %d after Reset, want 0", d.Lines())
	}
	for i := 0; i < n; i++ {
		if d.Holders(memsys.Addr(i*memsys.LineSize)) != 0 {
			t.Fatalf("line %d survived Reset", i)
		}
	}
}
