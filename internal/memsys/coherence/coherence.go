// Package coherence models a MESI-style directory over the private L1
// caches. It tracks, per cache line, which cores hold copies and whether
// one of them holds the line modified, so the hierarchy can charge
// invalidation traffic, cache-to-cache transfers, and the upgrade
// round-trips that make baseline atomics expensive (paper §III).
//
// The model is a "MESI-lite": it captures the message counts and latency
// events of MESI Two Level (Table III) without simulating transient states.
package coherence

import (
	"omega/internal/memsys"
	"omega/internal/stats"
)

// entry is the directory state for one line.
type entry struct {
	sharers uint64 // bitmask of cores holding the line
	owner   int8   // core holding Modified, or -1
}

// Directory tracks L1 copies. Not safe for concurrent use.
type Directory struct {
	numCores int
	lines    map[memsys.Addr]*entry

	// Stats
	Invalidations stats.Counter // individual invalidation messages sent
	C2CTransfers  stats.Counter // dirty cache-to-cache interventions
	Downgrades    stats.Counter // M->S demotions with writeback
}

// New builds a directory for numCores private caches.
func New(numCores int) *Directory {
	if numCores <= 0 || numCores > 64 {
		panic("coherence: numCores must be in 1..64")
	}
	return &Directory{numCores: numCores, lines: make(map[memsys.Addr]*entry)}
}

// ReadOutcome describes what a read acquisition required.
type ReadOutcome struct {
	// DirtyOwner is the core that held the line Modified (now downgraded
	// to Shared with a writeback), or -1.
	DirtyOwner int
}

// AcquireShared records that core is gaining a Shared copy of line.
func (d *Directory) AcquireShared(line memsys.Addr, core int) ReadOutcome {
	e := d.get(line)
	out := ReadOutcome{DirtyOwner: -1}
	if e.owner >= 0 && int(e.owner) != core {
		out.DirtyOwner = int(e.owner)
		d.C2CTransfers.Inc()
		d.Downgrades.Inc()
		e.owner = -1
	}
	if e.owner == int8(core) {
		// Already modified locally; keep M (read hit under M).
		return out
	}
	e.sharers |= 1 << uint(core)
	return out
}

// WriteOutcome describes what a write/atomic acquisition required.
type WriteOutcome struct {
	// Invalidated is the number of other cores whose copies were
	// invalidated.
	Invalidated int
	// DirtyOwner is the core whose Modified copy supplied the data
	// (cache-to-cache), or -1.
	DirtyOwner int
}

// AcquireExclusive records that core is gaining an exclusive (Modified)
// copy of line, invalidating all other holders.
func (d *Directory) AcquireExclusive(line memsys.Addr, core int) WriteOutcome {
	e := d.get(line)
	out := WriteOutcome{DirtyOwner: -1}
	if e.owner >= 0 && int(e.owner) != core {
		out.DirtyOwner = int(e.owner)
		d.C2CTransfers.Inc()
	}
	mask := e.sharers &^ (1 << uint(core))
	for c := 0; c < d.numCores; c++ {
		if mask&(1<<uint(c)) != 0 {
			out.Invalidated++
		}
	}
	d.Invalidations.Add(uint64(out.Invalidated))
	e.sharers = 1 << uint(core)
	e.owner = int8(core)
	return out
}

// Drop records that core evicted its copy of line (silent for clean
// Shared; the caller handles any writeback traffic for Modified).
// It reports whether the dropped copy was the Modified one.
func (d *Directory) Drop(line memsys.Addr, core int) (wasModified bool) {
	e, ok := d.lines[line]
	if !ok {
		return false
	}
	if e.owner == int8(core) {
		e.owner = -1
		wasModified = true
	}
	e.sharers &^= 1 << uint(core)
	if e.sharers == 0 && e.owner < 0 {
		delete(d.lines, line)
	}
	return wasModified
}

// Holders returns how many cores currently hold line.
func (d *Directory) Holders(line memsys.Addr) int {
	e, ok := d.lines[line]
	if !ok {
		return 0
	}
	n := 0
	for c := 0; c < d.numCores; c++ {
		if e.sharers&(1<<uint(c)) != 0 {
			n++
		}
	}
	return n
}

// IsModifiedBy reports whether core holds line in Modified state.
func (d *Directory) IsModifiedBy(line memsys.Addr, core int) bool {
	e, ok := d.lines[line]
	return ok && e.owner == int8(core)
}

// Reset clears all directory state and statistics.
func (d *Directory) Reset() {
	d.lines = make(map[memsys.Addr]*entry)
	d.Invalidations.Reset()
	d.C2CTransfers.Reset()
	d.Downgrades.Reset()
}

func (d *Directory) get(line memsys.Addr) *entry {
	e, ok := d.lines[line]
	if !ok {
		e = &entry{owner: -1}
		d.lines[line] = e
	}
	return e
}
