// Package coherence models a MESI-style directory over the private L1
// caches. It tracks, per cache line, which cores hold copies and whether
// one of them holds the line modified, so the hierarchy can charge
// invalidation traffic, cache-to-cache transfers, and the upgrade
// round-trips that make baseline atomics expensive (paper §III).
//
// The model is a "MESI-lite": it captures the message counts and latency
// events of MESI Two Level (Table III) without simulating transient states.
//
// The directory is probed on every simulated cache access, so its storage
// is a value-typed open-addressing hash table (power-of-two capacity,
// linear probing, backward-shift deletion) instead of a Go map of
// pointers: the steady-state probe performs no allocation and no pointer
// chasing. The table only grows; capacity is bounded by the number of
// lines simultaneously present in the L1s, which the caches bound.
package coherence

import (
	"math/bits"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// dirEntry is the directory state for one line, stored by value in the
// open-addressing table. A zero sharer mask with no owner is removed from
// the table rather than stored, so `used` distinguishes occupancy.
type dirEntry struct {
	line    memsys.Addr
	sharers uint64 // bitmask of cores holding the line
	// check is a per-entry integrity byte derived from the line tag
	// (checkByte). An injected tag flip leaves it stale, so the scrubber
	// can recognize and erase corrupt entries; real directories carry
	// per-entry ECC/parity the same way.
	check uint8
	// resident is a superset of the cores whose L1 physically contains the
	// line. Unlike sharers — which AcquireExclusive truncates, leaving
	// stale-but-present copies untracked — resident bits are set on every
	// acquisition/fill and cleared only when a copy is provably gone
	// (Drop, or a back-invalidation probe that found the line absent), so
	// the hierarchy can restrict its per-core eviction probe loops to
	// resident bits without missing a stale copy.
	resident uint64
	owner    int8 // core holding Modified, or -1
	used     bool
}

// dirInitialCap is the starting table capacity (must be a power of two).
// A 16-core machine with 32 KB L1s tracks at most 16*512 = 8192 lines, so
// the table typically grows a few times early in a run and then stays put.
const dirInitialCap = 1 << 10

// Directory tracks L1 copies. Not safe for concurrent use.
type Directory struct {
	numCores int
	entries  []dirEntry
	mask     uint64
	count    int // occupied slots

	// Stats
	Invalidations stats.Counter // individual invalidation messages sent
	C2CTransfers  stats.Counter // dirty cache-to-cache interventions
	Downgrades    stats.Counter // M->S demotions with writeback
}

// New builds a directory for numCores private caches.
func New(numCores int) *Directory {
	if numCores <= 0 || numCores > 64 {
		panic("coherence: numCores must be in 1..64")
	}
	return &Directory{
		numCores: numCores,
		entries:  make([]dirEntry, dirInitialCap),
		mask:     dirInitialCap - 1,
	}
}

// dirHash mixes a line address into a table index seed (SplitMix64
// finalizer over the line number; the low bits after mixing are uniform
// enough for a power-of-two table).
func dirHash(line memsys.Addr) uint64 {
	x := uint64(line) / memsys.LineSize
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// checkByte derives an entry's integrity byte from its line tag, using
// hash bits disjoint from the table-index bits so a flip that survives
// the index is still caught.
func checkByte(line memsys.Addr) uint8 {
	return uint8(dirHash(line) >> 32)
}

// find returns the slot holding line, or -1.
func (d *Directory) find(line memsys.Addr) int {
	i := dirHash(line) & d.mask
	for {
		e := &d.entries[i]
		if !e.used {
			return -1
		}
		if e.line == line {
			return int(i)
		}
		i = (i + 1) & d.mask
	}
}

// findOrInsert returns the slot holding line, inserting a fresh entry
// (no sharers, no owner) if absent. Insertion may grow the table.
func (d *Directory) findOrInsert(line memsys.Addr) int {
	for {
		i := dirHash(line) & d.mask
		for {
			e := &d.entries[i]
			if !e.used {
				// Keep load factor below 3/4 so probe chains stay short.
				if uint64(d.count+1)*4 > (d.mask+1)*3 {
					d.grow()
					break // re-probe against the grown table
				}
				*e = dirEntry{line: line, check: checkByte(line), owner: -1, used: true}
				d.count++
				return int(i)
			}
			if e.line == line {
				return int(i)
			}
			i = (i + 1) & d.mask
		}
	}
}

// grow doubles the table and rehashes every occupied slot.
func (d *Directory) grow() {
	old := d.entries
	d.entries = make([]dirEntry, 2*len(old))
	d.mask = uint64(len(d.entries) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := dirHash(old[i].line) & d.mask
		for d.entries[j].used {
			j = (j + 1) & d.mask
		}
		d.entries[j] = old[i]
	}
}

// erase empties slot i, backward-shifting any follow-on entries whose
// probe chain crossed i so lookups never need tombstones.
func (d *Directory) erase(i uint64) {
	d.count--
	j := i
	for {
		j = (j + 1) & d.mask
		e := &d.entries[j]
		if !e.used {
			break
		}
		k := dirHash(e.line) & d.mask
		// If e's home slot k lies cyclically in (i, j], the gap at i does
		// not break e's probe chain; keep scanning. Otherwise move e back
		// into the gap and continue from its old slot.
		inRange := false
		if i <= j {
			inRange = i < k && k <= j
		} else {
			inRange = i < k || k <= j
		}
		if inRange {
			continue
		}
		d.entries[i] = *e
		i = j
	}
	d.entries[i] = dirEntry{}
}

// ReadOutcome describes what a read acquisition required.
type ReadOutcome struct {
	// DirtyOwner is the core that held the line Modified (now downgraded
	// to Shared with a writeback), or -1.
	DirtyOwner int
}

// AcquireShared records that core is gaining a Shared copy of line.
func (d *Directory) AcquireShared(line memsys.Addr, core int) ReadOutcome {
	e := &d.entries[d.findOrInsert(line)]
	out := ReadOutcome{DirtyOwner: -1}
	if e.owner >= 0 && int(e.owner) != core {
		out.DirtyOwner = int(e.owner)
		d.C2CTransfers.Inc()
		d.Downgrades.Inc()
		e.owner = -1
	}
	e.resident |= 1 << uint(core)
	if e.owner == int8(core) {
		// Already modified locally; keep M (read hit under M).
		return out
	}
	e.sharers |= 1 << uint(core)
	return out
}

// FillShared records that core's L1 installed line after a read miss or
// prefetch: it marks residency and, exactly when the line is untracked
// (not modified by core, zero sharers), performs AcquireShared's state
// change. It folds the hierarchy's IsModifiedBy/Holders guard and the
// conditional AcquireShared into a single table probe.
func (d *Directory) FillShared(line memsys.Addr, core int) {
	e := &d.entries[d.findOrInsert(line)]
	if e.owner != int8(core) && e.sharers == 0 {
		if e.owner >= 0 {
			d.C2CTransfers.Inc()
			d.Downgrades.Inc()
			e.owner = -1
		}
		e.sharers |= 1 << uint(core)
	}
	e.resident |= 1 << uint(core)
}

// WriteOutcome describes what a write/atomic acquisition required.
type WriteOutcome struct {
	// Invalidated is the number of other cores whose copies were
	// invalidated.
	Invalidated int
	// DirtyOwner is the core whose Modified copy supplied the data
	// (cache-to-cache), or -1.
	DirtyOwner int
}

// AcquireExclusive records that core is gaining an exclusive (Modified)
// copy of line, invalidating all other holders.
func (d *Directory) AcquireExclusive(line memsys.Addr, core int) WriteOutcome {
	e := &d.entries[d.findOrInsert(line)]
	out := WriteOutcome{DirtyOwner: -1}
	if e.owner >= 0 && int(e.owner) != core {
		out.DirtyOwner = int(e.owner)
		d.C2CTransfers.Inc()
	}
	out.Invalidated = bits.OnesCount64(e.sharers &^ (1 << uint(core)))
	d.Invalidations.Add(uint64(out.Invalidated))
	e.sharers = 1 << uint(core)
	e.resident |= 1 << uint(core)
	e.owner = int8(core)
	return out
}

// Upgrade is the write-hit path: if core already holds line Modified it
// is a no-op (upgraded=false, matching IsModifiedBy); otherwise it
// performs exactly AcquireExclusive and reports upgraded=true. It exists
// so the hierarchy's write-hit check costs one table probe instead of the
// two an IsModifiedBy+AcquireExclusive pair would pay. Note the same
// insert-if-absent behaviour as AcquireExclusive: an untracked line
// (stale L1 copy whose sharer bit was cleared) is inserted and acquired.
func (d *Directory) Upgrade(line memsys.Addr, core int) (out WriteOutcome, upgraded bool) {
	e := &d.entries[d.findOrInsert(line)]
	out = WriteOutcome{DirtyOwner: -1}
	e.resident |= 1 << uint(core)
	if e.owner == int8(core) {
		return out, false
	}
	if e.owner >= 0 {
		out.DirtyOwner = int(e.owner)
		d.C2CTransfers.Inc()
	}
	out.Invalidated = bits.OnesCount64(e.sharers &^ (1 << uint(core)))
	d.Invalidations.Add(uint64(out.Invalidated))
	e.sharers = 1 << uint(core)
	e.owner = int8(core)
	return out, true
}

// Drop records that core evicted its copy of line (silent for clean
// Shared; the caller handles any writeback traffic for Modified).
// It reports whether the dropped copy was the Modified one.
func (d *Directory) Drop(line memsys.Addr, core int) (wasModified bool) {
	i := d.find(line)
	if i < 0 {
		return false
	}
	e := &d.entries[i]
	if e.owner == int8(core) {
		e.owner = -1
		wasModified = true
	}
	e.sharers &^= 1 << uint(core)
	e.resident &^= 1 << uint(core)
	if e.sharers == 0 && e.owner < 0 && e.resident == 0 {
		d.erase(uint64(i))
	}
	return wasModified
}

// Resident returns the superset mask of cores whose L1 may contain line
// (see dirEntry.resident), or 0 when the line is untracked. Probing a core
// outside this mask is guaranteed to miss.
func (d *Directory) Resident(line memsys.Addr) uint64 {
	i := d.find(line)
	if i < 0 {
		return 0
	}
	return d.entries[i].resident
}

// ClearResident retracts a stale residency bit after a probe of core's L1
// found line absent. It touches no sharer/owner state and no counters.
func (d *Directory) ClearResident(line memsys.Addr, core int) {
	i := d.find(line)
	if i < 0 {
		return
	}
	e := &d.entries[i]
	e.resident &^= 1 << uint(core)
	if e.sharers == 0 && e.owner < 0 && e.resident == 0 {
		d.erase(uint64(i))
	}
}

// Holders returns how many cores currently hold line.
func (d *Directory) Holders(line memsys.Addr) int {
	return bits.OnesCount64(d.Sharers(line))
}

// Sharers returns the bitmask of cores holding line (bit c = core c), or 0
// when the line is untracked. A core's bit is set whenever its L1 holds
// the line, so callers can restrict per-core probe loops to set bits.
func (d *Directory) Sharers(line memsys.Addr) uint64 {
	i := d.find(line)
	if i < 0 {
		return 0
	}
	return d.entries[i].sharers
}

// IsModifiedBy reports whether core holds line in Modified state.
func (d *Directory) IsModifiedBy(line memsys.Addr, core int) bool {
	i := d.find(line)
	return i >= 0 && d.entries[i].owner == int8(core)
}

// Lines returns how many lines the directory currently tracks.
func (d *Directory) Lines() int { return d.count }

// CorruptEntry injects a single tag bit flip into one occupied
// probe-table entry: slotSel picks the victim (the first occupied slot
// scanning from slotSel&mask) and bitSel picks which line-number bit to
// flip. The entry's check byte is left stale, exactly like a radiation
// upset in a real directory SRAM. Reports false when the table is empty.
func (d *Directory) CorruptEntry(slotSel, bitSel uint64) bool {
	if d.count == 0 {
		return false
	}
	i := slotSel & d.mask
	for !d.entries[i].used {
		i = (i + 1) & d.mask
	}
	// Flip a bit above the 64 B line offset, within the index/tag range
	// real natural-graph footprints exercise.
	d.entries[i].line ^= 1 << (6 + bitSel%10)
	return true
}

// Scrub walks the probe table erasing every entry whose check byte no
// longer matches its line tag — the detection-and-repair arm of the
// directory fault site. Erasure uses the same backward-shift deletion as
// Drop, so the table stays tombstone-free; a slot refilled by the shift
// is rechecked before the walk advances (a corrupt entry can be moved
// into an already-scanned slot, which the next scrub would catch — one
// pass per triggering access is the model). Returns how many entries
// were repaired (erased; a dropped entry just re-inserts on next use).
func (d *Directory) Scrub() (repaired int) {
	for i := uint64(0); i < uint64(len(d.entries)); {
		e := &d.entries[i]
		if e.used && e.check != checkByte(e.line) {
			d.erase(i)
			repaired++
			continue // the erase may have shifted an entry into slot i
		}
		i++
	}
	return repaired
}

// State is an opaque directory checkpoint.
type State struct {
	entries []dirEntry
	mask    uint64
	count   int

	invalidations, c2c, downgrades stats.Counter
}

// Snapshot captures the full directory state for later Restore.
func (d *Directory) Snapshot() State {
	return State{
		entries:       append([]dirEntry(nil), d.entries...),
		mask:          d.mask,
		count:         d.count,
		invalidations: d.Invalidations,
		c2c:           d.C2CTransfers,
		downgrades:    d.Downgrades,
	}
}

// Restore rewinds the directory to a Snapshot.
func (d *Directory) Restore(s State) {
	if len(d.entries) == len(s.entries) {
		copy(d.entries, s.entries)
	} else {
		d.entries = append([]dirEntry(nil), s.entries...)
	}
	d.mask = s.mask
	d.count = s.count
	d.Invalidations = s.invalidations
	d.C2CTransfers = s.c2c
	d.Downgrades = s.downgrades
}

// Reset clears all directory state and statistics. The table keeps its
// grown capacity, so a Reset-and-rerun reaches steady state immediately.
func (d *Directory) Reset() {
	clear(d.entries)
	d.count = 0
	d.Invalidations.Reset()
	d.C2CTransfers.Reset()
	d.Downgrades.Reset()
}
