package memsys

import "testing"

// BenchmarkQueueEnqueue measures the M/D/1 delay arithmetic at the two
// operating points that dominate the miss path: an idle resource (the
// integer fast path) and a loaded one (the cached-denominator float
// path, with window rolls amortized across the stream).
func BenchmarkQueueEnqueue(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		var q Queue
		now := Cycles(0)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			now += 4096 // every request lands in a fresh, empty window
			q.Enqueue(now, 1)
		}
	})
	b.Run("loaded", func(b *testing.B) {
		var q Queue
		now := Cycles(0)
		for i := 0; i < 4096; i++ { // drive util up to a steady estimate
			now += 13
			q.Enqueue(now, 11)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			now += 13
			q.Enqueue(now, 11)
		}
	})
}

// TestQueueEnqueueZeroAlloc pins Enqueue's allocation contract on both
// operating points.
func TestQueueEnqueueZeroAlloc(t *testing.T) {
	var idle, loaded Queue
	nowIdle, nowLoaded := Cycles(0), Cycles(0)
	for i := 0; i < 4096; i++ {
		nowLoaded += 13
		loaded.Enqueue(nowLoaded, 11)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		nowIdle += 4096
		idle.Enqueue(nowIdle, 1)
		nowLoaded += 13
		loaded.Enqueue(nowLoaded, 11)
	})
	if allocs != 0 {
		t.Fatalf("Enqueue allocates %.1f objects/call, want 0", allocs)
	}
}
