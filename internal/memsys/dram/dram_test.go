package dram

import (
	"testing"

	"omega/internal/memsys"
	"omega/internal/stats"
)

func TestRowBufferHit(t *testing.T) {
	d := New(DefaultConfig())
	l1 := d.Access(0, 0)
	l2 := d.Access(10000, 0) // same line -> same row, open
	if l2 >= l1 {
		t.Fatalf("open-row access (%d) should be faster than cold (%d)", l2, l1)
	}
	if d.RowHits.Hits != 1 || d.RowHits.Total != 2 {
		t.Fatalf("row hits %d/%d", d.RowHits.Hits, d.RowHits.Total)
	}
}

func TestRowConflict(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	d.Access(0, 0)
	// Same channel and bank, different row: channels interleave by line,
	// banks by RowBytes. Stride of channels*banks*rowBytes keeps channel
	// and bank while changing the row.
	stride := memsys.Addr(cfg.Channels * cfg.BanksPerChan * cfg.RowBytes)
	d.Access(100000, stride)
	if d.RowHits.Hits != 0 {
		t.Fatal("row conflict should not count as hit")
	}
}

func TestClosePagePolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosePage = true
	d := New(cfg)
	d.Access(0, 0)
	d.Access(10000, 0) // same row, but page was closed
	if d.RowHits.Hits != 0 {
		t.Fatal("close-page policy should never produce row hits")
	}
}

func TestBytesAccounting(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		d.Access(0, memsys.Addr(i*64))
	}
	if d.BytesMoved.Value() != 10*memsys.LineSize {
		t.Fatalf("bytes %d", d.BytesMoved.Value())
	}
	if d.Accesses.Value() != 10 {
		t.Fatalf("accesses %d", d.Accesses.Value())
	}
}

func TestBandwidthSaturationQueues(t *testing.T) {
	d := New(DefaultConfig())
	r := stats.NewRand(3)
	var now memsys.Cycles
	for i := 0; i < 20000; i++ {
		d.Access(now, memsys.Addr(r.Intn(1<<26))&^63)
		now++ // one line per cycle demanded: far beyond 4 channels' capacity
	}
	if d.QueueDelay.Value() == 0 {
		t.Fatal("oversubscribed DRAM should accumulate queue delay")
	}
}

func TestUtilization(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		d.Access(memsys.Cycles(i*100), memsys.Addr(i*64))
	}
	u := d.Utilization(10000)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of range", u)
	}
	if d.Utilization(0) != 0 {
		t.Fatal("zero elapsed should report 0")
	}
}

func TestPeakBandwidth(t *testing.T) {
	d := New(DefaultConfig())
	want := float64(4*64) / 11
	if got := d.PeakBytesPerCycle(); got != want {
		t.Fatalf("peak %v, want %v", got, want)
	}
}

func TestChannelsIndependent(t *testing.T) {
	d := New(DefaultConfig())
	// Saturate channel 0 only (addresses with line index ≡ 0 mod 4).
	var now memsys.Cycles
	for i := 0; i < 5000; i++ {
		d.Access(now, memsys.Addr(i*4*64))
		now++
	}
	delayed := d.QueueDelay.Value()
	// A different channel must be cheap.
	lat := d.Access(now, 64)
	if lat > 200 {
		t.Fatalf("other channel latency %d; channel isolation broken", lat)
	}
	_ = delayed
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 0)
	d.Reset()
	if d.Accesses.Value() != 0 || d.BytesMoved.Value() != 0 || d.RowHits.Total != 0 {
		t.Fatal("reset incomplete")
	}
	// Open rows cleared: the next access must be a row miss.
	d.Access(0, 0)
	if d.RowHits.Hits != 0 {
		t.Fatal("open row survived reset")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Channels: 0})
}

func TestLatencyComposition(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	lat := d.Access(0, 0)
	if lat != cfg.RowMissCycles {
		t.Fatalf("cold idle access should cost RowMissCycles (%d), got %d",
			cfg.RowMissCycles, lat)
	}
}
