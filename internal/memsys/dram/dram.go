// Package dram models the off-chip memory of the testbed: 4 DDR3-1600
// channels at 12 GB/s each (Table III), with per-bank open rows so the
// open-page / row-buffer behaviour the paper discusses in §IX is visible in
// the latency distribution, and a busy-until service model that produces
// bandwidth-limited queueing under load.
package dram

import (
	"fmt"
	"math/bits"

	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config sizes the DRAM subsystem. Defaults (via DefaultConfig) match the
// paper's testbed at a 2 GHz core clock.
type Config struct {
	Channels     int
	BanksPerChan int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes int
	// RowHitCycles / RowMissCycles are access latencies for open-row hits
	// and row conflicts (precharge+activate+access).
	RowHitCycles  memsys.Cycles
	RowMissCycles memsys.Cycles
	// ServiceCyclesPerLine is the channel occupancy transferring one 64 B
	// line: at 12 GB/s and 2 GHz, 64 B take 64/12e9*2e9 ≈ 10.7 cycles.
	ServiceCyclesPerLine memsys.Cycles
	// ClosePage, when set, closes the row after every access (the paper's
	// §IX hybrid-policy discussion for low-locality vertex data).
	ClosePage bool
	// Hybrid enables the §IX per-access policy: accesses flagged as
	// low-locality (random vertex data) close their row, everything else
	// (edge streams) keeps rows open.
	Hybrid bool
	// MaxQueue bounds the modeled per-channel queue depth: an access
	// never waits more than MaxQueue service slots (a real controller
	// back-pressures instead of queueing unboundedly, and the bound also
	// keeps the busy-until approximation stable under core clock skew).
	MaxQueue int
}

// DefaultConfig returns the Table III DRAM configuration.
func DefaultConfig() Config {
	return Config{
		Channels:             4,
		BanksPerChan:         8,
		RowBytes:             2048,
		RowHitCycles:         80,
		RowMissCycles:        140,
		ServiceCyclesPerLine: 11,
		MaxQueue:             32,
	}
}

// DRAM is the off-chip memory model. Not safe for concurrent use.
type DRAM struct {
	cfg Config
	// queues model per-channel bandwidth contention.
	queues []memsys.Queue
	// openRow per (channel, bank), flattened channel-major; ^0 means
	// closed.
	openRow []uint64

	// rowShift/chMask/bankMask/bankShift strength-reduce the per-access
	// channel/bank/row divisions to shift/mask when the geometry is all
	// powers of two (pow2 false otherwise — sensitivity sweeps use odd
	// channel counts, so the division path stays live). maxWait folds the
	// MaxQueue bound into one precomputed compare (^0 = unbounded).
	pow2      bool
	chMask    uint64
	rowShift  uint
	bankMask  uint64
	bankShift uint
	maxWait   memsys.Cycles

	// faults, when attached, injects read bit-flips behind a SECDED ECC
	// model (nil = no injection, the default).
	faults *faults.Injector

	// Stats
	Accesses   stats.Counter
	RowHits    stats.Ratio
	BytesMoved stats.Counter
	// QueueDelay accumulates cycles spent waiting for a busy channel.
	QueueDelay stats.Counter
	// ECCPenalty accumulates latency added by injected ECC events.
	ECCPenalty stats.Counter
	// lastBusy tracks the furthest completion time, for utilization.
	lastBusy memsys.Cycles
}

// New builds the DRAM model.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 || cfg.BanksPerChan <= 0 || cfg.RowBytes <= 0 {
		panic(fmt.Sprintf("dram: bad config %+v", cfg))
	}
	d := &DRAM{
		cfg:     cfg,
		queues:  make([]memsys.Queue, cfg.Channels),
		openRow: make([]uint64, cfg.Channels*cfg.BanksPerChan),
		maxWait: ^memsys.Cycles(0),
	}
	for i := range d.openRow {
		d.openRow[i] = ^uint64(0)
	}
	if cfg.MaxQueue > 0 {
		d.maxWait = memsys.Cycles(cfg.MaxQueue) * cfg.ServiceCyclesPerLine
	}
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	if pow2(cfg.Channels) && pow2(cfg.BanksPerChan) && pow2(cfg.RowBytes) {
		d.pow2 = true
		d.chMask = uint64(cfg.Channels) - 1
		d.rowShift = uint(bits.TrailingZeros(uint(cfg.RowBytes)))
		d.bankMask = uint64(cfg.BanksPerChan) - 1
		d.bankShift = uint(bits.TrailingZeros(uint(cfg.BanksPerChan)))
	}
	return d
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// AttachFaults installs a fault injector; DRAM read accesses then pass
// through its SECDED ECC model. nil detaches.
func (d *DRAM) AttachFaults(in *faults.Injector) { d.faults = in }

// Access simulates one line-sized read beginning at time now and returns
// its latency (queueing + device access, plus any injected ECC handling).
func (d *DRAM) Access(now memsys.Cycles, addr memsys.Addr) memsys.Cycles {
	return d.AccessHint(now, addr, false)
}

// Write simulates one line-sized writeback. Writes skip the ECC read
// model — bit-flips matter when data is read back, and the read path is
// where the injector charges them.
func (d *DRAM) Write(now memsys.Cycles, addr memsys.Addr) memsys.Cycles {
	return d.access(now, addr, false, false)
}

// AccessHint is Access with a locality hint: under the Hybrid policy,
// low-locality accesses close their row after use (§IX).
func (d *DRAM) AccessHint(now memsys.Cycles, addr memsys.Addr, lowLocality bool) memsys.Cycles {
	return d.access(now, addr, lowLocality, true)
}

// access is the shared device model behind reads and writebacks. The
// channel/bank/row decomposition, queue bound, and open-row update run as
// straight-line shift/mask arithmetic on the flattened row array for
// power-of-two geometries (the strength-reduced form of exactly the
// divisions below, so every index — and therefore every latency — is
// unchanged).
func (d *DRAM) access(now memsys.Cycles, addr memsys.Addr, lowLocality, read bool) memsys.Cycles {
	la := uint64(memsys.LineAddr(addr))
	var chIdx, slot, row uint64
	if d.pow2 {
		chIdx = (la / memsys.LineSize) & d.chMask
		rb := la >> d.rowShift
		slot = chIdx<<d.bankShift | (rb & d.bankMask)
		row = rb >> d.bankShift
	} else {
		chIdx = (la / memsys.LineSize) % uint64(d.cfg.Channels)
		bankIdx := (la / uint64(d.cfg.RowBytes)) % uint64(d.cfg.BanksPerChan)
		slot = chIdx*uint64(d.cfg.BanksPerChan) + bankIdx
		row = la / uint64(d.cfg.RowBytes) / uint64(d.cfg.BanksPerChan)
	}

	wait := d.queues[chIdx].Enqueue(now, d.cfg.ServiceCyclesPerLine)
	if wait > d.maxWait {
		wait = d.maxWait
	}
	d.QueueDelay.Add(uint64(wait))
	start := now + wait
	var dev memsys.Cycles
	open := &d.openRow[slot]
	if *open == row {
		dev = d.cfg.RowHitCycles
		d.RowHits.Observe(true)
	} else {
		dev = d.cfg.RowMissCycles
		d.RowHits.Observe(false)
	}
	if d.cfg.ClosePage || (d.cfg.Hybrid && lowLocality) {
		*open = ^uint64(0)
	} else {
		*open = row
	}
	if read && d.faults != nil {
		if extra := d.faults.DRAMRead(dev); extra > 0 {
			// Single-bit: inline correction. Double-bit: detected, the
			// device access replays (extra includes it).
			dev += extra
			d.ECCPenalty.Add(uint64(extra))
		}
	}
	done := start + dev
	if done > d.lastBusy {
		d.lastBusy = done
	}
	d.Accesses.Inc()
	d.BytesMoved.Add(memsys.LineSize)
	return done - now
}

// PeakBytesPerCycle returns the aggregate channel bandwidth in bytes per
// core cycle.
func (d *DRAM) PeakBytesPerCycle() float64 {
	return float64(d.cfg.Channels) * memsys.LineSize / float64(d.cfg.ServiceCyclesPerLine)
}

// Utilization returns achieved bandwidth as a fraction of peak over an
// execution of elapsed cycles.
func (d *DRAM) Utilization(elapsed memsys.Cycles) float64 {
	if elapsed == 0 {
		return 0
	}
	achieved := float64(d.BytesMoved.Value()) / float64(elapsed)
	return achieved / d.PeakBytesPerCycle()
}

// State is an opaque DRAM checkpoint.
type State struct {
	queues  []memsys.Queue
	openRow []uint64

	accesses, bytesMoved, queueDelay, eccPenalty stats.Counter
	rowHits                                      stats.Ratio
	lastBusy                                     memsys.Cycles
}

// Snapshot captures the device state for later Restore.
func (d *DRAM) Snapshot() State {
	return State{
		queues:     append([]memsys.Queue(nil), d.queues...),
		openRow:    append([]uint64(nil), d.openRow...),
		accesses:   d.Accesses,
		bytesMoved: d.BytesMoved,
		queueDelay: d.QueueDelay,
		eccPenalty: d.ECCPenalty,
		rowHits:    d.RowHits,
		lastBusy:   d.lastBusy,
	}
}

// Restore rewinds the device to a Snapshot.
func (d *DRAM) Restore(s State) {
	copy(d.queues, s.queues)
	copy(d.openRow, s.openRow)
	d.Accesses = s.accesses
	d.BytesMoved = s.bytesMoved
	d.QueueDelay = s.queueDelay
	d.ECCPenalty = s.eccPenalty
	d.RowHits = s.rowHits
	d.lastBusy = s.lastBusy
}

// Reset clears device state and statistics.
func (d *DRAM) Reset() {
	for i := range d.queues {
		d.queues[i].Reset()
	}
	for i := range d.openRow {
		d.openRow[i] = ^uint64(0)
	}
	d.Accesses.Reset()
	d.RowHits = stats.Ratio{}
	d.BytesMoved.Reset()
	d.QueueDelay.Reset()
	d.ECCPenalty.Reset()
	d.lastBusy = 0
}
