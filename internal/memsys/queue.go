package memsys

// Queue models contention for a serial resource (DRAM channel, crossbar
// output port, PISC sequencer) with a utilization-based delay model: the
// resource tracks its demanded service time over a sliding window of
// simulated time and charges each request an M/D/1-style queueing delay
//
//	wait = service * u / (2 * (1 - u))
//
// where u is the smoothed utilization. This form is robust to the bounded
// clock skew between simulated cores (an absolute busy-until model charges
// the skew itself as queueing), degrades smoothly from idle to saturated,
// and enforces an effective bandwidth limit: near saturation each request
// pays ~50 service times, throttling the requesters.
type Queue struct {
	horizon     Cycles  // furthest simulated time observed
	windowStart Cycles  // start of the current measurement window
	work        Cycles  // service time demanded in the current window
	util        float64 // smoothed utilization estimate in [0, maxUtil]
}

const (
	// queueWindow is the utilization measurement window in cycles.
	queueWindow = 2048
	// maxUtil caps the utilization estimate; at the cap each request
	// waits ~50 service times.
	maxUtil = 0.99
)

// Enqueue records a request arriving at time now needing service cycles of
// the resource, and returns its queueing delay before service begins.
func (q *Queue) Enqueue(now, service Cycles) (wait Cycles) {
	if now > q.horizon {
		q.horizon = now
	}
	q.work += service
	if q.horizon-q.windowStart >= queueWindow {
		span := float64(q.horizon - q.windowStart)
		u := float64(q.work) / span
		if u > 1 {
			u = 1
		}
		q.util = 0.5*q.util + 0.5*u
		if q.util > maxUtil {
			q.util = maxUtil
		}
		q.windowStart = q.horizon
		q.work = 0
	}
	u := q.util
	// Fold in the current (incomplete) window once it has enough span to
	// be meaningful, so saturation within a window is felt immediately.
	if sp := q.horizon - q.windowStart; sp >= queueWindow/4 {
		cur := float64(q.work) / float64(sp)
		if cur > 1 {
			cur = 1
		}
		if cur > u {
			u = cur
		}
	}
	if u == 0 {
		// Idle resource: the delay formula is exactly zero, skip the
		// floating-point work (this is the common case off saturation).
		return 0
	}
	if u > maxUtil {
		u = maxUtil
	}
	return Cycles(float64(service) * u / (2 * (1 - u)))
}

// Utilization returns the smoothed utilization estimate.
func (q *Queue) Utilization() float64 { return q.util }

// Reset clears the queue state.
func (q *Queue) Reset() { *q = Queue{} }
