package memsys

// Queue models contention for a serial resource (DRAM channel, crossbar
// output port, PISC sequencer) with a utilization-based delay model: the
// resource tracks its demanded service time over a sliding window of
// simulated time and charges each request an M/D/1-style queueing delay
//
//	wait = service * u / (2 * (1 - u))
//
// where u is the smoothed utilization. This form is robust to the bounded
// clock skew between simulated cores (an absolute busy-until model charges
// the skew itself as queueing), degrades smoothly from idle to saturated,
// and enforces an effective bandwidth limit: near saturation each request
// pays ~50 service times, throttling the requesters.
//
// Enqueue is the single hottest arithmetic leaf of the simulator's miss
// path (every NoC message and every DRAM access passes through it), so
// the utilization-dependent terms of the delay expression are computed
// once per measurement window instead of once per call:
//
//   - denom caches 2*(1-util). The per-call expression stays exactly
//     float64(service) * util / denom, the same operations in the same
//     order as the original 2*(1-u) inline form, so every returned wait
//     is bit-identical.
//   - foldGate caches util * (queueWindow/4). The fold of the current
//     (incomplete) window only matters when its utilization exceeds the
//     smoothed estimate; since the fold span is always in
//     [queueWindow/4, queueWindow) and both scalings are by powers of
//     two (exact in float64), work/span > util is impossible whenever
//     float64(work) <= foldGate — rounding to nearest is monotone — and
//     the per-call division is skipped without changing any outcome.
//   - an idle resource (util == 0 and an empty or immature current
//     window) returns 0 through integer comparisons alone.
//   - the smoothed-path wait is a pure function of (service, util), and
//     each queue sees only a handful of distinct service values (a DRAM
//     channel always ServiceCyclesPerLine, a NoC port the ctrl/word and
//     line flit counts), so the last two (service, wait) pairs are
//     memoized per window: a memo hit returns the identical Cycles value
//     through integer compares, no float arithmetic at all.
type Queue struct {
	horizon     Cycles  // furthest simulated time observed
	windowStart Cycles  // start of the current measurement window
	work        Cycles  // service time demanded in the current window
	util        float64 // smoothed utilization estimate in [0, maxUtil]
	// denom and foldGate are pure functions of util, refreshed whenever
	// util changes (rollWindow) and carried through snapshots by value.
	denom    float64 // 2 * (1 - util)
	foldGate float64 // util * (queueWindow/4)
	// svc1/wait1 and svc2/wait2 memoize the smoothed-path delay for the
	// last two distinct service values of the current window (invalidated
	// by rollWindow). A hit returns the exact Cycles the expression below
	// would produce — same inputs, same pure function.
	svc1, wait1 Cycles
	svc2, wait2 Cycles
}

const (
	// queueWindow is the utilization measurement window in cycles.
	queueWindow = 2048
	// maxUtil caps the utilization estimate; at the cap each request
	// waits ~50 service times.
	maxUtil = 0.99
)

// Enqueue records a request arriving at time now needing service cycles of
// the resource, and returns its queueing delay before service begins.
func (q *Queue) Enqueue(now, service Cycles) (wait Cycles) {
	if now > q.horizon {
		q.horizon = now
	}
	q.work += service
	span := q.horizon - q.windowStart
	if span >= queueWindow {
		q.rollWindow(span)
		span = 0
	}
	// Fold in the current (incomplete) window once it has enough span to
	// be meaningful, so saturation within a window is felt immediately.
	// The foldGate pre-filter (see type comment) proves work/span cannot
	// exceed util without the division.
	if span >= queueWindow/4 && float64(q.work) > q.foldGate {
		cur := float64(q.work) / float64(span)
		if cur > 1 {
			cur = 1
		}
		if cur > q.util {
			if cur > maxUtil {
				cur = maxUtil
			}
			return Cycles(float64(service) * cur / (2 * (1 - cur)))
		}
	}
	if q.util == 0 {
		// Idle resource: the delay formula is exactly zero, skip the
		// floating-point work (this is the common case off saturation).
		return 0
	}
	if service == q.svc1 {
		return q.wait1
	}
	if service == q.svc2 {
		return q.wait2
	}
	w := Cycles(float64(service) * q.util / q.denom)
	q.svc2, q.wait2 = q.svc1, q.wait1
	q.svc1, q.wait1 = service, w
	return w
}

// rollWindow closes the measurement window spanning span cycles: the
// utilization estimate absorbs the window's demand with exponential
// smoothing, and the cached utilization-dependent terms are refreshed.
func (q *Queue) rollWindow(span Cycles) {
	u := float64(q.work) / float64(span)
	if u > 1 {
		u = 1
	}
	q.util = 0.5*q.util + 0.5*u
	if q.util > maxUtil {
		q.util = maxUtil
	}
	q.windowStart = q.horizon
	q.work = 0
	q.denom = 2 * (1 - q.util)
	q.foldGate = q.util * (queueWindow / 4)
	// util changed: the memoized (service, wait) pairs are stale. A zero
	// service entry is safe to leave armed — a service-0 request's true
	// wait is exactly 0 on any utilization.
	q.svc1, q.wait1 = 0, 0
	q.svc2, q.wait2 = 0, 0
}

// Utilization returns the smoothed utilization estimate.
func (q *Queue) Utilization() float64 { return q.util }

// Reset clears the queue state.
func (q *Queue) Reset() { *q = Queue{} }
