package memsys

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {127, 64}, {4096, 4096},
	}
	for _, c := range cases {
		if got := LineAddr(c.in); got != c.want {
			t.Fatalf("LineAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLineAddrProperty(t *testing.T) {
	f := func(a uint64) bool {
		la := LineAddr(Addr(a))
		return uint64(la)%LineSize == 0 && uint64(la) <= a && a-uint64(la) < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindVtxProp, KindEdgeList, KindNGraphData, KindActiveList} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestLevelStrings(t *testing.T) {
	seen := map[string]bool{}
	for l := Level(0); l < NumLevels; l++ {
		name := l.String()
		if name == "" {
			t.Fatalf("level %d has no name", l)
		}
		if seen[name] {
			t.Fatalf("level name %q duplicated", name)
		}
		seen[name] = true
	}
	if LevelL1.String() != "L1" || LevelSPLocal.String() != "SP-local" {
		t.Fatal("level names wrong")
	}
	if Level(99).String() == "" {
		t.Fatal("unknown level should still render")
	}
}

func TestOpStrings(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpAtomic.String() != "atomic" {
		t.Fatal("op names wrong")
	}
	if Op(9).String() == "" {
		t.Fatal("unknown op should still render")
	}
}

func TestQueueIdleIsFree(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		// Widely spaced requests on an idle resource never wait.
		if w := q.Enqueue(Cycles(i*100000), 10); w != 0 {
			t.Fatalf("idle queue wait %d at %d", w, i)
		}
	}
}

func TestQueueSaturationDelays(t *testing.T) {
	var q Queue
	// Demand 4x the capacity: service 40 every 10 cycles.
	var now Cycles
	var last Cycles
	for i := 0; i < 2000; i++ {
		last = q.Enqueue(now, 40)
		now += 10
	}
	if last == 0 {
		t.Fatal("saturated queue should delay requests")
	}
	if q.Utilization() < 0.9 {
		t.Fatalf("utilization %v, want near max", q.Utilization())
	}
}

func TestQueueLightLoadCheap(t *testing.T) {
	var q Queue
	var now Cycles
	var total Cycles
	for i := 0; i < 2000; i++ {
		total += q.Enqueue(now, 1)
		now += 100 // 1% utilization
	}
	if avg := float64(total) / 2000; avg > 1 {
		t.Fatalf("light load average wait %v too high", avg)
	}
}

func TestQueueSkewRobustness(t *testing.T) {
	// A requester far in the future must not inflate the waits seen by
	// requesters slightly in the past (the pathology of busy-until).
	var q Queue
	for i := 0; i < 100; i++ {
		q.Enqueue(Cycles(1000000+i*50), 10)
	}
	w := q.Enqueue(500, 10)
	// The wait must reflect utilization-based queueing, not the 1M-cycle
	// clock skew.
	if w > 1000 {
		t.Fatalf("skewed requester charged %d cycles", w)
	}
}

func TestQueueWaitScalesWithService(t *testing.T) {
	var a, b Queue
	var now Cycles
	var wa, wb Cycles
	for i := 0; i < 5000; i++ {
		wa += a.Enqueue(now, 8)
		wb += b.Enqueue(now, 16)
		now += 20
	}
	if wb <= wa {
		t.Fatalf("heavier service should queue more: %d vs %d", wb, wa)
	}
}

func TestQueueReset(t *testing.T) {
	var q Queue
	var now Cycles
	for i := 0; i < 3000; i++ {
		q.Enqueue(now, 100)
		now += 10
	}
	q.Reset()
	if q.Utilization() != 0 {
		t.Fatal("reset should clear utilization")
	}
	if w := q.Enqueue(now+10000, 10); w != 0 {
		t.Fatalf("fresh queue should not wait, got %d", w)
	}
}
