package noc

import (
	"testing"

	"omega/internal/memsys"
)

func xbar() *Crossbar { return New(DefaultConfig(16)) }

func TestBaseLatency(t *testing.T) {
	x := xbar()
	lat := x.Send(0, 0, 1, 0, ClassCtrl)
	// 8 base + 1 flit (8B header in one 16B flit).
	if lat != 9 {
		t.Fatalf("ctrl latency %d, want 9", lat)
	}
}

func TestLineSerialization(t *testing.T) {
	x := xbar()
	lat := x.Send(0, 0, 1, memsys.LineSize, ClassLine)
	// 64+8 bytes = 72 -> 5 flits of 16B, plus base 8.
	if lat != 13 {
		t.Fatalf("line latency %d, want 13", lat)
	}
}

func TestWordPacketIsHeaderless(t *testing.T) {
	x := xbar()
	x.Send(0, 0, 1, 8, ClassWord)
	if got := x.BytesByClass(ClassWord); got != 8 {
		t.Fatalf("word packet counted %d bytes, want 8 (self-contained, §V.E)", got)
	}
	x.Send(0, 0, 1, 0, ClassWord)
	if got := x.BytesByClass(ClassWord); got != 16 {
		t.Fatalf("zero-payload word should default to 8 bytes, total %d", got)
	}
}

func TestLocalHopCheapButCounted(t *testing.T) {
	x := xbar()
	lat := x.Send(0, 3, 3, memsys.LineSize, ClassLine)
	if lat != 1 {
		t.Fatalf("local hop latency %d, want 1", lat)
	}
	if x.BytesByClass(ClassLine) == 0 {
		t.Fatal("local transfers still count as traffic")
	}
}

func TestTrafficByClass(t *testing.T) {
	x := xbar()
	x.Send(0, 0, 1, memsys.LineSize, ClassLine)
	x.Send(0, 1, 2, 0, ClassCtrl)
	x.Send(0, 2, 3, 8, ClassWord)
	if x.BytesByClass(ClassLine) != 72 {
		t.Fatalf("line bytes %d", x.BytesByClass(ClassLine))
	}
	if x.BytesByClass(ClassCtrl) != 8 {
		t.Fatalf("ctrl bytes %d", x.BytesByClass(ClassCtrl))
	}
	if x.BytesByClass(ClassWord) != 8 {
		t.Fatalf("word bytes %d", x.BytesByClass(ClassWord))
	}
	if x.TotalBytes() != 88 {
		t.Fatalf("total %d", x.TotalBytes())
	}
	if x.MessagesByClass(ClassLine) != 1 || x.MessagesByClass(ClassCtrl) != 1 {
		t.Fatal("message counts wrong")
	}
}

func TestHotPortContention(t *testing.T) {
	x := xbar()
	var total memsys.Cycles
	var now memsys.Cycles
	// Hammer port 0 with line transfers every cycle: 5 flits each, 1-cycle
	// spacing -> 5x oversubscribed.
	for i := 0; i < 20000; i++ {
		total += x.Send(now, 1+i%15, 0, memsys.LineSize, ClassLine)
		now++
	}
	avg := float64(total) / 20000
	if avg < 20 {
		t.Fatalf("oversubscribed port average latency %.1f too low", avg)
	}
	if x.QueueWait.Value() == 0 {
		t.Fatal("queue wait should accumulate")
	}
}

func TestIdlePortsFast(t *testing.T) {
	x := xbar()
	var now memsys.Cycles
	for i := 0; i < 1000; i++ {
		lat := x.Send(now, 0, 1+i%15, 0, ClassCtrl)
		if lat > 12 {
			t.Fatalf("idle network latency %d", lat)
		}
		now += 100
	}
}

func TestRoundTrip(t *testing.T) {
	x := xbar()
	lat := x.RoundTrip(0, 0, 5, 0, 8, ClassWord)
	// req ctrl: 8+1=9; resp word 8B: 8+1=9 -> 18. This is close to the
	// paper's measured 17-cycle average remote access.
	if lat != 18 {
		t.Fatalf("round trip %d, want 18", lat)
	}
}

func TestPortRangePanics(t *testing.T) {
	x := xbar()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Send(0, 0, 99, 0, ClassCtrl)
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Ports: 0, BusBytes: 16})
}

func TestClassStrings(t *testing.T) {
	if ClassLine.String() != "line" || ClassWord.String() != "word" || ClassCtrl.String() != "ctrl" {
		t.Fatal("class names wrong")
	}
	if MsgClass(9).String() == "" {
		t.Fatal("unknown class should render")
	}
}

func TestReset(t *testing.T) {
	x := xbar()
	x.Send(0, 0, 1, 64, ClassLine)
	x.Reset()
	if x.TotalBytes() != 0 || x.QueueWait.Value() != 0 {
		t.Fatal("reset incomplete")
	}
}
