// Package noc models the on-chip crossbar interconnect of the testbed
// (Table III: crossbar, 128-bit bus width). It tracks message latency
// (base traversal + serialization + output-port queueing) and — centrally
// for the paper's Figure 17 — the total on-chip traffic volume in bytes,
// distinguishing cache-line-sized transfers from OMEGA's word-sized
// scratchpad packets (§V.E).
package noc

import (
	"fmt"

	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config sizes the crossbar.
type Config struct {
	// Ports is the number of endpoints (cores/L2 banks pairs).
	Ports int
	// BaseLatency is the unloaded one-way traversal latency; the paper
	// measures an average of 17 cycles for remote scratchpad access,
	// which includes request+response, so one way defaults to 8 with a
	// 1-cycle router overhead folded in.
	BaseLatency memsys.Cycles
	// BusBytes is the link width per cycle (128 bits = 16 B).
	BusBytes int
	// CtrlBytes is the size of an address/command header attached to
	// line-sized and control messages. Word-class messages (OMEGA's
	// scratchpad packets) are self-contained 64-bit packets (§V.E) and
	// carry no extra header.
	CtrlBytes int
	// MaxQueueCycles bounds modeled output-port queueing per message.
	MaxQueueCycles memsys.Cycles
}

// DefaultConfig returns the Table III crossbar.
func DefaultConfig(ports int) Config {
	return Config{Ports: ports, BaseLatency: 8, BusBytes: 16, CtrlBytes: 8, MaxQueueCycles: 64}
}

// MsgClass labels traffic for the Figure 17 breakdown.
type MsgClass uint8

const (
	// ClassLine is a cache-line data transfer (fill, writeback, c2c).
	ClassLine MsgClass = iota
	// ClassWord is an OMEGA word-granularity scratchpad packet.
	ClassWord
	// ClassCtrl is a control-only message (request, invalidation, ack).
	ClassCtrl
	numClasses
)

// String names the class.
func (c MsgClass) String() string {
	switch c {
	case ClassLine:
		return "line"
	case ClassWord:
		return "word"
	case ClassCtrl:
		return "ctrl"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Crossbar is the interconnect model. Not safe for concurrent use.
type Crossbar struct {
	cfg     Config
	ports   []memsys.Queue
	bytesBy [numClasses]stats.Counter
	msgsBy  [numClasses]stats.Counter
	// faults, when attached, drops/delays non-local messages with
	// bounded retransmission (nil = no injection, the default).
	faults    *faults.Injector
	QueueWait stats.Counter
	// RetryWait accumulates cycles added by injected drop/retry handling.
	RetryWait stats.Counter
}

// New builds the crossbar.
func New(cfg Config) *Crossbar {
	if cfg.Ports <= 0 || cfg.BusBytes <= 0 {
		panic(fmt.Sprintf("noc: bad config %+v", cfg))
	}
	return &Crossbar{cfg: cfg, ports: make([]memsys.Queue, cfg.Ports)}
}

// Config returns the configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// AttachFaults installs a fault injector; non-local sends then suffer
// seeded drop/retransmission events. nil detaches.
func (x *Crossbar) AttachFaults(in *faults.Injector) { x.faults = in }

// Send simulates one message of payloadBytes from src to dst starting at
// now, returning its delivery latency. A control header of CtrlBytes is
// charged on top of the payload. src == dst models a local hop and is
// free of traversal latency but still counts traffic when count is set.
func (x *Crossbar) Send(now memsys.Cycles, src, dst int, payloadBytes int, class MsgClass) memsys.Cycles {
	if src < 0 || src >= x.cfg.Ports || dst < 0 || dst >= x.cfg.Ports {
		panic(fmt.Sprintf("noc: port out of range src=%d dst=%d", src, dst))
	}
	total := payloadBytes + x.cfg.CtrlBytes
	if class == ClassWord {
		// OMEGA word packets are self-contained (≤64-bit, §V.E): the
		// payload already includes command/vertex bits.
		total = payloadBytes
		if total <= 0 {
			total = 8
		}
	}
	x.bytesBy[class].Add(uint64(total))
	x.msgsBy[class].Inc()
	if src == dst {
		return 1
	}
	// Serialization: flits of BusBytes per cycle, at least 1.
	flits := memsys.Cycles((total + x.cfg.BusBytes - 1) / x.cfg.BusBytes)
	wait := x.ports[dst].Enqueue(now, flits)
	if x.cfg.MaxQueueCycles > 0 && wait > x.cfg.MaxQueueCycles {
		wait = x.cfg.MaxQueueCycles
	}
	x.QueueWait.Add(uint64(wait))
	lat := wait + x.cfg.BaseLatency + flits
	if x.faults != nil {
		if extra, resends := x.faults.NoCSend(flits, total); resends > 0 {
			// Retransmissions are real traffic: count their bytes and
			// messages, and delay delivery by backoff + re-serialization.
			x.bytesBy[class].Add(uint64(resends * total))
			x.msgsBy[class].Add(uint64(resends))
			x.RetryWait.Add(uint64(extra))
			lat += extra
		}
	}
	return lat
}

// RoundTrip simulates a request to dst followed by a response carrying
// respBytes back to src; returns total latency.
func (x *Crossbar) RoundTrip(now memsys.Cycles, src, dst int, reqBytes, respBytes int, class MsgClass) memsys.Cycles {
	l1 := x.Send(now, src, dst, reqBytes, ClassCtrl)
	l2 := x.Send(now+l1, dst, src, respBytes, class)
	return l1 + l2
}

// TotalBytes returns all on-chip traffic in bytes.
func (x *Crossbar) TotalBytes() uint64 {
	var t uint64
	for i := range x.bytesBy {
		t += x.bytesBy[i].Value()
	}
	return t
}

// BytesByClass returns traffic for one class.
func (x *Crossbar) BytesByClass(c MsgClass) uint64 { return x.bytesBy[c].Value() }

// MessagesByClass returns the message count for one class.
func (x *Crossbar) MessagesByClass(c MsgClass) uint64 { return x.msgsBy[c].Value() }

// State is an opaque crossbar checkpoint.
type State struct {
	ports   []memsys.Queue
	bytesBy [numClasses]stats.Counter
	msgsBy  [numClasses]stats.Counter

	queueWait, retryWait stats.Counter
}

// Snapshot captures the crossbar state for later Restore.
func (x *Crossbar) Snapshot() State {
	return State{
		ports:     append([]memsys.Queue(nil), x.ports...),
		bytesBy:   x.bytesBy,
		msgsBy:    x.msgsBy,
		queueWait: x.QueueWait,
		retryWait: x.RetryWait,
	}
}

// Restore rewinds the crossbar to a Snapshot.
func (x *Crossbar) Restore(s State) {
	copy(x.ports, s.ports)
	x.bytesBy = s.bytesBy
	x.msgsBy = s.msgsBy
	x.QueueWait = s.queueWait
	x.RetryWait = s.retryWait
}

// Reset clears busy state and statistics.
func (x *Crossbar) Reset() {
	for i := range x.ports {
		x.ports[i].Reset()
	}
	for i := range x.bytesBy {
		x.bytesBy[i].Reset()
		x.msgsBy[i].Reset()
	}
	x.QueueWait.Reset()
	x.RetryWait.Reset()
}
