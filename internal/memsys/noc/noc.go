// Package noc models the on-chip crossbar interconnect of the testbed
// (Table III: crossbar, 128-bit bus width). It tracks message latency
// (base traversal + serialization + output-port queueing) and — centrally
// for the paper's Figure 17 — the total on-chip traffic volume in bytes,
// distinguishing cache-line-sized transfers from OMEGA's word-sized
// scratchpad packets (§V.E).
package noc

import (
	"fmt"
	"math/bits"

	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config sizes the crossbar.
type Config struct {
	// Ports is the number of endpoints (cores/L2 banks pairs).
	Ports int
	// BaseLatency is the unloaded one-way traversal latency; the paper
	// measures an average of 17 cycles for remote scratchpad access,
	// which includes request+response, so one way defaults to 8 with a
	// 1-cycle router overhead folded in.
	BaseLatency memsys.Cycles
	// BusBytes is the link width per cycle (128 bits = 16 B).
	BusBytes int
	// CtrlBytes is the size of an address/command header attached to
	// line-sized and control messages. Word-class messages (OMEGA's
	// scratchpad packets) are self-contained 64-bit packets (§V.E) and
	// carry no extra header.
	CtrlBytes int
	// MaxQueueCycles bounds modeled output-port queueing per message.
	MaxQueueCycles memsys.Cycles
}

// DefaultConfig returns the Table III crossbar.
func DefaultConfig(ports int) Config {
	return Config{Ports: ports, BaseLatency: 8, BusBytes: 16, CtrlBytes: 8, MaxQueueCycles: 64}
}

// MsgClass labels traffic for the Figure 17 breakdown.
type MsgClass uint8

const (
	// ClassLine is a cache-line data transfer (fill, writeback, c2c).
	ClassLine MsgClass = iota
	// ClassWord is an OMEGA word-granularity scratchpad packet.
	ClassWord
	// ClassCtrl is a control-only message (request, invalidation, ack).
	ClassCtrl
	numClasses
)

// String names the class.
func (c MsgClass) String() string {
	switch c {
	case ClassLine:
		return "line"
	case ClassWord:
		return "word"
	case ClassCtrl:
		return "ctrl"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// classTraffic packs one message class's byte and message counts into
// adjacent words, so the two per-send counter bumps touch one record
// instead of two counter arrays.
type classTraffic struct {
	bytes, msgs uint64
}

// Crossbar is the interconnect model. Not safe for concurrent use.
type Crossbar struct {
	cfg     Config
	ports   []memsys.Queue
	traffic [numClasses]classTraffic
	// busShift strength-reduces the serialization division to a shift
	// when BusBytes is a power of two (-1 otherwise).
	busShift int
	// faults, when attached, drops/delays non-local messages with
	// bounded retransmission (nil = no injection, the default).
	faults    *faults.Injector
	QueueWait stats.Counter
	// RetryWait accumulates cycles added by injected drop/retry handling.
	RetryWait stats.Counter
}

// New builds the crossbar.
func New(cfg Config) *Crossbar {
	if cfg.Ports <= 0 || cfg.BusBytes <= 0 {
		panic(fmt.Sprintf("noc: bad config %+v", cfg))
	}
	x := &Crossbar{cfg: cfg, ports: make([]memsys.Queue, cfg.Ports), busShift: -1}
	if cfg.BusBytes&(cfg.BusBytes-1) == 0 {
		x.busShift = bits.TrailingZeros(uint(cfg.BusBytes))
	}
	return x
}

// Config returns the configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// AttachFaults installs a fault injector; non-local sends then suffer
// seeded drop/retransmission events. nil detaches.
func (x *Crossbar) AttachFaults(in *faults.Injector) { x.faults = in }

// Send simulates one message of payloadBytes from src to dst starting at
// now, returning its delivery latency. A control header of CtrlBytes is
// charged on top of the payload. src == dst models a local hop and is
// free of traversal latency but still counts traffic when count is set.
// The body is straight-line: one unsigned range check, one branch for the
// word-packet sizing, fused per-class traffic accounting, and a shift for
// the flit count on power-of-two bus widths.
func (x *Crossbar) Send(now memsys.Cycles, src, dst int, payloadBytes int, class MsgClass) memsys.Cycles {
	if uint(src) >= uint(x.cfg.Ports) || uint(dst) >= uint(x.cfg.Ports) {
		panic(fmt.Sprintf("noc: port out of range src=%d dst=%d", src, dst))
	}
	total := payloadBytes + x.cfg.CtrlBytes
	if class == ClassWord {
		// OMEGA word packets are self-contained (≤64-bit, §V.E): the
		// payload already includes command/vertex bits.
		total = payloadBytes
		if total <= 0 {
			total = 8
		}
	}
	tr := &x.traffic[class]
	tr.bytes += uint64(total)
	tr.msgs++
	if src == dst {
		return 1
	}
	// Serialization: flits of BusBytes per cycle, at least 1.
	var flits memsys.Cycles
	if x.busShift >= 0 {
		flits = memsys.Cycles((total + x.cfg.BusBytes - 1) >> uint(x.busShift))
	} else {
		flits = memsys.Cycles((total + x.cfg.BusBytes - 1) / x.cfg.BusBytes)
	}
	wait := x.ports[dst].Enqueue(now, flits)
	if x.cfg.MaxQueueCycles > 0 && wait > x.cfg.MaxQueueCycles {
		wait = x.cfg.MaxQueueCycles
	}
	x.QueueWait.Add(uint64(wait))
	lat := wait + x.cfg.BaseLatency + flits
	if x.faults != nil {
		if extra, resends := x.faults.NoCSend(flits, total); resends > 0 {
			// Retransmissions are real traffic: count their bytes and
			// messages, and delay delivery by backoff + re-serialization.
			tr.bytes += uint64(resends * total)
			tr.msgs += uint64(resends)
			x.RetryWait.Add(uint64(extra))
			lat += extra
		}
	}
	return lat
}

// RoundTrip simulates a request to dst followed by a response carrying
// respBytes back to src; returns total latency.
func (x *Crossbar) RoundTrip(now memsys.Cycles, src, dst int, reqBytes, respBytes int, class MsgClass) memsys.Cycles {
	l1 := x.Send(now, src, dst, reqBytes, ClassCtrl)
	l2 := x.Send(now+l1, dst, src, respBytes, class)
	return l1 + l2
}

// TotalBytes returns all on-chip traffic in bytes.
func (x *Crossbar) TotalBytes() uint64 {
	var t uint64
	for i := range x.traffic {
		t += x.traffic[i].bytes
	}
	return t
}

// BytesByClass returns traffic for one class.
func (x *Crossbar) BytesByClass(c MsgClass) uint64 { return x.traffic[c].bytes }

// MessagesByClass returns the message count for one class.
func (x *Crossbar) MessagesByClass(c MsgClass) uint64 { return x.traffic[c].msgs }

// State is an opaque crossbar checkpoint.
type State struct {
	ports   []memsys.Queue
	traffic [numClasses]classTraffic

	queueWait, retryWait stats.Counter
}

// Snapshot captures the crossbar state for later Restore.
func (x *Crossbar) Snapshot() State {
	return State{
		ports:     append([]memsys.Queue(nil), x.ports...),
		traffic:   x.traffic,
		queueWait: x.QueueWait,
		retryWait: x.RetryWait,
	}
}

// Restore rewinds the crossbar to a Snapshot.
func (x *Crossbar) Restore(s State) {
	copy(x.ports, s.ports)
	x.traffic = s.traffic
	x.QueueWait = s.queueWait
	x.RetryWait = s.retryWait
}

// Reset clears busy state and statistics.
func (x *Crossbar) Reset() {
	for i := range x.ports {
		x.ports[i].Reset()
	}
	x.traffic = [numClasses]classTraffic{}
	x.QueueWait.Reset()
	x.RetryWait.Reset()
}
