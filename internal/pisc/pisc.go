// Package pisc implements the Processing-In-SCratchpad engine of paper
// §V.B (Figure 9): a microcoded ALU attached to each scratchpad slice that
// executes the atomic update operations offloaded by the cores, plus the
// timing model for offload queueing and per-vertex blocking.
//
// The functional side (Op, Microcode, Engine.Execute) really computes the
// atomic operations — the simulator's algorithm results flow through it —
// and the timing side (Engine.Offload) charges cycles.
package pisc

import (
	"fmt"
	"math"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Op enumerates the ALU operations of Figure 9 / Table II.
type Op uint8

const (
	// OpNop performs no update (used for configuration testing).
	OpNop Op = iota
	// OpFPAdd is floating-point accumulate (PageRank).
	OpFPAdd
	// OpUnsignedCompareSwap writes the operand if the destination is the
	// sentinel "unvisited" value (BFS parent assignment).
	OpUnsignedCompareSwap
	// OpSignedMin keeps the minimum of destination and operand (SSSP,
	// Radii-style distance relaxation).
	OpSignedMin
	// OpSignedAdd is integer accumulate (BC path counting, TC, KC).
	OpSignedAdd
	// OpOr is bitwise OR (Radii's visited-set union).
	OpOr
	// OpBoolComp sets the destination to the operand when the operand is
	// smaller (bool/flag compare-update used with SSSP's visited tags).
	OpBoolComp
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpFPAdd:
		return "fp-add"
	case OpUnsignedCompareSwap:
		return "unsigned-cas"
	case OpSignedMin:
		return "signed-min"
	case OpSignedAdd:
		return "signed-add"
	case OpOr:
		return "or"
	case OpBoolComp:
		return "bool-comp"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Latency returns the ALU occupancy of the operation in cycles; FP add is
// the long pole (the PISC's area/power is dominated by its FP adder,
// paper §X.B).
func (o Op) Latency() memsys.Cycles {
	switch o {
	case OpFPAdd:
		return 3
	case OpNop:
		return 1
	default:
		return 1
	}
}

// MicroOp is one step of a microcode routine (Figure 9's microcode
// registers hold sequences of these).
type MicroOp uint8

const (
	// UReadSP reads the vertex's property from the scratchpad.
	UReadSP MicroOp = iota
	// UALU applies the configured ALU operation.
	UALU
	// UWriteSP writes the result back to the scratchpad.
	UWriteSP
	// USetActiveDense sets the vertex's dense active-list bit in-SP.
	USetActiveDense
	// UAppendActiveSparse emits the vertex ID to the sparse active list
	// in memory via the local L1 (paper §V.B).
	UAppendActiveSparse
)

// Microcode is a routine stored in the PISC's microcode registers.
type Microcode struct {
	// Name labels the routine ("pagerank-update").
	Name string
	// Op is the ALU operation the UALU step applies.
	Op Op
	// Steps is the executed sequence.
	Steps []MicroOp
}

// StandardMicrocode returns the canonical offloaded-update routine for an
// ALU op: read, compute, write, plus dense active-list maintenance when
// track is set.
func StandardMicrocode(name string, op Op, trackDense, trackSparse bool) Microcode {
	steps := []MicroOp{UReadSP, UALU, UWriteSP}
	if trackDense {
		steps = append(steps, USetActiveDense)
	}
	if trackSparse {
		steps = append(steps, UAppendActiveSparse)
	}
	return Microcode{Name: name, Op: op, Steps: steps}
}

// Latency returns the routine's total PISC occupancy, given the scratchpad
// access latency.
func (m Microcode) Latency(spLat memsys.Cycles) memsys.Cycles {
	var t memsys.Cycles
	for _, s := range m.Steps {
		switch s {
		case UReadSP, UWriteSP:
			t += spLat
		case UALU:
			t += m.Op.Latency()
		case USetActiveDense:
			// Folded into the write port: 1 cycle.
			t++
		case UAppendActiveSparse:
			// Queue the ID into the L1-bound store buffer.
			t++
		}
	}
	if t == 0 {
		t = 1
	}
	return t
}

// Occupancy returns the engine's initiation interval for the routine: the
// sequencer pipelines scratchpad reads/writes against the ALU, so a new
// update can start every max(spLat, aluLat) cycles even though each one
// takes Latency() end to end.
func (m Microcode) Occupancy(spLat memsys.Cycles) memsys.Cycles {
	occ := m.Op.Latency()
	if spLat > occ {
		occ = spLat
	}
	if occ == 0 {
		occ = 1
	}
	return occ
}

// Value is the 64-bit payload of an atomic update. Interpretation depends
// on the Op (float64 bits for OpFPAdd, signed/unsigned integers for the
// rest).
type Value uint64

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return Value(math.Float64bits(f)) }

// Float unwraps a float64.
func (v Value) Float() float64 { return math.Float64frombits(uint64(v)) }

// IntValue wraps an int64.
func IntValue(i int64) Value { return Value(i) }

// Int unwraps an int64.
func (v Value) Int() int64 { return int64(v) }

// Apply executes the ALU operation functionally: it combines the current
// destination value with the operand and reports the new value and whether
// the destination changed (the "changed" outcome drives active-list
// updates in the framework).
func (o Op) Apply(dst, operand Value) (newVal Value, changed bool) {
	switch o {
	case OpNop:
		return dst, false
	case OpFPAdd:
		nv := FloatValue(dst.Float() + operand.Float())
		return nv, nv != dst
	case OpUnsignedCompareSwap:
		// Compare-and-swap against the "unset" sentinel ^0.
		if uint64(dst) == ^uint64(0) {
			return operand, true
		}
		return dst, false
	case OpSignedMin:
		if operand.Int() < dst.Int() {
			return operand, true
		}
		return dst, false
	case OpSignedAdd:
		nv := IntValue(dst.Int() + operand.Int())
		return nv, nv != dst
	case OpOr:
		nv := dst | operand
		return nv, nv != dst
	case OpBoolComp:
		if uint64(operand) < uint64(dst) {
			return operand, true
		}
		return dst, false
	}
	panic(fmt.Sprintf("pisc: unknown op %d", uint8(o)))
}

// Config parameterizes the offload timing.
type Config struct {
	// QueueDepth is the number of pending offloads a PISC absorbs before
	// back-pressuring the sender (network-interface queue).
	QueueDepth int
	// SPLatency is the attached scratchpad's access latency.
	SPLatency memsys.Cycles
}

// DefaultConfig matches the evaluation setup.
func DefaultConfig(spLat memsys.Cycles) Config {
	return Config{QueueDepth: 16, SPLatency: spLat}
}

// Engine models one PISC's timing: a single-server queue (the sequencer
// serializes routines, which also provides the per-vertex blocking of
// §V.A — all requests to the engine are ordered). Not safe for concurrent
// use.
type Engine struct {
	cfg       Config
	microcode Microcode
	queue     memsys.Queue

	// Stats
	Executed  stats.Counter
	BusyTime  stats.Counter
	Backpress stats.Counter // cycles senders spent back-pressured
}

// NewEngine builds a PISC engine.
func NewEngine(cfg Config) *Engine {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &Engine{cfg: cfg}
}

// LoadMicrocode installs the routine (the store sequence generated by the
// translation tool, §V.F).
func (e *Engine) LoadMicrocode(m Microcode) { e.microcode = m }

// Microcode returns the installed routine.
func (e *Engine) Microcode() Microcode { return e.microcode }

// Offload enqueues one atomic update arriving at the engine at time
// arrival. It returns the sender-visible stall (nonzero only when the
// queue is saturated) and the completion time of the update.
func (e *Engine) Offload(arrival memsys.Cycles) (senderStall memsys.Cycles, done memsys.Cycles) {
	occ := e.microcode.Occupancy(e.cfg.SPLatency)
	lat := e.microcode.Latency(e.cfg.SPLatency)
	wait := e.queue.Enqueue(arrival, occ)
	// The sender only stalls when the (finite) queue is full, and then
	// only until enough of it drains to accept the new entry.
	limit := memsys.Cycles(e.cfg.QueueDepth) * occ
	if wait > limit {
		senderStall = wait - limit
		if senderStall > limit {
			senderStall = limit
		}
		e.Backpress.Add(uint64(senderStall))
	}
	e.Executed.Inc()
	e.BusyTime.Add(uint64(occ))
	return senderStall, arrival + wait + lat
}

// ExecuteSync models a synchronous (blocking) engine operation, e.g. a
// read-modify issued by the local controller on behalf of a core that
// needs the result. Returns the total latency from arrival to completion.
func (e *Engine) ExecuteSync(arrival memsys.Cycles) memsys.Cycles {
	_, done := e.Offload(arrival)
	return done - arrival
}

// State is an opaque engine checkpoint (microcode rides along so a
// restore mid-algorithm keeps the loaded routine consistent).
type State struct {
	microcode Microcode
	steps     []MicroOp
	queue     memsys.Queue

	executed, busy, backpress stats.Counter
}

// Snapshot captures the engine state for later Restore.
func (e *Engine) Snapshot() State {
	return State{
		microcode: e.microcode,
		steps:     append([]MicroOp(nil), e.microcode.Steps...),
		queue:     e.queue,
		executed:  e.Executed,
		busy:      e.BusyTime,
		backpress: e.Backpress,
	}
}

// Restore rewinds the engine to a Snapshot.
func (e *Engine) Restore(s State) {
	e.microcode = s.microcode
	e.microcode.Steps = append([]MicroOp(nil), s.steps...)
	e.queue = s.queue
	e.Executed = s.executed
	e.BusyTime = s.busy
	e.Backpress = s.backpress
}

// Reset clears timing state and statistics (microcode is kept).
func (e *Engine) Reset() {
	e.queue.Reset()
	e.Executed.Reset()
	e.BusyTime.Reset()
	e.Backpress.Reset()
}
