package pisc

import (
	"math"
	"testing"
	"testing/quick"

	"omega/internal/memsys"
)

func TestOpApplyFPAdd(t *testing.T) {
	nv, changed := OpFPAdd.Apply(FloatValue(1.5), FloatValue(2.25))
	if !changed || nv.Float() != 3.75 {
		t.Fatalf("fp add -> %v changed=%v", nv.Float(), changed)
	}
	_, changed = OpFPAdd.Apply(FloatValue(1.5), FloatValue(0))
	if changed {
		t.Fatal("adding zero should not report change")
	}
}

func TestOpApplyUnsignedCAS(t *testing.T) {
	unset := Value(^uint64(0))
	nv, changed := OpUnsignedCompareSwap.Apply(unset, Value(7))
	if !changed || nv != 7 {
		t.Fatal("CAS on sentinel should succeed")
	}
	nv, changed = OpUnsignedCompareSwap.Apply(Value(7), Value(9))
	if changed || nv != 7 {
		t.Fatal("CAS on set value should fail")
	}
}

func TestOpApplySignedMin(t *testing.T) {
	nv, changed := OpSignedMin.Apply(IntValue(10), IntValue(3))
	if !changed || nv.Int() != 3 {
		t.Fatal("min should take smaller")
	}
	_, changed = OpSignedMin.Apply(IntValue(3), IntValue(10))
	if changed {
		t.Fatal("larger operand should not change")
	}
	// Negative numbers order correctly.
	nv, changed = OpSignedMin.Apply(IntValue(3), IntValue(-5))
	if !changed || nv.Int() != -5 {
		t.Fatal("negative min broken")
	}
}

func TestOpApplySignedAdd(t *testing.T) {
	nv, changed := OpSignedAdd.Apply(IntValue(10), IntValue(-4))
	if !changed || nv.Int() != 6 {
		t.Fatal("signed add broken")
	}
	_, changed = OpSignedAdd.Apply(IntValue(10), IntValue(0))
	if changed {
		t.Fatal("add zero should not change")
	}
}

func TestOpApplyOr(t *testing.T) {
	nv, changed := OpOr.Apply(Value(0b0011), Value(0b0110))
	if !changed || nv != 0b0111 {
		t.Fatal("or broken")
	}
	_, changed = OpOr.Apply(Value(0b0111), Value(0b0011))
	if changed {
		t.Fatal("subset or should not change")
	}
}

func TestOpApplyBoolComp(t *testing.T) {
	nv, changed := OpBoolComp.Apply(Value(^uint64(0)), Value(3))
	if !changed || nv != 3 {
		t.Fatal("smaller operand should replace")
	}
	_, changed = OpBoolComp.Apply(Value(3), Value(5))
	if changed {
		t.Fatal("larger operand should not replace")
	}
}

func TestOpApplyNop(t *testing.T) {
	nv, changed := OpNop.Apply(Value(1), Value(2))
	if changed || nv != 1 {
		t.Fatal("nop changed state")
	}
}

func TestValueRoundTrips(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		return FloatValue(x).Float() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(x int64) bool { return IntValue(x).Int() == x }
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinConvergesToMinimum(t *testing.T) {
	// Property: folding OpSignedMin over any sequence yields the minimum,
	// regardless of order — the invariant that makes PISC offload safe.
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		acc := IntValue(xs[0])
		min := xs[0]
		for _, x := range xs[1:] {
			acc, _ = OpSignedMin.Apply(acc, IntValue(x))
			if x < min {
				min = x
			}
		}
		return acc.Int() == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMicrocodeLatency(t *testing.T) {
	mc := StandardMicrocode("pr", OpFPAdd, false, false)
	// read(3) + fpadd(3) + write(3) = 9 at spLat 3.
	if mc.Latency(3) != 9 {
		t.Fatalf("latency %d, want 9", mc.Latency(3))
	}
	mcTrack := StandardMicrocode("bfs", OpUnsignedCompareSwap, true, true)
	// read(3) + alu(1) + write(3) + dense(1) + sparse(1) = 9.
	if mcTrack.Latency(3) != 9 {
		t.Fatalf("latency %d, want 9", mcTrack.Latency(3))
	}
	var empty Microcode
	if empty.Latency(3) != 1 {
		t.Fatal("empty microcode should cost 1")
	}
}

func TestMicrocodeOccupancyPipelined(t *testing.T) {
	mc := StandardMicrocode("pr", OpFPAdd, false, false)
	if mc.Occupancy(3) != 3 {
		t.Fatalf("fp occupancy %d, want 3", mc.Occupancy(3))
	}
	mcInt := StandardMicrocode("cc", OpSignedMin, false, false)
	if mcInt.Occupancy(3) != 3 {
		t.Fatalf("int occupancy bounded by SP latency: %d", mcInt.Occupancy(3))
	}
	if mcInt.Occupancy(0) != 1 {
		t.Fatal("occupancy floor is 1")
	}
}

func TestEngineOffloadIdle(t *testing.T) {
	e := NewEngine(DefaultConfig(3))
	e.LoadMicrocode(StandardMicrocode("pr", OpFPAdd, false, false))
	stall, done := e.Offload(100)
	if stall != 0 {
		t.Fatalf("idle engine should not backpressure, stall %d", stall)
	}
	if done != 100+9 {
		t.Fatalf("completion %d, want 109", done)
	}
	if e.Executed.Value() != 1 {
		t.Fatal("execution not counted")
	}
}

func TestEngineBackpressureUnderFlood(t *testing.T) {
	e := NewEngine(DefaultConfig(3))
	e.LoadMicrocode(StandardMicrocode("pr", OpFPAdd, false, false))
	var stalled memsys.Cycles
	now := memsys.Cycles(0)
	for i := 0; i < 10000; i++ {
		s, _ := e.Offload(now)
		stalled += s
		now++ // 1 op/cycle demanded vs 1 per 3 cycles capacity
	}
	if stalled == 0 {
		t.Fatal("flooded engine must backpressure")
	}
	if e.Backpress.Value() == 0 {
		t.Fatal("backpressure not counted")
	}
}

func TestEngineKeepsUpAtCapacity(t *testing.T) {
	e := NewEngine(DefaultConfig(3))
	e.LoadMicrocode(StandardMicrocode("cc", OpSignedMin, false, false))
	var stalled memsys.Cycles
	now := memsys.Cycles(0)
	for i := 0; i < 10000; i++ {
		s, _ := e.Offload(now)
		stalled += s
		now += 4 // below the 1-per-3-cycles capacity
	}
	if stalled > 0 {
		t.Fatalf("under-capacity load should not stall, got %d", stalled)
	}
}

func TestEngineExecuteSync(t *testing.T) {
	e := NewEngine(DefaultConfig(3))
	e.LoadMicrocode(StandardMicrocode("pr", OpFPAdd, false, false))
	if lat := e.ExecuteSync(50); lat != 9 {
		t.Fatalf("sync latency %d, want 9", lat)
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine(DefaultConfig(3))
	e.LoadMicrocode(StandardMicrocode("pr", OpFPAdd, false, false))
	e.Offload(0)
	e.Reset()
	if e.Executed.Value() != 0 || e.BusyTime.Value() != 0 {
		t.Fatal("reset incomplete")
	}
	if e.Microcode().Name != "pr" {
		t.Fatal("reset should keep microcode")
	}
}

func TestOpStringsAndLatencies(t *testing.T) {
	ops := []Op{OpNop, OpFPAdd, OpUnsignedCompareSwap, OpSignedMin, OpSignedAdd, OpOr, OpBoolComp}
	for _, o := range ops {
		if o.String() == "" {
			t.Fatalf("op %d has no name", o)
		}
		if o.Latency() == 0 {
			t.Fatalf("op %v has zero latency", o)
		}
	}
	if OpFPAdd.Latency() <= OpSignedAdd.Latency() {
		t.Fatal("fp add should be the long pole")
	}
}

func TestUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Op(99).Apply(0, 0)
}
