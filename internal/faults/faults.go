// Package faults is the deterministic, seed-driven fault injector of the
// reproduction's resilience study. A real deployment of a heterogeneous
// memory subsystem must survive soft errors in DRAM, dropped or delayed
// packets on the interconnect, and parity errors in the software-managed
// scratchpads; this package models all three as timing (never functional)
// events, so a run under injection produces the same algorithmic results,
// only slower — the graceful-degradation property the resilience
// experiments quantify.
//
// Three independent xorshift streams (one per memory path) are derived
// from a single seed, so the fault pattern on one path never perturbs the
// draws on another and the same (seed, rates) pair always reproduces the
// exact same event sequence — MachineStats under injection are
// byte-identical across runs.
//
// Fault models:
//
//   - DRAM read bit-flips behind a SECDED ECC code: single-bit flips are
//     corrected inline for a small latency penalty, double-bit flips are
//     detected and replayed (the full device access is charged again),
//     and a small tail of ≥3-bit flips escapes the code entirely and is
//     only counted (a real system would see silent data corruption; the
//     simulator keeps functional state correct and records the exposure).
//   - NoC message drops: a dropped message is retransmitted after
//     exponential backoff, bounded by MaxRetries; every retransmission
//     costs cycles (backoff + re-serialization) and bytes (the message
//     travels again). A message whose retries are exhausted is counted as
//     given-up and delivered anyway — the model never loses data, it
//     surfaces the event instead.
//   - Scratchpad parity errors: a parity hit on a scratchpad line marks
//     the backing vertex line bad; the access (and every later access to
//     that vertex) falls back to the cache hierarchy, so OMEGA keeps
//     running slower instead of wrong.
package faults

import (
	"fmt"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config parameterizes the injector. The zero value disables every fault
// class; a Config with all rates zero is a no-op injector whose attached
// machine produces bit-identical statistics to an injector-free one.
type Config struct {
	// Seed drives the three per-path random streams.
	Seed uint64

	// DRAMFlipRate is the probability that one DRAM line read suffers at
	// least one bit flip.
	DRAMFlipRate float64
	// DRAMDoubleBitFraction is the conditional probability that a flip
	// event is a double-bit (detected, replayed) rather than single-bit
	// (corrected) error. Default 0.10.
	DRAMDoubleBitFraction float64
	// DRAMSilentFraction is the conditional probability that a flip event
	// exceeds SECDED's detection capability (≥3 bits) and passes silently.
	// Default 0.01.
	DRAMSilentFraction float64
	// ECCCorrectCycles is the inline correction penalty. Default 2.
	ECCCorrectCycles memsys.Cycles
	// ECCRetryCycles is the detect-and-replay overhead charged on top of
	// the replayed device access. Default 8.
	ECCRetryCycles memsys.Cycles

	// NoCDropRate is the per-message (and per-retransmission) drop
	// probability for non-local NoC messages.
	NoCDropRate float64
	// NoCMaxRetries bounds retransmissions per message. Default 3.
	NoCMaxRetries int
	// NoCBackoffCycles is the first retransmission's backoff; it doubles
	// on every further attempt (exponential backoff). Default 16.
	NoCBackoffCycles memsys.Cycles

	// SPParityRate is the per-access probability that a scratchpad line
	// read trips parity, permanently degrading that vertex line to the
	// cache hierarchy.
	SPParityRate float64
	// SPDetectCycles is the parity-detection penalty charged to the
	// access that trips it. Default 4.
	SPDetectCycles memsys.Cycles
}

// Enabled reports whether any fault class has a non-zero rate.
func (c Config) Enabled() bool {
	return c.DRAMFlipRate > 0 || c.NoCDropRate > 0 || c.SPParityRate > 0
}

// Validate checks rates and bounds.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DRAMFlipRate", c.DRAMFlipRate},
		{"DRAMDoubleBitFraction", c.DRAMDoubleBitFraction},
		{"DRAMSilentFraction", c.DRAMSilentFraction},
		{"NoCDropRate", c.NoCDropRate},
		{"SPParityRate", c.SPParityRate},
	} {
		if err := check(p.name, p.v); err != nil {
			return err
		}
	}
	if c.DRAMDoubleBitFraction+c.DRAMSilentFraction > 1 {
		return fmt.Errorf("faults: double-bit + silent fractions exceed 1")
	}
	if c.NoCMaxRetries < 0 {
		return fmt.Errorf("faults: negative NoCMaxRetries")
	}
	return nil
}

// withDefaults fills zero-valued model parameters (rates stay as given).
func (c Config) withDefaults() Config {
	if c.DRAMDoubleBitFraction == 0 {
		c.DRAMDoubleBitFraction = 0.10
	}
	if c.DRAMSilentFraction == 0 {
		c.DRAMSilentFraction = 0.01
	}
	if c.ECCCorrectCycles == 0 {
		c.ECCCorrectCycles = 2
	}
	if c.ECCRetryCycles == 0 {
		c.ECCRetryCycles = 8
	}
	if c.NoCMaxRetries == 0 {
		c.NoCMaxRetries = 3
	}
	if c.NoCBackoffCycles == 0 {
		c.NoCBackoffCycles = 16
	}
	if c.SPDetectCycles == 0 {
		c.SPDetectCycles = 4
	}
	return c
}

// Events is the cumulative fault log of one injector — a plain struct of
// counters so it embeds directly into core.MachineStats and marshals to
// JSON. The zero value means "no faults occurred (or injection was off)".
type Events struct {
	// DRAM ECC outcomes per line read that suffered a flip.
	DRAMCorrected uint64 // single-bit, fixed inline
	DRAMDetected  uint64 // double-bit, detected and replayed
	DRAMSilent    uint64 // ≥3-bit, escaped SECDED (counted exposure)
	// DRAMRetryCycles is the total latency added by ECC handling.
	DRAMRetryCycles uint64

	// NoC drop handling.
	NoCDropped         uint64 // messages that suffered ≥1 drop
	NoCRetransmits     uint64 // total retransmissions sent
	NoCGaveUp          uint64 // messages whose retry budget was exhausted
	NoCRetryCycles     uint64 // backoff + re-serialization cycles added
	NoCRetransmitBytes uint64 // extra bytes moved by retransmissions

	// Scratchpad parity handling.
	SPParityErrors     uint64 // parity trips
	SPDegradedVertices uint64 // distinct vertex lines degraded to cache
}

// Total returns the count of all fault events (not cycles/bytes).
func (e Events) Total() uint64 {
	return e.DRAMCorrected + e.DRAMDetected + e.DRAMSilent +
		e.NoCDropped + e.SPParityErrors
}

// Injector draws fault events for the three simulated memory paths. All
// methods are safe on a nil receiver (they report "no fault"), so
// components hold a plain *Injector and need no separate enabled flag.
// Not safe for concurrent use — the simulator is single-threaded.
type Injector struct {
	cfg Config
	// Independent streams per path: injection on one path must not
	// perturb the event sequence of another.
	dramRand *stats.Rand
	nocRand  *stats.Rand
	spRand   *stats.Rand

	ev Events
}

// Per-path stream tweaks: arbitrary odd constants so the three streams
// are decorrelated even under adversarial seeds.
const (
	dramStream = 0x9E3779B97F4A7C15
	nocStream  = 0xC2B2AE3D27D4EB4F
	spStream   = 0x165667B19E3779F9
)

// New builds an injector from cfg (after filling model-parameter
// defaults). It panics on an invalid configuration — configurations are
// static experiment inputs, like core.Config.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:      cfg,
		dramRand: stats.NewRand(cfg.Seed ^ dramStream),
		nocRand:  stats.NewRand(cfg.Seed ^ nocStream),
		spRand:   stats.NewRand(cfg.Seed ^ spStream),
	}
}

// Config returns the (default-filled) configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Events snapshots the cumulative fault log.
func (in *Injector) Events() Events {
	if in == nil {
		return Events{}
	}
	return in.ev
}

// Reset clears the fault log and restarts the random streams, so a
// machine Reset followed by an identical run reproduces the identical
// fault sequence.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.ev = Events{}
	in.dramRand.Seed(in.cfg.Seed ^ dramStream)
	in.nocRand.Seed(in.cfg.Seed ^ nocStream)
	in.spRand.Seed(in.cfg.Seed ^ spStream)
}

// DRAMRead draws the ECC outcome for one DRAM line read whose device
// access cost devCycles, returning the extra latency to charge: 0 when no
// flip (or a silent one) occurred, the correction penalty for a
// single-bit flip, or a full replay (devCycles plus the detect overhead)
// for a detected double-bit flip.
func (in *Injector) DRAMRead(devCycles memsys.Cycles) memsys.Cycles {
	if in == nil || in.cfg.DRAMFlipRate <= 0 {
		return 0
	}
	if in.dramRand.Float64() >= in.cfg.DRAMFlipRate {
		return 0
	}
	kind := in.dramRand.Float64()
	switch {
	case kind < in.cfg.DRAMSilentFraction:
		in.ev.DRAMSilent++
		return 0
	case kind < in.cfg.DRAMSilentFraction+in.cfg.DRAMDoubleBitFraction:
		in.ev.DRAMDetected++
		extra := devCycles + in.cfg.ECCRetryCycles
		in.ev.DRAMRetryCycles += uint64(extra)
		return extra
	default:
		in.ev.DRAMCorrected++
		in.ev.DRAMRetryCycles += uint64(in.cfg.ECCCorrectCycles)
		return in.cfg.ECCCorrectCycles
	}
}

// NoCSend draws drop/retry behaviour for one non-local message of
// totalBytes that serializes in flits cycles. It returns the extra
// delivery latency (exponential backoff plus re-serialization per
// retransmission) and how many retransmissions were sent — the caller
// charges the retransmitted bytes to its traffic counters so the
// resilience tables see them.
func (in *Injector) NoCSend(flits memsys.Cycles, totalBytes int) (extra memsys.Cycles, resends int) {
	if in == nil || in.cfg.NoCDropRate <= 0 {
		return 0, 0
	}
	if in.nocRand.Float64() >= in.cfg.NoCDropRate {
		return 0, 0
	}
	in.ev.NoCDropped++
	backoff := in.cfg.NoCBackoffCycles
	for attempt := 0; attempt < in.cfg.NoCMaxRetries; attempt++ {
		extra += backoff + flits
		resends++
		backoff *= 2
		if in.nocRand.Float64() >= in.cfg.NoCDropRate {
			// Retransmission delivered.
			in.ev.NoCRetransmits += uint64(resends)
			in.ev.NoCRetryCycles += uint64(extra)
			in.ev.NoCRetransmitBytes += uint64(resends * totalBytes)
			return extra, resends
		}
	}
	// Retry budget exhausted: count it and deliver anyway — the model
	// never loses data, it surfaces the event.
	in.ev.NoCGaveUp++
	in.ev.NoCRetransmits += uint64(resends)
	in.ev.NoCRetryCycles += uint64(extra)
	in.ev.NoCRetransmitBytes += uint64(resends * totalBytes)
	return extra, resends
}

// SPParity draws one scratchpad-access parity check. On a trip it returns
// the detection penalty; the caller degrades the affected line via
// NoteSPDegraded and serves the access from the cache hierarchy.
func (in *Injector) SPParity() (trip bool, penalty memsys.Cycles) {
	if in == nil || in.cfg.SPParityRate <= 0 {
		return false, 0
	}
	if in.spRand.Float64() >= in.cfg.SPParityRate {
		return false, 0
	}
	in.ev.SPParityErrors++
	return true, in.cfg.SPDetectCycles
}

// NoteSPDegraded records that one more distinct vertex line was degraded
// from scratchpad to the cache hierarchy.
func (in *Injector) NoteSPDegraded() {
	if in == nil {
		return
	}
	in.ev.SPDegradedVertices++
}
