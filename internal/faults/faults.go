// Package faults is the deterministic, seed-driven fault injector of the
// reproduction's resilience study. A real deployment of a heterogeneous
// memory subsystem must survive soft errors in DRAM, dropped or delayed
// packets on the interconnect, and parity errors in the software-managed
// scratchpads; this package models all three as timing (never functional)
// events, so a run under injection produces the same algorithmic results,
// only slower — the graceful-degradation property the resilience
// experiments quantify.
//
// Three independent xorshift streams (one per memory path) are derived
// from a single seed, so the fault pattern on one path never perturbs the
// draws on another and the same (seed, rates) pair always reproduces the
// exact same event sequence — MachineStats under injection are
// byte-identical across runs.
//
// Fault models:
//
//   - DRAM read bit-flips behind a SECDED ECC code: single-bit flips are
//     corrected inline for a small latency penalty, double-bit flips are
//     detected and replayed (the full device access is charged again),
//     and a small tail of ≥3-bit flips escapes the code entirely and is
//     only counted (a real system would see silent data corruption; the
//     simulator keeps functional state correct and records the exposure).
//   - NoC message drops: a dropped message is retransmitted after
//     exponential backoff, bounded by MaxRetries; every retransmission
//     costs cycles (backoff + re-serialization) and bytes (the message
//     travels again). A message whose retries are exhausted is counted as
//     given-up and delivered anyway — the model never loses data, it
//     surfaces the event instead.
//   - Scratchpad parity errors: a parity hit on a scratchpad line marks
//     the backing vertex line bad; the access (and every later access to
//     that vertex) falls back to the cache hierarchy, so OMEGA keeps
//     running slower instead of wrong.
package faults

import (
	"fmt"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Config parameterizes the injector. The zero value disables every fault
// class; a Config with all rates zero is a no-op injector whose attached
// machine produces bit-identical statistics to an injector-free one.
type Config struct {
	// Seed drives the three per-path random streams.
	Seed uint64

	// DRAMFlipRate is the probability that one DRAM line read suffers at
	// least one bit flip.
	DRAMFlipRate float64
	// DRAMDoubleBitFraction is the conditional probability that a flip
	// event is a double-bit (detected, replayed) rather than single-bit
	// (corrected) error. Default 0.10.
	DRAMDoubleBitFraction float64
	// DRAMSilentFraction is the conditional probability that a flip event
	// exceeds SECDED's detection capability (≥3 bits) and passes silently.
	// Default 0.01.
	DRAMSilentFraction float64
	// ECCCorrectCycles is the inline correction penalty. Default 2.
	ECCCorrectCycles memsys.Cycles
	// ECCRetryCycles is the detect-and-replay overhead charged on top of
	// the replayed device access. Default 8.
	ECCRetryCycles memsys.Cycles

	// NoCDropRate is the per-message (and per-retransmission) drop
	// probability for non-local NoC messages.
	NoCDropRate float64
	// NoCMaxRetries bounds retransmissions per message. Default 3.
	NoCMaxRetries int
	// NoCBackoffCycles is the first retransmission's backoff; it doubles
	// on every further attempt (exponential backoff). Default 16.
	NoCBackoffCycles memsys.Cycles

	// SPParityRate is the per-access probability that a scratchpad line
	// read trips parity, permanently degrading that vertex line to the
	// cache hierarchy.
	SPParityRate float64
	// SPDetectCycles is the parity-detection penalty charged to the
	// access that trips it. Default 4.
	SPDetectCycles memsys.Cycles

	// DirFlipRate is the per-access probability that one occupied
	// coherence-directory probe-table entry suffers a tag bit flip. The
	// directory's per-entry check byte catches the flip on the next scrub
	// pass (backward-shift-aware erase); with scrubbing disabled the
	// corrupt entry silently perturbs sharer tracking.
	DirFlipRate float64
	// DirScrubCycles is the latency charged to the access that triggers a
	// scrub repair. Default 6.
	DirScrubCycles memsys.Cycles
	// DisableDirScrub turns the scrubber off, leaving injected directory
	// corruption in place — the silent-data-corruption arm of the
	// directory site.
	DisableDirScrub bool

	// LineBufFlipRate is the per-install probability that a core's
	// line-buffer memo is corrupted (stale latency bits). The memo's
	// generation tag is scrambled along with it, so the generation check
	// rejects the entry on its next lookup; the core.Config knob
	// DisableLineBufGenCheck models hardware without the check, where the
	// corrupt memo replays silently.
	LineBufFlipRate float64

	// ALUFlipRate is the per-offload probability that a PISC ALU result
	// suffers a transient single-bit flip. Unlike every other site this
	// one is functional: the corrupted value lands in the vtxProp array
	// and only end-to-end output validation can see it.
	ALUFlipRate float64
}

// Enabled reports whether any fault class has a non-zero rate.
func (c Config) Enabled() bool {
	return c.DRAMFlipRate > 0 || c.NoCDropRate > 0 || c.SPParityRate > 0 ||
		c.DirFlipRate > 0 || c.LineBufFlipRate > 0 || c.ALUFlipRate > 0
}

// Validate checks rates and bounds.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DRAMFlipRate", c.DRAMFlipRate},
		{"DRAMDoubleBitFraction", c.DRAMDoubleBitFraction},
		{"DRAMSilentFraction", c.DRAMSilentFraction},
		{"NoCDropRate", c.NoCDropRate},
		{"SPParityRate", c.SPParityRate},
		{"DirFlipRate", c.DirFlipRate},
		{"LineBufFlipRate", c.LineBufFlipRate},
		{"ALUFlipRate", c.ALUFlipRate},
	} {
		if err := check(p.name, p.v); err != nil {
			return err
		}
	}
	if c.DRAMDoubleBitFraction+c.DRAMSilentFraction > 1 {
		return fmt.Errorf("faults: double-bit + silent fractions exceed 1")
	}
	if c.NoCMaxRetries < 0 {
		return fmt.Errorf("faults: negative NoCMaxRetries")
	}
	return nil
}

// withDefaults fills zero-valued model parameters (rates stay as given).
func (c Config) withDefaults() Config {
	if c.DRAMDoubleBitFraction == 0 {
		c.DRAMDoubleBitFraction = 0.10
	}
	if c.DRAMSilentFraction == 0 {
		c.DRAMSilentFraction = 0.01
	}
	if c.ECCCorrectCycles == 0 {
		c.ECCCorrectCycles = 2
	}
	if c.ECCRetryCycles == 0 {
		c.ECCRetryCycles = 8
	}
	if c.NoCMaxRetries == 0 {
		c.NoCMaxRetries = 3
	}
	if c.NoCBackoffCycles == 0 {
		c.NoCBackoffCycles = 16
	}
	if c.SPDetectCycles == 0 {
		c.SPDetectCycles = 4
	}
	if c.DirScrubCycles == 0 {
		c.DirScrubCycles = 6
	}
	return c
}

// Events is the cumulative fault log of one injector — a plain struct of
// counters so it embeds directly into core.MachineStats and marshals to
// JSON. The zero value means "no faults occurred (or injection was off)".
type Events struct {
	// DRAM ECC outcomes per line read that suffered a flip.
	DRAMCorrected uint64 // single-bit, fixed inline
	DRAMDetected  uint64 // double-bit, detected and replayed
	DRAMSilent    uint64 // ≥3-bit, escaped SECDED (counted exposure)
	// DRAMRetryCycles is the total latency added by ECC handling.
	DRAMRetryCycles uint64

	// NoC drop handling.
	NoCDropped         uint64 // messages that suffered ≥1 drop
	NoCRetransmits     uint64 // total retransmissions sent
	NoCGaveUp          uint64 // messages whose retry budget was exhausted
	NoCRetryCycles     uint64 // backoff + re-serialization cycles added
	NoCRetransmitBytes uint64 // extra bytes moved by retransmissions

	// Scratchpad parity handling.
	SPParityErrors     uint64 // parity trips
	SPDegradedVertices uint64 // distinct vertex lines degraded to cache

	// Coherence-directory probe-table corruption.
	DirFlips        uint64 // injected entry tag flips
	DirScrubRepairs uint64 // corrupt entries erased by the scrubber

	// Line-buffer memo corruption.
	LineBufFlips      uint64 // injected memo corruptions
	LineBufGenCatches uint64 // corrupt memos rejected by generation checks

	// PISC ALU transients (functional — corrupts algorithm outputs).
	ALUFlips uint64
}

// Total returns the count of all fault events (not cycles/bytes).
func (e Events) Total() uint64 {
	return e.DRAMCorrected + e.DRAMDetected + e.DRAMSilent +
		e.NoCDropped + e.SPParityErrors +
		e.DirFlips + e.LineBufFlips + e.ALUFlips
}

// Detected returns the count of fault events the machine's checkers
// caught (corrected or surfaced): the campaign engine classifies a run
// with Detected > 0 and correct outputs as detected-corrected.
func (e Events) Detected() uint64 {
	return e.DRAMCorrected + e.DRAMDetected + e.NoCDropped +
		e.SPParityErrors + e.DirScrubRepairs + e.LineBufGenCatches
}

// Injector draws fault events for the three simulated memory paths. All
// methods are safe on a nil receiver (they report "no fault"), so
// components hold a plain *Injector and need no separate enabled flag.
// Not safe for concurrent use — the simulator is single-threaded.
type Injector struct {
	cfg Config
	// Independent streams per path: injection on one path must not
	// perturb the event sequence of another.
	dramRand *stats.Rand
	nocRand  *stats.Rand
	spRand   *stats.Rand
	dirRand  *stats.Rand
	lbRand   *stats.Rand
	aluRand  *stats.Rand

	// seedSalt offsets the stream seeds; recovery re-executions bump it
	// (Reseed) so a retried run draws a fresh fault pattern.
	seedSalt uint64

	ev Events
}

// Per-path stream tweaks: arbitrary odd constants so the streams are
// decorrelated even under adversarial seeds.
const (
	dramStream = 0x9E3779B97F4A7C15
	nocStream  = 0xC2B2AE3D27D4EB4F
	spStream   = 0x165667B19E3779F9
	dirStream  = 0x27D4EB2F165667C5
	lbStream   = 0x85EBCA77C2B2AE63
	aluStream  = 0xFF51AFD7ED558CCD
)

// New builds an injector from cfg (after filling model-parameter
// defaults). It panics on an invalid configuration — configurations are
// static experiment inputs, like core.Config.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	in := &Injector{
		cfg:      cfg,
		dramRand: &stats.Rand{},
		nocRand:  &stats.Rand{},
		spRand:   &stats.Rand{},
		dirRand:  &stats.Rand{},
		lbRand:   &stats.Rand{},
		aluRand:  &stats.Rand{},
	}
	in.seedStreams()
	return in
}

// seedStreams (re)derives every path stream from the configured seed plus
// the current salt.
func (in *Injector) seedStreams() {
	base := in.cfg.Seed + in.seedSalt
	in.dramRand.Seed(base ^ dramStream)
	in.nocRand.Seed(base ^ nocStream)
	in.spRand.Seed(base ^ spStream)
	in.dirRand.Seed(base ^ dirStream)
	in.lbRand.Seed(base ^ lbStream)
	in.aluRand.Seed(base ^ aluStream)
}

// Config returns the (default-filled) configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Events snapshots the cumulative fault log.
func (in *Injector) Events() Events {
	if in == nil {
		return Events{}
	}
	return in.ev
}

// Reset clears the fault log and restarts the random streams, so a
// machine Reset followed by an identical run reproduces the identical
// fault sequence.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.ev = Events{}
	in.seedStreams()
}

// Reseed bumps the stream salt and restarts every path stream, keeping
// the event log. A recovery re-execution calls this so the retried run
// sees a fresh, still-deterministic fault pattern (salt = attempt number)
// instead of replaying the exact faults that just sank it.
func (in *Injector) Reseed(salt uint64) {
	if in == nil {
		return
	}
	in.seedSalt = salt
	in.seedStreams()
}

// State is an opaque injector checkpoint: stream cursors, salt, and the
// event log.
type State struct {
	cursors [6][2]uint64
	salt    uint64
	ev      Events
}

// Snapshot captures the injector for later Restore.
func (in *Injector) Snapshot() State {
	if in == nil {
		return State{}
	}
	var s State
	for i, r := range in.streams() {
		s.cursors[i][0], s.cursors[i][1] = r.State()
	}
	s.salt = in.seedSalt
	s.ev = in.ev
	return s
}

// Restore rewinds the injector to a Snapshot.
func (in *Injector) Restore(s State) {
	if in == nil {
		return
	}
	for i, r := range in.streams() {
		r.SetState(s.cursors[i][0], s.cursors[i][1])
	}
	in.seedSalt = s.salt
	in.ev = s.ev
}

func (in *Injector) streams() [6]*stats.Rand {
	return [6]*stats.Rand{in.dramRand, in.nocRand, in.spRand,
		in.dirRand, in.lbRand, in.aluRand}
}

// DRAMRead draws the ECC outcome for one DRAM line read whose device
// access cost devCycles, returning the extra latency to charge: 0 when no
// flip (or a silent one) occurred, the correction penalty for a
// single-bit flip, or a full replay (devCycles plus the detect overhead)
// for a detected double-bit flip.
func (in *Injector) DRAMRead(devCycles memsys.Cycles) memsys.Cycles {
	if in == nil || in.cfg.DRAMFlipRate <= 0 {
		return 0
	}
	if in.dramRand.Float64() >= in.cfg.DRAMFlipRate {
		return 0
	}
	kind := in.dramRand.Float64()
	switch {
	case kind < in.cfg.DRAMSilentFraction:
		in.ev.DRAMSilent++
		return 0
	case kind < in.cfg.DRAMSilentFraction+in.cfg.DRAMDoubleBitFraction:
		in.ev.DRAMDetected++
		extra := devCycles + in.cfg.ECCRetryCycles
		in.ev.DRAMRetryCycles += uint64(extra)
		return extra
	default:
		in.ev.DRAMCorrected++
		in.ev.DRAMRetryCycles += uint64(in.cfg.ECCCorrectCycles)
		return in.cfg.ECCCorrectCycles
	}
}

// NoCSend draws drop/retry behaviour for one non-local message of
// totalBytes that serializes in flits cycles. It returns the extra
// delivery latency (exponential backoff plus re-serialization per
// retransmission) and how many retransmissions were sent — the caller
// charges the retransmitted bytes to its traffic counters so the
// resilience tables see them.
func (in *Injector) NoCSend(flits memsys.Cycles, totalBytes int) (extra memsys.Cycles, resends int) {
	if in == nil || in.cfg.NoCDropRate <= 0 {
		return 0, 0
	}
	if in.nocRand.Float64() >= in.cfg.NoCDropRate {
		return 0, 0
	}
	in.ev.NoCDropped++
	backoff := in.cfg.NoCBackoffCycles
	for attempt := 0; attempt < in.cfg.NoCMaxRetries; attempt++ {
		extra += backoff + flits
		resends++
		backoff *= 2
		if in.nocRand.Float64() >= in.cfg.NoCDropRate {
			// Retransmission delivered.
			in.ev.NoCRetransmits += uint64(resends)
			in.ev.NoCRetryCycles += uint64(extra)
			in.ev.NoCRetransmitBytes += uint64(resends * totalBytes)
			return extra, resends
		}
	}
	// Retry budget exhausted: count it and deliver anyway — the model
	// never loses data, it surfaces the event.
	in.ev.NoCGaveUp++
	in.ev.NoCRetransmits += uint64(resends)
	in.ev.NoCRetryCycles += uint64(extra)
	in.ev.NoCRetransmitBytes += uint64(resends * totalBytes)
	return extra, resends
}

// SPParity draws one scratchpad-access parity check. On a trip it returns
// the detection penalty; the caller degrades the affected line via
// NoteSPDegraded and serves the access from the cache hierarchy.
func (in *Injector) SPParity() (trip bool, penalty memsys.Cycles) {
	if in == nil || in.cfg.SPParityRate <= 0 {
		return false, 0
	}
	if in.spRand.Float64() >= in.cfg.SPParityRate {
		return false, 0
	}
	in.ev.SPParityErrors++
	return true, in.cfg.SPDetectCycles
}

// NoteSPDegraded records that one more distinct vertex line was degraded
// from scratchpad to the cache hierarchy.
func (in *Injector) NoteSPDegraded() {
	if in == nil {
		return
	}
	in.ev.SPDegradedVertices++
}

// DirFlip draws one directory-site event: on a hit it returns two raw
// selectors — which occupied probe-table slot to corrupt and which tag
// bit to flip — for the directory to apply.
func (in *Injector) DirFlip() (slotSel, bitSel uint64, ok bool) {
	if in == nil || in.cfg.DirFlipRate <= 0 {
		return 0, 0, false
	}
	if in.dirRand.Float64() >= in.cfg.DirFlipRate {
		return 0, 0, false
	}
	in.ev.DirFlips++
	return in.dirRand.Uint64(), in.dirRand.Uint64(), true
}

// NoteDirScrubRepairs records corrupt directory entries erased by one
// scrub pass.
func (in *Injector) NoteDirScrubRepairs(n int) {
	if in == nil || n <= 0 {
		return
	}
	in.ev.DirScrubRepairs += uint64(n)
}

// LineBufFlip draws one line-buffer-site event: on a hit it returns a raw
// selector for which latency bit of the freshly installed memo to flip.
func (in *Injector) LineBufFlip() (bitSel uint64, ok bool) {
	if in == nil || in.cfg.LineBufFlipRate <= 0 {
		return 0, false
	}
	if in.lbRand.Float64() >= in.cfg.LineBufFlipRate {
		return 0, false
	}
	in.ev.LineBufFlips++
	return in.lbRand.Uint64(), true
}

// NoteLineBufGenCatch records a corrupt memo rejected by the generation
// check (the detection arm of the line-buffer site).
func (in *Injector) NoteLineBufGenCatch() {
	if in == nil {
		return
	}
	in.ev.LineBufGenCatches++
}

// ALUFlip draws one PISC ALU transient: on a hit it returns a single-bit
// XOR mask the framework applies to the just-computed update result.
// This is the one functional fault site — the corruption propagates into
// algorithm outputs and only end-to-end validation can see it.
func (in *Injector) ALUFlip() (mask uint64, ok bool) {
	if in == nil || in.cfg.ALUFlipRate <= 0 {
		return 0, false
	}
	if in.aluRand.Float64() >= in.cfg.ALUFlipRate {
		return 0, false
	}
	in.ev.ALUFlips++
	return 1 << (in.aluRand.Uint64() % 64), true
}
