package faults

import (
	"strings"
	"testing"
)

func TestSiteNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Sites() {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "site(") {
			t.Fatalf("site %d has no command-line name", int(s))
		}
		if seen[name] {
			t.Fatalf("duplicate site name %q", name)
		}
		seen[name] = true
		got, ok := SiteByName(name)
		if !ok || got != s {
			t.Fatalf("SiteByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := SiteByName("nonsense"); ok {
		t.Fatal("unknown name resolved")
	}
}

// TestSiteApplyIsolated: applying one site must set exactly one rate and
// leave the rest of the Config zero, so campaign cells never bleed into
// each other.
func TestSiteApplyIsolated(t *testing.T) {
	for _, s := range Sites() {
		var c Config
		s.Apply(&c, 0.25)
		if !c.Enabled() {
			t.Fatalf("site %v: Apply(0.25) left config disabled", s)
		}
		rates := []float64{c.DRAMFlipRate, c.NoCDropRate, c.SPParityRate,
			c.DirFlipRate, c.LineBufFlipRate, c.ALUFlipRate}
		nonzero := 0
		for _, r := range rates {
			if r != 0 {
				nonzero++
				if r != 0.25 {
					t.Fatalf("site %v: wrong rate %g", s, r)
				}
			}
		}
		if nonzero != 1 {
			t.Fatalf("site %v: Apply set %d rates", s, nonzero)
		}
	}
}

func TestParseSiteConfig(t *testing.T) {
	c, err := ParseSiteConfig("directory:1e-3, linebuf:1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if c.DirFlipRate != 1e-3 || c.LineBufFlipRate != 1e-4 {
		t.Fatalf("parsed rates wrong: %+v", c)
	}
	if c.DRAMFlipRate != 0 || c.ALUFlipRate != 0 {
		t.Fatalf("unlisted sites got rates: %+v", c)
	}
	if c, err := ParseSiteConfig("  "); err != nil || c.Enabled() {
		t.Fatalf("empty spec should disable: %+v, %v", c, err)
	}
	for _, bad := range []string{
		"directory",           // no rate
		"directory:",          // empty rate
		"mars:1e-3",           // unknown site
		"dram:1e-3,dram:1e-4", // duplicate
		"dram:2",              // rate > 1
		"dram:-0.1",           // negative
		"dram:1e-3,,noc:1e-3", // empty entry
		"dram:zero",           // non-numeric
	} {
		if _, err := ParseSiteConfig(bad); err == nil {
			t.Fatalf("ParseSiteConfig(%q) accepted", bad)
		}
	}
}

// TestNewSiteDrawsDeterministic: the directory, line-buffer, and ALU
// streams must replay identically for one (seed, rate) and diverge under
// Reseed — the property recovery re-execution relies on.
func TestNewSiteDrawsDeterministic(t *testing.T) {
	cfg := Config{Seed: 3, DirFlipRate: 0.2, LineBufFlipRate: 0.2, ALUFlipRate: 0.2}
	type draw struct {
		a, b uint64
		ok   bool
	}
	sample := func(in *Injector) []draw {
		var out []draw
		for i := 0; i < 200; i++ {
			s, b, ok := in.DirFlip()
			out = append(out, draw{s, b, ok})
			b, ok = in.LineBufFlip()
			out = append(out, draw{b, 0, ok})
			m, ok := in.ALUFlip()
			out = append(out, draw{m, 0, ok})
		}
		return out
	}
	same := func(a, b []draw) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	a, b := sample(New(cfg)), sample(New(cfg))
	if !same(a, b) {
		t.Fatal("same seed drew different site events")
	}
	in := New(cfg)
	in.Reseed(1)
	if same(a, sample(in)) {
		t.Fatal("Reseed(1) replayed the salt-0 pattern")
	}
	ev := New(cfg)
	sample(ev)
	e := ev.Events()
	if e.DirFlips == 0 || e.LineBufFlips == 0 || e.ALUFlips == 0 {
		t.Fatalf("rate 0.2 over 200 draws fired nothing: %+v", e)
	}
	for _, m := range []uint64{e.DirFlips, e.LineBufFlips, e.ALUFlips} {
		if m > 200 {
			t.Fatalf("event count %d exceeds draw count", m)
		}
	}
}

// TestSnapshotRestoreReplaysDraws: restoring an injector checkpoint must
// replay the exact post-checkpoint event sequence — the machine-level
// Snapshot/Restore contract depends on it.
func TestSnapshotRestoreReplaysDraws(t *testing.T) {
	cfg := Config{Seed: 9, DirFlipRate: 0.3, LineBufFlipRate: 0.3, ALUFlipRate: 0.3}
	in := New(cfg)
	for i := 0; i < 50; i++ { // advance the streams off their seed state
		in.DirFlip()
		in.ALUFlip()
	}
	snap := in.Snapshot()
	var first []uint64
	for i := 0; i < 100; i++ {
		m, _ := in.ALUFlip()
		first = append(first, m)
		b, _ := in.LineBufFlip()
		first = append(first, b)
	}
	evFirst := in.Events()
	in.Restore(snap)
	for i, want := range first {
		var got uint64
		if i%2 == 0 {
			got, _ = in.ALUFlip()
		} else {
			got, _ = in.LineBufFlip()
		}
		if got != want {
			t.Fatalf("draw %d after restore: got %d want %d", i, got, want)
		}
	}
	if in.Events() != evFirst {
		t.Fatalf("event log after replay differs: %+v vs %+v", in.Events(), evFirst)
	}
}

func TestNilInjectorSiteDraws(t *testing.T) {
	var in *Injector
	if _, _, ok := in.DirFlip(); ok {
		t.Fatal("nil DirFlip fired")
	}
	if _, ok := in.LineBufFlip(); ok {
		t.Fatal("nil LineBufFlip fired")
	}
	if _, ok := in.ALUFlip(); ok {
		t.Fatal("nil ALUFlip fired")
	}
	in.NoteDirScrubRepairs(3)
	in.NoteLineBufGenCatch()
	in.Reseed(1)
	in.Restore(State{})
	if in.Snapshot() != (State{}) {
		t.Fatal("nil Snapshot not zero")
	}
}

// FuzzParseSiteConfig: the -fault-site parser must never panic, and any
// spec it accepts must produce a Config that validates and survives a
// rate-preserving reformat.
func FuzzParseSiteConfig(f *testing.F) {
	f.Add("directory:1e-3,linebuf:1e-4")
	f.Add("dram:0.5")
	f.Add("pisc-alu:1,noc:0,sp-parity:1e-9")
	f.Add("")
	f.Add("dram:1e-3,dram:1e-3")
	f.Add("x:y:z,,:")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseSiteConfig(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted spec %q yields invalid config: %v", spec, verr)
		}
		if c.Seed != 0 {
			t.Fatalf("parser set the seed from %q", spec)
		}
	})
}
