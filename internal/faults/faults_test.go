package faults

import (
	"testing"

	"omega/internal/memsys"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if extra := in.DRAMRead(100); extra != 0 {
		t.Fatalf("nil DRAMRead = %d", extra)
	}
	if extra, resends := in.NoCSend(4, 64); extra != 0 || resends != 0 {
		t.Fatalf("nil NoCSend = %d,%d", extra, resends)
	}
	if trip, pen := in.SPParity(); trip || pen != 0 {
		t.Fatalf("nil SPParity = %v,%d", trip, pen)
	}
	in.NoteSPDegraded()
	in.Reset()
	if ev := in.Events(); ev != (Events{}) {
		t.Fatalf("nil Events = %+v", ev)
	}
}

func TestZeroRatesDrawNothing(t *testing.T) {
	in := New(Config{Seed: 7})
	for i := 0; i < 1000; i++ {
		if extra := in.DRAMRead(100); extra != 0 {
			t.Fatalf("zero-rate DRAMRead = %d", extra)
		}
		if extra, resends := in.NoCSend(4, 64); extra != 0 || resends != 0 {
			t.Fatalf("zero-rate NoCSend = %d,%d", extra, resends)
		}
		if trip, _ := in.SPParity(); trip {
			t.Fatal("zero-rate SPParity tripped")
		}
	}
	if ev := in.Events(); ev != (Events{}) {
		t.Fatalf("zero-rate events = %+v", ev)
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := Config{Seed: 99, DRAMFlipRate: 0.05, NoCDropRate: 0.05, SPParityRate: 0.05}
	run := func() ([]memsys.Cycles, Events) {
		in := New(cfg)
		var lats []memsys.Cycles
		for i := 0; i < 5000; i++ {
			lats = append(lats, in.DRAMRead(100))
			e, _ := in.NoCSend(4, 64)
			lats = append(lats, e)
			_, p := in.SPParity()
			lats = append(lats, p)
		}
		return lats, in.Events()
	}
	a, evA := run()
	b, evB := run()
	if evA != evB {
		t.Fatalf("events diverged: %+v vs %+v", evA, evB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if evA.Total() == 0 {
		t.Fatal("expected some fault events at 5% rates")
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Draining one path's stream must not change another path's events.
	cfg := Config{Seed: 3, DRAMFlipRate: 0.1, NoCDropRate: 0.1}
	dramOnly := func(alsoNoC bool) uint64 {
		in := New(cfg)
		for i := 0; i < 2000; i++ {
			in.DRAMRead(100)
			if alsoNoC {
				in.NoCSend(4, 64)
			}
		}
		return in.Events().DRAMCorrected + in.Events().DRAMDetected + in.Events().DRAMSilent
	}
	if a, b := dramOnly(false), dramOnly(true); a != b {
		t.Fatalf("NoC draws perturbed DRAM stream: %d vs %d", a, b)
	}
}

func TestECCOutcomeMix(t *testing.T) {
	in := New(Config{Seed: 11, DRAMFlipRate: 1.0})
	for i := 0; i < 10000; i++ {
		in.DRAMRead(100)
	}
	ev := in.Events()
	total := ev.DRAMCorrected + ev.DRAMDetected + ev.DRAMSilent
	if total != 10000 {
		t.Fatalf("rate-1.0 should fault every read: %d", total)
	}
	// Defaults: 89% corrected, 10% detected, 1% silent, ±3 points.
	frac := func(v uint64) float64 { return float64(v) / float64(total) }
	if f := frac(ev.DRAMCorrected); f < 0.85 || f > 0.93 {
		t.Fatalf("corrected fraction %.3f out of band", f)
	}
	if f := frac(ev.DRAMDetected); f < 0.07 || f > 0.13 {
		t.Fatalf("detected fraction %.3f out of band", f)
	}
	if f := frac(ev.DRAMSilent); f > 0.03 {
		t.Fatalf("silent fraction %.3f out of band", f)
	}
	if ev.DRAMRetryCycles == 0 {
		t.Fatal("retry cycles not accumulated")
	}
}

func TestNoCRetryBackoffAndBytes(t *testing.T) {
	// Rate 1.0: every message drops and every retry drops — each message
	// exhausts its budget with full exponential backoff.
	in := New(Config{Seed: 5, NoCDropRate: 1.0})
	const flits, bytes = 4, 64
	extra, resends := in.NoCSend(flits, bytes)
	cfg := in.Config()
	if resends != cfg.NoCMaxRetries {
		t.Fatalf("resends = %d, want %d", resends, cfg.NoCMaxRetries)
	}
	// Backoff 16 + 32 + 64 plus flits per resend.
	want := memsys.Cycles(16+32+64) + memsys.Cycles(resends)*flits
	if extra != want {
		t.Fatalf("extra = %d, want %d", extra, want)
	}
	ev := in.Events()
	if ev.NoCDropped != 1 || ev.NoCGaveUp != 1 {
		t.Fatalf("events = %+v", ev)
	}
	if ev.NoCRetransmitBytes != uint64(resends*bytes) {
		t.Fatalf("retransmit bytes = %d, want %d", ev.NoCRetransmitBytes, resends*bytes)
	}
}

func TestSPParityAndDegradation(t *testing.T) {
	in := New(Config{Seed: 2, SPParityRate: 1.0})
	trip, pen := in.SPParity()
	if !trip || pen != in.Config().SPDetectCycles {
		t.Fatalf("trip=%v pen=%d", trip, pen)
	}
	in.NoteSPDegraded()
	ev := in.Events()
	if ev.SPParityErrors != 1 || ev.SPDegradedVertices != 1 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestResetReproducesStream(t *testing.T) {
	in := New(Config{Seed: 17, DRAMFlipRate: 0.2})
	var first []memsys.Cycles
	for i := 0; i < 500; i++ {
		first = append(first, in.DRAMRead(50))
	}
	evFirst := in.Events()
	in.Reset()
	if in.Events() != (Events{}) {
		t.Fatal("reset did not clear events")
	}
	for i := 0; i < 500; i++ {
		if got := in.DRAMRead(50); got != first[i] {
			t.Fatalf("post-reset stream diverged at %d", i)
		}
	}
	if in.Events() != evFirst {
		t.Fatalf("post-reset events diverged: %+v vs %+v", in.Events(), evFirst)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{DRAMFlipRate: -0.1},
		{DRAMFlipRate: 1.5},
		{NoCDropRate: 2},
		{SPParityRate: -1},
		{NoCMaxRetries: -1},
		{DRAMDoubleBitFraction: 0.7, DRAMSilentFraction: 0.7},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config passed: %+v", i, c)
		}
	}
	if err := (Config{Seed: 1, DRAMFlipRate: 0.5}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
