package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Site names one injection site of the campaign engine and the
// -fault-site command-line syntax.
type Site int

const (
	// SiteDRAM injects DRAM read bit flips behind SECDED ECC.
	SiteDRAM Site = iota
	// SiteNoC injects interconnect message drops with bounded retry.
	SiteNoC
	// SiteSPParity injects scratchpad parity errors (graceful degrade).
	SiteSPParity
	// SiteDirectory injects coherence-directory probe-table tag flips.
	SiteDirectory
	// SiteLineBuf injects per-core line-buffer memo corruption.
	SiteLineBuf
	// SiteALU injects PISC ALU transient result flips (functional).
	SiteALU

	numSites
)

// Sites lists every injection site in declaration order.
func Sites() []Site {
	out := make([]Site, numSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// String returns the site's command-line name.
func (s Site) String() string {
	switch s {
	case SiteDRAM:
		return "dram"
	case SiteNoC:
		return "noc"
	case SiteSPParity:
		return "sp-parity"
	case SiteDirectory:
		return "directory"
	case SiteLineBuf:
		return "linebuf"
	case SiteALU:
		return "pisc-alu"
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// SiteByName resolves a command-line site name.
func SiteByName(name string) (Site, bool) {
	for _, s := range Sites() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// Apply sets this site's rate on a Config, leaving every other site
// untouched.
func (s Site) Apply(c *Config, rate float64) {
	switch s {
	case SiteDRAM:
		c.DRAMFlipRate = rate
	case SiteNoC:
		c.NoCDropRate = rate
	case SiteSPParity:
		c.SPParityRate = rate
	case SiteDirectory:
		c.DirFlipRate = rate
	case SiteLineBuf:
		c.LineBufFlipRate = rate
	case SiteALU:
		c.ALUFlipRate = rate
	}
}

// ParseSiteConfig parses the -fault-site syntax: a comma-separated list
// of "site:rate" pairs, e.g. "directory:1e-3,linebuf:1e-4". Site names
// are those of Site.String (dram, noc, sp-parity, directory, linebuf,
// pisc-alu). The returned Config carries only the listed rates; the
// caller sets Seed. The empty string yields a zero (disabled) Config.
func ParseSiteConfig(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	seen := make(map[Site]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Config{}, fmt.Errorf("faults: empty site entry in %q", spec)
		}
		name, rateStr, ok := strings.Cut(part, ":")
		if !ok {
			return Config{}, fmt.Errorf("faults: site entry %q is not site:rate", part)
		}
		site, ok := SiteByName(strings.TrimSpace(name))
		if !ok {
			return Config{}, fmt.Errorf("faults: unknown site %q (want one of %s)",
				strings.TrimSpace(name), siteNames())
		}
		if seen[site] {
			return Config{}, fmt.Errorf("faults: site %q listed twice", site)
		}
		seen[site] = true
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad rate %q for site %q", rateStr, site)
		}
		if rate < 0 || rate > 1 {
			return Config{}, fmt.Errorf("faults: rate %g for site %q outside [0,1]", rate, site)
		}
		site.Apply(&c, rate)
	}
	return c, nil
}

func siteNames() string {
	names := make([]string, 0, numSites)
	for _, s := range Sites() {
		names = append(names, s.String())
	}
	return strings.Join(names, ", ")
}
