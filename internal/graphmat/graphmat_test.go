package graphmat

import (
	"math"
	"testing"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/graph/gen"
	"omega/internal/graph/reorder"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := gen.RMAT(gen.DefaultRMAT(9, 17))
	return reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
}

func machines(g *graph.Graph) (*core.Machine, *core.Machine) {
	// GraphMat's footprint is two 8-byte vtxProps per vertex (property +
	// message accumulator).
	b, o := core.ScaledPair(g.NumVertices(), 16, 0.2)
	return core.NewMachine(b), core.NewMachine(o)
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := algorithms.ReferencePageRank(g, 2, 0.85)
	mb, mo := machines(g)
	for _, m := range []*core.Machine{mb, mo} {
		got := RunPageRank(m, g, 2, 0.85)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: rank[%d] = %v, want %v", m.Config().Name, v, got[v], want[v])
			}
		}
	}
}

func TestBaselineGraphMatIssuesNoAtomics(t *testing.T) {
	// GraphMat's baseline discipline: partitioned destinations, zero
	// atomics (§IV). On OMEGA the translated reduce is offloaded instead.
	g := testGraph(t)
	mb, mo := machines(g)
	RunPageRank(mb, g, 1, 0.85)
	if st := mb.Stats(); st.Atomics != 0 {
		t.Fatalf("baseline GraphMat must not issue atomics, got %d", st.Atomics)
	}
	RunPageRank(mo, g, 1, 0.85)
	if st := mo.Stats(); st.PISCOps == 0 {
		t.Fatal("OMEGA GraphMat should offload its reduces to the PISCs")
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := testGraph(t)
	root := algorithms.DefaultRoot(g)
	want := algorithms.ReferenceBFS(g, root)
	mb, mo := machines(g)
	for _, m := range []*core.Machine{mb, mo} {
		got := RunBFS(m, g, root)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: level[%d] = %d, want %d", m.Config().Name, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	cfg := gen.DefaultRMAT(9, 21)
	cfg.Weighted = true
	g := gen.RMAT(cfg)
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
	root := algorithms.DefaultRoot(g)
	want := algorithms.ReferenceSSSP(g, root)
	_, mo := machines(g)
	got := RunSSSP(mo, g, root)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestRunConvergence(t *testing.T) {
	g := testGraph(t)
	_, mo := machines(g)
	root := algorithms.DefaultRoot(g)
	prog := distanceProgram("conv", root, func(int32) int64 { return 1 })
	e := New(mo, g, prog)
	res := e.Run([]uint32{root}, g.NumVertices()+1)
	if !res.Converged {
		t.Fatal("BFS-style program must converge")
	}
	if res.Iterations == 0 || res.Iterations > g.NumVertices() {
		t.Fatalf("iterations %d implausible", res.Iterations)
	}
}

func TestRunRespectsMaxIters(t *testing.T) {
	g := testGraph(t)
	_, mo := machines(g)
	prog := distanceProgram("bounded", algorithms.DefaultRoot(g), func(int32) int64 { return 1 })
	e := New(mo, g, prog)
	res := e.Run([]uint32{algorithms.DefaultRoot(g)}, 1)
	if res.Iterations != 1 {
		t.Fatalf("max iters ignored: %d", res.Iterations)
	}
}

func TestEmptyActiveSetStopsImmediately(t *testing.T) {
	g := testGraph(t)
	_, mo := machines(g)
	prog := distanceProgram("idle", 0, func(int32) int64 { return 1 })
	e := New(mo, g, prog)
	res := e.Run([]uint32{}, 10)
	if res.Iterations != 0 || !res.Converged {
		t.Fatalf("empty frontier should converge instantly: %+v", res)
	}
}

func TestOMEGABenefitsGraphMatToo(t *testing.T) {
	// The §V.F framework-independence claim: OMEGA accelerates GraphMat
	// as well, despite its atomic-free update discipline.
	g := reorder.Apply(gen.RMAT(gen.DefaultRMAT(11, 17)),
		reorder.Compute(gen.RMAT(gen.DefaultRMAT(11, 17)), reorder.InDegree))
	mb, mo := machines(g)
	RunPageRank(mb, g, 1, 0.85)
	RunPageRank(mo, g, 1, 0.85)
	base := mb.Stats()
	om := mo.Stats()
	if om.Speedup(base) < 1.1 {
		t.Fatalf("OMEGA should accelerate GraphMat PageRank: %.2fx", om.Speedup(base))
	}
	if om.SPAccesses == 0 || om.SrcBufHitRate == 0 {
		t.Fatal("GraphMat's gather should exercise scratchpads and source buffers")
	}
}
