package graphmat

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/pisc"
)

// inf is the unreachable sentinel for distance programs.
const inf = int64(1) << 60

// RunPageRank executes iters PageRank iterations GraphMat-style and
// returns the ranks. The property stores rank/out-degree (the "scaled
// rank" GraphMat sends as the message), so SendMessage is the identity
// and Apply folds damping and rescales.
func RunPageRank(m *core.Machine, g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumVertices()
	vcount := float64(n)
	rank := make([]float64, n)
	degs := make([]float64, n)
	for v := 0; v < n; v++ {
		rank[v] = 1.0 / vcount
		degs[v] = float64(g.OutDegree(graph.VertexID(v)))
	}
	prog := VertexProgram{
		Name:     "gm-pagerank",
		ReduceOp: pisc.OpFPAdd,
		Identity: pisc.FloatValue(0),
		ApplyAll: true,
		InitProp: func(v uint32) pisc.Value {
			if degs[v] == 0 {
				return pisc.FloatValue(0)
			}
			return pisc.FloatValue(rank[v] / degs[v])
		},
		SendMessage: func(src pisc.Value, w int32) (pisc.Value, bool) {
			return src, true
		},
		Apply: func(v uint32, old, reduced pisc.Value) (pisc.Value, bool) {
			newRank := (1-damping)/vcount + damping*reduced.Float()
			rank[v] = newRank
			if degs[v] == 0 {
				return pisc.FloatValue(0), true
			}
			return pisc.FloatValue(newRank / degs[v]), true
		},
	}
	e := New(m, g, prog)
	e.Run(nil, iters)
	return rank
}

// distanceProgram is the shared shape of BFS/SSSP: signed-min reduction of
// (source distance + step).
func distanceProgram(name string, root uint32, step func(w int32) int64) VertexProgram {
	return VertexProgram{
		Name:     name,
		ReduceOp: pisc.OpSignedMin,
		Identity: pisc.IntValue(inf),
		InitProp: func(v uint32) pisc.Value {
			if v == root {
				return pisc.IntValue(0)
			}
			return pisc.IntValue(inf)
		},
		SendMessage: func(src pisc.Value, w int32) (pisc.Value, bool) {
			if src.Int() >= inf {
				return 0, false
			}
			return pisc.IntValue(src.Int() + step(w)), true
		},
		Apply: func(v uint32, old, reduced pisc.Value) (pisc.Value, bool) {
			if reduced.Int() < old.Int() {
				return reduced, true
			}
			return old, false
		},
	}
}

// RunSSSP executes GraphMat-style Bellman-Ford from root and returns the
// distances (unweighted edges count 1; unreachable = 1<<60).
func RunSSSP(m *core.Machine, g *graph.Graph, root uint32) []int64 {
	prog := distanceProgram("gm-sssp", root, func(w int32) int64 { return int64(w) })
	e := New(m, g, prog)
	e.Run([]uint32{root}, g.NumVertices()+1)
	out := make([]int64, g.NumVertices())
	for v := range out {
		out[v] = e.prop.Value(uint32(v)).Int()
	}
	return out
}

// RunBFS executes GraphMat-style BFS from root and returns levels
// (^uint32(0) for unreachable).
func RunBFS(m *core.Machine, g *graph.Graph, root uint32) []uint32 {
	prog := distanceProgram("gm-bfs", root, func(int32) int64 { return 1 })
	e := New(m, g, prog)
	e.Run([]uint32{root}, g.NumVertices()+1)
	out := make([]uint32, g.NumVertices())
	for v := range out {
		if d := e.prop.Value(uint32(v)).Int(); d >= inf {
			out[v] = ^uint32(0)
		} else {
			out[v] = uint32(d)
		}
	}
	return out
}
