// Package graphmat is a second, GraphMat-style graph framework (Sundaram
// et al., VLDB'15) on top of the same simulated machines, demonstrating
// the paper's framework-independence claim: §V.F applies the
// source-to-source tool "to GraphMat [40] in addition to Ligra", and §IV
// notes that GraphMat-class frameworks "partition the dataset so that only
// a single thread modifies vtxProp at a time", avoiding atomics.
//
// The programming model is generalized sparse-matrix–vector multiplication
// over vertex programs: each iteration SCATTERs messages from active
// sources along edges, REDUCEs messages per destination with a semiring
// add (the operation OMEGA offloads), and APPLYs the reduced value to the
// destination's property. Destinations are partitioned across cores, so
// reduction needs no atomics — updates to scratchpad-resident vertices are
// still served word-size by the home slice.
package graphmat

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// VertexProgram defines one algorithm in the scatter/reduce/apply style.
type VertexProgram struct {
	// Name labels the program.
	Name string
	// ReduceOp is the semiring "add" combining messages per destination —
	// the operation a PISC would execute.
	ReduceOp pisc.Op
	// Identity is the reduction identity (initial message accumulator).
	Identity pisc.Value
	// SendMessage produces a message from the source vertex's property
	// and the edge weight; ok=false suppresses the message.
	SendMessage func(srcProp pisc.Value, w int32) (msg pisc.Value, ok bool)
	// Apply folds the reduced message into vertex v's property, returning
	// the new value and whether the vertex becomes active.
	Apply func(v uint32, oldProp, reduced pisc.Value) (newProp pisc.Value, activate bool)
	// InitProp gives the initial property for vertex v.
	InitProp func(v uint32) pisc.Value
	// ApplyAll runs Apply on every vertex each iteration (with the
	// reduction identity for untouched ones) instead of only on vertices
	// that received messages — PageRank's base-term semantics.
	ApplyAll bool
}

// Engine runs vertex programs on a machine, GraphMat style.
type Engine struct {
	fw    *ligra.Framework
	g     *graph.Graph
	prop  *ligra.PropArray
	accum *ligra.PropArray
	prog  VertexProgram
}

// New builds an engine for one program run. The underlying ligra.Framework
// provides the simulated CSR regions and property arrays; the traversal
// and update discipline here are GraphMat's, not Ligra's.
func New(m *core.Machine, g *graph.Graph, prog VertexProgram) *Engine {
	fw := ligra.New(m, g)
	e := &Engine{fw: fw, g: g, prog: prog}
	e.prop = fw.NewProp(prog.Name+".prop", 8, 0)
	// The message accumulator is itself a vtxProp: on OMEGA it lives in
	// the scratchpads and the PISCs reduce into it (§V.F: the translated
	// GraphMat update is offloaded like Ligra's).
	e.accum = fw.NewProp(prog.Name+".accum", 8, prog.Identity)
	for v := 0; v < g.NumVertices(); v++ {
		e.prop.Raw()[v] = prog.InitProp(uint32(v))
	}
	// The translated configuration (§V.F): the reduce op becomes the
	// PISC microcode; no active-list tracking — GraphMat scans.
	fw.Configure(pisc.StandardMicrocode(prog.Name, prog.ReduceOp, false, false))
	return e
}

// Prop exposes the property array (results).
func (e *Engine) Prop() *ligra.PropArray { return e.prop }

// Machine exposes the bound machine.
func (e *Engine) Machine() *core.Machine { return e.fw.Machine() }

// RunResult reports a run's convergence.
type RunResult struct {
	Iterations int
	Converged  bool
}

// Run executes up to maxIters scatter/reduce/apply iterations, starting
// with the given active set (nil = all vertices). It stops early when an
// iteration activates no vertex.
func (e *Engine) Run(active []uint32, maxIters int) RunResult {
	n := e.g.NumVertices()
	m := e.fw.Machine()
	isActive := make([]bool, n)
	anyActive := false
	if active == nil {
		for v := range isActive {
			isActive[v] = true
		}
		anyActive = n > 0
	} else {
		for _, v := range active {
			isActive[v] = true
			anyActive = true
		}
	}
	// touched marks destinations that received any message this
	// iteration; the reduced values live in e.accum.
	touched := make([]bool, n)
	usePISC := m.Config().PISC

	res := RunResult{}
	for it := 0; it < maxIters && anyActive; it++ {
		res.Iterations++
		m.BeginIteration()
		// Reset the accumulators (a sequential vtxProp sweep; on OMEGA
		// it is chunk-local in the scratchpads).
		m.ParallelFor(n, func(ctx *core.Ctx, v int) {
			ctx.Exec(1)
			if e.accum.Value(uint32(v)) != e.prog.Identity {
				e.accum.Set(ctx, uint32(v), e.prog.Identity)
			}
			touched[v] = false
		})
		if usePISC {
			// OMEGA path (§V.F): the translated update is offloaded —
			// each active source streams its out-edges and fires one
			// word-size reduce per edge at the destination's home PISC.
			var sources []uint32
			for v := 0; v < n; v++ {
				if isActive[v] {
					sources = append(sources, uint32(v))
				}
			}
			e.fw.ParallelOutEdges(sources,
				func(ctx *core.Ctx, s uint32) { ctx.Exec(2) },
				func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
					srcProp := e.prop.GetSrc(ctx, s)
					msg, ok := e.prog.SendMessage(srcProp, w)
					if !ok {
						return
					}
					e.accum.AtomicUpdate(ctx, d, e.prog.ReduceOp, msg)
					touched[d] = true
				})
		} else {
			// Baseline path: GraphMat's atomic-free discipline —
			// destinations are partitioned across cores and each worker
			// gathers its vertices' in-edges, reducing privately.
			m.ParallelFor(n, func(ctx *core.Ctx, d int) {
				ctx.Exec(4)
				e.fw.EmitInEdgeScan(ctx, uint32(d), func(j int, s uint32, w int32) {
					if !isActive[s] {
						return
					}
					srcProp := e.prop.GetSrc(ctx, s)
					msg, ok := e.prog.SendMessage(srcProp, w)
					if !ok {
						return
					}
					e.accum.Update(ctx, uint32(d), e.prog.ReduceOp, msg)
					touched[d] = true
					ctx.Exec(2)
				})
			})
		}
		// APPLY: one non-atomic read-modify-write per touched vertex;
		// on OMEGA the resident ones go to the scratchpads at word
		// granularity.
		nextActive := make([]bool, n)
		anyActive = false
		m.ParallelFor(n, func(ctx *core.Ctx, d int) {
			ctx.Exec(2)
			if !touched[d] && !e.prog.ApplyAll {
				return
			}
			old := e.prop.Get(ctx, uint32(d))
			nv, activate := e.prog.Apply(uint32(d), old, e.accum.Value(uint32(d)))
			if nv != old {
				e.prop.Set(ctx, uint32(d), nv)
			}
			if activate {
				nextActive[d] = true
				anyActive = true
			}
		})
		isActive = nextActive
	}
	res.Converged = !anyActive
	return res
}
