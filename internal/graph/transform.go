package graph

// Transpose returns the graph with every edge reversed. For undirected
// graphs the transpose is structurally identical and a copy is returned.
func Transpose(g *Graph) *Graph {
	b := NewBuilder(g.NumVertices(), g.Undirected)
	if g.Weighted() {
		b.SetWeighted()
	}
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.OutWeights(VertexID(v))
		for i, u := range g.OutNeighbors(VertexID(v)) {
			var w int32 = 1
			if ws != nil {
				w = ws[i]
			}
			if g.Undirected {
				if v <= int(u) {
					b.AddEdge(VertexID(v), u, w)
				}
			} else {
				b.AddEdge(u, VertexID(v), w)
			}
		}
	}
	return b.Build(g.Name + "-T")
}

// InducedSubgraph returns the subgraph on the given vertex set, densified
// to IDs [0, len(keep)). The second return value maps old IDs to new ones
// (^0 for dropped vertices).
func InducedSubgraph(g *Graph, keep []VertexID) (*Graph, []VertexID) {
	const dropped = ^VertexID(0)
	remap := make([]VertexID, g.NumVertices())
	for i := range remap {
		remap[i] = dropped
	}
	for i, v := range keep {
		remap[v] = VertexID(i)
	}
	b := NewBuilder(len(keep), g.Undirected)
	if g.Weighted() {
		b.SetWeighted()
	}
	for _, v := range keep {
		nv := remap[v]
		ws := g.OutWeights(v)
		for i, u := range g.OutNeighbors(v) {
			nu := remap[u]
			if nu == dropped {
				continue
			}
			var w int32 = 1
			if ws != nil {
				w = ws[i]
			}
			if g.Undirected {
				if nv <= nu {
					b.AddEdge(nv, nu, w)
				}
			} else {
				b.AddEdge(nv, nu, w)
			}
		}
	}
	return b.Build(g.Name + "-sub"), remap
}

// LargestComponent returns the vertex IDs of the largest weakly connected
// component (edges treated as undirected), in ascending order.
func LargestComponent(g *Graph) []VertexID {
	n := g.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	sizes := []int{}
	stack := make([]VertexID, 0, 1024)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		size := 0
		stack = append(stack[:0], VertexID(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, u := range g.OutNeighbors(v) {
				if comp[u] < 0 {
					comp[u] = next
					stack = append(stack, u)
				}
			}
			for _, u := range g.InNeighbors(v) {
				if comp[u] < 0 {
					comp[u] = next
					stack = append(stack, u)
				}
			}
		}
		sizes = append(sizes, size)
		next++
	}
	best := 0
	for c, sz := range sizes {
		if sz > sizes[best] {
			best = c
		}
	}
	var out []VertexID
	for v := 0; v < n; v++ {
		if comp[v] == best {
			out = append(out, VertexID(v))
		}
	}
	return out
}
