// Package gio loads and stores graphs: SNAP-style whitespace edge lists
// (the format of the paper's soc-Slashdot/ca-AstroPh/roadNet datasets) and
// a compact binary CSR format for fast reload of generated datasets.
package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"omega/internal/graph"
)

// EdgeListOptions configures LoadEdgeListWithReport.
type EdgeListOptions struct {
	// Undirected stores each listed edge in both directions.
	Undirected bool
	// MaxBadLines is the error budget: up to this many malformed lines
	// are skipped (and counted) before the load fails. 0 is strict —
	// the first malformed line is an error.
	MaxBadLines int
}

// EdgeListReport describes what a lenient load skipped.
type EdgeListReport struct {
	// Lines is the number of data lines seen (comments/blanks excluded).
	Lines int
	// BadLines is how many malformed lines were skipped.
	BadLines int
	// FirstBad describes the first malformed line (empty when BadLines
	// is 0) — enough to locate the corruption without failing the run.
	FirstBad string
}

// LoadEdgeList reads a SNAP-style edge list: one "src dst [weight]" per
// line, '#' or '%' comment lines ignored, vertices identified by arbitrary
// non-negative integers (densified to [0,n)). If undirected is true, each
// listed edge is stored in both directions. Any malformed line is an
// error; use LoadEdgeListWithReport for a tolerant load.
func LoadEdgeList(r io.Reader, undirected bool, name string) (*graph.Graph, error) {
	g, _, err := LoadEdgeListWithReport(r, name, EdgeListOptions{Undirected: undirected})
	return g, err
}

// LoadEdgeListWithReport is LoadEdgeList with graceful degradation: up to
// opts.MaxBadLines malformed lines are skipped and counted in the report
// instead of failing the whole load, so a mostly-good dataset with a few
// corrupt lines still runs (the caller decides how much rot to tolerate).
func LoadEdgeListWithReport(r io.Reader, name string, opts EdgeListOptions) (*graph.Graph, EdgeListReport, error) {
	var rep EdgeListReport
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct {
		src, dst uint64
		w        int32
	}
	var edges []rawEdge
	idMap := make(map[uint64]graph.VertexID)
	weighted := false
	densify := func(raw uint64) graph.VertexID {
		if id, ok := idMap[raw]; ok {
			return id
		}
		id := graph.VertexID(len(idMap))
		idMap[raw] = id
		return id
	}
	// bad either consumes one unit of the error budget or fails the load.
	bad := func(format string, args ...interface{}) error {
		msg := fmt.Sprintf(format, args...)
		rep.BadLines++
		if rep.FirstBad == "" {
			rep.FirstBad = msg
		}
		if rep.BadLines > opts.MaxBadLines {
			if opts.MaxBadLines > 0 {
				return fmt.Errorf("gio: %s (error budget of %d exhausted)", msg, opts.MaxBadLines)
			}
			return fmt.Errorf("gio: %s", msg)
		}
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		rep.Lines++
		fields := strings.Fields(line)
		if len(fields) < 2 {
			if err := bad("line %d: want 'src dst [w]', got %q", lineNo, line); err != nil {
				return nil, rep, err
			}
			continue
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			if err := bad("line %d: bad src: %v", lineNo, err); err != nil {
				return nil, rep, err
			}
			continue
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			if err := bad("line %d: bad dst: %v", lineNo, err); err != nil {
				return nil, rep, err
			}
			continue
		}
		var w int64 = 1
		if len(fields) >= 3 {
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				if err := bad("line %d: bad weight: %v", lineNo, err); err != nil {
					return nil, rep, err
				}
				continue
			}
			weighted = true
		}
		edges = append(edges, rawEdge{src, dst, int32(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, rep, fmt.Errorf("gio: scan: %v", err)
	}
	// Densify in first-seen order for determinism.
	for _, e := range edges {
		densify(e.src)
		densify(e.dst)
	}
	b := graph.NewBuilder(len(idMap), opts.Undirected)
	if weighted {
		b.SetWeighted()
	}
	for _, e := range edges {
		b.AddEdge(idMap[e.src], idMap[e.dst], e.w)
	}
	b.Dedup()
	return b.Build(name), rep, nil
}

// Binary CSR format:
//
//	magic "OMGA" | version u32 | flags u32 (1=undirected, 2=weighted)
//	n u64 | m u64
//	OutOffsets [n+1]u64 | OutEdges [m]u32
//	InOffsets  [n+1]u64 | InEdges  [m]u32
//	(weights, if flagged) Weights [m]i32 | InWeights [m]i32
//	name length u32 | name bytes
const (
	binMagic   = "OMGA"
	binVersion = 1

	flagUndirected = 1
	flagWeighted   = 2
)

// StoreBinary writes g in the binary CSR format.
func StoreBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var flags uint32
	if g.Undirected {
		flags |= flagUndirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	hdr := []uint64{uint64(binVersion)<<32 | uint64(flags),
		uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, s := range [][]uint64{g.OutOffsets, g.InOffsets} {
		if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
			return err
		}
	}
	for _, s := range [][]graph.VertexID{g.OutEdges, g.InEdges} {
		if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
			return err
		}
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, g.InWeights); err != nil {
			return err
		}
	}
	nameBytes := []byte(g.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(nameBytes))); err != nil {
		return err
	}
	if _, err := bw.Write(nameBytes); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadBinary reads a graph stored by StoreBinary.
func LoadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gio: read magic: %v", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("gio: bad magic %q", magic)
	}
	var verFlags, n, m uint64
	for _, p := range []*uint64{&verFlags, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	version := uint32(verFlags >> 32)
	flags := uint32(verFlags)
	if version != binVersion {
		return nil, fmt.Errorf("gio: unsupported version %d", version)
	}
	// Bound the header counts before allocating: vertex IDs are 32-bit,
	// and a real file cannot be smaller than its arrays.
	const maxCount = 1 << 31
	if n >= maxCount || m >= maxCount {
		return nil, fmt.Errorf("gio: implausible header counts n=%d m=%d", n, m)
	}
	g := &graph.Graph{
		Undirected: flags&flagUndirected != 0,
		OutOffsets: make([]uint64, n+1),
		InOffsets:  make([]uint64, n+1),
		OutEdges:   make([]graph.VertexID, m),
		InEdges:    make([]graph.VertexID, m),
	}
	for _, s := range [][]uint64{g.OutOffsets, g.InOffsets} {
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
	}
	for _, s := range [][]graph.VertexID{g.OutEdges, g.InEdges} {
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
	}
	if flags&flagWeighted != 0 {
		g.Weights = make([]int32, m)
		g.InWeights = make([]int32, m)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, g.InWeights); err != nil {
			return nil, err
		}
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("gio: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	g.Name = string(nameBytes)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gio: loaded graph invalid: %v", err)
	}
	return g, nil
}
