package gio

import (
	"bytes"
	"strings"
	"testing"

	"omega/internal/graph"
	"omega/internal/graph/gen"
)

func TestLoadEdgeListBasic(t *testing.T) {
	src := `# comment line
% another comment
0 1
0 2
1 2

2 0
`
	g, err := LoadEdgeList(strings.NewReader(src), false, "t")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Fatalf("shape %d/%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestLoadEdgeListDensifiesSparseIDs(t *testing.T) {
	src := "1000 2000\n2000 30\n"
	g, err := LoadEdgeList(strings.NewReader(src), false, "sparse")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("want 3 densified vertices, got %d", g.NumVertices())
	}
}

func TestLoadEdgeListWeighted(t *testing.T) {
	src := "0 1 5\n1 2 9\n"
	g, err := LoadEdgeList(strings.NewReader(src), false, "w")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("weights not detected")
	}
	if g.OutWeights(0)[0] != 5 {
		t.Fatalf("weight = %d", g.OutWeights(0)[0])
	}
}

func TestLoadEdgeListUndirected(t *testing.T) {
	src := "0 1\n1 2\n"
	g, err := LoadEdgeList(strings.NewReader(src), true, "u")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("undirected should double arcs: %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"x 1\n",     // bad src
		"0 y\n",     // bad dst
		"0 1 zzz\n", // bad weight
	}
	for _, src := range cases {
		if _, err := LoadEdgeList(strings.NewReader(src), false, "bad"); err == nil {
			t.Fatalf("input %q should fail", src)
		}
	}
}

func TestLoadEdgeListWithReportBudget(t *testing.T) {
	// Two corrupt lines among four good ones.
	src := "0 1\nbroken\n1 2\n0 y\n2 0\n0 3\n"

	// Strict (budget 0): first corruption fails the load.
	if _, _, err := LoadEdgeListWithReport(strings.NewReader(src), "strict", EdgeListOptions{}); err == nil {
		t.Fatal("strict load should fail on the first bad line")
	}

	// Budget 1: the second corruption exhausts it.
	_, rep, err := LoadEdgeListWithReport(strings.NewReader(src), "tight", EdgeListOptions{MaxBadLines: 1})
	if err == nil {
		t.Fatal("budget 1 should be exhausted by the second bad line")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("error should mention the budget: %v", err)
	}
	_ = rep

	// Budget 2: both skipped, load succeeds, report counts them.
	g, rep, err := LoadEdgeListWithReport(strings.NewReader(src), "lenient", EdgeListOptions{MaxBadLines: 2})
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if rep.BadLines != 2 || rep.Lines != 6 {
		t.Fatalf("report = %+v, want 2 bad of 6", rep)
	}
	if rep.FirstBad == "" || !strings.Contains(rep.FirstBad, "line 2") {
		t.Fatalf("first bad line not located: %q", rep.FirstBad)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("good edges lost: %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestLoadEdgeListWithReportCleanInput(t *testing.T) {
	g, rep, err := LoadEdgeListWithReport(strings.NewReader("0 1\n1 2\n"), "clean",
		EdgeListOptions{MaxBadLines: 5})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.BadLines != 0 || rep.FirstBad != "" || rep.Lines != 2 {
		t.Fatalf("clean input misreported: %+v", rep)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges %d", g.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 21))
	var buf bytes.Buffer
	if err := StoreBinary(&buf, g); err != nil {
		t.Fatalf("store: %v", err)
	}
	g2, err := LoadBinary(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if g2.Name != g.Name || g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round-trip changed shape or name")
	}
	for i := range g.OutEdges {
		if g.OutEdges[i] != g2.OutEdges[i] {
			t.Fatalf("out edge %d differs", i)
		}
	}
	for i := range g.InEdges {
		if g.InEdges[i] != g2.InEdges[i] {
			t.Fatalf("in edge %d differs", i)
		}
	}
}

func TestBinaryRoundTripWeightedUndirected(t *testing.T) {
	cfg := gen.DefaultRMAT(8, 22)
	cfg.Weighted = true
	cfg.Undirected = true
	g := gen.RMAT(cfg)
	var buf bytes.Buffer
	if err := StoreBinary(&buf, g); err != nil {
		t.Fatalf("store: %v", err)
	}
	g2, err := LoadBinary(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !g2.Undirected || !g2.Weighted() {
		t.Fatal("flags lost")
	}
	for i := range g.Weights {
		if g.Weights[i] != g2.Weights[i] {
			t.Fatalf("weight %d differs", i)
		}
	}
}

func TestLoadBinaryRejectsGarbage(t *testing.T) {
	if _, err := LoadBinary(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := LoadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestLoadBinaryRejectsTruncated(t *testing.T) {
	g := graph.FromEdges(3, false, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, "t")
	var buf bytes.Buffer
	if err := StoreBinary(&buf, g); err != nil {
		t.Fatalf("store: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) - 3} {
		if _, err := LoadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
}
