package gio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList: arbitrary text must either parse into a valid graph or
// return an error — never panic, never produce a graph that fails
// Validate.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 6 3\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("18446744073709551615 0\n")
	f.Add("1 2 -5\n0 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := LoadEdgeList(strings.NewReader(src), false, "fuzz")
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		gu, err := LoadEdgeList(strings.NewReader(src), true, "fuzz-undir")
		if err == nil {
			if err := gu.Validate(); err != nil {
				t.Fatalf("undirected parse invalid: %v", err)
			}
		}
		// The lenient path must hold the same invariant: whatever survives
		// the error budget validates, and the report stays consistent.
		gl, rep, err := LoadEdgeListWithReport(strings.NewReader(src), "fuzz-lenient",
			EdgeListOptions{MaxBadLines: 8})
		if err == nil {
			if err := gl.Validate(); err != nil {
				t.Fatalf("lenient parse invalid: %v", err)
			}
			if rep.BadLines > 8 || rep.BadLines > rep.Lines {
				t.Fatalf("inconsistent report: %+v", rep)
			}
			if (rep.BadLines == 0) != (rep.FirstBad == "") {
				t.Fatalf("FirstBad out of sync with BadLines: %+v", rep)
			}
		}
	})
}

// FuzzLoadBinary: arbitrary bytes must never panic the binary loader, and
// anything that loads must validate.
func FuzzLoadBinary(f *testing.F) {
	// Seed with a real file.
	var buf bytes.Buffer
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"), false, "seed")
	if err != nil {
		f.Fatal(err)
	}
	if err := StoreBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OMGA"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := LoadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loaded graph invalid: %v", err)
		}
	})
}
