package gen

import (
	"testing"

	"omega/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(DefaultRMAT(10, 42))
	b := RMAT(DefaultRMAT(10, 42))
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should give identical shape")
	}
	for i := range a.OutEdges {
		if a.OutEdges[i] != b.OutEdges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRMATIsPowerLaw(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 7))
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := graph.ComputeDegreeStats(g)
	if !s.PowerLaw {
		t.Fatalf("R-MAT should be power-law; in-deg connectivity %.1f", s.InDegreeConnectivity)
	}
	if s.InDegreeConnectivity < 70 {
		t.Fatalf("R-MAT skew too weak: %.1f%%", s.InDegreeConnectivity)
	}
}

func TestRMATEdgeCountNearTarget(t *testing.T) {
	cfg := DefaultRMAT(12, 3)
	g := RMAT(cfg)
	want := (1 << 12) * cfg.EdgeFactor
	if g.NumEdges() < want/2 || g.NumEdges() > want {
		t.Fatalf("edges %d not near target %d", g.NumEdges(), want)
	}
}

func TestRMATWeighted(t *testing.T) {
	cfg := DefaultRMAT(8, 5)
	cfg.Weighted = true
	g := RMAT(cfg)
	if !g.Weighted() {
		t.Fatal("weighted flag lost")
	}
	for _, w := range g.Weights {
		if w < 1 || w >= 64 {
			t.Fatalf("weight %d out of [1,64)", w)
		}
	}
}

func TestRMATUndirected(t *testing.T) {
	cfg := DefaultRMAT(8, 11)
	cfg.Undirected = true
	g := RMAT(cfg)
	if err := g.Validate(); err != nil {
		t.Fatalf("validate (includes symmetry): %v", err)
	}
}

func TestRMATBadScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMAT(RMATConfig{ScaleLog2: 0})
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g := BarabasiAlbert(BAConfig{NumVertices: 4000, EdgesPerVertex: 8, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := graph.ComputeDegreeStats(g)
	if !s.PowerLaw {
		t.Fatalf("BA should be power-law; in-deg connectivity %.1f", s.InDegreeConnectivity)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(BAConfig{NumVertices: 500, EdgesPerVertex: 4, Seed: 9})
	b := BarabasiAlbert(BAConfig{NumVertices: 500, EdgesPerVertex: 4, Seed: 9})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic BA")
	}
}

func TestErdosRenyiNotPowerLaw(t *testing.T) {
	g := ErdosRenyi(ERConfig{NumVertices: 4000, NumEdges: 40000, Seed: 2})
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := graph.ComputeDegreeStats(g)
	if s.PowerLaw {
		t.Fatalf("ER should not be power-law; got %.1f%%", s.InDegreeConnectivity)
	}
}

func TestRoadGridNotPowerLaw(t *testing.T) {
	g := RoadGrid(RoadConfig{Side: 64, ExtraFraction: 0.1, Seed: 4})
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := graph.ComputeDegreeStats(g)
	if s.PowerLaw {
		t.Fatalf("road grid should not be power-law; got %.1f%%", s.InDegreeConnectivity)
	}
	// Table I reports ~29% for road networks; accept a loose band.
	if s.InDegreeConnectivity < 20 || s.InDegreeConnectivity > 45 {
		t.Fatalf("road connectivity %.1f%% outside road-like band", s.InDegreeConnectivity)
	}
	if s.MaxInDegree > 16 {
		t.Fatalf("road max degree %d too high", s.MaxInDegree)
	}
}

func TestRoadGridUndirectedSymmetric(t *testing.T) {
	g := RoadGrid(RoadConfig{Side: 16, Seed: 8})
	if !g.Undirected {
		t.Fatal("road grids are undirected")
	}
}

func TestRoadGridWeighted(t *testing.T) {
	g := RoadGrid(RoadConfig{Side: 16, Seed: 8, Weighted: true})
	if !g.Weighted() {
		t.Fatal("weighted road lost weights")
	}
	for _, w := range g.Weights {
		if w < 1 {
			t.Fatalf("non-positive road weight %d", w)
		}
	}
}

func TestWattsStrogatzNotPowerLaw(t *testing.T) {
	g := WattsStrogatz(WSConfig{NumVertices: 4000, K: 8, Beta: 0.1, Seed: 5})
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := graph.ComputeDegreeStats(g)
	if s.PowerLaw {
		t.Fatalf("small-world graphs are not power-law: %.1f%%", s.InDegreeConnectivity)
	}
	if !g.Undirected {
		t.Fatal("WS should be undirected")
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	a := WattsStrogatz(WSConfig{NumVertices: 500, K: 6, Beta: 0.2, Seed: 9})
	b := WattsStrogatz(WSConfig{NumVertices: 500, K: 6, Beta: 0.2, Seed: 9})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic WS")
	}
}

func TestWattsStrogatzBetaExtremes(t *testing.T) {
	lattice := WattsStrogatz(WSConfig{NumVertices: 300, K: 4, Beta: 0, Seed: 1})
	if graph.ComputeDegreeStats(lattice).MaxInDegree > 8 {
		t.Fatal("pure lattice degrees should be tight")
	}
	random := WattsStrogatz(WSConfig{NumVertices: 300, K: 4, Beta: 1, Seed: 1, Weighted: true})
	if err := random.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestZipfDegreesSkewed(t *testing.T) {
	d := ZipfDegrees(10000, 2.0, 3)
	max, sum := 0, 0
	for _, x := range d {
		if x < 1 {
			t.Fatalf("degree %d < 1", x)
		}
		if x > max {
			max = x
		}
		sum += x
	}
	mean := float64(sum) / float64(len(d))
	if float64(max) < 10*mean {
		t.Fatalf("Zipf tail too weak: max %d mean %.1f", max, mean)
	}
}

func TestGeneratorsProduceDistinctSeededOutputs(t *testing.T) {
	a := RMAT(DefaultRMAT(10, 1))
	b := RMAT(DefaultRMAT(10, 2))
	if a.NumEdges() == b.NumEdges() {
		// Edge counts can rarely collide; compare content.
		same := true
		for i := range a.OutEdges {
			if a.OutEdges[i] != b.OutEdges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}
