// Package gen generates the synthetic datasets used in place of the paper's
// real-world graph files (SNAP / WebGraph / DIMACS), which are not available
// offline.
//
// Power-law stand-ins:
//   - RMAT reproduces the R-MAT recursive-matrix skew (the paper's "rMat"
//     dataset is itself R-MAT with default parameters).
//   - BarabasiAlbert models preferential attachment, the mechanism the paper
//     cites as the origin of natural-graph power laws (soc/web/wiki-like).
//
// Non-power-law stand-ins:
//   - RoadGrid models a planar road network with near-uniform small degree
//     (roadNet-CA/PA, Western-USA).
//   - ErdosRenyi gives a uniform random graph for control experiments.
//
// All generators are deterministic for a given seed.
package gen

import (
	"fmt"
	"math"

	"omega/internal/graph"
	"omega/internal/stats"
)

// RMATConfig parameterizes the recursive-matrix generator of Chakrabarti,
// Zhan and Faloutsos (ICDM'04). Defaults match the common Graph500-style
// skew (a=0.57 b=0.19 c=0.19 d=0.05).
type RMATConfig struct {
	ScaleLog2  int     // number of vertices = 1 << ScaleLog2
	EdgeFactor int     // edges ~= EdgeFactor * vertices (R-MAT default 16)
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
	Seed       uint64
	Undirected bool
	Weighted   bool // assign deterministic pseudo-random weights in [1,64)
}

// DefaultRMAT returns the configuration used by the experiment suite for a
// given scale.
func DefaultRMAT(scaleLog2 int, seed uint64) RMATConfig {
	return RMATConfig{
		ScaleLog2:  scaleLog2,
		EdgeFactor: 16,
		A:          0.57, B: 0.19, C: 0.19,
		Seed: seed,
	}
}

// RMAT generates an R-MAT graph. Duplicate edges and self-loops are
// removed, so the final edge count is slightly below ScaleLog2*EdgeFactor.
func RMAT(cfg RMATConfig) *graph.Graph {
	if cfg.ScaleLog2 <= 0 || cfg.ScaleLog2 > 30 {
		panic(fmt.Sprintf("gen: bad RMAT scale %d", cfg.ScaleLog2))
	}
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	n := 1 << cfg.ScaleLog2
	m := n * cfg.EdgeFactor
	r := stats.NewRand(cfg.Seed)
	b := graph.NewBuilder(n, cfg.Undirected)
	if cfg.Weighted {
		b.SetWeighted()
	}
	ab := cfg.A + cfg.B
	abc := cfg.A + cfg.B + cfg.C
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for depth := 0; depth < cfg.ScaleLog2; depth++ {
			p := r.Float64()
			switch {
			case p < cfg.A:
				// top-left: no bits set
			case p < ab:
				dst |= 1 << depth
			case p < abc:
				src |= 1 << depth
			default:
				src |= 1 << depth
				dst |= 1 << depth
			}
		}
		var w int32 = 1
		if cfg.Weighted {
			w = int32(1 + r.Intn(63))
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst), w)
	}
	b.Dedup()
	name := fmt.Sprintf("rmat-%d", cfg.ScaleLog2)
	if cfg.Undirected {
		name += "u"
	}
	return b.Build(name)
}

// BAConfig parameterizes the Barabási–Albert preferential-attachment
// generator.
type BAConfig struct {
	NumVertices int
	// EdgesPerVertex is the number of out-edges each arriving vertex
	// creates toward existing vertices chosen by preferential attachment.
	EdgesPerVertex int
	Seed           uint64
	Undirected     bool
	Weighted       bool
	// BackEdgeFraction adds the reverse arc for this fraction of edges
	// (directed graphs only). Pure preferential attachment yields a DAG
	// pointing old-ward, which no real social network is; back edges
	// create the giant strongly connected component that makes directed
	// traversals (BFS, SSSP, BC) meaningful, as on the paper's lj/orkut.
	BackEdgeFraction float64
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to EdgesPerVertex existing vertices with probability
// proportional to their current degree. This yields the "rich get richer"
// in-degree skew of social and web graphs (paper §II).
func BarabasiAlbert(cfg BAConfig) *graph.Graph {
	if cfg.NumVertices < 2 {
		panic("gen: BA needs at least 2 vertices")
	}
	if cfg.EdgesPerVertex < 1 {
		cfg.EdgesPerVertex = 8
	}
	r := stats.NewRand(cfg.Seed)
	b := graph.NewBuilder(cfg.NumVertices, cfg.Undirected)
	if cfg.Weighted {
		b.SetWeighted()
	}
	// targets holds one entry per edge endpoint; sampling uniformly from it
	// implements degree-proportional selection.
	targets := make([]graph.VertexID, 0, cfg.NumVertices*cfg.EdgesPerVertex*2)
	targets = append(targets, 0)
	for v := 1; v < cfg.NumVertices; v++ {
		k := cfg.EdgesPerVertex
		if k > v {
			k = v
		}
		seen := map[graph.VertexID]bool{}
		for e := 0; e < k; e++ {
			var dst graph.VertexID
			for {
				dst = targets[r.Intn(len(targets))]
				if dst != graph.VertexID(v) && !seen[dst] {
					break
				}
			}
			seen[dst] = true
			var w int32 = 1
			if cfg.Weighted {
				w = int32(1 + r.Intn(63))
			}
			b.AddEdge(graph.VertexID(v), dst, w)
			if !cfg.Undirected && cfg.BackEdgeFraction > 0 &&
				r.Float64() < cfg.BackEdgeFraction {
				b.AddEdge(dst, graph.VertexID(v), w)
			}
			targets = append(targets, dst)
		}
		targets = append(targets, graph.VertexID(v))
	}
	b.Dedup()
	return b.Build(fmt.Sprintf("ba-%d", cfg.NumVertices))
}

// ERConfig parameterizes the Erdős–Rényi G(n, m) generator.
type ERConfig struct {
	NumVertices int
	NumEdges    int
	Seed        uint64
	Undirected  bool
	Weighted    bool
}

// ErdosRenyi generates a uniform random graph with approximately NumEdges
// distinct edges.
func ErdosRenyi(cfg ERConfig) *graph.Graph {
	if cfg.NumVertices < 2 {
		panic("gen: ER needs at least 2 vertices")
	}
	r := stats.NewRand(cfg.Seed)
	b := graph.NewBuilder(cfg.NumVertices, cfg.Undirected)
	if cfg.Weighted {
		b.SetWeighted()
	}
	for i := 0; i < cfg.NumEdges; i++ {
		src := graph.VertexID(r.Intn(cfg.NumVertices))
		dst := graph.VertexID(r.Intn(cfg.NumVertices))
		var w int32 = 1
		if cfg.Weighted {
			w = int32(1 + r.Intn(63))
		}
		b.AddEdge(src, dst, w)
	}
	b.Dedup()
	return b.Build(fmt.Sprintf("er-%d", cfg.NumVertices))
}

// RoadConfig parameterizes the planar road-network generator.
type RoadConfig struct {
	// Side is the grid side; NumVertices = Side*Side.
	Side int
	// ExtraFraction adds this fraction of random "shortcut" edges between
	// nearby vertices, mimicking highway links. 0.1 is typical.
	ExtraFraction float64
	Seed          uint64
	Weighted      bool
}

// RoadGrid generates an undirected 2-D grid with a few local shortcuts and
// a small fraction of removed streets. Degrees concentrate around 2-4,
// like roadNet-CA/PA and Western-USA in Table I: the top-20 % in-degree
// connectivity lands near the paper's ~29 %.
func RoadGrid(cfg RoadConfig) *graph.Graph {
	if cfg.Side < 2 {
		panic("gen: road grid needs Side >= 2")
	}
	n := cfg.Side * cfg.Side
	r := stats.NewRand(cfg.Seed)
	b := graph.NewBuilder(n, true)
	if cfg.Weighted {
		b.SetWeighted()
	}
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*cfg.Side + x) }
	weight := func(d int) int32 {
		if !cfg.Weighted {
			return 1
		}
		return int32(d + r.Intn(8))
	}
	for y := 0; y < cfg.Side; y++ {
		for x := 0; x < cfg.Side; x++ {
			// Drop ~7% of streets so the grid is irregular but stays
			// overwhelmingly connected.
			if x+1 < cfg.Side && r.Float64() > 0.07 {
				b.AddEdge(id(x, y), id(x+1, y), weight(1))
			}
			if y+1 < cfg.Side && r.Float64() > 0.07 {
				b.AddEdge(id(x, y), id(x, y+1), weight(1))
			}
		}
	}
	extra := int(cfg.ExtraFraction * float64(n))
	for i := 0; i < extra; i++ {
		x := r.Intn(cfg.Side)
		y := r.Intn(cfg.Side)
		dx := r.Intn(7) - 3
		dy := r.Intn(7) - 3
		nx, ny := x+dx, y+dy
		if nx < 0 || ny < 0 || nx >= cfg.Side || ny >= cfg.Side {
			continue
		}
		if nx == x && ny == y {
			continue
		}
		b.AddEdge(id(x, y), id(nx, ny), weight(abs(dx)+abs(dy)))
	}
	b.Dedup()
	return b.Build(fmt.Sprintf("road-%dx%d", cfg.Side, cfg.Side))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// WSConfig parameterizes the Watts–Strogatz small-world generator.
type WSConfig struct {
	NumVertices int
	// K is the (even) ring-lattice degree: each vertex links to K/2
	// neighbors on each side.
	K int
	// Beta is the rewiring probability; 0 = pure lattice (road-like),
	// 1 = random graph, small beta = small-world.
	Beta     float64
	Seed     uint64
	Weighted bool
}

// WattsStrogatz generates a small-world graph: high clustering like a
// lattice with the short diameters of a random graph, but *without* a
// power-law degree distribution — a second non-power-law control family
// alongside the road grids.
func WattsStrogatz(cfg WSConfig) *graph.Graph {
	if cfg.NumVertices < 4 {
		panic("gen: WS needs at least 4 vertices")
	}
	if cfg.K < 2 {
		cfg.K = 4
	}
	if cfg.K%2 != 0 {
		cfg.K++
	}
	if cfg.Beta < 0 {
		cfg.Beta = 0
	}
	if cfg.Beta > 1 {
		cfg.Beta = 1
	}
	n := cfg.NumVertices
	r := stats.NewRand(cfg.Seed)
	b := graph.NewBuilder(n, true)
	if cfg.Weighted {
		b.SetWeighted()
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= cfg.K/2; j++ {
			dst := (v + j) % n
			if r.Float64() < cfg.Beta {
				// Rewire to a uniform random target.
				for tries := 0; tries < 8; tries++ {
					cand := r.Intn(n)
					if cand != v {
						dst = cand
						break
					}
				}
			}
			var w int32 = 1
			if cfg.Weighted {
				w = int32(1 + r.Intn(15))
			}
			if dst != v {
				b.AddEdge(graph.VertexID(v), graph.VertexID(dst), w)
			}
		}
	}
	b.Dedup()
	return b.Build(fmt.Sprintf("ws-%d", n))
}

// ZipfDegrees generates n degree samples from a Zipf-like distribution with
// exponent alpha (>1), useful for property-based tests of the power-law
// classifier.
func ZipfDegrees(n int, alpha float64, seed uint64) []int {
	r := stats.NewRand(seed)
	out := make([]int, n)
	for i := range out {
		u := r.Float64()
		if u == 0 {
			u = 0.5
		}
		// Inverse-CDF of a Pareto tail, clipped.
		d := int(math.Pow(u, -1.0/(alpha-1.0)))
		if d < 1 {
			d = 1
		}
		if d > n {
			d = n
		}
		out[i] = d
	}
	return out
}
