package graph

import (
	"testing"
	"testing/quick"

	"omega/internal/stats"
)

// tinyDirected builds the 5-vertex directed graph
// 0->1, 0->2, 1->2, 2->3, 3->0, 3->4.
func tinyDirected(t *testing.T) *Graph {
	t.Helper()
	g := FromEdges(5, false, []Edge{
		{0, 1, 1}, {0, 2, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}, {3, 4, 1},
	}, "tiny")
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return g
}

func TestBuildDirected(t *testing.T) {
	g := tinyDirected(t)
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("shape %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(4) != 0 {
		t.Fatalf("out degrees wrong")
	}
	if g.InDegree(2) != 2 || g.InDegree(4) != 1 {
		t.Fatalf("in degrees wrong")
	}
	out0 := g.OutNeighbors(0)
	if len(out0) != 2 || out0[0] != 1 || out0[1] != 2 {
		t.Fatalf("out(0) = %v", out0)
	}
	in2 := g.InNeighbors(2)
	if len(in2) != 2 || in2[0] != 0 || in2[1] != 1 {
		t.Fatalf("in(2) = %v", in2)
	}
}

func TestBuildUndirectedSymmetric(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build("path")
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("undirected path should store 6 arcs, got %d", g.NumEdges())
	}
	if g.OutDegree(1) != 2 || g.InDegree(1) != 2 {
		t.Fatal("degree of middle vertex should be 2 both ways")
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 9) // duplicate
	b.AddEdge(1, 1, 1) // self loop
	b.AddEdge(1, 2, 3)
	b.Dedup()
	g := b.Build("dedup")
	if g.NumEdges() != 2 {
		t.Fatalf("want 2 edges after dedup, got %d", g.NumEdges())
	}
}

func TestWeightsFollowEdges(t *testing.T) {
	b := NewBuilder(3, false)
	b.SetWeighted()
	b.AddEdge(0, 2, 7)
	b.AddEdge(0, 1, 3)
	g := b.Build("w")
	ws := g.OutWeights(0)
	ns := g.OutNeighbors(0)
	if ns[0] != 1 || ws[0] != 3 || ns[1] != 2 || ws[1] != 7 {
		t.Fatalf("weights misaligned: %v %v", ns, ws)
	}
	// In-edges: weight of 0->2 must appear on in-neighbor list of 2.
	iw := g.InWeightsOf(2)
	if len(iw) != 1 || iw[0] != 7 {
		t.Fatalf("in weights misaligned: %v", iw)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := tinyDirected(t)
	g.OutEdges[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("expected out-of-range edge to fail validation")
	}
}

func TestValidateCatchesInOutMismatch(t *testing.T) {
	g := tinyDirected(t)
	// Swap an in-edge so the per-vertex in-degree bookkeeping mismatches.
	g.InEdges[0], g.InEdges[len(g.InEdges)-1] = g.InEdges[len(g.InEdges)-1], g.InEdges[0]
	// Swapping entries alone keeps counts; instead break an offset.
	g.InOffsets[1]++
	g.InOffsets[2]-- // keep end the same but shift a boundary
	_ = g
	// Rebuild a clean graph and break the symmetric invariant instead:
	g2 := FromEdges(2, false, []Edge{{0, 1, 1}}, "x")
	g2.InEdges[0] = 0 // now out-edges imply in-degree(1)=1 but stored in(1) says src 0->0
	g2.InOffsets = []uint64{0, 1, 1}
	if err := g2.Validate(); err == nil {
		t.Fatal("expected in/out mismatch to fail validation")
	}
}

func TestDegreeStatsPowerLawClassification(t *testing.T) {
	// Star graph: vertex 0 receives edges from everyone -> extreme skew.
	n := 100
	var edges []Edge
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{VertexID(v), 0, 1})
	}
	star := FromEdges(n, false, edges, "star")
	s := ComputeDegreeStats(star)
	if !s.PowerLaw {
		t.Fatalf("star should classify as power-law: %+v", s)
	}
	if s.InDegreeConnectivity < 99 {
		t.Fatalf("star top-20%% in connectivity = %v", s.InDegreeConnectivity)
	}

	// Ring graph: perfectly uniform degree -> no skew.
	edges = edges[:0]
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{VertexID(v), VertexID((v + 1) % n), 1})
	}
	ring := FromEdges(n, false, edges, "ring")
	s = ComputeDegreeStats(ring)
	if s.PowerLaw {
		t.Fatalf("ring should not classify as power-law: %+v", s)
	}
	if s.InDegreeConnectivity < 19 || s.InDegreeConnectivity > 21 {
		t.Fatalf("ring top-20%% share should be ~20%%, got %v", s.InDegreeConnectivity)
	}
}

func TestDegreeStatsEmptyGraph(t *testing.T) {
	g := &Graph{}
	s := ComputeDegreeStats(g)
	if s.NumVertices != 0 || s.PowerLaw {
		t.Fatalf("empty graph stats: %+v", s)
	}
}

func TestTopKByInDegree(t *testing.T) {
	g := tinyDirected(t)
	// in-degrees: v0=1, v1=1, v2=2, v3=1, v4=1
	top := TopKByInDegree(g, 2)
	if top[0] != 2 {
		t.Fatalf("top in-degree vertex should be 2, got %d", top[0])
	}
	if top[1] != 0 {
		t.Fatalf("tie should break to lowest ID (0), got %d", top[1])
	}
	if len(TopKByInDegree(g, 99)) != 5 {
		t.Fatal("k > n should clamp")
	}
}

func TestAccessShareToTopK(t *testing.T) {
	g := tinyDirected(t)
	acc := []uint64{0, 0, 100, 0, 0} // all accesses to the hottest vertex
	share := AccessShareToTopK(g, acc, 0.20)
	if share != 1.0 {
		t.Fatalf("share = %v, want 1.0", share)
	}
	acc = []uint64{25, 25, 0, 25, 25}
	share = AccessShareToTopK(g, acc, 0.20)
	if share != 0 {
		t.Fatalf("share = %v, want 0", share)
	}
	if AccessShareToTopK(g, nil, 0.2) != 0 {
		t.Fatal("mismatched access slice should return 0")
	}
}

func TestCumulativeDegreeShareMonotone(t *testing.T) {
	r := stats.NewRand(3)
	var edges []Edge
	n := 200
	for i := 0; i < 2000; i++ {
		edges = append(edges, Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n)), 1})
	}
	g := FromEdges(n, false, edges, "rand")
	cum := CumulativeDegreeShare(g)
	if len(cum) != 100 {
		t.Fatalf("want 100 points, got %d", len(cum))
	}
	for i := 1; i < 100; i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("not monotone at %d: %v < %v", i, cum[i], cum[i-1])
		}
	}
	if cum[99] < 0.999 {
		t.Fatalf("100%% of vertices must cover all edges, got %v", cum[99])
	}
}

func TestBuildPropertyInOutConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(60)
		m := r.Intn(200)
		b := NewBuilder(n, false)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)), 1)
		}
		g := b.Build("prop")
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPropertyUndirectedSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(40)
		b := NewBuilder(n, true)
		for i := 0; i < 80; i++ {
			b.AddEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)), 1)
		}
		b.Dedup()
		g := b.Build("undir")
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, false).AddEdge(0, 5, 1)
}
