package datasets

import (
	"sync"
	"sync/atomic"
	"testing"

	"omega/internal/graph"
)

func tinyGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for v := 0; v < n-1; v++ {
		b.AddEdge(uint32(v), uint32(v+1), 1)
	}
	return b.Build("tiny")
}

func TestGetOrBuildMemoizes(t *testing.T) {
	c := New()
	var builds atomic.Int32
	build := func() *graph.Graph {
		builds.Add(1)
		return tinyGraph(4)
	}
	k := Key{Kind: "rmat", Scale: 10, Seed: 42, Reordered: true}
	g1, hit1 := c.GetOrBuild(k, build)
	g2, hit2 := c.GetOrBuild(k, build)
	if hit1 || !hit2 {
		t.Fatalf("hit flags = %v, %v; want false, true", hit1, hit2)
	}
	if g1 != g2 {
		t.Fatal("same key must share one graph instance")
	}
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", h, m)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestGetOrBuildDistinctKeys(t *testing.T) {
	c := New()
	var builds atomic.Int32
	build := func() *graph.Graph {
		builds.Add(1)
		return tinyGraph(3)
	}
	keys := []Key{
		{Kind: "rmat", Scale: 10, Seed: 42},
		{Kind: "rmat", Scale: 11, Seed: 42},
		{Kind: "rmat", Scale: 10, Seed: 43},
		{Kind: "social", Scale: 10, Seed: 42},
		{Kind: "rmat", Scale: 10, Seed: 42, Weighted: true},
		{Kind: "rmat", Scale: 10, Seed: 42, Reordered: true},
	}
	for _, k := range keys {
		if _, hit := c.GetOrBuild(k, build); hit {
			t.Fatalf("key %+v should miss", k)
		}
	}
	if int(builds.Load()) != len(keys) {
		t.Fatalf("builds = %d, want %d", builds.Load(), len(keys))
	}
}

// TestGetOrBuildSingleflight checks that concurrent callers of one key
// share a single build: everyone gets the same graph and the build
// function runs exactly once.
func TestGetOrBuildSingleflight(t *testing.T) {
	c := New()
	var builds atomic.Int32
	release := make(chan struct{})
	build := func() *graph.Graph {
		builds.Add(1)
		<-release // hold the build so the others pile up on the slot
		return tinyGraph(5)
	}
	const callers = 16
	got := make([]*graph.Graph, callers)
	var started, wg sync.WaitGroup
	started.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			g, _ := c.GetOrBuild(Key{Kind: "rmat", Scale: 9, Seed: 1}, build)
			got[i] = g
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times under contention, want 1", builds.Load())
	}
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different graph instance", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("stats = %d hits / %d misses, want %d/1", hits, misses, callers-1)
	}
}

func TestNilCacheBuildsFresh(t *testing.T) {
	var c *Cache
	var builds atomic.Int32
	build := func() *graph.Graph {
		builds.Add(1)
		return tinyGraph(2)
	}
	k := Key{Kind: "rmat"}
	c.GetOrBuild(k, build)
	c.GetOrBuild(k, build)
	if builds.Load() != 2 {
		t.Fatalf("nil cache must build every time: %d builds", builds.Load())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats = %d/%d, want 0/0", h, m)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has no entries")
	}
}

// TestPanicReplays checks that a panicking build is replayed to every
// caller of the key instead of handing out a nil graph.
func TestPanicReplays(t *testing.T) {
	c := New()
	k := Key{Kind: "bad"}
	boom := func() *graph.Graph { panic("generator bug") }
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if r := recover(); r != "generator bug" {
					t.Fatalf("call %d: recovered %v, want generator bug", i, r)
				}
			}()
			c.GetOrBuild(k, boom)
			t.Fatalf("call %d: should have panicked", i)
		}()
	}
}

// TestFailedBuildLeavesKeyRebuildable: a failed build must not poison
// the slot — a later caller with a working build function succeeds.
func TestFailedBuildLeavesKeyRebuildable(t *testing.T) {
	c := New()
	k := Key{Kind: "flaky", Scale: 8, Seed: 3}
	func() {
		defer func() {
			if r := recover(); r != "transient failure" {
				t.Fatalf("recovered %v, want transient failure", r)
			}
		}()
		c.GetOrBuild(k, func() *graph.Graph { panic("transient failure") })
	}()
	if c.Len() != 0 {
		t.Fatalf("failed entry still resident: len = %d, want 0", c.Len())
	}
	g, hit := c.GetOrBuild(k, func() *graph.Graph { return tinyGraph(3) })
	if g == nil || hit {
		t.Fatalf("rebuild after failure: graph=%v hit=%v, want non-nil miss", g, hit)
	}
	// The successful build is now cached normally.
	g2, hit2 := c.GetOrBuild(k, func() *graph.Graph { t.Fatal("must not rebuild"); return nil })
	if g2 != g || !hit2 {
		t.Fatal("successful rebuild was not cached")
	}
}

// TestFailedBuildPropagatesToConcurrentWaiters: every goroutine blocked
// on an in-flight build that fails must observe the same panic, and the
// key must afterwards be rebuildable.
func TestFailedBuildPropagatesToConcurrentWaiters(t *testing.T) {
	c := New()
	k := Key{Kind: "flaky", Scale: 9, Seed: 4}
	release := make(chan struct{})
	var builds atomic.Int32
	boom := func() *graph.Graph {
		builds.Add(1)
		<-release
		panic("shared failure")
	}
	const callers = 8
	panics := make([]any, callers)
	var started, wg sync.WaitGroup
	started.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			started.Done()
			c.GetOrBuild(k, boom)
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1 (waiters share the attempt)", builds.Load())
	}
	for i, p := range panics {
		if p != "shared failure" {
			t.Fatalf("caller %d recovered %v, want shared failure", i, p)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry still resident: len = %d, want 0", c.Len())
	}
	g, _ := c.GetOrBuild(k, func() *graph.Graph { return tinyGraph(4) })
	if g == nil {
		t.Fatal("key not rebuildable after shared failure")
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Record(true) // must not panic
	rec := &Counters{}
	rec.Record(true)
	rec.Record(false)
	rec.Record(false)
	if rec.Hits.Load() != 1 || rec.Misses.Load() != 2 {
		t.Fatalf("counters = %d/%d, want 1/2", rec.Hits.Load(), rec.Misses.Load())
	}
}
