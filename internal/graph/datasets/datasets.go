// Package datasets memoizes deterministic graph construction so that the
// many experiment runners sharing one (generator, scale, seed) tuple build
// the graph once and share the result.
//
// Generated graphs are pure functions of their Key, and a built
// *graph.Graph is never mutated by the simulator (CSR arrays are
// read-only after construction), so a cached graph can be handed to any
// number of concurrent runners. Construction itself is serialized per key
// in the style of singleflight: the first caller builds while concurrent
// callers for the same key block and then share the finished graph, so a
// parallel experiment suite never generates the same dataset twice.
package datasets

import (
	"sync"
	"sync/atomic"

	"omega/internal/graph"
)

// Key identifies one deterministic dataset build. Two calls with equal
// keys must build identical graphs — the cache returns the first build's
// result for both.
type Key struct {
	// Kind names the generator recipe ("rmat", "social", "road", ...).
	Kind string
	// Scale is log2 of the vertex count the recipe was asked for.
	Scale int
	// Seed is the generator seed the recipe derives its streams from.
	Seed uint64
	// Weighted marks the edge-weighted variant.
	Weighted bool
	// Reordered marks the in-degree-reordered variant (§VI placement).
	Reordered bool
}

// entry is one cache slot. once serializes the build; panicked replays
// the failed build to every waiter of that attempt, so a generator bug
// surfaces identically for all sharers instead of as a nil graph. A
// failed entry is evicted before the panic propagates, leaving the key
// rebuildable — a transient failure must not poison the cache for the
// rest of the process.
type entry struct {
	once     sync.Once
	g        *graph.Graph
	panicked any
}

// Cache is a concurrency-safe memoization table for graph builds. The
// zero value is not usable; construct with New. A nil *Cache is valid
// everywhere and simply builds fresh on every call (the pre-cache
// behaviour).
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// New returns an empty cache.
func New() *Cache { return &Cache{entries: make(map[Key]*entry)} }

// Counters is a per-consumer hit/miss sink, used by the suite to
// attribute cache traffic to individual experiments while the Cache
// itself keeps the global totals. A nil *Counters discards records.
type Counters struct {
	Hits   atomic.Uint64
	Misses atomic.Uint64
}

// Record notes one lookup outcome.
func (c *Counters) Record(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.Hits.Add(1)
	} else {
		c.Misses.Add(1)
	}
}

// GetOrBuild returns the graph for k, invoking build at most once per key
// across all callers. The boolean reports whether the slot already
// existed: a caller that blocks on another goroutine's in-flight build of
// the same key counts as a hit, since the generation work was shared. On
// a nil cache it calls build directly and reports a miss.
func (c *Cache) GetOrBuild(k Key, build func() *graph.Graph) (*graph.Graph, bool) {
	if c == nil {
		return build(), false
	}
	c.mu.Lock()
	e, hit := c.entries[k]
	if !hit {
		e = &entry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicked = r
			}
		}()
		e.g = build()
	})
	if e.panicked != nil {
		// Evict the failed slot (unless a later attempt already replaced
		// it) so the key stays rebuildable, then propagate the failure to
		// this caller — every goroutine that shared the attempt gets the
		// same panic.
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		c.mu.Unlock()
		panic(e.panicked)
	}
	return e.g, hit
}

// Stats returns the global hit/miss totals.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of resident graphs.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
