package graph

import (
	"cmp"
	"slices"
)

// DegreeStats summarizes a graph's degree structure the way Table I of the
// paper does: the in-degree/out-degree "connectivity" of the 20 %
// most-connected vertices and a practical power-law classification.
type DegreeStats struct {
	NumVertices int
	NumEdges    int
	Undirected  bool
	// InDegreeConnectivity is the percentage (0-100) of incoming edges
	// incident to the top-20 % vertices by in-degree.
	InDegreeConnectivity float64
	// OutDegreeConnectivity is the percentage of outgoing edges incident
	// to the top-20 % vertices by out-degree.
	OutDegreeConnectivity float64
	// MaxInDegree / MaxOutDegree are the largest degrees observed.
	MaxInDegree  int
	MaxOutDegree int
	// PowerLaw reports the paper's practical 80/20 test: a graph "follows
	// the power law" when ~20 % of vertices hold ~80 % of the edges. We
	// use the paper's own datasets as calibration: every power-law graph
	// in Table I has in-degree connectivity >= 55 %, every non-power-law
	// graph is <= 30 %. The classifier threshold is 55.
	PowerLaw bool
}

// PowerLawThreshold is the in-degree top-20 % connectivity (percent) above
// which a graph is classified as power-law, calibrated from Table I.
const PowerLawThreshold = 55.0

// ComputeDegreeStats computes Table I characterization for g.
func ComputeDegreeStats(g *Graph) DegreeStats {
	n := g.NumVertices()
	s := DegreeStats{
		NumVertices: n,
		NumEdges:    g.NumEdges(),
		Undirected:  g.Undirected,
	}
	if n == 0 {
		return s
	}
	inDeg := make([]int, n)
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		inDeg[v] = g.InDegree(VertexID(v))
		outDeg[v] = g.OutDegree(VertexID(v))
		if inDeg[v] > s.MaxInDegree {
			s.MaxInDegree = inDeg[v]
		}
		if outDeg[v] > s.MaxOutDegree {
			s.MaxOutDegree = outDeg[v]
		}
	}
	s.InDegreeConnectivity = topShare(inDeg, 0.20) * 100
	s.OutDegreeConnectivity = topShare(outDeg, 0.20) * 100
	s.PowerLaw = s.InDegreeConnectivity >= PowerLawThreshold
	return s
}

// topShare returns the fraction of total degree held by the top `frac`
// share of vertices (by descending degree).
func topShare(deg []int, frac float64) float64 {
	n := len(deg)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), deg...)
	slices.SortFunc(sorted, func(x, y int) int { return cmp.Compare(y, x) })
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	var top, total int64
	for i, d := range sorted {
		total += int64(d)
		if i < k {
			top += int64(d)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// TopKByInDegree returns the IDs of the k highest in-degree vertices in
// descending order of in-degree (ties broken by lower ID first). This is
// the paper's "n-th element"-style selection used to pick scratchpad
// residents; the full ordering is produced by package reorder.
func TopKByInDegree(g *Graph, k int) []VertexID {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	ids := make([]VertexID, n)
	for v := range ids {
		ids[v] = VertexID(v)
	}
	slices.SortFunc(ids, func(x, y VertexID) int {
		dx, dy := g.InDegree(x), g.InDegree(y)
		if dx != dy {
			return cmp.Compare(dy, dx)
		}
		return cmp.Compare(x, y)
	})
	return ids[:k]
}

// AccessShareToTopK computes, given a per-vertex access count, the fraction
// of accesses that target the top `frac` of vertices by in-degree. This is
// Figure 4(b)/Figure 5 of the paper.
func AccessShareToTopK(g *Graph, accesses []uint64, frac float64) float64 {
	n := g.NumVertices()
	if n == 0 || len(accesses) != n {
		return 0
	}
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	top := TopKByInDegree(g, k)
	inTop := make([]bool, n)
	for _, v := range top {
		inTop[v] = true
	}
	var hit, total uint64
	for v, c := range accesses {
		total += c
		if inTop[v] {
			hit += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// CumulativeDegreeShare returns, for fractions 1%..100% (in steps of 1%),
// the cumulative share of in-edges covered by that fraction of the
// highest-in-degree vertices. Used for the Figure 19/20 "X % of vertices
// hold Y % of vtxProp accesses" analysis.
func CumulativeDegreeShare(g *Graph) []float64 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.InDegree(VertexID(v))
	}
	slices.SortFunc(deg, func(x, y int) int { return cmp.Compare(y, x) })
	var total int64
	for _, d := range deg {
		total += int64(d)
	}
	out := make([]float64, 100)
	if total == 0 || n == 0 {
		return out
	}
	var cum int64
	next := 0
	for p := 1; p <= 100; p++ {
		limit := n * p / 100
		for next < limit {
			cum += int64(deg[next])
			next++
		}
		out[p-1] = float64(cum) / float64(total)
	}
	return out
}
