// Package reorder implements the offline vertex-reordering algorithms of
// paper §VI: full in-degree sort, out-degree sort, top-20 % partial sort,
// the linear-time "n-th element" partition the paper selects, and a
// SlashBurn-like community ordering used as a negative control in §III.
//
// A reordering is a permutation newID[oldID]; Apply relabels a graph so
// that vertex 0 is the most popular, matching Figure 6 ("lower ID
// indicates a higher connectivity").
package reorder

import (
	"cmp"
	"slices"

	"omega/internal/graph"
)

// Method selects a reordering algorithm.
type Method int

const (
	// Identity leaves the original ordering ("orig" in §III).
	Identity Method = iota
	// InDegree sorts all vertices by descending in-degree.
	InDegree
	// OutDegree sorts all vertices by descending out-degree.
	OutDegree
	// Top20Partial sorts only the top 20 % by in-degree; the tail keeps
	// its relative original order (paper §VI option 2).
	Top20Partial
	// NthElement partitions vertices so that the top 20 % by in-degree
	// precede the rest, with no ordering guarantee inside each side —
	// linear average time (paper §VI option 3, the one OMEGA uses).
	NthElement
	// SlashBurn approximates SlashBurn: iteratively remove the highest-
	// degree hub, then order remaining "spokes" by community. Included as
	// the paper's negative control (no speedup in §III).
	SlashBurn
)

// String names the method for experiment output.
func (m Method) String() string {
	switch m {
	case Identity:
		return "identity"
	case InDegree:
		return "in-degree"
	case OutDegree:
		return "out-degree"
	case Top20Partial:
		return "top20-partial"
	case NthElement:
		return "nth-element"
	case SlashBurn:
		return "slashburn"
	}
	return "unknown"
}

// Permutation maps old vertex IDs to new vertex IDs.
type Permutation []graph.VertexID

// Inverse returns the old-ID-for-new-ID mapping.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, nw := range p {
		inv[nw] = graph.VertexID(old)
	}
	return inv
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, nw := range p {
		if int(nw) >= len(p) || seen[nw] {
			return false
		}
		seen[nw] = true
	}
	return true
}

// Compute returns the permutation for the chosen method on g.
func Compute(g *graph.Graph, m Method) Permutation {
	n := g.NumVertices()
	switch m {
	case Identity:
		p := make(Permutation, n)
		for v := range p {
			p[v] = graph.VertexID(v)
		}
		return p
	case InDegree:
		return byDegree(n, func(v graph.VertexID) int { return g.InDegree(v) })
	case OutDegree:
		return byDegree(n, func(v graph.VertexID) int { return g.OutDegree(v) })
	case Top20Partial:
		return top20Partial(g)
	case NthElement:
		return nthElement(g)
	case SlashBurn:
		return slashBurn(g)
	}
	panic("reorder: unknown method")
}

// byDegree ranks vertices by descending degree (ties: lower old ID first)
// and assigns new IDs in rank order.
func byDegree(n int, deg func(graph.VertexID) int) Permutation {
	order := make([]graph.VertexID, n)
	for v := range order {
		order[v] = graph.VertexID(v)
	}
	slices.SortStableFunc(order, func(x, y graph.VertexID) int {
		return cmp.Compare(deg(y), deg(x))
	})
	p := make(Permutation, n)
	for rank, old := range order {
		p[old] = graph.VertexID(rank)
	}
	return p
}

// top20Partial sorts the top 20 % by in-degree; all remaining vertices keep
// their original relative order after them.
func top20Partial(g *graph.Graph) Permutation {
	n := g.NumVertices()
	k := n / 5
	if k < 1 {
		k = 1
	}
	top := graph.TopKByInDegree(g, k)
	inTop := make([]bool, n)
	p := make(Permutation, n)
	for rank, v := range top {
		inTop[v] = true
		p[v] = graph.VertexID(rank)
	}
	next := k
	for v := 0; v < n; v++ {
		if !inTop[v] {
			p[v] = graph.VertexID(next)
			next++
		}
	}
	return p
}

// nthElement partitions so the k=20 % highest-in-degree vertices occupy IDs
// [0,k) (ordered by original ID within the partition — any order satisfies
// the paper's requirement) and the rest occupy [k,n).
func nthElement(g *graph.Graph) Permutation {
	n := g.NumVertices()
	k := n / 5
	if k < 1 {
		k = 1
	}
	// Select the k-th largest in-degree with a counting pass rather than a
	// full sort: linear in n + maxDegree.
	maxDeg := 0
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.InDegree(graph.VertexID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	count := make([]int, maxDeg+2)
	for _, d := range deg {
		count[d]++
	}
	// Find the smallest degree threshold t such that #vertices with
	// degree > t is < k; vertices with degree > t are definitely in the
	// top set, and we fill the remainder with degree == t vertices.
	remaining := k
	threshold := maxDeg
	for d := maxDeg; d >= 0; d-- {
		if count[d] >= remaining {
			threshold = d
			break
		}
		remaining -= count[d]
	}
	p := make(Permutation, n)
	nextTop, nextTail := 0, k
	quota := remaining // how many degree==threshold vertices go in the top
	for v := 0; v < n; v++ {
		takeTop := false
		if deg[v] > threshold {
			takeTop = true
		} else if deg[v] == threshold && quota > 0 {
			takeTop = true
			quota--
		}
		if takeTop {
			p[v] = graph.VertexID(nextTop)
			nextTop++
		} else {
			p[v] = graph.VertexID(nextTail)
			nextTail++
		}
	}
	return p
}

// slashBurn approximates SlashBurn (Lim, Kang, Faloutsos 2014): repeatedly
// "slash" the highest-degree hub to the front, then "burn" — assign the
// smallest connected components to the back — and recurse on the giant
// component. We run a bounded number of rounds.
func slashBurn(g *graph.Graph) Permutation {
	n := g.NumVertices()
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.InDegree(graph.VertexID(v)) + g.OutDegree(graph.VertexID(v))
	}
	front := make([]graph.VertexID, 0, n)
	back := make([]graph.VertexID, 0, n)
	hubsPerRound := n / 100
	if hubsPerRound < 1 {
		hubsPerRound = 1
	}
	liveCount := n
	for round := 0; round < 64 && liveCount > 0; round++ {
		// Slash: take the hubsPerRound highest-degree live vertices.
		type vd struct {
			v graph.VertexID
			d int
		}
		live := make([]vd, 0, liveCount)
		for v := 0; v < n; v++ {
			if !removed[v] {
				live = append(live, vd{graph.VertexID(v), deg[v]})
			}
		}
		slices.SortFunc(live, func(x, y vd) int {
			if x.d != y.d {
				return cmp.Compare(y.d, x.d)
			}
			return cmp.Compare(x.v, y.v)
		})
		take := hubsPerRound
		if take > len(live) {
			take = len(live)
		}
		for i := 0; i < take; i++ {
			front = append(front, live[i].v)
			removed[live[i].v] = true
			liveCount--
		}
		// Burn: find connected components among the remaining vertices;
		// all but the largest go to the back.
		comp := components(g, removed)
		largest := -1
		largestSize := -1
		sizes := map[int]int{}
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			sizes[comp[v]]++
		}
		for c, sz := range sizes {
			if sz > largestSize || (sz == largestSize && c < largest) {
				largest, largestSize = c, sz
			}
		}
		// Collect non-giant components deterministically by vertex ID.
		for v := 0; v < n; v++ {
			if removed[v] || comp[v] == largest {
				continue
			}
			back = append(back, graph.VertexID(v))
			removed[v] = true
			liveCount--
		}
		if largestSize <= hubsPerRound {
			// Giant component is tiny; flush it front-first and stop.
			for v := 0; v < n; v++ {
				if !removed[v] {
					front = append(front, graph.VertexID(v))
					removed[v] = true
					liveCount--
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if !removed[v] {
			front = append(front, graph.VertexID(v))
		}
	}
	// New order: slashed hubs first, then burned spokes in reverse burn
	// order (later burns are closer to hubs).
	p := make(Permutation, n)
	rank := 0
	for _, v := range front {
		p[v] = graph.VertexID(rank)
		rank++
	}
	for i := len(back) - 1; i >= 0; i-- {
		p[back[i]] = graph.VertexID(rank)
		rank++
	}
	return p
}

// components labels the connected components (ignoring direction) of the
// not-removed subgraph; removed vertices get label -1.
func components(g *graph.Graph, removed []bool) []int {
	n := g.NumVertices()
	comp := make([]int, n)
	for v := range comp {
		comp[v] = -1
	}
	next := 0
	queue := make([]graph.VertexID, 0, 1024)
	for s := 0; s < n; s++ {
		if removed[s] || comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], graph.VertexID(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.OutNeighbors(v) {
				if !removed[u] && comp[u] < 0 {
					comp[u] = next
					queue = append(queue, u)
				}
			}
			for _, u := range g.InNeighbors(v) {
				if !removed[u] && comp[u] < 0 {
					comp[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return comp
}

// Apply relabels g according to p, returning a new graph in which old
// vertex v becomes p[v]. Weights follow their edges.
func Apply(g *graph.Graph, p Permutation) *graph.Graph {
	n := g.NumVertices()
	if len(p) != n {
		panic("reorder: permutation size mismatch")
	}
	b := graph.NewBuilder(n, g.Undirected)
	if g.Weighted() {
		b.SetWeighted()
	}
	for v := 0; v < n; v++ {
		ws := g.OutWeights(graph.VertexID(v))
		for i, u := range g.OutNeighbors(graph.VertexID(v)) {
			// For undirected graphs each edge is stored twice; add each
			// direction as a directed arc to avoid re-doubling.
			var w int32 = 1
			if ws != nil {
				w = ws[i]
			}
			if g.Undirected {
				// Builder with undirected=true doubles edges; emit only
				// the canonical direction.
				if v <= int(u) {
					b.AddEdge(p[v], p[u], w)
				}
			} else {
				b.AddEdge(p[v], p[u], w)
			}
		}
	}
	ng := b.Build(g.Name + "+" + "reordered")
	return ng
}
