package reorder

import (
	"testing"
	"testing/quick"

	"omega/internal/graph"
	"omega/internal/graph/gen"
	"omega/internal/stats"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.RMAT(gen.DefaultRMAT(9, 13))
	if err := g.Validate(); err != nil {
		t.Fatalf("generator produced invalid graph: %v", err)
	}
	return g
}

func TestIdentity(t *testing.T) {
	g := testGraph(t)
	p := Compute(g, Identity)
	for v, nw := range p {
		if int(nw) != v {
			t.Fatalf("identity moved %d -> %d", v, nw)
		}
	}
}

func allMethods() []Method {
	return []Method{Identity, InDegree, OutDegree, Top20Partial, NthElement, SlashBurn}
}

func TestAllMethodsProduceValidPermutations(t *testing.T) {
	g := testGraph(t)
	for _, m := range allMethods() {
		p := Compute(g, m)
		if len(p) != g.NumVertices() {
			t.Fatalf("%v: wrong size", m)
		}
		if !p.Valid() {
			t.Fatalf("%v: not a bijection", m)
		}
	}
}

func TestInDegreeOrderingMonotone(t *testing.T) {
	g := testGraph(t)
	p := Compute(g, InDegree)
	inv := p.Inverse()
	for rank := 1; rank < len(inv); rank++ {
		if g.InDegree(inv[rank-1]) < g.InDegree(inv[rank]) {
			t.Fatalf("in-degree not descending at rank %d", rank)
		}
	}
}

func TestOutDegreeOrderingMonotone(t *testing.T) {
	g := testGraph(t)
	p := Compute(g, OutDegree)
	inv := p.Inverse()
	for rank := 1; rank < len(inv); rank++ {
		if g.OutDegree(inv[rank-1]) < g.OutDegree(inv[rank]) {
			t.Fatalf("out-degree not descending at rank %d", rank)
		}
	}
}

// topSetMinDegree returns the minimum in-degree inside the top-k new IDs
// and the maximum in-degree outside it.
func topSplitDegrees(g *graph.Graph, p Permutation, k int) (minTop, maxTail int) {
	inv := p.Inverse()
	minTop = 1 << 30
	for rank, old := range inv {
		d := g.InDegree(old)
		if rank < k {
			if d < minTop {
				minTop = d
			}
		} else if d > maxTail {
			maxTail = d
		}
	}
	return
}

func TestNthElementPartitionProperty(t *testing.T) {
	g := testGraph(t)
	p := Compute(g, NthElement)
	k := g.NumVertices() / 5
	minTop, maxTail := topSplitDegrees(g, p, k)
	if minTop < maxTail {
		t.Fatalf("partition violated: min(top)=%d < max(tail)=%d", minTop, maxTail)
	}
}

func TestTop20PartialTopSortedAndPartitioned(t *testing.T) {
	g := testGraph(t)
	p := Compute(g, Top20Partial)
	k := g.NumVertices() / 5
	inv := p.Inverse()
	for rank := 1; rank < k; rank++ {
		if g.InDegree(inv[rank-1]) < g.InDegree(inv[rank]) {
			t.Fatalf("top-20%% region not sorted at %d", rank)
		}
	}
	minTop, maxTail := topSplitDegrees(g, p, k)
	if minTop < maxTail {
		t.Fatalf("partition violated: %d < %d", minTop, maxTail)
	}
}

func TestApplyPreservesStructure(t *testing.T) {
	g := testGraph(t)
	p := Compute(g, InDegree)
	ng := Apply(g, p)
	if err := ng.Validate(); err != nil {
		t.Fatalf("reordered graph invalid: %v", err)
	}
	if ng.NumVertices() != g.NumVertices() || ng.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			ng.NumVertices(), ng.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	// Every original edge must exist under the new labels.
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			found := false
			for _, nu := range ng.OutNeighbors(p[v]) {
				if nu == p[u] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d lost after reorder", v, u)
			}
		}
	}
}

func TestApplyUndirectedPreservesStructure(t *testing.T) {
	g := gen.RoadGrid(gen.RoadConfig{Side: 12, Seed: 5})
	p := Compute(g, InDegree)
	ng := Apply(g, p)
	if err := ng.Validate(); err != nil {
		t.Fatalf("reordered road graph invalid: %v", err)
	}
	if ng.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed %d -> %d", g.NumEdges(), ng.NumEdges())
	}
	if !ng.Undirected {
		t.Fatal("undirected flag lost")
	}
}

func TestApplyWeightedPreservesWeights(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.SetWeighted()
	b.AddEdge(0, 1, 11)
	b.AddEdge(1, 2, 22)
	g := b.Build("w")
	p := Permutation{2, 1, 0} // reverse
	ng := Apply(g, p)
	ws := ng.OutWeights(2) // old vertex 0
	if len(ws) != 1 || ws[0] != 11 {
		t.Fatalf("weight lost: %v", ws)
	}
}

func TestInDegreeReorderImprovesTopLocality(t *testing.T) {
	// After in-degree reordering, the top 20% of vertex IDs must hold at
	// least as much in-degree mass as any other 20% — i.e. vertex 0 is
	// the most connected (Figure 6 of the paper).
	g := testGraph(t)
	ng := Apply(g, Compute(g, InDegree))
	if ng.InDegree(0) < ng.InDegree(graph.VertexID(ng.NumVertices()-1)) {
		t.Fatal("vertex 0 should have the highest in-degree after reordering")
	}
	for v := 1; v < ng.NumVertices(); v++ {
		if ng.InDegree(graph.VertexID(v)) > ng.InDegree(0) {
			t.Fatalf("vertex %d has higher in-degree than vertex 0", v)
		}
	}
}

func TestSlashBurnPutsHubFirst(t *testing.T) {
	// Star graph: the hub must end up at the front.
	n := 50
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: 0, Weight: 1})
	}
	g := graph.FromEdges(n, false, edges, "star")
	p := Compute(g, SlashBurn)
	if p[0] != 0 {
		t.Fatalf("hub should get new ID 0, got %d", p[0])
	}
}

func TestPermutationInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 1 + r.Intn(100)
		perm := r.Perm(n)
		p := make(Permutation, n)
		for i, v := range perm {
			p[i] = graph.VertexID(v)
		}
		inv := p.Inverse()
		for old, nw := range p {
			if inv[nw] != graph.VertexID(old) {
				return false
			}
		}
		return p.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationValidRejectsDuplicates(t *testing.T) {
	p := Permutation{0, 0, 1}
	if p.Valid() {
		t.Fatal("duplicate mapping should be invalid")
	}
	p = Permutation{0, 5, 1}
	if p.Valid() {
		t.Fatal("out-of-range mapping should be invalid")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range allMethods() {
		if m.String() == "unknown" || m.String() == "" {
			t.Fatalf("method %d has no name", m)
		}
	}
	if Method(99).String() != "unknown" {
		t.Fatal("unknown method should say so")
	}
}
