package graph

import (
	"testing"
	"testing/quick"

	"omega/internal/stats"
)

func TestTransposeReversesEdges(t *testing.T) {
	g := FromEdges(4, false, []Edge{
		{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 2, Weight: 7}, {Src: 3, Dst: 0, Weight: 9},
	}, "t")
	tr := Transpose(g)
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if tr.OutDegree(1) != 1 || tr.OutNeighbors(1)[0] != 0 {
		t.Fatal("edge 0->1 should become 1->0")
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 4 + r.Intn(40)
		b := NewBuilder(n, false)
		b.SetWeighted()
		for i := 0; i < n*3; i++ {
			b.AddEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)), int32(1+r.Intn(9)))
		}
		b.Dedup()
		g := b.Build("p")
		tt := Transpose(Transpose(g))
		if tt.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a := g.OutNeighbors(VertexID(v))
			c := tt.OutNeighbors(VertexID(v))
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
			wa := g.OutWeights(VertexID(v))
			wc := tt.OutWeights(VertexID(v))
			for i := range wa {
				if wa[i] != wc[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeUndirected(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build("u")
	tr := Transpose(g)
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if tr.NumEdges() != g.NumEdges() || !tr.Undirected {
		t.Fatal("undirected transpose should be a copy")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(5, false, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 0},
	}, "ring")
	sub, remap := InducedSubgraph(g, []VertexID{0, 1, 2})
	if err := sub.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("vertices %d", sub.NumVertices())
	}
	// Kept edges: 0->1, 1->2. Edges 2->3, 3->4, 4->0 cross the cut.
	if sub.NumEdges() != 2 {
		t.Fatalf("edges %d, want 2", sub.NumEdges())
	}
	if remap[3] != ^VertexID(0) || remap[2] != 2 {
		t.Fatalf("remap wrong: %v", remap)
	}
}

func TestInducedSubgraphUndirectedAndWeighted(t *testing.T) {
	b := NewBuilder(4, true)
	b.SetWeighted()
	b.AddEdge(0, 1, 11)
	b.AddEdge(1, 2, 22)
	b.AddEdge(2, 3, 33)
	g := b.Build("w")
	sub, _ := InducedSubgraph(g, []VertexID{1, 2})
	if err := sub.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sub.NumEdges() != 2 { // one undirected edge = 2 arcs
		t.Fatalf("edges %d", sub.NumEdges())
	}
	if sub.OutWeights(0)[0] != 22 {
		t.Fatal("weight lost in subgraph")
	}
}

func TestLargestComponent(t *testing.T) {
	// Two components: a 4-ring (0-3) and an edge (4,5).
	g := FromEdges(6, false, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
		{Src: 4, Dst: 5},
	}, "two")
	lc := LargestComponent(g)
	if len(lc) != 4 {
		t.Fatalf("largest component size %d, want 4", len(lc))
	}
	for i, v := range lc {
		if v != VertexID(i) {
			t.Fatalf("component members %v", lc)
		}
	}
}

func TestLargestComponentWeakConnectivity(t *testing.T) {
	// Directionality must not split a weak component: 0->1<-2.
	g := FromEdges(3, false, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}, "weak")
	if len(LargestComponent(g)) != 3 {
		t.Fatal("weak connectivity should join all three")
	}
}
