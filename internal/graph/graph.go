// Package graph provides the compressed-sparse-row graph representation,
// degree statistics, and power-law characterization used throughout the
// OMEGA study (Table I of the paper).
//
// A Graph stores both outgoing and incoming adjacency in CSR form, exactly
// like Ligra: graph algorithms push along out-edges and pull along in-edges,
// and OMEGA's vertex placement is driven by in-degree.
package graph

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// VertexID identifies a vertex. IDs are dense in [0, NumVertices).
type VertexID = uint32

// Graph is a directed graph in CSR form. For undirected graphs every edge
// is stored in both directions and Undirected is set.
//
// The zero value is an empty graph.
type Graph struct {
	// OutOffsets has length NumVertices+1; the out-neighbors of v are
	// OutEdges[OutOffsets[v]:OutOffsets[v+1]].
	OutOffsets []uint64
	OutEdges   []VertexID
	// InOffsets/InEdges mirror the above for incoming edges.
	InOffsets []uint64
	InEdges   []VertexID
	// Weights[i] is the weight of OutEdges[i]; nil for unweighted graphs.
	Weights []int32
	// InWeights[i] is the weight of InEdges[i]; nil for unweighted graphs.
	InWeights []int32
	// Undirected records that the edge set is symmetric. NumEdges still
	// counts each stored (directed) arc once, matching Ligra.
	Undirected bool
	// Name labels the dataset in experiment output (e.g. "rmat-18").
	Name string
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int {
	if len(g.OutOffsets) == 0 {
		return 0
	}
	return len(g.OutOffsets) - 1
}

// NumEdges returns the number of stored directed arcs.
func (g *Graph) NumEdges() int { return len(g.OutEdges) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.OutOffsets[v+1] - g.OutOffsets[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.InOffsets[v+1] - g.InOffsets[v])
}

// OutNeighbors returns the out-neighbor slice of v. The caller must not
// modify the result.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]]
}

// InNeighbors returns the in-neighbor slice of v. The caller must not
// modify the result.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.InEdges[g.InOffsets[v]:g.InOffsets[v+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(v), or nil for an
// unweighted graph.
func (g *Graph) OutWeights(v VertexID) []int32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.OutOffsets[v]:g.OutOffsets[v+1]]
}

// InWeights returns the weights parallel to InNeighbors(v), or nil for an
// unweighted graph.
func (g *Graph) InWeightsOf(v VertexID) []int32 {
	if g.InWeights == nil {
		return nil
	}
	return g.InWeights[g.InOffsets[v]:g.InOffsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// Validate checks structural invariants: monotone offsets, in/out edge
// count agreement, neighbor IDs in range, and (for undirected graphs)
// symmetry of the adjacency structure. It is used by tests and loaders.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.InOffsets) != len(g.OutOffsets) {
		return fmt.Errorf("graph: in/out offset length mismatch: %d vs %d",
			len(g.InOffsets), len(g.OutOffsets))
	}
	if len(g.OutOffsets) > 0 {
		if g.OutOffsets[0] != 0 || g.InOffsets[0] != 0 {
			return fmt.Errorf("graph: offsets must start at 0")
		}
		if g.OutOffsets[n] != uint64(len(g.OutEdges)) {
			return fmt.Errorf("graph: out offset end %d != %d edges",
				g.OutOffsets[n], len(g.OutEdges))
		}
		if g.InOffsets[n] != uint64(len(g.InEdges)) {
			return fmt.Errorf("graph: in offset end %d != %d edges",
				g.InOffsets[n], len(g.InEdges))
		}
	}
	if len(g.InEdges) != len(g.OutEdges) {
		return fmt.Errorf("graph: in-edge count %d != out-edge count %d",
			len(g.InEdges), len(g.OutEdges))
	}
	if g.Weights != nil && len(g.Weights) != len(g.OutEdges) {
		return fmt.Errorf("graph: weight count %d != edge count %d",
			len(g.Weights), len(g.OutEdges))
	}
	if g.InWeights != nil && len(g.InWeights) != len(g.InEdges) {
		return fmt.Errorf("graph: in-weight count %d != edge count %d",
			len(g.InWeights), len(g.InEdges))
	}
	for v := 0; v < n; v++ {
		if g.OutOffsets[v] > g.OutOffsets[v+1] {
			return fmt.Errorf("graph: out offsets not monotone at %d", v)
		}
		if g.InOffsets[v] > g.InOffsets[v+1] {
			return fmt.Errorf("graph: in offsets not monotone at %d", v)
		}
	}
	for i, u := range g.OutEdges {
		if int(u) >= n {
			return fmt.Errorf("graph: out edge %d target %d out of range", i, u)
		}
	}
	for i, u := range g.InEdges {
		if int(u) >= n {
			return fmt.Errorf("graph: in edge %d target %d out of range", i, u)
		}
	}
	// Spot-check in/out consistency: the in-degree sum per target computed
	// from out-edges must equal the stored in-degrees.
	inDeg := make([]uint64, n)
	for _, u := range g.OutEdges {
		inDeg[u]++
	}
	for v := 0; v < n; v++ {
		if got := g.InOffsets[v+1] - g.InOffsets[v]; got != inDeg[v] {
			return fmt.Errorf("graph: vertex %d stored in-degree %d, out-edges imply %d",
				v, got, inDeg[v])
		}
	}
	if g.Undirected {
		if err := g.checkSymmetric(); err != nil {
			return err
		}
	}
	return nil
}

func (g *Graph) checkSymmetric() error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.OutNeighbors(VertexID(v)) {
			if !contains(g.OutNeighbors(u), VertexID(v)) {
				return fmt.Errorf("graph: undirected but edge %d->%d has no reverse", v, u)
			}
		}
	}
	return nil
}

func contains(s []VertexID, x VertexID) bool {
	// Neighbor lists are sorted by Builder.Build, so binary search.
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// Edge is a directed (possibly weighted) arc used by builders and loaders.
type Edge struct {
	Src, Dst VertexID
	Weight   int32
}

// Builder accumulates edges and produces a CSR Graph.
type Builder struct {
	n          int
	edges      []Edge
	undirected bool
	weighted   bool
	// deduped records that edges are (src,dst)-sorted with unique keys
	// (established by Dedup, broken by AddEdge), letting Build skip both
	// of its sorts: the out fill consumes the existing order directly,
	// and scattering that same order into the in buckets yields each
	// in-list ascending by source — exactly the (dst,src) sort's result,
	// since unique keys admit only one sorted permutation.
	deduped bool
}

// NewBuilder returns a builder for a graph with n vertices.
// If undirected is true, AddEdge(u,v) also stores (v,u).
func NewBuilder(n int, undirected bool) *Builder {
	return &Builder{n: n, undirected: undirected}
}

// SetWeighted declares that edges carry weights.
func (b *Builder) SetWeighted() { b.weighted = true }

// AddEdge records an edge; self-loops are kept, duplicates are kept
// (deduplicate with Dedup before Build if needed).
func (b *Builder) AddEdge(src, dst VertexID, weight int32) {
	if int(src) >= b.n || int(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge %d->%d out of range n=%d", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst, weight})
	if b.undirected && src != dst {
		b.edges = append(b.edges, Edge{dst, src, weight})
	}
	b.deduped = false
}

// NumEdgesAdded returns the number of stored arcs so far.
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Dedup removes duplicate (src,dst) pairs, keeping the first weight, and
// removes self-loops. Useful for synthetic generators.
func (b *Builder) Dedup() {
	if b.weighted {
		// Weighted: "the first weight" after sorting depends on the
		// comparator sort's (unstable) ordering of equal (src,dst) keys,
		// so the sort algorithm is part of the observable behaviour.
		slices.SortFunc(b.edges, func(x, y Edge) int {
			if x.Src != y.Src {
				return cmp.Compare(x.Src, y.Src)
			}
			return cmp.Compare(x.Dst, y.Dst)
		})
	} else {
		// Unweighted: weights are never materialized by Build, so edges
		// with equal (src,dst) are observably identical and any sorted
		// permutation dedups to the same result — a radix sort is free to
		// replace the comparator sort.
		radixSortEdges(b.edges)
	}
	out := b.edges[:0]
	var last Edge
	haveLast := false
	for _, e := range b.edges {
		if e.Src == e.Dst {
			continue
		}
		if haveLast && e.Src == last.Src && e.Dst == last.Dst {
			continue
		}
		out = append(out, e)
		last = e
		haveLast = true
	}
	b.edges = out
	b.deduped = true
}

// radixSortEdges sorts edges by (Src, Dst) with an LSD counting sort over
// the packed 64-bit key — four 16-bit digit passes, each stable, so the
// result is fully sorted. Used on the unweighted Dedup path, where equal
// keys carry no observable payload and tie order cannot matter.
func radixSortEdges(edges []Edge) {
	if len(edges) < 64 {
		slices.SortFunc(edges, func(x, y Edge) int {
			if x.Src != y.Src {
				return cmp.Compare(x.Src, y.Src)
			}
			return cmp.Compare(x.Dst, y.Dst)
		})
		return
	}
	key := func(e Edge) uint64 { return uint64(e.Src)<<32 | uint64(e.Dst) }
	tmp := make([]Edge, len(edges))
	count := make([]uint32, 1<<16)
	src, dst := edges, tmp
	for pass := 0; pass < 4; pass++ {
		shift := uint(16 * pass)
		// Skip a pass whose digit is constant across all edges (common for
		// the high halves of Src/Dst on small graphs).
		first := key(src[0]) >> shift & 0xffff
		constant := true
		for i := range src {
			d := key(src[i]) >> shift & 0xffff
			count[d]++
			if d != first {
				constant = false
			}
		}
		if constant {
			count[first] = 0
			continue
		}
		var sum uint32
		for d := range count {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := key(src[i]) >> shift & 0xffff
			dst[count[d]] = src[i]
			count[d]++
		}
		clear(count)
		src, dst = dst, src
	}
	if &src[0] != &edges[0] {
		copy(edges, src)
	}
}

// Build produces the CSR graph. Neighbor lists are sorted by target ID.
func (b *Builder) Build(name string) *Graph {
	g := &Graph{
		Name:       name,
		Undirected: b.undirected,
		OutOffsets: make([]uint64, b.n+1),
		InOffsets:  make([]uint64, b.n+1),
		OutEdges:   make([]VertexID, len(b.edges)),
		InEdges:    make([]VertexID, len(b.edges)),
	}
	if b.weighted {
		g.Weights = make([]int32, len(b.edges))
		g.InWeights = make([]int32, len(b.edges))
	}
	// Count degrees.
	for _, e := range b.edges {
		g.OutOffsets[e.Src+1]++
		g.InOffsets[e.Dst+1]++
	}
	for v := 0; v < b.n; v++ {
		g.OutOffsets[v+1] += g.OutOffsets[v]
		g.InOffsets[v+1] += g.InOffsets[v]
	}
	// Fill, sorted by (src, dst) for out and (dst, src) for in. A deduped
	// builder skips both sorts (see the deduped field).
	if !b.deduped {
		slices.SortFunc(b.edges, func(x, y Edge) int {
			if x.Src != y.Src {
				return cmp.Compare(x.Src, y.Src)
			}
			return cmp.Compare(x.Dst, y.Dst)
		})
	}
	outPos := make([]uint64, b.n)
	for _, e := range b.edges {
		p := g.OutOffsets[e.Src] + outPos[e.Src]
		g.OutEdges[p] = e.Dst
		if b.weighted {
			g.Weights[p] = e.Weight
		}
		outPos[e.Src]++
	}
	if !b.deduped {
		slices.SortFunc(b.edges, func(x, y Edge) int {
			if x.Dst != y.Dst {
				return cmp.Compare(x.Dst, y.Dst)
			}
			return cmp.Compare(x.Src, y.Src)
		})
	}
	inPos := make([]uint64, b.n)
	for _, e := range b.edges {
		p := g.InOffsets[e.Dst] + inPos[e.Dst]
		g.InEdges[p] = e.Src
		if b.weighted {
			g.InWeights[p] = e.Weight
		}
		inPos[e.Dst]++
	}
	return g
}

// FromEdges is a convenience wrapper: build a graph from an edge list.
func FromEdges(n int, undirected bool, edges []Edge, name string) *Graph {
	b := NewBuilder(n, undirected)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst, e.Weight)
	}
	return b.Build(name)
}
