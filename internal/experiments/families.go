package experiments

import (
	"fmt"

	"omega/internal/graph"
	"omega/internal/graph/gen"
)

// BuildFamily generates a graph from one of the named synthetic families —
// the shared dataset constructor behind cmd/omega-sim, cmd/graphgen, and
// ad-hoc studies. Families: "rmat", "ba", "er", "road".
func BuildFamily(family string, scale int, seed uint64, undirected, weighted bool) (*graph.Graph, error) {
	if scale < 2 || scale > 30 {
		return nil, fmt.Errorf("experiments: scale %d out of range", scale)
	}
	n := 1 << scale
	switch family {
	case "rmat":
		cfg := gen.DefaultRMAT(scale, seed)
		cfg.Undirected = undirected
		cfg.Weighted = weighted
		return gen.RMAT(cfg), nil
	case "ba":
		return gen.BarabasiAlbert(gen.BAConfig{
			NumVertices:      n,
			EdgesPerVertex:   12,
			Seed:             seed,
			Undirected:       undirected,
			Weighted:         weighted,
			BackEdgeFraction: 0.3,
		}), nil
	case "er":
		return gen.ErdosRenyi(gen.ERConfig{
			NumVertices: n, NumEdges: 16 * n, Seed: seed,
			Undirected: undirected, Weighted: weighted,
		}), nil
	case "road":
		return gen.RoadGrid(gen.RoadConfig{
			Side: 1 << (scale / 2), ExtraFraction: 0.1, Seed: seed,
			Weighted: weighted,
		}), nil
	case "ws":
		return gen.WattsStrogatz(gen.WSConfig{
			NumVertices: n, K: 8, Beta: 0.1, Seed: seed, Weighted: weighted,
		}), nil
	}
	return nil, fmt.Errorf("experiments: unknown graph family %q (want rmat, ba, er, road, ws)", family)
}

// Families lists the synthetic family names BuildFamily accepts.
func Families() []string { return []string{"rmat", "ba", "er", "road", "ws"} }
