package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/ligra"
	"omega/internal/memsys"
	"omega/internal/obs"
)

// TestCellSingleflight pins the dedup contract under -race: N
// goroutines requesting the same not-yet-built cell must trigger
// exactly one build, with every other request blocking on the in-flight
// builder and sharing its result.
func TestCellSingleflight(t *testing.T) {
	c := NewCellCache()
	key := CellKey{Config: "cfg", Workload: "w"}
	var builds atomic.Uint64
	release := make(chan struct{})
	const n = 16
	cells := make([]Cell, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells[i], _ = c.getOrRun(key, func() Cell {
				builds.Add(1)
				<-release // hold every other goroutine in the dedup path
				return Cell{Stats: core.MachineStats{Cycles: 42}}
			})
		}()
	}
	// Let the non-builders reach the wait before releasing the build, so
	// the dedup path is actually exercised (not just sequential hits).
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("builds=%d misses=%d, want exactly one build", builds.Load(), st.Misses)
	}
	if st.Hits+st.Dedups != n-1 {
		t.Fatalf("hits=%d dedups=%d, want %d shared requests", st.Hits, st.Dedups, n-1)
	}
	for i, cell := range cells {
		if cell.Stats.Cycles != 42 {
			t.Fatalf("goroutine %d got stats %+v, want the shared build", i, cell.Stats)
		}
	}
	if st.Resident != 1 {
		t.Fatalf("resident=%d, want 1", st.Resident)
	}
}

// TestCellBuildPanicLeavesKeyRebuildable pins the failure contract: a
// builder panic evicts the entry (the key stays rebuildable) and
// concurrent waiters retry instead of sharing the panic — one of them
// becomes the next builder.
func TestCellBuildPanicLeavesKeyRebuildable(t *testing.T) {
	c := NewCellCache()
	key := CellKey{Config: "cfg", Workload: "w"}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("builder panic did not propagate")
			}
		}()
		c.getOrRun(key, func() Cell { panic("boom") })
	}()
	if c.Len() != 0 {
		t.Fatalf("failed build left %d entries resident", c.Len())
	}

	// Concurrent waiters on a panicking builder must retry; exactly one
	// retry rebuilds, the rest share it.
	var builds atomic.Uint64
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		c.getOrRun(key, func() Cell {
			close(started)
			time.Sleep(10 * time.Millisecond) // let waiters pile up
			panic("boom")
		})
	}()
	<-started
	const n = 4
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells[i], _ = c.getOrRun(key, func() Cell {
				builds.Add(1)
				return Cell{Stats: core.MachineStats{Cycles: 7}}
			})
		}()
	}
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Fatalf("rebuilds=%d, want exactly one after the failed build", b)
	}
	for i, cell := range cells {
		if cell.Stats.Cycles != 7 {
			t.Fatalf("waiter %d got %+v, want the retried build", i, cell.Stats)
		}
	}
}

// accessSinkStub upgrades a buffer to the per-access extension, which
// makes attached runs uncacheable (replay cannot synthesize events).
type accessSinkStub struct{ obs.Buffer }

func (s *accessSinkStub) Access(memsys.Cycles, memsys.Access, memsys.Result) {}

var _ obs.AccessSink = (*accessSinkStub)(nil)

// TestUncacheableReasons pins the bypass classification: non-dataset
// graphs, non-registry workloads, and event-hungry sinks must simulate
// directly, each under its counted reason.
func TestUncacheableReasons(t *testing.T) {
	spec, _ := algorithms.ByName("PageRank")
	o := Options{Scale: 9, Seed: 42, Coverage: 0.20}.Defaults()
	pr := prepareDataset(mustDataset("rmat"), o, false)

	if r := o.uncacheableReason(spec, pr); r != "" {
		t.Fatalf("registry spec on keyed dataset classified %q, want cacheable", r)
	}
	if r := o.uncacheableReason(spec, prepared{g: pr.g}); r != UncacheableGraph {
		t.Fatalf("unkeyed graph classified %q, want %q", r, UncacheableGraph)
	}
	if r := o.uncacheableReason(customSpec(spec), pr); r != UncacheableWorkload {
		t.Fatalf("custom workload classified %q, want %q", r, UncacheableWorkload)
	}
	oSink := o
	oSink.sink = &accessSinkStub{}
	if r := oSink.uncacheableReason(spec, pr); r != UncacheableSink {
		t.Fatalf("access sink classified %q, want %q", r, UncacheableSink)
	}
}

// TestDispatchOrder pins the longest-job-first scheduling: hinted specs
// dispatch by descending wall time, unhinted specs first in declaration
// order, and an empty hint map preserves declaration order exactly.
func TestDispatchOrder(t *testing.T) {
	specs := []Spec{{ID: "a"}, {ID: "b"}, {ID: "c"}, {ID: "d"}}
	if got := dispatchOrder(specs, nil); !equalInts(got, []int{0, 1, 2, 3}) {
		t.Fatalf("no hints: dispatch %v, want declaration order", got)
	}
	hints := map[string]time.Duration{
		"a": 1 * time.Second,
		"b": 5 * time.Second,
		"d": 3 * time.Second,
	}
	// c is unhinted → first; then b (5s), d (3s), a (1s).
	if got := dispatchOrder(specs, hints); !equalInts(got, []int{2, 1, 3, 0}) {
		t.Fatalf("dispatch %v, want [2 1 3 0] (unhinted first, then longest-first)", got)
	}
	tie := map[string]time.Duration{"a": time.Second, "b": time.Second, "c": 2 * time.Second, "d": time.Second}
	if got := dispatchOrder(specs, tie); !equalInts(got, []int{2, 0, 1, 3}) {
		t.Fatalf("dispatch %v, want stable declaration order on equal hints", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// customSpec returns spec with a fresh Run closure wrapping the
// original — same behaviour, different code identity, which is exactly
// what makes it uncacheable.
func customSpec(spec algorithms.Spec) algorithms.Spec {
	orig := spec.Run
	spec.Run = func(fw *ligra.Framework) core.MachineStats { return orig(fw) }
	return spec
}

// TestGoldenBitIdentityWithCellCache re-runs the full registry with one
// shared cell cache and compares every table byte-for-byte against the
// same goldens the uncached test uses. This pins the tentpole contract:
// cached and replayed cells are indistinguishable from fresh
// simulations, and the sharing must actually occur (hits > 0).
func TestGoldenBitIdentityWithCellCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden comparison skipped in -short mode")
	}
	cells := NewCellCache()
	opts := Options{Scale: 9, Seed: 42, Coverage: 0.20, Cells: cells}
	for _, spec := range Registry() {
		spec := spec
		t.Run(strings.ReplaceAll(spec.ID, " ", "_"), func(t *testing.T) {
			name := strings.ReplaceAll(strings.ToLower(spec.ID), " ", "_") + ".tsv"
			path := filepath.Join("testdata", "golden-scale9-seed42", name)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s: %v", path, err)
			}
			tbl := spec.Run(opts)
			if tbl == nil {
				t.Fatal("experiment returned nil table")
			}
			if tbl.Failed {
				t.Fatalf("experiment failed: %s", tbl.Title)
			}
			if got := tbl.TSV(); got != string(want) {
				t.Errorf("output diverged from golden %s with cell cache enabled\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
	st := cells.Stats()
	if st.Hits == 0 {
		t.Errorf("cell cache saw no hits across the registry; stats %+v", st)
	}
	if st.Misses == 0 {
		t.Errorf("cell cache saw no builds; stats %+v", st)
	}
	t.Logf("cell cache across registry: %d hits / %d misses (%d dedup), %d resident, duplicate rate %.1f%%, uncacheable %v",
		st.Hits, st.Misses, st.Dedups, st.Resident, 100*st.DuplicateRate(), st.Uncacheable)
}

// TestGoldenMetricsWithCellCache pins the replay contract for metric
// streams: with a shared cell cache, the metrics-attached goldens must
// stay byte-identical even when a spec's cells replay from another
// experiment's build (the subset includes Figure 3 and Figure 14, which
// share rmat baseline cells under different run-labeling conventions).
func TestGoldenMetricsWithCellCache(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison skipped in -short mode")
	}
	cells := NewCellCache()
	for _, id := range metricsGoldenSpecs {
		spec, ok := SpecByID(id)
		if !ok {
			t.Fatalf("unknown spec %q", id)
		}
		t.Run(strings.ReplaceAll(id, " ", "_"), func(t *testing.T) {
			name := strings.ReplaceAll(strings.ToLower(id), " ", "_") + ".tsv"
			path := filepath.Join("testdata", "golden-scale9-seed42", name)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s: %v", path, err)
			}
			buf := obs.NewBuffer()
			opts := Options{Scale: 9, Seed: 42, Coverage: 0.20, Metrics: buf, Cells: cells}
			tbl := RunSafe(context.Background(), spec, opts, 0)
			if tbl.Failed {
				t.Fatalf("experiment failed: %s", tbl.Title)
			}
			if got := tbl.TSV(); got != string(want) {
				t.Errorf("output diverged from golden %s with cell cache + metrics\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
			goldenPath := filepath.Join("testdata", "golden-scale9-seed42", "metrics",
				strings.ReplaceAll(strings.ToLower(id), " ", "_")+".tsv")
			if _, err := os.Stat(goldenPath); err == nil {
				wantStream, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatal(err)
				}
				if got := encodeTSV(t, buf.Drain()); got != string(wantStream) {
					t.Errorf("metric stream diverged from golden %s with cell cache enabled", goldenPath)
				}
			} else {
				samples := buf.Drain()
				if len(samples) == 0 {
					t.Fatalf("no metric samples emitted for %s", id)
				}
				for _, s := range samples {
					if s.Experiment != id {
						t.Fatalf("sample not stamped with experiment ID: %+v", s)
					}
				}
			}
		})
	}
	if st := cells.Stats(); st.Hits == 0 {
		t.Errorf("metrics subset produced no cell hits (Figure 3 / Figure 14 should share); stats %+v", st)
	}
}

// TestSuiteCellCacheEquivalence pins the kill switch: a suite run with
// NoCellCache must produce tables identical to the cached default, and
// the default must actually exercise the cache.
func TestSuiteCellCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run suite comparison skipped in -short mode")
	}
	var specs []Spec
	for _, id := range []string{"Figure 3", "Figure 14", "Figure 19"} {
		spec, ok := SpecByID(id)
		if !ok {
			t.Fatalf("unknown spec %q", id)
		}
		specs = append(specs, spec)
	}
	render := func(noCells bool) ([]string, *SuiteResult) {
		opts := Options{Scale: 9, Seed: 42, Coverage: 0.20, Parallelism: 2, NoCellCache: noCells}
		res := Suite(context.Background(), specs, opts, nil)
		if n := res.Failed(); n > 0 {
			t.Fatalf("suite (noCells=%v): %d experiments failed", noCells, n)
		}
		out := make([]string, len(res.Tables))
		for i, tbl := range res.Tables {
			out[i] = tbl.TSV()
		}
		return out, res
	}
	cached, cres := render(false)
	direct, dres := render(true)
	for i := range cached {
		if cached[i] != direct[i] {
			t.Errorf("%s diverged between cached and -no-cell-cache runs", specs[i].ID)
		}
	}
	if cres.Cells == nil {
		t.Fatal("default suite did not install a cell cache")
	}
	if st := cres.Cells.Stats(); st.Hits+st.Dedups == 0 {
		t.Errorf("default suite saw no cell sharing; stats %+v", st)
	}
	if dres.Cells != nil {
		t.Error("NoCellCache suite still carried a cell cache")
	}
	var cellTotal uint64
	for _, te := range cres.Telemetry {
		cellTotal += te.Cells
	}
	if cellTotal == 0 {
		t.Error("telemetry recorded no cells for the cached suite")
	}
}

// encodeTSV renders samples through the TSV writer for stream
// comparison.
func encodeTSV(t *testing.T, samples []obs.MetricSample) string {
	t.Helper()
	var sb strings.Builder
	w := obs.NewTSVWriter(&sb)
	for _, s := range samples {
		w.Sample(s)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
