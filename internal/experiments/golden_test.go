package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenBitIdentity regenerates every registered experiment at a
// small fixed configuration (scale 9, seed 42, coverage 0.20) and
// compares the TSV rendering byte-for-byte against goldens committed in
// testdata/. The goldens were produced by the straightforward
// pre-optimization simulator, so this test pins the contract of the
// performance work on the access path, coherence directory, and core
// scheduler: faster, but bit-identical results.
//
// If a deliberate modeling change shifts the numbers, regenerate with:
//
//	go run ./cmd/omega-bench -scale 9 -seed 42 \
//	    -tsv internal/experiments/testdata/golden-scale9-seed42
func TestGoldenBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden comparison skipped in -short mode")
	}
	goldenSuite(t, Options{Scale: 9, Seed: 42, Coverage: 0.20})
}

// TestGoldenBitIdentityNoBatch repeats the golden comparison with run-fold
// access batching disabled (the omega-bench -no-batch path), pinning that
// the batched and serial access paths produce the same bytes — and that
// neither diverged from the pre-optimization goldens. The miss-path
// machinery is exercised differently in the two modes (the serial path
// takes the per-access probe route the batch folds away), so this guards
// both sides of the refactor.
func TestGoldenBitIdentityNoBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden comparison skipped in -short mode")
	}
	goldenSuite(t, Options{Scale: 9, Seed: 42, Coverage: 0.20, SerialAccess: true})
}

func goldenSuite(t *testing.T, opts Options) {
	for _, spec := range Registry() {
		spec := spec
		t.Run(strings.ReplaceAll(spec.ID, " ", "_"), func(t *testing.T) {
			name := strings.ReplaceAll(strings.ToLower(spec.ID), " ", "_") + ".tsv"
			path := filepath.Join("testdata", "golden-scale9-seed42", name)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s: %v", path, err)
			}
			tbl := spec.Run(opts)
			if tbl == nil {
				t.Fatal("experiment returned nil table")
			}
			if tbl.Failed {
				t.Fatalf("experiment failed: %s", tbl.Title)
			}
			got := tbl.TSV()
			if got != string(want) {
				t.Errorf("output diverged from golden %s\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}
