package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestWriteHTMLReport(t *testing.T) {
	tbl := &Table{
		ID: "Figure 14", Title: "speedups",
		Header: []string{"dataset", "speedup"},
		Notes:  []string{"paper: 2x"},
	}
	tbl.AddRow("rmat", 3.0)
	tbl.AddRow("road", 1.0)
	plain := &Table{ID: "Table I", Title: "datasets", Header: []string{"name", "#v"}}
	plain.AddRow("rmat", 8192)

	var sb strings.Builder
	meta := ReportMeta{
		Options:   Options{Scale: 13, Seed: 42, Coverage: 0.2},
		Generated: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		Runtime:   3 * time.Second,
	}
	if err := WriteHTMLReport(&sb, meta, []*Table{tbl, plain}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"OMEGA reproduction report", "Figure 14", "speedups",
		"class=\"bar\"", "paper: 2x", "Table I", "scale 2^13",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// The speedup column gets bars; the plain table does not.
	if strings.Count(out, "class=\"bar\"") != 2 {
		t.Fatalf("expected 2 bars, got %d", strings.Count(out, "class=\"bar\""))
	}
}

func TestBarColumnSelection(t *testing.T) {
	withBar := &Table{Header: []string{"x", "traffic reduction x"}}
	if barColumn(withBar) != 1 {
		t.Fatal("reduction column should be charted")
	}
	without := &Table{Header: []string{"x", "count"}}
	if barColumn(without) != -1 {
		t.Fatal("plain tables get no bars")
	}
}

func TestReportHandlesNonNumericBars(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Header: []string{"a", "speedup"}}
	tbl.AddRow("r", "-") // unparsable
	var sb strings.Builder
	if err := WriteHTMLReport(&sb, ReportMeta{}, []*Table{tbl}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "class=\"bar\"") {
		t.Fatal("non-numeric column should render no bars")
	}
}
