package experiments

import (
	"fmt"
	"math"

	"omega/internal/algorithms"
	"omega/internal/analytical"
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/power"
)

// datasetFor picks the right dataset variant for an algorithm, mirroring
// the paper ("CC and TC require symmetric graphs, hence we run them on one
// of the undirected-graph datasets").
func datasetFor(spec algorithms.Spec, ds Dataset) (Dataset, bool) {
	if spec.NeedsUndirected && !ds.Undirected {
		return Dataset{}, false
	}
	return ds, true
}

// runPair runs one algorithm on one dataset on both machines. The
// dataset is built (or fetched from the shared cache) before the two
// machine variants fan out concurrently; see runVariants.
func runPair(spec algorithms.Spec, ds Dataset, o Options) (base, om core.MachineStats, pr prepared) {
	weighted := spec.Name == "SSSP"
	pr = prepareDataset(ds, o, weighted)
	bCfg, oCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
	res := runMachines(o, spec, pr, bCfg, oCfg)
	return res[0], res[1], pr
}

// Figure3 reproduces the TMAM execution breakdown: graph workloads are
// backend-bound, dominated by memory wait time (paper: ~71% memory-bound
// on average).
func Figure3(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Figure 3",
		Title:  "TMAM execution breakdown on the baseline CMP",
		Header: []string{"workload", "retiring%", "frontend%", "backend%", "memory-bound%"},
	}
	specs := algorithms.All()
	fns := make([]func() core.MachineStats, len(specs))
	for i, spec := range specs {
		fns[i] = func() core.MachineStats {
			ds := mustDataset("rmat")
			if spec.NeedsUndirected {
				ds = mustDataset("apu")
			}
			pr := prepareDataset(ds, o, spec.Name == "SSSP")
			bCfg, _ := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
			// The run label stays the bare dataset name (the historical
			// machinesFor convention) so the metric-stream goldens are
			// unchanged; the cell itself is shared with Figure 14 and
			// friends regardless of label.
			return runCell(o, spec, pr, bCfg, pr.g.Name)
		}
	}
	var memSum float64
	var n int
	for i, st := range runVariants(o, fns...) {
		tot := float64(st.TMAM.Total())
		if tot == 0 {
			continue
		}
		mem := 100 * float64(st.TMAM.MemoryBound) / tot
		t.AddRow(specs[i].Name,
			100*float64(st.TMAM.Retiring)/tot,
			100*float64(st.TMAM.Frontend)/tot,
			100*float64(st.TMAM.MemoryBound+st.TMAM.CoreBound)/tot,
			mem)
		memSum += mem
		n++
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average memory-bound %.1f%% (paper: ~71%%; same conclusion — memory dominates)",
		memSum/float64(n)))
	return t
}

// Figure4a reproduces the baseline cache hit-rate profile (paper: below
// 50% on L2 and LLC for most workloads).
func Figure4a(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Figure 4a",
		Title:  "baseline cache hit rates per workload",
		Header: []string{"workload", "dataset", "L1%", "L2(LLC)%"},
	}
	type cell struct {
		ds string
		st core.MachineStats
	}
	specs := algorithms.All()
	fns := make([]func() cell, len(specs))
	for i, spec := range specs {
		fns[i] = func() cell {
			ds := mustDataset("rmat")
			if spec.NeedsUndirected {
				ds = mustDataset("apu")
			}
			pr := prepareDataset(ds, o, spec.Name == "SSSP")
			bCfg, _ := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
			return cell{ds.Name, runCell(o, spec, pr, bCfg, pr.g.Name)}
		}
	}
	for i, c := range runVariants(o, fns...) {
		t.AddRow(specs[i].Name, c.ds, 100*c.st.L1HitRate, 100*c.st.L2HitRate)
	}
	return t
}

// Figure4b reproduces the access-skew measurement: the share of vtxProp
// accesses that target the 20% most-connected vertices (paper: >75%).
func Figure4b(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Figure 4b",
		Title:  "share of vtxProp accesses to the top-20% most-connected vertices",
		Header: []string{"workload", "dataset", "top-20% access share %"},
	}
	type cell struct {
		ds    string
		share float64
	}
	specs := algorithms.All()
	fns := make([]func() cell, len(specs))
	for i, spec := range specs {
		fns[i] = func() cell {
			ds := mustDataset("rmat")
			if spec.NeedsUndirected {
				ds = mustDataset("apu")
			}
			pr := prepareDataset(ds, o, spec.Name == "SSSP")
			mb, _ := machinesFor(pr.g, spec.VtxPropBytes, o)
			mb.EnableVertexProfile(pr.g.NumVertices())
			spec.Run(ligra.New(mb, pr.g))
			return cell{ds.Name, graph.AccessShareToTopK(pr.g, mb.VertexProfile(), 0.20)}
		}
	}
	for i, c := range runVariants(o, fns...) {
		t.AddRow(specs[i].Name, c.ds, 100*c.share)
	}
	t.Notes = append(t.Notes, "paper: consistently over 75% on power-law graphs")
	return t
}

// Figure5 reproduces the heat map: the Figure 4b metric across the full
// algorithm × dataset grid.
func Figure5(o Options) *Table {
	o = o.Defaults()
	specs := algorithms.All()
	t := &Table{
		ID:    "Figure 5",
		Title: "heat map: % of vtxProp accesses to top-20% vertices",
	}
	t.Header = []string{"dataset"}
	for _, s := range specs {
		t.Header = append(t.Header, s.Name)
	}
	for _, ds := range StandardDatasets() {
		// One goroutine per supported algorithm cell; the whole row shares
		// the dataset, merged back in column order.
		fns := make([]func() string, len(specs))
		for i, spec := range specs {
			if _, ok := datasetFor(spec, ds); !ok {
				fns[i] = func() string { return "-" }
				continue
			}
			fns[i] = func() string {
				pr := prepareDataset(ds, o, spec.Name == "SSSP")
				mb, _ := machinesFor(pr.g, spec.VtxPropBytes, o)
				mb.EnableVertexProfile(pr.g.NumVertices())
				spec.Run(ligra.New(mb, pr.g))
				share := graph.AccessShareToTopK(pr.g, mb.VertexProfile(), 0.20)
				return fmt.Sprintf("%.0f", 100*share)
			}
		}
		t.Rows = append(t.Rows, append([]string{ds.Name}, runVariants(o, fns...)...))
	}
	t.Notes = append(t.Notes,
		"paper: ~90-100 on power-law datasets, ~20-30 on road networks")
	return t
}

// Figure14 reproduces the headline speedup grid: OMEGA vs baseline for
// every algorithm × dataset combination (paper: 2x on average, PageRank
// highest at ~2.8x, TC limited).
func Figure14(o Options) *Table {
	o = o.Defaults()
	specs := algorithms.All()
	t := &Table{
		ID:    "Figure 14",
		Title: "OMEGA speedup over the baseline CMP",
	}
	t.Header = []string{"dataset"}
	for _, s := range specs {
		t.Header = append(t.Header, s.Name)
	}
	logSum, n := 0.0, 0
	for _, ds := range StandardDatasets() {
		row := []string{ds.Name}
		for _, spec := range specs {
			if _, ok := datasetFor(spec, ds); !ok {
				row = append(row, "-")
				continue
			}
			base, om, _ := runPair(spec, ds, o)
			sp := om.Speedup(base)
			row = append(row, fmt.Sprintf("%.2f", sp))
			if sp > 0 {
				logSum += math.Log(sp)
				n++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	gm := math.Exp(logSum / float64(n))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"geometric mean %.2fx over %d runs (paper: 2x on average)", gm, n))
	return t
}

// Figure15 reproduces the last-level storage hit rate comparison for
// PageRank (paper: baseline 44%, OMEGA over 75%).
func Figure15(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Figure 15",
		Title:  "last-level storage hit rate, PageRank",
		Header: []string{"dataset", "baseline LLC%", "omega L2+SP%"},
	}
	for _, ds := range StandardDatasets() {
		base, om, _ := runPair(spec, ds, o)
		t.AddRow(ds.Name, 100*base.LLCHitRate, 100*om.LLCHitRate)
	}
	t.Notes = append(t.Notes,
		"paper: 44% baseline vs >75% OMEGA on average")
	return t
}

// Figure16 reproduces DRAM bandwidth utilization for PageRank
// (paper: OMEGA improves utilization by 2.28x on average).
func Figure16(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Figure 16",
		Title:  "DRAM bandwidth utilization, PageRank",
		Header: []string{"dataset", "baseline util%", "omega util%", "improvement x"},
	}
	sum, n := 0.0, 0
	for _, ds := range StandardDatasets() {
		base, om, _ := runPair(spec, ds, o)
		imp := 0.0
		if base.DRAMUtilized > 0 {
			imp = om.DRAMUtilized / base.DRAMUtilized
		}
		t.AddRow(ds.Name, 100*base.DRAMUtilized, 100*om.DRAMUtilized, imp)
		sum += imp
		n++
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average improvement %.2fx (paper: 2.28x)", sum/float64(n)))
	return t
}

// Figure17 reproduces the on-chip traffic analysis for PageRank
// (paper: OMEGA reduces traffic by ~3.2x on average).
func Figure17(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:    "Figure 17",
		Title: "on-chip traffic, PageRank",
		Header: []string{"dataset", "baseline MB", "omega MB", "reduction x",
			"omega word MB", "omega line MB"},
	}
	sum, n := 0.0, 0
	for _, ds := range StandardDatasets() {
		base, om, _ := runPair(spec, ds, o)
		red := float64(base.NoCBytes) / float64(om.NoCBytes)
		t.AddRow(ds.Name,
			float64(base.NoCBytes)/(1<<20), float64(om.NoCBytes)/(1<<20), red,
			float64(om.NoCWordBytes)/(1<<20), float64(om.NoCLineBytes)/(1<<20))
		sum += red
		n++
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average reduction %.2fx (paper: ~3.2x)", sum/float64(n)))
	return t
}

// Figure18 reproduces the power-law vs non-power-law comparison
// (paper: OMEGA gains at most ~1.15x on the USA road graph).
func Figure18(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Figure 18",
		Title:  "power-law (social) vs non-power-law (road) speedups",
		Header: []string{"algorithm", "power-law speedup", "road speedup"},
	}
	for _, name := range []string{"PageRank", "BFS"} {
		spec, _ := algorithms.ByName(name)
		plBase, plOm, _ := runPair(spec, mustDataset("social"), o)
		rdBase, rdOm, _ := runPair(spec, mustDataset("road"), o)
		t.AddRow(name, plOm.Speedup(plBase), rdOm.Speedup(rdBase))
	}
	t.Notes = append(t.Notes,
		"paper: lj ~2-3x vs USA <=1.15x (road vtxProp lacks skew; only ~20% of",
		"accesses hit the top-20% vertices). Road graphs small enough to fit in SP",
		"still gain (rCA/rPA effect); the scaled SP here holds only 20%.")
	return t
}

// Figure19 reproduces the scratchpad size sensitivity study: OMEGA keeps
// most of its gain with half- and quarter-size scratchpads (paper: 1.4x
// PageRank / 1.5x BFS at 4MB = quarter size).
func Figure19(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Figure 19",
		Title:  "scratchpad size sensitivity (social dataset)",
		Header: []string{"algorithm", "coverage", "vtxProp access share%", "speedup"},
	}
	for _, name := range []string{"PageRank", "BFS"} {
		spec, _ := algorithms.ByName(name)
		pr := prepareDataset(mustDataset("social"), o, false)
		cum := graph.CumulativeDegreeShare(pr.g)
		for _, coverage := range []float64{0.20, 0.10, 0.05} {
			baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, 0.20)
			// Cap residency to emulate a smaller scratchpad while the
			// arrays stay 20%-sized; the paper shrinks the SRAM and keeps
			// the L2 fixed, with the same effect on coverage.
			omCfg.SPResidentCap = maxInt(int(coverage*float64(pr.g.NumVertices())), 1)
			res := runMachines(o, spec, pr, baseCfg, omCfg)
			baseSt, omSt := res[0], res[1]
			pct := int(coverage*100) - 1
			if pct < 0 {
				pct = 0
			}
			t.AddRow(name, fmt.Sprintf("%.0f%%", coverage*100),
				100*cum[pct], omSt.Speedup(baseSt))
		}
	}
	t.Notes = append(t.Notes,
		"paper: 1.4x (PageRank) and 1.5x (BFS) with quarter-size scratchpads")
	return t
}

// Figure20 reproduces the large-dataset study: the paper's high-level
// analytical model on uk-2002/twitter-2010-scale graphs, validated
// against the detailed simulator on a generatable graph.
func Figure20(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Figure 20",
		Title:  "large-dataset performance (high-level model)",
		Header: []string{"scenario", "coverage", "hot access share", "speedup"},
	}
	m := analytical.DefaultModel()
	scenarios := []analytical.Params{
		analytical.PageRankScenario("uk-2002/PR", 18.5e6, 298e6, 0.10, 0.60, 0.40),
		analytical.PageRankScenario("twitter/PR", 41.6e6, 1468e6, 0.05, 0.47, 0.35),
		analytical.BFSScenario("uk-2002/BFS", 18.5e6, 298e6, 0.10, 0.60, 0.40),
		analytical.BFSScenario("twitter/BFS", 41.6e6, 1468e6, 0.05, 0.47, 0.35),
	}
	for _, p := range scenarios {
		r := m.Estimate(p)
		t.AddRow(p.Name, fmt.Sprintf("%.0f%%", p.HotCoverage*100),
			fmt.Sprintf("%.0f%%", p.HotAccessShare*100), r.Speedup())
	}
	// Validation against the detailed simulator (paper: within 7%).
	spec, _ := algorithms.ByName("PageRank")
	base, om, pr := runPair(spec, mustDataset("rmat"), o)
	detailed := om.Speedup(base)
	cum := graph.CumulativeDegreeShare(pr.g)
	hotShare := cum[19] // top 20%
	params := analytical.PageRankScenario("rmat (validation)",
		int64(pr.g.NumVertices()), int64(pr.g.NumEdges()),
		0.20, hotShare, base.LLCHitRate)
	est := m.Estimate(params).Speedup()
	errPct := 100 * math.Abs(est-detailed) / detailed
	t.AddRow(params.Name, "20%", fmt.Sprintf("%.0f%%", 100*hotShare), est)
	t.Notes = append(t.Notes,
		fmt.Sprintf("detailed simulator on the validation graph: %.2fx; model error %.1f%% (paper: within 7%%)",
			detailed, errPct),
		"paper: twitter PR 1.68x at 5%; uk/twitter BFS ~1.35x at 10%")
	return t
}

// Figure21 reproduces the memory-system energy comparison for PageRank
// (paper: 2.5x energy saving on average).
func Figure21(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:    "Figure 21",
		Title: "memory-system energy, PageRank",
		Header: []string{"dataset", "baseline uJ", "omega uJ", "saving x",
			"omega DRAM uJ", "omega SP uJ"},
	}
	sum, n := 0.0, 0
	for _, ds := range StandardDatasets() {
		pr := prepareDataset(ds, o, false)
		bCfg, oCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		res := runMachines(o, spec, pr, bCfg, oCfg)
		be := power.Energy(bCfg, res[0])
		oe := power.Energy(oCfg, res[1])
		saving := oe.Saving(be)
		t.AddRow(ds.Name, be.TotaluJ(), oe.TotaluJ(), saving, oe.DRAMuJ, oe.SPuJ)
		sum += saving
		n++
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average saving %.2fx (paper: 2.5x)", sum/float64(n)))
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
