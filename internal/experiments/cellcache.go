package experiments

import (
	"context"
	"fmt"
	"reflect"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph/datasets"
	"omega/internal/ligra"
	"omega/internal/obs"
)

// This file is the simulation-cell cache (DESIGN.md §12): the dataset
// cache's memoization idea lifted one level up, from graph builds to
// complete machine simulations. A cell is one (machine configuration,
// dataset, workload) triple; the simulator is deterministic by
// construction, so two requests for the same cell would compute
// bit-identical MachineStats and emit the identical metric-sample
// multiset — the cache simply stops the second request from paying for
// the re-simulation. Requests for a cell whose first build is still in
// flight block on that builder (singleflight), which converts the
// parallel suite's duplicate work into hits too.

// CellKey identifies one deterministic simulation cell. Every input
// that can influence the simulated numbers is part of the key: the
// machine configuration in canonical encoding (including the fault
// configuration and its seed, access-batching mode, and the machine
// name that labels emitted samples), the dataset build key, and the
// workload identity including its baked-in iteration schedule.
type CellKey struct {
	// Config is core.Config.CanonicalKey() of the effective config.
	Config string
	// Dataset identifies the graph build.
	Dataset datasets.Key
	// Workload is algorithms.Spec.WorkloadID().
	Workload string
}

// Cell is one cached simulation: the stats snapshot plus the canonical
// pre-stamp metric-sample stream (sorted, with Run and Experiment
// fields unset — each requesting run restamps its own labels at
// replay, so differently-labeled call sites can share one cell and
// still emit byte-identical streams).
type Cell struct {
	// Stats is the machine statistics of the run (a pure value type).
	Stats core.MachineStats
	// samples is the canonical pre-stamp sample stream.
	samples []obs.MetricSample
}

// Uncacheable reasons: why a cell-routed run bypassed the cache. The
// counts surface in the suite summary so "how much of the suite is
// cacheable" stays measured, not assumed.
const (
	// UncacheableGraph marks a run on a graph that is not identified by
	// a dataset key (transformed, grown, or hand-built).
	UncacheableGraph = "graph"
	// UncacheableWorkload marks a workload whose Run closure is not the
	// registered algorithm (custom schedules, instrumented variants).
	UncacheableWorkload = "workload"
	// UncacheableSink marks a run whose sink wants per-access or span
	// events — replay has only the sample stream, so these must
	// simulate for real.
	UncacheableSink = "sink"
	// UncacheableCampaign marks machine runs under the resilience
	// campaign engine, which drives machines through checkpoints and
	// re-executions the cell abstraction cannot represent.
	UncacheableCampaign = "campaign"
)

// cellEntry is one cache slot: done closes when the first builder
// finishes (successfully or not); failed marks a builder that panicked,
// whose waiters retry the lookup instead of sharing the panic — a
// watchdog-cancelled builder must not cancel innocent waiters, and a
// deterministic bug re-panics on the retry anyway.
type cellEntry struct {
	done   chan struct{}
	cell   Cell
	ok     bool
	failed bool
}

// CellCache memoizes complete simulation cells across experiments. It
// is safe for concurrent use; a nil *CellCache disables caching (every
// cell simulates fresh — the pre-cache behaviour).
type CellCache struct {
	mu      sync.Mutex
	entries map[CellKey]*cellEntry

	hits   atomic.Uint64
	misses atomic.Uint64
	dedups atomic.Uint64

	uncMu sync.Mutex
	unc   map[string]uint64
}

// NewCellCache returns an empty cell cache.
func NewCellCache() *CellCache {
	return &CellCache{
		entries: make(map[CellKey]*cellEntry),
		unc:     make(map[string]uint64),
	}
}

// CellCacheStats is a point-in-time snapshot of cache effectiveness.
type CellCacheStats struct {
	// Hits counts lookups satisfied by an already-built cell.
	Hits uint64
	// Misses counts lookups that built the cell.
	Misses uint64
	// Dedups counts lookups that blocked on another run's in-flight
	// build of the same cell (singleflight shares; a subset of Hits'
	// work saved, reported separately because they measure concurrent
	// duplication specifically).
	Dedups uint64
	// Resident is the number of cells held.
	Resident int
	// Uncacheable counts bypasses by reason.
	Uncacheable map[string]uint64
}

// DuplicateRate is the fraction of cacheable cell requests that were
// duplicates of an already-requested cell: (hits+dedups)/(total).
func (s CellCacheStats) DuplicateRate() float64 {
	total := s.Hits + s.Misses + s.Dedups
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Dedups) / float64(total)
}

// Stats snapshots the cache counters.
func (c *CellCache) Stats() CellCacheStats {
	if c == nil {
		return CellCacheStats{}
	}
	st := CellCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Dedups:      c.dedups.Load(),
		Uncacheable: make(map[string]uint64),
	}
	c.mu.Lock()
	st.Resident = len(c.entries)
	c.mu.Unlock()
	c.uncMu.Lock()
	for k, v := range c.unc {
		st.Uncacheable[k] = v
	}
	c.uncMu.Unlock()
	return st
}

// Len returns the number of resident cells.
func (c *CellCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// noteUncacheable counts n cache bypasses for the given reason.
func (c *CellCache) noteUncacheable(reason string, n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.uncMu.Lock()
	c.unc[reason] += n
	c.uncMu.Unlock()
}

// uncacheableNote renders the bypass counts for the suite summary
// ("; uncacheable: campaign=9, workload=2"), empty when none.
func (s CellCacheStats) uncacheableNote() string {
	if len(s.Uncacheable) == 0 {
		return ""
	}
	reasons := make([]string, 0, len(s.Uncacheable))
	for r := range s.Uncacheable {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s=%d", r, s.Uncacheable[r])
	}
	return "; uncacheable: " + strings.Join(parts, ", ")
}

// cellOutcome classifies one getOrRun call.
type cellOutcome int

const (
	cellBuilt cellOutcome = iota // this call simulated the cell
	cellHit                      // cell was already resident
	cellDedup                    // blocked on another call's in-flight build
)

// getOrRun returns the cell for k, simulating it at most once across
// all concurrent callers. A builder that panics (including cooperative
// cancellation) evicts its entry and re-panics on its own goroutine;
// waiters of a failed build retry the lookup — one becomes the next
// builder under its own context, so a cancelled requester never fails
// an innocent sharer.
func (c *CellCache) getOrRun(k CellKey, build func() Cell) (Cell, cellOutcome) {
	for {
		c.mu.Lock()
		e, ok := c.entries[k]
		if !ok {
			e = &cellEntry{done: make(chan struct{})}
			c.entries[k] = e
			c.mu.Unlock()
			c.misses.Add(1)
			func() {
				defer func() {
					if !e.ok {
						// Build panicked: evict so the key stays
						// rebuildable, then release the waiters into
						// their retry loops. The panic keeps unwinding
						// to this requester's harness.
						e.failed = true
						c.mu.Lock()
						if c.entries[k] == e {
							delete(c.entries, k)
						}
						c.mu.Unlock()
						close(e.done)
					}
				}()
				e.cell = build()
				e.ok = true
				close(e.done)
			}()
			return e.cell, cellBuilt
		}
		c.mu.Unlock()
		outcome := cellHit
		select {
		case <-e.done:
		default:
			// The first builder is still simulating: this is exactly the
			// concurrent duplicate work the singleflight converts into a
			// shared result.
			outcome = cellDedup
			c.dedups.Add(1)
			<-e.done
		}
		if e.failed {
			continue
		}
		if outcome == cellHit {
			c.hits.Add(1)
		}
		return e.cell, outcome
	}
}

// cellCounters attributes cell-cache traffic to one experiment run
// (the per-suite analog of datasets.Counters). Nil discards records.
type cellCounters struct {
	cells atomic.Uint64
	hits  atomic.Uint64
}

func (c *cellCounters) noteCell() {
	if c != nil {
		c.cells.Add(1)
	}
}

func (c *cellCounters) noteHit() {
	if c != nil {
		c.hits.Add(1)
	}
}

// registryWorkload reports whether spec.Run is the registered algorithm
// closure for spec.Name — the cacheability guard against custom
// closures reusing a registry name with a different schedule. Closures
// instantiated from the same func literal share one code pointer, so
// specs obtained from algorithms.All()/ByName always pass.
func registryWorkload(spec algorithms.Spec) bool {
	reg, ok := algorithms.ByName(spec.Name)
	return ok &&
		reflect.ValueOf(reg.Run).Pointer() == reflect.ValueOf(spec.Run).Pointer()
}

// sinkWantsEvents reports whether s asks for per-access or span events
// — extensions a cell replay cannot provide.
func sinkWantsEvents(s obs.Sink) bool {
	if s == nil {
		return false
	}
	if _, ok := s.(obs.AccessSink); ok {
		return true
	}
	_, ok := s.(obs.SpanSink)
	return ok
}

// uncacheableReason classifies a cell-routed run that must bypass the
// cache, or returns "" when the cell is cacheable.
func (o Options) uncacheableReason(spec algorithms.Spec, pr prepared) string {
	if !pr.keyed {
		return UncacheableGraph
	}
	if !registryWorkload(spec) {
		return UncacheableWorkload
	}
	if sinkWantsEvents(o.sink) || sinkWantsEvents(o.Metrics) {
		return UncacheableSink
	}
	return ""
}

// runCell simulates one (config, graph, workload) cell and returns its
// stats, drawing from o.Cells when the cell is cacheable. run is the
// label stamped into the requesting run's sample stream; it is NOT part
// of the cell identity — cells store pre-stamp samples and each
// requester restamps, so call sites with different labeling conventions
// share cells. SerialAccess is applied to cfg before keying, so batched
// and per-access runs stay distinct cache entries even though their
// results are bit-identical (host-perf A/B must not share timings).
func runCell(o Options, spec algorithms.Spec, pr prepared, cfg core.Config, run string) core.MachineStats {
	if o.SerialAccess {
		cfg.SerialAccess = true
	}
	o.cellStats.noteCell()
	if o.Cells == nil {
		return buildCellDirect(o, spec, pr, cfg, run)
	}
	if reason := o.uncacheableReason(spec, pr); reason != "" {
		o.Cells.noteUncacheable(reason, 1)
		return buildCellDirect(o, spec, pr, cfg, run)
	}
	key := CellKey{
		Config:   cfg.CanonicalKey(),
		Dataset:  pr.key,
		Workload: spec.WorkloadID(),
	}
	cell, outcome := o.Cells.getOrRun(key, func() Cell {
		return buildCell(o, spec, pr, cfg)
	})
	if outcome == cellBuilt {
		// The builder forwards its freshly captured stream (already part
		// of the build's cost; no replay label).
		replaySamples(o.sink, cell.samples, run)
		return cell.Stats
	}
	o.cellStats.noteHit()
	if o.sink != nil {
		// Replay under its own pprof label so suite profiles attribute
		// restamp/copy time to the cache, not to simulation.
		pprof.Do(o.Context(), pprof.Labels("cell", "replay"), func(context.Context) {
			replaySamples(o.sink, cell.samples, run)
		})
	}
	return cell.Stats
}

// buildCell simulates a cacheable cell: the machine always emits into a
// private capture buffer — even when this run has no sink — so the
// stored stream is complete for future requesters. Attaching a sink is
// read-only by contract (the golden tests enforce it), so capture never
// perturbs the cached stats.
func buildCell(o Options, spec algorithms.Spec, pr prepared, cfg core.Config) Cell {
	capture := obs.NewBuffer()
	var st core.MachineStats
	pprof.Do(o.Context(), pprof.Labels("cell", "build", "machine", cfg.Name), func(context.Context) {
		m := core.NewMachine(cfg)
		m.AttachContext(o.ctx)
		m.AttachSink(capture)
		st = spec.Run(ligra.New(m, pr.g))
	})
	samples := capture.Drain()
	// Canonicalize once at build time: Run/Experiment are unset here, and
	// the sort order is total, so every replay starts from one canonical
	// sequence regardless of emission interleavings.
	obs.SortSamples(samples)
	return Cell{Stats: st, samples: samples}
}

// buildCellDirect is the bypass path (cache disabled or cell
// uncacheable): simulate exactly like the pre-cache harness, emitting
// straight into the run's sink under its run label.
func buildCellDirect(o Options, spec algorithms.Spec, pr prepared, cfg core.Config, run string) (st core.MachineStats) {
	pprof.Do(o.Context(), pprof.Labels("machine", cfg.Name), func(context.Context) {
		m := core.NewMachine(cfg)
		m.AttachContext(o.ctx)
		if o.sink != nil {
			m.AttachSink(obs.WithRun(o.sink, run))
		}
		st = spec.Run(ligra.New(m, pr.g))
	})
	return st
}

// replaySamples re-emits a cell's canonical stream into a run's sink,
// restamped with the run's label. The experiment ID is stamped later by
// the harness (emitRunMetrics), exactly as for a live machine.
func replaySamples(sink obs.Sink, samples []obs.MetricSample, run string) {
	if sink == nil {
		return
	}
	for _, s := range samples {
		s.Run = run
		sink.Sample(s)
	}
}
