package experiments

import (
	"fmt"
	"math"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/graph/reorder"
	"omega/internal/graphmat"
	"omega/internal/ligra"
	"omega/internal/pisc"
	"omega/internal/slicing"
	"omega/internal/stats"
)

// ExtensionSlicing evaluates §VII's scaling techniques for graphs whose
// vtxProp exceeds on-chip storage: plain slicing vs power-law-aware
// slicing. The paper claims the latter "significantly reduces the total
// number of graph slices by up to 5x"; the runner also verifies sliced
// processing is exact.
func ExtensionSlicing(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:    "Extension E1 (§VII)",
		Title: "graph slicing for large graphs: plain vs power-law-aware",
		Header: []string{"dataset", "capacity (% of V)", "plain slices",
			"power-law slices", "reduction x", "sliced PR exact"},
	}
	for _, name := range []string{"rmat", "social"} {
		pr := prepareDataset(mustDataset(name), o, false)
		n := pr.g.NumVertices()
		for _, capPct := range []int{4, 10} {
			capacity := n * capPct / 100
			plain := slicing.BuildPlan(pr.g, capacity, 0.20, slicing.Plain)
			aware := slicing.BuildPlan(pr.g, capacity, 0.20, slicing.PowerLawAware)
			// Exactness check: sliced PageRank equals the reference.
			want := algorithms.ReferencePageRank(pr.g, 1, 0.85)
			got := slicing.PageRankSliced(pr.g, aware, 1, 0.85)
			exact := true
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					exact = false
					break
				}
			}
			t.AddRow(name, fmt.Sprintf("%d%%", capPct),
				plain.NumSlices(), aware.NumSlices(),
				float64(plain.NumSlices())/float64(aware.NumSlices()), exact)
		}
	}
	t.Notes = append(t.Notes,
		"paper §VII.3: slicing to fit only the top-20% hot vertices reduces the",
		"slice count (and its partition/merge overheads) by up to 5x")
	return t
}

// ExtensionDynamicGraph evaluates the §IX dynamic-graphs discussion: after
// the graph grows, OMEGA's static placement goes stale until the
// reordering is re-run ("by using a reordering algorithm to re-identify
// the popular vertices ... OMEGA can be adapted to continue to provide the
// same benefits").
func ExtensionDynamicGraph(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:    "Extension E2 (§IX)",
		Title: "dynamic graphs: stale vs refreshed vertex placement, PageRank",
		Header: []string{"growth", "stale-placement speedup", "refreshed speedup",
			"stale hot coverage %", "refreshed hot coverage %"},
	}
	base := prepareDataset(mustDataset("rmat"), o, false)
	for _, growthPct := range []int{25, 50} {
		grown := growGraph(base.g, growthPct, o.Seed+77)
		// Stale: keep the pre-growth ordering (the new hub mass is
		// misplaced). Refreshed: reorder the grown graph.
		refreshed := reorder.Apply(grown, reorder.Compute(grown, reorder.InDegree))
		staleSpeedup, staleCov := dynamicRun(spec, grown, o)
		freshSpeedup, freshCov := dynamicRun(spec, refreshed, o)
		t.AddRow(fmt.Sprintf("+%d%% edges", growthPct),
			staleSpeedup, freshSpeedup, 100*staleCov, 100*freshCov)
	}
	t.Notes = append(t.Notes,
		"re-running the (linear-time) n-th-element reordering restores the hot",
		"coverage and with it OMEGA's benefit — the §IX adaptation argument")
	return t
}

// ExtensionPagePolicy evaluates §IX direction 3: a hybrid DRAM page
// policy — close-page for the low-locality vertex data, open-page for the
// streaming structures — against uniform open- and close-page policies.
func ExtensionPagePolicy(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Extension E3 (§IX)",
		Title:  "DRAM page policy: open vs close vs hybrid, PageRank on OMEGA",
		Header: []string{"policy", "cycles", "row-hit %", "speedup vs open"},
	}
	pr := prepareDataset(mustDataset("rmat"), o, false)
	_, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"open-page", func(c *core.Config) {}},
		{"close-page", func(c *core.Config) { c.DRAM.ClosePage = true }},
		{"hybrid (§IX)", func(c *core.Config) { c.HybridPagePolicy = true }},
	}
	cfgs := make([]core.Config, len(variants))
	for i, v := range variants {
		cfgs[i] = omCfg
		v.mut(&cfgs[i])
	}
	// The speedup column is relative to the open-page variant (declared
	// first), so rows are assembled after the variant merge.
	res := runMachines(o, spec, pr, cfgs...)
	openCycles := float64(res[0].Cycles)
	for i, st := range res {
		t.AddRow(variants[i].name, uint64(st.Cycles), 100*st.DRAMRowHit,
			openCycles/float64(st.Cycles))
	}
	t.Notes = append(t.Notes,
		"§IX proposes closing rows after low-locality vertex accesses while edge",
		"streams keep theirs open. Measured: the hybrid recovers most of pure",
		"close-page's loss, but on OMEGA plain open-page still wins — the",
		"scratchpads have already absorbed most low-locality traffic, so the",
		"hybrid's target barely reaches DRAM (a negative result for this",
		"future-work direction, at least at this scale)")
	return t
}

// ExtensionGraphMat demonstrates §V.F's framework independence: the same
// machines accelerate a GraphMat-style framework (atomic-free partitioned
// gather on the baseline; PISC-offloaded reduces on OMEGA) as well as the
// Ligra-style one, with no change to either programming interface.
func ExtensionGraphMat(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:    "Extension E4 (§V.F)",
		Title: "framework independence: Ligra-style vs GraphMat-style, PageRank",
		Header: []string{"dataset", "ligra speedup", "graphmat speedup",
			"graphmat PISC ops", "baseline atomics (graphmat)"},
	}
	spec, _ := algorithms.ByName("PageRank")
	for _, name := range []string{"rmat", "social"} {
		pr := prepareDataset(mustDataset(name), o, false)
		baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		// GraphMat-style: its footprint is two 8-byte vtxProps per vertex
		// (property + message accumulator), so its machines are sized for
		// 16 B/vertex — like Radii's 12 B in the Ligra suite. All four
		// variants — two frameworks × two machines — fan out together.
		gmBaseCfg, gmOmCfg := core.ScaledPair(pr.g.NumVertices(), 16, o.Coverage)
		res := runVariants(o,
			// The Ligra arms are plain registry cells (shared with the
			// Figure 14 grid); the GraphMat arms drive a different
			// framework, so they stay direct machine runs.
			func() core.MachineStats {
				return runCell(o, spec, pr, baseCfg, "ligra/"+name)
			},
			func() core.MachineStats {
				return runCell(o, spec, pr, omCfg, "ligra/"+name)
			},
			func() core.MachineStats {
				mb := o.newMachine(gmBaseCfg, "graphmat/"+name)
				graphmat.RunPageRank(mb, pr.g, 1, 0.85)
				return mb.Stats()
			},
			func() core.MachineStats {
				mo := o.newMachine(gmOmCfg, "graphmat/"+name)
				graphmat.RunPageRank(mo, pr.g, 1, 0.85)
				return mo.Stats()
			},
		)
		lb, lo, gb, gm := res[0], res[1], res[2], res[3]
		t.AddRow(name, lo.Speedup(lb), gm.Speedup(gb), gm.PISCOps, gb.Atomics)
	}
	t.Notes = append(t.Notes,
		"§V.F: \"To verify the functionality of the tool across multiple",
		"frameworks, we applied the tool to GraphMat in addition to Ligra\";",
		"GraphMat's baseline issues zero atomics (Table II discussion, §IV)")
	return t
}

// ExtensionScaleRobustness checks that the reproduction's headline shape
// is stable across simulation scales: OMEGA's PageRank speedup and the
// baseline LLC hit rate should hold their bands from 2^11 to 2^14 vertices
// (the paper cannot vary its dataset scale this way — gem5 is too slow —
// but a scaled simulator must demonstrate its results are not an artifact
// of one operating point).
func ExtensionScaleRobustness(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:    "Extension E5 (robustness)",
		Title: "headline shape across simulation scales, PageRank on rmat",
		Header: []string{"scale (log2 V)", "speedup", "baseline LLC%",
			"omega LLC+SP%", "traffic reduction x"},
	}
	scales := []int{11, 12, 13, 14}
	type point struct{ base, om core.MachineStats }
	fns := make([]func() point, len(scales))
	for i, scale := range scales {
		fns[i] = func() point {
			so := o
			so.Scale = scale
			pr := prepareDataset(mustDataset("rmat"), so, false)
			bCfg, oCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, so.Coverage)
			res := runMachines(so, spec, pr, bCfg, oCfg)
			return point{res[0], res[1]}
		}
	}
	for i, p := range runVariants(o, fns...) {
		t.AddRow(scales[i], p.om.Speedup(p.base), 100*p.base.LLCHitRate,
			100*p.om.LLCHitRate, float64(p.base.NoCBytes)/float64(p.om.NoCBytes))
	}
	t.Notes = append(t.Notes,
		"the speedup, hit-rate gap, and traffic reduction must stay in their",
		"bands across scales for the scaled-machine methodology to be sound")
	return t
}

// ExtensionSeedSensitivity reruns the headline PageRank comparison across
// independent generator seeds, reporting the mean and range of the speedup
// per dataset family — the replication study a single-seed table cannot
// provide.
func ExtensionSeedSensitivity(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Extension E6 (replication)",
		Title:  "PageRank speedup across generator seeds (5 replicates)",
		Header: []string{"dataset", "mean speedup", "min", "max"},
	}
	for _, name := range []string{"rmat", "social", "web", "road"} {
		ds := mustDataset(name)
		const reps = 5
		fns := make([]func() float64, reps)
		for rep := 0; rep < reps; rep++ {
			fns[rep] = func() float64 {
				so := o
				so.Seed = o.Seed + uint64(rep)*1000
				pr := prepareDataset(ds, so, false)
				bCfg, oCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, so.Coverage)
				res := runMachines(so, spec, pr, bCfg, oCfg)
				return res[1].Speedup(res[0])
			}
		}
		var sum, min, max float64
		for rep, sp := range runVariants(o, fns...) {
			sum += sp
			if rep == 0 || sp < min {
				min = sp
			}
			if rep == 0 || sp > max {
				max = sp
			}
		}
		t.AddRow(name, sum/reps, min, max)
	}
	t.Notes = append(t.Notes,
		"the power-law families must stay clearly above 1x across seeds and",
		"the road family near 1x — the headline is not a seed artifact")
	return t
}

// ExtensionTraversalDirection compares BFS under the framework's three
// traversal strategies — sparse push, dense-forward scatter, and dense
// pull (Ligra's direction optimization) — on both machines. The pull
// variant trades atomics for random source reads, shifting which OMEGA
// mechanism (PISC offload vs scratchpad reads) carries the win.
func ExtensionTraversalDirection(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:    "Extension E7 (framework)",
		Title: "BFS traversal strategies on both machines (rmat)",
		Header: []string{"strategy", "baseline cycles", "omega cycles",
			"speedup", "baseline atomics"},
	}
	pr := prepareDataset(mustDataset("rmat"), o, false)
	root := algorithms.DefaultRoot(pr.g)
	type variant struct {
		name string
		pull bool
		mode ligra.Mode
	}
	for _, v := range []variant{
		{"auto (dense-forward)", false, ligra.Auto},
		{"push only", false, ligra.Push},
		{"auto (dense-pull)", true, ligra.Auto},
	} {
		run := func(cfg core.Config) core.MachineStats {
			fw := ligra.New(o.newMachine(cfg, v.name), pr.g)
			fw.SetDensePull(v.pull)
			runBFSMode(fw, root, v.mode)
			return fw.Machine().Stats()
		}
		baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), 4, o.Coverage)
		res := runVariants(o,
			func() core.MachineStats { return run(baseCfg) },
			func() core.MachineStats { return run(omCfg) },
		)
		base, om := res[0], res[1]
		t.AddRow(v.name, uint64(base.Cycles), uint64(om.Cycles),
			om.Speedup(base), base.Atomics)
	}
	t.Notes = append(t.Notes,
		"dense-pull avoids atomics entirely (the CAS becomes a plain check-",
		"and-set owned by one worker); Ligra picks directions by the |E|/20",
		"threshold either way")
	return t
}

// runBFSMode is BFS with a forced edgeMap mode.
func runBFSMode(fw *ligra.Framework, root uint32, mode ligra.Mode) {
	parents := fw.NewProp("parents", 4, pisc.Value(^uint64(0)))
	fw.Configure(pisc.StandardMicrocode("bfs", pisc.OpUnsignedCompareSwap, true, true))
	parents.Raw()[root] = pisc.Value(uint64(root))
	frontier := fw.NewVertexSubsetSparse([]uint32{root})
	fns := ligra.EdgeMapFns{
		UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			return parents.AtomicUpdate(ctx, d, pisc.OpUnsignedCompareSwap, pisc.Value(uint64(s)))
		},
		Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			return parents.Update(ctx, d, pisc.OpUnsignedCompareSwap, pisc.Value(uint64(s)))
		},
		Cond: func(ctx *core.Ctx, d uint32) bool {
			return uint64(parents.Get(ctx, d)) == ^uint64(0)
		},
	}
	for !frontier.IsEmpty() {
		frontier = fw.EdgeMap(frontier, fns, mode)
	}
}

// growGraph adds growthPct% new edges by preferential attachment, biased
// toward *new* popular vertices so the hot set genuinely drifts.
func growGraph(g *graph.Graph, growthPct int, seed uint64) *graph.Graph {
	n := g.NumVertices()
	b := graph.NewBuilder(n, g.Undirected)
	for v := 0; v < n; v++ {
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			if g.Undirected {
				if v <= int(u) {
					b.AddEdge(graph.VertexID(v), u, 1)
				}
			} else {
				b.AddEdge(graph.VertexID(v), u, 1)
			}
		}
	}
	extra := g.NumEdges() * growthPct / 100
	// New activity concentrates on a band of previously cold vertices
	// (IDs in the last quartile after the old ordering), so the stale
	// placement misses it.
	r := stats.NewRand(seed)
	bandLo := n * 3 / 4
	for i := 0; i < extra; i++ {
		src := graph.VertexID(r.Intn(n))
		dst := graph.VertexID(bandLo + r.Intn(n-bandLo))
		if src == dst {
			continue
		}
		b.AddEdge(src, dst, 1)
	}
	b.Dedup()
	ng := b.Build(g.Name + "+grown")
	return ng
}

// dynamicRun compares baseline and OMEGA on g and reports the speedup and
// the share of vtxProp accesses covered by the scratchpad-resident prefix.
func dynamicRun(spec algorithms.Spec, g *graph.Graph, o Options) (speedup, hotCoverage float64) {
	baseCfg, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, o.Coverage)
	type result struct {
		st   core.MachineStats
		prof []uint64
	}
	res := runVariants(o,
		func() result {
			return result{st: spec.Run(ligra.New(o.newMachine(baseCfg, g.Name), g))}
		},
		func() result {
			mo := o.newMachine(omCfg, g.Name)
			mo.EnableVertexProfile(g.NumVertices())
			st := spec.Run(ligra.New(mo, g))
			return result{st: st, prof: mo.VertexProfile()}
		},
	)
	baseSt, omSt, prof := res[0].st, res[1].st, res[1].prof
	var hot, total uint64
	resident := omSt.SPResident
	for v, c := range prof {
		total += c
		if v < resident {
			hot += c
		}
	}
	if total > 0 {
		hotCoverage = float64(hot) / float64(total)
	}
	return omSt.Speedup(baseSt), hotCoverage
}
