package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"omega/internal/graph/datasets"
	"omega/internal/obs"
)

// SuiteEvent reports one completed experiment to the Suite progress
// callback. Events arrive as experiments finish — out of suite order
// under parallelism — but Index always names the experiment's position
// in the spec slice, so callers can reassemble the deterministic order.
type SuiteEvent struct {
	// Index is the experiment's position in the spec slice.
	Index int
	// Total is the number of experiments in this suite run.
	Total int
	// ID is the spec's artifact ID.
	ID string
	// Table is the completed (possibly Failed) result.
	Table *Table
	// Wall is the experiment's wall-clock time.
	Wall time.Duration
}

// ExperimentTelemetry records per-experiment execution metadata gathered
// by Suite alongside the result table.
type ExperimentTelemetry struct {
	// ID is the spec's artifact ID.
	ID string
	// Wall is the experiment's wall-clock time.
	Wall time.Duration
	// CacheHits and CacheMisses count this experiment's dataset-cache
	// lookups (a hit includes blocking on another runner's in-flight
	// build — the generation work was shared either way).
	CacheHits, CacheMisses uint64
	// Cells counts the complete simulation cells this experiment asked
	// for, and CellHits how many were satisfied from the cross-experiment
	// cell cache (including singleflight shares) instead of simulated.
	Cells, CellHits uint64
	// Goroutines is the peak goroutine count observed at the experiment's
	// start/end sample points — a coarse load indicator for the pool.
	Goroutines int
	// Failed mirrors Table.Failed.
	Failed bool
}

// SuiteResult is a completed suite run: tables and telemetry in
// deterministic suite (spec-slice) order regardless of worker
// interleaving, plus a rendered telemetry summary table.
type SuiteResult struct {
	// Tables holds one result per spec, in spec order.
	Tables []*Table
	// Telemetry holds per-experiment metadata, parallel to Tables.
	Telemetry []ExperimentTelemetry
	// Summary renders Telemetry as a Table ("Suite") for printing next
	// to the experiment artifacts.
	Summary *Table
	// Wall is the whole suite's wall-clock time.
	Wall time.Duration
	// Parallelism is the resolved worker-pool size.
	Parallelism int
	// Cells is the simulation-cell cache the suite ran with (nil when the
	// cache was disabled via Options.NoCellCache).
	Cells *CellCache
}

// CostHints extracts per-experiment wall-clock telemetry in the shape
// Options.SchedHints consumes, so one suite run's timings can schedule
// the next (longest-job-first).
func (r *SuiteResult) CostHints() map[string]time.Duration {
	h := make(map[string]time.Duration, len(r.Telemetry))
	for _, te := range r.Telemetry {
		h[te.ID] = te.Wall
	}
	return h
}

// Failed counts failed tables.
func (r *SuiteResult) Failed() int {
	n := 0
	for _, t := range r.Tables {
		if t != nil && t.Failed {
			n++
		}
	}
	return n
}

// Suite fans specs across a bounded worker pool and returns every result
// in spec order. Each runner executes under the RunSafe watchdog
// (o.Timeout; zero disables it) with panic recovery, so a broken or hung
// experiment yields a Failed table and the suite completes. Cancelling
// ctx abandons in-flight runners and fails the not-yet-started rest.
//
// o.Parallelism bounds the pool (zero = GOMAXPROCS, 1 = sequential). If
// o.Datasets is nil, Suite installs a fresh shared cache so concurrent
// runners asking for the same (generator, scale, seed, reorder) tuple
// build the graph once; runners are otherwise pure functions of Options,
// which is why parallel, sequential, and cached runs produce identical
// tables.
//
// progress, if non-nil, is invoked once per completed experiment; calls
// are serialized, but arrive in completion order, not suite order.
func Suite(ctx context.Context, specs []Spec, o Options, progress func(SuiteEvent)) *SuiteResult {
	o = o.Defaults()
	if ctx == nil {
		ctx = context.Background()
	}
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(specs) && len(specs) > 0 {
		par = len(specs)
	}
	if o.Datasets == nil {
		o.Datasets = datasets.New()
	}
	if o.NoCellCache {
		o.Cells = nil
	} else if o.Cells == nil {
		o.Cells = NewCellCache()
	}
	// Under parallelism, experiments finish in nondeterministic order, so
	// each spec's samples land in a private buffer; after the pool drains
	// they are flushed to the user's sink in spec order. RunSafe already
	// sorts within an experiment, making the full series deterministic:
	// parallel and sequential suite runs emit byte-identical streams.
	var specBufs []*obs.Buffer
	if o.Metrics != nil {
		specBufs = make([]*obs.Buffer, len(specs))
		for i := range specBufs {
			specBufs[i] = obs.NewBuffer()
		}
	}

	start := time.Now()
	res := &SuiteResult{
		Tables:      make([]*Table, len(specs)),
		Telemetry:   make([]ExperimentTelemetry, len(specs)),
		Parallelism: par,
		Cells:       o.Cells,
	}
	// Dispatch longest-job-first when cost hints are available: starting
	// the expensive experiments early shrinks the pool's makespan (a long
	// job queued last would run alone after everything else drained).
	// Results and telemetry stay in spec order regardless.
	jobs := make(chan int, len(specs))
	for _, i := range dispatchOrder(specs, o.SchedHints) {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := specs[i]
				ro := o
				rec := &datasets.Counters{}
				ro.cacheStats = rec
				cc := &cellCounters{}
				ro.cellStats = cc
				if specBufs != nil {
					ro.Metrics = specBufs[i]
				}
				gStart := runtime.NumGoroutine()
				t0 := time.Now()
				var tbl *Table
				if ctx.Err() != nil {
					// Don't launch runner goroutines for work queued behind
					// a cancellation; fail fast like RunSafe would.
					tbl = FailedTable(spec.ID, fmt.Sprintf("cancelled: %v", ctx.Err()))
				} else {
					// Label the worker (and every goroutine the runner
					// spawns — variant fan-outs inherit the set) with the
					// experiment ID, so CPU profiles of the suite attribute
					// samples per experiment (go tool pprof -tagfocus).
					pprof.Do(ctx, pprof.Labels("experiment", spec.ID), func(ctx context.Context) {
						tbl = RunSafe(ctx, spec, ro, o.Timeout)
					})
				}
				wall := time.Since(t0)
				peak := runtime.NumGoroutine()
				if gStart > peak {
					peak = gStart
				}
				res.Tables[i] = tbl
				res.Telemetry[i] = ExperimentTelemetry{
					ID:          spec.ID,
					Wall:        wall,
					CacheHits:   rec.Hits.Load(),
					CacheMisses: rec.Misses.Load(),
					Cells:       cc.cells.Load(),
					CellHits:    cc.hits.Load(),
					Goroutines:  peak,
					Failed:      tbl.Failed,
				}
				if progress != nil {
					progressMu.Lock()
					progress(SuiteEvent{
						Index: i, Total: len(specs), ID: spec.ID,
						Table: tbl, Wall: wall,
					})
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if specBufs != nil {
		for _, b := range specBufs {
			for _, s := range b.Drain() {
				o.Metrics.Sample(s)
			}
		}
	}
	res.Wall = time.Since(start)
	res.Summary = suiteSummary(res, o.Datasets, o.Cells)
	return res
}

// dispatchOrder returns the spec indices in dispatch order: specs with a
// cost hint sorted by descending hinted wall time (longest-processing-
// time-first), preceded by unhinted specs in declaration order (an
// unknown cost is dispatched early rather than risked last). The sort is
// stable, so equal hints keep declaration order and the order is
// deterministic for a given hint map.
func dispatchOrder(specs []Spec, hints map[string]time.Duration) []int {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	if len(hints) == 0 {
		return order
	}
	hinted := func(i int) bool { _, ok := hints[specs[i].ID]; return ok }
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ha, hb := hinted(ia), hinted(ib)
		if ha != hb {
			return !ha // unhinted first, in declaration order
		}
		if !ha {
			return ia < ib
		}
		if hints[specs[ia].ID] != hints[specs[ib].ID] {
			return hints[specs[ia].ID] > hints[specs[ib].ID]
		}
		return ia < ib
	})
	return order
}

// suiteSummary renders the telemetry as a printable table.
func suiteSummary(res *SuiteResult, cache *datasets.Cache, cells *CellCache) *Table {
	t := &Table{
		ID:    "Suite",
		Title: fmt.Sprintf("suite telemetry (parallelism %d)", res.Parallelism),
		Header: []string{"experiment", "wall", "cache hits", "cache misses",
			"cells", "cell hits", "peak goroutines", "status"},
	}
	for _, te := range res.Telemetry {
		status := "ok"
		if te.Failed {
			status = "FAILED"
		}
		t.AddRow(te.ID, te.Wall.Round(time.Millisecond), te.CacheHits,
			te.CacheMisses, te.Cells, te.CellHits, te.Goroutines, status)
	}
	hits, misses := cache.Stats()
	t.Notes = append(t.Notes,
		fmt.Sprintf("suite wall %v over %d workers; dataset cache: %d hits / %d misses, %d graphs resident",
			res.Wall.Round(time.Millisecond), res.Parallelism, hits, misses, cache.Len()))
	if cells != nil {
		cs := cells.Stats()
		t.Notes = append(t.Notes,
			fmt.Sprintf("cell cache: %d hits / %d misses (%d singleflight-shared), %d cells resident%s",
				cs.Hits, cs.Misses, cs.Dedups, cs.Resident, cs.uncacheableNote()))
	}
	return t
}
