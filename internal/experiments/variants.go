package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"

	"omega/internal/algorithms"
	"omega/internal/core"
)

// This file is the variant-concurrency layer: experiment runners that
// compare independent machine variants (baseline vs OMEGA, ablation
// arms, sensitivity points) fan each variant out to its own goroutine.
//
// The concurrency is safe because each variant owns a freshly built
// core.Machine — a Machine is single-goroutine by design, and every bit
// of its mutable state (cores, caches, directory, DRAM, the
// ParallelForGrain schedState scratch, fault-injector PRNGs) lives
// inside the Machine — while the only shared inputs are the prepared
// *graph.Graph and the algorithm Spec, both immutable after
// construction (graphs are shared read-only across suite runners via
// the datasets cache already). Results are merged back in declaration
// order, so tables are byte-identical to the sequential harness.

// variantPanic carries a panic value out of a variant goroutine to the
// runner goroutine, preserving the originating stack so RunSafe's
// recovery report points at the variant, not at runVariants.
type variantPanic struct {
	value any
	stack string
}

// String makes the re-raised panic render usefully through RunSafe's
// "%v" formatting.
func (p *variantPanic) String() string {
	return fmt.Sprintf("variant goroutine: %v\n%s", p.value, p.stack)
}

// runVariants executes the given variant functions and returns their
// results in declaration order. With SerialVariants set (or fewer than
// two variants) it runs them in place, reproducing the sequential
// harness exactly; otherwise each variant gets its own goroutine. If a
// variant panics, the panic is re-raised on the calling goroutine after
// every variant has finished, so the RunSafe harness recovers it the
// same way it would a sequential runner's panic.
func runVariants[T any](o Options, fns ...func() T) []T {
	out := make([]T, len(fns))
	if o.SerialVariants || len(fns) < 2 {
		for i, fn := range fns {
			out[i] = fn()
		}
		return out
	}
	panics := make([]*variantPanic, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = &variantPanic{value: r, stack: string(debug.Stack())}
				}
			}()
			// Tag the goroutine with the variant index (the suite worker
			// already contributes the experiment ID to the inherited label
			// set), so suite CPU profiles split per variant.
			pprof.Do(o.Context(), pprof.Labels("variant", strconv.Itoa(i)), func(context.Context) {
				out[i] = fn()
			})
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out
}

// runMachines runs one algorithm over several machine configurations —
// one cell per variant, all sharing the immutable prepared graph — and
// returns the per-variant stats in configuration order. Each variant
// routes through runCell, so cells already simulated by this or any
// other experiment are reused instead of re-simulated.
func runMachines(o Options, spec algorithms.Spec, pr prepared, cfgs ...core.Config) []core.MachineStats {
	run := spec.Name + "/" + pr.g.Name
	fns := make([]func() core.MachineStats, len(cfgs))
	for i, cfg := range cfgs {
		fns[i] = func() core.MachineStats {
			return runCell(o, spec, pr, cfg, run)
		}
	}
	return runVariants(o, fns...)
}

// cancelPanic unwraps a recovered panic value — directly, or carried out
// of a variant goroutine by variantPanic — and reports whether it is a
// cooperative cancellation raised by a Machine run loop.
func cancelPanic(r any) bool {
	if vp, ok := r.(*variantPanic); ok {
		r = vp.value
	}
	return core.IsCancelled(r)
}
