package experiments

import (
	"testing"
)

func TestExtensionSlicingShape(t *testing.T) {
	tbl := ExtensionSlicing(cheapOpts())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if red := cellFloat(t, tbl, i, 4); red < 3.0 || red > 6.0 {
			t.Fatalf("row %d: reduction %.2f outside the paper's ~5x band", i, red)
		}
		if cell(tbl, i, 5) != "true" {
			t.Fatalf("row %d: sliced PageRank not exact", i)
		}
	}
}

func TestExtensionDynamicGraphShape(t *testing.T) {
	tbl := ExtensionDynamicGraph(cheapOpts())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		stale := cellFloat(t, tbl, i, 1)
		fresh := cellFloat(t, tbl, i, 2)
		staleCov := cellFloat(t, tbl, i, 3)
		freshCov := cellFloat(t, tbl, i, 4)
		if freshCov <= staleCov {
			t.Fatalf("row %d: refresh must restore hot coverage (%.1f vs %.1f)",
				i, freshCov, staleCov)
		}
		if fresh < stale-0.05 {
			t.Fatalf("row %d: refresh must not hurt (%.2f vs %.2f)", i, fresh, stale)
		}
	}
}

func TestExtensionPagePolicyShape(t *testing.T) {
	tbl := ExtensionPagePolicy(cheapOpts())
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// Close-page must kill the row-hit rate; hybrid sits between the two.
	openHit := cellFloat(t, tbl, 0, 2)
	closeHit := cellFloat(t, tbl, 1, 2)
	hybridHit := cellFloat(t, tbl, 2, 2)
	if closeHit != 0 {
		t.Fatalf("close-page row-hit %.1f, want 0", closeHit)
	}
	if hybridHit <= closeHit || hybridHit >= openHit {
		t.Fatalf("hybrid row-hit %.1f should sit between close (%.1f) and open (%.1f)",
			hybridHit, closeHit, openHit)
	}
}

func TestExtensionGraphMatShape(t *testing.T) {
	tbl := ExtensionGraphMat(cheapOpts())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if sp := cellFloat(t, tbl, i, 2); sp < 1.05 {
			t.Fatalf("row %d: GraphMat should also gain from OMEGA: %.2f", i, sp)
		}
		if atomics := cellFloat(t, tbl, i, 4); atomics != 0 {
			t.Fatalf("row %d: GraphMat baseline issued %v atomics", i, atomics)
		}
		if piscOps := cellFloat(t, tbl, i, 3); piscOps == 0 {
			t.Fatalf("row %d: OMEGA GraphMat should offload to PISCs", i)
		}
	}
}

func TestExtensionScaleRobustnessShape(t *testing.T) {
	tbl := ExtensionScaleRobustness(Options{Scale: 11, Seed: 42, Coverage: 0.2})
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		sp := cellFloat(t, tbl, i, 1)
		if sp < 1.5 {
			t.Fatalf("row %d: PageRank speedup %.2f fell out of band", i, sp)
		}
		baseLLC := cellFloat(t, tbl, i, 2)
		omLLC := cellFloat(t, tbl, i, 3)
		if omLLC <= baseLLC {
			t.Fatalf("row %d: OMEGA storage hit rate must beat baseline", i)
		}
	}
}

func TestAblationLockedCacheShape(t *testing.T) {
	tbl := AblationLockedCache(cheapOpts())
	for i := range tbl.Rows {
		locked := cellFloat(t, tbl, i, 1)
		om := cellFloat(t, tbl, i, 2)
		lockedTraffic := cellFloat(t, tbl, i, 3)
		omTraffic := cellFloat(t, tbl, i, 4)
		if om <= locked {
			t.Fatalf("row %d: OMEGA (%.2f) must beat locked cache (%.2f)", i, om, locked)
		}
		if omTraffic <= lockedTraffic {
			t.Fatalf("row %d: OMEGA must cut traffic where locking cannot", i)
		}
	}
}

func TestGrowGraphPreservesStructure(t *testing.T) {
	o := cheapOpts()
	base := prepareDataset(mustDataset("rmat"), o, false)
	grown := growGraph(base.g, 30, 99)
	if err := grown.Validate(); err != nil {
		t.Fatalf("grown graph invalid: %v", err)
	}
	if grown.NumVertices() != base.g.NumVertices() {
		t.Fatal("growth must not change the vertex count")
	}
	if grown.NumEdges() <= base.g.NumEdges() {
		t.Fatal("growth must add edges")
	}
}
