package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"omega/internal/obs"
)

// Spec registers one experiment runner under the ID its artifacts use.
type Spec struct {
	// ID is the paper artifact ("Table I", "Figure 14", "Resilience R1").
	ID string
	// Run regenerates the artifact.
	Run func(Options) *Table
}

// Registry returns every registered experiment in suite order — the
// single source cmd/omega-bench and the benchmarks iterate.
func Registry() []Spec {
	return []Spec{
		{"Table I", Table1},
		{"Table II", Table2},
		{"Table III", Table3},
		{"Table IV", Table4},
		{"Figure 3", Figure3},
		{"Figure 4a", Figure4a},
		{"Figure 4b", Figure4b},
		{"Figure 5", Figure5},
		{"Figure 14", Figure14},
		{"Figure 15", Figure15},
		{"Figure 16", Figure16},
		{"Figure 17", Figure17},
		{"Figure 18", Figure18},
		{"Figure 19", Figure19},
		{"Figure 20", Figure20},
		{"Figure 21", Figure21},
		{"Ablation A1", AblationScratchpadOnly},
		{"Ablation A2", AblationAtomicOverhead},
		{"Ablation A3", AblationReordering},
		{"Ablation A4", AblationChunkMapping},
		{"Ablation A5", AblationLockedCache},
		{"Ablation A6", AblationPrefetcher},
		{"Extension E1", ExtensionSlicing},
		{"Extension E2", ExtensionDynamicGraph},
		{"Extension E3", ExtensionPagePolicy},
		{"Extension E4", ExtensionGraphMat},
		{"Extension E5", ExtensionScaleRobustness},
		{"Extension E6", ExtensionSeedSensitivity},
		{"Extension E7", ExtensionTraversalDirection},
		{"Resilience R1", RunResilience},
		{"Resilience R2", RunResilienceCampaign},
	}
}

// SpecByID resolves a registered experiment by its artifact ID.
func SpecByID(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// FailedTable builds the table the harness substitutes for a runner that
// could not produce results: the suite keeps going and reports why.
func FailedTable(id, reason string, diagnostics ...string) *Table {
	t := &Table{
		ID:     id,
		Title:  "FAILED — " + reason,
		Header: []string{"error"},
		Failed: true,
	}
	t.AddRow(reason)
	for _, d := range diagnostics {
		for _, line := range strings.Split(strings.TrimRight(d, "\n"), "\n") {
			t.Notes = append(t.Notes, line)
		}
	}
	return t
}

// cancelGrace is how long RunSafe waits, after cancelling the runner's
// context, for the runner goroutine to unwind cooperatively before
// declaring it abandoned. Machines poll their context every few thousand
// scheduled items, so a healthy runner exits well inside the grace; only
// a runner wedged outside the simulation loops (or one that never built a
// machine) is actually abandoned.
const cancelGrace = 500 * time.Millisecond

// RunSafe executes spec.Run under the hardened harness: a panicking
// runner is recovered into a failed Table carrying its stack trace, and a
// runner that exceeds the watchdog timeout (or outlives ctx — SIGINT in
// cmd/omega-bench) is cancelled cooperatively — the machines it drives
// unwind at their next cancellation poll — and reported as failed. In
// every case the caller gets a printable Table back so the rest of the
// suite keeps going. timeout <= 0 disables the watchdog. Only a runner
// that ignores its context past the grace period leaks its goroutine;
// its eventual result is discarded.
func RunSafe(ctx context.Context, spec Spec, o Options, timeout time.Duration) *Table {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	o.ctx = runCtx
	var buf *obs.Buffer
	if o.Metrics != nil {
		// Machines built by this run emit into a private buffer; the
		// samples reach o.Metrics only after the runner exits cleanly —
		// sorted, stamped, and replayed below — so concurrent variant
		// goroutines and abandoned runners never write to the user's sink.
		buf = obs.NewBuffer()
		o.sink = buf
	}
	done := make(chan *Table, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if cancelPanic(r) {
					// Cooperative unwind: the harness side picks the reason
					// (cancelled vs watchdog); nil just signals clean exit.
					done <- FailedTable(spec.ID, fmt.Sprintf("cancelled: %v", runCtx.Err()))
					return
				}
				done <- FailedTable(spec.ID,
					fmt.Sprintf("runner panicked: %v", r), string(debug.Stack()))
			}
		}()
		done <- spec.Run(o)
	}()
	var watchdog <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		watchdog = timer.C
	}
	var tbl *Table
	select {
	case t := <-done:
		if t == nil {
			tbl = FailedTable(spec.ID, "runner returned no table")
		} else {
			tbl = t
		}
	case <-ctx.Done():
		cancel()
		awaitRunner(done)
		tbl = FailedTable(spec.ID, fmt.Sprintf("cancelled: %v", ctx.Err()))
	case <-watchdog:
		cancel()
		if awaitRunner(done) {
			tbl = FailedTable(spec.ID,
				fmt.Sprintf("watchdog: runner exceeded %v (cancelled cooperatively)", timeout))
		} else {
			tbl = FailedTable(spec.ID,
				fmt.Sprintf("watchdog: runner exceeded %v (abandoned)", timeout))
		}
	}
	emitRunMetrics(o.Metrics, buf, spec.ID, tbl)
	return tbl
}

// emitRunMetrics forwards a finished run's buffered samples to the
// user's sink: canonically sorted (variant goroutines interleave
// nondeterministically; the sort restores a total order), stamped with
// the experiment ID, and followed by harness-level samples (row count,
// failure marker) so even machine-less experiments emit. Failed tables
// forward only the harness samples — an abandoned runner may still be
// writing to the buffer, and a cancelled run's partial series is not
// deterministic.
func emitRunMetrics(sink obs.Sink, buf *obs.Buffer, id string, t *Table) {
	if sink == nil {
		return
	}
	if buf != nil && !t.Failed {
		samples := buf.Drain()
		obs.SortSamples(samples)
		for i := range samples {
			samples[i].Experiment = id
			sink.Sample(samples[i])
		}
	}
	h := obs.MetricSample{Experiment: id, Machine: "harness", Component: "harness"}
	if n := uint64(len(t.Rows)); n > 0 {
		h.Name, h.Value = "rows", n
		sink.Sample(h)
	}
	if t.Failed {
		h.Name, h.Value = "failed", 1
		sink.Sample(h)
	}
}

// awaitRunner gives a just-cancelled runner cancelGrace to unwind,
// reporting whether it exited (its table, if any, is discarded — the
// caller substitutes the cancellation/watchdog reason).
func awaitRunner(done <-chan *Table) bool {
	timer := time.NewTimer(cancelGrace)
	defer timer.Stop()
	select {
	case <-done:
		return true
	case <-timer.C:
		return false
	}
}
