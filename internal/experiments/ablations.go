package experiments

import (
	"fmt"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
)

// AblationScratchpadOnly reproduces §X.A: OMEGA with the PISC engines
// disabled, isolating the storage benefit (paper: 1.3x vs >3x with PISCs
// for PageRank on lj).
func AblationScratchpadOnly(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Ablation A1 (§X.A)",
		Title:  "scratchpads as storage only (PISC disabled), PageRank",
		Header: []string{"dataset", "sp-only speedup", "full OMEGA speedup"},
	}
	for _, name := range []string{"rmat", "social"} {
		pr := prepareDataset(mustDataset(name), o, false)
		baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		noPisc := omCfg
		noPisc.PISC = false
		noPisc.Name = "omega-nopisc"
		res := runMachines(o, spec, pr, baseCfg, noPisc, omCfg)
		base, sp, full := res[0], res[1], res[2]
		t.AddRow(name, sp.Speedup(base), full.Speedup(base))
	}
	t.Notes = append(t.Notes, "paper: 1.3x storage-only vs >3x with PISCs on lj")
	return t
}

// AblationAtomicOverhead reproduces the §III estimate of atomic-
// instruction overhead: PageRank with every atomic replaced by a plain
// read/write pair (paper: overhead of up to 50% on real hardware).
func AblationAtomicOverhead(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Ablation A2 (§III)",
		Title:  "atomic instruction overhead on the baseline, PageRank",
		Header: []string{"dataset", "atomic cycles", "plain r/w cycles", "overhead %"},
	}
	for _, name := range []string{"rmat", "social"} {
		pr := prepareDataset(mustDataset(name), o, false)
		baseCfg, _ := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		plainCfg := baseCfg
		plainCfg.AtomicsAsPlain = true
		plainCfg.Name = "baseline-plain"
		res := runMachines(o, spec, pr, baseCfg, plainCfg)
		atomic, plain := res[0], res[1]
		ovh := 100 * (float64(atomic.Cycles)/float64(plain.Cycles) - 1)
		t.AddRow(name, uint64(atomic.Cycles), uint64(plain.Cycles), ovh)
	}
	t.Notes = append(t.Notes,
		"paper measured up to 50% on a Xeon; our model serializes every atomic for",
		"its full miss latency (x86 LOCK semantics), so the overhead is larger —",
		"the direction (atomics are a first-order cost) is the reproduced claim")
	return t
}

// AblationReordering reproduces the §III reordering study on the baseline
// machine: in-degree (+8% paper), out-degree (+6.3%), SlashBurn (~none).
func AblationReordering(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Ablation A3 (§III)",
		Title:  "offline reordering on the baseline CMP, PageRank",
		Header: []string{"ordering", "cycles", "speedup vs original"},
	}
	orig := rawDataset(mustDataset("rmat"), o, false)
	methods := []reorder.Method{
		reorder.Identity, reorder.InDegree, reorder.OutDegree, reorder.SlashBurn,
	}
	fns := make([]func() core.MachineStats, len(methods))
	for i, m := range methods {
		fns[i] = func() core.MachineStats {
			g := reorder.Apply(orig, reorder.Compute(orig, m))
			baseCfg, _ := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, o.Coverage)
			return spec.Run(ligra.New(o.newMachine(baseCfg, m.String()), g))
		}
	}
	// The speedup column is relative to Identity, so rows are computed
	// after the variant merge, in method order.
	res := runVariants(o, fns...)
	baseCycles := uint64(res[0].Cycles)
	for i, st := range res {
		t.AddRow(methods[i].String(), uint64(st.Cycles),
			fmt.Sprintf("%.1f%%", 100*(float64(baseCycles)/float64(st.Cycles)-1)))
	}
	t.Notes = append(t.Notes,
		"paper: +8% in-degree, +6.3% out-degree, none for SlashBurn —",
		"reordering alone cannot deliver OMEGA-class gains")
	return t
}

// AblationChunkMapping reproduces §V.D: the cost of a scratchpad mapping
// whose chunk size mismatches the framework's scheduling chunk, measured
// on PageRank's sequential vtxProp walk.
func AblationChunkMapping(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Ablation A4 (§V.D)",
		Title:  "scratchpad chunk mapping vs OpenMP chunk (static schedule), PageRank",
		Header: []string{"sp chunk", "omp chunk", "local SP access %", "cycles"},
	}
	pr := prepareDataset(mustDataset("rmat"), o, false)
	_, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
	omCfg.DynamicSchedule = false // static scheduling is the §V.D setting
	omCfg.PISC = false            // isolate access locality from PISC load balance
	chunks := []int{omCfg.OpenMPChunk, 1}
	cfgs := make([]core.Config, len(chunks))
	for i, spChunk := range chunks {
		cfgs[i] = omCfg
		cfgs[i].SPChunkSize = spChunk
	}
	for i, st := range runMachines(o, spec, pr, cfgs...) {
		t.AddRow(chunks[i], omCfg.OpenMPChunk, 100*st.SPLocalFraction, uint64(st.Cycles))
	}
	t.Notes = append(t.Notes,
		"matched chunks turn the sequential copy's scratchpad accesses local (§V.D)")
	return t
}

// AblationLockedCache reproduces the §IX "locked cache vs. scratchpad"
// discussion: pinning the hot vtxProp lines in the L2 avoids most off-chip
// misses but still moves data at cache-line granularity and executes
// atomics on the cores, so it captures only part of OMEGA's gain.
func AblationLockedCache(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Ablation A5 (§IX)",
		Title:  "locked cache lines vs scratchpads, PageRank",
		Header: []string{"dataset", "locked-cache speedup", "OMEGA speedup", "locked traffic x", "OMEGA traffic x"},
	}
	for _, name := range []string{"rmat", "social"} {
		pr := prepareDataset(mustDataset(name), o, false)
		baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		lockedCfg := baseCfg
		lockedCfg.LockedLines = true
		lockedCfg.Name = "locked-cache"
		res := runMachines(o, spec, pr, baseCfg, lockedCfg, omCfg)
		base, locked, om := res[0], res[1], res[2]
		t.AddRow(name,
			locked.Speedup(base), om.Speedup(base),
			float64(base.NoCBytes)/float64(locked.NoCBytes),
			float64(base.NoCBytes)/float64(om.NoCBytes))
	}
	t.Notes = append(t.Notes,
		"paper §IX: locking avoids architecture changes but \"would still suffer",
		"from high on-chip communication overhead because data is inefficiently",
		"accessed on a cache-line granularity instead of word granularity\"")
	return t
}

// AblationPrefetcher strengthens the baseline with a next-line stream
// prefetcher (absent from Table III) and checks that OMEGA's advantage
// survives: prefetching helps the sequential edge stream, which both
// machines have, but not the random vtxProp traffic OMEGA targets.
func AblationPrefetcher(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:     "Ablation A6 (robustness)",
		Title:  "baseline with a next-line stream prefetcher, PageRank",
		Header: []string{"dataset", "speedup vs plain baseline", "speedup vs prefetching baseline"},
	}
	for _, name := range []string{"rmat", "social"} {
		pr := prepareDataset(mustDataset(name), o, false)
		baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		pfCfg := baseCfg
		pfCfg.L1Prefetch = true
		pfCfg.Name = "baseline+prefetch"
		res := runMachines(o, spec, pr, baseCfg, pfCfg, omCfg)
		base, pf, om := res[0], res[1], res[2]
		t.AddRow(name, om.Speedup(base), om.Speedup(pf))
	}
	t.Notes = append(t.Notes,
		"a stream prefetcher cannot touch the random vtxProp traffic, so",
		"OMEGA's win must persist against the strengthened baseline")
	return t
}

// RunAll executes every registered experiment sequentially in suite
// order, with no watchdog or recovery — the raw runners, back to back.
// Use Suite for the pooled, hardened execution path.
func RunAll(o Options) []*Table {
	o = o.Defaults()
	specs := Registry()
	tables := make([]*Table, len(specs))
	for i, spec := range specs {
		tables[i] = spec.Run(o)
	}
	return tables
}
