package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/ligra"
)

// faultStatsPair runs PageRank on the cheap rmat stand-in with the given
// fault configuration on both machines and returns their stats.
func faultStatsPair(tb testing.TB, o Options, rate float64, seed uint64) (core.MachineStats, core.MachineStats) {
	tb.Helper()
	spec, _ := algorithms.ByName("PageRank")
	pr := prepareDataset(mustDataset("rmat"), o, false)
	baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
	if seed > 0 {
		baseCfg.Faults = ResilienceFaults(seed, rate)
		omCfg.Faults = ResilienceFaults(seed, rate)
	}
	base := spec.Run(ligra.New(core.NewMachine(baseCfg), pr.g))
	om := spec.Run(ligra.New(core.NewMachine(omCfg), pr.g))
	return base, om
}

func statsJSON(tb testing.TB, s core.MachineStats) []byte {
	tb.Helper()
	data, err := s.JSON()
	if err != nil {
		tb.Fatalf("stats json: %v", err)
	}
	return data
}

// TestZeroRateInjectionIsBitIdentical is the zero-cost-abstraction
// guarantee: a fault config with rates all zero must produce byte-for-byte
// the same MachineStats as no fault config at all, on both machines.
func TestZeroRateInjectionIsBitIdentical(t *testing.T) {
	o := Options{Scale: 10, Seed: 42, Coverage: 0.20}
	baseOff, omOff := faultStatsPair(t, o, 0, 0)
	baseZero, omZero := faultStatsPair(t, o, 0, 7)
	if !bytes.Equal(statsJSON(t, baseOff), statsJSON(t, baseZero)) {
		t.Fatal("baseline: rate-0 fault config changed the stats")
	}
	if !bytes.Equal(statsJSON(t, omOff), statsJSON(t, omZero)) {
		t.Fatal("omega: rate-0 fault config changed the stats")
	}
}

// TestInjectionIsDeterministic: same (seed, rate) must reproduce
// byte-identical MachineStats across two fully independent runs.
func TestInjectionIsDeterministic(t *testing.T) {
	o := Options{Scale: 10, Seed: 42, Coverage: 0.20}
	base1, om1 := faultStatsPair(t, o, 1e-3, 11)
	base2, om2 := faultStatsPair(t, o, 1e-3, 11)
	if !bytes.Equal(statsJSON(t, base1), statsJSON(t, base2)) {
		t.Fatal("baseline: two runs at the same (seed, rate) diverged")
	}
	if !bytes.Equal(statsJSON(t, om1), statsJSON(t, om2)) {
		t.Fatal("omega: two runs at the same (seed, rate) diverged")
	}
	if base1.Faults.Total() == 0 {
		t.Fatal("rate 1e-3 should have injected at least one fault on the baseline")
	}
	// A different seed must draw a different fault sequence.
	base3, _ := faultStatsPair(t, o, 1e-3, 12)
	if bytes.Equal(statsJSON(t, base1), statsJSON(t, base3)) {
		t.Fatal("different fault seeds produced identical stats")
	}
}

func TestRunResilienceShape(t *testing.T) {
	tbl := RunResilience(Options{Scale: 10, Seed: 42, Coverage: 0.20})
	if tbl.Failed {
		t.Fatalf("resilience run failed: %s", tbl.Title)
	}
	want := 1 + len(ResilienceRates)
	if len(tbl.Rows) != want {
		t.Fatalf("rows %d, want %d (fault-free + %d rates)", len(tbl.Rows), want, len(ResilienceRates))
	}
	if len(ResilienceRates) < 3 {
		t.Fatalf("sweep must cover at least 3 injection rates, has %d", len(ResilienceRates))
	}
	// The highest rate must actually inject: the ECC-corrected column
	// ("base/omega") cannot still read 0/0.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[5] == "0/0" {
		t.Fatalf("highest rate injected nothing: %v", last)
	}
}

func TestRunSafeReturnsRunnerTable(t *testing.T) {
	spec := Spec{ID: "ok", Run: func(o Options) *Table {
		tb := &Table{ID: "ok", Title: "fine", Header: []string{"x"}}
		tb.AddRow("1")
		return tb
	}}
	tbl := RunSafe(context.Background(), spec, Options{}, time.Second)
	if tbl.Failed || tbl.Title != "fine" {
		t.Fatalf("healthy runner mangled: %+v", tbl)
	}
}

func TestRunSafeRecoversPanic(t *testing.T) {
	spec := Spec{ID: "boom", Run: func(o Options) *Table {
		panic("synthetic failure")
	}}
	tbl := RunSafe(context.Background(), spec, Options{}, time.Second)
	if !tbl.Failed {
		t.Fatal("panicking runner must yield a failed table")
	}
	if tbl.ID != "boom" || !strings.Contains(tbl.Title, "synthetic failure") {
		t.Fatalf("failed table lost the diagnosis: %+v", tbl)
	}
	// The stack trace rides along in the notes.
	if len(tbl.Notes) == 0 {
		t.Fatal("failed table should carry the panic stack")
	}
}

func TestRunSafeWatchdog(t *testing.T) {
	spec := Spec{ID: "hang", Run: func(o Options) *Table {
		time.Sleep(5 * time.Second)
		return &Table{ID: "hang"}
	}}
	start := time.Now()
	tbl := RunSafe(context.Background(), spec, Options{}, 30*time.Millisecond)
	if time.Since(start) > 2*time.Second {
		t.Fatal("watchdog did not fire promptly")
	}
	if !tbl.Failed || !strings.Contains(tbl.Title, "watchdog") {
		t.Fatalf("hung runner must be reported as a watchdog failure: %+v", tbl)
	}
}

func TestRunSafeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Spec{ID: "never", Run: func(o Options) *Table {
		time.Sleep(5 * time.Second)
		return &Table{ID: "never"}
	}}
	tbl := RunSafe(ctx, spec, Options{}, 0)
	if !tbl.Failed || !strings.Contains(tbl.Title, "cancelled") {
		t.Fatalf("cancelled runner must be reported: %+v", tbl)
	}
}

func TestRunSafeNilTable(t *testing.T) {
	spec := Spec{ID: "nil", Run: func(o Options) *Table { return nil }}
	tbl := RunSafe(context.Background(), spec, Options{}, time.Second)
	if !tbl.Failed {
		t.Fatal("nil result must be reported as failed")
	}
}

func TestRegistryHasUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Registry() {
		if spec.ID == "" || spec.Run == nil {
			t.Fatalf("incomplete spec %+v", spec)
		}
		if seen[spec.ID] {
			t.Fatalf("duplicate experiment ID %q", spec.ID)
		}
		seen[spec.ID] = true
	}
	if !seen["Resilience R1"] {
		t.Fatal("registry must include the resilience experiment")
	}
}

// TestFormatRowsWiderThanHeader: diagnostic rows may carry more cells than
// the header names; Format must grow its width vector instead of panicking.
func TestFormatRowsWiderThanHeader(t *testing.T) {
	tbl := &Table{ID: "W", Title: "wide", Header: []string{"only"}}
	tbl.AddRow("a", "extra-cell", "another")
	out := tbl.Format()
	for _, want := range []string{"a", "extra-cell", "another"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wide row cell %q missing:\n%s", want, out)
		}
	}
}

func TestFailedTableSplitsDiagnostics(t *testing.T) {
	tbl := FailedTable("X", "bad", "line1\nline2\n")
	if !tbl.Failed || tbl.ID != "X" {
		t.Fatalf("failed table malformed: %+v", tbl)
	}
	if len(tbl.Notes) != 2 {
		t.Fatalf("diagnostics should split into lines: %v", tbl.Notes)
	}
}
