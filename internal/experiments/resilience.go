package experiments

import (
	"fmt"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/faults"
)

// ResilienceRates are the default injection-rate sweep points of the
// resilience study (probability per DRAM read / NoC message; scratchpad
// parity runs at 1/100th of the point because its damage is permanent).
var ResilienceRates = []float64{1e-4, 1e-3, 1e-2}

// ResilienceFaults builds the fault configuration for one sweep point.
func ResilienceFaults(seed uint64, rate float64) faults.Config {
	return faults.Config{
		Seed:         seed,
		DRAMFlipRate: rate,
		NoCDropRate:  rate,
		SPParityRate: rate / 100,
	}
}

// RunResilience produces the paper-style resilience table: PageRank on
// the rmat stand-in under a sweep of injection rates, comparing baseline
// and OMEGA on (a) slowdown under injection relative to the fault-free
// run and (b) bytes exposed to the fault-prone paths (DRAM + NoC) — the
// resilience angle of the paper's §V.E granularity argument: OMEGA moves
// word-sized scratchpad packets where the baseline moves 64 B cache
// lines, so fewer bytes are in flight to be hit by any given fault rate,
// and scratchpad parity errors degrade gracefully to the cache hierarchy
// instead of corrupting results.
func RunResilience(o Options) *Table {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	t := &Table{
		ID:    "Resilience R1",
		Title: "fault injection: baseline vs OMEGA, PageRank on rmat",
		Header: []string{"rate", "base cycles", "base slowdown", "omega cycles",
			"omega slowdown", "ECC corr b/o", "ECC det b/o", "NoC drop b/o",
			"SP degraded", "exposed MB b/o"},
	}
	pr := prepareDataset(mustDataset("rmat"), o, false)

	run := func(rate float64) (core.MachineStats, core.MachineStats) {
		baseCfg, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
		if rate > 0 {
			baseCfg.Faults = ResilienceFaults(o.Seed, rate)
			omCfg.Faults = ResilienceFaults(o.Seed, rate)
		}
		res := runMachines(o, spec, pr, baseCfg, omCfg)
		return res[0], res[1]
	}

	exposedMB := func(s core.MachineStats) float64 {
		return float64(s.DRAMBytes+s.NoCBytes) / (1 << 20)
	}

	base0, om0 := run(0)
	t.AddRow("0 (fault-free)", uint64(base0.Cycles), 1.0, uint64(om0.Cycles), 1.0,
		"0/0", "0/0", "0/0", om0.SPDegraded,
		fmt.Sprintf("%.2f/%.2f", exposedMB(base0), exposedMB(om0)))

	var lastBase, lastOm core.MachineStats
	for _, rate := range ResilienceRates {
		base, om := run(rate)
		lastBase, lastOm = base, om
		t.AddRow(fmt.Sprintf("%.0e", rate),
			uint64(base.Cycles),
			float64(base.Cycles)/float64(base0.Cycles),
			uint64(om.Cycles),
			float64(om.Cycles)/float64(om0.Cycles),
			fmt.Sprintf("%d/%d", base.Faults.DRAMCorrected, om.Faults.DRAMCorrected),
			fmt.Sprintf("%d/%d", base.Faults.DRAMDetected, om.Faults.DRAMDetected),
			fmt.Sprintf("%d/%d", base.Faults.NoCDropped, om.Faults.NoCDropped),
			om.SPDegraded,
			fmt.Sprintf("%.2f/%.2f", exposedMB(base), exposedMB(om)))
	}
	t.Notes = append(t.Notes,
		"rate applies per DRAM read and per NoC message; SP parity at rate/100",
		"(its damage is permanent: the line degrades to the cache hierarchy)",
		"exposure: OMEGA's word-granularity packets put fewer bytes in flight",
		"on the fault-prone paths than the baseline's 64 B line transfers",
		fmt.Sprintf("at the highest rate OMEGA exposes %.2fx fewer bytes and keeps speedup %.2fx",
			exposedMB(lastBase)/exposedMB(lastOm),
			lastOm.Speedup(lastBase)))
	return t
}
