package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"omega/internal/graph/datasets"
)

// TestRunVariantsOrder checks that results come back in declaration
// order on both the concurrent and the serial path.
func TestRunVariantsOrder(t *testing.T) {
	fns := make([]func() int, 16)
	for i := range fns {
		fns[i] = func() int { return i * i }
	}
	for _, serial := range []bool{false, true} {
		got := runVariants(Options{SerialVariants: serial}, fns...)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("serial=%v: variant %d returned %d, want %d", serial, i, v, i*i)
			}
		}
	}
}

// TestRunVariantsPanic checks that a panicking variant goroutine
// re-raises on the caller — after all variants finish — carrying the
// original value and stack.
func TestRunVariantsPanic(t *testing.T) {
	finished := false
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a re-raised panic")
			}
			vp, ok := r.(*variantPanic)
			if !ok {
				t.Fatalf("recovered %T, want *variantPanic", r)
			}
			s := vp.String()
			if !strings.Contains(s, "boom") || !strings.Contains(s, "goroutine") {
				t.Fatalf("panic rendering missing value or stack: %q", s)
			}
		}()
		runVariants(Options{},
			func() int { panic("boom") },
			func() int { finished = true; return 1 },
		)
	}()
	if !finished {
		t.Fatal("healthy sibling variant did not run to completion")
	}
}

// TestRunVariantsPanicReachesRunSafe checks the harness contract: a
// variant panic inside a runner surfaces as a Failed table through
// RunSafe, exactly like a sequential runner's panic.
func TestRunVariantsPanicReachesRunSafe(t *testing.T) {
	spec := Spec{ID: "panicky", Run: func(o Options) *Table {
		runVariants(o, func() int { panic("variant exploded") }, func() int { return 0 })
		return &Table{ID: "unreachable"}
	}}
	tbl := RunSafe(context.Background(), spec, Options{}, time.Minute)
	if !tbl.Failed {
		t.Fatal("expected a Failed table")
	}
	joined := tbl.Title + strings.Join(tbl.Notes, "\n")
	if !strings.Contains(joined, "variant exploded") {
		t.Fatalf("failure report does not mention the variant panic: %s", joined)
	}
}

// TestVariantConcurrencyMatchesSerial is the race-regression test for
// the per-variant fan-out: experiments whose machine variants run on
// concurrent goroutines over a shared cached graph must produce tables
// identical to the sequential harness. Run under -race (CI does), this
// also proves the variants share no mutable machine state.
func TestVariantConcurrencyMatchesSerial(t *testing.T) {
	base := Options{Scale: 9, Seed: 42, Datasets: datasets.New()}
	for _, spec := range []Spec{
		{"Figure 15", Figure15},                 // runPair (two-variant fan-out)
		{"Figure 5", Figure5},                   // per-cell fan-out over one shared dataset
		{"Ablation A1", AblationScratchpadOnly}, // three-arm runMachines
	} {
		o := base
		par := spec.Run(o)
		o.SerialVariants = true
		ser := spec.Run(o)
		if !reflect.DeepEqual(par, ser) {
			t.Errorf("%s: concurrent-variant table differs from serial\nconcurrent:\n%s\nserial:\n%s",
				spec.ID, par.Format(), ser.Format())
		}
	}
}
