package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omega/internal/obs"
)

// metricsGoldenSpecs is the representative subset re-run with a metrics
// sink attached: it covers the plain two-machine path (Figure 14), the
// TMAM breakdown (Figure 3), the concurrent-variant path (Ablation A3),
// and a machine-less experiment (Table I) that emits only harness
// samples. The full-registry no-sink comparison is TestGoldenBitIdentity.
var metricsGoldenSpecs = []string{"Table I", "Figure 3", "Figure 14", "Ablation A3"}

// TestGoldenBitIdentityWithMetrics pins the observer-effect contract:
// attaching a metrics sink must not shift a single simulated number.
// Each experiment in the subset runs under RunSafe with a sink attached
// and its TSV rendering is compared byte-for-byte against the same
// goldens the no-sink test uses; the sink must also actually receive
// per-iteration samples for every experiment.
func TestGoldenBitIdentityWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison skipped in -short mode")
	}
	for _, id := range metricsGoldenSpecs {
		spec, ok := SpecByID(id)
		if !ok {
			t.Fatalf("unknown spec %q", id)
		}
		t.Run(strings.ReplaceAll(id, " ", "_"), func(t *testing.T) {
			name := strings.ReplaceAll(strings.ToLower(id), " ", "_") + ".tsv"
			path := filepath.Join("testdata", "golden-scale9-seed42", name)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s: %v", path, err)
			}
			buf := obs.NewBuffer()
			opts := Options{Scale: 9, Seed: 42, Coverage: 0.20, Metrics: buf}
			tbl := RunSafe(context.Background(), spec, opts, 0)
			if tbl.Failed {
				t.Fatalf("experiment failed: %s", tbl.Title)
			}
			if got := tbl.TSV(); got != string(want) {
				t.Errorf("output diverged from golden %s with metrics attached\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
			samples := buf.Drain()
			if len(samples) == 0 {
				t.Fatalf("no metric samples emitted for %s", id)
			}
			for _, s := range samples {
				if s.Experiment != id {
					t.Fatalf("sample not stamped with experiment ID: %+v", s)
				}
			}
		})
	}
}

// TestSuiteMetricsDeterminism pins the sink-ordering contract: a
// parallel suite run and a sequential one must deliver byte-identical
// sample streams to the user's sink — per-run buffers are sorted
// canonically and flushed in spec order regardless of worker
// interleaving.
func TestSuiteMetricsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run suite comparison skipped in -short mode")
	}
	var specs []Spec
	for _, id := range metricsGoldenSpecs {
		spec, _ := SpecByID(id)
		specs = append(specs, spec)
	}
	encode := func(parallelism int) []byte {
		buf := obs.NewBuffer()
		opts := Options{
			Scale: 9, Seed: 42, Coverage: 0.20,
			Parallelism: parallelism, Metrics: buf,
		}
		res := Suite(context.Background(), specs, opts, nil)
		if n := res.Failed(); n > 0 {
			t.Fatalf("suite at parallelism %d: %d experiments failed", parallelism, n)
		}
		var out bytes.Buffer
		w := obs.NewJSONLWriter(&out)
		for _, s := range buf.Drain() {
			w.Sample(s)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	seq := encode(1)
	par := encode(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("parallel suite sample stream diverged from sequential\nsequential %d bytes, parallel %d bytes",
			len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("suite emitted no samples")
	}
}
