package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"omega/internal/graph/datasets"
)

// renderAll formats every table into one byte stream for comparison.
func renderAll(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSuiteDeterminism is the acceptance gate of the parallel harness:
// a parallel cached run, a sequential cached run, and a fresh sequential
// run with no cache at all must emit byte-identical experiment tables.
func TestSuiteDeterminism(t *testing.T) {
	o := Options{Scale: 10, Seed: 42, Coverage: 0.20}

	// One comparison proves both properties at once: the reference is
	// sequential AND uncached, the candidate parallel AND cached, so
	// byte-identical output means neither the pool nor the cache can
	// perturb any table.
	fresh := o
	fresh.Parallelism = 1
	fresh.Datasets = nil // explicit: every runner generates from scratch
	freshRun := Suite(context.Background(), Registry(), fresh, nil)

	par := o
	par.Parallelism = 8
	par.Datasets = datasets.New()
	parRun := Suite(context.Background(), Registry(), par, nil)

	freshOut := renderAll(freshRun.Tables)
	if got := renderAll(parRun.Tables); got != freshOut {
		t.Fatal("parallel cached run differs from sequential fresh run")
	}
	if freshRun.Failed() != 0 {
		t.Fatalf("%d experiments failed", freshRun.Failed())
	}
	// The cached runs must actually share graphs: the suite asks for far
	// more datasets than there are distinct (kind, scale, seed, variant)
	// tuples at a fixed option set.
	hits, misses := par.Datasets.Stats()
	if hits == 0 {
		t.Fatalf("parallel suite recorded no cache hits (%d misses)", misses)
	}
	if misses == 0 || int(misses) != par.Datasets.Len() {
		t.Fatalf("misses %d should equal resident graphs %d", misses, par.Datasets.Len())
	}
}

// TestSuiteOrderAndTelemetry checks results come back in registry order
// with one telemetry record per experiment and a rendered summary.
func TestSuiteOrderAndTelemetry(t *testing.T) {
	specs := []Spec{
		{"Table III", Table3},
		{"Table IV", Table4},
		{"Table I", Table1},
	}
	o := Options{Scale: 9, Parallelism: 4}
	res := Suite(context.Background(), specs, o, nil)
	if len(res.Tables) != len(specs) || len(res.Telemetry) != len(specs) {
		t.Fatalf("result sizes %d/%d, want %d", len(res.Tables), len(res.Telemetry), len(specs))
	}
	for i, spec := range specs {
		if res.Telemetry[i].ID != spec.ID {
			t.Fatalf("telemetry[%d] = %q, want %q", i, res.Telemetry[i].ID, spec.ID)
		}
		if !strings.HasPrefix(res.Tables[i].ID, spec.ID) {
			t.Fatalf("tables[%d] = %q, want prefix %q", i, res.Tables[i].ID, spec.ID)
		}
		if res.Telemetry[i].Goroutines <= 0 {
			t.Fatalf("telemetry[%d] has no goroutine sample", i)
		}
	}
	if res.Summary == nil || len(res.Summary.Rows) != len(specs) {
		t.Fatal("summary table must carry one row per experiment")
	}
	if !strings.Contains(res.Summary.Format(), "dataset cache") {
		t.Fatalf("summary missing cache note:\n%s", res.Summary.Format())
	}
	if res.Parallelism != 3 {
		t.Fatalf("parallelism %d should clamp to the spec count 3", res.Parallelism)
	}
}

// TestSuiteProgressEvents checks every experiment reports exactly once
// with its completed table.
func TestSuiteProgressEvents(t *testing.T) {
	specs := []Spec{{"Table III", Table3}, {"Table IV", Table4}}
	seen := map[string]*Table{}
	res := Suite(context.Background(), specs, Options{Scale: 9, Parallelism: 2},
		func(ev SuiteEvent) {
			if ev.Total != len(specs) {
				t.Errorf("event total %d, want %d", ev.Total, len(specs))
			}
			seen[ev.ID] = ev.Table
		})
	if len(seen) != len(specs) {
		t.Fatalf("saw %d events, want %d", len(seen), len(specs))
	}
	for i, spec := range specs {
		if seen[spec.ID] != res.Tables[i] {
			t.Fatalf("event table for %s is not the result table", spec.ID)
		}
	}
}

// TestSuiteCancellation checks a cancelled context fails experiments
// fast instead of running them.
func TestSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Suite(ctx, Registry(), Options{Scale: 9, Parallelism: 2}, nil)
	if res.Failed() != len(res.Tables) {
		t.Fatalf("%d of %d failed; a cancelled suite must fail everything",
			res.Failed(), len(res.Tables))
	}
	for _, tbl := range res.Tables {
		if !strings.Contains(tbl.Title, "cancelled") {
			t.Fatalf("table %s not marked cancelled: %s", tbl.ID, tbl.Title)
		}
	}
}

// TestSuitePanicIsolated checks one panicking runner yields a Failed
// table while the rest of the suite completes.
func TestSuitePanicIsolated(t *testing.T) {
	specs := []Spec{
		{"Boom", func(Options) *Table { panic("kaput") }},
		{"Table III", Table3},
	}
	res := Suite(context.Background(), specs, Options{Scale: 9, Parallelism: 2}, nil)
	if !res.Tables[0].Failed || !strings.Contains(res.Tables[0].Title, "panicked") {
		t.Fatalf("panicking runner not captured: %+v", res.Tables[0])
	}
	if res.Tables[1].Failed {
		t.Fatal("healthy runner must survive a sibling panic")
	}
	if res.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed())
	}
}

// TestSuiteWatchdog checks o.Timeout is threaded through to RunSafe.
func TestSuiteWatchdog(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	specs := []Spec{{"Hang", func(Options) *Table { <-hang; return &Table{ID: "Hang"} }}}
	o := Options{Scale: 9, Parallelism: 1, Timeout: 20 * time.Millisecond}
	res := Suite(context.Background(), specs, o, nil)
	if !res.Tables[0].Failed || !strings.Contains(res.Tables[0].Title, "watchdog") {
		t.Fatalf("hung runner not reaped: %+v", res.Tables[0])
	}
}

// TestPreparedDatasetSharing checks prepareDataset actually shares one
// graph instance through the cache across distinct runner option copies.
func TestPreparedDatasetSharing(t *testing.T) {
	o := Options{Scale: 9, Seed: 42, Coverage: 0.20, Datasets: datasets.New()}.Defaults()
	a := prepareDataset(mustDataset("rmat"), o, false)
	b := prepareDataset(mustDataset("rmat"), o, false)
	if a.g != b.g {
		t.Fatal("same tuple must share one graph instance")
	}
	w := prepareDataset(mustDataset("rmat"), o, true)
	if w.g == a.g {
		t.Fatal("weighted variant must not alias the unweighted graph")
	}
	raw := rawDataset(mustDataset("rmat"), o, false)
	if raw == a.g {
		t.Fatal("raw variant must not alias the reordered graph")
	}
	so := o
	so.Seed++
	if s := prepareDataset(mustDataset("rmat"), so, false); s.g == a.g {
		t.Fatal("different seed must not share a graph")
	}
	if a.g.Name != "rmat" {
		t.Fatalf("cached graph name %q, want rmat", a.g.Name)
	}
}
