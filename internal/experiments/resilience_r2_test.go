package experiments

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"omega/internal/core"
	"omega/internal/faults"
	"omega/internal/ligra"
	"omega/internal/resilience"
)

func campaignOpts() Options {
	return Options{Scale: 9, Seed: 42, Coverage: 0.20}
}

// TestCampaignZeroRateIsClean: a campaign swept at rate 0 must classify
// every run clean on its first attempt with zero recovery activity — the
// engine itself must not perturb a fault-free simulation.
func TestCampaignZeroRateIsClean(t *testing.T) {
	camp := CampaignFor(campaignOpts())
	camp.Rates = []float64{0}
	rep, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range rep.Cells {
		if cell.Outcomes[resilience.Clean] != len(camp.Seeds) {
			t.Fatalf("site %v at rate 0: outcomes %v", cell.Site, cell.Outcomes)
		}
		if cell.Reexecutions != 0 || cell.OverheadCycles != 0 {
			t.Fatalf("site %v at rate 0 ran recovery: %+v", cell.Site, cell)
		}
		for _, run := range cell.Runs {
			if run.Attempts != 1 || run.First != resilience.Clean {
				t.Fatalf("site %v at rate 0: run %+v", cell.Site, run)
			}
		}
	}
}

// TestCampaignSequentialParallelIdentical is the campaign determinism
// guarantee: the same (site, rate, seed) sweep renders byte-identical
// TSV whether cells run sequentially or fanned out to goroutines.
func TestCampaignSequentialParallelIdentical(t *testing.T) {
	o := campaignOpts()
	o.SerialVariants = true
	seq := RunResilienceCampaign(o)
	o.SerialVariants = false
	par := RunResilienceCampaign(o)
	if seq.Failed || par.Failed {
		t.Fatalf("campaign failed: seq=%v par=%v", seq.Title, par.Title)
	}
	if seq.TSV() != par.TSV() {
		t.Fatalf("sequential and parallel campaigns diverge:\n--- seq\n%s\n--- par\n%s",
			seq.TSV(), par.TSV())
	}
}

// TestCampaignFaultSeedChangesRuns: FaultSeed is a real input — a
// different seed must draw a different campaign (while the same seed
// reproduces byte-identically, per the test above and the goldens).
func TestCampaignFaultSeedChangesRuns(t *testing.T) {
	o := campaignOpts()
	a := RunResilienceCampaign(o)
	o.FaultSeed = 7
	b := RunResilienceCampaign(o)
	if a.TSV() == b.TSV() {
		t.Fatal("fault seeds 1 and 7 produced identical campaigns")
	}
}

// TestLineBufSDCPair is the silent-data-corruption acceptance pair: the
// same line-buffer corruption (rate 5e-3, seed 3) classifies as
// detected-corrected when the modeled hardware has memo generation
// checks, and as silent-data-corruption — recovered within the
// re-execution budget — when it does not. The (rate, seed) pair was
// picked empirically; determinism keeps it stable.
func TestLineBufSDCPair(t *testing.T) {
	const rate, seed = 5e-3, 3
	pol := resilience.DefaultPolicy()

	checked := CampaignFor(campaignOpts()).Workload
	g, err := resilience.RunGolden(checked, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := resilience.RunOne(checked, faults.SiteLineBuf, rate, seed, pol, g, nil)
	if rep.First != resilience.DetectedCorrected {
		t.Fatalf("gen checks on: first attempt %v, want detected-corrected", rep.First)
	}
	if rep.Attempts != 1 {
		t.Fatalf("gen checks on: %d attempts, want 1 (detection needs no recovery)", rep.Attempts)
	}

	unchecked := checked
	unchecked.Config.DisableLineBufGenCheck = true
	g2, err := resilience.RunGolden(unchecked, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep = resilience.RunOne(unchecked, faults.SiteLineBuf, rate, seed, pol, g2, nil)
	if rep.First != resilience.SilentDataCorruption {
		t.Fatalf("gen checks off: first attempt %v, want silent-data-corruption", rep.First)
	}
	if !rep.Recovered() {
		t.Fatalf("SDC not recovered within budget: %+v", rep)
	}
	if rep.Attempts < 2 || rep.Attempts > pol.MaxRetries+1 {
		t.Fatalf("recovery attempts %d outside (1, %d]", rep.Attempts, pol.MaxRetries+1)
	}
	if rep.OverheadCycles == 0 {
		t.Fatal("recovery charged no overhead cycles")
	}
}

// TestSnapshotRestoreRerunIdentity: restoring the pristine checkpoint and
// re-running must reproduce the original run's stats byte-for-byte, with
// and without fault injection — the property the recovery loop rests on.
func TestSnapshotRestoreRerunIdentity(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		w := CampaignFor(campaignOpts()).Workload
		cfg := w.Config
		if withFaults {
			cfg.Faults = faults.Config{Seed: 11, SPParityRate: 1e-3, DRAMFlipRate: 1e-3}
		}
		m := core.NewMachine(cfg)
		pristine := m.Snapshot()
		st1, _ := w.Run(ligra.New(m, w.Graph))
		m.Restore(pristine)
		st2, _ := w.Run(ligra.New(m, w.Graph))
		if !bytes.Equal(statsJSON(t, st1), statsJSON(t, st2)) {
			t.Fatalf("faults=%v: restored re-run diverged from original", withFaults)
		}
		if withFaults && st1.Faults.Total() == 0 {
			t.Fatal("fault arm injected nothing — identity check is vacuous")
		}
	}
}

// TestWedgedRunnerCancelled is the cancellation acceptance test: a
// deliberately wedged experiment — a machine spinning in ParallelFor
// forever — must be cancelled cooperatively by a 100 ms watchdog, return
// well under a second with a failed table, and leave no goroutine behind.
func TestWedgedRunnerCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	spec := Spec{ID: "wedge", Run: func(o Options) *Table {
		cfg, _ := core.ScaledPair(1<<9, 8, 0.20)
		m := core.NewMachine(cfg)
		m.AttachContext(o.Context())
		for {
			// Each pass schedules far more items than the cancellation poll
			// interval, so a cancel lands mid-loop, not between passes.
			m.ParallelFor(1<<20, func(ctx *core.Ctx, i int) {
				ctx.Exec(1)
			})
		}
	}}
	start := time.Now()
	tbl := RunSafe(context.Background(), spec, campaignOpts(), 100*time.Millisecond)
	elapsed := time.Since(start)
	if elapsed >= time.Second {
		t.Fatalf("wedged runner took %v to cancel, want < 1s", elapsed)
	}
	if !tbl.Failed || !strings.Contains(tbl.Title, "watchdog") {
		t.Fatalf("wedged runner not reported as watchdog failure: %+v", tbl)
	}
	if !strings.Contains(tbl.Title, "cancelled cooperatively") {
		t.Fatalf("runner should have unwound cooperatively: %q", tbl.Title)
	}
	// The runner goroutine must actually be gone — poll briefly to let the
	// scheduler retire it.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked: %d > baseline %d", n, baseline)
	}
}

// TestLineBufferNeutralUnderSPFaults (fault × line-buffer interaction):
// injected scratchpad parity degradations drop vertices to the cache
// hierarchy on every core; the same-line fast path must stay bit-neutral
// through that — never replaying a memo from before the degradation.
func TestLineBufferNeutralUnderSPFaults(t *testing.T) {
	o := campaignOpts()
	run := func(disableLineBuf bool) core.MachineStats {
		w := CampaignFor(o).Workload
		cfg := w.Config
		cfg.DisableLineBuffer = disableLineBuf
		cfg.Faults = faults.Config{Seed: 5, SPParityRate: 1e-2}
		m := core.NewMachine(cfg)
		st, _ := w.Run(ligra.New(m, w.Graph))
		return st
	}
	on, off := run(false), run(true)
	if on.SPDegraded == 0 {
		t.Fatal("parity rate 1e-2 degraded nothing — interaction test is vacuous")
	}
	if !bytes.Equal(statsJSON(t, on), statsJSON(t, off)) {
		t.Fatal("line buffer changed stats under scratchpad parity faults")
	}
}
