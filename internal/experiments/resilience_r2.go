package experiments

import (
	"fmt"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/faults"
	"omega/internal/ligra"
	"omega/internal/pisc"
	"omega/internal/resilience"
)

// CampaignRates are the injection-rate sweep points of the R2 campaigns
// (the high R1 point is dropped: at 1e-2 every site saturates into the
// same all-failed histogram, which measures nothing).
var CampaignRates = []float64{1e-4, 1e-3}

// campaignSeedCount is how many independent fault seeds each (site, rate)
// cell sweeps.
const campaignSeedCount = 2

// CampaignFor assembles the standard R2 campaign for an options set:
// PageRank on the reordered rmat stand-in, on the OMEGA machine (the only
// variant with every injection site live: scratchpad parity, PISC ALU,
// line buffer, directory, DRAM, NoC), sweeping every fault site over
// CampaignRates × campaignSeedCount seeds under the default recovery
// policy.
func CampaignFor(o Options) resilience.Campaign {
	o = o.Defaults()
	spec, _ := algorithms.ByName("PageRank")
	pr := prepareDataset(mustDataset("rmat"), o, false)
	_, omCfg := core.ScaledPair(pr.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
	seeds := make([]uint64, campaignSeedCount)
	for i := range seeds {
		seeds[i] = o.FaultSeed + uint64(i)
	}
	return resilience.Campaign{
		Workload: resilience.Workload{
			Name:   "PageRank/rmat/omega",
			Config: omCfg,
			Graph:  pr.g,
			// The rank vector is the validated output. PageRank's property
			// array is scratch (zeroed every iteration), so the workload
			// must hand the ranks to the engine explicitly — otherwise ALU
			// corruption folds into the result unseen.
			Run: func(fw *ligra.Framework) (core.MachineStats, [][]pisc.Value) {
				res := algorithms.PageRank(fw, algorithms.Params{Iterations: 1})
				out := make([]pisc.Value, len(res.Ranks))
				for i, r := range res.Ranks {
					out[i] = pisc.FloatValue(r)
				}
				return fw.Machine().Stats(), [][]pisc.Value{out}
			},
		},
		Sites:    faults.Sites(),
		Rates:    CampaignRates,
		Seeds:    seeds,
		Policy:   resilience.DefaultPolicy(),
		Parallel: !o.SerialVariants,
		Ctx:      o.ctx,
	}
}

// RunResilienceCampaign is the Resilience R2 experiment: the full fault
// campaign — site × rate sweep, golden-validated outcome classification,
// checkpointed re-execution recovery — rendered as the outcome-histogram
// table.
func RunResilienceCampaign(o Options) *Table {
	o = o.Defaults()
	camp := CampaignFor(o)
	// Campaign runs never route through the cell cache: every injected run
	// perturbs the machine, and the golden run feeds the engine's internal
	// checkpoint, so none of them are reusable cells. Count them so the
	// suite's cache report stays honest about what was skipped (the golden
	// run plus one first-attempt per site × rate × seed; recovery
	// re-executions are demand-driven and not counted here).
	if o.Cells != nil {
		o.Cells.noteUncacheable(UncacheableCampaign,
			uint64(1+len(camp.Sites)*len(camp.Rates)*len(camp.Seeds)))
	}
	rep, err := camp.Run()
	if err != nil {
		return FailedTable("Resilience R2", err.Error())
	}
	t := &Table{
		ID: "Resilience R2",
		Title: fmt.Sprintf("fault campaigns: %s, %d seeds/cell, recovery budget %d",
			camp.Workload.Name, len(camp.Seeds), camp.Policy.MaxRetries),
		Header: []string{"site", "rate", "clean", "det-corr", "det-degr",
			"crashed", "sdc", "recovered", "reexecs", "overhead cyc"},
	}
	for _, cell := range rep.Cells {
		t.AddRow(cell.Site.String(), fmt.Sprintf("%.0e", cell.Rate),
			cell.Outcomes[resilience.Clean],
			cell.Outcomes[resilience.DetectedCorrected],
			cell.Outcomes[resilience.DetectedDegraded],
			cell.Outcomes[resilience.Crashed],
			cell.Outcomes[resilience.SilentDataCorruption],
			cell.Recovered, cell.Reexecutions, cell.OverheadCycles)
	}
	t.Notes = append(t.Notes,
		"histogram columns classify each run's FIRST attempt against the fault-free golden:",
		"outputs (rank vectors within tolerance), timing signature, and detection counters",
		fmt.Sprintf("recovery: up to %d re-executions from the pristine machine checkpoint,", camp.Policy.MaxRetries),
		fmt.Sprintf("backoff %d cycles doubling per retry, float tolerance %.0e", camp.Policy.BackoffCycles, camp.Policy.Tolerance),
		fmt.Sprintf("fault seeds %v (re-executions re-key streams per attempt); dataset seed %d", camp.Seeds, o.Seed),
		"sp-parity degradation is permanent by design: those runs classify detected-degraded",
		"and need no re-execution — OMEGA keeps running slower instead of wrong")
	return t
}
