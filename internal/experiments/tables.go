package experiments

import (
	"fmt"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/power"
)

// Table1 reproduces Table I: dataset characterization — vertex/edge
// counts, directedness, top-20 % in/out-degree connectivity, and the
// power-law classification.
func Table1(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:    "Table I",
		Title: "graph dataset characterization (synthetic stand-ins)",
		Header: []string{"dataset", "stands-for", "#vertices", "#edges", "type",
			"in-deg con.%", "out-deg con.%", "power law"},
	}
	dss := StandardDatasets()
	fns := make([]func() graph.DegreeStats, len(dss))
	for i, ds := range dss {
		fns[i] = func() graph.DegreeStats {
			return graph.ComputeDegreeStats(rawDataset(ds, o, false))
		}
	}
	for i, s := range runVariants(o, fns...) {
		ds := dss[i]
		typ := "dir."
		if s.Undirected {
			typ = "undir."
		}
		pl := "no"
		if s.PowerLaw {
			pl = "yes"
		}
		t.AddRow(ds.Name, ds.StandsFor, s.NumVertices, s.NumEdges, typ,
			s.InDegreeConnectivity, s.OutDegreeConnectivity, pl)
		if s.PowerLaw != ds.PowerLaw {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s classified power-law=%v, expected %v", ds.Name, s.PowerLaw, ds.PowerLaw))
		}
	}
	t.Notes = append(t.Notes,
		"paper: power-law sets have in-degree connectivity 58-100%, road sets ~29%")
	return t
}

// Table2 reproduces Table II: algorithm characterization, with the
// qualitative %atomic / %random columns re-measured from instrumented
// runs rather than asserted.
func Table2(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:    "Table II",
		Title: "graph-based algorithm characterization (measured)",
		Header: []string{"algorithm", "atomic op", "%atomic", "%random",
			"entry B", "#vtxProp", "active-list", "reads src"},
	}
	dir := prepareDataset(mustDataset("rmat"), o, false)
	dirW := prepareDataset(mustDataset("rmat"), o, true)
	undir := prepareDataset(mustDataset("apu"), o, false)
	specs := algorithms.All()
	fns := make([]func() core.MachineStats, len(specs))
	for i, spec := range specs {
		p := dir
		switch {
		case spec.NeedsUndirected:
			p = undir
		case spec.Name == "SSSP":
			p = dirW
		}
		fns[i] = func() core.MachineStats {
			_, omCfg := core.ScaledPair(p.g.NumVertices(), spec.VtxPropBytes, o.Coverage)
			return runCell(o, spec, p, omCfg, p.g.Name)
		}
	}
	for i, st := range runVariants(o, fns...) {
		spec := specs[i]
		total := float64(st.TotalAccesses())
		atomicPct := 100 * float64(st.Atomics) / total
		randomPct := 100 * float64(st.AccessesByKind[0]) / total // vtxProp
		al := "no"
		if spec.ActiveList {
			al = "yes"
		}
		rs := "no"
		if spec.ReadsSrc {
			rs = "yes"
		}
		t.AddRow(spec.Name, spec.AtomicOp,
			fmt.Sprintf("%.1f (%s)", atomicPct, spec.AtomicIntensity),
			fmt.Sprintf("%.1f (%s)", randomPct, spec.RandomIntensity),
			spec.VtxPropBytes, spec.NumProps, al, rs)
	}
	t.Notes = append(t.Notes,
		"qualitative labels in parentheses are the paper's Table II rows")
	return t
}

// Table3 reproduces Table III: the experimental testbed configuration of
// both machines, at full (paper) size and at the scaled size used for a
// given option set.
func Table3(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "Table III",
		Title:  "experimental testbed setup",
		Header: []string{"machine", "cores", "L1D/core", "L2/core", "SP/core", "PISC", "SP gran."},
	}
	kb := func(bytes int) string {
		if bytes == 0 {
			return "-"
		}
		if bytes < 1<<10 {
			return fmt.Sprintf("%d B", bytes)
		}
		return fmt.Sprintf("%d KB", bytes>>10)
	}
	add := func(tag string, cfg core.Config) {
		gran := "-"
		if cfg.SPBytesPerCore > 0 {
			gran = "1-8 B"
		}
		t.AddRow(tag+cfg.Name, cfg.NumCores,
			kb(cfg.L1Bytes), kb(cfg.L2BytesPerCore), kb(cfg.SPBytesPerCore),
			cfg.PISC, gran)
	}
	add("paper/", core.Baseline())
	add("paper/", core.OMEGA())
	b, om := core.ScaledPair(1<<o.Scale, 8, o.Coverage)
	add("scaled/", b)
	add("scaled/", om)
	t.Notes = append(t.Notes,
		"common: 2GHz 8-wide OoO, 192-entry ROB, 64B lines, MESI, 4xDDR3-1600, crossbar 128-bit",
		"scaled rows: on-chip storage sized to the generated dataset per DESIGN.md §3")
	return t
}

// Table4 reproduces Table IV: peak power and area per node for both
// machines at the paper's full-size configuration.
func Table4(o Options) *Table {
	t := &Table{
		ID:     "Table IV",
		Title:  "peak power and area for a CMP and OMEGA node (45nm)",
		Header: []string{"component", "baseline W", "baseline mm2", "omega W", "omega mm2"},
	}
	base := power.Budget(core.Baseline())
	om := power.Budget(core.OMEGA())
	find := func(b power.NodeBudget, name string) (power.Component, bool) {
		for _, c := range b.Components {
			if c.Name == name {
				return c, true
			}
		}
		return power.Component{}, false
	}
	for _, name := range []string{"Core", "L1 caches", "Scratchpad", "PISC", "L2 cache"} {
		bc, bok := find(base, name)
		oc, ook := find(om, name)
		row := []string{name, "N/A", "N/A", "N/A", "N/A"}
		if bok {
			row[1] = fmt.Sprintf("%.2f", bc.PowerW)
			row[2] = fmt.Sprintf("%.2f", bc.AreaMM2)
		}
		if ook {
			row[3] = fmt.Sprintf("%.3f", oc.PowerW)
			row[4] = fmt.Sprintf("%.2f", oc.AreaMM2)
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddRow("Node total",
		base.TotalPower(), base.TotalArea(), om.TotalPower(), om.TotalArea())
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: baseline 6.17 W / 32.91 mm2, OMEGA 6.21 W / 32.15 mm2 "+
			"(measured: %.2f W / %.2f mm2 vs %.2f W / %.2f mm2)",
			base.TotalPower(), base.TotalArea(), om.TotalPower(), om.TotalArea()))
	return t
}

func mustDataset(name string) Dataset {
	d, ok := DatasetByName(name)
	if !ok {
		panic("experiments: unknown dataset " + name)
	}
	return d
}
