package experiments

import (
	"fmt"
	"html/template"
	"io"
	"strconv"
	"strings"
	"time"
)

// ReportMeta describes one generated report.
type ReportMeta struct {
	// Title heads the page.
	Title string
	// Options echoes the experiment options used.
	Options Options
	// Generated is the generation timestamp (set by the caller so runs
	// stay reproducible).
	Generated time.Time
	// Runtime is the wall-clock cost of the run.
	Runtime time.Duration
}

// reportTable adapts a Table for the template, attaching per-row bars for
// a heuristically chosen numeric column.
type reportTable struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// BarCol is the column rendered with bars (-1 = none).
	BarCol int
	// BarWidths holds a 0-100 width percentage per row.
	BarWidths []int
}

// barColumn picks the column to visualize: the first whose header mentions
// a rate-like quantity, else -1.
func barColumn(t *Table) int {
	for i, h := range t.Header {
		lh := strings.ToLower(h)
		if strings.Contains(lh, "speedup") || strings.Contains(lh, "reduction") ||
			strings.Contains(lh, "saving") || strings.Contains(lh, "improvement") {
			return i
		}
	}
	return -1
}

func buildReportTable(t *Table) reportTable {
	rt := reportTable{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
		Notes: t.Notes, BarCol: barColumn(t),
	}
	if rt.BarCol < 0 {
		return rt
	}
	maxV := 0.0
	vals := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		if rt.BarCol < len(r) {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(r[rt.BarCol], "%"), 64); err == nil {
				vals[i] = v
				if v > maxV {
					maxV = v
				}
			}
		}
	}
	if maxV == 0 {
		rt.BarCol = -1
		return rt
	}
	rt.BarWidths = make([]int, len(t.Rows))
	for i, v := range vals {
		rt.BarWidths[i] = int(v / maxV * 100)
	}
	return rt
}

var reportTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"mulf": func(a, b float64) float64 { return a * b },
}).Parse(reportSrc))

const reportSrc = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{{.Meta.Title}}</title>
<style>
body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:72rem;color:#1a1a2e}
h1{border-bottom:2px solid #334;padding-bottom:.3rem}
h2{margin-top:2.2rem;color:#223}
table{border-collapse:collapse;margin:.6rem 0}
th,td{border:1px solid #bbc;padding:.25rem .6rem;text-align:left;font-size:.92rem}
th{background:#eef}
.note{color:#556;font-size:.85rem;margin:.15rem 0}
.bar{display:inline-block;height:.7rem;background:#4a7dcf;vertical-align:middle;margin-left:.4rem}
.meta{color:#667;font-size:.85rem}
</style></head><body>
<h1>{{.Meta.Title}}</h1>
<p class="meta">generated {{.Meta.Generated.Format "2006-01-02 15:04:05"}} ·
scale 2^{{.Meta.Options.Scale}} · seed {{.Meta.Options.Seed}} ·
coverage {{printf "%.0f%%" (mulf .Meta.Options.Coverage 100)}} ·
runtime {{.Meta.Runtime}}</p>
{{range .Tables}}
<h2>{{.ID}} — {{.Title}}</h2>
<table><tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{$t := .}}
{{range $ri, $row := .Rows}}<tr>{{range $ci, $cell := $row}}<td>{{$cell}}{{if and (eq $ci $t.BarCol) $t.BarWidths}}<span class="bar" style="width:{{index $t.BarWidths $ri}}px"></span>{{end}}</td>{{end}}</tr>
{{end}}</table>
{{range .Notes}}<p class="note">note: {{.}}</p>{{end}}
{{end}}
</body></html>
`

// WriteHTMLReport renders the given experiment tables as a self-contained
// HTML page with inline bar charts for speedup-class columns.
func WriteHTMLReport(w io.Writer, meta ReportMeta, tables []*Table) error {
	if meta.Title == "" {
		meta.Title = "OMEGA reproduction report"
	}
	rts := make([]reportTable, 0, len(tables))
	for _, t := range tables {
		rts = append(rts, buildReportTable(t))
	}
	data := struct {
		Meta   ReportMeta
		Tables []reportTable
	}{meta, rts}
	if err := reportTmpl.Execute(w, data); err != nil {
		return fmt.Errorf("experiments: render report: %w", err)
	}
	return nil
}
