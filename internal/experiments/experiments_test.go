package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cheapOpts keeps test runtime low.
func cheapOpts() Options { return Options{Scale: 11, Seed: 42, Coverage: 0.20} }

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func cellFloat(tb testing.TB, t *Table, row, col int) float64 {
	tb.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, row, col), "%"), 64)
	if err != nil {
		tb.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, cell(t, row, col), err)
	}
	return v
}

func findRow(t *Table, name string) int {
	for i, r := range t.Rows {
		if r[0] == name {
			return i
		}
	}
	return -1
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Scale == 0 || o.Seed == 0 || o.Coverage == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestTableFormatAndTSV(t *testing.T) {
	tbl := &Table{ID: "X", Title: "y", Header: []string{"a", "b"}}
	tbl.AddRow("v", 1.5)
	txt := tbl.Format()
	if !strings.Contains(txt, "X") || !strings.Contains(txt, "1.50") {
		t.Fatalf("format: %s", txt)
	}
	tsv := tbl.TSV()
	if !strings.Contains(tsv, "a\tb") || !strings.Contains(tsv, "v\t1.50") {
		t.Fatalf("tsv: %s", tsv)
	}
}

func TestTableJSON(t *testing.T) {
	tbl := &Table{ID: "X", Title: "y", Header: []string{"a"}, Notes: []string{"n"}}
	tbl.AddRow("v")
	data, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"id\": \"X\"", "\"rows\"", "\"n\""} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("json missing %s:\n%s", want, data)
		}
	}
}

func TestAblationPrefetcherShape(t *testing.T) {
	tbl := AblationPrefetcher(cheapOpts())
	for i := range tbl.Rows {
		if sp := cellFloat(t, tbl, i, 2); sp < 1.2 {
			t.Fatalf("row %d: OMEGA must survive a prefetching baseline: %.2f", i, sp)
		}
	}
}

func TestBuildFamily(t *testing.T) {
	for _, fam := range Families() {
		g, err := BuildFamily(fam, 9, 3, false, false)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", fam, err)
		}
	}
	if _, err := BuildFamily("nope", 9, 3, false, false); err == nil {
		t.Fatal("unknown family should error")
	}
	if _, err := BuildFamily("rmat", 99, 3, false, false); err == nil {
		t.Fatal("absurd scale should error")
	}
}

func TestTableChart(t *testing.T) {
	tbl := &Table{ID: "F", Title: "t", Header: []string{"ds", "speedup"}}
	tbl.AddRow("a", 2.0)
	tbl.AddRow("b", 1.0)
	c := tbl.Chart(1, 10)
	if !strings.Contains(c, "##########") {
		t.Fatalf("max bar should span full width:\n%s", c)
	}
	if !strings.Contains(c, "#####\n") {
		t.Fatalf("half bar missing:\n%s", c)
	}
	empty := &Table{ID: "E", Title: "e", Header: []string{"x", "y"}}
	empty.AddRow("a", "not-a-number")
	if out := empty.Chart(1, 10); strings.Contains(out, "#") {
		t.Fatal("non-numeric column should render no bars")
	}
}

func TestStandardDatasetsResolve(t *testing.T) {
	if len(StandardDatasets()) != 5 {
		t.Fatalf("want 5 datasets")
	}
	for _, ds := range StandardDatasets() {
		got, ok := DatasetByName(ds.Name)
		if !ok || got.Name != ds.Name {
			t.Fatalf("dataset %q does not resolve", ds.Name)
		}
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Fatal("unknown dataset resolved")
	}
}

func TestTable1Classifications(t *testing.T) {
	tbl := Table1(cheapOpts())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, ds := range StandardDatasets() {
		i := findRow(tbl, ds.Name)
		if i < 0 {
			t.Fatalf("dataset %s missing", ds.Name)
		}
		pl := cell(tbl, i, 7)
		want := "no"
		if ds.PowerLaw {
			want = "yes"
		}
		if pl != want {
			t.Fatalf("%s power-law = %s, want %s", ds.Name, pl, want)
		}
	}
	// Road connectivity must be far below the power-law sets (Table I).
	road := cellFloat(t, tbl, findRow(tbl, "road"), 5)
	rmat := cellFloat(t, tbl, findRow(tbl, "rmat"), 5)
	if road >= 45 || rmat <= 60 {
		t.Fatalf("connectivity shape wrong: road %.0f rmat %.0f", road, rmat)
	}
}

func TestTable2HasAllAlgorithms(t *testing.T) {
	tbl := Table2(cheapOpts())
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows %d, want 8", len(tbl.Rows))
	}
	// PageRank's measured atomic share must exceed BFS's (Table II:
	// high vs low).
	pr := findRow(tbl, "PageRank")
	bfs := findRow(tbl, "BFS")
	prAtomic, _ := strconv.ParseFloat(strings.Fields(cell(tbl, pr, 2))[0], 64)
	bfsAtomic, _ := strconv.ParseFloat(strings.Fields(cell(tbl, bfs, 2))[0], 64)
	if prAtomic <= bfsAtomic {
		t.Fatalf("PageRank %%atomic (%.1f) should exceed BFS (%.1f)", prAtomic, bfsAtomic)
	}
}

func TestTable3ListsFourMachines(t *testing.T) {
	tbl := Table3(cheapOpts())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d, want 4 (paper + scaled pairs)", len(tbl.Rows))
	}
}

func TestTable4NodeTotals(t *testing.T) {
	tbl := Table4(cheapOpts())
	i := findRow(tbl, "Node total")
	if i < 0 {
		t.Fatal("no node total row")
	}
	basePower := cellFloat(t, tbl, i, 1)
	omPower := cellFloat(t, tbl, i, 3)
	if basePower < 5 || basePower > 7 || omPower < 5 || omPower > 7 {
		t.Fatalf("node power out of Table IV band: %.2f / %.2f", basePower, omPower)
	}
}

func TestFigure3MemoryDominates(t *testing.T) {
	tbl := Figure3(cheapOpts())
	pr := findRow(tbl, "PageRank")
	tc := findRow(tbl, "TC")
	if pr < 0 || tc < 0 {
		t.Fatal("rows missing")
	}
	if cellFloat(t, tbl, pr, 4) < 50 {
		t.Fatalf("PageRank should be heavily memory bound: %s", cell(tbl, pr, 4))
	}
	if cellFloat(t, tbl, tc, 4) > 50 {
		t.Fatalf("TC should be compute bound: %s", cell(tbl, tc, 4))
	}
}

func TestFigure4bPowerLawSkew(t *testing.T) {
	tbl := Figure4b(cheapOpts())
	pr := findRow(tbl, "PageRank")
	if share := cellFloat(t, tbl, pr, 2); share < 60 {
		t.Fatalf("PageRank top-20%% share %.0f should be high on rmat", share)
	}
}

func TestFigure14PowerLawBeatsRoad(t *testing.T) {
	o := cheapOpts()
	tbl := Figure14(o)
	rmat := findRow(tbl, "rmat")
	road := findRow(tbl, "road")
	prRmat := cellFloat(t, tbl, rmat, 1)
	prRoad := cellFloat(t, tbl, road, 1)
	if prRmat <= 1.2 {
		t.Fatalf("rmat PageRank speedup %.2f should be well above 1", prRmat)
	}
	if prRoad >= prRmat {
		t.Fatalf("road (%.2f) should gain less than rmat (%.2f)", prRoad, prRmat)
	}
}

func TestFigure15OmegaWins(t *testing.T) {
	tbl := Figure15(cheapOpts())
	for i := range tbl.Rows {
		base := cellFloat(t, tbl, i, 1)
		om := cellFloat(t, tbl, i, 2)
		if om <= base {
			t.Fatalf("%s: OMEGA LLC %.1f should beat baseline %.1f",
				cell(tbl, i, 0), om, base)
		}
	}
}

func TestFigure17TrafficShape(t *testing.T) {
	tbl := Figure17(cheapOpts())
	rmat := findRow(tbl, "rmat")
	if red := cellFloat(t, tbl, rmat, 3); red < 1.5 {
		t.Fatalf("rmat traffic reduction %.2f should be clear", red)
	}
}

func TestFigure19Monotone(t *testing.T) {
	tbl := Figure19(cheapOpts())
	// PageRank rows come first: speedup must not increase as coverage
	// shrinks.
	s20 := cellFloat(t, tbl, 0, 3)
	s5 := cellFloat(t, tbl, 2, 3)
	if s5 > s20+0.05 {
		t.Fatalf("smaller scratchpads cannot help: 20%%=%.2f 5%%=%.2f", s20, s5)
	}
}

func TestFigure20Scenarios(t *testing.T) {
	tbl := Figure20(cheapOpts())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows %d, want 4 scenarios + validation", len(tbl.Rows))
	}
	for i := 0; i < 4; i++ {
		if sp := cellFloat(t, tbl, i, 3); sp <= 1.0 {
			t.Fatalf("scenario %s should win: %.2f", cell(tbl, i, 0), sp)
		}
	}
}

func TestAblationScratchpadOnlyOrdering(t *testing.T) {
	tbl := AblationScratchpadOnly(cheapOpts())
	for i := range tbl.Rows {
		spOnly := cellFloat(t, tbl, i, 1)
		full := cellFloat(t, tbl, i, 2)
		if full <= spOnly {
			t.Fatalf("%s: full OMEGA (%.2f) must beat storage-only (%.2f)",
				cell(tbl, i, 0), full, spOnly)
		}
	}
}

func TestAblationAtomicOverheadPositive(t *testing.T) {
	tbl := AblationAtomicOverhead(cheapOpts())
	for i := range tbl.Rows {
		if ovh := cellFloat(t, tbl, i, 3); ovh <= 0 {
			t.Fatalf("%s: atomics must cost something: %.1f%%", cell(tbl, i, 0), ovh)
		}
	}
}

func TestAblationReorderingHelps(t *testing.T) {
	tbl := AblationReordering(cheapOpts())
	id := findRow(tbl, "identity")
	ind := findRow(tbl, "in-degree")
	idCycles := cellFloat(t, tbl, id, 1)
	indCycles := cellFloat(t, tbl, ind, 1)
	if indCycles >= idCycles {
		t.Fatalf("in-degree reordering should help the baseline: %v vs %v",
			indCycles, idCycles)
	}
}

func TestAblationChunkMappingLocality(t *testing.T) {
	tbl := AblationChunkMapping(cheapOpts())
	matched := cellFloat(t, tbl, 0, 2)
	mismatched := cellFloat(t, tbl, 1, 2)
	if matched <= mismatched {
		t.Fatalf("matched chunks must raise local accesses: %.1f vs %.1f",
			matched, mismatched)
	}
}
