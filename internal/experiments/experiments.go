// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each runner
// returns a structured Table whose rows mirror what the paper reports;
// cmd/omega-bench prints them all and bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/graph/datasets"
	"omega/internal/graph/gen"
	"omega/internal/graph/reorder"
	"omega/internal/obs"
)

// Options configures an experiment run.
type Options struct {
	// Scale is log2 of the vertex count for generated datasets. The
	// default (13) keeps the full suite under a minute; raise it for
	// closer-to-paper regimes.
	Scale int
	// Seed drives all generators.
	Seed uint64
	// Coverage is the scratchpad sizing fraction (0.20 in the paper).
	Coverage float64
	// FaultSeed is the base seed of the resilience campaigns' fault
	// streams (the sweep runs FaultSeed, FaultSeed+1, ... so the outcome
	// histogram sees independent fault placements). It is deliberately
	// separate from Seed, which drives dataset generation.
	FaultSeed uint64
	// Parallelism bounds the Suite worker pool. Zero means GOMAXPROCS; 1
	// forces sequential execution. Individual runners ignore it — an
	// experiment is always one deterministic single-goroutine simulation.
	Parallelism int
	// Timeout is the per-experiment watchdog applied by Suite and the
	// context-aware facade entry points. Zero disables the watchdog.
	Timeout time.Duration
	// SerialVariants disables the per-variant goroutine fan-out inside
	// individual runners (see runVariants), forcing machine variants to
	// execute one after another on the runner goroutine. Tables are
	// identical either way; the switch exists for debugging and for
	// single-CPU environments where the fan-out buys nothing.
	SerialVariants bool
	// SerialAccess disables run-fold access batching (DESIGN.md §11) on
	// every machine the experiments build, forcing the per-access path
	// for each simulated load. Results are bit-identical either way —
	// the fold's whole contract — so the switch exists for equivalence
	// testing and host-performance A/B measurement (omega-bench
	// -no-batch).
	SerialAccess bool
	// Datasets memoizes graph construction across runners so experiments
	// sharing a (generator, scale, seed, reorder) tuple build the graph
	// once. Nil means every runner generates its graphs from scratch.
	Datasets *datasets.Cache
	// Cells memoizes complete simulation cells — (machine config,
	// dataset, workload) triples — across runners, the dataset cache's
	// idea lifted to whole machine simulations (DESIGN.md §12). The
	// simulator is deterministic, so a cached cell's stats and metric
	// stream are exactly what a fresh run would produce. Nil disables
	// cell caching; Suite installs a fresh cache unless NoCellCache is
	// set.
	Cells *CellCache
	// NoCellCache keeps Suite from installing (or using) a cell cache —
	// the kill switch behind omega-bench -no-cell-cache. Tables are
	// identical either way; the switch exists for equivalence checks and
	// honest perf A/B measurement.
	NoCellCache bool
	// SchedHints, when non-empty, lets Suite dispatch experiments
	// longest-expected-first (keyed by spec ID, e.g. a prior run's
	// telemetry via SuiteResult.CostHints) so one late-scheduled heavy
	// experiment cannot serialize the pool's tail. Experiments without a
	// hint dispatch first in declaration order; result order is
	// unaffected either way.
	SchedHints map[string]time.Duration
	// Metrics, when set, receives the per-iteration metric samples of
	// every machine the experiments build, stamped with the experiment ID
	// and a run label (dataset or algorithm/dataset). Samples arrive
	// canonically sorted per experiment and in suite (spec) order under
	// Suite, so parallel and sequential runs emit byte-identical series.
	// Observation is read-only: tables are bit-identical with or without
	// a sink. Nil (the default) disables metrics entirely.
	Metrics obs.Sink
	// cacheStats, when set by Suite, receives this run's dataset-cache
	// hit/miss counts so telemetry can attribute them per experiment.
	cacheStats *datasets.Counters
	// cellStats, when set by Suite, receives this run's cell counts
	// (cell-routed simulations and cache hits) for per-experiment
	// telemetry.
	cellStats *cellCounters
	// ctx, when set by RunSafe, is the harness's cancellation context:
	// runners attach it to the machines they build so watchdog timeouts
	// and SIGINT cancel in-flight simulations cooperatively instead of
	// abandoning the goroutines driving them. Nil behaves like a context
	// that is never cancelled.
	ctx context.Context
	// sink, when set by RunSafe, is the per-experiment sample buffer the
	// run's machines emit into (thread-safe: variant goroutines share
	// it). RunSafe drains it, sorts canonically, stamps the experiment
	// ID, and replays into Metrics — the determinism contract above.
	sink obs.Sink
}

// Context returns the harness cancellation context, never nil.
func (o Options) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// Defaults fills zero values. The zero-value contract for the suite
// fields is: Parallelism 0 = GOMAXPROCS (resolved by Suite, never stored
// here so an explicit 1 stays distinguishable), Timeout 0 = no watchdog,
// Datasets nil = no cross-runner caching — i.e. a zero Options behaves
// exactly like the pre-Suite harness.
func (o Options) Defaults() Options {
	if o.Scale == 0 {
		o.Scale = 13
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Coverage == 0 {
		o.Coverage = 0.20
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = 1
	}
	return o
}

// Table is a formatted experiment result.
type Table struct {
	// ID is the paper artifact ("Table I", "Figure 14", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows.
	Rows [][]string
	// Notes carries the paper-vs-measured commentary.
	Notes []string
	// Failed marks a table produced by the harness in place of a runner
	// that panicked, hung past its watchdog, or was cancelled; the Rows
	// then carry the diagnostics instead of results.
	Failed bool
}

// AddRow appends a row built from values via fmt.Sprint.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	// Column widths consider header and row cells alike — and rows may be
	// wider than the header (resilience tables append diagnostic cells),
	// so the width vector grows to the widest row.
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Chart renders one numeric column as an ASCII bar chart, labeled by the
// first column — a terminal rendition of the paper's bar figures.
func (t *Table) Chart(col int, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (column %q) ==\n", t.ID, t.Title, t.Header[min(col, len(t.Header)-1)])
	maxV := 0.0
	vals := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		if col >= len(r) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(r[col], "%"), 64)
		if err != nil {
			continue
		}
		vals[i] = v
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return b.String()
	}
	labelW := 0
	for _, r := range t.Rows {
		if len(r[0]) > labelW {
			labelW = len(r[0])
		}
	}
	for i, r := range t.Rows {
		bar := int(vals[i] / maxV * float64(width))
		fmt.Fprintf(&b, "%-*s %8.2f %s\n", labelW, r[0], vals[i], strings.Repeat("#", bar))
	}
	return b.String()
}

// JSON renders the table as a JSON object with id, title, header, rows,
// and notes — for downstream tooling.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
		Failed bool       `json:"failed,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes, t.Failed}, "", "  ")
}

// TSV renders the table as tab-separated values.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t") + "\n")
	}
	return b.String()
}

// Dataset is a synthetic stand-in for one of the paper's Table I datasets.
type Dataset struct {
	// Name is the short label used in figures.
	Name string
	// StandsFor names the paper dataset(s) this replaces.
	StandsFor string
	// Undirected marks symmetric graphs.
	Undirected bool
	// PowerLaw is the expected classification.
	PowerLaw bool
	// Build generates the graph (weighted if asked).
	Build func(o Options, weighted bool) *graph.Graph
}

// StandardDatasets returns the dataset pool mirroring Table I's mix of
// small/large, directed/undirected, power-law/non-power-law graphs.
func StandardDatasets() []Dataset {
	return []Dataset{
		{
			Name: "rmat", StandsFor: "rMat", PowerLaw: true,
			Build: func(o Options, w bool) *graph.Graph {
				cfg := gen.DefaultRMAT(o.Scale, o.Seed)
				cfg.Weighted = w
				return gen.RMAT(cfg)
			},
		},
		{
			Name: "social", StandsFor: "lj / orkut / wiki", PowerLaw: true,
			Build: func(o Options, w bool) *graph.Graph {
				return gen.BarabasiAlbert(gen.BAConfig{
					NumVertices:      1 << o.Scale,
					EdgesPerVertex:   12,
					Seed:             o.Seed + 1,
					Weighted:         w,
					BackEdgeFraction: 0.3,
				})
			},
		},
		{
			Name: "web", StandsFor: "ic / uk / sd", PowerLaw: true,
			Build: func(o Options, w bool) *graph.Graph {
				cfg := gen.RMATConfig{
					ScaleLog2:  o.Scale,
					EdgeFactor: 16,
					A:          0.65, B: 0.15, C: 0.15,
					Seed:     o.Seed + 2,
					Weighted: w,
				}
				return gen.RMAT(cfg)
			},
		},
		{
			Name: "apu", StandsFor: "ca-AstroPh (undirected)", Undirected: true, PowerLaw: true,
			Build: func(o Options, w bool) *graph.Graph {
				cfg := gen.DefaultRMAT(o.Scale-1, o.Seed+3)
				cfg.Undirected = true
				cfg.Weighted = w
				return gen.RMAT(cfg)
			},
		},
		{
			Name: "road", StandsFor: "roadNet-CA/PA, Western-USA", Undirected: true, PowerLaw: false,
			Build: func(o Options, w bool) *graph.Graph {
				return gen.RoadGrid(gen.RoadConfig{
					Side:          1 << (o.Scale / 2),
					ExtraFraction: 0.1,
					Seed:          o.Seed + 4,
					Weighted:      w,
				})
			},
		},
	}
}

// DatasetByName resolves a stand-in by label.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range StandardDatasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// prepared bundles a generated, in-degree-reordered graph together with
// the dataset key that identifies its build — the graph half of a cell
// cache key. keyed is false for graphs the cache cannot identify
// (transformed, grown, or hand-built), which makes their cells
// uncacheable.
type prepared struct {
	ds    Dataset
	g     *graph.Graph
	key   datasets.Key
	keyed bool
}

// datasetKey is the cache identity of one dataset build.
func datasetKey(ds Dataset, o Options, weighted, reordered bool) datasets.Key {
	return datasets.Key{
		Kind:      ds.Name,
		Scale:     o.Scale,
		Seed:      o.Seed,
		Weighted:  weighted,
		Reordered: reordered,
	}
}

// buildDataset generates one dataset variant, drawing from o.Datasets
// when a cache is configured. Cached graphs are shared between runners
// (possibly concurrently), which is safe because a built graph is never
// mutated: the name is stamped inside the build so no writer touches a
// graph after it enters the cache.
func buildDataset(ds Dataset, o Options, weighted, reordered bool) *graph.Graph {
	build := func() *graph.Graph {
		g := ds.Build(o, weighted)
		if reordered {
			g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
		}
		g.Name = ds.Name
		return g
	}
	if o.Datasets == nil {
		return build()
	}
	g, hit := o.Datasets.GetOrBuild(datasetKey(ds, o, weighted, reordered), build)
	o.cacheStats.Record(hit)
	return g
}

// prepareDataset builds and reorders a dataset (§VI: OMEGA's static
// placement relies on in-degree ordering).
func prepareDataset(ds Dataset, o Options, weighted bool) prepared {
	return prepared{
		ds:    ds,
		g:     buildDataset(ds, o, weighted, true),
		key:   datasetKey(ds, o, weighted, true),
		keyed: true,
	}
}

// rawDataset builds a dataset without the in-degree reordering — for
// runners that characterize or reorder the generator output themselves.
func rawDataset(ds Dataset, o Options, weighted bool) *graph.Graph {
	return buildDataset(ds, o, weighted, false)
}

// machinesFor builds the scaled baseline/OMEGA pair for a graph and
// per-vertex property footprint.
func machinesFor(g *graph.Graph, vtxPropBytes int, o Options) (*core.Machine, *core.Machine) {
	b, om := core.ScaledPair(g.NumVertices(), vtxPropBytes, o.Coverage)
	return o.newMachine(b, g.Name), o.newMachine(om, g.Name)
}

// newMachine builds one experiment machine: the harness context is
// attached for cooperative cancellation and, when this run buffers
// metrics, the machine emits into the run's sample buffer under the
// given run label (machine name distinguishes baseline/omega within a
// run). Neither attachment perturbs simulation results.
func (o Options) newMachine(cfg core.Config, run string) *core.Machine {
	if o.SerialAccess {
		cfg.SerialAccess = true
	}
	m := core.NewMachine(cfg)
	m.AttachContext(o.ctx)
	if o.sink != nil {
		m.AttachSink(obs.WithRun(o.sink, run))
	}
	return m
}
