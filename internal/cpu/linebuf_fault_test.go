package cpu

import (
	"testing"

	"omega/internal/memsys"
)

const memoLine = memsys.Addr(0x2000)

// TestCorruptLineBufWithGenCheck: scrambling the generation tag along
// with the latency bit guarantees the next lookup misses, and the miss is
// reported (once) as a caught corruption.
func TestCorruptLineBufWithGenCheck(t *testing.T) {
	c := newCore()
	c.LineBufStore(memoLine, 7, 100, memsys.LevelL2Plus)
	c.CorruptLineBuf(3, true)
	if _, _, ok := c.LineBufLookup(memoLine, 7); ok {
		t.Fatal("scrambled generation still hit")
	}
	if !c.LineBufCaught(memoLine) {
		t.Fatal("corruption not caught")
	}
	if c.LineBufCaught(memoLine) {
		t.Fatal("one corruption counted twice")
	}
	if _, _, ok := c.LineBufLookup(memoLine, 7); ok {
		t.Fatal("caught memo should be disarmed")
	}
}

// TestCorruptLineBufWithoutGenCheck: without the generation scramble the
// memo keeps hitting and replays a latency that differs from the stored
// one by a single bit in [16, 512) — visible timing corruption, no alarm.
func TestCorruptLineBufWithoutGenCheck(t *testing.T) {
	c := newCore()
	c.LineBufStore(memoLine, 7, 100, memsys.LevelL2Plus)
	c.CorruptLineBuf(2, false)
	lat, level, ok := c.LineBufLookup(memoLine, 7)
	if !ok {
		t.Fatal("unscrambled memo should still hit")
	}
	if level != memsys.LevelL2Plus {
		t.Fatalf("level changed: %v", level)
	}
	diff := uint64(lat) ^ 100
	if diff == 0 {
		t.Fatal("latency not corrupted")
	}
	if diff&(diff-1) != 0 || diff < 1<<4 || diff > 1<<9 {
		t.Fatalf("corruption is not one bit in [16,512]: lat %d", lat)
	}
	// The memo keeps hitting, so the machine's catch path (taken only on
	// a lookup miss) never runs — the corruption replays with no alarm.
	// Once a fresh install overwrites the memo, nothing is left to catch.
	c.LineBufStore(memoLine+memsys.LineSize, 8, 40, memsys.LevelL1)
	if c.LineBufCaught(memoLine) || c.LineBufCaught(memoLine+memsys.LineSize) {
		t.Fatal("overwritten corruption still reports a catch")
	}
}

func TestCorruptLineBufUnarmed(t *testing.T) {
	c := newCore()
	c.CorruptLineBuf(1, true) // no memo armed: must be a no-op
	if c.LineBufCaught(memoLine) {
		t.Fatal("corrupting an empty buffer produced a catch")
	}
	// Clearing the buffer also clears the corrupt flag.
	c.LineBufStore(memoLine, 1, 50, memsys.LevelL2Plus)
	c.CorruptLineBuf(0, true)
	c.LineBufClear()
	if c.LineBufCaught(memoLine) {
		t.Fatal("cleared buffer still reports a catch")
	}
}
