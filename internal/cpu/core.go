// Package cpu models the timing of one out-of-order core at the level of
// detail the OMEGA study needs: a ROB-style window of overlapping
// outstanding misses (memory-level parallelism), full stalls for blocking
// operations (baseline atomics, dependent loads), and a cycle breakdown in
// the spirit of Intel's Top-down Microarchitecture Analysis Method so
// Figure 3 of the paper can be regenerated.
//
// The model deliberately does not simulate individual pipeline stages:
// the paper's phenomena are memory-subsystem phenomena, and an
// MLP-limited window reproduces them (see DESIGN.md §1).
package cpu

import (
	"fmt"
	"math/bits"

	"omega/internal/memsys"
)

// Config parameterizes a core.
type Config struct {
	// Width is the superscalar issue width (8 in Table III).
	Width int
	// ROBEntries bounds in-flight instructions (192 in Table III). The
	// number of overlappable outstanding long-latency accesses is derived
	// from it: ROBEntries / InstrsPerAccess.
	ROBEntries int
	// InstrsPerAccess is the average number of instructions between
	// long-latency memory accesses in the graph inner loops; it converts
	// ROB capacity into a miss-level-parallelism bound.
	InstrsPerAccess int
	// FrontendBubbleNum/Den charge frontend-bound cycles per retired
	// instruction (Fig. 3 shows a small frontend component).
	FrontendBubbleNum int
	FrontendBubbleDen int
}

// DefaultConfig returns the Table III core.
func DefaultConfig() Config {
	return Config{
		Width:             8,
		ROBEntries:        192,
		InstrsPerAccess:   12,
		FrontendBubbleNum: 1,
		FrontendBubbleDen: 10,
	}
}

// maxMLP derives the outstanding-access bound.
func (c Config) maxMLP() int {
	m := c.ROBEntries / c.InstrsPerAccess
	if m < 1 {
		m = 1
	}
	return m
}

// Breakdown is the TMAM-style cycle accounting of one core.
type Breakdown struct {
	// Retiring covers cycles spent usefully executing instructions.
	Retiring memsys.Cycles
	// Frontend covers fetch/decode bubbles.
	Frontend memsys.Cycles
	// MemoryBound covers backend stalls waiting on the memory subsystem.
	MemoryBound memsys.Cycles
	// CoreBound covers other backend stalls (non-memory execution
	// pressure; small in graph workloads).
	CoreBound memsys.Cycles
}

// Total returns the sum of all buckets.
func (b Breakdown) Total() memsys.Cycles {
	return b.Retiring + b.Frontend + b.MemoryBound + b.CoreBound
}

// BackendFraction returns (memory+core)/total.
func (b Breakdown) BackendFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.MemoryBound+b.CoreBound) / float64(t)
}

// MemoryFraction returns memory/total.
func (b Breakdown) MemoryFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.MemoryBound) / float64(t)
}

// Core is the timing model for a single core. Not safe for concurrent use.
type Core struct {
	ID    int
	cfg   Config
	clock memsys.Cycles

	// outstanding holds completion times of in-flight overlappable
	// accesses, unordered; len <= maxMLP.
	outstanding []memsys.Cycles
	maxMLP      int
	// ipc is the effective retire rate (Width/2, min 1), precomputed;
	// ipcShift is log2(ipc) when ipc is a power of two (else -1), so the
	// per-Exec division strength-reduces to a shift in the common config.
	ipc      int
	ipcShift int

	breakdown    Breakdown
	instructions uint64
	// frontendAccum accumulates fractional frontend bubbles in 1/Den
	// units to stay integer-exact.
	frontendAccum int

	// Stall attribution (diagnostics): blocking-access stalls,
	// window-full stalls, barrier drains, and offload backpressure.
	BlockingStall memsys.Cycles
	WindowStall   memsys.Cycles
	DrainStall    memsys.Cycles
	OffloadStall  memsys.Cycles

	// lineBuf is the core's one-entry line buffer (the gem5-style fast
	// path): the 64 B line of this core's most recent L1 read hit, the
	// invalidation generation under which it was observed, and the timing
	// the full probe returned. The machine consults it to short-circuit a
	// repeated non-atomic read to the same line; any generation mismatch
	// falls back to the full hierarchy probe.
	lineBuf lineBufEntry
}

// lineBufEntry is the one-entry line buffer's state. corrupt marks an
// injected memo corruption (stale latency bits); when the generation
// check catches it — the gen was scrambled along with the payload — the
// lookup fails and the caller counts the detection.
type lineBufEntry struct {
	line    memsys.Addr
	gen     uint64
	lat     memsys.Cycles
	level   memsys.Level
	valid   bool
	corrupt bool
}

// New builds a core with the given ID.
func New(id int, cfg Config) *Core {
	if cfg.Width <= 0 {
		panic(fmt.Sprintf("cpu: core %d invalid width", id))
	}
	ipc := cfg.Width / 2
	if ipc < 1 {
		ipc = 1
	}
	shift := -1
	if ipc&(ipc-1) == 0 {
		shift = bits.TrailingZeros(uint(ipc))
	}
	return &Core{ID: id, cfg: cfg, maxMLP: cfg.maxMLP(), ipc: ipc, ipcShift: shift}
}

// Clock returns the core's local time.
func (c *Core) Clock() memsys.Cycles { return c.clock }

// SetClock force-sets local time (used at barriers).
func (c *Core) SetClock(t memsys.Cycles) {
	if t < c.clock {
		panic("cpu: clock moved backwards")
	}
	c.clock = t
}

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.instructions }

// Breakdown returns the TMAM cycle accounting so far.
func (c *Core) Breakdown() Breakdown { return c.breakdown }

// Exec retires ops ALU/branch instructions. Graph kernels retire well
// below full width because of dependence chains; we model an effective
// IPC of Width/2.
func (c *Core) Exec(ops int) {
	if ops <= 0 {
		return
	}
	c.instructions += uint64(ops)
	n := ops + c.ipc - 1
	var cycles memsys.Cycles
	if c.ipcShift >= 0 {
		cycles = memsys.Cycles(n >> uint(c.ipcShift))
	} else {
		cycles = memsys.Cycles(n / c.ipc)
	}
	c.clock += cycles
	c.breakdown.Retiring += cycles
	// Frontend bubbles accrue per instruction; the quotient is only
	// computed once a whole bubble has accrued (fb > 0 iff accum >= den).
	c.frontendAccum += ops * c.cfg.FrontendBubbleNum
	if c.frontendAccum >= c.cfg.FrontendBubbleDen {
		fb := c.frontendAccum / c.cfg.FrontendBubbleDen
		c.frontendAccum -= fb * c.cfg.FrontendBubbleDen
		c.clock += memsys.Cycles(fb)
		c.breakdown.Frontend += memsys.Cycles(fb)
	}
}

// reap removes completed accesses from the outstanding window.
func (c *Core) reap() {
	w := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > c.clock {
			w = append(w, t)
		}
	}
	c.outstanding = w
}

// earliest returns the soonest completion among outstanding accesses.
func (c *Core) earliest() memsys.Cycles {
	e := c.outstanding[0]
	for _, t := range c.outstanding[1:] {
		if t < e {
			e = t
		}
	}
	return e
}

// Mem accounts one memory access with the timing outcome res, issued at
// the core's current clock. PipelinedThreshold governs which accesses are
// treated as fully hidden (L1-class hits).
const pipelinedThreshold = 4

// Mem advances the core's clock according to res.
func (c *Core) Mem(res memsys.Result) {
	c.instructions++
	// Issue slot.
	c.clock++
	c.breakdown.Retiring++
	if res.Offloaded {
		// Fire-and-forget PISC offload: only the (already charged)
		// issue cost, plus any backpressure folded into Latency by the
		// hierarchy when the PISC queue is saturated.
		if res.Latency > 0 {
			c.clock += res.Latency
			c.breakdown.MemoryBound += res.Latency
			c.OffloadStall += res.Latency
		}
		return
	}
	if res.Latency <= pipelinedThreshold {
		// L1-class hit: fully pipelined.
		return
	}
	if res.Blocking {
		c.clock += res.Latency
		c.breakdown.MemoryBound += res.Latency
		c.BlockingStall += res.Latency
		return
	}
	// Overlappable miss: occupy a window slot, stalling only when the
	// window is full.
	c.reap()
	if len(c.outstanding) >= c.maxMLP {
		e := c.earliest()
		if e > c.clock {
			c.breakdown.MemoryBound += e - c.clock
			c.WindowStall += e - c.clock
			c.clock = e
		}
		c.reap()
	}
	c.outstanding = append(c.outstanding, c.clock+res.Latency)
}

// FoldPipelined accounts n pipelined memory accesses in one step. A
// pipelined access — Result.Latency at or below pipelinedThreshold — costs
// exactly one retired instruction, one issue cycle, and one retiring
// cycle; Mem's early return touches nothing else (no window, no stalls,
// no frontend accrual). The machine's run-fold batching uses this to
// replay a run of same-line L1 hits in bulk with bit-identical accounting.
func (c *Core) FoldPipelined(n uint64) {
	c.instructions += n
	c.clock += memsys.Cycles(n)
	c.breakdown.Retiring += memsys.Cycles(n)
}

// LineBufLookup consults the one-entry line buffer: if line matches the
// buffered line and gen matches the generation it was observed under, the
// memoized hit timing is returned. A false result means the caller must
// take the full hierarchy probe (and may re-arm the buffer via
// LineBufStore).
func (c *Core) LineBufLookup(line memsys.Addr, gen uint64) (memsys.Cycles, memsys.Level, bool) {
	if !c.lineBuf.valid || c.lineBuf.line != line || c.lineBuf.gen != gen {
		return 0, 0, false
	}
	return c.lineBuf.lat, c.lineBuf.level, true
}

// LineBufStore arms the line buffer with the timing a full probe just
// returned for line under generation gen.
func (c *Core) LineBufStore(line memsys.Addr, gen uint64, lat memsys.Cycles, level memsys.Level) {
	c.lineBuf = lineBufEntry{line: line, gen: gen, lat: lat, level: level, valid: true}
}

// LineBufClear disarms the line buffer.
func (c *Core) LineBufClear() {
	c.lineBuf.valid = false
	c.lineBuf.corrupt = false
}

// CorruptLineBuf injects a fault into the armed memo: bitSel picks which
// latency bit to flip (bits 4..9, so the corrupted timing is never
// hidden by the pipelined-hit threshold) and, when scrambleGen is set
// (generation checks present in the modeled hardware), the generation
// tag's top bit flips with it — guaranteeing the next lookup's check
// fails and the corruption is caught. With scrambleGen false the memo
// silently replays the corrupted latency until overwritten.
func (c *Core) CorruptLineBuf(bitSel uint64, scrambleGen bool) {
	if !c.lineBuf.valid {
		return
	}
	c.lineBuf.lat ^= 1 << (4 + bitSel%6)
	if scrambleGen {
		c.lineBuf.gen ^= 1 << 63
	}
	c.lineBuf.corrupt = true
}

// LineBufCaught reports-and-clears a corrupt-memo detection: true when
// the buffered entry for line is corrupt and its scrambled generation
// tag just failed a lookup. The entry is disarmed so one injected
// corruption counts at most one catch.
func (c *Core) LineBufCaught(line memsys.Addr) bool {
	if !c.lineBuf.valid || !c.lineBuf.corrupt || c.lineBuf.line != line {
		return false
	}
	c.LineBufClear()
	return true
}

// DrainWindow stalls until every outstanding access has completed; used at
// parallel-region barriers.
func (c *Core) DrainWindow() {
	for _, t := range c.outstanding {
		if t > c.clock {
			c.breakdown.MemoryBound += t - c.clock
			c.DrainStall += t - c.clock
			c.clock = t
		}
	}
	c.outstanding = c.outstanding[:0]
}

// State is an opaque core checkpoint.
type State struct {
	clock         memsys.Cycles
	outstanding   []memsys.Cycles
	breakdown     Breakdown
	instructions  uint64
	frontendAccum int
	blocking      memsys.Cycles
	window        memsys.Cycles
	drain         memsys.Cycles
	offload       memsys.Cycles
	lineBuf       lineBufEntry
}

// Snapshot captures the core's timing state for later Restore.
func (c *Core) Snapshot() State {
	return State{
		clock:         c.clock,
		outstanding:   append([]memsys.Cycles(nil), c.outstanding...),
		breakdown:     c.breakdown,
		instructions:  c.instructions,
		frontendAccum: c.frontendAccum,
		blocking:      c.BlockingStall,
		window:        c.WindowStall,
		drain:         c.DrainStall,
		offload:       c.OffloadStall,
		lineBuf:       c.lineBuf,
	}
}

// Restore rewinds the core to a Snapshot.
func (c *Core) Restore(s State) {
	c.clock = s.clock
	c.outstanding = append(c.outstanding[:0], s.outstanding...)
	c.breakdown = s.breakdown
	c.instructions = s.instructions
	c.frontendAccum = s.frontendAccum
	c.BlockingStall = s.blocking
	c.WindowStall = s.window
	c.DrainStall = s.drain
	c.OffloadStall = s.offload
	c.lineBuf = s.lineBuf
}

// Reset clears time, window, and statistics.
func (c *Core) Reset() {
	c.clock = 0
	c.outstanding = c.outstanding[:0]
	c.breakdown = Breakdown{}
	c.instructions = 0
	c.frontendAccum = 0
	c.BlockingStall = 0
	c.WindowStall = 0
	c.DrainStall = 0
	c.OffloadStall = 0
	c.LineBufClear()
}
