package cpu

import (
	"testing"

	"omega/internal/memsys"
)

func newCore() *Core { return New(0, DefaultConfig()) }

func TestExecAdvancesClock(t *testing.T) {
	c := newCore()
	c.Exec(8) // IPC = width/2 = 4 -> 2 cycles
	if c.Clock() < 2 {
		t.Fatalf("clock %d after 8 ops", c.Clock())
	}
	if c.Instructions() != 8 {
		t.Fatalf("instructions %d", c.Instructions())
	}
	if c.Breakdown().Retiring == 0 {
		t.Fatal("retiring cycles not accounted")
	}
}

func TestExecZeroOrNegativeIsNoop(t *testing.T) {
	c := newCore()
	c.Exec(0)
	c.Exec(-5)
	if c.Clock() != 0 || c.Instructions() != 0 {
		t.Fatal("non-positive exec should be a no-op")
	}
}

func TestFrontendBubblesAccrue(t *testing.T) {
	c := newCore()
	c.Exec(1000)
	b := c.Breakdown()
	// 1 bubble per 10 instructions.
	if b.Frontend < 90 || b.Frontend > 110 {
		t.Fatalf("frontend %d, want ~100", b.Frontend)
	}
}

func TestPipelinedHitIsCheap(t *testing.T) {
	c := newCore()
	start := c.Clock()
	c.Mem(memsys.Result{Latency: 1})
	if c.Clock() != start+1 {
		t.Fatalf("L1 hit should cost 1 issue cycle, took %d", c.Clock()-start)
	}
}

func TestBlockingStallsFully(t *testing.T) {
	c := newCore()
	c.Mem(memsys.Result{Latency: 200, Blocking: true})
	if c.Clock() < 200 {
		t.Fatalf("blocking access should stall, clock %d", c.Clock())
	}
	if c.Breakdown().MemoryBound < 200 {
		t.Fatal("stall must be memory-bound")
	}
}

func TestOverlappableMissesOverlap(t *testing.T) {
	c := newCore()
	// Issue maxMLP misses of 200 cycles: they should overlap, costing far
	// less than serial execution.
	mlp := DefaultConfig().maxMLP()
	for i := 0; i < mlp; i++ {
		c.Mem(memsys.Result{Latency: 200})
	}
	if c.Clock() > 100 {
		t.Fatalf("parallel misses should overlap; clock %d", c.Clock())
	}
	c.DrainWindow()
	if c.Clock() < 200 {
		t.Fatalf("drain must wait for the slowest; clock %d", c.Clock())
	}
}

func TestWindowFullStalls(t *testing.T) {
	c := newCore()
	mlp := DefaultConfig().maxMLP()
	for i := 0; i < mlp*4; i++ {
		c.Mem(memsys.Result{Latency: 200})
	}
	// Steady state throughput: latency/maxMLP per access.
	expectedMin := memsys.Cycles(200 * 3) // at least 3 full window drains
	if c.Clock() < expectedMin {
		t.Fatalf("window-full backpressure missing: clock %d < %d", c.Clock(), expectedMin)
	}
}

func TestOffloadedIsFireAndForget(t *testing.T) {
	c := newCore()
	c.Mem(memsys.Result{Latency: 0, Offloaded: true})
	if c.Clock() != 1 {
		t.Fatalf("offload should cost 1 issue cycle, clock %d", c.Clock())
	}
	c.Mem(memsys.Result{Latency: 30, Offloaded: true})
	// Backpressure stall is charged.
	if c.Clock() != 32 {
		t.Fatalf("offload backpressure not charged, clock %d", c.Clock())
	}
}

func TestDrainWindowIdempotent(t *testing.T) {
	c := newCore()
	c.Mem(memsys.Result{Latency: 50})
	c.DrainWindow()
	clk := c.Clock()
	c.DrainWindow()
	if c.Clock() != clk {
		t.Fatal("second drain should be a no-op")
	}
}

func TestSetClockForwardOnly(t *testing.T) {
	c := newCore()
	c.SetClock(100)
	if c.Clock() != 100 {
		t.Fatal("set clock failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards clock")
		}
	}()
	c.SetClock(50)
}

func TestBreakdownTotals(t *testing.T) {
	c := newCore()
	c.Exec(100)
	c.Mem(memsys.Result{Latency: 100, Blocking: true})
	b := c.Breakdown()
	if b.Total() == 0 {
		t.Fatal("empty breakdown")
	}
	if b.BackendFraction() <= 0 || b.BackendFraction() > 1 {
		t.Fatalf("backend fraction %v", b.BackendFraction())
	}
	if b.MemoryFraction() <= 0 || b.MemoryFraction() > 1 {
		t.Fatalf("memory fraction %v", b.MemoryFraction())
	}
	var zero Breakdown
	if zero.BackendFraction() != 0 || zero.MemoryFraction() != 0 {
		t.Fatal("zero breakdown fractions should be 0")
	}
}

func TestReset(t *testing.T) {
	c := newCore()
	c.Exec(50)
	c.Mem(memsys.Result{Latency: 100})
	c.Reset()
	if c.Clock() != 0 || c.Instructions() != 0 || c.Breakdown().Total() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMemCountsInstruction(t *testing.T) {
	c := newCore()
	c.Mem(memsys.Result{Latency: 1})
	if c.Instructions() != 1 {
		t.Fatal("memory op should retire one instruction")
	}
}

func TestConfigMLPDerivation(t *testing.T) {
	cfg := Config{Width: 8, ROBEntries: 192, InstrsPerAccess: 12}
	if cfg.maxMLP() != 16 {
		t.Fatalf("mlp %d, want 16", cfg.maxMLP())
	}
	cfg.InstrsPerAccess = 1000
	if cfg.maxMLP() != 1 {
		t.Fatal("mlp floor should be 1")
	}
}

func TestBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, Config{Width: 0})
}
