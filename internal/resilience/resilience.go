// Package resilience is the fault-campaign engine: it sweeps fault
// injection sites × rates × seeds over a workload, classifies every run
// against a fault-free golden (clean / detected-corrected /
// detected-degraded / crashed / silent-data-corruption), and applies a
// configurable recovery policy — bounded re-execution with exponential
// backoff from whole-machine checkpoints (core.Machine.Snapshot/Restore).
//
// The engine deliberately does not import the experiments package: the
// experiments layer provides the workload (dataset + machine config +
// algorithm) and renders the campaign report as a table; the engine owns
// injection sweep, output validation, classification, and recovery.
package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"omega/internal/core"
	"omega/internal/faults"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// Outcome classifies one run of the workload under injection.
type Outcome int

const (
	// Clean: outputs and the timing signature match the golden exactly
	// and no fault event fired (or none landed anywhere observable).
	Clean Outcome = iota
	// DetectedCorrected: faults fired and were caught by a detection
	// mechanism (ECC, NoC retransmission, parity, directory scrub, line
	// buffer generation check) without degrading results.
	DetectedCorrected
	// DetectedDegraded: faults were detected but left permanent damage
	// the run worked around — scratchpad lines degraded to the cache
	// hierarchy, or NoC messages dropped past the retry budget.
	DetectedDegraded
	// Crashed: the run panicked.
	Crashed
	// SilentDataCorruption: algorithm outputs diverged from the golden,
	// a DRAM double-bit flip escaped ECC, or the timing signature
	// diverged with zero detections — wrong results, no alarm.
	SilentDataCorruption
	// NumOutcomes sizes outcome histograms.
	NumOutcomes
)

// String names the outcome for tables.
func (o Outcome) String() string {
	switch o {
	case Clean:
		return "clean"
	case DetectedCorrected:
		return "detected-corrected"
	case DetectedDegraded:
		return "detected-degraded"
	case Crashed:
		return "crashed"
	case SilentDataCorruption:
		return "silent-data-corruption"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// failed reports whether the outcome warrants a recovery re-execution.
func (o Outcome) failed() bool { return o == Crashed || o == SilentDataCorruption }

// Policy is the recovery policy: how many re-executions a failed run may
// consume and what each one costs.
type Policy struct {
	// MaxRetries bounds re-executions per run (0 = no recovery).
	MaxRetries int
	// BackoffCycles is the simulated-cycle cost charged before the first
	// re-execution; each further retry doubles it (exponential backoff).
	BackoffCycles uint64
	// Tolerance is the relative error allowed when comparing float-valued
	// outputs (PageRank rank vectors) against the golden; integer-valued
	// outputs (BFS/SSSP distances, CC labels) must match exactly.
	Tolerance float64
}

// DefaultPolicy matches the campaign defaults.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 3, BackoffCycles: 1024, Tolerance: 1e-9}
}

// Workload is one (machine, graph, algorithm) combination under test.
// Config's fault rates must be zero — the campaign installs per-cell
// fault configurations itself.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Config is the machine configuration (fault rates zero).
	Config core.Config
	// Graph is the prepared input graph (shared read-only).
	Graph *graph.Graph
	// Run executes the algorithm on a freshly bound framework and returns
	// its stats plus the output vectors to validate against the golden —
	// the algorithm's functional result (rank vector, distance array,
	// component labels), not its scratch state. Returning nil outputs
	// falls back to the framework's registered property arrays, which is
	// only correct for algorithms whose result lives in a property array
	// at the end of the run (PageRank, notably, zeroes its only property
	// every iteration and keeps the ranks in plain memory — a nil-output
	// PageRank workload would validate an all-zero vector and miss every
	// ALU corruption). Returned slices must not alias live machine state.
	Run func(fw *ligra.Framework) (core.MachineStats, [][]pisc.Value)
}

// outputsOf resolves a run's validation outputs: the workload-provided
// vectors, or deep copies of every registered property array when the
// workload returned none.
func outputsOf(fw *ligra.Framework, outputs [][]pisc.Value) [][]pisc.Value {
	if outputs != nil {
		return outputs
	}
	for _, p := range fw.Props() {
		outputs = append(outputs, append([]pisc.Value(nil), p.Raw()...))
	}
	return outputs
}

// Golden is the fault-free reference a campaign validates against.
type Golden struct {
	// Stats is the fault-free run's statistics.
	Stats core.MachineStats
	// Outputs are deep copies of every property array after the run.
	Outputs [][]pisc.Value
	// Signature is the normalized stats encoding (fault fields zeroed);
	// any surviving timing divergence shows up as a signature mismatch.
	Signature []byte
	// Digests is the per-iteration state-digest trail.
	Digests []uint64
}

// RunGolden executes the workload fault-free and captures the reference.
func RunGolden(w Workload, ctx context.Context) (*Golden, error) {
	if w.Config.Faults.Enabled() {
		return nil, fmt.Errorf("resilience: workload config has fault rates set")
	}
	m, err := core.NewMachineChecked(w.Config)
	if err != nil {
		return nil, err
	}
	m.AttachContext(ctx)
	m.EnableIterationDigests()
	fw := ligra.New(m, w.Graph)
	st, outputs := w.Run(fw)
	return &Golden{
		Stats:     st,
		Outputs:   outputsOf(fw, outputs),
		Signature: signatureOf(st),
		Digests:   m.DigestTrail(),
	}, nil
}

// signatureOf normalizes stats for divergence detection: the fault event
// log and degradation count are zeroed (they are *supposed* to differ
// under injection — what must not silently differ is everything else).
func signatureOf(st core.MachineStats) []byte {
	st.Faults = faults.Events{}
	st.SPDegraded = 0
	b, err := json.Marshal(st)
	if err != nil {
		panic(err)
	}
	return b
}

// RunReport describes one (site, rate, seed) run through the recovery
// policy.
type RunReport struct {
	Site faults.Site
	Rate float64
	Seed uint64
	// First is the first attempt's classification; Final is the outcome
	// after recovery re-executions (equal to First when none ran).
	First, Final Outcome
	// Attempts counts executions (1 = no recovery needed or allowed).
	Attempts int
	// OverheadCycles is the recovery cost: the wasted cycles of failed
	// attempts plus exponential backoff between re-executions.
	OverheadCycles uint64
	// DivergeIter is the first iteration whose state digest differs from
	// the golden trail on the first failed attempt (-1 when unknown or
	// when the run never diverged at an iteration boundary).
	DivergeIter int
}

// Recovered reports whether re-execution turned a failed run good.
func (r RunReport) Recovered() bool { return r.First.failed() && !r.Final.failed() }

// RunOne executes the workload under one (site, rate, seed) injection
// configuration, applying the recovery policy: a crashed or silently
// corrupted attempt rewinds the machine to its pristine checkpoint,
// re-keys the fault streams, pays exponential backoff, and re-executes,
// up to MaxRetries times.
func RunOne(w Workload, site faults.Site, rate float64, seed uint64, p Policy, g *Golden, ctx context.Context) RunReport {
	cfg := w.Config
	fc := faults.Config{Seed: seed}
	site.Apply(&fc, rate)
	cfg.Faults = fc
	m := core.NewMachine(cfg)
	m.AttachContext(ctx)
	m.EnableIterationDigests()
	pristine := m.Snapshot()

	rep := RunReport{Site: site, Rate: rate, Seed: seed, DivergeIter: -1}
	for attempt := 0; ; attempt++ {
		st, outputs, crashed := runAttempt(m, w)
		var out Outcome
		if crashed != nil {
			out = Crashed
		} else {
			out = classify(st, outputs, g, p.Tolerance)
		}
		if attempt == 0 {
			rep.First = out
			if out.failed() && rep.DivergeIter < 0 {
				rep.DivergeIter = firstDivergence(m.DigestTrail(), g.Digests)
			}
		}
		rep.Final = out
		rep.Attempts = attempt + 1
		if !out.failed() || attempt >= p.MaxRetries {
			return rep
		}
		// Recovery: charge the wasted attempt and the backoff, rewind to
		// the pristine checkpoint (which also rewinds the region allocator,
		// so the re-created framework lands on identical addresses), and
		// re-key the fault streams so the retry does not deterministically
		// replay the exact fault that killed this attempt.
		rep.OverheadCycles += uint64(m.ElapsedCycles()) + p.BackoffCycles<<uint(attempt)
		m.Restore(pristine)
		m.ReseedFaults(uint64(attempt + 1))
	}
}

// runAttempt runs the workload once, converting a panic into a crash
// verdict — except cooperative cancellations, which propagate.
func runAttempt(m *core.Machine, w Workload) (st core.MachineStats, outputs [][]pisc.Value, crashed any) {
	defer func() {
		if r := recover(); r != nil {
			if core.IsCancelled(r) {
				panic(r)
			}
			crashed = r
		}
	}()
	fw := ligra.New(m, w.Graph)
	st, outputs = w.Run(fw)
	outputs = outputsOf(fw, outputs)
	return
}

// classify applies the outcome taxonomy: wrong outputs or an escaped
// double-bit flip are silent corruption, as is a timing signature that
// diverged with zero detections; detected faults are degraded when they
// left permanent damage, corrected otherwise; everything else is clean.
func classify(st core.MachineStats, outputs [][]pisc.Value, g *Golden, tol float64) Outcome {
	ev := st.Faults
	detected := ev.Detected()
	switch {
	case !outputsMatch(outputs, g.Outputs, tol),
		ev.DRAMSilent > 0,
		detected == 0 && !bytesEqual(signatureOf(st), g.Signature):
		return SilentDataCorruption
	case detected > 0 && (st.SPDegraded > 0 || ev.NoCGaveUp > 0):
		return DetectedDegraded
	case detected > 0:
		return DetectedCorrected
	}
	return Clean
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// outputsMatch compares property arrays against the golden: exact first;
// values whose bit patterns decode to normal floats fall back to a
// relative-tolerance comparison (PageRank ranks accumulate in different
// orders never arise here — runs are deterministic — but recovered runs
// validate through the same path as the golden, so exactness holds; the
// float path exists for policy tolerance on rank vectors).
func outputsMatch(got, want [][]pisc.Value, tol float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			a, b := got[i][j], want[i][j]
			if a == b {
				continue
			}
			if !floatsWithin(a.Float(), b.Float(), tol) {
				return false
			}
		}
	}
	return true
}

// floatsWithin reports |a-b| <= tol*max(|a|,|b|) for values that are
// plausibly floats: finite, non-NaN, and at least 1e-300 in magnitude
// (integer property values decode to denormals far below that, so they
// never take this fallback and stay exact-match).
func floatsWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	ma, mb := math.Abs(a), math.Abs(b)
	if ma < 1e-300 || mb < 1e-300 {
		return false
	}
	diff := math.Abs(a - b)
	mx := ma
	if mb > mx {
		mx = mb
	}
	return diff <= tol*mx
}

// firstDivergence returns the first index where the trails differ, or the
// shorter length when one is a prefix of the other, or -1 when equal.
func firstDivergence(got, want []uint64) int {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return i
		}
	}
	if len(got) != len(want) {
		return n
	}
	return -1
}

// CellReport aggregates one (site, rate) sweep cell across seeds.
type CellReport struct {
	Site faults.Site
	Rate float64
	// Outcomes histograms the FIRST-attempt classification per run.
	Outcomes [NumOutcomes]int
	// Recovered counts runs whose re-executions turned a failure good.
	Recovered int
	// Unrecovered counts runs still failed after exhausting the budget.
	Unrecovered int
	// Reexecutions totals recovery attempts across the cell's runs.
	Reexecutions int
	// OverheadCycles totals recovery cost across the cell's runs.
	OverheadCycles uint64
	// Runs are the individual reports, in seed order.
	Runs []RunReport
}

// Campaign sweeps Sites × Rates × Seeds over one workload.
type Campaign struct {
	Workload Workload
	Sites    []faults.Site
	Rates    []float64
	Seeds    []uint64
	Policy   Policy
	// Parallel fans cells out to goroutines (each cell owns its machines;
	// results merge in declaration order, so reports are byte-identical
	// to a sequential sweep).
	Parallel bool
	// Ctx, when non-nil, cancels in-flight simulations cooperatively.
	Ctx context.Context
}

// Report is a completed campaign.
type Report struct {
	Golden *Golden
	Cells  []CellReport
}

// Run executes the campaign: one golden run, then every (site, rate)
// cell, each sweeping all seeds through the recovery policy.
func (c Campaign) Run() (*Report, error) {
	golden, err := RunGolden(c.Workload, c.Ctx)
	if err != nil {
		return nil, err
	}
	cells := make([]CellReport, len(c.Sites)*len(c.Rates))
	run := func(i int, site faults.Site, rate float64) {
		cell := CellReport{Site: site, Rate: rate}
		for _, seed := range c.Seeds {
			rep := RunOne(c.Workload, site, rate, seed, c.Policy, golden, c.Ctx)
			cell.Outcomes[rep.First]++
			cell.Reexecutions += rep.Attempts - 1
			cell.OverheadCycles += rep.OverheadCycles
			if rep.Recovered() {
				cell.Recovered++
			} else if rep.Final.failed() {
				cell.Unrecovered++
			}
			cell.Runs = append(cell.Runs, rep)
		}
		cells[i] = cell
	}
	if !c.Parallel || len(cells) < 2 {
		i := 0
		for _, site := range c.Sites {
			for _, rate := range c.Rates {
				run(i, site, rate)
				i++
			}
		}
	} else {
		panics := make([]any, len(cells))
		var wg sync.WaitGroup
		i := 0
		for _, site := range c.Sites {
			for _, rate := range c.Rates {
				wg.Add(1)
				go func(i int, site faults.Site, rate float64) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					run(i, site, rate)
				}(i, site, rate)
				i++
			}
		}
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
	return &Report{Golden: golden, Cells: cells}, nil
}
