package resilience

import (
	"math"
	"strings"
	"testing"

	"omega/internal/core"
	"omega/internal/faults"
	"omega/internal/pisc"
)

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		Clean:                "clean",
		DetectedCorrected:    "detected-corrected",
		DetectedDegraded:     "detected-degraded",
		Crashed:              "crashed",
		SilentDataCorruption: "silent-data-corruption",
	}
	if len(want) != int(NumOutcomes) {
		t.Fatalf("taxonomy drifted: %d names for %d outcomes", len(want), NumOutcomes)
	}
	for o, name := range want {
		if o.String() != name {
			t.Fatalf("%d.String() = %q, want %q", o, o.String(), name)
		}
	}
	if Outcome(99).String() == "" || !strings.Contains(Outcome(99).String(), "99") {
		t.Fatal("out-of-range outcome should still render")
	}
	for _, o := range []Outcome{Clean, DetectedCorrected, DetectedDegraded} {
		if o.failed() {
			t.Fatalf("%v must not trigger recovery", o)
		}
	}
	for _, o := range []Outcome{Crashed, SilentDataCorruption} {
		if !o.failed() {
			t.Fatalf("%v must trigger recovery", o)
		}
	}
}

func vals(fs ...float64) []pisc.Value {
	out := make([]pisc.Value, len(fs))
	for i, f := range fs {
		out[i] = pisc.FloatValue(f)
	}
	return out
}

func TestOutputsMatch(t *testing.T) {
	tol := 1e-9
	a := [][]pisc.Value{vals(0.25, 0.5, 0.25)}
	if !outputsMatch(a, [][]pisc.Value{vals(0.25, 0.5, 0.25)}, tol) {
		t.Fatal("identical vectors mismatch")
	}
	// Within relative tolerance.
	if !outputsMatch([][]pisc.Value{vals(0.25*(1+1e-12), 0.5, 0.25)}, a, tol) {
		t.Fatal("within-tolerance drift rejected")
	}
	// Beyond tolerance.
	if outputsMatch([][]pisc.Value{vals(0.25*(1+1e-6), 0.5, 0.25)}, a, tol) {
		t.Fatal("beyond-tolerance drift accepted")
	}
	// NaN never matches anything but itself bit-for-bit being unequal.
	if outputsMatch([][]pisc.Value{vals(math.NaN(), 0.5, 0.25)}, a, tol) {
		t.Fatal("NaN accepted")
	}
	// Shape mismatches.
	if outputsMatch(nil, a, tol) || outputsMatch([][]pisc.Value{vals(0.25)}, a, tol) {
		t.Fatal("shape mismatch accepted")
	}
	// Integer-valued properties (raw small uint64 bit patterns decode to
	// denormal floats) must compare exactly — off-by-one is corruption,
	// not float noise.
	ints := [][]pisc.Value{{pisc.Value(1), pisc.Value(2), pisc.Value(3)}}
	if !outputsMatch(ints, [][]pisc.Value{{pisc.Value(1), pisc.Value(2), pisc.Value(3)}}, tol) {
		t.Fatal("identical ints mismatch")
	}
	if outputsMatch(ints, [][]pisc.Value{{pisc.Value(1), pisc.Value(2), pisc.Value(4)}}, tol) {
		t.Fatal("off-by-one int accepted")
	}
}

func TestFirstDivergence(t *testing.T) {
	if d := firstDivergence([]uint64{1, 2, 3}, []uint64{1, 2, 3}); d != -1 {
		t.Fatalf("equal trails diverge at %d", d)
	}
	if d := firstDivergence([]uint64{1, 9, 3}, []uint64{1, 2, 3}); d != 1 {
		t.Fatalf("diverge at %d, want 1", d)
	}
	if d := firstDivergence([]uint64{1, 2}, []uint64{1, 2, 3}); d != 2 {
		t.Fatalf("prefix diverges at %d, want 2", d)
	}
	if d := firstDivergence(nil, nil); d != -1 {
		t.Fatalf("empty trails diverge at %d", d)
	}
}

// syntheticGolden builds a golden from a baseline stats value so classify
// can be exercised without running a machine.
func syntheticGolden(st core.MachineStats, outputs [][]pisc.Value) *Golden {
	return &Golden{Stats: st, Outputs: outputs, Signature: signatureOf(st)}
}

func TestClassifyTaxonomy(t *testing.T) {
	var base core.MachineStats
	base.Cycles = 1000
	out := [][]pisc.Value{vals(0.5, 0.5)}
	g := syntheticGolden(base, out)
	tol := 1e-9

	// Clean: same stats, same outputs, no events.
	if got := classify(base, out, g, tol); got != Clean {
		t.Fatalf("clean run classified %v", got)
	}
	// Detected-corrected: detections fired, outputs and signature intact
	// (the fault log is normalized out of the signature).
	det := base
	det.Faults.DRAMCorrected = 3
	if got := classify(det, out, g, tol); got != DetectedCorrected {
		t.Fatalf("corrected run classified %v", got)
	}
	// Detected-degraded: detections plus permanent scratchpad damage.
	deg := base
	deg.Faults.SPParityErrors = 1
	deg.SPDegraded = 1
	if got := classify(deg, out, g, tol); got != DetectedDegraded {
		t.Fatalf("degraded run classified %v", got)
	}
	// NoC retry-budget exhaustion also counts as degraded.
	gaveUp := base
	gaveUp.Faults.NoCDropped = 1
	gaveUp.Faults.NoCGaveUp = 1
	if got := classify(gaveUp, out, g, tol); got != DetectedDegraded {
		t.Fatalf("gave-up run classified %v", got)
	}
	// SDC by wrong outputs, even with detections present.
	bad := det
	if got := classify(bad, [][]pisc.Value{vals(0.5, 0.75)}, g, tol); got != SilentDataCorruption {
		t.Fatalf("wrong-output run classified %v", got)
	}
	// SDC by escaped DRAM multi-bit flip.
	silent := base
	silent.Faults.DRAMSilent = 1
	if got := classify(silent, out, g, tol); got != SilentDataCorruption {
		t.Fatalf("escaped-ECC run classified %v", got)
	}
	// SDC by timing-signature divergence with zero detections.
	drift := base
	drift.Cycles = 1001
	if got := classify(drift, out, g, tol); got != SilentDataCorruption {
		t.Fatalf("silent timing drift classified %v", got)
	}
	// The same drift WITH a detection is accounted detected-corrected:
	// detected faults legitimately change timing.
	drift.Faults.LineBufGenCatches = 1
	if got := classify(drift, out, g, tol); got != DetectedCorrected {
		t.Fatalf("detected timing drift classified %v", got)
	}
}

// TestSignatureNormalizesFaultFields: two stats differing only in the
// fault log and degradation count must share a signature — those fields
// are supposed to differ under injection.
func TestSignatureNormalizesFaultFields(t *testing.T) {
	var a, b core.MachineStats
	a.Cycles = 42
	b.Cycles = 42
	b.Faults = faults.Events{DRAMCorrected: 9, NoCDropped: 2}
	b.SPDegraded = 5
	if !bytesEqual(signatureOf(a), signatureOf(b)) {
		t.Fatal("fault fields leaked into the signature")
	}
	b.Cycles = 43
	if bytesEqual(signatureOf(a), signatureOf(b)) {
		t.Fatal("cycle divergence not visible in the signature")
	}
}

func TestRunReportRecovered(t *testing.T) {
	r := RunReport{First: SilentDataCorruption, Final: Clean}
	if !r.Recovered() {
		t.Fatal("failed-then-clean is a recovery")
	}
	r.Final = Crashed
	if r.Recovered() {
		t.Fatal("still-failed is not a recovery")
	}
	r = RunReport{First: Clean, Final: Clean}
	if r.Recovered() {
		t.Fatal("never-failed is not a recovery")
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.MaxRetries <= 0 || p.BackoffCycles == 0 || p.Tolerance <= 0 {
		t.Fatalf("default policy degenerate: %+v", p)
	}
}
