// Package scratchpad implements OMEGA's distributed scratchpad storage and
// its controller (paper §V.A, Figure 7): the address-monitoring registers
// that recognize vtxProp accesses, the partition unit that maps a vertex to
// its home scratchpad, the index unit that locates the line inside that
// scratchpad, and the per-core read-only source vertex buffer (§V.C).
package scratchpad

import (
	"fmt"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// MonitorRegister describes one vtxProp array to the controller (Figure 7
// left: start_addr, type_size, stride), extended with the element count so
// the index unit can bound-check.
type MonitorRegister struct {
	// StartAddr is the base address of the vtxProp array.
	StartAddr memsys.Addr
	// TypeSize is the size in bytes of the primitive stored per vertex.
	TypeSize uint8
	// Stride is the distance between consecutive vertices' entries;
	// equal to TypeSize unless the property lives inside a struct.
	Stride uint32
	// Count is the number of vertices covered.
	Count uint32
	// Slot is the property index within the scratchpad line (a line
	// holds all Props of one vertex, §V.A).
	Slot int
}

// Contains reports whether addr falls inside this register's array and, if
// so, which vertex it addresses.
func (m MonitorRegister) Contains(addr memsys.Addr) (vertex uint32, ok bool) {
	if addr < m.StartAddr {
		return 0, false
	}
	off := uint64(addr - m.StartAddr)
	v := off / uint64(m.Stride)
	if v >= uint64(m.Count) {
		return 0, false
	}
	rem := off % uint64(m.Stride)
	if rem >= uint64(m.TypeSize) {
		return 0, false
	}
	return uint32(v), true
}

// Config sizes the distributed scratchpads.
type Config struct {
	// NumCores is the number of scratchpad slices (one per core).
	NumCores int
	// BytesPerCore is the slice capacity.
	BytesPerCore int
	// LatencyCycles is the slice access latency (3 in Table III).
	LatencyCycles memsys.Cycles
	// ChunkSize is the interleaving chunk of the vertex->slice mapping;
	// OMEGA configures it to match the framework's OpenMP chunk (§V.D).
	ChunkSize int
	// SrcBufferEntries sizes the per-core source vertex buffer.
	SrcBufferEntries int
}

// DefaultConfig returns a Table III-like scratchpad arrangement.
func DefaultConfig(numCores, bytesPerCore int) Config {
	return Config{
		NumCores:         numCores,
		BytesPerCore:     bytesPerCore,
		LatencyCycles:    3,
		ChunkSize:        64,
		SrcBufferEntries: 64,
	}
}

// Controller is the distributed scratchpad controller: one logical entity
// in the model, representing the per-core controllers of Figure 7.
// Not safe for concurrent use.
type Controller struct {
	cfg      Config
	monitors []MonitorRegister
	// bytesPerVertex is the line size: sum of all registered Props'
	// TypeSize, plus one active-list bit per property (rounded up inside
	// lineBytes).
	bytesPerVertex int
	// residentCount is how many vertices (0..residentCount-1, i.e. the
	// most-connected after in-degree reordering) live in scratchpads.
	residentCount uint32
	// faulty holds vertex lines degraded by parity errors: they are no
	// longer scratchpad-resident and fall back to the cache hierarchy
	// (graceful degradation — slower, never wrong). nil until the first
	// fault.
	faulty map[uint32]struct{}

	// Stats
	LocalAccesses  stats.Counter
	RemoteAccesses stats.Counter
	SrcBufHits     stats.Ratio
	// ActiveBitSets counts dense active-list bit updates done in-SP.
	ActiveBitSets stats.Counter

	srcBufs []*srcBuffer
}

// NewController builds the controller.
func NewController(cfg Config) *Controller {
	if cfg.NumCores <= 0 || cfg.BytesPerCore <= 0 {
		panic(fmt.Sprintf("scratchpad: bad config %+v", cfg))
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1
	}
	c := &Controller{cfg: cfg}
	c.srcBufs = make([]*srcBuffer, cfg.NumCores)
	for i := range c.srcBufs {
		c.srcBufs[i] = newSrcBuffer(cfg.SrcBufferEntries)
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Configure registers the vtxProp arrays for the running algorithm and
// computes how many of the hottest vertices fit. The framework calls this
// at application start (the paper's generated configuration code, §V.F).
// totalVertices bounds residency. It returns the resident count.
func (c *Controller) Configure(monitors []MonitorRegister, totalVertices int) int {
	c.monitors = append(c.monitors[:0], monitors...)
	bytes := 0
	for i := range c.monitors {
		c.monitors[i].Slot = i
		bytes += int(c.monitors[i].TypeSize)
	}
	// One active-list tracking bit per vtxProp entry (§V.A), rounded up
	// to whole bytes per vertex line.
	bits := len(c.monitors)
	bytes += (bits + 7) / 8
	if bytes == 0 {
		c.bytesPerVertex = 0
		c.residentCount = 0
		return 0
	}
	c.bytesPerVertex = bytes
	capVertices := uint64(c.cfg.NumCores) * uint64(c.cfg.BytesPerCore) / uint64(bytes)
	if capVertices > uint64(totalVertices) {
		capVertices = uint64(totalVertices)
	}
	c.residentCount = uint32(capVertices)
	return int(capVertices)
}

// ResidentCount returns how many vertices are scratchpad-resident.
func (c *Controller) ResidentCount() int { return int(c.residentCount) }

// BytesPerVertex returns the scratchpad line size in bytes.
func (c *Controller) BytesPerVertex() int { return c.bytesPerVertex }

// Match implements the monitor unit: it reports whether addr belongs to a
// registered vtxProp array of a scratchpad-resident vertex. Vertex lines
// degraded by parity errors are reported non-resident, redirecting their
// accesses to the cache hierarchy.
func (c *Controller) Match(addr memsys.Addr) (vertex uint32, resident bool) {
	for i := range c.monitors {
		if v, ok := c.monitors[i].Contains(addr); ok {
			if _, bad := c.faulty[v]; bad {
				return v, false
			}
			return v, v < c.residentCount
		}
	}
	return 0, false
}

// MarkFaulty degrades one vertex line after a parity error: the vertex is
// excluded from residency and all its future accesses take the cache
// path. It reports whether the line was newly degraded.
func (c *Controller) MarkFaulty(vertex uint32) bool {
	if c.faulty == nil {
		c.faulty = make(map[uint32]struct{})
	}
	if _, ok := c.faulty[vertex]; ok {
		return false
	}
	c.faulty[vertex] = struct{}{}
	return true
}

// DegradedCount returns how many vertex lines parity errors have degraded
// to the cache hierarchy.
func (c *Controller) DegradedCount() int { return len(c.faulty) }

// Home implements the partition unit: the scratchpad slice holding vertex.
// Vertices are distributed in chunks of ChunkSize round-robin across
// slices (§V.D).
func (c *Controller) Home(vertex uint32) int {
	return int(uint64(vertex) / uint64(c.cfg.ChunkSize) % uint64(c.cfg.NumCores))
}

// Index implements the index unit: the line number of vertex inside its
// home slice.
func (c *Controller) Index(vertex uint32) int {
	chunk := uint64(c.cfg.ChunkSize)
	cores := uint64(c.cfg.NumCores)
	v := uint64(vertex)
	round := v / (chunk * cores)
	return int(round*chunk + v%chunk)
}

// Latency returns the slice access latency.
func (c *Controller) Latency() memsys.Cycles { return c.cfg.LatencyCycles }

// RecordAccess tallies a local or remote slice access.
func (c *Controller) RecordAccess(local bool) {
	if local {
		c.LocalAccesses.Inc()
	} else {
		c.RemoteAccesses.Inc()
	}
}

// Accesses returns the total slice accesses.
func (c *Controller) Accesses() uint64 {
	return c.LocalAccesses.Value() + c.RemoteAccesses.Value()
}

// SrcBufLookup consults core's source vertex buffer for vertex; on a miss
// the entry is installed (the fill happens on the way back from the remote
// slice, §V.C).
func (c *Controller) SrcBufLookup(core int, vertex uint32) (hit bool) {
	hit = c.srcBufs[core].lookupInsert(vertex)
	c.SrcBufHits.Observe(hit)
	return hit
}

// InvalidateSrcBufs clears every core's buffer; OMEGA does this at the end
// of each algorithm iteration, which is what makes the buffers coherence-
// free (§V.C).
func (c *Controller) InvalidateSrcBufs() {
	for _, b := range c.srcBufs {
		b.invalidate()
	}
}

// State is an opaque controller checkpoint: monitor configuration,
// residency, degraded lines, source buffers, and statistics.
type State struct {
	monitors       []MonitorRegister
	bytesPerVertex int
	residentCount  uint32
	faulty         map[uint32]struct{}

	local, remote, activeBits stats.Counter
	srcBufHits                stats.Ratio
	srcBufs                   []srcBufState
}

type srcBufState struct {
	entries []uint32
	valid   []bool
	next    int
}

// Snapshot captures the controller state for later Restore.
func (c *Controller) Snapshot() State {
	s := State{
		monitors:       append([]MonitorRegister(nil), c.monitors...),
		bytesPerVertex: c.bytesPerVertex,
		residentCount:  c.residentCount,
		local:          c.LocalAccesses,
		remote:         c.RemoteAccesses,
		activeBits:     c.ActiveBitSets,
		srcBufHits:     c.SrcBufHits,
		srcBufs:        make([]srcBufState, len(c.srcBufs)),
	}
	if c.faulty != nil {
		s.faulty = make(map[uint32]struct{}, len(c.faulty))
		for v := range c.faulty {
			s.faulty[v] = struct{}{}
		}
	}
	for i, b := range c.srcBufs {
		s.srcBufs[i] = srcBufState{
			entries: append([]uint32(nil), b.entries...),
			valid:   append([]bool(nil), b.valid...),
			next:    b.next,
		}
	}
	return s
}

// Restore rewinds the controller to a Snapshot.
func (c *Controller) Restore(s State) {
	c.monitors = append(c.monitors[:0], s.monitors...)
	c.bytesPerVertex = s.bytesPerVertex
	c.residentCount = s.residentCount
	c.faulty = nil
	if s.faulty != nil {
		c.faulty = make(map[uint32]struct{}, len(s.faulty))
		for v := range s.faulty {
			c.faulty[v] = struct{}{}
		}
	}
	c.LocalAccesses = s.local
	c.RemoteAccesses = s.remote
	c.ActiveBitSets = s.activeBits
	c.SrcBufHits = s.srcBufHits
	for i, b := range c.srcBufs {
		bs := s.srcBufs[i]
		copy(b.entries, bs.entries)
		copy(b.valid, bs.valid)
		b.next = bs.next
		b.index = make(map[uint32]int, b.capacity)
		for j, v := range b.entries {
			if b.valid[j] {
				b.index[v] = j
			}
		}
	}
}

// Reset clears statistics, buffers, and degraded lines (configuration is
// kept): a Reset models a fresh run on repaired hardware.
func (c *Controller) Reset() {
	c.LocalAccesses.Reset()
	c.RemoteAccesses.Reset()
	c.SrcBufHits = stats.Ratio{}
	c.ActiveBitSets.Reset()
	c.faulty = nil
	c.InvalidateSrcBufs()
}

// srcBuffer is a small fully-associative read-only buffer with FIFO
// replacement.
type srcBuffer struct {
	entries  []uint32
	valid    []bool
	next     int
	capacity int
	index    map[uint32]int
}

func newSrcBuffer(entries int) *srcBuffer {
	if entries <= 0 {
		entries = 1
	}
	return &srcBuffer{
		entries:  make([]uint32, entries),
		valid:    make([]bool, entries),
		capacity: entries,
		index:    make(map[uint32]int, entries),
	}
}

func (b *srcBuffer) lookupInsert(vertex uint32) bool {
	if i, ok := b.index[vertex]; ok && b.valid[i] && b.entries[i] == vertex {
		return true
	}
	// Install, evicting FIFO.
	i := b.next
	b.next = (b.next + 1) % b.capacity
	if b.valid[i] {
		delete(b.index, b.entries[i])
	}
	b.entries[i] = vertex
	b.valid[i] = true
	b.index[vertex] = i
	return false
}

func (b *srcBuffer) invalidate() {
	for i := range b.valid {
		b.valid[i] = false
	}
	b.index = make(map[uint32]int, b.capacity)
	b.next = 0
}
