package scratchpad

import (
	"testing"
	"testing/quick"

	"omega/internal/memsys"
	"omega/internal/stats"
)

func controller() *Controller {
	return NewController(Config{
		NumCores:         4,
		BytesPerCore:     1024,
		LatencyCycles:    3,
		ChunkSize:        8,
		SrcBufferEntries: 4,
	})
}

func TestMonitorRegisterContains(t *testing.T) {
	m := MonitorRegister{StartAddr: 0x1000, TypeSize: 8, Stride: 8, Count: 100}
	if _, ok := m.Contains(0xFFF); ok {
		t.Fatal("address below start should not match")
	}
	if v, ok := m.Contains(0x1000); !ok || v != 0 {
		t.Fatalf("base address should be vertex 0: %d %v", v, ok)
	}
	if v, ok := m.Contains(0x1000 + 8*37 + 3); !ok || v != 37 {
		t.Fatalf("mid-entry address should be vertex 37: %d %v", v, ok)
	}
	if _, ok := m.Contains(0x1000 + 8*100); ok {
		t.Fatal("address past the array should not match")
	}
}

func TestMonitorRegisterStridedStruct(t *testing.T) {
	// A 4-byte field inside a 12-byte struct: bytes 4..11 of each stride
	// belong to other fields.
	m := MonitorRegister{StartAddr: 0, TypeSize: 4, Stride: 12, Count: 10}
	if v, ok := m.Contains(24); !ok || v != 2 {
		t.Fatalf("stride math wrong: %d %v", v, ok)
	}
	if _, ok := m.Contains(24 + 5); ok {
		t.Fatal("padding bytes should not match this register")
	}
}

func TestConfigureResidency(t *testing.T) {
	c := controller()
	// Two 4-byte props + 2 active bits -> 9 bytes per vertex line.
	n := c.Configure([]MonitorRegister{
		{StartAddr: 0, TypeSize: 4, Stride: 4, Count: 1000},
		{StartAddr: 8192, TypeSize: 4, Stride: 4, Count: 1000},
	}, 1000)
	want := 4 * 1024 / 9
	if n != want {
		t.Fatalf("resident %d, want %d", n, want)
	}
	if c.BytesPerVertex() != 9 {
		t.Fatalf("line bytes %d", c.BytesPerVertex())
	}
}

func TestConfigureCapsAtTotalVertices(t *testing.T) {
	c := controller()
	n := c.Configure([]MonitorRegister{{StartAddr: 0, TypeSize: 4, Stride: 4, Count: 10}}, 10)
	if n != 10 {
		t.Fatalf("resident %d, want 10 (all vertices fit)", n)
	}
}

func TestConfigureEmpty(t *testing.T) {
	c := controller()
	if n := c.Configure(nil, 100); n != 0 {
		t.Fatalf("no monitors -> no residents, got %d", n)
	}
}

func TestMatch(t *testing.T) {
	c := controller()
	c.Configure([]MonitorRegister{{StartAddr: 0x1000, TypeSize: 8, Stride: 8, Count: 1000}}, 1000)
	resident := uint32(c.ResidentCount())
	v, ok := c.Match(0x1000 + 8*memsys.Addr(resident-1))
	if !ok || v != resident-1 {
		t.Fatalf("last resident should match: %d %v", v, ok)
	}
	if _, ok := c.Match(0x1000 + 8*memsys.Addr(resident)); ok {
		t.Fatal("first non-resident vertex should not be resident")
	}
	if _, ok := c.Match(0x50000); ok {
		t.Fatal("unmonitored address should not match")
	}
}

func TestPartitionChunked(t *testing.T) {
	c := controller() // chunk 8, 4 cores
	// Vertices 0-7 -> slice 0, 8-15 -> slice 1, ..., 32-39 -> slice 0.
	cases := []struct {
		v    uint32
		home int
	}{{0, 0}, {7, 0}, {8, 1}, {31, 3}, {32, 0}, {40, 1}}
	for _, tc := range cases {
		if got := c.Home(tc.v); got != tc.home {
			t.Fatalf("Home(%d) = %d, want %d", tc.v, got, tc.home)
		}
	}
}

func TestIndexWithinSlice(t *testing.T) {
	c := controller() // chunk 8, 4 cores
	// Slice 0 holds vertices 0-7 (lines 0-7), 32-39 (lines 8-15), ...
	cases := []struct {
		v   uint32
		idx int
	}{{0, 0}, {7, 7}, {32, 8}, {39, 15}, {64, 16}}
	for _, tc := range cases {
		if got := c.Index(tc.v); got != tc.idx {
			t.Fatalf("Index(%d) = %d, want %d", tc.v, got, tc.idx)
		}
	}
}

func TestPartitionIndexBijection(t *testing.T) {
	// Property: (Home, Index) is injective over vertices.
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		chunk := 1 + r.Intn(16)
		cores := 1 + r.Intn(8)
		c := NewController(Config{
			NumCores: cores, BytesPerCore: 4096, LatencyCycles: 3,
			ChunkSize: chunk, SrcBufferEntries: 4,
		})
		seen := map[[2]int]bool{}
		for v := uint32(0); v < 500; v++ {
			key := [2]int{c.Home(v), c.Index(v)}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSrcBufferHitsAfterInstall(t *testing.T) {
	c := controller()
	if c.SrcBufLookup(0, 42) {
		t.Fatal("cold buffer should miss")
	}
	if !c.SrcBufLookup(0, 42) {
		t.Fatal("installed entry should hit")
	}
	// Other core's buffer is independent.
	if c.SrcBufLookup(1, 42) {
		t.Fatal("core 1's buffer should be cold")
	}
	if c.SrcBufHits.Total != 3 || c.SrcBufHits.Hits != 1 {
		t.Fatalf("src buf stats %d/%d", c.SrcBufHits.Hits, c.SrcBufHits.Total)
	}
}

func TestSrcBufferFIFOEviction(t *testing.T) {
	c := controller() // 4 entries
	for v := uint32(0); v < 4; v++ {
		c.SrcBufLookup(0, v)
	}
	c.SrcBufLookup(0, 99) // evicts vertex 0
	if c.SrcBufLookup(0, 0) {
		t.Fatal("vertex 0 should have been evicted FIFO")
	}
	// That lookup reinstalled 0, evicting 2 (1 was evicted by the miss
	// on 0 itself? No: miss on 0 installed at slot 1 evicting v1).
	if !c.SrcBufLookup(0, 99) && !c.SrcBufLookup(0, 3) {
		t.Fatal("recently installed entries should survive")
	}
}

func TestInvalidateSrcBufs(t *testing.T) {
	c := controller()
	c.SrcBufLookup(0, 7)
	c.SrcBufLookup(1, 7)
	c.InvalidateSrcBufs()
	if c.SrcBufLookup(0, 7) || c.SrcBufLookup(1, 7) {
		t.Fatal("iteration boundary must clear all buffers")
	}
}

func TestAccessCounters(t *testing.T) {
	c := controller()
	c.RecordAccess(true)
	c.RecordAccess(true)
	c.RecordAccess(false)
	if c.Accesses() != 3 || c.LocalAccesses.Value() != 2 || c.RemoteAccesses.Value() != 1 {
		t.Fatal("access counters wrong")
	}
}

func TestReset(t *testing.T) {
	c := controller()
	c.Configure([]MonitorRegister{{StartAddr: 0, TypeSize: 4, Stride: 4, Count: 100}}, 100)
	c.RecordAccess(true)
	c.SrcBufLookup(0, 1)
	c.Reset()
	if c.Accesses() != 0 || c.SrcBufHits.Total != 0 {
		t.Fatal("reset incomplete")
	}
	if c.ResidentCount() == 0 {
		t.Fatal("reset must keep configuration")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewController(Config{NumCores: 0, BytesPerCore: 1})
}
