package core

import (
	"omega/internal/cpu"
	"omega/internal/memsys"
)

// coreHeap is an indexed binary min-heap of core IDs ordered by
// (local clock, core ID). ParallelForGrain uses it to pick the next core
// to run in O(log p) instead of scanning all cores per work item.
//
// The (clock, id) key is a total order (IDs are unique), so the heap
// minimum is exactly the core a full scan with a strict less-than and
// first-seen tiebreak would select — the item interleaving, and therefore
// every simulated arrival order, is bit-identical to the scan.
//
// Only the just-run core's clock ever changes between selections (the body
// advances no other core), so one sift-down of the root per item restores
// the invariant.
//
// Clocks are cached per heap slot: sift compares index two flat arrays
// instead of chasing h.cores[id] pointers (a host-cache miss per compare
// in the per-item hot loop). The cache is exact — fixMin re-reads the one
// clock that may have moved, and no other slot's clock changes while its
// core is queued.
type coreHeap struct {
	cores  []*cpu.Core
	ids    []int32         // heap slots holding core IDs
	clocks []memsys.Cycles // cached Clock() of the core in each slot
	pos    []int32         // core ID -> heap slot, -1 when not queued
}

// reset prepares the heap for a machine's cores, reusing prior storage.
func (h *coreHeap) reset(cores []*cpu.Core) {
	h.cores = cores
	h.ids = h.ids[:0]
	h.clocks = h.clocks[:0]
	if cap(h.pos) < len(cores) {
		h.pos = make([]int32, len(cores))
	}
	h.pos = h.pos[:len(cores)]
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *coreHeap) empty() bool { return len(h.ids) == 0 }

// min returns the queued core with the lowest (clock, id) key.
func (h *coreHeap) min() int { return int(h.ids[0]) }

func (h *coreHeap) less(a, b int) bool {
	if h.clocks[a] != h.clocks[b] {
		return h.clocks[a] < h.clocks[b]
	}
	return h.ids[a] < h.ids[b]
}

// push queues a core.
func (h *coreHeap) push(id int) {
	h.ids = append(h.ids, int32(id))
	h.clocks = append(h.clocks, h.cores[id].Clock())
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// pop removes the minimum core.
func (h *coreHeap) pop() {
	last := len(h.ids) - 1
	h.swap(0, last)
	h.pos[h.ids[last]] = -1
	h.ids = h.ids[:last]
	h.clocks = h.clocks[:last]
	if last > 0 {
		h.down(0)
	}
}

// fixMin restores the invariant after the root core's clock advanced.
func (h *coreHeap) fixMin() {
	h.clocks[0] = h.cores[h.ids[0]].Clock()
	h.down(0)
}

func (h *coreHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.clocks[i], h.clocks[j] = h.clocks[j], h.clocks[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *coreHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *coreHeap) down(i int) {
	n := len(h.ids)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		child := l
		if r := l + 1; r < n && h.less(r, l) {
			child = r
		}
		if !h.less(child, i) {
			return
		}
		h.swap(i, child)
		i = child
	}
}
