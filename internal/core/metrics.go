package core

import (
	"omega/internal/memsys"
	"omega/internal/memsys/cache"
	"omega/internal/memsys/noc"
	"omega/internal/obs"
)

// buildRegistry wires the machine's metric registry: one descriptor per
// counter the simulator maintains, each reading the live component state
// through a closure. Registration happens once at construction and the
// order is fixed by this function, so the emitted sample stream is
// deterministic for a deterministically built machine. MachineStats is
// derived through the same registry (see Stats), so the snapshot and the
// sample stream can never disagree.
func buildRegistry(m *Machine) *obs.Registry {
	r := obs.NewRegistry()

	// cpu: clocks, retired instructions, TMAM breakdown, stall attribution
	// — summed across cores.
	r.RegisterGauge("cpu", "cycles", "", func() uint64 { return uint64(m.ElapsedCycles()) })
	r.RegisterCounter("cpu", "instructions", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += c.Instructions()
		}
		return t
	})
	r.RegisterCounter("cpu", "retiring", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.Breakdown().Retiring)
		}
		return t
	})
	r.RegisterCounter("cpu", "frontend", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.Breakdown().Frontend)
		}
		return t
	})
	r.RegisterCounter("cpu", "memory_bound", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.Breakdown().MemoryBound)
		}
		return t
	})
	r.RegisterCounter("cpu", "core_bound", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.Breakdown().CoreBound)
		}
		return t
	})
	r.RegisterCounter("cpu", "blocking_stall", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.BlockingStall)
		}
		return t
	})
	r.RegisterCounter("cpu", "window_stall", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.WindowStall)
		}
		return t
	})
	r.RegisterCounter("cpu", "drain_stall", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.DrainStall)
		}
		return t
	})
	r.RegisterCounter("cpu", "offload_stall", "", func() uint64 {
		var t uint64
		for _, c := range m.cores {
			t += uint64(c.OffloadStall)
		}
		return t
	})

	// cache: hit/total read/write breakdowns plus eviction activity, keyed
	// by hierarchy level ("L1", "L2+"), summed across private caches/banks.
	registerCacheTier := func(level string, caches func() []*cache.Cache) {
		r.RegisterCounter("cache", "read_hits", level, func() uint64 {
			var t uint64
			for _, c := range caches() {
				t += c.Reads.Hits
			}
			return t
		})
		r.RegisterCounter("cache", "read_total", level, func() uint64 {
			var t uint64
			for _, c := range caches() {
				t += c.Reads.Total
			}
			return t
		})
		r.RegisterCounter("cache", "write_hits", level, func() uint64 {
			var t uint64
			for _, c := range caches() {
				t += c.Writes.Hits
			}
			return t
		})
		r.RegisterCounter("cache", "write_total", level, func() uint64 {
			var t uint64
			for _, c := range caches() {
				t += c.Writes.Total
			}
			return t
		})
		r.RegisterCounter("cache", "evictions", level, func() uint64 {
			var t uint64
			for _, c := range caches() {
				t += c.Evictions.Value()
			}
			return t
		})
		r.RegisterCounter("cache", "writebacks", level, func() uint64 {
			var t uint64
			for _, c := range caches() {
				t += c.Writebacks.Value()
			}
			return t
		})
	}
	registerCacheTier(memsys.LevelL1.String(), func() []*cache.Cache { return m.path.l1 })
	registerCacheTier(memsys.LevelL2Plus.String(), func() []*cache.Cache { return m.path.l2 })

	// coherence: directory traffic and occupancy.
	r.RegisterCounter("coherence", "invalidations", "", m.path.dir.Invalidations.Value)
	r.RegisterCounter("coherence", "c2c_transfers", "", m.path.dir.C2CTransfers.Value)
	r.RegisterGauge("coherence", "lines", "", func() uint64 { return uint64(m.path.dir.Lines()) })

	// dram.
	r.RegisterCounter("dram", "accesses", "", m.mem.Accesses.Value)
	r.RegisterCounter("dram", "bytes", "", m.mem.BytesMoved.Value)
	r.RegisterCounter("dram", "row_hits", "", func() uint64 { return m.mem.RowHits.Hits })
	r.RegisterCounter("dram", "row_total", "", func() uint64 { return m.mem.RowHits.Total })
	r.RegisterCounter("dram", "queue_wait", "", m.mem.QueueDelay.Value)
	r.RegisterCounter("dram", "ecc_penalty", "", m.mem.ECCPenalty.Value)

	// noc: per-class traffic plus queueing.
	for _, cl := range [...]noc.MsgClass{noc.ClassLine, noc.ClassWord, noc.ClassCtrl} {
		cl := cl
		r.RegisterCounter("noc", "bytes", cl.String(), func() uint64 { return m.xbar.BytesByClass(cl) })
		r.RegisterCounter("noc", "messages", cl.String(), func() uint64 { return m.xbar.MessagesByClass(cl) })
	}
	r.RegisterCounter("noc", "queue_wait", "", m.xbar.QueueWait.Value)
	r.RegisterCounter("noc", "retry_wait", "", m.xbar.RetryWait.Value)

	// scratchpad + pisc (OMEGA machines only — on the baseline the probes
	// are simply absent and the corresponding stats read as zero).
	if m.omega != nil {
		ctrl := m.omega.ctrl
		r.RegisterCounter("scratchpad", "local", "", ctrl.LocalAccesses.Value)
		r.RegisterCounter("scratchpad", "remote", "", ctrl.RemoteAccesses.Value)
		r.RegisterCounter("scratchpad", "srcbuf_hits", "", func() uint64 { return ctrl.SrcBufHits.Hits })
		r.RegisterCounter("scratchpad", "srcbuf_total", "", func() uint64 { return ctrl.SrcBufHits.Total })
		r.RegisterCounter("scratchpad", "active_bit_sets", "", ctrl.ActiveBitSets.Value)
		r.RegisterGauge("scratchpad", "resident", "", func() uint64 { return uint64(ctrl.ResidentCount()) })
		r.RegisterGauge("scratchpad", "degraded", "", func() uint64 { return uint64(ctrl.DegradedCount()) })
		r.RegisterCounter("pisc", "executed", "", func() uint64 {
			var t uint64
			for _, e := range m.omega.engines {
				t += e.Executed.Value()
			}
			return t
		})
		r.RegisterCounter("pisc", "busy", "", func() uint64 {
			var t uint64
			for _, e := range m.omega.engines {
				t += e.BusyTime.Value()
			}
			return t
		})
		r.RegisterCounter("pisc", "backpress", "", func() uint64 {
			var t uint64
			for _, e := range m.omega.engines {
				t += e.Backpress.Value()
			}
			return t
		})
		r.RegisterCounter("machine", "offloads", "", m.omega.offloads.Value)
		r.RegisterCounter("machine", "sp_atomics", "", m.omega.spAtomics.Value)
		r.RegisterCounter("machine", "remote_reads", "", m.omega.remoteReads.Value)
	}

	// machine: issue-side access mix and the per-level service breakdown.
	for k := memsys.Kind(0); k < memsys.NumKinds; k++ {
		k := k
		r.RegisterCounter("machine", "accesses", k.String(), m.accessesByKind[k].Value)
	}
	r.RegisterCounter("machine", "atomics", "", m.atomicsIssued.Value)
	r.RegisterCounter("machine", "src_reads", "", m.srcReads.Value)
	r.RegisterCounter("machine", "iterations", "", m.iterations.Value)
	for l := memsys.Level(0); l < memsys.NumLevels; l++ {
		for _, atomic := range [2]bool{false, true} {
			i := levelIndex(l, atomic)
			name := l.String()
			if atomic {
				name = "atomic:" + name
			}
			r.RegisterCounter("machine", "level_count", name, func() uint64 { return m.levelCount[i] })
			r.RegisterCounter("machine", "level_latency", name, func() uint64 { return m.levelLatency[i] })
		}
	}

	// sched / linebuf / alloc: the execution-driver side.
	r.RegisterCounter("sched", "parallel_regions", "", m.parRegions.Value)
	r.RegisterCounter("sched", "sequential_regions", "", m.seqRegions.Value)
	r.RegisterCounter("sched", "items", "", m.schedItems.Value)
	r.RegisterCounter("linebuf", "hits", "", m.lbHits.Value)
	r.RegisterCounter("linebuf", "stores", "", m.lbStores.Value)
	r.RegisterGauge("alloc", "regions", "", func() uint64 { return uint64(len(m.regions)) })
	r.RegisterGauge("alloc", "bytes", "", func() uint64 {
		var t uint64
		for _, reg := range m.regions {
			t += uint64(reg.Bytes())
		}
		return t
	})
	return r
}
