package core

import (
	"fmt"

	"omega/internal/memsys"
)

// Region is a simulated allocation: a named, contiguous range of the
// simulated address space backing one logical array of the framework
// (a vtxProp array, the edge list, a frontier, ...). The framework keeps
// the *functional* data in ordinary Go slices; Regions exist so every
// logical access has a concrete simulated address for the caches,
// scratchpad monitor registers, and DRAM mapping to chew on.
type Region struct {
	// Name labels the region ("next_pagerank", "edgeList.out", ...).
	Name string
	// Base is the simulated base address (page aligned).
	Base memsys.Addr
	// ElemSize is the per-element size in bytes.
	ElemSize int
	// Count is the element count.
	Count int
	// Kind classifies the region for the heterogeneous hierarchy.
	Kind memsys.Kind
}

// Addr returns the simulated address of element i.
func (r *Region) Addr(i int) memsys.Addr {
	if i < 0 || i >= r.Count {
		panic(fmt.Sprintf("core: region %s index %d out of [0,%d)", r.Name, i, r.Count))
	}
	return r.Base + memsys.Addr(i*r.ElemSize)
}

// Bytes returns the total region size.
func (r *Region) Bytes() int { return r.ElemSize * r.Count }

const pageSize = 4096

// Alloc reserves a region of count elements of elemSize bytes. Regions are
// page-aligned and never recycled within a run (the simulated address
// space is 64-bit).
func (m *Machine) Alloc(name string, count, elemSize int, kind memsys.Kind) *Region {
	if count < 0 || elemSize <= 0 || elemSize > 64 {
		panic(fmt.Sprintf("core: bad alloc %s count=%d elem=%d", name, count, elemSize))
	}
	base := m.nextAddr
	r := &Region{Name: name, Base: base, ElemSize: elemSize, Count: count, Kind: kind}
	size := memsys.Addr(count * elemSize)
	m.nextAddr = (base + size + pageSize - 1) &^ (pageSize - 1)
	m.regions = append(m.regions, r)
	return r
}

// Regions returns all allocations made so far (for debugging and the
// translation tool's configuration dump).
func (m *Machine) Regions() []*Region {
	out := make([]*Region, len(m.regions))
	copy(out, m.regions)
	return out
}
