// Package core assembles the simulated machines of the OMEGA study: the
// baseline chip multiprocessor (Table III, "Baseline-specific") and the
// OMEGA heterogeneous cache/scratchpad machine ("OMEGA-specific"), along
// with the execution-driven scheduler that runs the Ligra-like framework
// on them and the statistics every experiment consumes.
package core

import (
	"fmt"

	"omega/internal/cpu"
	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/memsys/dram"
)

// Config describes one simulated machine.
type Config struct {
	// Name labels the machine in results ("baseline", "omega").
	Name string
	// NumCores is the core count (16 in Table III).
	NumCores int
	// Core is the per-core timing model configuration.
	Core cpu.Config

	// L1Bytes/L1Ways size each private L1 data cache.
	L1Bytes int
	L1Ways  int
	// L2BytesPerCore/L2Ways size each shared L2 bank.
	L2BytesPerCore int
	L2Ways         int
	// L2Lat is the L2 bank access latency.
	L2Lat memsys.Cycles

	// SPBytesPerCore sizes each scratchpad slice; 0 disables scratchpads
	// (baseline machine).
	SPBytesPerCore int
	// SPLat is the scratchpad access latency (3 in Table III).
	SPLat memsys.Cycles
	// PISC enables the processing-in-scratchpad engines. Disabling it
	// while keeping scratchpads reproduces the §X.A "storage-only"
	// ablation.
	PISC bool
	// SPChunkSize is the vertex-interleaving chunk of the scratchpad
	// partition unit; OMEGA matches it to OpenMPChunk (§V.D). 0 means
	// "match OpenMPChunk".
	SPChunkSize int
	// SrcBufEntries sizes the per-core source vertex buffer (§V.C);
	// 0 disables the buffer.
	SrcBufEntries int
	// SPResidentCap bounds how many vertices are scratchpad-resident
	// regardless of capacity; 0 means capacity-bound. The paper's static
	// partitioning maps the top 20% of vertices (the §VI n-th-element
	// cutoff), so ScaledPair sets this to 20% of the vertex count.
	SPResidentCap int

	// AtomicOpCycles is the core-side cost of executing an atomic
	// read-modify-write beyond the memory access itself.
	AtomicOpCycles memsys.Cycles
	// InvalidationCycles is the latency exposed to an atomic that must
	// invalidate remote sharers before completing.
	InvalidationCycles memsys.Cycles
	// AtomicsAsPlain turns every atomic into a plain read+write —
	// the §III experiment estimating atomic-instruction overhead.
	AtomicsAsPlain bool
	// L1Prefetch enables a next-line prefetcher for the sequential
	// access classes (edgeList, nGraphData): on an L1 miss, the
	// following line is fetched in the background. Table III lists no
	// prefetcher, so it defaults off; it exists for sensitivity studies.
	L1Prefetch bool
	// LLCPollution injects synthetic fills into the L2 banks at this
	// rate (pollution fills per demand L2 access), modeling the
	// instruction/OS/TLB traffic that shares a real machine's LLC but is
	// absent from the framework's access stream. 0 disables. The
	// Extension E5 experiment sweeps it; see EXPERIMENTS.md.
	LLCPollution float64
	// HybridPagePolicy closes DRAM rows after low-locality (vtxProp)
	// accesses while keeping them open for streams — §IX direction 3.
	HybridPagePolicy bool
	// LockedLines pins the hot vtxProp lines in the L2 banks instead of
	// adding scratchpads — the §IX "locked cache vs. scratchpad"
	// alternative. Data still moves at cache-line granularity, which is
	// the paper's argument against it. Ignored on OMEGA machines.
	LockedLines bool

	// DRAM configures off-chip memory.
	DRAM dram.Config
	// NoCBaseLatency/NoCBusBytes configure the crossbar (Table III:
	// 128-bit bus). The paper measures ~17 cycles average for a remote
	// round trip.
	NoCBaseLatency memsys.Cycles
	NoCBusBytes    int

	// Faults configures the seed-driven fault injector for the resilience
	// experiments: DRAM read bit-flips behind SECDED ECC, NoC message
	// drops with bounded retransmission, and scratchpad parity errors
	// that degrade vertex lines to the cache hierarchy. The zero value
	// (all rates 0) disables injection entirely and is the default.
	Faults faults.Config

	// DisableLineBuffer turns off the per-core same-line read fast path
	// (the one-entry line buffer). Results are bit-identical either way;
	// the knob exists so equivalence tests and benchmarks can compare the
	// memoized path against the full probe.
	DisableLineBuffer bool

	// SerialAccess disables the run-fold batching of sequential streaming
	// reads (DESIGN.md §11): every access takes the per-access path, one
	// hierarchy consultation each. Results are bit-identical either way —
	// the fold replays the per-access accounting exactly — so the knob
	// exists as a kill switch (omega-bench -no-batch) and lets equivalence
	// tests and benchmarks drive both paths on the same workload.
	SerialAccess bool

	// DisableLineBufGenCheck drops the generation tag comparison on line
	// buffer lookups. Only fault-injection experiments set it: with the
	// check off, an injected line-buffer corruption replays a stale memo
	// silently instead of being caught and discarded, which is exactly the
	// silent-data-corruption scenario the resilience campaigns classify.
	DisableLineBufGenCheck bool

	// OpenMPChunk is the scheduling chunk size of the framework's
	// parallel loops.
	OpenMPChunk int
	// DynamicSchedule hands chunks to idle cores on demand (Ligra's
	// work-stealing behaviour, and the "load balancing by fine-tuning
	// the scheduling" of §III). When false, chunks are assigned
	// statically round-robin — the §V.D scenario.
	DynamicSchedule bool
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.NumCores <= 0 || c.NumCores > 64 {
		return fmt.Errorf("core: NumCores %d out of range", c.NumCores)
	}
	if c.L1Bytes <= 0 || c.L1Ways <= 0 {
		return fmt.Errorf("core: bad L1 geometry")
	}
	if c.L2BytesPerCore <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("core: bad L2 geometry")
	}
	if c.SPBytesPerCore < 0 {
		return fmt.Errorf("core: negative scratchpad size")
	}
	if c.PISC && c.SPBytesPerCore == 0 {
		return fmt.Errorf("core: PISC requires scratchpads")
	}
	if c.SPBytesPerCore > 0 && c.SPLat <= 0 {
		return fmt.Errorf("core: scratchpads need a positive SPLat")
	}
	if c.OpenMPChunk <= 0 {
		return fmt.Errorf("core: OpenMPChunk must be positive")
	}
	if c.DRAM.Channels <= 0 || c.DRAM.BanksPerChan <= 0 || c.DRAM.RowBytes <= 0 {
		return fmt.Errorf("core: bad DRAM geometry (channels=%d banks=%d row=%d)",
			c.DRAM.Channels, c.DRAM.BanksPerChan, c.DRAM.RowBytes)
	}
	if c.DRAM.ServiceCyclesPerLine <= 0 {
		return fmt.Errorf("core: DRAM ServiceCyclesPerLine must be positive")
	}
	if c.NoCBusBytes <= 0 {
		return fmt.Errorf("core: NoCBusBytes must be positive")
	}
	if c.LLCPollution < 0 {
		return fmt.Errorf("core: negative LLCPollution")
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	return nil
}

// TotalOnChipStorage returns L2 plus scratchpad bytes across the chip
// (both machines of the paper are "same-sized" by this measure).
func (c Config) TotalOnChipStorage() int {
	return c.NumCores * (c.L2BytesPerCore + c.SPBytesPerCore)
}

// chunkSize resolves the scratchpad chunk (0 = match OpenMP).
func (c Config) chunkSize() int {
	if c.SPChunkSize > 0 {
		return c.SPChunkSize
	}
	return c.OpenMPChunk
}

// Baseline returns the Table III baseline CMP: 16 cores, 32 KB L1D,
// 2 MB shared L2 bank per core.
func Baseline() Config {
	return Config{
		Name:               "baseline",
		NumCores:           16,
		Core:               cpu.DefaultConfig(),
		L1Bytes:            32 << 10,
		L1Ways:             8,
		L2BytesPerCore:     2 << 20,
		L2Ways:             8,
		L2Lat:              6,
		AtomicOpCycles:     16,
		InvalidationCycles: 12,
		DRAM:               dram.DefaultConfig(),
		NoCBaseLatency:     8,
		NoCBusBytes:        16,
		OpenMPChunk:        64,
		DynamicSchedule:    true,
	}
}

// OMEGA returns the Table III OMEGA machine: half of each baseline L2 bank
// re-purposed as a scratchpad slice with a PISC engine.
func OMEGA() Config {
	c := Baseline()
	c.Name = "omega"
	c.L2BytesPerCore = 1 << 20
	c.SPBytesPerCore = 1 << 20
	c.SPLat = 3
	c.PISC = true
	c.SrcBufEntries = 64
	return c
}

// ScaledPair returns a (baseline, omega) pair whose on-chip storage is
// scaled to a dataset, preserving the paper's operating regime: the OMEGA
// scratchpads hold `coverage` (e.g. 0.20) of the graph's vtxProp, and the
// baseline gets the same total storage as cache. bytesPerVertex must be
// the scratchpad line size (sum of vtxProp entry sizes plus active bits).
//
// gem5 forces the paper to evaluate graphs of a few million vertices
// against 32 MB of storage; our synthetic graphs are smaller, so the
// machines scale down with them instead (DESIGN.md §3).
func ScaledPair(numVertices, bytesPerVertex int, coverage float64) (Config, Config) {
	base := Baseline()
	om := OMEGA()
	spTotal := int(coverage * float64(numVertices) * float64(bytesPerVertex))
	perCore := spTotal / om.NumCores
	perCore = roundUpTo(perCore, memsys.LineSize*om.L2Ways)
	minBank := memsys.LineSize * om.L2Ways
	if perCore < minBank {
		perCore = minBank
	}
	om.SPBytesPerCore = perCore
	om.L2BytesPerCore = perCore
	base.L2BytesPerCore = 2 * perCore
	// A real LLC is shared with instruction, OS, TLB-walk and prefetch
	// traffic that the framework's access stream does not contain. One
	// pollution fill per demand access calibrates the scaled baseline's
	// PageRank LLC hit rate to the paper's measured 44-53 % (Figure 15);
	// both machines receive it equally.
	base.LLCPollution = 1.0
	om.LLCPollution = 1.0
	// At the paper's multi-million-vertex scale, chunk-64 interleaving
	// spreads the hot vertices across all scratchpad slices; at scaled-
	// down vertex counts the same chunk would concentrate the hottest 64
	// vertices (a large access share) on slice 0 and its PISC. A small
	// partition chunk restores the paper's hot-spread regime.
	om.SPChunkSize = 4
	// The L1 must scale with the rest of the machine: in the paper's
	// testbed the 32 KB L1 holds ~0.4 % of the hot vertex set; leaving
	// it full-size here would let each L1 swallow the whole hot set and
	// erase the phenomenon under study.
	l1 := roundUpTo(perCore/8, memsys.LineSize*base.L1Ways)
	if min := memsys.LineSize * base.L1Ways; l1 < min {
		l1 = min
	}
	if l1 > 32<<10 {
		l1 = 32 << 10
	}
	base.L1Bytes = l1
	om.L1Bytes = l1
	// Scaling must never emit a machine NewMachine would reject: any
	// violation here is a bug in the scaling math, so fail fast with the
	// validator's message instead of producing nonsense stats downstream.
	for _, cfg := range []Config{base, om} {
		if err := cfg.Validate(); err != nil {
			panic(fmt.Sprintf("core: ScaledPair(%d, %d, %g) produced invalid %s config: %v",
				numVertices, bytesPerVertex, coverage, cfg.Name, err))
		}
	}
	return base, om
}

func roundUpTo(v, multiple int) int {
	if multiple <= 0 {
		return v
	}
	return (v + multiple - 1) / multiple * multiple
}
