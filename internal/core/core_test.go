package core

import (
	"strings"
	"testing"

	"omega/internal/memsys"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
)

func testBaseline() Config {
	b, _ := ScaledPair(4096, 8, 0.2)
	return b
}

func testOMEGA() Config {
	_, o := ScaledPair(4096, 8, 0.2)
	return o
}

func TestConfigValidate(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if err := OMEGA().Validate(); err != nil {
		t.Fatalf("omega invalid: %v", err)
	}
	bad := Baseline()
	bad.NumCores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores should fail")
	}
	bad = Baseline()
	bad.PISC = true // without scratchpads
	if bad.Validate() == nil {
		t.Fatal("PISC without scratchpads should fail")
	}
	bad = Baseline()
	bad.OpenMPChunk = 0
	if bad.Validate() == nil {
		t.Fatal("zero chunk should fail")
	}
}

func TestSameTotalStorage(t *testing.T) {
	b, o := ScaledPair(100000, 8, 0.2)
	if b.TotalOnChipStorage() != o.TotalOnChipStorage() {
		t.Fatalf("storage mismatch: %d vs %d",
			b.TotalOnChipStorage(), o.TotalOnChipStorage())
	}
	bp, op := Baseline(), OMEGA()
	if bp.TotalOnChipStorage() != op.TotalOnChipStorage() {
		t.Fatal("paper-size machines must match storage")
	}
}

func TestScaledPairCoversTwentyPercent(t *testing.T) {
	n := 100000
	_, o := ScaledPair(n, 8, 0.2)
	m := NewMachine(o)
	r := m.Alloc("p", n, 8, memsys.KindVtxProp)
	resident := m.ConfigureGraph(
		[]scratchpad.MonitorRegister{m.MonitorFor(r)}, n,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	frac := float64(resident) / float64(n)
	if frac < 0.15 || frac > 0.30 {
		t.Fatalf("resident fraction %.2f outside the paper's ~20%% regime", frac)
	}
}

func TestResidentCapApplies(t *testing.T) {
	n := 4096
	_, o := ScaledPair(n, 8, 0.2)
	o.SPResidentCap = 100
	m := NewMachine(o)
	r := m.Alloc("p", n, 8, memsys.KindVtxProp)
	resident := m.ConfigureGraph(
		[]scratchpad.MonitorRegister{m.MonitorFor(r)}, n,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	if resident != 100 {
		t.Fatalf("resident %d, want capped 100", resident)
	}
}

func TestAllocRegions(t *testing.T) {
	m := NewMachine(testBaseline())
	a := m.Alloc("a", 100, 8, memsys.KindVtxProp)
	b := m.Alloc("b", 50, 4, memsys.KindEdgeList)
	if a.Base == b.Base {
		t.Fatal("regions must not overlap")
	}
	if a.Base%4096 != 0 || b.Base%4096 != 0 {
		t.Fatal("regions must be page aligned")
	}
	if a.Addr(99) != a.Base+99*8 {
		t.Fatal("addressing wrong")
	}
	if len(m.Regions()) != 2 {
		t.Fatal("region registry wrong")
	}
}

func TestAllocBoundsPanic(t *testing.T) {
	m := NewMachine(testBaseline())
	r := m.Alloc("a", 10, 8, memsys.KindVtxProp)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Addr(10)
}

func TestParallelForVisitsAll(t *testing.T) {
	m := NewMachine(testBaseline())
	seen := make([]int, 1000)
	m.ParallelFor(1000, func(ctx *Ctx, i int) {
		seen[i]++
		ctx.Exec(1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d visited %d times", i, c)
		}
	}
	if m.ElapsedCycles() == 0 {
		t.Fatal("no time advanced")
	}
}

func TestParallelForStaticVisitsAll(t *testing.T) {
	cfg := testBaseline()
	cfg.DynamicSchedule = false
	m := NewMachine(cfg)
	seen := make([]int, 777)
	m.ParallelForGrain(777, 13, func(ctx *Ctx, i int) {
		seen[i]++
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("static: item %d visited %d times", i, c)
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	m := NewMachine(testBaseline())
	m.ParallelFor(0, func(ctx *Ctx, i int) { t.Fatal("must not run") })
}

func TestParallelForDeterministic(t *testing.T) {
	run := func() memsys.Cycles {
		m := NewMachine(testBaseline())
		r := m.Alloc("p", 4096, 8, memsys.KindVtxProp)
		m.ParallelFor(4096, func(ctx *Ctx, i int) {
			ctx.Exec(3)
			ctx.Read(r, (i*2654435761)%4096)
			ctx.Atomic(r, (i*40503)%4096)
		})
		return m.ElapsedCycles()
	}
	if run() != run() {
		t.Fatal("simulation must be deterministic")
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	m := NewMachine(testBaseline())
	m.ParallelFor(100, func(ctx *Ctx, i int) {
		// Uneven work.
		ctx.Exec(1 + i%50*10)
	})
	var clocks []memsys.Cycles
	for c := 0; c < m.NumCores(); c++ {
		clocks = append(clocks, m.cores[c].Clock())
	}
	for _, c := range clocks[1:] {
		if c != clocks[0] {
			t.Fatal("barrier did not align clocks")
		}
	}
}

func TestSequentialRunsOnCoreZero(t *testing.T) {
	m := NewMachine(testBaseline())
	m.Sequential(func(ctx *Ctx) {
		if ctx.Core() != 0 {
			t.Fatal("sequential sections run on core 0")
		}
		ctx.Exec(100)
	})
	if m.ElapsedCycles() == 0 {
		t.Fatal("sequential work not charged")
	}
}

func TestOmegaFasterThanBaselineOnHotAtomics(t *testing.T) {
	// A synthetic atomic-scatter kernel over a skewed target distribution
	// must be faster on OMEGA — the paper's core claim in miniature.
	run := func(cfg Config) memsys.Cycles {
		m := NewMachine(cfg)
		n := 4096
		r := m.Alloc("prop", n, 8, memsys.KindVtxProp)
		m.ConfigureGraph([]scratchpad.MonitorRegister{m.MonitorFor(r)}, n,
			pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
		m.ParallelFor(n*8, func(ctx *Ctx, i int) {
			ctx.Exec(4)
			// 80% of updates to the top 20% of vertices.
			var v int
			if i%5 != 0 {
				v = (i * 104729) % (n / 5)
			} else {
				v = n/5 + (i*15485863)%(n*4/5)
			}
			ctx.Atomic(r, v)
		})
		return m.ElapsedCycles()
	}
	base := run(testBaseline())
	om := run(testOMEGA())
	if float64(base)/float64(om) < 1.3 {
		t.Fatalf("OMEGA should clearly win on hot atomics: base %d vs omega %d", base, om)
	}
}

func TestScratchpadResidentAccessesBypassCaches(t *testing.T) {
	m := NewMachine(testOMEGA())
	n := 4096
	r := m.Alloc("prop", n, 8, memsys.KindVtxProp)
	resident := m.ConfigureGraph([]scratchpad.MonitorRegister{m.MonitorFor(r)}, n,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	if resident == 0 {
		t.Fatal("no residents configured")
	}
	m.ParallelFor(resident, func(ctx *Ctx, i int) {
		ctx.Read(r, i)
	})
	st := m.Stats()
	if st.SPAccesses == 0 {
		t.Fatal("resident reads should hit scratchpads")
	}
	if st.SPAccesses != uint64(resident) {
		t.Fatalf("SP accesses %d, want %d", st.SPAccesses, resident)
	}
}

func TestNonResidentVtxPropUsesCachePath(t *testing.T) {
	m := NewMachine(testOMEGA())
	n := 4096
	r := m.Alloc("prop", n, 8, memsys.KindVtxProp)
	resident := m.ConfigureGraph([]scratchpad.MonitorRegister{m.MonitorFor(r)}, n,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	m.ParallelFor(n-resident, func(ctx *Ctx, i int) {
		ctx.Read(r, resident+i)
	})
	st := m.Stats()
	if st.SPAccesses != 0 {
		t.Fatal("non-resident reads must not touch scratchpads")
	}
	if st.TotalAccesses() == 0 {
		t.Fatal("accesses unaccounted")
	}
}

func TestAtomicsAsPlainEmitsReadWrite(t *testing.T) {
	cfg := testBaseline()
	cfg.AtomicsAsPlain = true
	m := NewMachine(cfg)
	r := m.Alloc("p", 100, 8, memsys.KindVtxProp)
	m.Sequential(func(ctx *Ctx) { ctx.Atomic(r, 5) })
	st := m.Stats()
	if st.Atomics != 0 {
		t.Fatal("plain mode should not issue atomics")
	}
	if st.AccessesByKind[memsys.KindVtxProp] != 2 {
		t.Fatalf("want read+write pair, got %d accesses", st.AccessesByKind[memsys.KindVtxProp])
	}
}

func TestVertexProfile(t *testing.T) {
	m := NewMachine(testBaseline())
	m.EnableVertexProfile(100)
	r := m.Alloc("p", 100, 8, memsys.KindVtxProp)
	m.Sequential(func(ctx *Ctx) {
		ctx.Read(r, 7)
		ctx.Read(r, 7)
		ctx.Write(r, 9)
	})
	prof := m.VertexProfile()
	if prof[7] != 2 || prof[9] != 1 {
		t.Fatalf("profile wrong: %v", prof[:10])
	}
}

func TestMachineReset(t *testing.T) {
	m := NewMachine(testOMEGA())
	r := m.Alloc("p", 100, 8, memsys.KindVtxProp)
	m.Sequential(func(ctx *Ctx) {
		ctx.Atomic(r, 1)
		ctx.Read(r, 2)
	})
	m.Reset()
	st := m.Stats()
	if st.Cycles != 0 || st.TotalAccesses() != 0 || st.Atomics != 0 {
		t.Fatalf("reset incomplete: %+v", st)
	}
}

func TestStatsSummaryRenders(t *testing.T) {
	m := NewMachine(testOMEGA())
	n := 1024
	r := m.Alloc("p", n, 8, memsys.KindVtxProp)
	m.ConfigureGraph([]scratchpad.MonitorRegister{m.MonitorFor(r)}, n,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	m.ParallelFor(n, func(ctx *Ctx, i int) {
		ctx.Exec(2)
		ctx.Atomic(r, i%64)
	})
	s := m.Stats().Summary()
	for _, want := range []string{"omega", "L1", "DRAM", "NoC", "SP:", "TMAM"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if m.String() == "" {
		t.Fatal("machine description empty")
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := MachineStats{Cycles: 100}
	b := MachineStats{Cycles: 200}
	if a.Speedup(b) != 2.0 {
		t.Fatalf("speedup %v", a.Speedup(b))
	}
	var zero MachineStats
	if zero.Speedup(a) != 0 {
		t.Fatal("zero-cycle speedup should be 0")
	}
}

func TestLevelProfileExposed(t *testing.T) {
	m := NewMachine(testBaseline())
	r := m.Alloc("p", 64, 8, memsys.KindVtxProp)
	m.Sequential(func(ctx *Ctx) { ctx.Read(r, 0) })
	counts, lats := m.LevelProfile()
	if len(counts) == 0 || len(lats) == 0 {
		t.Fatal("level profile empty")
	}
}

func TestBeginIterationCountsAndInvalidates(t *testing.T) {
	m := NewMachine(testOMEGA())
	m.BeginIteration()
	m.BeginIteration()
	if m.Stats().Iterations != 2 {
		t.Fatal("iteration count wrong")
	}
}
