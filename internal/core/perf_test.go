package core

import (
	"testing"

	"omega/internal/memsys"
	"omega/internal/obs"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
)

// This file holds the hot-path microbenchmarks and allocation guards for
// the performance work on the simulated-access path: level-enum
// accounting, the flat coherence directory, and the heap-based core
// scheduler. The benchmarks isolate the per-access and per-item costs;
// the guards pin the "zero allocations in steady state" contract so a
// future change that reintroduces a per-access allocation fails CI.

const perfN = 4096 // vertices in the benchmark working set (power of two)

// perfMachine builds a machine plus a vtxProp region, configured for
// scratchpad residency and PISC microcode when omega is true.
func perfMachine(omega bool) (*Machine, *Region) {
	b, o := ScaledPair(perfN, 8, 0.2)
	cfg := b
	if omega {
		cfg = o
	}
	m := NewMachine(cfg)
	r := m.Alloc("prop", perfN, 8, memsys.KindVtxProp)
	if omega {
		m.ConfigureGraph(
			[]scratchpad.MonitorRegister{m.MonitorFor(r)}, perfN,
			pisc.StandardMicrocode("add", pisc.OpFPAdd, false, false))
	}
	return m, r
}

// warmAccess drives every access variant across the working set so
// caches, the directory table, and per-core buffers reach steady state.
func warmAccess(m *Machine, r *Region) {
	for pass := 0; pass < 4; pass++ {
		m.Sequential(func(ctx *Ctx) {
			for i := 0; i < perfN; i++ {
				ctx.Read(r, i)
				ctx.Write(r, i)
				ctx.Atomic(r, i)
				ctx.ReadSrc(r, i)
			}
		})
	}
}

func benchAccess(b *testing.B, omega bool, op func(*Ctx, *Region, int)) {
	m, r := perfMachine(omega)
	warmAccess(m, r)
	i := 0
	body := func(ctx *Ctx) {
		op(ctx, r, i&(perfN-1))
		i++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Sequential(body)
	}
}

// BenchmarkAccessPath measures one simulated access end to end (issue,
// hierarchy walk, level accounting) on both machines.
func BenchmarkAccessPath(b *testing.B) {
	for _, mc := range []struct {
		name  string
		omega bool
	}{{"baseline", false}, {"omega", true}} {
		b.Run(mc.name+"/read", func(b *testing.B) {
			benchAccess(b, mc.omega, func(c *Ctx, r *Region, i int) { c.Read(r, i) })
		})
		b.Run(mc.name+"/write", func(b *testing.B) {
			benchAccess(b, mc.omega, func(c *Ctx, r *Region, i int) { c.Write(r, i) })
		})
		b.Run(mc.name+"/atomic", func(b *testing.B) {
			benchAccess(b, mc.omega, func(c *Ctx, r *Region, i int) { c.Atomic(r, i) })
		})
	}
}

const missN = 1 << 14 // lines in the miss working set (1 MB ≫ scaled caches)

// missMachine builds a baseline machine plus a region sized far beyond
// its scaled caches, so a stride-one-line sweep misses at every level.
// KindVtxProp keeps the next-line prefetcher and stream memo out of the
// measurement.
func missMachine() (*Machine, *Region) {
	m, _ := perfMachine(false)
	r := m.Alloc("miss", missN, memsys.LineSize, memsys.KindVtxProp)
	return m, r
}

// BenchmarkMissPath measures the full L1-miss → L2-miss → DRAM fill
// cascade: NoC request, directory acquire, L2 probe, DRAM access, L2 fill
// with eviction handling, and the L1 fill. The working set is ~64× the
// total scaled L2, so after one warm lap every access takes this path.
func BenchmarkMissPath(b *testing.B) {
	m, r := missMachine()
	i := 0
	body := func(ctx *Ctx) {
		ctx.Read(r, i&(missN-1))
		i++
	}
	for k := 0; k < missN; k++ { // warm lap: caches, directory, queues
		m.Sequential(body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Sequential(body)
	}
}

// TestMissPathZeroAlloc pins the miss cascade's allocation contract: once
// warm, a full L1→L2→DRAM miss (including L2 eviction back-invalidation)
// allocates nothing.
func TestMissPathZeroAlloc(t *testing.T) {
	m, r := missMachine()
	i := 0
	body := func(ctx *Ctx) {
		ctx.Read(r, i&(missN-1))
		i++
	}
	for k := 0; k < missN; k++ {
		m.Sequential(body)
	}
	allocs := testing.AllocsPerRun(2000, func() { m.Sequential(body) })
	if allocs != 0 {
		t.Fatalf("steady-state miss path allocates %.1f objects/access, want 0", allocs)
	}
}

// BenchmarkParallelFor measures scheduler overhead per item: an empty
// body isolates the heap-based core selection and chunk accounting.
func BenchmarkParallelFor(b *testing.B) {
	for _, sched := range []struct {
		name    string
		dynamic bool
	}{{"static", false}, {"dynamic", true}} {
		b.Run(sched.name, func(b *testing.B) {
			cfg := Baseline()
			cfg.DynamicSchedule = sched.dynamic
			m := NewMachine(cfg)
			body := func(ctx *Ctx, i int) { ctx.Exec(1) }
			m.ParallelFor(perfN, body) // warm scheduler scratch
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				m.ParallelFor(perfN, body)
			}
			b.ReportMetric(float64(b.N*perfN)/float64(b.Elapsed().Seconds())/1e6,
				"Mitems/s")
		})
	}
}

// TestAccessPathZeroAlloc pins the tentpole contract: once warm, a
// simulated access allocates nothing on either machine, for any op.
func TestAccessPathZeroAlloc(t *testing.T) {
	for _, mc := range []struct {
		name  string
		omega bool
	}{{"baseline", false}, {"omega", true}} {
		t.Run(mc.name, func(t *testing.T) {
			m, r := perfMachine(mc.omega)
			warmAccess(m, r)
			i := 0
			body := func(ctx *Ctx) {
				j := i & (perfN - 1)
				ctx.Read(r, j)
				ctx.Write(r, j)
				ctx.Atomic(r, j)
				ctx.ReadSrc(r, j)
				i++
			}
			allocs := testing.AllocsPerRun(2000, func() { m.Sequential(body) })
			if allocs != 0 {
				t.Fatalf("steady-state access path allocates %.1f objects/iteration, want 0", allocs)
			}
		})
	}
}

// TestAccessPathZeroAllocWithSink pins the observability overhead
// contract: the access path stays allocation-free both with a nil sink
// explicitly attached (the detached fast path is one nil check) and
// with a samples-only sink attached — a plain Sink is not an
// AccessSink, so the per-access hook stays disabled and emission cost
// is confined to iteration boundaries.
func TestAccessPathZeroAllocWithSink(t *testing.T) {
	sinks := []struct {
		name string
		sink obs.Sink
	}{
		{"nil", nil},
		{"samples-only", obs.NewBuffer()},
	}
	for _, mc := range []struct {
		name  string
		omega bool
	}{{"baseline", false}, {"omega", true}} {
		for _, sk := range sinks {
			t.Run(mc.name+"/"+sk.name, func(t *testing.T) {
				m, r := perfMachine(mc.omega)
				m.AttachSink(sk.sink)
				warmAccess(m, r)
				i := 0
				body := func(ctx *Ctx) {
					j := i & (perfN - 1)
					ctx.Read(r, j)
					ctx.Write(r, j)
					ctx.Atomic(r, j)
					ctx.ReadSrc(r, j)
					i++
				}
				allocs := testing.AllocsPerRun(2000, func() { m.Sequential(body) })
				if allocs != 0 {
					t.Fatalf("access path with %s sink allocates %.1f objects/iteration, want 0",
						sk.name, allocs)
				}
			})
		}
	}
}

// TestParallelForZeroAlloc pins the scheduler contract: a warm parallel
// region allocates nothing regardless of schedule.
func TestParallelForZeroAlloc(t *testing.T) {
	for _, sched := range []struct {
		name    string
		dynamic bool
	}{{"static", false}, {"dynamic", true}} {
		t.Run(sched.name, func(t *testing.T) {
			cfg := Baseline()
			cfg.DynamicSchedule = sched.dynamic
			m := NewMachine(cfg)
			body := func(ctx *Ctx, i int) { ctx.Exec(1) }
			m.ParallelFor(perfN, body) // warm scheduler scratch
			allocs := testing.AllocsPerRun(50, func() { m.ParallelFor(perfN, body) })
			if allocs != 0 {
				t.Fatalf("warm ParallelFor allocates %.1f objects/region, want 0", allocs)
			}
		})
	}
}
