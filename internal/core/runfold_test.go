package core

import (
	"fmt"
	"reflect"
	"testing"

	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/obs"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
)

// This file pins the run-fold batching contract of DESIGN.md §11: with
// batching enabled (the default) and disabled (Config.SerialAccess), a
// machine must produce bit-identical stats, level profiles, and metric
// samples for the same access script — across both machine models, with
// and without the line buffer, and under fault injection.

// foldScript drives an adversarial mix through the fold windows: long
// streaming runs (via ReadRun and hand loops), interleaved Exec ticks,
// vtxProp traffic (never folds; on OMEGA it draws fault PRNG), cross-core
// ownership churn, writes and atomics that force flushes mid-stream,
// src reads, an iteration boundary, and a mid-script stats read (a flush
// point that must not disturb subsequent folding).
func foldScript(m *Machine, el, wt, vp *Region) {
	c0 := &Ctx{m: m, core: 0}
	c1 := &Ctx{m: m, core: 1}
	c0.ReadRun(el, 0, 64) // line-granular segments, bulk memo folds
	for i := 0; i < 48; i++ {
		c0.Read(el, i)  // stream A
		c0.Read(wt, i)  // stream B alternating: probe folds when fault-free
		c0.Exec(2)      // Exec must not flush the window
		c0.Read(vp, i % 8) // vtxProp interleaved: flush + per-access path
	}
	c1.Read(el, 3) // other core: flush, window migrates
	c1.ReadRun(wt, 8, 40)
	c0.Write(el, 5) // store invalidates c1's folded line registry entry
	c1.Read(el, 5)  // must re-probe (registry re-validated), not replay
	for i := 0; i < 24; i++ {
		c0.Read(el, 64 + i)
		c0.Atomic(vp, i%16) // non-foldable op: flush each time
	}
	c0.ReadSrcRun(vp, 0, 16) // src reads never fold
	_ = m.Stats()            // mid-script flush point
	c0.ReadRun(el, 100, 200) // folding must resume after the stats read
	m.BeginIteration()
	c0.ReadRun(el, 0, 32) // memo generation bumped; re-probe then fold
	c0.WriteRun(wt, 0, 16)
	m.Barrier()
}

// foldConfig builds one grid point: machine model, line buffer on/off,
// faults off or injecting at aggressive rates, batching on/off.
func foldConfig(omega, lineBuf, faulty, serial bool) Config {
	b, o := ScaledPair(4096, 8, 0.2)
	cfg := b
	if omega {
		cfg = o
	}
	cfg.DisableLineBuffer = !lineBuf
	cfg.SerialAccess = serial
	if faulty {
		cfg.Faults = faults.Config{
			Seed:            7,
			DRAMFlipRate:    0.05,
			DirFlipRate:     0.02,
			NoCDropRate:     0.01,
			SPParityRate:    0.02,
			LineBufFlipRate: 0.01,
		}
	}
	return cfg
}

// runFoldScript executes foldScript on a fresh machine with a metrics
// buffer attached and returns every observable the equivalence check
// compares: final stats, level profile, and the emitted sample stream.
func runFoldScript(cfg Config) (MachineStats, map[string]uint64, map[string]uint64, []obs.MetricSample) {
	m := NewMachine(cfg)
	buf := obs.NewBuffer()
	m.AttachSink(buf) // samples-only sink: batching stays enabled
	el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
	wt := m.Alloc("wt", 4096, 8, memsys.KindNGraphData)
	vp := m.Alloc("vp", 4096, 8, memsys.KindVtxProp)
	if m.HasScratchpads() {
		m.ConfigureGraph(
			[]scratchpad.MonitorRegister{m.MonitorFor(vp)}, 4096,
			pisc.StandardMicrocode("add", pisc.OpFPAdd, false, false))
	}
	foldScript(m, el, wt, vp)
	counts, lats := m.LevelProfile()
	return m.Stats(), counts, lats, buf.Samples()
}

// TestRunFoldEquivalence sweeps the full configuration grid — machine
// model × line buffer × fault injection — and requires the batched and
// serial access paths to be indistinguishable in stats, level profile,
// and metric samples. Fault injection at nonzero rates additionally pins
// the PRNG-stream invariant: folding must not consume or skip a single
// injector draw, or seeded fault campaigns would diverge.
func TestRunFoldEquivalence(t *testing.T) {
	for _, omega := range []bool{false, true} {
		for _, lineBuf := range []bool{true, false} {
			for _, faulty := range []bool{false, true} {
				name := fmt.Sprintf("omega=%v/linebuf=%v/faults=%v", omega, lineBuf, faulty)
				t.Run(name, func(t *testing.T) {
					stB, cntB, latB, smpB := runFoldScript(foldConfig(omega, lineBuf, faulty, false))
					stS, cntS, latS, smpS := runFoldScript(foldConfig(omega, lineBuf, faulty, true))
					if !reflect.DeepEqual(stB, stS) {
						t.Fatalf("stats diverge:\nbatched: %+v\nserial:  %+v", stB, stS)
					}
					if !reflect.DeepEqual(cntB, cntS) {
						t.Fatalf("level counts diverge:\nbatched: %v\nserial:  %v", cntB, cntS)
					}
					if !reflect.DeepEqual(latB, latS) {
						t.Fatalf("level latencies diverge:\nbatched: %v\nserial:  %v", latB, latS)
					}
					if !reflect.DeepEqual(smpB, smpS) {
						t.Fatalf("metric samples diverge: batched %d vs serial %d samples",
							len(smpB), len(smpS))
					}
					if faulty && stB.Faults.Total() == 0 {
						t.Fatal("faulty grid point injected no faults; rates too low to exercise the invariant")
					}
				})
			}
		}
	}
}

// TestReadRunLoopEquivalence pins the tentpole API contract directly:
// ReadRun (and WriteRun/ReadSrcRun) over [base, base+n) is
// indistinguishable from the equivalent per-element loop, including when
// the run starts and ends mid-line and when it spans a flush caused by
// interleaved traffic.
func TestReadRunLoopEquivalence(t *testing.T) {
	script := func(runAPI bool) func(m *Machine, el, wt, vp *Region) {
		return func(m *Machine, el, wt, vp *Region) {
			c := &Ctx{m: m, core: 0}
			emit := func(r *Region, base, n int, read func(*Ctx, *Region, int), run func(*Ctx, *Region, int, int)) {
				if runAPI {
					run(c, r, base, n)
					return
				}
				for i := base; i < base+n; i++ {
					read(c, r, i)
				}
			}
			read := func(c *Ctx, r *Region, i int) { c.Read(r, i) }
			// Misaligned base and length: first/last segments are partial lines.
			emit(el, 3, 61, read, (*Ctx).ReadRun)
			c.Write(el, 40) // flush mid-region before the next run
			emit(el, 30, 50, read, (*Ctx).ReadRun)
			emit(wt, 5, 2, read, (*Ctx).ReadRun) // short run, single line
			emit(vp, 0, 16, func(c *Ctx, r *Region, i int) { c.ReadSrc(r, i) }, (*Ctx).ReadSrcRun)
			emit(wt, 1, 31, func(c *Ctx, r *Region, i int) { c.Write(r, i) }, (*Ctx).WriteRun)
			emit(el, 0, 1, read, (*Ctx).ReadRun)
		}
	}
	for _, omega := range []bool{false, true} {
		t.Run(fmt.Sprintf("omega=%v", omega), func(t *testing.T) {
			run := func(useRun bool) (MachineStats, map[string]uint64) {
				cfg := foldConfig(omega, true, false, false)
				m := NewMachine(cfg)
				el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
				wt := m.Alloc("wt", 4096, 8, memsys.KindNGraphData)
				vp := m.Alloc("vp", 4096, 8, memsys.KindVtxProp)
				if m.HasScratchpads() {
					m.ConfigureGraph(
						[]scratchpad.MonitorRegister{m.MonitorFor(vp)}, 4096,
						pisc.StandardMicrocode("add", pisc.OpFPAdd, false, false))
				}
				script(useRun)(m, el, wt, vp)
				counts, _ := m.LevelProfile()
				return m.Stats(), counts
			}
			stR, cntR := run(true)
			stL, cntL := run(false)
			if !reflect.DeepEqual(stR, stL) {
				t.Fatalf("stats diverge:\nReadRun: %+v\nloop:    %+v", stR, stL)
			}
			if !reflect.DeepEqual(cntR, cntL) {
				t.Fatalf("level counts diverge:\nReadRun: %v\nloop:    %v", cntR, cntL)
			}
		})
	}
}

// TestReadRunBounds pins the documented up-front bounds contract: an
// out-of-range run panics before emitting any access.
func TestReadRunBounds(t *testing.T) {
	m := NewMachine(testBaseline())
	el := m.Alloc("el", 64, 8, memsys.KindEdgeList)
	c := &Ctx{m: m, core: 0}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range ReadRun did not panic")
			}
		}()
		c.ReadRun(el, 60, 8)
	}()
	if got := m.Stats().TotalAccesses(); got != 0 {
		t.Fatalf("out-of-range ReadRun emitted %d accesses before panicking", got)
	}
}

// TestReadRunZeroAlloc pins the zero-allocation contract for the batched
// hot path in steady state, matching TestAccessPathZeroAlloc for the
// per-access path.
func TestReadRunZeroAlloc(t *testing.T) {
	for _, omega := range []bool{false, true} {
		m, _ := perfMachine(omega)
		r := m.Alloc("el", perfN, 8, memsys.KindEdgeList)
		warmAccess(m, r)
		m.Sequential(func(ctx *Ctx) { ctx.ReadRun(r, 0, perfN) })
		if avg := testing.AllocsPerRun(10, func() {
			m.Sequential(func(ctx *Ctx) { ctx.ReadRun(r, 0, perfN) })
		}); avg != 0 {
			t.Errorf("omega=%v: ReadRun allocates %.1f times per %d-element run", omega, avg, perfN)
		}
	}
}

// BenchmarkAccessRun measures the batched streaming-read path against the
// equivalent per-element loop in the same harness: one warm sweep over the
// working set per iteration, reported per simulated access. The run/loop
// gap is the per-access dispatch that line-granular folding amortizes.
func BenchmarkAccessRun(b *testing.B) {
	sweeps := map[string]func(*Ctx, *Region){
		"run": func(ctx *Ctx, r *Region) { ctx.ReadRun(r, 0, perfN) },
		"loop": func(ctx *Ctx, r *Region) {
			for i := 0; i < perfN; i++ {
				ctx.Read(r, i)
			}
		},
	}
	for _, mc := range []struct {
		name  string
		omega bool
	}{{"baseline", false}, {"omega", true}} {
		for _, sw := range []string{"run", "loop"} {
			sweep := sweeps[sw]
			b.Run(mc.name+"/"+sw, func(b *testing.B) {
				m, _ := perfMachine(mc.omega)
				// A streaming-kind region: vtxProp never folds (on OMEGA it
				// routes through the scratchpad monitor), edge lists are the
				// traffic the batched path exists for.
				r := m.Alloc("el", perfN, 8, memsys.KindEdgeList)
				warmAccess(m, r)
				m.Sequential(func(ctx *Ctx) { sweep(ctx, r) })
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					m.Sequential(func(ctx *Ctx) { sweep(ctx, r) })
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*perfN), "ns/access")
			})
		}
	}
}
