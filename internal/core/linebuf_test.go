package core

import (
	"reflect"
	"testing"

	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
)

// armed reports whether core's line-buffer memo for the line of r[i]
// would currently validate (line match + generation match).
func armed(m *Machine, core int, r *Region, i int) bool {
	line := memsys.LineAddr(r.Addr(i))
	_, _, ok := m.cores[core].LineBufLookup(line, m.path.l1[core].Gen()+m.fastEpoch)
	return ok
}

// runSeq replays the same access script on a machine and returns its
// stats plus level profile, for the enabled-vs-disabled equivalence
// checks below.
func runSeq(cfg Config, script func(c0, c1 *Ctx, el, vp *Region)) (MachineStats, map[string]uint64) {
	m := NewMachine(cfg)
	el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
	vp := m.Alloc("vp", 4096, 8, memsys.KindVtxProp)
	c0 := &Ctx{m: m, core: 0}
	c1 := &Ctx{m: m, core: 1}
	script(c0, c1, el, vp)
	counts, _ := m.LevelProfile()
	return m.Stats(), counts
}

// TestLineBufferStatsEquivalence drives an adversarial access script —
// repeated same-line streaming reads, a cross-core write that
// invalidates the buffered line, interleaved vtxProp traffic, and an
// iteration boundary — with the line buffer enabled and disabled. The
// fast path must be invisible: identical stats and level profile.
func TestLineBufferStatsEquivalence(t *testing.T) {
	script := func(c0, c1 *Ctx, el, vp *Region) {
		m := c0.m
		for i := 0; i < 32; i++ {
			c0.Read(el, i%8) // same few lines, repeatedly
		}
		c1.Write(el, 0) // coherence invalidation of core 0's buffered line
		c0.Read(el, 1)  // must re-probe, not replay the stale memo
		for i := 0; i < 16; i++ {
			c0.Read(vp, i) // excluded kind, interleaved
			c0.Read(el, i%4)
		}
		m.BeginIteration()
		c0.Read(el, 0)
		c1.Read(el, 0) // cross-core read of the written line (c2c downgrade)
		c0.Write(el, 2)
		c0.Read(el, 2)
	}
	on := testBaseline()
	off := testBaseline()
	off.DisableLineBuffer = true
	stOn, lvOn := runSeq(on, script)
	stOff, lvOff := runSeq(off, script)
	if !reflect.DeepEqual(stOn, stOff) {
		t.Fatalf("stats diverge with line buffer enabled:\non:  %+v\noff: %+v", stOn, stOff)
	}
	if !reflect.DeepEqual(lvOn, lvOff) {
		t.Fatalf("level profile diverges:\non:  %v\noff: %v", lvOn, lvOff)
	}
	if stOn.Invalidations == 0 {
		t.Fatal("script did not exercise a coherence invalidation")
	}
}

// TestLineBufferCoherenceWrite pins the cross-core write edge against
// the MESI-lite model. The directory counts an invalidation message and
// truncates the sharer list, but it does not physically remove the
// other core's L1 copy — a full probe after the write still hits the
// stale-but-present line (that is why the residency superset mask
// exists). The memo must therefore keep validating: replaying it is
// exactly what the full probe would do. Physical L1 invalidation only
// happens on L2 back-invalidation, covered at the cache level by
// TestInvalidateDropsMemoAndBumpsGen; the composed bit-identity is
// proven by TestLineBufferStatsEquivalence, whose script includes this
// same cross-core write.
func TestLineBufferCoherenceWrite(t *testing.T) {
	m := NewMachine(testBaseline())
	el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
	c0 := &Ctx{m: m, core: 0}
	c1 := &Ctx{m: m, core: 1}
	c0.Read(el, 0)
	if !armed(m, 0, el, 0) {
		t.Fatal("read did not arm the line buffer")
	}
	c1.Write(el, 0)
	if m.Stats().Invalidations == 0 {
		t.Fatal("cross-core write did not raise a directory invalidation")
	}
	// The stale copy is still present in core 0's L1, so the memo must
	// still validate — dropping it here would desynchronize the fast
	// path from the full probe's hit/miss outcome.
	if !armed(m, 0, el, 0) {
		t.Fatal("memo died on a cross-core write; the full probe would still hit the stale L1 copy")
	}
	hitsBefore := m.path.l1[0].Reads.Hits
	c0.Read(el, 0)
	if m.path.l1[0].Reads.Hits != hitsBefore+1 {
		t.Fatal("full-probe semantics changed: post-write read on the stale copy should hit L1")
	}
}

// TestLineBufferIterationAndConfigEpochs checks the machine-level
// conservative invalidations: BeginIteration and ConfigureGraph each
// bump the fast epoch, dropping every core's memo.
func TestLineBufferIterationAndConfigEpochs(t *testing.T) {
	m := NewMachine(testOMEGA())
	el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
	vp := m.Alloc("vp", 4096, 8, memsys.KindVtxProp)
	c0 := &Ctx{m: m, core: 0}

	c0.Read(el, 0)
	if !armed(m, 0, el, 0) {
		t.Fatal("read did not arm the line buffer")
	}
	m.BeginIteration() // scratchpad InvalidateSrcBufs + epoch bump
	if armed(m, 0, el, 0) {
		t.Fatal("memo survived BeginIteration")
	}

	c0.Read(el, 0)
	if !armed(m, 0, el, 0) {
		t.Fatal("re-probe did not re-arm the line buffer")
	}
	m.ConfigureGraph([]scratchpad.MonitorRegister{m.MonitorFor(vp)}, 4096,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	if armed(m, 0, el, 0) {
		t.Fatal("memo survived ConfigureGraph")
	}
}

// TestLineBufferFaultDegrade checks the resilience edge: a scratchpad
// parity trip degrades the vertex to the cache path and must
// conservatively drop the tripping core's memo (via Cache.DropHot).
func TestLineBufferFaultDegrade(t *testing.T) {
	cfg := testOMEGA()
	cfg.Faults = faults.Config{Seed: 1, SPParityRate: 1} // every SP access trips
	m := NewMachine(cfg)
	el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
	vp := m.Alloc("vp", 4096, 8, memsys.KindVtxProp)
	resident := m.ConfigureGraph([]scratchpad.MonitorRegister{m.MonitorFor(vp)}, 4096,
		pisc.StandardMicrocode("t", pisc.OpFPAdd, false, false))
	if resident < 1 {
		t.Fatal("no scratchpad-resident vertices")
	}
	c0 := &Ctx{m: m, core: 0}
	c0.Read(el, 0)
	if !armed(m, 0, el, 0) {
		t.Fatal("read did not arm the line buffer")
	}
	c0.Read(vp, 0) // resident vertex, parity trips, degrade path runs
	if m.Stats().SPDegraded == 0 {
		t.Fatal("parity trip did not degrade the vertex")
	}
	if armed(m, 0, el, 0) {
		t.Fatal("memo survived a fault degrade on the same core")
	}
}

// TestLineBufferMachineReset checks that Reset disarms the per-core
// buffers and that a pre-Reset memo can never validate afterwards (the
// cache generation is monotonic across Reset).
func TestLineBufferMachineReset(t *testing.T) {
	m := NewMachine(testBaseline())
	el := m.Alloc("el", 4096, 8, memsys.KindEdgeList)
	c0 := &Ctx{m: m, core: 0}
	c0.Read(el, 0)
	if !armed(m, 0, el, 0) {
		t.Fatal("read did not arm the line buffer")
	}
	genBefore := m.path.l1[0].Gen() + m.fastEpoch
	m.Reset()
	if armed(m, 0, el, 0) {
		t.Fatal("memo survived Machine.Reset")
	}
	if m.path.l1[0].Gen()+m.fastEpoch <= genBefore {
		t.Fatal("generation did not advance across Reset; stale memos could validate")
	}
}
