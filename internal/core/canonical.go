package core

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// CanonicalKey renders the configuration as a deterministic,
// self-describing string suitable as (part of) a cache key: equal
// configurations produce equal strings, and any field difference —
// including nested cpu/DRAM/fault configuration and the fault seed —
// produces different strings. The encoding walks struct fields in
// declaration order and writes name=value pairs, so it needs no schema
// version: adding a field to Config changes every key, which safely
// invalidates nothing (keys are process-lifetime only).
//
// Only scalar field kinds (bool, integers, floats, strings) and nested
// structs of scalars are encodable. A pointer, slice, map, func, or
// interface field would make two configs compare equal while behaving
// differently, so CanonicalKey panics on such kinds — the test suite
// runs it against every stock config to keep Config canonicalizable as
// it grows.
func (c Config) CanonicalKey() string {
	var b strings.Builder
	b.Grow(1 << 10)
	canonicalValue(&b, reflect.ValueOf(c))
	return b.String()
}

// canonicalValue appends one value's canonical encoding.
func canonicalValue(b *strings.Builder, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		b.WriteByte('{')
		for i := 0; i < v.NumField(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(t.Field(i).Name)
			b.WriteByte('=')
			canonicalValue(b, v.Field(i))
		}
		b.WriteByte('}')
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		// 'g'/-1 is the shortest representation that round-trips, so two
		// equal floats always encode identically.
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
	default:
		panic(fmt.Sprintf(
			"core: %s field of kind %s is not canonicalizable — Config must stay a pure value type",
			v.Type(), v.Kind()))
	}
}
