package core

import (
	"context"
	"fmt"
)

// Cancelled is the panic value the Machine's run loops unwind with when an
// attached context is cancelled (AttachContext). A cooperative cancel is
// not a simulator bug: harnesses recover it (IsCancelled) and report the
// run as cancelled rather than crashed.
type Cancelled struct {
	// Err is the context's error at the moment the cancel was observed
	// (context.Canceled or context.DeadlineExceeded).
	Err error
}

// Error makes *Cancelled an error, so a recovered value formats usefully.
func (c *Cancelled) Error() string {
	return fmt.Sprintf("simulation cancelled: %v", c.Err)
}

// Unwrap exposes the underlying context error to errors.Is.
func (c *Cancelled) Unwrap() error { return c.Err }

// IsCancelled reports whether a recovered panic value is a cooperative
// cancellation raised by a Machine run loop.
func IsCancelled(r any) bool {
	_, ok := r.(*Cancelled)
	return ok
}

// cancelCheckMask throttles cancellation polls: the scheduling loop checks
// the context once every cancelCheckMask+1 items, keeping the hot path
// free of channel operations while still bounding cancel latency to a few
// thousand simulated accesses.
const cancelCheckMask = 1023

// AttachContext arms cooperative cancellation: once ctx is done, the
// machine's run loops (ParallelForGrain, Sequential, BeginIteration) panic
// with *Cancelled instead of running the simulation to completion, so a
// watchdog or SIGINT actually stops in-flight work rather than abandoning
// the goroutine driving it. nil (or a context that is never cancelled)
// leaves the loops check-free in effect; the polls themselves never touch
// simulation state or fault-PRNG streams, so attaching a context keeps
// results bit-identical.
func (m *Machine) AttachContext(ctx context.Context) {
	if ctx == nil {
		m.ctx, m.ctxDone = nil, nil
		return
	}
	m.ctx = ctx
	m.ctxDone = ctx.Done()
}

// checkCancel is the throttled poll used on the per-item hot path.
func (m *Machine) checkCancel() {
	if m.ctxDone == nil {
		return
	}
	if m.cancelTick++; m.cancelTick&cancelCheckMask != 0 {
		return
	}
	m.pollCancel()
}

// checkCancelNow polls unconditionally; region and iteration boundaries
// use it so cancellation is observed even by loops too short to trip the
// throttled counter.
func (m *Machine) checkCancelNow() {
	if m.ctxDone == nil {
		return
	}
	m.pollCancel()
}

func (m *Machine) pollCancel() {
	select {
	case <-m.ctxDone:
		panic(&Cancelled{Err: m.ctx.Err()})
	default:
	}
}
