package core

import (
	"context"
	"fmt"

	"omega/internal/cpu"
	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/memsys/dram"
	"omega/internal/memsys/noc"
	"omega/internal/obs"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
	"omega/internal/stats"
)

// Machine is one simulated system (baseline CMP or OMEGA) together with
// the execution-driven scheduler the framework runs on. A Machine is
// single-threaded by design: the simulation is deterministic event
// scheduling, not host parallelism.
//
// Distinct Machines are fully independent: every piece of mutable
// simulation state — cores, caches, the coherence directory, DRAM and
// NoC queues, fault-injector PRNG streams, the ParallelForGrain sched
// scratch, and the stats counters read by ElapsedCycles/Stats — is
// owned by the Machine value, and the core packages hold no package-
// level mutable state. Concurrent goroutines may therefore each drive
// their own Machine (the experiment harness fans machine variants out
// this way), sharing only immutable inputs such as a built
// *graph.Graph.
type Machine struct {
	cfg    Config
	cores  []*cpu.Core
	xbar   *noc.Crossbar
	mem    *dram.DRAM
	path   *cachePath
	hier   memsys.Hierarchy
	omega  *omegaHier       // nil on the baseline machine
	faults *faults.Injector // nil when injection is disabled

	nextAddr memsys.Addr
	regions  []*Region

	// pendingALU holds the XOR mask of an injected PISC ALU transient for
	// the atomic op most recently offloaded; the framework's functional
	// update consumes it via Ctx.TakeALUFault. Zero when no fault is
	// pending (the overwhelmingly common case).
	pendingALU uint64

	// ctx/ctxDone implement cooperative cancellation (AttachContext): the
	// run loops poll ctxDone every cancelCheckMask+1 scheduled items and
	// unwind with a *Cancelled panic when it closes. cancelTick is the
	// poll counter; none of this perturbs simulation state or RNG draws.
	ctx        context.Context
	ctxDone    <-chan struct{}
	cancelTick uint64

	// digests, when enabled (EnableIterationDigests), records a StateDigest
	// per BeginIteration — the checkpointed-recovery engine uses the trail
	// to locate the first diverging iteration of a faulty run.
	digests   []uint64
	digestsOn bool

	accessesByKind [memsys.NumKinds]stats.Counter
	atomicsIssued  stats.Counter
	srcReads       stats.Counter
	vertexProfile  []uint64
	iterations     stats.Counter

	// levelCount/levelLatency break accesses down by the hierarchy level
	// that served them (diagnostics and the Figure 3/15 analyses). They
	// are dense arrays indexed by (level, atomic-op bit) — see levelIndex —
	// so the per-access bookkeeping is branch-light and allocation-free;
	// LevelProfile materializes the string-keyed view on demand.
	levelCount   [2 * memsys.NumLevels]uint64
	levelLatency [2 * memsys.NumLevels]uint64

	// fastEpoch is the machine half of the line-buffer generation: the
	// per-core fast path validates its memo against l1.Gen()+fastEpoch,
	// so bumping fastEpoch invalidates every core's line buffer at once.
	// It advances on machine-level events the caches cannot see —
	// BeginIteration and ConfigureGraph — as a conservative guard on top
	// of the caches' own precise generations.
	fastEpoch uint64

	// fold is the run-fold batching state (runfold.go): deferred bulk
	// accounting for runs of same-line streaming reads. foldEnabled and
	// probeFold are the derived enables, recomputed whenever configuration
	// or attached machinery changes (recomputeFold).
	fold        runFold
	foldEnabled bool
	probeFold   bool

	// sched is the ParallelForGrain scratch state (chunk cursors, per-core
	// contexts, the clock-ordered core heap), reused across parallel
	// regions so scheduling allocates nothing in steady state.
	sched schedState
	// seqCtx is the reusable core-0 context handed to Sequential bodies.
	seqCtx Ctx

	// lbHits/lbStores count line-buffer fast-path memo hits and arms;
	// parRegions/seqRegions/schedItems count scheduler activity. All are
	// observability-only: nothing in the simulation reads them back.
	lbHits     stats.Counter
	lbStores   stats.Counter
	parRegions stats.Counter
	seqRegions stats.Counter
	schedItems stats.Counter

	// reg is the machine's metric registry: read-only closures over the
	// counters above and every component's, built once at construction.
	reg *obs.Registry
	// sink is the attached telemetry sink; accSink/spanSink cache the
	// optional extension interfaces, resolved once at AttachSink so the
	// per-access hot path pays one nil check, never a type assertion.
	sink     obs.Sink
	accSink  obs.AccessSink
	spanSink obs.SpanSink
	// finalEmitted guards the end-of-run registry flush in Stats() so
	// repeated snapshots emit the final samples once.
	finalEmitted bool
}

// schedState is the reusable scratch of ParallelForGrain. busy guards
// against a body re-entering ParallelFor: the rare nested region falls
// back to fresh state instead of corrupting the outer one.
type schedState struct {
	nextChunk   []int
	itemInChunk []int
	ctxs        []Ctx
	startClock  []memsys.Cycles // span-sink scratch: per-core region entry clocks
	heap        coreHeap
	busy        bool
}

// levelIndex flattens (level, atomic?) into the profile array index.
func levelIndex(l memsys.Level, atomic bool) int {
	if atomic {
		return int(l) + int(memsys.NumLevels)
	}
	return int(l)
}

// NewMachine builds a machine from cfg. It panics on an invalid
// configuration (configurations are static experiment inputs); callers
// that take configurations from external input (flags, files) should use
// NewMachineChecked instead.
func NewMachine(cfg Config) *Machine {
	m, err := NewMachineChecked(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewMachineChecked is NewMachine returning the validation error instead
// of panicking, for callers assembling configurations from user input.
func NewMachineChecked(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		nextAddr: pageSize,
	}
	m.xbar = noc.New(noc.Config{
		Ports:          cfg.NumCores,
		BaseLatency:    cfg.NoCBaseLatency,
		BusBytes:       cfg.NoCBusBytes,
		CtrlBytes:      8,
		MaxQueueCycles: 64,
	})
	dramCfg := cfg.DRAM
	dramCfg.Hybrid = cfg.HybridPagePolicy
	m.mem = dram.New(dramCfg)
	if cfg.Faults.Enabled() {
		m.faults = faults.New(cfg.Faults)
		m.mem.AttachFaults(m.faults)
		m.xbar.AttachFaults(m.faults)
	}
	m.path = newCachePath(cfg, m.xbar, m.mem)
	m.path.faults = m.faults
	for c := 0; c < cfg.NumCores; c++ {
		m.cores = append(m.cores, cpu.New(c, cfg.Core))
	}
	if cfg.SPBytesPerCore > 0 {
		m.omega = newOmegaHier(cfg, m.path, m.xbar, m.faults)
		m.hier = m.omega
	} else {
		m.hier = &baselineHier{m.path}
	}
	m.reg = buildRegistry(m)
	m.recomputeFold()
	return m, nil
}

// AttachSink installs the machine's telemetry sink (nil detaches). The
// base Sink receives per-iteration registry samples at BeginIteration
// boundaries plus one final flush in Stats; a sink additionally
// implementing obs.AccessSink receives every simulated access, and one
// implementing obs.SpanSink receives per-core activity spans from
// parallel/sequential regions. The extension interfaces are resolved
// here, once, so a samples-only sink adds no per-access work and a nil
// sink costs one nil check per hook site.
func (m *Machine) AttachSink(s obs.Sink) {
	m.flushFold()
	m.sink = s
	m.accSink = nil
	m.spanSink = nil
	m.finalEmitted = false
	if s != nil {
		if a, ok := s.(obs.AccessSink); ok {
			m.accSink = a
		}
		if sp, ok := s.(obs.SpanSink); ok {
			m.spanSink = sp
		}
	}
	// An AccessSink must see the expanded per-access stream with true
	// per-access results, so run-fold batching turns itself off while one
	// is attached (and back on when it detaches).
	m.recomputeFold()
}

// SinkAttached reports whether a telemetry sink is attached.
func (m *Machine) SinkAttached() bool { return m.sink != nil }

// Metrics returns the machine's metric registry: the live, read-only
// view over every component's counters that samples are emitted from
// and MachineStats is derived through. Any open fold window is flushed
// first so the registry's view is complete.
func (m *Machine) Metrics() *obs.Registry {
	m.flushFold()
	return m.reg
}

// FaultEvents snapshots the injected-fault log (zero when injection is
// disabled).
func (m *Machine) FaultEvents() faults.Events { return m.faults.Events() }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return m.cfg.NumCores }

// HasScratchpads reports whether this is an OMEGA-style machine.
func (m *Machine) HasScratchpads() bool { return m.omega != nil }

// MonitorFor builds the scratchpad monitor register describing a vtxProp
// region (the configuration the translated framework writes at startup,
// §V.F).
func (m *Machine) MonitorFor(r *Region) scratchpad.MonitorRegister {
	return scratchpad.MonitorRegister{
		StartAddr: r.Base,
		TypeSize:  uint8(r.ElemSize),
		Stride:    uint32(r.ElemSize),
		Count:     uint32(r.Count),
	}
}

// ConfigureGraph loads the scratchpad monitor registers and PISC microcode
// for the running algorithm and returns how many of the hottest vertices
// are scratchpad-resident (0 on the baseline machine). The framework calls
// this once per run, before the algorithm starts.
func (m *Machine) ConfigureGraph(monitors []scratchpad.MonitorRegister, totalVertices int, mc pisc.Microcode) int {
	m.flushFold()
	m.fastEpoch++
	if m.omega == nil {
		if m.cfg.LockedLines {
			return m.lockHotLines(monitors, totalVertices)
		}
		return 0
	}
	if cap := m.cfg.SPResidentCap; cap > 0 && cap < totalVertices {
		totalVertices = cap
	}
	return m.omega.configure(monitors, totalVertices, mc)
}

// lockHotLines pins the vtxProp lines of the hottest vertices into their
// home L2 banks (§IX's locked-cache alternative). It returns how many
// vertices were fully pinned. The pin budget mirrors OMEGA's hot set: 20%
// of the vertices (or SPResidentCap), bounded by set-conflict limits —
// every set must keep a replaceable way.
func (m *Machine) lockHotLines(monitors []scratchpad.MonitorRegister, totalVertices int) int {
	limit := totalVertices / 5
	if m.cfg.SPResidentCap > 0 && m.cfg.SPResidentCap < limit {
		limit = m.cfg.SPResidentCap
	}
	if limit < 1 {
		limit = 1
	}
	pinnedVertices := 0
	for v := 0; v < limit; v++ {
		ok := true
		for _, mon := range monitors {
			if uint32(v) >= mon.Count {
				continue
			}
			addr := mon.StartAddr + memsys.Addr(uint64(v)*uint64(mon.Stride))
			line := memsys.LineAddr(addr)
			bank := m.path.homeBank(line)
			if !m.path.l2[bank].Pin(m.path.l2Local(line)) {
				ok = false
			}
		}
		if ok {
			pinnedVertices++
		}
	}
	return pinnedVertices
}

// EnableVertexProfile starts counting vtxProp accesses per vertex
// (Figures 4(b) and 5).
func (m *Machine) EnableVertexProfile(numVertices int) {
	m.vertexProfile = make([]uint64, numVertices)
}

// VertexProfile returns the per-vertex vtxProp access counts, or nil.
func (m *Machine) VertexProfile() []uint64 { return m.vertexProfile }

// BeginIteration marks an algorithm iteration boundary. It also bumps the
// line-buffer epoch: iteration boundaries change iteration-scoped state
// (source vertex buffers), so every core's fast-path memo is dropped.
//
// With a sink attached, the boundary closes the previous iteration by
// emitting every registered metric (cumulative values; a frontier gauge
// set by the framework just before the call is attributed to the
// iteration that produced it). Emission is a pure read of live counters
// — it cannot perturb simulation state.
func (m *Machine) BeginIteration() {
	m.checkCancelNow()
	m.flushFold()
	if m.sink != nil {
		if n := m.iterations.Value(); n > 0 {
			m.reg.Emit(m.sink, m.cfg.Name, n)
		}
	}
	m.finalEmitted = false
	m.iterations.Inc()
	m.fastEpoch++
	m.hier.BeginIteration()
	if m.digestsOn {
		m.digests = append(m.digests, m.StateDigest())
	}
}

// ElapsedCycles returns the max core clock — the simulated execution time.
// Any open fold window is flushed first so deferred cycles are visible.
func (m *Machine) ElapsedCycles() memsys.Cycles {
	m.flushFold()
	var mx memsys.Cycles
	for _, c := range m.cores {
		if c.Clock() > mx {
			mx = c.Clock()
		}
	}
	return mx
}

// Ctx is the handle a framework closure uses to emit simulated work for
// one core.
type Ctx struct {
	m    *Machine
	core int
}

// Core returns the simulated core ID.
func (c *Ctx) Core() int { return c.core }

// Exec retires ops ALU/branch instructions on this core.
func (c *Ctx) Exec(ops int) { c.m.cores[c.core].Exec(ops) }

func (c *Ctx) access(r *Region, i int, op memsys.Op, srcRead, dependent bool) {
	if m := c.m; m.fold.active {
		// A fold window is open. An eligible read (plain, non-src,
		// streaming kind, same core) may defer into it; anything else —
		// and any read tryFold cannot prove replayable — flushes the
		// deferred accounting before simulating, so every real access
		// observes fully settled clocks, LRU state, and counters.
		if op == memsys.OpRead && !srcRead && r.Kind != memsys.KindVtxProp && c.core == m.fold.core {
			if m.tryFold(r, i) {
				return
			}
		}
		m.flushFold()
	}
	a := memsys.Access{
		Core:      c.core,
		Addr:      r.Addr(i),
		Size:      uint8(r.ElemSize),
		Op:        op,
		Kind:      r.Kind,
		SrcRead:   srcRead,
		Dependent: dependent,
	}
	if r.Kind == memsys.KindVtxProp {
		a.Vertex = uint32(i)
		if c.m.vertexProfile != nil && i < len(c.m.vertexProfile) {
			c.m.vertexProfile[i]++
		}
	}
	c.m.accessesByKind[r.Kind].Inc()
	if op == memsys.OpAtomic {
		c.m.atomicsIssued.Inc()
	}
	if srcRead {
		c.m.srcReads.Inc()
	}
	core := c.m.cores[c.core]
	var res memsys.Result
	if op == memsys.OpRead && r.Kind != memsys.KindVtxProp && !c.m.cfg.DisableLineBuffer {
		res = c.m.fastRead(core, a)
	} else {
		res = c.m.hier.Access(core.Clock(), a)
	}
	if op == memsys.OpAtomic && res.Level == memsys.LevelPISC && c.m.faults != nil {
		if mask, ok := c.m.faults.ALUFlip(); ok {
			// Transient in the PISC ALU datapath: latch the XOR mask for the
			// framework's functional update (Ctx.TakeALUFault), corrupting
			// the computed value the way a real single-event upset would.
			c.m.pendingALU = mask
		}
	}
	if c.m.accSink != nil {
		c.m.accSink.Access(core.Clock(), a, res)
	}
	li := levelIndex(res.Level, op == memsys.OpAtomic)
	c.m.levelCount[li]++
	c.m.levelLatency[li] += uint64(res.Latency)
	core.Mem(res)
}

// fastRead serves a non-atomic, non-vtxProp read, short-circuiting through
// the core's one-entry line buffer when it provably hits the line of the
// core's most recent L1 read hit.
//
// Bit-identity argument: the fast path applies only to plain reads of the
// streaming kinds (edgeList, nGraphData, activeList), which on both
// hierarchies flow straight to the cache path — vtxProp is excluded
// because OMEGA routes it through the scratchpad monitor, where residency
// is per-vertex (two vertices in one 64 B line can differ) and resident
// accesses consume fault-PRNG draws. A cache-path L1 read hit has exactly
// three side effects — use-clock tick, LRU touch, read-hit counter — and a
// constant result {l1HitLat, Dependent, LevelL1}; it touches no directory,
// NoC, DRAM, or fault state. Cache.SameLineReadHit replays those three
// effects exactly, and only when the memoized line is provably the line a
// full probe would hit (the memo dies on any eviction/invalidation of that
// line). The generation check (l1.Gen() + fastEpoch) additionally drops
// every memo on machine-level events: BeginIteration, ConfigureGraph, and
// fault degrades (via Cache.DropHot).
func (m *Machine) fastRead(core *cpu.Core, a memsys.Access) memsys.Result {
	l1 := m.path.l1[a.Core]
	line := memsys.LineAddr(a.Addr)
	gen := l1.Gen() + m.fastEpoch
	if lat, level, ok := core.LineBufLookup(line, gen); ok && l1.SameLineReadHit(line) {
		m.lbHits.Inc()
		// Open a fold window (runfold.go): the next same-line read would
		// replay this exact memo hit, so it can defer instead. The latency
		// and level guards exclude a corrupted memo replaying under
		// DisableLineBufGenCheck — folds must only ever stand in for clean
		// L1 hits.
		if m.foldEnabled && lat == l1.Latency() && level == memsys.LevelL1 {
			if way := l1.HotWay(line); way >= 0 {
				m.openFold(a.Core, line, way, a.Kind)
			}
		}
		return memsys.Result{Latency: lat, Blocking: a.Dependent, Level: level}
	}
	if m.faults != nil && core.LineBufCaught(line) {
		// A corrupted memo for this line just failed the generation check:
		// the detection worked, the stale entry is discarded, and the read
		// below takes the full (bit-identical) probe.
		m.faults.NoteLineBufGenCatch()
	}
	res := m.hier.Access(core.Clock(), a)
	// Arm the buffer for the next same-line read, whether this one hit
	// (the probe seeded the cache memo) or missed (the fill did, via
	// FillStream). The stored timing is what a future same-line read
	// returns: an L1 hit at the L1's hit latency — not this access's own
	// result. If the line is in fact absent (fill rejected by a fully
	// pinned set), the memo was not seeded and SameLineReadHit refuses,
	// so a stale arm costs a lookup, never correctness. The generation is
	// re-read after the probe: its fills may have advanced it.
	core.LineBufStore(line, l1.Gen()+m.fastEpoch, l1.Latency(), memsys.LevelL1)
	m.lbStores.Inc()
	corrupted := false
	if m.faults != nil {
		if bitSel, ok := m.faults.LineBufFlip(); ok {
			// Transient in the just-armed memo: flip a latency bit above the
			// core's pipelining threshold so a silent replay is timing-
			// visible. With the generation check on, the corruption also
			// scrambles the tag, so the next lookup misses and the catch is
			// counted above; with the check off the stale memo replays.
			core.CorruptLineBuf(bitSel, !m.cfg.DisableLineBufGenCheck)
			corrupted = true
		}
	}
	// Open a fold window (runfold.go) for the just-armed memo — after a
	// hit or a successful streaming fill alike, the next same-line read
	// would be a memo hit. A rejected fill (fully pinned set) leaves the
	// cache hot memo elsewhere and HotWay refuses, exactly as
	// SameLineReadHit would; a just-corrupted memo must not seed folds.
	if m.foldEnabled && !corrupted {
		if way := l1.HotWay(line); way >= 0 {
			m.openFold(a.Core, line, way, a.Kind)
		}
	}
	return res
}

// LevelProfile returns per-level access counts and summed latencies, keyed
// by the level name ("L1", "SP-local", ...) with atomics reported
// separately under an "atomic:" prefix ("atomic:PISC", ...). The maps are
// materialized here from the dense per-level arrays the access path
// maintains; only levels that served at least one access appear.
//
// Deprecated-ish: prefer the observability layer for new code — the same
// numbers stream through AttachSink as machine/level_count and
// machine/level_latency samples, per iteration and with the rest of the
// registry (see Metrics). LevelProfile remains for end-of-run spot
// checks and existing tests.
func (m *Machine) LevelProfile() (counts, latencies map[string]uint64) {
	m.flushFold()
	counts = make(map[string]uint64, len(m.levelCount))
	latencies = make(map[string]uint64, len(m.levelLatency))
	for l := memsys.Level(0); l < memsys.NumLevels; l++ {
		for _, atomic := range [2]bool{false, true} {
			i := levelIndex(l, atomic)
			if m.levelCount[i] == 0 {
				continue
			}
			name := l.String()
			if atomic {
				name = "atomic:" + name
			}
			counts[name] = m.levelCount[i]
			latencies[name] = m.levelLatency[i]
		}
	}
	return
}

// TakeALUFault returns the XOR mask of an injected PISC ALU transient
// latched by this context's most recent Atomic, clearing it, or zero when
// the op executed cleanly. The framework applies the mask to the
// functionally computed value, making the corruption visible in algorithm
// outputs (and therefore recoverable only by re-execution).
func (c *Ctx) TakeALUFault() uint64 {
	mask := c.m.pendingALU
	c.m.pendingALU = 0
	return mask
}

// Read emits a plain load of element i of region r.
func (c *Ctx) Read(r *Region, i int) { c.access(r, i, memsys.OpRead, false, false) }

// ReadDependent emits a load the core must stall for.
func (c *Ctx) ReadDependent(r *Region, i int) { c.access(r, i, memsys.OpRead, false, true) }

// ReadSrc emits a source-vertex property read (served by OMEGA's source
// vertex buffer when possible). Source reads from different edges are
// independent, so the out-of-order window overlaps them like any other
// load.
func (c *Ctx) ReadSrc(r *Region, i int) { c.access(r, i, memsys.OpRead, true, false) }

// Write emits a plain store.
func (c *Ctx) Write(r *Region, i int) { c.access(r, i, memsys.OpWrite, false, false) }

// Atomic emits an atomic read-modify-write. Under the AtomicsAsPlain
// ablation (§III) it degrades to a plain load + store pair: independent
// read-modify-writes overlap in the out-of-order window once the fence
// semantics are gone.
func (c *Ctx) Atomic(r *Region, i int) {
	if c.m.cfg.AtomicsAsPlain {
		c.access(r, i, memsys.OpRead, false, false)
		c.access(r, i, memsys.OpWrite, false, false)
		return
	}
	c.access(r, i, memsys.OpAtomic, false, false)
}

// ParallelFor schedules body(i) for i in [0,n) over all cores using
// OpenMP-style static chunking with the machine's configured chunk size,
// and ends with a barrier. Cores are interleaved by local clock so shared
// resources see a realistic arrival order.
func (m *Machine) ParallelFor(n int, body func(ctx *Ctx, i int)) {
	m.ParallelForGrain(n, m.cfg.OpenMPChunk, body)
}

// ParallelForGrain is ParallelFor with an explicit chunk size.
//
// Scheduling interleaves at item granularity: the lowest-clock core with
// work runs one item, which keeps core clocks tightly coupled so
// shared-resource (DRAM/NoC) arrival order stays realistic. Core selection
// uses a (clock, id)-ordered indexed min-heap — O(log p) per item instead
// of an O(p) scan — and chunks are claimed eagerly the moment a core goes
// idle. Both transformations preserve the exact item interleaving of the
// original per-item scan: the heap minimum equals the scan's
// lowest-clock/lowest-id pick, and at most one core goes idle per item, so
// the eager claim hands out the same chunk the next scan would have.
func (m *Machine) ParallelForGrain(n, chunk int, body func(ctx *Ctx, i int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	p := m.cfg.NumCores
	numChunks := (n + chunk - 1) / chunk
	s := m.acquireSched(p)
	defer m.releaseSched(s)
	m.parRegions.Inc()
	m.schedItems.Add(uint64(n))
	spans := m.spanSink != nil
	if spans {
		for c := 0; c < p; c++ {
			s.startClock[c] = m.cores[c].Clock()
		}
	}

	// nextChunk[c] is the next chunk index owned by core c: OpenMP
	// schedule(static, chunk) hands core c chunks c, c+p, c+2p, ...;
	// dynamic scheduling takes chunks from a shared counter when a core
	// goes idle (Ligra-style work stealing).
	dynNext := 0
	for c := 0; c < p; c++ {
		s.itemInChunk[c] = 0
		if c >= numChunks {
			continue
		}
		s.nextChunk[c] = c
		s.heap.push(c)
	}
	if m.cfg.DynamicSchedule {
		dynNext = min(p, numChunks)
	}
	for !s.heap.empty() {
		m.checkCancel()
		sel := s.heap.min()
		k := s.nextChunk[sel]
		i := k*chunk + s.itemInChunk[sel]
		if i < n {
			body(&s.ctxs[sel], i)
			// Item boundary: settle any fold window the body opened before
			// the heap re-seats the core by its clock (deferred cycles must
			// be visible) and before another core runs.
			m.flushFold()
		}
		s.itemInChunk[sel]++
		if s.itemInChunk[sel] >= chunk || i+1 >= n {
			s.itemInChunk[sel] = 0
			next := numChunks
			if m.cfg.DynamicSchedule {
				if dynNext < numChunks {
					next = dynNext
					dynNext++
				}
			} else {
				next = k + p
			}
			if next >= numChunks {
				s.heap.pop()
				continue
			}
			s.nextChunk[sel] = next
		}
		// Only the selected core's clock advanced; re-seat it.
		s.heap.fixMin()
	}
	if spans {
		// Emit one span per core that did work, with clocks read before the
		// barrier aligns them (the idle tail is the interesting signal).
		for c := 0; c < p; c++ {
			end := m.cores[c].Clock()
			if end == s.startClock[c] {
				continue
			}
			m.spanSink.Span(obs.Span{
				Machine: m.cfg.Name, Core: c, Name: "parallel",
				Start: s.startClock[c], End: end,
			})
		}
	}
	m.Barrier()
}

// acquireSched hands out the machine's scheduling scratch, sized for p
// cores, or fresh state if a nested parallel region already holds it.
// The scratch is per-Machine state, never pooled across machines, so
// variant goroutines each driving their own Machine cannot share one;
// busy is only ever touched by the single goroutine driving this
// Machine (it guards re-entrancy, not concurrency).
func (m *Machine) acquireSched(p int) *schedState {
	s := &m.sched
	if s.busy {
		s = &schedState{}
	}
	s.busy = true
	if cap(s.nextChunk) < p {
		s.nextChunk = make([]int, p)
		s.itemInChunk = make([]int, p)
		s.ctxs = make([]Ctx, p)
		s.startClock = make([]memsys.Cycles, p)
		for c := range s.ctxs {
			s.ctxs[c] = Ctx{m: m, core: c}
		}
	}
	s.nextChunk = s.nextChunk[:p]
	s.itemInChunk = s.itemInChunk[:p]
	s.ctxs = s.ctxs[:p]
	s.startClock = s.startClock[:p]
	s.heap.reset(m.cores)
	return s
}

func (m *Machine) releaseSched(s *schedState) { s.busy = false }

// Sequential runs body on core 0 (the paper's framework executes
// inter-region glue on one thread), then synchronizes all cores.
func (m *Machine) Sequential(body func(ctx *Ctx)) {
	m.checkCancelNow()
	m.seqRegions.Inc()
	start := m.cores[0].Clock()
	m.seqCtx = Ctx{m: m, core: 0}
	body(&m.seqCtx)
	m.flushFold()
	if m.spanSink != nil {
		if end := m.cores[0].Clock(); end != start {
			m.spanSink.Span(obs.Span{
				Machine: m.cfg.Name, Core: 0, Name: "sequential",
				Start: start, End: end,
			})
		}
	}
	m.Barrier()
}

// Barrier drains every core's outstanding-miss window and aligns all
// clocks to the maximum (bulk-synchronous region end).
func (m *Machine) Barrier() {
	m.flushFold()
	var mx memsys.Cycles
	for _, c := range m.cores {
		c.DrainWindow()
		if c.Clock() > mx {
			mx = c.Clock()
		}
	}
	for _, c := range m.cores {
		c.SetClock(mx)
	}
}

// String describes the machine briefly.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d cores, L2 %d KB/core, SP %d KB/core, PISC=%v",
		m.cfg.Name, m.cfg.NumCores, m.cfg.L2BytesPerCore>>10,
		m.cfg.SPBytesPerCore>>10, m.cfg.PISC)
}
