package core

import (
	"omega/internal/memsys"
)

// This file implements the batched access stream of DESIGN.md §11: runs of
// same-line streaming reads — the dominant traffic of graph analytics
// (PAPER.md §II) — are folded into deferred per-line bulk accounting
// instead of paying the full per-access dispatch for every edge word.
//
// The contract is bit-identity with the per-access path. A fold is only
// ever taken for a read whose per-access simulation would be a pure L1
// hit with exactly these side effects:
//
//   - cache:   use-clock tick, LRU stamp of the hit way, read-hit count
//   - core:    one retired instruction, one issue cycle, one retiring
//              cycle (Mem's pipelined early return at the L1 hit latency)
//   - machine: accesses-by-kind count, level profile (L1, latency 1),
//              line-buffer hit or store count
//
// All of these are order-independent sums and stamps, so they can be
// deferred: a fold window accumulates counts while the framework's loop
// runs, and flushFold applies them in O(streams) arithmetic before any
// simulated event that could observe or perturb the deferred state (a
// non-foldable access, an item/region boundary, a stats read, a
// checkpoint). Ctx.Exec commutes with the deferred reads — it only adds
// to the same clock/instruction sums — so edge loops interleaving Exec
// with reads (every ligra/graphmat scan) fold without flushing.
//
// Two fold modes exist, mirroring the two per-access L1 hit paths:
//
//   - memo fold: the read targets the line of the window's current
//     (virtual) line-buffer memo. The per-access path would take
//     Machine.fastRead's memo hit — which draws no fault PRNG — so this
//     mode stays enabled under fault injection.
//   - probe fold: the read targets another line of the window's stream
//     registry, still resident in the L1 (validated via Cache.PresentAt).
//     The per-access path would be a full cache-path probe hitting L1 and
//     re-arming the memo. cachePath.Access draws a DirFlip decision per
//     access when an injector is attached, so probe folds require a
//     fault-free machine — the injector's per-access PRNG streams (and
//     with them every fault campaign and ReseedFaults replay) stay
//     undisturbed.
//
// The stream registry persists across flushes so alternating scans (edge
// list + weights, in-edges + frontier bytes) re-fold immediately; every
// entry is re-validated against live cache state at each use, so stale
// entries cost a fallback probe, never correctness.

// maxFoldStreams bounds the per-window stream registry. Hot loops
// interleave at most three streaming arrays (edges + weights + active
// bytes); the fourth slot absorbs offset reads without evicting a live
// stream.
const maxFoldStreams = 4

// foldStream is one registered streaming line: where it was last seen in
// the L1 (way), what it counts as (kind), and this window's deferred
// activity against it.
type foldStream struct {
	line memsys.Addr
	way  int
	kind memsys.Kind
	// count is the number of reads folded against this line in the open
	// window; lastSeq is the window sequence number of the most recent
	// one, from which the flush back-computes the way's final LRU stamp.
	count   uint64
	lastSeq uint64
}

// runFold is a Machine's fold state: at most one window is open at a
// time, owned by one core, and it never spans a scheduling item, region
// boundary, or non-foldable access.
type runFold struct {
	active bool
	core   int
	// cur indexes the stream whose line the window's virtual line-buffer
	// memo holds (the real memo and cache hot-way are re-synchronized at
	// flush when probe folds moved them).
	cur int
	// n is the total deferred read count; memoHits/probeHits split it by
	// replayed path for the lbHits/lbStores counters.
	n         uint64
	memoHits  uint64
	probeHits uint64
	// rearm records that at least one probe fold occurred, so the flush
	// must re-arm the real cache hot memo and core line buffer to the
	// current stream (the state the last replayed probe would have left).
	rearm    bool
	nstreams int
	next     int // round-robin replacement cursor once the registry is full
	streams  [maxFoldStreams]foldStream
}

// recomputeFold derives the fold enables from configuration and attached
// machinery. Folding requires the line buffer (the memo it virtualizes),
// no per-access sink (an AccessSink must observe the expanded stream with
// true per-access results, so batching disables itself and the trace TSV
// bytes are trivially unchanged), and no SerialAccess kill switch. Probe
// folds additionally require a fault-free machine: the cache-path probe
// they replay draws injector PRNG per access.
func (m *Machine) recomputeFold() {
	m.foldEnabled = !m.cfg.DisableLineBuffer && !m.cfg.SerialAccess && m.accSink == nil
	m.probeFold = m.foldEnabled && m.faults == nil
}

// openFold opens a fold window on core for line, just observed armed in
// the line buffer with its L1 way known. Called only with the window
// inactive (every path here flushed first), so overwriting a registry
// slot can never lose deferred counts.
func (m *Machine) openFold(core int, line memsys.Addr, way int, kind memsys.Kind) {
	f := &m.fold
	f.active = true
	f.core = core
	if cs := &f.streams[f.cur]; cs.line == line {
		// Fast path: reopening on the stream the last window left current
		// (the common case when a non-foldable access briefly interrupts a
		// scan). Lines are unique in the registry, so this is the same slot
		// the scan below would find.
		cs.way = way
		cs.kind = kind
		return
	}
	for si := 0; si < f.nstreams; si++ {
		if f.streams[si].line == line {
			f.streams[si].way = way
			f.streams[si].kind = kind
			f.cur = si
			return
		}
	}
	si := f.nstreams
	if si < maxFoldStreams {
		f.nstreams++
	} else {
		si = f.next
		if f.next++; f.next == maxFoldStreams {
			f.next = 0
		}
	}
	f.streams[si] = foldStream{line: line, way: way, kind: kind}
	f.cur = si
}

// tryFold attempts to defer an eligible read (plain, non-src, streaming
// kind, window owner's core — the caller checked) instead of simulating
// it. It returns false without side effects when the read is not provably
// a replayable L1 hit; the caller then flushes and takes the per-access
// path, which re-registers the line.
func (m *Machine) tryFold(r *Region, i int) bool {
	f := &m.fold
	line := memsys.LineAddr(r.Addr(i))
	if cs := &f.streams[f.cur]; line == cs.line {
		// Memo fold: the per-access path would hit the (virtual) line
		// buffer — lookup valid, latency 1, level L1 — and replay the
		// same-line cache hit.
		f.n++
		cs.count++
		cs.lastSeq = f.n
		f.memoHits++
		return true
	}
	if !m.probeFold {
		return false
	}
	for si := 0; si < f.nstreams; si++ {
		s := &f.streams[si]
		if s.line != line {
			continue
		}
		// Probe fold: the per-access path would miss the memo (armed for
		// cur's line), take the full probe, and hit L1 — provable because
		// the registered way still holds the line and nothing in an open
		// window moves cache contents (folds defer only counters/stamps;
		// every content-changing access flushes first).
		if !m.path.l1[f.core].PresentAt(s.way, line) {
			return false
		}
		f.n++
		s.count++
		s.lastSeq = f.n
		f.probeHits++
		f.rearm = true
		f.cur = si
		return true
	}
	return false
}

// flushFold applies the window's deferred accounting and deactivates it.
// The stream registry (lines, ways, kinds) survives for the next window;
// only the deferred counts are consumed. Safe to call any time; a no-op
// when no window is open.
//
// Replay math: with n deferred reads and the pre-flush use clock U0, the
// k-th fold observed virtual use clock U0+k, so after advancing the clock
// by n (FoldReadHits, returning U1 = U0+n) each touched way's final LRU
// stamp is U1-(n-lastSeq). Every deferred read was an L1 hit at latency
// 1 (pipelined), so the core side is n FoldPipelined replays and the
// level profile gains n counts and n cycles under non-atomic L1.
func (m *Machine) flushFold() {
	f := &m.fold
	if !f.active {
		return
	}
	f.active = false
	n := f.n
	if n == 0 {
		return
	}
	l1 := m.path.l1[f.core]
	u1 := l1.FoldReadHits(n)
	for si := 0; si < f.nstreams; si++ {
		s := &f.streams[si]
		if s.count == 0 {
			continue
		}
		l1.SetLastUse(s.way, u1-(n-s.lastSeq))
		m.accessesByKind[s.kind].Add(s.count)
		s.count = 0
		s.lastSeq = 0
	}
	m.cores[f.core].FoldPipelined(n)
	li := levelIndex(memsys.LevelL1, false)
	m.levelCount[li] += n
	m.levelLatency[li] += n // latency 1 per folded hit
	m.lbHits.Add(f.memoHits)
	m.lbStores.Add(f.probeHits)
	if f.rearm {
		// Probe folds virtually re-armed the cache hot memo and the core
		// line buffer; materialize the final arm (the one the last probe
		// would have left). The generation cannot have advanced inside the
		// window — only fills, invalidations, and resets advance it, and
		// all of those flush first — so the stored memo validates exactly
		// as the per-access LineBufStore would have.
		cs := &f.streams[f.cur]
		l1.ArmHot(cs.line, cs.way)
		m.cores[f.core].LineBufStore(cs.line, l1.Gen()+m.fastEpoch, l1.Latency(), memsys.LevelL1)
	}
	f.n, f.memoHits, f.probeHits, f.rearm = 0, 0, 0, false
}

// resetFold discards the fold state entirely — deferred counts and
// registry. Reset and Restore use it: a restored (or cleared) machine's
// state is complete, and deferred reads from the abandoned timeline must
// not leak into it.
func (m *Machine) resetFold() {
	m.fold = runFold{}
}

// ReadRun emits n plain loads of the consecutive elements r[base..base+n),
// equivalent to calling Read once per element in ascending order but
// decomposed into line-granular segments: one per-access hierarchy probe
// establishes each touched line, and the remaining same-line reads fold
// into the open window in O(1) bulk (DESIGN.md §11). Cancellation is
// polled at segment granularity. Bounds are validated up front, so an
// out-of-range run panics before emitting any access (the per-element
// loop would panic at the first bad element instead).
func (c *Ctx) ReadRun(r *Region, base, n int) {
	if n <= 0 {
		return
	}
	_ = r.Addr(base)
	_ = r.Addr(base + n - 1)
	m := c.m
	end := base + n
	elem := memsys.Addr(r.ElemSize)
	for i := base; i < end; {
		m.checkCancel()
		c.Read(r, i)
		i++
		f := &m.fold
		if i >= end || !f.active || f.core != c.core {
			continue
		}
		cs := &f.streams[f.cur]
		addr := r.Base + memsys.Addr(i)*elem
		if memsys.LineAddr(addr) != cs.line {
			continue
		}
		// Elements i.. up to the line boundary are memo folds against the
		// window just established/continued by the read above: same line,
		// same stream, no per-element re-validation needed.
		k := int((uint64(cs.line) + memsys.LineSize - uint64(addr) + uint64(elem) - 1) / uint64(elem))
		if rem := end - i; k > rem {
			k = rem
		}
		f.n += uint64(k)
		cs.count += uint64(k)
		cs.lastSeq = f.n
		f.memoHits += uint64(k)
		i += k
	}
}

// WriteRun emits n plain stores of the consecutive elements
// r[base..base+n), equivalent to calling Write once per element in
// ascending order. Stores are not folded — every store does real
// directory upgrade and dirty-bit work — so this is the per-element loop
// plus up-front bounds validation and periodic cancellation polls.
func (c *Ctx) WriteRun(r *Region, base, n int) {
	if n <= 0 {
		return
	}
	_ = r.Addr(base)
	_ = r.Addr(base + n - 1)
	for i := base; i < base+n; i++ {
		c.m.checkCancel()
		c.Write(r, i)
	}
}

// ReadSrcRun emits n source-vertex property reads of the consecutive
// elements r[base..base+n), equivalent to calling ReadSrc once per
// element in ascending order. Source reads are not folded — on OMEGA each
// consults the per-core source vertex buffer FIFO — so this is the
// per-element loop plus up-front bounds validation and periodic
// cancellation polls.
func (c *Ctx) ReadSrcRun(r *Region, base, n int) {
	if n <= 0 {
		return
	}
	_ = r.Addr(base)
	_ = r.Addr(base + n - 1)
	for i := base; i < base+n; i++ {
		c.m.checkCancel()
		c.ReadSrc(r, i)
	}
}
