package core

import (
	"omega/internal/memsys"
	"omega/internal/memsys/cache"
	"omega/internal/memsys/coherence"
	"omega/internal/memsys/dram"
	"omega/internal/memsys/noc"
	"omega/internal/stats"
)

// cachePath is the conventional coherent cache hierarchy: per-core private
// L1D caches, address-interleaved shared L2 banks reached over the
// crossbar, a MESI-lite directory over the L1s, and DRAM behind the L2.
// It serves as the entire memory system of the baseline machine and as
// the non-scratchpad path of the OMEGA machine.
type cachePath struct {
	cfg  Config
	l1   []*cache.Cache
	l2   []*cache.Cache
	dir  *coherence.Directory
	dram *dram.DRAM
	noc  *noc.Crossbar

	atomics    stats.Counter
	l1HitLat   memsys.Cycles
	dramWrites stats.Counter

	// LLC pollution state (Config.LLCPollution): synthetic fills that
	// model the instruction/OS traffic of a real machine's LLC.
	pollAccum float64
	pollNext  uint64
	Pollution stats.Counter

	// Prefetches counts next-line prefetches issued (Config.L1Prefetch).
	Prefetches stats.Counter
}

func newCachePath(cfg Config, xbar *noc.Crossbar, mem *dram.DRAM) *cachePath {
	p := &cachePath{
		cfg:      cfg,
		dir:      coherence.New(cfg.NumCores),
		dram:     mem,
		noc:      xbar,
		l1HitLat: 1,
	}
	for c := 0; c < cfg.NumCores; c++ {
		p.l1 = append(p.l1, cache.New(cache.Config{
			SizeBytes:     cfg.L1Bytes,
			Ways:          cfg.L1Ways,
			LatencyCycles: p.l1HitLat,
			Name:          "L1D",
		}))
		p.l2 = append(p.l2, cache.New(cache.Config{
			SizeBytes:     cfg.L2BytesPerCore,
			Ways:          cfg.L2Ways,
			LatencyCycles: cfg.L2Lat,
			Name:          "L2",
		}))
	}
	return p
}

// homeBank address-interleaves lines across L2 banks.
func (p *cachePath) homeBank(line memsys.Addr) int {
	return int(uint64(line) / memsys.LineSize % uint64(p.cfg.NumCores))
}

// l2Local strips the bank-interleaving bits from a global line address so
// a bank's set index uses the full set space (without this, every line in
// a bank would map to the same few sets).
func (p *cachePath) l2Local(line memsys.Addr) memsys.Addr {
	g := uint64(line) / memsys.LineSize
	return memsys.Addr(g / uint64(p.cfg.NumCores) * memsys.LineSize)
}

// l2Global reconstructs the global line address from a bank-local one.
func (p *cachePath) l2Global(local memsys.Addr, bank int) memsys.Addr {
	l := uint64(local) / memsys.LineSize
	return memsys.Addr((l*uint64(p.cfg.NumCores) + uint64(bank)) * memsys.LineSize)
}

// Access simulates one access through the cache path.
func (p *cachePath) Access(now memsys.Cycles, a memsys.Access) memsys.Result {
	op := a.Op
	write := op != memsys.OpRead
	atomic := op == memsys.OpAtomic
	if atomic {
		p.atomics.Inc()
	}
	line := memsys.LineAddr(a.Addr)
	l1 := p.l1[a.Core]

	var lat memsys.Cycles
	level := memsys.LevelL1
	if l1.Access(line, write) {
		lat = p.l1HitLat
		if write && !p.dir.IsModifiedBy(line, a.Core) {
			// Upgrade: invalidate other sharers.
			out := p.dir.AcquireExclusive(line, a.Core)
			for i := 0; i < out.Invalidated; i++ {
				p.noc.Send(now, a.Core, p.homeBank(line), 0, noc.ClassCtrl)
			}
			if atomic && out.Invalidated > 0 {
				lat += p.cfg.InvalidationCycles
			}
		}
	} else {
		lat = p.miss(now, a.Core, line, write, a.Kind == memsys.KindVtxProp)
		level = memsys.LevelL2Plus
		// Fill L1 and handle its victim.
		p.fillL1(now, a.Core, line, write)
		if p.cfg.L1Prefetch &&
			(a.Kind == memsys.KindEdgeList || a.Kind == memsys.KindNGraphData) {
			p.prefetchNext(now, a.Core, line)
		}
	}
	if atomic {
		lat += p.cfg.AtomicOpCycles
	}
	blocking := atomic || a.Dependent
	return memsys.Result{Latency: lat, Blocking: blocking, Level: level}
}

// miss brings line toward the requesting core, returning the latency from
// issue to data arrival at the core.
func (p *cachePath) miss(now memsys.Cycles, core int, line memsys.Addr, write, lowLocality bool) memsys.Cycles {
	bank := p.homeBank(line)
	// Request header to the home bank.
	lat := p.noc.Send(now, core, bank, 0, noc.ClassCtrl)

	// Directory resolution at the home node.
	var dirtyOwner = -1
	if write {
		out := p.dir.AcquireExclusive(line, core)
		dirtyOwner = out.DirtyOwner
		for i := 0; i < out.Invalidated; i++ {
			p.noc.Send(now+lat, bank, core, 0, noc.ClassCtrl)
		}
	} else {
		out := p.dir.AcquireShared(line, core)
		dirtyOwner = out.DirtyOwner
	}

	if dirtyOwner >= 0 {
		// Cache-to-cache: forward request to owner, owner sends the line
		// to the requester and writes back to the bank. The L2's copy is
		// stale (owner holds M), so the probe counts as a demand miss —
		// the same accounting gem5's Ruby MESI uses — even though the
		// transfer stays on-chip.
		p.l2[bank].Reads.AddMisses(1)
		p.l2[bank].Fill(p.l2Local(line), true)
		fwd := p.noc.Send(now+lat, bank, dirtyOwner, 0, noc.ClassCtrl)
		xfer := p.noc.Send(now+lat+fwd, dirtyOwner, core, memsys.LineSize, noc.ClassLine)
		// The owner's dirty data also refreshes the L2 bank.
		p.noc.Send(now+lat+fwd, dirtyOwner, bank, memsys.LineSize, noc.ClassLine)
		p.l2[bank].Fill(p.l2Local(line), true)
		return lat + fwd + xfer + p.l1HitLat
	}

	p.pollute(bank)
	l2 := p.l2[bank]
	if l2.Access(p.l2Local(line), false) {
		// L2 hit: data line back to the requester.
		resp := p.noc.Send(now+lat+p.cfg.L2Lat, bank, core, memsys.LineSize, noc.ClassLine)
		return lat + p.cfg.L2Lat + resp
	}
	// L2 miss: DRAM access, fill L2 (inclusive), then respond.
	dramLat := p.dram.AccessHint(now+lat+p.cfg.L2Lat, line, lowLocality)
	if victim, evicted := l2.Fill(p.l2Local(line), false); evicted {
		p.evictFromL2(now, bank, victim)
	}
	resp := p.noc.Send(now+lat+p.cfg.L2Lat+dramLat, bank, core, memsys.LineSize, noc.ClassLine)
	return lat + p.cfg.L2Lat + dramLat + resp
}

// prefetchNext fetches the line after a sequential-class miss into the
// core's L1 in the background: the core is not charged latency, but the
// L2/DRAM/NoC effects (fills, traffic, bandwidth) are fully modeled.
func (p *cachePath) prefetchNext(now memsys.Cycles, core int, line memsys.Addr) {
	next := line + memsys.LineSize
	if p.l1[core].Lookup(next) {
		return
	}
	p.Prefetches.Inc()
	bank := p.homeBank(next)
	p.noc.Send(now, core, bank, 0, noc.ClassCtrl)
	l2 := p.l2[bank]
	if !l2.Access(p.l2Local(next), false) {
		p.dram.AccessHint(now, next, false)
		if victim, evicted := l2.Fill(p.l2Local(next), false); evicted {
			p.evictFromL2(now, bank, victim)
		}
	}
	p.noc.Send(now, bank, core, memsys.LineSize, noc.ClassLine)
	p.fillL1(now, core, next, false)
}

// pollute injects Config.LLCPollution synthetic fills per demand access
// into the accessed bank, evicting real lines the way a shared LLC's
// instruction/OS/TLB traffic does. The synthetic lines live in a reserved
// high address range, cost no simulated time, and their victims are
// dropped silently (the polluting traffic's own behaviour is not under
// study).
func (p *cachePath) pollute(bank int) {
	if p.cfg.LLCPollution <= 0 {
		return
	}
	p.pollAccum += p.cfg.LLCPollution
	for p.pollAccum >= 1 {
		p.pollAccum--
		p.pollNext = p.pollNext*6364136223846793005 + 1442695040888963407
		// Spread across sets within the bank; reserved range above 2^40.
		addr := memsys.Addr(1<<40 + (p.pollNext%(1<<20))*memsys.LineSize)
		p.l2[bank].Fill(p.l2Local(addr), false)
		p.Pollution.Inc()
	}
}

// evictFromL2 handles an L2 victim: back-invalidate L1 copies (inclusive
// hierarchy) and write dirty data to DRAM.
func (p *cachePath) evictFromL2(now memsys.Cycles, bank int, victim cache.EvictedLine) {
	global := p.l2Global(victim.Addr, bank)
	dirty := victim.Dirty
	// Note: the directory's sharer mask cannot shortcut this probe loop.
	// AcquireExclusive clears other cores' sharer bits without removing
	// their (now stale) L1 copies, so L1 contents are a superset of the
	// mask and every core must be probed.
	for c := 0; c < p.cfg.NumCores; c++ {
		if present, l1dirty := p.l1[c].Invalidate(global); present {
			p.noc.Send(now, bank, c, 0, noc.ClassCtrl)
			if l1dirty {
				p.noc.Send(now, c, bank, memsys.LineSize, noc.ClassLine)
				dirty = true
			}
			p.dir.Drop(global, c)
		}
	}
	if dirty {
		p.dram.Write(now, global)
		p.dramWrites.Inc()
	}
}

// fillL1 installs line into the core's L1 and handles the victim
// (directory drop + dirty writeback to the home bank).
func (p *cachePath) fillL1(now memsys.Cycles, core int, line memsys.Addr, write bool) {
	victim, evicted := p.l1[core].Fill(line, write)
	if !write {
		// Shared-state bookkeeping already done in miss(); writes did
		// AcquireExclusive there or on the upgrade path.
		if !p.dir.IsModifiedBy(line, core) && p.dir.Holders(line) == 0 {
			p.dir.AcquireShared(line, core)
		}
	}
	if !evicted {
		return
	}
	p.dir.Drop(victim.Addr, core)
	if victim.Dirty {
		bank := p.homeBank(victim.Addr)
		p.noc.Send(now, core, bank, memsys.LineSize, noc.ClassLine)
		if v2, ev2 := p.l2[bank].Fill(p.l2Local(victim.Addr), true); ev2 {
			// Victim-of-victim: count the DRAM writeback, do not recurse.
			if v2.Dirty {
				p.dram.Write(now, p.l2Global(v2.Addr, bank))
				p.dramWrites.Inc()
			}
		}
	}
}

// l1HitRate aggregates across cores.
func (p *cachePath) l1HitRate() (hits, total uint64) {
	for _, c := range p.l1 {
		hits += c.Reads.Hits + c.Writes.Hits
		total += c.Reads.Total + c.Writes.Total
	}
	return
}

// l2HitRate aggregates across banks.
func (p *cachePath) l2HitRate() (hits, total uint64) {
	for _, c := range p.l2 {
		hits += c.Reads.Hits + c.Writes.Hits
		total += c.Reads.Total + c.Writes.Total
	}
	return
}

func (p *cachePath) reset() {
	for _, c := range p.l1 {
		c.Reset()
	}
	for _, c := range p.l2 {
		c.Reset()
	}
	p.dir.Reset()
	p.atomics.Reset()
	p.dramWrites.Reset()
	p.pollAccum = 0
	p.pollNext = 0
	p.Pollution.Reset()
	p.Prefetches.Reset()
}
