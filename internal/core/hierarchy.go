package core

import (
	"math/bits"

	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/memsys/cache"
	"omega/internal/memsys/coherence"
	"omega/internal/memsys/dram"
	"omega/internal/memsys/noc"
	"omega/internal/stats"
)

// cachePath is the conventional coherent cache hierarchy: per-core private
// L1D caches, address-interleaved shared L2 banks reached over the
// crossbar, a MESI-lite directory over the L1s, and DRAM behind the L2.
// It serves as the entire memory system of the baseline machine and as
// the non-scratchpad path of the OMEGA machine.
type cachePath struct {
	cfg  Config
	l1   []*cache.Cache
	l2   []*cache.Cache
	dir  *coherence.Directory
	dram *dram.DRAM
	noc  *noc.Crossbar

	// faults, when attached, flips bits in directory probe-table entries;
	// the background scrubber repairs them via the per-entry check byte
	// (nil = no injection, the default).
	faults *faults.Injector

	atomics    stats.Counter
	l1HitLat   memsys.Cycles
	dramWrites stats.Counter

	// coreShift/coreMask strength-reduce the bank-interleaving div/mod to
	// shift/mask when NumCores is a power of two (coreShift -1 otherwise).
	coreShift int
	coreMask  uint64

	// LLC pollution state (Config.LLCPollution): synthetic fills that
	// model the instruction/OS traffic of a real machine's LLC.
	pollAccum float64
	pollNext  uint64
	Pollution stats.Counter

	// Prefetches counts next-line prefetches issued (Config.L1Prefetch).
	Prefetches stats.Counter
}

func newCachePath(cfg Config, xbar *noc.Crossbar, mem *dram.DRAM) *cachePath {
	p := &cachePath{
		cfg:       cfg,
		dir:       coherence.New(cfg.NumCores),
		dram:      mem,
		noc:       xbar,
		l1HitLat:  1,
		coreShift: -1,
	}
	if n := cfg.NumCores; n&(n-1) == 0 {
		p.coreShift = bits.TrailingZeros(uint(n))
		p.coreMask = uint64(n) - 1
	}
	for c := 0; c < cfg.NumCores; c++ {
		p.l1 = append(p.l1, cache.New(cache.Config{
			SizeBytes:     cfg.L1Bytes,
			Ways:          cfg.L1Ways,
			LatencyCycles: p.l1HitLat,
			Name:          "L1D",
		}))
		p.l2 = append(p.l2, cache.New(cache.Config{
			SizeBytes:     cfg.L2BytesPerCore,
			Ways:          cfg.L2Ways,
			LatencyCycles: cfg.L2Lat,
			Name:          "L2",
		}))
	}
	return p
}

// homeBank address-interleaves lines across L2 banks.
func (p *cachePath) homeBank(line memsys.Addr) int {
	g := uint64(line) / memsys.LineSize
	if p.coreShift >= 0 {
		return int(g & p.coreMask)
	}
	return int(g % uint64(p.cfg.NumCores))
}

// l2Local strips the bank-interleaving bits from a global line address so
// a bank's set index uses the full set space (without this, every line in
// a bank would map to the same few sets).
func (p *cachePath) l2Local(line memsys.Addr) memsys.Addr {
	g := uint64(line) / memsys.LineSize
	if p.coreShift >= 0 {
		return memsys.Addr(g >> uint(p.coreShift) * memsys.LineSize)
	}
	return memsys.Addr(g / uint64(p.cfg.NumCores) * memsys.LineSize)
}

// l2Global reconstructs the global line address from a bank-local one.
func (p *cachePath) l2Global(local memsys.Addr, bank int) memsys.Addr {
	l := uint64(local) / memsys.LineSize
	return memsys.Addr((l*uint64(p.cfg.NumCores) + uint64(bank)) * memsys.LineSize)
}

// Access simulates one access through the cache path.
func (p *cachePath) Access(now memsys.Cycles, a memsys.Access) memsys.Result {
	op := a.Op
	write := op != memsys.OpRead
	atomic := op == memsys.OpAtomic
	if atomic {
		p.atomics.Inc()
	}
	line := memsys.LineAddr(a.Addr)
	l1 := p.l1[a.Core]

	// Injected directory probe-table entry flip. When a flip lands, the
	// scrubber sweeps the table against the per-entry check bytes and
	// erases mismatching entries (backward-shift aware: coherence.Scrub
	// rechecks slots refilled by the shift); the sweep's latency is
	// charged to this access. With scrubbing disabled the corrupt entry
	// persists and silently skews coherence traffic.
	var scrubLat memsys.Cycles
	if slotSel, bitSel, ok := p.faults.DirFlip(); ok {
		if p.dir.CorruptEntry(slotSel, bitSel) && !p.faults.Config().DisableDirScrub {
			if repaired := p.dir.Scrub(); repaired > 0 {
				p.faults.NoteDirScrubRepairs(repaired)
			}
			scrubLat = p.faults.Config().DirScrubCycles
		}
	}

	// Streaming-kind reads seed the L1's same-line memo (the fast path in
	// Machine.fastRead); vtxProp and writes use the plain probe so point
	// accesses do not evict a live stream memo. The line's L1 coordinates
	// are resolved once and reused by the miss-side fill.
	stream := !write && a.Kind != memsys.KindVtxProp
	r1 := l1.Resolve(line)
	var l1Hit bool
	if stream {
		l1Hit = l1.AccessStreamReadAt(r1)
	} else {
		l1Hit = l1.AccessAt(r1, write)
	}

	var lat memsys.Cycles
	level := memsys.LevelL1
	if l1Hit {
		lat = p.l1HitLat
		if write {
			// Upgrade: invalidate other sharers (single directory probe;
			// a no-op when this core already holds the line Modified).
			if out, upgraded := p.dir.Upgrade(line, a.Core); upgraded {
				if out.Invalidated > 0 {
					bank := p.homeBank(line)
					for i := 0; i < out.Invalidated; i++ {
						p.noc.Send(now, a.Core, bank, 0, noc.ClassCtrl)
					}
					if atomic {
						lat += p.cfg.InvalidationCycles
					}
				}
			}
		}
	} else {
		lat = p.miss(now, a.Core, line, write, a.Kind == memsys.KindVtxProp)
		level = memsys.LevelL2Plus
		// Fill L1 and handle its victim. Streaming fills seed the L1's
		// same-line memo so the reads that follow the miss take the fast
		// path. The fill reuses the probe's Ref and the known-absent
		// contract: nothing between the missing probe above and here can
		// have installed the line (the miss path only fills L2 and may
		// *invalidate* L1 lines via back-invalidation).
		p.fillL1(now, a.Core, r1, line, write, stream)
		if p.cfg.L1Prefetch &&
			(a.Kind == memsys.KindEdgeList || a.Kind == memsys.KindNGraphData) {
			p.prefetchNext(now, a.Core, line)
		}
	}
	if atomic {
		lat += p.cfg.AtomicOpCycles
	}
	blocking := atomic || a.Dependent
	return memsys.Result{Latency: lat + scrubLat, Blocking: blocking, Level: level}
}

// miss brings line toward the requesting core, returning the latency from
// issue to data arrival at the core.
func (p *cachePath) miss(now memsys.Cycles, core int, line memsys.Addr, write, lowLocality bool) memsys.Cycles {
	bank := p.homeBank(line)
	// The bank-local address and its L2 set/way coordinates are resolved
	// once here; every L2 operation below reuses them. A Ref is pure
	// address arithmetic, so content mutations between uses (pollution
	// fills, the DRAM access) do not invalidate it.
	l2 := p.l2[bank]
	rl2 := l2.Resolve(p.l2Local(line))
	// Request header to the home bank.
	lat := p.noc.Send(now, core, bank, 0, noc.ClassCtrl)

	// Directory resolution at the home node.
	var dirtyOwner = -1
	if write {
		out := p.dir.AcquireExclusive(line, core)
		dirtyOwner = out.DirtyOwner
		for i := 0; i < out.Invalidated; i++ {
			p.noc.Send(now+lat, bank, core, 0, noc.ClassCtrl)
		}
	} else {
		out := p.dir.AcquireShared(line, core)
		dirtyOwner = out.DirtyOwner
	}

	if dirtyOwner >= 0 {
		// Cache-to-cache: forward request to owner, owner sends the line
		// to the requester and writes back to the bank. The L2's copy is
		// stale (owner holds M), so the probe counts as a demand miss —
		// the same accounting gem5's Ruby MESI uses — even though the
		// transfer stays on-chip.
		l2.Reads.AddMisses(1)
		l2.FillAt(rl2, true)
		fwd := p.noc.Send(now+lat, bank, dirtyOwner, 0, noc.ClassCtrl)
		xfer := p.noc.Send(now+lat+fwd, dirtyOwner, core, memsys.LineSize, noc.ClassLine)
		// The owner's dirty data also refreshes the L2 bank.
		p.noc.Send(now+lat+fwd, dirtyOwner, bank, memsys.LineSize, noc.ClassLine)
		l2.FillAt(rl2, true)
		return lat + fwd + xfer + p.l1HitLat
	}

	p.pollute(bank)
	if l2.AccessAt(rl2, false) {
		// L2 hit: data line back to the requester.
		resp := p.noc.Send(now+lat+p.cfg.L2Lat, bank, core, memsys.LineSize, noc.ClassLine)
		return lat + p.cfg.L2Lat + resp
	}
	// L2 miss: DRAM access, fill L2 (inclusive), then respond. The fill
	// may take the known-absent path: the probe just missed and only the
	// DRAM access (no cache mutation) ran in between.
	dramLat := p.dram.AccessHint(now+lat+p.cfg.L2Lat, line, lowLocality)
	if victim, evicted := l2.FillMissAt(rl2, false); evicted {
		p.evictFromL2(now, bank, victim)
	}
	resp := p.noc.Send(now+lat+p.cfg.L2Lat+dramLat, bank, core, memsys.LineSize, noc.ClassLine)
	return lat + p.cfg.L2Lat + dramLat + resp
}

// prefetchNext fetches the line after a sequential-class miss into the
// core's L1 in the background: the core is not charged latency, but the
// L2/DRAM/NoC effects (fills, traffic, bandwidth) are fully modeled.
func (p *cachePath) prefetchNext(now memsys.Cycles, core int, line memsys.Addr) {
	next := line + memsys.LineSize
	rn := p.l1[core].Resolve(next)
	if p.l1[core].LookupAt(rn) {
		return
	}
	p.Prefetches.Inc()
	bank := p.homeBank(next)
	p.noc.Send(now, core, bank, 0, noc.ClassCtrl)
	l2 := p.l2[bank]
	rl2 := l2.Resolve(p.l2Local(next))
	if !l2.AccessAt(rl2, false) {
		p.dram.AccessHint(now, next, false)
		if victim, evicted := l2.FillMissAt(rl2, false); evicted {
			p.evictFromL2(now, bank, victim)
		}
	}
	p.noc.Send(now, bank, core, memsys.LineSize, noc.ClassLine)
	// Prefetched lines do not seed the memo: the demand stream's memo
	// should keep pointing at the line the core is actually reading. The
	// L1 fill reuses the lookup's Ref; the lookup missed and the only L1
	// mutations since are possible back-invalidations (removals), so the
	// known-absent contract holds.
	p.fillL1(now, core, rn, next, false, false)
}

// pollute injects Config.LLCPollution synthetic fills per demand access
// into the accessed bank, evicting real lines the way a shared LLC's
// instruction/OS/TLB traffic does. The synthetic lines live in a reserved
// high address range, cost no simulated time, and their victims are
// dropped silently (the polluting traffic's own behaviour is not under
// study).
func (p *cachePath) pollute(bank int) {
	if p.cfg.LLCPollution <= 0 {
		return
	}
	p.pollAccum += p.cfg.LLCPollution
	for p.pollAccum >= 1 {
		p.pollAccum--
		p.pollNext = p.pollNext*6364136223846793005 + 1442695040888963407
		// Spread across sets within the bank; reserved range above 2^40.
		addr := memsys.Addr(pollutionBase + (p.pollNext%(1<<20))*memsys.LineSize)
		p.l2[bank].Fill(p.l2Local(addr), false)
		p.Pollution.Inc()
	}
}

// pollutionBase is the bottom of the reserved address range holding the
// synthetic LLC-pollution lines. Real simulated addresses are region
// allocations far below it, so any line at or above the (bank-stripped)
// base is synthetic.
const pollutionBase = 1 << 40

// evictFromL2 handles an L2 victim: back-invalidate L1 copies (inclusive
// hierarchy) and write dirty data to DRAM.
func (p *cachePath) evictFromL2(now memsys.Cycles, bank int, victim cache.EvictedLine) {
	global := p.l2Global(victim.Addr, bank)
	if uint64(global) >= pollutionBase/2 {
		// Synthetic pollution victim: no core ever issues an access in the
		// reserved range, so no L1 holds the line (every probe below would
		// miss), the directory does not track it, and it is never dirtied.
		// Skipping the all-core back-invalidation probe loop is therefore
		// free of observable effect — and under LLCPollution it is a large
		// share of all L2 evictions. The half-base threshold absorbs the
		// ≤NumCores-line rounding of the bank-local round trip (pollution
		// fills target the accessed bank, not the line's home bank, so the
		// reconstruction can sit a few lines under pollutionBase); real
		// allocations sit many orders of magnitude below 2^39.
		return
	}
	dirty := victim.Dirty
	// Back-invalidation probes are restricted to the directory's resident
	// mask — a guaranteed superset of the L1s containing the line (the
	// sharer mask alone would not do: AcquireExclusive clears other cores'
	// sharer bits without removing their now-stale L1 copies, but their
	// resident bits persist until the copy is provably gone). A core
	// outside the mask would probe-miss with zero side effects, so
	// skipping it is unobservable. Bits are visited in ascending core
	// order, preserving the full loop's message order.
	if rem := p.dir.Resident(global); rem != 0 {
		// All L1s share one geometry, so the line's set/way coordinates
		// are resolved once (against core 0's L1) and reused for every
		// probed core. Resolved lazily: most evictions have an empty
		// resident mask.
		rg := p.l1[0].Resolve(global)
		for ; rem != 0; rem &= rem - 1 {
			c := bits.TrailingZeros64(rem)
			if present, l1dirty := p.l1[c].InvalidateAt(rg); present {
				p.noc.Send(now, bank, c, 0, noc.ClassCtrl)
				if l1dirty {
					p.noc.Send(now, c, bank, memsys.LineSize, noc.ClassLine)
					dirty = true
				}
				p.dir.Drop(global, c)
			} else {
				// Stale residency bit (e.g. the L1 was reset): retract it
				// so the entry can be reclaimed.
				p.dir.ClearResident(global, c)
			}
		}
	}
	if dirty {
		p.dram.Write(now, global)
		p.dramWrites.Inc()
	}
}

// fillL1 installs line into the core's L1 and handles the victim
// (directory drop + dirty writeback to the home bank). stream additionally
// seeds the L1's same-line memo with the filled line. r is the line's Ref
// in the core's L1, carried over from the probe that missed; both callers
// guarantee the known-absent contract (the probe missed and only removals
// can have touched the L1 since), so the fill skips the presence re-probe.
func (p *cachePath) fillL1(now memsys.Cycles, core int, r cache.Ref, line memsys.Addr, write, stream bool) {
	var victim cache.EvictedLine
	var evicted bool
	if stream {
		victim, evicted = p.l1[core].FillMissStreamAt(r, write)
	} else {
		victim, evicted = p.l1[core].FillMissAt(r, write)
	}
	if !write {
		// Shared-state bookkeeping already done in miss() for demand reads;
		// FillShared acquires Shared exactly when the line is untracked
		// (prefetch fills) and marks residency either way. Writes did
		// AcquireExclusive in miss() (which marks residency) or hit on the
		// upgrade path.
		p.dir.FillShared(line, core)
	}
	if !evicted {
		return
	}
	p.dir.Drop(victim.Addr, core)
	if victim.Dirty {
		bank := p.homeBank(victim.Addr)
		p.noc.Send(now, core, bank, memsys.LineSize, noc.ClassLine)
		if v2, ev2 := p.l2[bank].Fill(p.l2Local(victim.Addr), true); ev2 {
			// Victim-of-victim: count the DRAM writeback, do not recurse.
			if v2.Dirty {
				p.dram.Write(now, p.l2Global(v2.Addr, bank))
				p.dramWrites.Inc()
			}
		}
	}
}

// l1HitRate aggregates across cores.
func (p *cachePath) l1HitRate() (hits, total uint64) {
	for _, c := range p.l1 {
		hits += c.Reads.Hits + c.Writes.Hits
		total += c.Reads.Total + c.Writes.Total
	}
	return
}

// l2HitRate aggregates across banks.
func (p *cachePath) l2HitRate() (hits, total uint64) {
	for _, c := range p.l2 {
		hits += c.Reads.Hits + c.Writes.Hits
		total += c.Reads.Total + c.Writes.Total
	}
	return
}

func (p *cachePath) reset() {
	for _, c := range p.l1 {
		c.Reset()
	}
	for _, c := range p.l2 {
		c.Reset()
	}
	p.dir.Reset()
	p.atomics.Reset()
	p.dramWrites.Reset()
	p.pollAccum = 0
	p.pollNext = 0
	p.Pollution.Reset()
	p.Prefetches.Reset()
}
