package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"omega/internal/cpu"
	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/memsys/noc"
)

// MachineStats is the complete statistical snapshot of a finished run.
// Every table and figure of the paper is computed from these fields.
type MachineStats struct {
	// Name is the machine name ("baseline"/"omega").
	Name string
	// Cycles is simulated execution time (max core clock).
	Cycles memsys.Cycles
	// Instructions retired across all cores.
	Instructions uint64
	// TMAM is the summed cycle breakdown (Figure 3).
	TMAM cpu.Breakdown

	// L1HitRate / L2HitRate are measured cache hit rates (Figure 4(a)).
	L1HitRate float64
	L2HitRate float64
	// LLCHitRate is the "last-level storage" hit rate of Figure 15:
	// the baseline's L2 hit rate, or OMEGA's combined
	// (L2 hits + scratchpad accesses) / (L2 accesses + scratchpad accesses).
	LLCHitRate float64

	// SPAccesses / SPLocalFraction / SrcBufHitRate describe the
	// scratchpad side (zero on the baseline).
	SPAccesses      uint64
	SPLocalFraction float64
	SrcBufHitRate   float64
	// SPResident is the number of scratchpad-resident vertices.
	SPResident int
	// PISCOps is the number of offloaded atomic operations executed.
	PISCOps uint64

	// DRAM statistics (Figure 16).
	DRAMAccesses  uint64
	DRAMBytes     uint64
	DRAMRowHit    float64
	DRAMUtilized  float64 // achieved/peak bandwidth over the run
	DRAMQueueWait uint64

	// On-chip traffic in bytes, total and per class (Figure 17).
	NoCBytes     uint64
	NoCLineBytes uint64
	NoCWordBytes uint64
	NoCCtrlBytes uint64

	// NoCQueueWait accumulates crossbar queueing delay.
	NoCQueueWait uint64

	// Coherence activity.
	Invalidations uint64
	C2CTransfers  uint64

	// Stall attribution across cores (diagnostics).
	BlockingStall uint64
	WindowStall   uint64
	DrainStall    uint64
	OffloadStall  uint64

	// Issue-side access mix (Table II characterization).
	AccessesByKind [4]uint64
	Atomics        uint64
	SrcReads       uint64
	Iterations     uint64

	// Faults is the injected-fault log (all zero when injection is off —
	// the zero-cost-abstraction guarantee the resilience tests verify).
	Faults faults.Events
	// SPDegraded is how many vertex lines parity errors pushed back to
	// the cache hierarchy by the end of the run.
	SPDegraded int
}

// TotalAccesses sums the issue-side access counts.
func (s MachineStats) TotalAccesses() uint64 {
	var t uint64
	for _, v := range s.AccessesByKind {
		t += v
	}
	return t
}

// Speedup returns other.Cycles / s.Cycles: how much faster s is than
// other.
func (s MachineStats) Speedup(other MachineStats) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(other.Cycles) / float64(s.Cycles)
}

// Stats snapshots the machine's statistics. The snapshot is a *view over
// the metric registry*: every field a registered probe covers is read
// through registry lookups, so MachineStats and the emitted sample
// stream are derived from the same descriptors and can never disagree.
// (DRAMUtilized and Faults stay direct: bandwidth utilization is a
// float ratio against peak, and the fault log is structured, neither
// representable as a uint64 sample.)
//
// With a sink attached, the first Stats call after the last iteration
// also flushes the registry once, labeled with the final iteration
// number: BeginIteration(n+1) closes iteration n, so the end-of-run
// flush closes the last iteration N — giving a complete 1..N series.
func (m *Machine) Stats() MachineStats {
	m.flushFold()
	if m.sink != nil && !m.finalEmitted {
		m.reg.Emit(m.sink, m.cfg.Name, m.iterations.Value())
		m.finalEmitted = true
	}
	g := m.reg.Get
	s := MachineStats{
		Name:   m.cfg.Name,
		Cycles: m.ElapsedCycles(),
	}
	s.Instructions = g("cpu", "instructions", "")
	s.TMAM = cpu.Breakdown{
		Retiring:    memsys.Cycles(g("cpu", "retiring", "")),
		Frontend:    memsys.Cycles(g("cpu", "frontend", "")),
		MemoryBound: memsys.Cycles(g("cpu", "memory_bound", "")),
		CoreBound:   memsys.Cycles(g("cpu", "core_bound", "")),
	}
	s.BlockingStall = g("cpu", "blocking_stall", "")
	s.WindowStall = g("cpu", "window_stall", "")
	s.DrainStall = g("cpu", "drain_stall", "")
	s.OffloadStall = g("cpu", "offload_stall", "")
	l1 := memsys.LevelL1.String()
	l2 := memsys.LevelL2Plus.String()
	l1h := g("cache", "read_hits", l1) + g("cache", "write_hits", l1)
	l1t := g("cache", "read_total", l1) + g("cache", "write_total", l1)
	if l1t > 0 {
		s.L1HitRate = float64(l1h) / float64(l1t)
	}
	l2h := g("cache", "read_hits", l2) + g("cache", "write_hits", l2)
	l2t := g("cache", "read_total", l2) + g("cache", "write_total", l2)
	if l2t > 0 {
		s.L2HitRate = float64(l2h) / float64(l2t)
	}
	s.LLCHitRate = s.L2HitRate
	if m.omega != nil {
		sp := g("scratchpad", "local", "") + g("scratchpad", "remote", "")
		s.SPAccesses = sp
		if sp > 0 {
			s.SPLocalFraction = float64(g("scratchpad", "local", "")) / float64(sp)
		}
		if sbt := g("scratchpad", "srcbuf_total", ""); sbt > 0 {
			s.SrcBufHitRate = float64(g("scratchpad", "srcbuf_hits", "")) / float64(sbt)
		}
		s.SPResident = int(g("scratchpad", "resident", ""))
		s.SPDegraded = int(g("scratchpad", "degraded", ""))
		s.PISCOps = g("pisc", "executed", "")
		if l2t+sp > 0 {
			s.LLCHitRate = float64(l2h+sp) / float64(l2t+sp)
		}
	}
	s.DRAMAccesses = g("dram", "accesses", "")
	s.DRAMBytes = g("dram", "bytes", "")
	if rt := g("dram", "row_total", ""); rt > 0 {
		s.DRAMRowHit = float64(g("dram", "row_hits", "")) / float64(rt)
	}
	s.DRAMUtilized = m.mem.Utilization(s.Cycles)
	s.DRAMQueueWait = g("dram", "queue_wait", "")
	s.NoCLineBytes = g("noc", "bytes", noc.ClassLine.String())
	s.NoCWordBytes = g("noc", "bytes", noc.ClassWord.String())
	s.NoCCtrlBytes = g("noc", "bytes", noc.ClassCtrl.String())
	s.NoCBytes = s.NoCLineBytes + s.NoCWordBytes + s.NoCCtrlBytes
	s.NoCQueueWait = g("noc", "queue_wait", "")
	s.Invalidations = g("coherence", "invalidations", "")
	s.C2CTransfers = g("coherence", "c2c_transfers", "")
	for k := range s.AccessesByKind {
		s.AccessesByKind[k] = g("machine", "accesses", memsys.Kind(k).String())
	}
	s.Atomics = g("machine", "atomics", "")
	s.SrcReads = g("machine", "src_reads", "")
	s.Iterations = g("machine", "iterations", "")
	s.Faults = m.faults.Events()
	return s
}

// Reset clears all simulation state (clocks, caches, stats), keeping the
// configuration and allocations.
func (m *Machine) Reset() {
	// Discard, don't flush: the cleared machine's state is complete and
	// deferred reads from before the reset must not leak into it.
	m.resetFold()
	for _, c := range m.cores {
		c.Reset()
	}
	m.xbar.Reset()
	m.mem.Reset()
	m.faults.Reset()
	if m.omega != nil {
		m.omega.reset()
	} else {
		m.path.reset()
	}
	for i := range m.accessesByKind {
		m.accessesByKind[i].Reset()
	}
	m.atomicsIssued.Reset()
	m.srcReads.Reset()
	m.iterations.Reset()
	m.lbHits.Reset()
	m.lbStores.Reset()
	m.parRegions.Reset()
	m.seqRegions.Reset()
	m.schedItems.Reset()
	m.finalEmitted = false
	m.levelCount = [2 * memsys.NumLevels]uint64{}
	m.levelLatency = [2 * memsys.NumLevels]uint64{}
	if m.vertexProfile != nil {
		for i := range m.vertexProfile {
			m.vertexProfile[i] = 0
		}
	}
}

// JSON renders the stats as indented JSON for downstream tooling.
func (s MachineStats) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Summary renders the headline statistics as readable text.
func (s MachineStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] cycles=%d instr=%d\n", s.Name, s.Cycles, s.Instructions)
	fmt.Fprintf(&b, "  L1 %.1f%%  L2 %.1f%%  LLC(storage) %.1f%%\n",
		100*s.L1HitRate, 100*s.L2HitRate, 100*s.LLCHitRate)
	fmt.Fprintf(&b, "  DRAM: %d accesses, %.2f MB, util %.1f%%, row-hit %.1f%%\n",
		s.DRAMAccesses, float64(s.DRAMBytes)/(1<<20), 100*s.DRAMUtilized, 100*s.DRAMRowHit)
	fmt.Fprintf(&b, "  NoC: %.2f MB (line %.2f / word %.2f / ctrl %.2f)\n",
		float64(s.NoCBytes)/(1<<20), float64(s.NoCLineBytes)/(1<<20),
		float64(s.NoCWordBytes)/(1<<20), float64(s.NoCCtrlBytes)/(1<<20))
	if s.SPAccesses > 0 {
		fmt.Fprintf(&b, "  SP: %d accesses (%.1f%% local), srcbuf %.1f%%, resident %d, PISC ops %d\n",
			s.SPAccesses, 100*s.SPLocalFraction, 100*s.SrcBufHitRate, s.SPResident, s.PISCOps)
	}
	if f := s.Faults; f.Total() > 0 {
		fmt.Fprintf(&b, "  faults: ECC corr %d / det %d / silent %d, NoC drops %d (gave up %d), SP parity %d (degraded %d)\n",
			f.DRAMCorrected, f.DRAMDetected, f.DRAMSilent,
			f.NoCDropped, f.NoCGaveUp, f.SPParityErrors, s.SPDegraded)
		if f.DirFlips+f.LineBufFlips+f.ALUFlips > 0 {
			fmt.Fprintf(&b, "  faults: dir flips %d (scrubbed %d), linebuf flips %d (caught %d), ALU flips %d\n",
				f.DirFlips, f.DirScrubRepairs, f.LineBufFlips, f.LineBufGenCatches, f.ALUFlips)
		}
	}
	t := s.TMAM.Total()
	if t > 0 {
		fmt.Fprintf(&b, "  TMAM: retiring %.0f%% frontend %.0f%% mem %.0f%% core %.0f%%\n",
			100*float64(s.TMAM.Retiring)/float64(t),
			100*float64(s.TMAM.Frontend)/float64(t),
			100*float64(s.TMAM.MemoryBound)/float64(t),
			100*float64(s.TMAM.CoreBound)/float64(t))
	}
	return b.String()
}
