package core

import (
	"strings"
	"testing"
)

// TestCanonicalKeyStable: equal configs encode equally, and the stock
// configurations all encode without panicking — the guard that keeps
// Config a pure value type as fields are added.
func TestCanonicalKeyStable(t *testing.T) {
	for _, cfg := range []Config{Baseline(), OMEGA()} {
		a, b := cfg.CanonicalKey(), cfg.CanonicalKey()
		if a != b {
			t.Fatalf("%s: CanonicalKey not deterministic", cfg.Name)
		}
		if a == "" {
			t.Fatalf("%s: empty canonical key", cfg.Name)
		}
	}
	b, om := ScaledPair(1<<9, 8, 0.20)
	if b.CanonicalKey() == om.CanonicalKey() {
		t.Fatal("baseline and omega scaled configs encode identically")
	}
}

// TestCanonicalKeyDistinguishesFields: changing any knob — top-level,
// nested DRAM, nested fault config including the seed — changes the key.
func TestCanonicalKeyDistinguishesFields(t *testing.T) {
	base := Baseline()
	ref := base.CanonicalKey()
	mutations := map[string]func(*Config){
		"Name":          func(c *Config) { c.Name = "other" },
		"NumCores":      func(c *Config) { c.NumCores++ },
		"SerialAccess":  func(c *Config) { c.SerialAccess = true },
		"SPResidentCap": func(c *Config) { c.SPResidentCap = 7 },
		"Coverage knob": func(c *Config) { c.LLCPollution = 0.5 },
		"DRAM nested":   func(c *Config) { c.DRAM.ClosePage = !c.DRAM.ClosePage },
		"Fault rate":    func(c *Config) { c.Faults.DRAMFlipRate = 1e-4 },
		"Fault seed":    func(c *Config) { c.Faults.Seed = 99 },
	}
	for name, mut := range mutations {
		cfg := base
		mut(&cfg)
		if cfg.CanonicalKey() == ref {
			t.Errorf("mutation %q did not change the canonical key", name)
		}
	}
}

// TestCanonicalKeySelfDescribing: the encoding names fields, so keys
// from different schema generations can never collide silently.
func TestCanonicalKeySelfDescribing(t *testing.T) {
	k := Baseline().CanonicalKey()
	for _, field := range []string{"Name=", "NumCores=", "DRAM=", "Faults=", "SerialAccess="} {
		if !strings.Contains(k, field) {
			t.Errorf("canonical key missing %q:\n%s", field, k)
		}
	}
}
