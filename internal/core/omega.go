package core

import (
	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/memsys/noc"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
	"omega/internal/stats"
)

// baselineHier is the baseline machine's memory system: the cache path and
// nothing else.
type baselineHier struct {
	*cachePath
}

// BeginIteration is a no-op: the baseline has no iteration-scoped state.
func (h *baselineHier) BeginIteration() {}

// omegaHier is the OMEGA heterogeneous memory system: a scratchpad
// controller with PISC engines in front of a (half-sized) cache path.
// vtxProp accesses to scratchpad-resident vertices are served at word
// granularity by local or remote slices; atomics among them are offloaded
// to the home PISC; everything else flows through the cache path.
type omegaHier struct {
	*cachePath
	ctrl    *scratchpad.Controller
	engines []*pisc.Engine
	xbar    *noc.Crossbar
	cfg     Config
	faults  *faults.Injector // nil when injection is disabled

	offloads    stats.Counter
	spAtomics   stats.Counter // atomics executed at SP without PISC
	remoteReads stats.Counter
}

func newOmegaHier(cfg Config, path *cachePath, xbar *noc.Crossbar, inj *faults.Injector) *omegaHier {
	spCfg := scratchpad.Config{
		NumCores:         cfg.NumCores,
		BytesPerCore:     cfg.SPBytesPerCore,
		LatencyCycles:    cfg.SPLat,
		ChunkSize:        cfg.chunkSize(),
		SrcBufferEntries: cfg.SrcBufEntries,
	}
	h := &omegaHier{
		cachePath: path,
		ctrl:      scratchpad.NewController(spCfg),
		xbar:      xbar,
		cfg:       cfg,
		faults:    inj,
	}
	for c := 0; c < cfg.NumCores; c++ {
		h.engines = append(h.engines, pisc.NewEngine(pisc.DefaultConfig(cfg.SPLat)))
	}
	return h
}

// BeginIteration invalidates the source vertex buffers (paper §V.C).
func (h *omegaHier) BeginIteration() { h.ctrl.InvalidateSrcBufs() }

// Access routes one access through the heterogeneous hierarchy.
func (h *omegaHier) Access(now memsys.Cycles, a memsys.Access) memsys.Result {
	if a.Kind == memsys.KindVtxProp {
		if v, resident := h.ctrl.Match(a.Addr); resident {
			if h.faults != nil {
				if trip, penalty := h.faults.SPParity(); trip {
					return h.degrade(now, a, v, penalty)
				}
			}
			return h.spAccess(now, a, v)
		}
	}
	return h.cachePath.Access(now, a)
}

// degrade is the graceful-degradation path for a scratchpad parity error
// (§resilience): the vertex line is marked bad — this and every later
// access to it fall back to the cache hierarchy, so OMEGA keeps running
// slower instead of wrong. The tripping access pays the detection penalty
// on top of its cache-path latency.
func (h *omegaHier) degrade(now memsys.Cycles, a memsys.Access, v uint32, penalty memsys.Cycles) memsys.Result {
	if h.ctrl.MarkFaulty(v) {
		h.faults.NoteSPDegraded()
	}
	// A parity trip re-routes this vertex to the cache hierarchy for good:
	// conservatively drop every core's line-buffer memo so the next read on
	// any core re-probes under the new routing — the degraded vertex is
	// shared state, not private to the tripping core. DropHot touches no
	// counters, so this is stats-neutral.
	for _, l1 := range h.l1 {
		l1.DropHot()
	}
	res := h.cachePath.Access(now, a)
	res.Latency += penalty
	res.Level = memsys.LevelSPDegraded
	return res
}

// spAccess serves a scratchpad-resident vtxProp access.
func (h *omegaHier) spAccess(now memsys.Cycles, a memsys.Access, v uint32) memsys.Result {
	home := h.ctrl.Home(v)
	local := home == a.Core
	h.ctrl.RecordAccess(local)
	spLat := h.ctrl.Latency()
	size := int(a.Size)
	if size <= 0 || size > 8 {
		size = 8
	}

	switch a.Op {
	case memsys.OpAtomic:
		if h.cfg.PISC {
			// Offload: one word packet carries the operand and vertex ID
			// (§V.E custom packets of up to 64 bits).
			h.offloads.Inc()
			var sendLat memsys.Cycles
			if local {
				sendLat = 1
				h.xbar.Send(now, a.Core, home, size, noc.ClassWord)
			} else {
				sendLat = h.xbar.Send(now, a.Core, home, size, noc.ClassWord)
			}
			stall, _ := h.engines[home].Offload(now + sendLat)
			return memsys.Result{Latency: stall, Offloaded: true, Level: memsys.LevelPISC}
		}
		// Scratchpads without PISC (§X.A ablation): the core performs
		// the read-modify-write itself. The controller locks only the
		// word (§VIII), so the core blocks for the read round trip and
		// the ALU op; the unlocking write is posted.
		h.spAtomics.Inc()
		var lat memsys.Cycles
		if local {
			lat = spLat + 2
			h.xbar.Send(now, a.Core, home, size, noc.ClassWord)
		} else {
			rt := h.xbar.RoundTrip(now, a.Core, home, 0, size, noc.ClassWord)
			lat = rt + spLat + 2
			h.xbar.Send(now+lat, a.Core, home, size, noc.ClassWord)
		}
		return memsys.Result{Latency: lat, Blocking: true, Level: memsys.LevelSPAtomic}

	case memsys.OpRead:
		if a.SrcRead && h.cfg.SrcBufEntries > 0 {
			if h.ctrl.SrcBufLookup(a.Core, v) {
				return memsys.Result{Latency: 1, Level: memsys.LevelSrcBuf}
			}
		}
		if local {
			return memsys.Result{
				Latency:  spLat,
				Blocking: a.Dependent,
				Level:    memsys.LevelSPLocal,
			}
		}
		h.remoteReads.Inc()
		lat := h.xbar.RoundTrip(now, a.Core, home, 0, size, noc.ClassWord) + spLat
		return memsys.Result{Latency: lat, Blocking: a.Dependent, Level: memsys.LevelSPRemote}

	default: // OpWrite
		return h.spWrite(now, a.Core, home, local, size, spLat)
	}
}

// spWrite models a posted (non-blocking) word write to a slice.
func (h *omegaHier) spWrite(now memsys.Cycles, core, home int, local bool, size int, spLat memsys.Cycles) memsys.Result {
	if local {
		h.xbar.Send(now, core, home, size, noc.ClassWord)
		return memsys.Result{Latency: spLat, Level: memsys.LevelSPLocal}
	}
	lat := h.xbar.Send(now, core, home, size, noc.ClassWord) + spLat
	return memsys.Result{Latency: lat, Level: memsys.LevelSPRemote}
}

// configure loads monitor registers and microcode.
func (h *omegaHier) configure(monitors []scratchpad.MonitorRegister, totalVertices int, mc pisc.Microcode) int {
	n := h.ctrl.Configure(monitors, totalVertices)
	for _, e := range h.engines {
		e.LoadMicrocode(mc)
	}
	return n
}

func (h *omegaHier) reset() {
	h.cachePath.reset()
	h.ctrl.Reset()
	for _, e := range h.engines {
		e.Reset()
	}
	h.offloads.Reset()
	h.spAtomics.Reset()
	h.remoteReads.Reset()
}
