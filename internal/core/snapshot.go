package core

import (
	"omega/internal/cpu"
	"omega/internal/faults"
	"omega/internal/memsys"
	"omega/internal/memsys/cache"
	"omega/internal/memsys/coherence"
	"omega/internal/memsys/dram"
	"omega/internal/memsys/noc"
	"omega/internal/pisc"
	"omega/internal/scratchpad"
	"omega/internal/stats"
)

// MachineState is an opaque whole-machine checkpoint: every piece of
// mutable simulation state a run touches — core pipelines, caches, the
// coherence directory, DRAM/NoC queues, scratchpad + PISC engines, the
// fault injector's PRNG cursors and event log, the allocator cursor, and
// all machine-level counters. Restoring it rewinds the machine so a re-run
// of the same workload replays bit-identically (including the region
// allocation sequence, so re-created regions land on the same addresses).
// The resilience campaigns use it for checkpointed re-execution recovery.
type MachineState struct {
	cores []cpu.State
	l1    []cache.State
	l2    []cache.State
	dir   coherence.State
	dram  dram.State
	noc   noc.State

	// cachePath scalars.
	pathAtomics    stats.Counter
	pathDRAMWrites stats.Counter
	pollAccum      float64
	pollNext       uint64
	pollution      stats.Counter
	prefetches     stats.Counter

	// OMEGA side (unused on the baseline machine).
	hasOmega    bool
	sp          scratchpad.State
	engines     []pisc.State
	offloads    stats.Counter
	spAtomics   stats.Counter
	remoteReads stats.Counter

	hasFaults bool
	faults    faults.State

	nextAddr       memsys.Addr
	numRegions     int
	accessesByKind [memsys.NumKinds]stats.Counter
	atomicsIssued  stats.Counter
	srcReads       stats.Counter
	iterations     stats.Counter
	lbHits         stats.Counter
	lbStores       stats.Counter
	parRegions     stats.Counter
	seqRegions     stats.Counter
	schedItems     stats.Counter
	vertexProfile  []uint64
	levelCount     [2 * memsys.NumLevels]uint64
	levelLatency   [2 * memsys.NumLevels]uint64
	fastEpoch      uint64
	pendingALU     uint64
	digests        []uint64
}

// Snapshot captures the complete machine state for a later Restore. It
// must be taken between parallel regions (the scheduling scratch holds no
// live state then); snapshotting mid-region would checkpoint a torn loop.
func (m *Machine) Snapshot() *MachineState {
	if m.sched.busy {
		panic("core: Snapshot inside a parallel region")
	}
	// Settle any fold window first: a checkpoint must capture fully
	// applied state, so MachineState needs no fold fields and a restored
	// machine starts with an empty window.
	m.flushFold()
	s := &MachineState{
		dir:            m.path.dir.Snapshot(),
		dram:           m.mem.Snapshot(),
		noc:            m.xbar.Snapshot(),
		pathAtomics:    m.path.atomics,
		pathDRAMWrites: m.path.dramWrites,
		pollAccum:      m.path.pollAccum,
		pollNext:       m.path.pollNext,
		pollution:      m.path.Pollution,
		prefetches:     m.path.Prefetches,
		nextAddr:       m.nextAddr,
		numRegions:     len(m.regions),
		accessesByKind: m.accessesByKind,
		atomicsIssued:  m.atomicsIssued,
		srcReads:       m.srcReads,
		iterations:     m.iterations,
		lbHits:         m.lbHits,
		lbStores:       m.lbStores,
		parRegions:     m.parRegions,
		seqRegions:     m.seqRegions,
		schedItems:     m.schedItems,
		levelCount:     m.levelCount,
		levelLatency:   m.levelLatency,
		fastEpoch:      m.fastEpoch,
		pendingALU:     m.pendingALU,
	}
	for _, c := range m.cores {
		s.cores = append(s.cores, c.Snapshot())
	}
	for _, c := range m.path.l1 {
		s.l1 = append(s.l1, c.Snapshot())
	}
	for _, c := range m.path.l2 {
		s.l2 = append(s.l2, c.Snapshot())
	}
	if m.omega != nil {
		s.hasOmega = true
		s.sp = m.omega.ctrl.Snapshot()
		for _, e := range m.omega.engines {
			s.engines = append(s.engines, e.Snapshot())
		}
		s.offloads = m.omega.offloads
		s.spAtomics = m.omega.spAtomics
		s.remoteReads = m.omega.remoteReads
	}
	if m.faults != nil {
		s.hasFaults = true
		s.faults = m.faults.Snapshot()
	}
	if m.vertexProfile != nil {
		s.vertexProfile = append([]uint64(nil), m.vertexProfile...)
	}
	if m.digests != nil {
		s.digests = append([]uint64(nil), m.digests...)
	}
	return s
}

// Restore rewinds the machine to a Snapshot taken from the same machine
// (same configuration, same component shapes). Regions allocated after the
// snapshot are released: the allocator cursor rewinds with the state, so
// the next allocations reproduce the snapshot-era addresses exactly.
func (m *Machine) Restore(s *MachineState) {
	if m.sched.busy {
		panic("core: Restore inside a parallel region")
	}
	if len(s.cores) != len(m.cores) || s.hasOmega != (m.omega != nil) {
		panic("core: Restore from a different machine shape")
	}
	// Discard, don't flush: deferred reads belong to the timeline being
	// abandoned, and the snapshot was taken with an empty window.
	m.resetFold()
	for i, c := range m.cores {
		c.Restore(s.cores[i])
	}
	for i, c := range m.path.l1 {
		c.Restore(s.l1[i])
	}
	for i, c := range m.path.l2 {
		c.Restore(s.l2[i])
	}
	m.path.dir.Restore(s.dir)
	m.mem.Restore(s.dram)
	m.xbar.Restore(s.noc)
	m.path.atomics = s.pathAtomics
	m.path.dramWrites = s.pathDRAMWrites
	m.path.pollAccum = s.pollAccum
	m.path.pollNext = s.pollNext
	m.path.Pollution = s.pollution
	m.path.Prefetches = s.prefetches
	if m.omega != nil {
		m.omega.ctrl.Restore(s.sp)
		for i, e := range m.omega.engines {
			e.Restore(s.engines[i])
		}
		m.omega.offloads = s.offloads
		m.omega.spAtomics = s.spAtomics
		m.omega.remoteReads = s.remoteReads
	}
	if m.faults != nil && s.hasFaults {
		m.faults.Restore(s.faults)
	}
	m.nextAddr = s.nextAddr
	m.regions = m.regions[:s.numRegions]
	m.accessesByKind = s.accessesByKind
	m.atomicsIssued = s.atomicsIssued
	m.srcReads = s.srcReads
	m.iterations = s.iterations
	m.lbHits = s.lbHits
	m.lbStores = s.lbStores
	m.parRegions = s.parRegions
	m.seqRegions = s.seqRegions
	m.schedItems = s.schedItems
	m.levelCount = s.levelCount
	m.levelLatency = s.levelLatency
	m.fastEpoch = s.fastEpoch
	m.pendingALU = s.pendingALU
	if m.vertexProfile != nil && s.vertexProfile != nil && len(m.vertexProfile) == len(s.vertexProfile) {
		copy(m.vertexProfile, s.vertexProfile)
	} else if s.vertexProfile != nil {
		m.vertexProfile = append([]uint64(nil), s.vertexProfile...)
	}
	m.digests = append(m.digests[:0], s.digests...)
}

// ReseedFaults re-keys the fault injector's PRNG streams with a salt
// (no-op when injection is disabled). Recovery re-executions use distinct
// salts so a retry does not deterministically replay the exact fault that
// killed the previous attempt.
func (m *Machine) ReseedFaults(salt uint64) {
	if m.faults != nil {
		m.faults.Reseed(salt)
	}
}

// EnableIterationDigests starts recording a StateDigest at every
// BeginIteration (clearing any previous trail). The trail costs one digest
// computation per iteration and touches no simulation state.
func (m *Machine) EnableIterationDigests() {
	m.digestsOn = true
	m.digests = m.digests[:0]
}

// DigestTrail returns the recorded per-iteration digests (index i is the
// digest at the start of iteration i+1). Comparing a faulty run's trail
// against a clean run's locates the first diverging iteration.
func (m *Machine) DigestTrail() []uint64 {
	return append([]uint64(nil), m.digests...)
}

// StateDigest folds the machine's timing-visible state into one FNV-1a
// hash: core clocks and instruction counts, cache generations and probe
// counters, directory occupancy, DRAM/NoC totals, and the machine-level
// access counters. Two runs with equal digests at an iteration boundary
// have (with overwhelming probability) identical simulated histories up to
// that point; a mismatch pins the first corrupted iteration.
func (m *Machine) StateDigest() uint64 {
	m.flushFold()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, c := range m.cores {
		mix(uint64(c.Clock()))
		mix(c.Instructions())
	}
	for _, c := range m.path.l1 {
		mix(c.Gen())
		mix(c.Reads.Hits)
		mix(c.Reads.Total)
	}
	mix(uint64(m.path.dir.Lines()))
	mix(m.mem.Accesses.Value())
	mix(m.mem.BytesMoved.Value())
	mix(m.xbar.TotalBytes())
	mix(m.atomicsIssued.Value())
	mix(m.iterations.Value())
	return h
}
