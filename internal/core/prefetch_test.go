package core

import (
	"testing"

	"omega/internal/memsys"
)

// streamRead walks a region sequentially on one core.
func streamRead(m *Machine, r *Region) MachineStats {
	m.Sequential(func(ctx *Ctx) {
		for i := 0; i < r.Count; i++ {
			ctx.Read(r, i)
		}
	})
	return m.Stats()
}

func TestPrefetcherReducesStreamMisses(t *testing.T) {
	mk := func(prefetch bool) MachineStats {
		cfg := testBaseline()
		cfg.L1Prefetch = prefetch
		cfg.LLCPollution = 0
		m := NewMachine(cfg)
		r := m.Alloc("stream", 64<<10/4, 4, memsys.KindEdgeList)
		return streamRead(m, r)
	}
	off := mk(false)
	on := mk(true)
	if on.L1HitRate <= off.L1HitRate {
		t.Fatalf("prefetcher should raise stream L1 hit rate: %.3f vs %.3f",
			on.L1HitRate, off.L1HitRate)
	}
	if on.Cycles >= off.Cycles {
		t.Fatalf("prefetcher should speed up streaming: %d vs %d", on.Cycles, off.Cycles)
	}
}

func TestPrefetcherIgnoresRandomVtxProp(t *testing.T) {
	cfg := testBaseline()
	cfg.L1Prefetch = true
	cfg.LLCPollution = 0
	m := NewMachine(cfg)
	r := m.Alloc("props", 4096, 8, memsys.KindVtxProp)
	m.Sequential(func(ctx *Ctx) {
		for i := 0; i < 2000; i++ {
			ctx.Read(r, (i*2654435761)%4096)
		}
	})
	if got := m.path.Prefetches.Value(); got != 0 {
		t.Fatalf("vtxProp accesses must not trigger the stream prefetcher: %d", got)
	}
}

func TestPrefetchCounted(t *testing.T) {
	cfg := testBaseline()
	cfg.L1Prefetch = true
	cfg.LLCPollution = 0
	m := NewMachine(cfg)
	r := m.Alloc("stream", 4096, 4, memsys.KindEdgeList)
	streamRead(m, r)
	if m.path.Prefetches.Value() == 0 {
		t.Fatal("streaming should issue prefetches")
	}
}

func TestPrefetchDefaultOff(t *testing.T) {
	// Table III lists no prefetcher; the default configurations must not
	// enable one.
	if Baseline().L1Prefetch || OMEGA().L1Prefetch {
		t.Fatal("prefetcher must default off")
	}
	b, o := ScaledPair(4096, 8, 0.2)
	if b.L1Prefetch || o.L1Prefetch {
		t.Fatal("scaled machines must not enable the prefetcher")
	}
}
