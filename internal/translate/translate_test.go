package translate

import (
	"strings"
	"testing"

	"omega/internal/pisc"
)

var ssspProps = []PropDecl{
	{Name: "ShortestLen", TypeSize: 4},
	{Name: "Visited", TypeSize: 4},
}

const ssspSrc = `
// Figure 10 of the paper.
//@omega update
void update(int s, int d, int edgeLen) {
    newShortestLen = ShortestLen[s] + edgeLen;
    ShortestLen[d] = min(ShortestLen[d], newShortestLen);
    Visited[d] = 1;
}
`

func TestTranslateSSSP(t *testing.T) {
	tr, err := Translate(ssspSrc, ssspProps, true, true)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if tr.FuncName != "update" {
		t.Fatalf("func name %q", tr.FuncName)
	}
	if tr.Op != pisc.OpSignedMin {
		t.Fatalf("op %v, want signed-min", tr.Op)
	}
	if tr.DstProp != "ShortestLen" {
		t.Fatalf("dst %q", tr.DstProp)
	}
	if len(tr.SrcProps) != 1 || tr.SrcProps[0] != "ShortestLen" {
		t.Fatalf("src props %v", tr.SrcProps)
	}
}

func TestTranslateSSSPGeneratesFigure13Code(t *testing.T) {
	tr, err := Translate(ssspSrc, ssspProps, true, true)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tr.UpdateCode, "\n")
	if !strings.Contains(joined, "OMEGA_MMREG1") || !strings.Contains(joined, "OMEGA_MMREG2") {
		t.Fatalf("Figure 13 memory-mapped stores missing:\n%s", joined)
	}
	cfg := strings.Join(tr.ConfigCode, "\n")
	for _, want := range []string{"OMEGA_OPTYPE", "OMEGA_MICROCODE[0]",
		"start_addr, &ShortestLen[0]", "type_size, 4"} {
		if !strings.Contains(cfg, want) {
			t.Fatalf("config code missing %q:\n%s", want, cfg)
		}
	}
}

func TestTranslatePageRank(t *testing.T) {
	src := `
//@omega update
void prUpdate(int s, int d) {
    next_pagerank[d] += curr_contrib[s];
}
`
	props := []PropDecl{{Name: "next_pagerank", TypeSize: 8}}
	tr, err := Translate(src, props, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Op != pisc.OpFPAdd {
		t.Fatalf("8-byte += should be fp-add, got %v", tr.Op)
	}
	if tr.DstProp != "next_pagerank" {
		t.Fatalf("dst %q", tr.DstProp)
	}
}

func TestTranslateIntegerAdd(t *testing.T) {
	src := `
//@omega update
void kc(int s, int d) {
    Degrees[d] += delta;
}
`
	tr, err := Translate(src, []PropDecl{{Name: "Degrees", TypeSize: 4}}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Op != pisc.OpSignedAdd {
		t.Fatalf("4-byte += should be signed-add, got %v", tr.Op)
	}
}

func TestTranslateBFSCAS(t *testing.T) {
	src := `
//@omega update
void bfs(int s, int d) {
    if (Parents[d] == UNSET) Parents[d] = s;
}
`
	tr, err := Translate(src, []PropDecl{{Name: "Parents", TypeSize: 4}}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Op != pisc.OpUnsignedCompareSwap {
		t.Fatalf("CAS pattern should map to unsigned-cas, got %v", tr.Op)
	}
}

func TestTranslateOr(t *testing.T) {
	src := `
//@omega update
void radii(int s, int d) {
    NextVisited[d] |= Visited[s];
}
`
	props := []PropDecl{{Name: "NextVisited", TypeSize: 4}, {Name: "Visited", TypeSize: 4}}
	tr, err := Translate(src, props, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Op != pisc.OpOr {
		t.Fatalf("|= should be or, got %v", tr.Op)
	}
	if len(tr.SrcProps) != 1 || tr.SrcProps[0] != "Visited" {
		t.Fatalf("src props %v", tr.SrcProps)
	}
}

func TestTranslateMicrocodeTracksActiveList(t *testing.T) {
	tr, err := Translate(ssspSrc, ssspProps, true, true)
	if err != nil {
		t.Fatal(err)
	}
	hasDense, hasSparse := false, false
	for _, s := range tr.Microcode.Steps {
		if s == pisc.USetActiveDense {
			hasDense = true
		}
		if s == pisc.UAppendActiveSparse {
			hasSparse = true
		}
	}
	if !hasDense || !hasSparse {
		t.Fatal("active-list microcode steps missing")
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []struct {
		name, src string
		props     []PropDecl
	}{
		{"no annotation", `void f() {}`, nil},
		{"no function", "//@omega update\nint x;", nil},
		{"no update", "//@omega update\nvoid f(int s, int d) { x = 1; }", nil},
		{"mismatched combiner", "//@omega update\nvoid f(int s, int d) { A[d] = min(B[d], 1); }",
			[]PropDecl{{Name: "A", TypeSize: 4}, {Name: "B", TypeSize: 4}}},
		{"undeclared prop", "//@omega update\nvoid f(int s, int d) { X[d] += 1; }", nil},
		{"unsupported combiner", "//@omega update\nvoid f(int s, int d) { A[d] = max(A[d], 1); }",
			[]PropDecl{{Name: "A", TypeSize: 4}}},
	}
	for _, c := range cases {
		if _, err := Translate(c.src, c.props, false, false); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestTranslationMatchesAlgorithmMicrocode(t *testing.T) {
	// The end-to-end §V.F claim: the tool's generated microcode for the
	// Figure 10 SSSP update equals the routine the SSSP implementation
	// loads into the PISCs.
	tr, err := Translate(ssspSrc, ssspProps, true, true)
	if err != nil {
		t.Fatal(err)
	}
	want := pisc.StandardMicrocode("sssp-update", pisc.OpSignedMin, true, true)
	if tr.Microcode.Op != want.Op {
		t.Fatalf("op %v, want %v", tr.Microcode.Op, want.Op)
	}
	if len(tr.Microcode.Steps) != len(want.Steps) {
		t.Fatalf("steps %v, want %v", tr.Microcode.Steps, want.Steps)
	}
	for i := range want.Steps {
		if tr.Microcode.Steps[i] != want.Steps[i] {
			t.Fatalf("step %d: %v, want %v", i, tr.Microcode.Steps[i], want.Steps[i])
		}
	}
	if tr.Microcode.Latency(3) != want.Latency(3) {
		t.Fatal("latency model disagrees")
	}
}

func TestRender(t *testing.T) {
	tr, err := Translate(ssspSrc, ssspProps, true, true)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Render()
	for _, want := range []string{"configuration", "per-edge update", "signed-min"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}
