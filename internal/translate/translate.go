// Package translate is the lightweight source-to-source translation tool
// of paper §V.F: it parses a pre-annotated "update" function (the mini-DSL
// of Figure 10) and generates (a) the PISC microcode store sequence and
// (b) the OMEGA configuration code (monitor registers, optype) that the
// framework executes at application start — the Figure 13 output.
//
// The accepted input is a small C-like annotated function:
//
//	//@omega update
//	void update(int s, int d, int edgeLen) {
//	    newShortestLen = ShortestLen[s] + edgeLen;
//	    ShortestLen[d] = min(ShortestLen[d], newShortestLen);
//	    Visited[d] = 1;
//	}
//
// The translator recognizes the per-destination update statement
// (`Prop[d] = op(Prop[d], expr)` or `Prop[d] += expr` / `|= expr`),
// classifies the atomic operation, and emits the stores.
package translate

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"omega/internal/pisc"
)

// PropDecl describes one vtxProp referenced by the update function.
type PropDecl struct {
	Name     string
	TypeSize int // bytes; inferred from the declared type
}

// Translation is the tool's output for one update function.
type Translation struct {
	// FuncName is the annotated function's name.
	FuncName string
	// Op is the classified atomic operation.
	Op pisc.Op
	// DstProp is the vtxProp updated atomically (the offload target).
	DstProp string
	// SrcProps are vtxProps read on the source side (buffer-eligible).
	SrcProps []string
	// Microcode is the generated routine.
	Microcode pisc.Microcode
	// ConfigCode is the generated configuration store sequence
	// (Figure 13 style, one store per line).
	ConfigCode []string
	// UpdateCode is the translated per-edge code: stores to the
	// memory-mapped offload registers.
	UpdateCode []string
}

var (
	annotationRe = regexp.MustCompile(`(?m)^\s*//@omega\s+update\s*$`)
	funcRe       = regexp.MustCompile(`(?ms)^\s*\w[\w\s\*]*\s+(\w+)\s*\(([^)]*)\)\s*\{(.*?)^\s*\}`)
	// Prop[d] = min(Prop[d], expr) / max / or-style calls.
	callUpdateRe = regexp.MustCompile(`(\w+)\s*\[\s*d\s*\]\s*=\s*(\w+)\s*\(\s*(\w+)\s*\[\s*d\s*\]\s*,\s*(.+?)\s*\)\s*;`)
	// Prop[d] += expr; Prop[d] |= expr.
	opAssignRe = regexp.MustCompile(`(\w+)\s*\[\s*d\s*\]\s*(\+|\|)=\s*(.+?)\s*;`)
	// Prop[s] reads.
	srcReadRe = regexp.MustCompile(`(\w+)\s*\[\s*s\s*\]`)
	// CAS-style: if (Prop[d] == UNSET) Prop[d] = expr;
	casRe = regexp.MustCompile(`if\s*\(\s*(\w+)\s*\[\s*d\s*\]\s*==\s*(\w+)\s*\)\s*(\w+)\s*\[\s*d\s*\]\s*=\s*(.+?)\s*;`)
)

// Error is a translation failure with position context.
type Error struct {
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return "translate: " + e.Msg }

// Translate parses annotated source and translates the first annotated
// update function.
func Translate(src string, props []PropDecl, trackDense, trackSparse bool) (*Translation, error) {
	loc := annotationRe.FindStringIndex(src)
	if loc == nil {
		return nil, &Error{"no //@omega update annotation found"}
	}
	rest := src[loc[1]:]
	fm := funcRe.FindStringSubmatch(rest)
	if fm == nil {
		return nil, &Error{"no function definition after annotation"}
	}
	name, body := fm[1], fm[3]

	t := &Translation{FuncName: name}
	propSize := map[string]int{}
	for _, p := range props {
		propSize[p.Name] = p.TypeSize
	}
	isProp := func(id string) bool { _, ok := propSize[id]; return ok }

	// Classify the destination update.
	switch {
	case callUpdateRe.MatchString(body):
		m := callUpdateRe.FindStringSubmatch(body)
		if m[1] != m[3] {
			return nil, &Error{fmt.Sprintf("update writes %s but reads %s", m[1], m[3])}
		}
		if !isProp(m[1]) {
			return nil, &Error{fmt.Sprintf("%s is not a declared vtxProp", m[1])}
		}
		t.DstProp = m[1]
		switch m[2] {
		case "min":
			t.Op = pisc.OpSignedMin
		case "or":
			t.Op = pisc.OpOr
		default:
			return nil, &Error{fmt.Sprintf("unsupported combiner %q", m[2])}
		}
	case opAssignRe.MatchString(body):
		m := opAssignRe.FindStringSubmatch(body)
		if !isProp(m[1]) {
			return nil, &Error{fmt.Sprintf("%s is not a declared vtxProp", m[1])}
		}
		t.DstProp = m[1]
		switch m[2] {
		case "+":
			// Float props use the FP adder; 8-byte props are doubles in
			// the workloads we support.
			if propSize[m[1]] == 8 {
				t.Op = pisc.OpFPAdd
			} else {
				t.Op = pisc.OpSignedAdd
			}
		case "|":
			t.Op = pisc.OpOr
		}
	case casRe.MatchString(body):
		m := casRe.FindStringSubmatch(body)
		if m[1] != m[3] {
			return nil, &Error{fmt.Sprintf("CAS checks %s but writes %s", m[1], m[3])}
		}
		if !isProp(m[1]) {
			return nil, &Error{fmt.Sprintf("%s is not a declared vtxProp", m[1])}
		}
		t.DstProp = m[1]
		t.Op = pisc.OpUnsignedCompareSwap
	default:
		return nil, &Error{"no recognizable atomic update of a vtxProp[d] found"}
	}

	// Collect source-side reads.
	seen := map[string]bool{}
	for _, m := range srcReadRe.FindAllStringSubmatch(body, -1) {
		if isProp(m[1]) && !seen[m[1]] {
			seen[m[1]] = true
			t.SrcProps = append(t.SrcProps, m[1])
		}
	}
	sort.Strings(t.SrcProps)

	t.Microcode = pisc.StandardMicrocode(name, t.Op, trackDense, trackSparse)
	t.ConfigCode = configCode(t, props)
	t.UpdateCode = updateCode(t)
	return t, nil
}

// configCode emits the startup store sequence: microcode registers, the
// optype, and one monitor-register triple per vtxProp (§V.F).
func configCode(t *Translation, props []PropDecl) []string {
	var out []string
	out = append(out, fmt.Sprintf("store OMEGA_OPTYPE, %s", t.Op))
	for i, step := range t.Microcode.Steps {
		out = append(out, fmt.Sprintf("store OMEGA_MICROCODE[%d], %s", i, microOpName(step)))
	}
	for i, p := range props {
		out = append(out,
			fmt.Sprintf("store OMEGA_MON[%d].start_addr, &%s[0]", i, p.Name),
			fmt.Sprintf("store OMEGA_MON[%d].type_size, %d", i, p.TypeSize),
			fmt.Sprintf("store OMEGA_MON[%d].stride, %d", i, p.TypeSize),
		)
	}
	return out
}

// updateCode emits the translated per-edge body (Figure 13): the computed
// operand goes to memory-mapped register 1, the destination vertex ID to
// register 2, which triggers the offload.
func updateCode(t *Translation) []string {
	operand := "operand"
	if len(t.SrcProps) > 0 {
		operand = fmt.Sprintf("compute(%s[s], edge)", strings.Join(t.SrcProps, "[s], "))
	}
	return []string{
		fmt.Sprintf("store OMEGA_MMREG1, %s", operand),
		"store OMEGA_MMREG2, d  // triggers offload to home PISC",
	}
}

func microOpName(u pisc.MicroOp) string {
	switch u {
	case pisc.UReadSP:
		return "READ_SP"
	case pisc.UALU:
		return "ALU"
	case pisc.UWriteSP:
		return "WRITE_SP"
	case pisc.USetActiveDense:
		return "SET_ACTIVE_DENSE"
	case pisc.UAppendActiveSparse:
		return "APPEND_ACTIVE_SPARSE"
	}
	return fmt.Sprintf("UOP(%d)", uint8(u))
}

// Render prints the whole translation in the Figure 13 style.
func (t *Translation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// translated from %s: op=%s dst=%s src=%v\n",
		t.FuncName, t.Op, t.DstProp, t.SrcProps)
	b.WriteString("// --- configuration (run at application start) ---\n")
	for _, l := range t.ConfigCode {
		b.WriteString(l + "\n")
	}
	b.WriteString("// --- per-edge update (replaces the annotated body) ---\n")
	for _, l := range t.UpdateCode {
		b.WriteString(l + "\n")
	}
	return b.String()
}
