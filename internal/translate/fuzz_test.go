package translate

import "testing"

// FuzzTranslate: arbitrary annotated source must either translate or
// return an error — never panic — and a successful translation always
// carries a destination property and non-empty generated code.
func FuzzTranslate(f *testing.F) {
	f.Add(ssspSrc)
	f.Add("//@omega update\nvoid f(int s, int d) { A[d] += B[s]; }")
	f.Add("//@omega update\nvoid f() {}")
	f.Add("")
	f.Add("//@omega update\nvoid f(int s, int d) { if (P[d] == U) P[d] = s; }")
	props := []PropDecl{
		{Name: "A", TypeSize: 8},
		{Name: "B", TypeSize: 4},
		{Name: "P", TypeSize: 4},
		{Name: "ShortestLen", TypeSize: 4},
		{Name: "Visited", TypeSize: 4},
	}
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Translate(src, props, true, true)
		if err != nil {
			return
		}
		if tr.DstProp == "" {
			t.Fatal("translation without a destination property")
		}
		if len(tr.ConfigCode) == 0 || len(tr.UpdateCode) == 0 {
			t.Fatal("translation produced no code")
		}
		if tr.Render() == "" {
			t.Fatal("empty render")
		}
	})
}
