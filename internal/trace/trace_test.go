package trace

import (
	"strings"
	"testing"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph/gen"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
	"omega/internal/memsys"
)

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector(2)
	a := memsys.Access{Core: 1, Kind: memsys.KindVtxProp, Op: memsys.OpAtomic}
	r := memsys.Result{Latency: 100, Level: memsys.LevelL2Plus, Blocking: true}
	for i := 0; i < 5; i++ {
		c.Record(memsys.Cycles(i), a, r)
	}
	if len(c.Events()) != 2 {
		t.Fatalf("retained %d events, cap 2", len(c.Events()))
	}
	rows := c.Summary()
	if len(rows) != 1 || rows[0].Count != 5 || rows[0].AvgLatency != 100 {
		t.Fatalf("summary %+v", rows)
	}
	if q := c.LatencyQuantile(memsys.KindVtxProp, 0.5); q < 64 || q > 128 {
		t.Fatalf("median bucket %d", q)
	}
	if c.LatencyQuantile(memsys.KindEdgeList, 0.5) != 0 {
		t.Fatal("unseen kind should report 0")
	}
}

func TestCollectorRendering(t *testing.T) {
	c := NewCollector(10)
	c.Record(1, memsys.Access{Kind: memsys.KindEdgeList, Op: memsys.OpRead},
		memsys.Result{Latency: 1, Level: memsys.LevelL1})
	var sum, tsv strings.Builder
	if err := c.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "edgeList") || !strings.Contains(sum.String(), "L1") {
		t.Fatalf("summary:\n%s", sum.String())
	}
	if err := c.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv.String(), "edgeList\tread\tL1\t1") {
		t.Fatalf("tsv:\n%s", tsv.String())
	}
}

func TestTracedSimulation(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 7))
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
	spec, _ := algorithms.ByName("PageRank")
	_, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, 0.2)
	m := core.NewMachine(omCfg)
	col := NewCollector(1000)
	m.AttachSink(col)
	st := spec.Run(ligra.New(m, g))

	// The trace must account for exactly the accesses the machine counted.
	var total uint64
	for _, r := range col.Summary() {
		total += r.Count
	}
	if total != st.TotalAccesses() {
		t.Fatalf("trace saw %d accesses, machine counted %d", total, st.TotalAccesses())
	}
	// PageRank on OMEGA must show PISC-served vtxProp atomics.
	foundPISC := false
	for _, r := range col.Summary() {
		if r.Kind == memsys.KindVtxProp && r.Level == "PISC" {
			foundPISC = true
		}
	}
	if !foundPISC {
		t.Fatal("no PISC-served accesses in the trace")
	}
	if len(col.Events()) != 1000 {
		t.Fatalf("event cap not honored: %d", len(col.Events()))
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 7))
	spec, _ := algorithms.ByName("PageRank")
	_, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, 0.2)
	m := core.NewMachine(omCfg)
	// No sink attached: must simply run.
	spec.Run(ligra.New(m, g))
}
