// Package trace captures per-access event streams from a simulated
// machine for offline analysis: which data structure was touched, which
// hierarchy level served it, and what it cost. Traces power the
// cmd/omega-trace inspection tool and ad-hoc studies that the aggregate
// MachineStats cannot answer (e.g. latency distributions per access kind).
package trace

import (
	"fmt"
	"io"
	"sort"

	"omega/internal/memsys"
	"omega/internal/stats"
)

// Event is one recorded access.
type Event struct {
	// Cycle is the issuing core's local clock at issue time.
	Cycle memsys.Cycles
	// Core is the issuing core.
	Core int
	// Kind/Op classify the access.
	Kind memsys.Kind
	Op   memsys.Op
	// Level is the hierarchy level that served it.
	Level memsys.Level
	// Latency is the modeled completion latency.
	Latency memsys.Cycles
	// Blocking/Offloaded mirror the timing outcome.
	Blocking  bool
	Offloaded bool
}

// Collector accumulates events in memory (bounded) and aggregates
// per-(kind, level) statistics unboundedly. It implements core.Tracer.
// Aggregation indexes dense (Kind, Level) enum arrays, so recording an
// access allocates nothing once the event buffer is full.
type Collector struct {
	// MaxEvents bounds the retained raw events (0 = keep none, aggregate
	// only).
	MaxEvents int

	events []Event
	agg    [memsys.NumKinds][memsys.NumLevels]aggVal
	hist   [memsys.NumKinds]*stats.Histogram
}

type aggVal struct {
	count   uint64
	latency uint64
}

// NewCollector builds a collector retaining up to maxEvents raw events.
func NewCollector(maxEvents int) *Collector {
	return &Collector{MaxEvents: maxEvents}
}

// Record implements the machine's tracer hook.
func (c *Collector) Record(now memsys.Cycles, a memsys.Access, r memsys.Result) {
	if len(c.events) < c.MaxEvents {
		c.events = append(c.events, Event{
			Cycle: now, Core: a.Core, Kind: a.Kind, Op: a.Op,
			Level: r.Level, Latency: r.Latency,
			Blocking: r.Blocking, Offloaded: r.Offloaded,
		})
	}
	v := &c.agg[a.Kind][r.Level]
	v.count++
	v.latency += uint64(r.Latency)
	h := c.hist[a.Kind]
	if h == nil {
		h = stats.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
		c.hist[a.Kind] = h
	}
	h.Observe(uint64(r.Latency))
}

// Events returns the retained raw events.
func (c *Collector) Events() []Event { return c.events }

// Row is one aggregate line of the summary.
type Row struct {
	Kind       memsys.Kind
	Level      string
	Count      uint64
	AvgLatency float64
}

// Summary returns per-(kind, level) aggregates sorted by descending count.
func (c *Collector) Summary() []Row {
	var rows []Row
	for kind := range c.agg {
		for level := range c.agg[kind] {
			v := c.agg[kind][level]
			if v.count == 0 {
				continue
			}
			rows = append(rows, Row{
				Kind:       memsys.Kind(kind),
				Level:      memsys.Level(level).String(),
				Count:      v.count,
				AvgLatency: float64(v.latency) / float64(v.count),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Level < rows[j].Level
	})
	return rows
}

// LatencyQuantile returns the q-quantile latency estimate for one access
// kind (0 when the kind was never observed).
func (c *Collector) LatencyQuantile(kind memsys.Kind, q float64) uint64 {
	h := c.hist[kind]
	if h == nil {
		return 0
	}
	return h.Quantile(q)
}

// WriteSummary renders the aggregate table.
func (c *Collector) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-11s %10s %10s %9s %9s\n",
		"kind", "level", "count", "avg-lat", "kind-p50", "kind-p99"); err != nil {
		return err
	}
	for _, r := range c.Summary() {
		if _, err := fmt.Fprintf(w, "%-12s %-11s %10d %10.1f %9d %9d\n",
			r.Kind, r.Level, r.Count, r.AvgLatency,
			c.LatencyQuantile(r.Kind, 0.5), c.LatencyQuantile(r.Kind, 0.99)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV dumps the retained raw events as tab-separated values.
func (c *Collector) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle\tcore\tkind\top\tlevel\tlatency\tblocking\toffloaded"); err != nil {
		return err
	}
	for _, e := range c.events {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\t%d\t%v\t%v\n",
			e.Cycle, e.Core, e.Kind, e.Op, e.Level, e.Latency,
			e.Blocking, e.Offloaded); err != nil {
			return err
		}
	}
	return nil
}
