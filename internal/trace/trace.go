// Package trace captures per-access event streams from a simulated
// machine for offline analysis: which data structure was touched, which
// hierarchy level served it, and what it cost. Traces power the
// cmd/omega-trace inspection tool and ad-hoc studies that the aggregate
// MachineStats cannot answer (e.g. latency distributions per access kind).
package trace

import (
	"fmt"
	"io"
	"sort"

	"omega/internal/memsys"
	"omega/internal/obs"
)

// Event is one recorded access.
type Event struct {
	// Cycle is the issuing core's local clock at issue time.
	Cycle memsys.Cycles
	// Core is the issuing core.
	Core int
	// Kind/Op classify the access.
	Kind memsys.Kind
	Op   memsys.Op
	// Level is the hierarchy level that served it.
	Level memsys.Level
	// Latency is the modeled completion latency.
	Latency memsys.Cycles
	// Blocking/Offloaded mirror the timing outcome.
	Blocking  bool
	Offloaded bool
}

// Collector accumulates events in memory (bounded) and aggregates
// per-(kind, level) statistics unboundedly. It is an obs.AccessSink:
// attach it with Machine.AttachSink to receive the per-access firehose.
// Aggregation delegates to obs.AccessAgg's dense (Kind, Level) enum
// arrays, so recording an access allocates nothing once the event buffer
// is full.
type Collector struct {
	// MaxEvents bounds the retained raw events (0 = keep none, aggregate
	// only).
	MaxEvents int

	events []Event
	agg    obs.AccessAgg
}

// NewCollector builds a collector retaining up to maxEvents raw events.
func NewCollector(maxEvents int) *Collector {
	return &Collector{MaxEvents: maxEvents}
}

// Sample implements obs.Sink. Iteration-boundary samples are dropped:
// the collector consumes the access stream only, and composes with a
// series emitter via obs.Tee when both are wanted.
func (c *Collector) Sample(obs.MetricSample) {}

// Access implements obs.AccessSink by recording the access.
func (c *Collector) Access(now memsys.Cycles, a memsys.Access, r memsys.Result) {
	c.Record(now, a, r)
}

// Record folds one access into the trace (the Access hook's
// implementation, callable directly by tests and replay tooling).
func (c *Collector) Record(now memsys.Cycles, a memsys.Access, r memsys.Result) {
	if len(c.events) < c.MaxEvents {
		c.events = append(c.events, Event{
			Cycle: now, Core: a.Core, Kind: a.Kind, Op: a.Op,
			Level: r.Level, Latency: r.Latency,
			Blocking: r.Blocking, Offloaded: r.Offloaded,
		})
	}
	c.agg.Observe(a, r)
}

// Events returns the retained raw events.
func (c *Collector) Events() []Event { return c.events }

// Row is one aggregate line of the summary.
type Row struct {
	Kind       memsys.Kind
	Level      string
	Count      uint64
	AvgLatency float64
}

// Summary returns per-(kind, level) aggregates sorted by descending count.
func (c *Collector) Summary() []Row {
	var rows []Row
	for kind := memsys.Kind(0); kind < memsys.NumKinds; kind++ {
		for level := memsys.Level(0); level < memsys.NumLevels; level++ {
			v := c.agg.Cell(kind, level)
			if v.Count == 0 {
				continue
			}
			rows = append(rows, Row{
				Kind:       kind,
				Level:      level.String(),
				Count:      v.Count,
				AvgLatency: v.AvgLatency(),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Level < rows[j].Level
	})
	return rows
}

// LatencyQuantile returns the q-quantile latency estimate for one access
// kind (0 when the kind was never observed).
func (c *Collector) LatencyQuantile(kind memsys.Kind, q float64) uint64 {
	return c.agg.Quantile(kind, q)
}

// WriteSummary renders the aggregate table.
func (c *Collector) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-11s %10s %10s %9s %9s\n",
		"kind", "level", "count", "avg-lat", "kind-p50", "kind-p99"); err != nil {
		return err
	}
	for _, r := range c.Summary() {
		if _, err := fmt.Fprintf(w, "%-12s %-11s %10d %10.1f %9d %9d\n",
			r.Kind, r.Level, r.Count, r.AvgLatency,
			c.LatencyQuantile(r.Kind, 0.5), c.LatencyQuantile(r.Kind, 0.99)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSV dumps the retained raw events as tab-separated values.
func (c *Collector) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle\tcore\tkind\top\tlevel\tlatency\tblocking\toffloaded"); err != nil {
		return err
	}
	for _, e := range c.events {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\t%d\t%v\t%v\n",
			e.Cycle, e.Core, e.Kind, e.Op, e.Level, e.Latency,
			e.Blocking, e.Offloaded); err != nil {
			return err
		}
	}
	return nil
}
