package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
	"omega/internal/stats"
)

// RadiiResult carries the functional output of the simulated Radii
// estimation.
type RadiiResult struct {
	// Radii[v] is the largest distance from any sampled source to v
	// (-1 when no sampled source reaches v).
	Radii []int64
	// Estimate is the graph radius estimate: max over vertices.
	Estimate int64
	// Sources are the sampled source vertices.
	Sources []uint32
}

// Radii estimates the graph radius with Ligra's multi-BFS: sampleSize
// sources traverse simultaneously, each owning one bit of a Visited
// bitmask vtxProp; a vertex's radius estimate is the round in which its
// mask last grew. Three vtxProps (Visited, NextVisited, Radii — Table II:
// 12 bytes) with OR and signed-min atomics. The paper uses a sample size
// of 16.
func Radii(fw *ligra.Framework, sampleSize int, seed uint64) *RadiiResult {
	g := fw.Graph()
	n := g.NumVertices()
	if sampleSize > 32 {
		sampleSize = 32 // bits in the 4-byte Visited entry
	}
	if sampleSize > n {
		sampleSize = n
	}

	visited := fw.NewProp("Visited", 4, pisc.Value(0))
	nextVisited := fw.NewProp("NextVisited", 4, pisc.Value(0))
	radii := fw.NewProp("Radii", 4, pisc.IntValue(-1))
	fw.Configure(pisc.StandardMicrocode("radii-update", pisc.OpOr, true, true))

	r := stats.NewRand(seed)
	perm := r.Perm(n)
	sources := make([]uint32, sampleSize)
	for i := 0; i < sampleSize; i++ {
		sources[i] = uint32(perm[i])
		visited.Raw()[sources[i]] |= pisc.Value(1) << uint(i)
		radii.Raw()[sources[i]] = pisc.IntValue(0)
	}

	frontier := fw.NewVertexSubsetSparse(sources)
	round := int64(0)
	for !frontier.IsEmpty() {
		round++
		rv := round
		fns := ligra.EdgeMapFns{
			UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
				mask := visited.GetSrc(ctx, s)
				if !nextVisited.AtomicUpdate(ctx, d, pisc.OpOr, mask) {
					return false
				}
				// The mask grew: the radius estimate extends to this
				// round. Multiple writers agree on the value.
				radii.Set(ctx, d, pisc.IntValue(rv))
				return true
			},
			Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
				mask := visited.GetSrc(ctx, s)
				if !nextVisited.Update(ctx, d, pisc.OpOr, mask) {
					return false
				}
				radii.Set(ctx, d, pisc.IntValue(rv))
				return true
			},
		}
		// Seed NextVisited with Visited for the frontier's neighbors'
		// comparison base: copy for all vertices (vertexMap).
		fw.ForAllVertices(func(ctx *core.Ctx, v uint32) {
			nv := visited.Get(ctx, v)
			if nextVisited.Value(v) != nv {
				nextVisited.Set(ctx, v, nv|nextVisited.Value(v))
			}
		})
		frontier = fw.EdgeMap(frontier, fns, ligra.Auto)
		// Fold NextVisited back into Visited for the next round.
		fw.ForAllVertices(func(ctx *core.Ctx, v uint32) {
			nv := nextVisited.Get(ctx, v)
			if visited.Value(v) != nv {
				visited.Set(ctx, v, nv)
			}
		})
		if round > int64(n)+1 {
			panic("radii: did not converge")
		}
	}
	res := &RadiiResult{
		Sources: sources,
		Radii:   make([]int64, n),
	}
	for v := range res.Radii {
		res.Radii[v] = radii.Value(uint32(v)).Int()
		if res.Radii[v] > res.Estimate {
			res.Estimate = res.Radii[v]
		}
	}
	return res
}

// ReferenceRadii computes, for the given sources, each vertex's maximum
// distance from any source that reaches it (-1 if none do).
func ReferenceRadii(g *graph.Graph, sources []uint32) []int64 {
	n := g.NumVertices()
	out := make([]int64, n)
	for i := range out {
		out[i] = -1
	}
	for _, s := range sources {
		dist := ReferenceBFS(g, s)
		for v, d := range dist {
			if d != ^uint32(0) && int64(d) > out[v] {
				out[v] = int64(d)
			}
		}
	}
	return out
}
