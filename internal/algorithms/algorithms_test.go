package algorithms

import (
	"math"
	"testing"

	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/graph/gen"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
)

// testMachines returns a scaled (baseline, omega) machine pair for g.
func testMachines(g *graph.Graph, bytesPerVertex int) (*core.Machine, *core.Machine) {
	b, o := core.ScaledPair(g.NumVertices(), bytesPerVertex, 0.20)
	return core.NewMachine(b), core.NewMachine(o)
}

// directedTestGraph is an in-degree-reordered RMAT graph.
func directedTestGraph(tb testing.TB, scale int) *graph.Graph {
	tb.Helper()
	g := gen.RMAT(gen.DefaultRMAT(scale, 11))
	return reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
}

func undirectedTestGraph(tb testing.TB, scale int) *graph.Graph {
	tb.Helper()
	cfg := gen.DefaultRMAT(scale, 12)
	cfg.Undirected = true
	g := gen.RMAT(cfg)
	return reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
}

func weightedTestGraph(tb testing.TB, scale int) *graph.Graph {
	tb.Helper()
	cfg := gen.DefaultRMAT(scale, 13)
	cfg.Weighted = true
	g := gen.RMAT(cfg)
	return reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
}

func TestPageRankMatchesReferenceOnBothMachines(t *testing.T) {
	g := directedTestGraph(t, 9)
	want := ReferencePageRank(g, 2, 0.85)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := PageRank(fw, Params{Iterations: 2, Damping: 0.85})
		if res.Iterations != 2 {
			t.Fatalf("%s: iterations = %d", m.Config().Name, res.Iterations)
		}
		for v := range want {
			if math.Abs(res.Ranks[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: rank[%d] = %v, want %v", m.Config().Name, v, res.Ranks[v], want[v])
			}
		}
	}
}

func TestPageRankRanksSumToOne(t *testing.T) {
	g := directedTestGraph(t, 8)
	// With damping redistributed uniformly, total rank stays 1 only when
	// every vertex has out-degree > 0; RMAT has sinks, so just check the
	// ranks are positive and finite.
	_, om := testMachines(g, 8)
	fw := ligra.New(om, g)
	res := PageRank(fw, Params{Iterations: 1})
	for v, r := range res.Ranks {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("rank[%d] = %v", v, r)
		}
	}
}

func TestBFSMatchesReferenceOnBothMachines(t *testing.T) {
	g := directedTestGraph(t, 9)
	root := DefaultRoot(g)
	want := ReferenceBFS(g, root)
	base, om := testMachines(g, 4)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := BFS(fw, root)
		levels := res.Levels(root)
		for v := range want {
			if want[v] == ^uint32(0) {
				if res.Parents[v] != ^uint32(0) {
					t.Fatalf("%s: vertex %d should be unreachable", m.Config().Name, v)
				}
				continue
			}
			if levels[v] != want[v] {
				t.Fatalf("%s: level[%d] = %d, want %d", m.Config().Name, v, levels[v], want[v])
			}
			if uint32(v) != root {
				// Parent must be a real in-neighbor at the previous level.
				p := res.Parents[v]
				found := false
				for _, u := range g.InNeighbors(graph.VertexID(v)) {
					if u == p {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: parent[%d]=%d is not an in-neighbor", m.Config().Name, v, p)
				}
			}
		}
	}
}

func TestBFSVisitedCount(t *testing.T) {
	g := directedTestGraph(t, 8)
	root := DefaultRoot(g)
	want := 0
	for _, d := range ReferenceBFS(g, root) {
		if d != ^uint32(0) {
			want++
		}
	}
	_, om := testMachines(g, 4)
	res := BFS(ligra.New(om, g), root)
	if res.Visited != want {
		t.Fatalf("visited %d, want %d", res.Visited, want)
	}
}

func TestSSSPMatchesReferenceWeighted(t *testing.T) {
	g := weightedTestGraph(t, 8)
	root := DefaultRoot(g)
	want := ReferenceSSSP(g, root)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := SSSP(fw, root)
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", m.Config().Name, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestSSSPUnweightedEqualsBFS(t *testing.T) {
	g := directedTestGraph(t, 8)
	root := DefaultRoot(g)
	bfs := ReferenceBFS(g, root)
	_, om := testMachines(g, 8)
	res := SSSP(ligra.New(om, g), root)
	for v := range bfs {
		if bfs[v] == ^uint32(0) {
			if res.Dist[v] != Infinity {
				t.Fatalf("dist[%d] should be Infinity", v)
			}
		} else if res.Dist[v] != int64(bfs[v]) {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], bfs[v])
		}
	}
}

func TestBCMatchesReference(t *testing.T) {
	g := directedTestGraph(t, 8)
	root := DefaultRoot(g)
	wantPaths, wantLevels := ReferenceBC(g, root)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := BC(fw, root)
		for v := range wantLevels {
			if res.Levels[v] != wantLevels[v] {
				t.Fatalf("%s: level[%d] = %d, want %d", m.Config().Name, v, res.Levels[v], wantLevels[v])
			}
			if diff := math.Abs(res.NumPaths[v] - wantPaths[v]); diff > 1e-6*(1+wantPaths[v]) {
				t.Fatalf("%s: paths[%d] = %v, want %v", m.Config().Name, v, res.NumPaths[v], wantPaths[v])
			}
		}
	}
}

func TestRadiiMatchesReference(t *testing.T) {
	g := directedTestGraph(t, 8)
	base, om := testMachines(g, 12)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := Radii(fw, 16, 777)
		want := ReferenceRadii(g, res.Sources)
		for v := range want {
			if res.Radii[v] != want[v] {
				t.Fatalf("%s: radii[%d] = %d, want %d", m.Config().Name, v, res.Radii[v], want[v])
			}
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	g := undirectedTestGraph(t, 8)
	want := ReferenceCC(g)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := CC(fw)
		for v := range want {
			if res.Labels[v] != want[v] {
				t.Fatalf("%s: label[%d] = %d, want %d", m.Config().Name, v, res.Labels[v], want[v])
			}
		}
	}
}

func TestCCCountsComponentsOnDisconnectedGraph(t *testing.T) {
	// Two disjoint triangles.
	b := graph.NewBuilder(6, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 3, 1)
	g := b.Build("two-triangles")
	_, om := testMachines(g, 8)
	res := CC(ligra.New(om, g))
	if res.NumComponents != 2 {
		t.Fatalf("components = %d, want 2", res.NumComponents)
	}
}

func TestTCMatchesReference(t *testing.T) {
	g := undirectedTestGraph(t, 8)
	want := ReferenceTC(g)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := TC(fw)
		if res.Total != want {
			t.Fatalf("%s: triangles = %d, want %d", m.Config().Name, res.Total, want)
		}
	}
}

func TestTCOnKnownGraph(t *testing.T) {
	// K4 has 4 triangles.
	b := graph.NewBuilder(4, true)
	for i := uint32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 1)
		}
	}
	g := b.Build("k4")
	if ReferenceTC(g) != 4 {
		t.Fatalf("reference K4 = %d", ReferenceTC(g))
	}
	_, om := testMachines(g, 8)
	if res := TC(ligra.New(om, g)); res.Total != 4 {
		t.Fatalf("simulated K4 = %d", res.Total)
	}
}

func TestKCMatchesReference(t *testing.T) {
	g := undirectedTestGraph(t, 7)
	want := ReferenceKC(g)
	base, om := testMachines(g, 4)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := KC(fw, 0)
		for v := range want {
			if res.Coreness[v] != want[v] {
				t.Fatalf("%s: coreness[%d] = %d, want %d", m.Config().Name, v, res.Coreness[v], want[v])
			}
		}
	}
}

func TestKCOnKnownGraph(t *testing.T) {
	// A triangle with a pendant vertex: triangle members have coreness 2,
	// the pendant has coreness 1.
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build("triangle+tail")
	_, om := testMachines(g, 4)
	res := KC(ligra.New(om, g), 0)
	want := []int32{2, 2, 2, 1}
	for v := range want {
		if res.Coreness[v] != want[v] {
			t.Fatalf("coreness[%d] = %d, want %d", v, res.Coreness[v], want[v])
		}
	}
	if res.MaxCore != 2 {
		t.Fatalf("max core = %d", res.MaxCore)
	}
}

func TestAllSpecsRunnable(t *testing.T) {
	dir := directedTestGraph(t, 7)
	undirCfg := gen.DefaultRMAT(7, 5)
	undirCfg.Undirected = true
	undir := reorder.Apply(gen.RMAT(undirCfg), reorder.Compute(gen.RMAT(undirCfg), reorder.InDegree))
	for _, spec := range All() {
		g := dir
		if spec.NeedsUndirected {
			g = undir
		}
		_, om := testMachines(g, spec.VtxPropBytes)
		fw := ligra.New(om, g)
		st := spec.Run(fw)
		if st.Cycles == 0 {
			t.Fatalf("%s: zero cycles", spec.Name)
		}
		if st.TotalAccesses() == 0 {
			t.Fatalf("%s: no accesses", spec.Name)
		}
	}
}

func TestSpecMetadataMatchesTableII(t *testing.T) {
	specs := All()
	if len(specs) != 8 {
		t.Fatalf("want 8 algorithms, got %d", len(specs))
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	if byName["PageRank"].VtxPropBytes != 8 || byName["PageRank"].ActiveList {
		t.Fatal("PageRank Table II metadata wrong")
	}
	if byName["BFS"].VtxPropBytes != 4 || !byName["BFS"].ActiveList {
		t.Fatal("BFS Table II metadata wrong")
	}
	if byName["Radii"].VtxPropBytes != 12 || byName["Radii"].NumProps != 3 {
		t.Fatal("Radii Table II metadata wrong")
	}
	if byName["KC"].VtxPropBytes != 4 {
		t.Fatal("KC Table II metadata wrong")
	}
	if !byName["SSSP"].ReadsSrc || byName["BFS"].ReadsSrc {
		t.Fatal("ReadsSrc flags wrong")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("PageRank"); !ok {
		t.Fatal("PageRank should resolve")
	}
	if _, ok := ByName("NoSuch"); ok {
		t.Fatal("unknown algorithm should not resolve")
	}
}

func TestDefaultRootSkipsIsolated(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(1, 2, 1)
	g := b.Build("iso")
	if DefaultRoot(g) != 1 {
		t.Fatalf("root = %d, want 1", DefaultRoot(g))
	}
}
