package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// TCResult carries the functional output of simulated triangle counting.
type TCResult struct {
	// Total is the number of triangles in the (undirected) graph.
	Total int64
	// PerVertex[v] counts triangles whose lowest-ID vertex is v.
	PerVertex []int64
}

// TC counts triangles on an undirected graph with the standard ordered
// merge-intersection: for every edge (v,u) with v<u, count common
// neighbors w with w>u. The kernel is compute-bound — long sequential
// adjacency scans with one comparison per step — which is why the paper
// reports a limited OMEGA speedup for TC ("the algorithm is
// compute-intensive, thus random accesses contribute only a small fraction
// to execution time"). Per-vertex counts land in a single vtxProp with
// signed-add atomics (Table II: low %atomic, low %random).
func TC(fw *ligra.Framework) *TCResult {
	g := fw.Graph()
	if !g.Undirected {
		panic("tc: requires an undirected graph")
	}
	n := g.NumVertices()

	counts := fw.NewProp("counts", 8, pisc.IntValue(0))
	fw.Configure(pisc.StandardMicrocode("tc-update", pisc.OpSignedAdd, false, false))

	m := fw.Machine()
	m.ParallelFor(n, func(ctx *core.Ctx, vi int) {
		v := uint32(vi)
		ctx.Exec(6)
		adjV := g.OutNeighbors(graph.VertexID(v))
		baseV := int(g.OutOffsets[v])
		var local int64
		for j, u := range adjV {
			ctx.Exec(4)
			ctx.Read(fw.OutEdgesRegion(), baseV+j)
			if u <= v {
				continue
			}
			// Merge-intersect adj(v) and adj(u), counting w > u.
			adjU := g.OutNeighbors(graph.VertexID(u))
			baseU := int(g.OutOffsets[u])
			a, b := 0, 0
			for a < len(adjV) && b < len(adjU) {
				ctx.Exec(2)
				wa, wb := adjV[a], adjU[b]
				switch {
				case wa == wb:
					ctx.Read(fw.OutEdgesRegion(), baseV+a)
					ctx.Read(fw.OutEdgesRegion(), baseU+b)
					if wa > u {
						local++
					}
					a++
					b++
				case wa < wb:
					ctx.Read(fw.OutEdgesRegion(), baseV+a)
					a++
				default:
					ctx.Read(fw.OutEdgesRegion(), baseU+b)
					b++
				}
			}
		}
		if local > 0 {
			counts.AtomicUpdate(ctx, v, pisc.OpSignedAdd, pisc.IntValue(local))
		}
	})

	res := &TCResult{PerVertex: make([]int64, n)}
	for v := range res.PerVertex {
		res.PerVertex[v] = counts.Value(uint32(v)).Int()
		res.Total += res.PerVertex[v]
	}
	return res
}

// ReferenceTC counts triangles without simulation.
func ReferenceTC(g *graph.Graph) int64 {
	n := g.NumVertices()
	var total int64
	for v := 0; v < n; v++ {
		adjV := g.OutNeighbors(graph.VertexID(v))
		for _, u := range adjV {
			if int(u) <= v {
				continue
			}
			adjU := g.OutNeighbors(graph.VertexID(u))
			a, b := 0, 0
			for a < len(adjV) && b < len(adjU) {
				switch {
				case adjV[a] == adjU[b]:
					if adjV[a] > u {
						total++
					}
					a++
					b++
				case adjV[a] < adjU[b]:
					a++
				default:
					b++
				}
			}
		}
	}
	return total
}
