package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/memsys"
	"omega/internal/pisc"
)

// BCResult carries the functional output of the simulated Betweenness
// Centrality forward pass.
type BCResult struct {
	// NumPaths[v] counts shortest paths from the root through v.
	NumPaths []float64
	// Levels[v] is the BFS level of v from the root (^0 unreachable).
	Levels []uint32
	// Rounds is the number of levels expanded.
	Rounds int
}

// BC runs the forward (path-counting) pass of Brandes' betweenness
// centrality, which is what the paper simulates ("we simulate only the
// first pass of BC"): a level-synchronous BFS whose frontier vertices
// scatter their shortest-path counts into unvisited neighbors with atomic
// floating-point adds. The visited/level bookkeeping lives outside the
// vtxProp (Table II counts one 8-byte vtxProp for BC).
func BC(fw *ligra.Framework, root uint32) *BCResult {
	g := fw.Graph()
	n := g.NumVertices()
	m := fw.Machine()

	numPaths := fw.NewProp("NumPaths", 8, pisc.FloatValue(0))
	fw.Configure(pisc.StandardMicrocode("bc-update", pisc.OpFPAdd, true, true))

	levels := make([]uint32, n)
	for i := range levels {
		levels[i] = ^uint32(0)
	}
	levelRegion := m.Alloc("bc.levels", maxi(n, 1), 4, memsys.KindNGraphData)
	levels[root] = 0
	numPaths.Raw()[root] = pisc.FloatValue(1)

	frontier := fw.NewVertexSubsetSparse([]uint32{root})
	round := 0
	for !frontier.IsEmpty() {
		round++
		fns := ligra.EdgeMapFns{
			UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
				paths := numPaths.GetSrc(ctx, s)
				numPaths.AtomicUpdate(ctx, d, pisc.OpFPAdd, paths)
				// Newly discovered this round?
				return levels[d] == ^uint32(0)
			},
			Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
				paths := numPaths.GetSrc(ctx, s)
				numPaths.Update(ctx, d, pisc.OpFPAdd, paths)
				return levels[d] == ^uint32(0)
			},
			Cond: func(ctx *core.Ctx, d uint32) bool {
				ctx.Read(levelRegion, int(d))
				return levels[d] == ^uint32(0)
			},
		}
		frontier = fw.EdgeMap(frontier, fns, ligra.Auto)
		// Assign levels to the new frontier (vertexMap write pass).
		r := uint32(round)
		frontier = fw.VertexMap(frontier, func(ctx *core.Ctx, v uint32) bool {
			ctx.Write(levelRegion, int(v))
			levels[v] = r
			return true
		})
		if round > n+1 {
			panic("bc: did not converge")
		}
	}
	res := &BCResult{
		Rounds:   round,
		Levels:   levels,
		NumPaths: make([]float64, n),
	}
	for v, p := range numPaths.Raw() {
		res.NumPaths[v] = p.Float()
	}
	return res
}

// ReferenceBC computes the exact forward-pass shortest-path counts and
// levels with a sequential level-synchronous BFS.
func ReferenceBC(g *graph.Graph, root uint32) (numPaths []float64, levels []uint32) {
	n := g.NumVertices()
	numPaths = make([]float64, n)
	levels = make([]uint32, n)
	for i := range levels {
		levels[i] = ^uint32(0)
	}
	levels[root] = 0
	numPaths[root] = 1
	frontier := []uint32{root}
	round := uint32(0)
	for len(frontier) > 0 {
		round++
		next := map[uint32]bool{}
		for _, s := range frontier {
			for _, d := range g.OutNeighbors(graph.VertexID(s)) {
				if levels[d] != ^uint32(0) && levels[d] <= levels[s] {
					continue
				}
				if levels[d] == ^uint32(0) {
					next[d] = true
				}
				numPaths[d] += numPaths[s]
			}
		}
		frontier = frontier[:0]
		for d := range next {
			levels[d] = round
			frontier = append(frontier, d)
		}
	}
	return numPaths, levels
}
