package algorithms

import (
	"math"
	"testing"

	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
)

func TestBCFullMatchesReference(t *testing.T) {
	g := directedTestGraph(t, 8)
	root := DefaultRoot(g)
	want := ReferenceBCFull(g, root)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := BCFull(fw, root)
		for v := range want {
			if diff := math.Abs(res.Dependency[v] - want[v]); diff > 1e-6*(1+want[v]) {
				t.Fatalf("%s: dep[%d] = %v, want %v", m.Config().Name, v, res.Dependency[v], want[v])
			}
		}
	}
}

func TestBCFullOnPath(t *testing.T) {
	// Path 0->1->2->3: dependencies are 0->(3 paths through its subtree)...
	// delta(1) = 2 (targets 2 and 3), delta(2) = 1, delta(3) = 0,
	// delta(0) = 3 but the root's own score is conventionally included
	// here as the sum over its subtree (we report raw delta).
	g := graph.FromEdges(4, false, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}, "path")
	_, om := testMachines(g, 8)
	res := BCFull(ligra.New(om, g), 0)
	want := []float64{3, 2, 1, 0}
	for v := range want {
		if math.Abs(res.Dependency[v]-want[v]) > 1e-12 {
			t.Fatalf("dep[%d] = %v, want %v", v, res.Dependency[v], want[v])
		}
	}
}

func TestBCFullDiamond(t *testing.T) {
	// Diamond 0->{1,2}->3: two shortest paths to 3, each middle vertex
	// carries half: delta(1)=delta(2)=0.5, delta(0)=1+0.5+1+0.5... the
	// root accumulates (1+0.5)/1 per child = 3.
	g := graph.FromEdges(4, false, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	}, "diamond")
	_, om := testMachines(g, 8)
	res := BCFull(ligra.New(om, g), 0)
	if math.Abs(res.Dependency[1]-0.5) > 1e-12 || math.Abs(res.Dependency[2]-0.5) > 1e-12 {
		t.Fatalf("middle deps %v %v, want 0.5", res.Dependency[1], res.Dependency[2])
	}
	if math.Abs(res.Dependency[0]-3) > 1e-12 {
		t.Fatalf("root dep %v, want 3", res.Dependency[0])
	}
}

func TestPageRankConvergence(t *testing.T) {
	g := directedTestGraph(t, 8)
	_, om := testMachines(g, 8)
	res := PageRank(ligra.New(om, g), Params{Iterations: 200, Tolerance: 1e-8})
	if !res.Converged {
		t.Fatal("PageRank should converge within 200 iterations")
	}
	if res.Iterations >= 200 || res.Iterations < 2 {
		t.Fatalf("suspicious convergence at %d iterations", res.Iterations)
	}
	// Converged ranks are a fixpoint: one more reference iteration from
	// the converged vector changes it by < 10*tolerance.
	ref := ReferencePageRank(g, res.Iterations, 0.85)
	var drift float64
	for v := range ref {
		drift += math.Abs(ref[v] - res.Ranks[v])
	}
	if drift > 1e-6 {
		t.Fatalf("converged ranks drift %v from reference trajectory", drift)
	}
}

func TestPageRankFixedIterationsNotConverged(t *testing.T) {
	g := directedTestGraph(t, 7)
	_, om := testMachines(g, 8)
	res := PageRank(ligra.New(om, g), Params{Iterations: 1})
	if res.Converged {
		t.Fatal("fixed single iteration should not report convergence")
	}
}
