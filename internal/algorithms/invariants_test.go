package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/stats"
)

// randomDirected builds a small random directed graph for property tests.
func randomDirected(seed uint64, weighted bool) *graph.Graph {
	r := stats.NewRand(seed)
	n := 10 + r.Intn(80)
	b := graph.NewBuilder(n, false)
	if weighted {
		b.SetWeighted()
	}
	m := n * (1 + r.Intn(5))
	for i := 0; i < m; i++ {
		w := int32(1)
		if weighted {
			w = int32(1 + r.Intn(9))
		}
		b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), w)
	}
	b.Dedup()
	return b.Build("prop")
}

func omegaMachine(g *graph.Graph, bpv int) *core.Machine {
	_, cfg := core.ScaledPair(g.NumVertices(), bpv, 0.2)
	return core.NewMachine(cfg)
}

// TestBFSTriangleInequality: for every edge s->d with s reached, the BFS
// level of d is at most level(s)+1, and exactly one less along the parent
// edge — the defining invariants of a BFS tree, checked on random graphs.
func TestBFSTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomDirected(seed, false)
		root := DefaultRoot(g)
		res := BFS(ligra.New(omegaMachine(g, 4), g), root)
		levels := res.Levels(root)
		const unset = ^uint32(0)
		for s := 0; s < g.NumVertices(); s++ {
			if levels[s] == unset {
				continue
			}
			for _, d := range g.OutNeighbors(graph.VertexID(s)) {
				if levels[d] == unset || levels[d] > levels[s]+1 {
					t.Logf("seed %d: edge %d(%d)->%d(%d) violates BFS", seed, s, levels[s], d, levels[d])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSSSPEdgeRelaxationInvariant: final distances admit no relaxable edge
// (dist[d] <= dist[s] + w for all edges), the optimality certificate of
// shortest paths.
func TestSSSPEdgeRelaxationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomDirected(seed, true)
		root := DefaultRoot(g)
		res := SSSP(ligra.New(omegaMachine(g, 8), g), root)
		for s := 0; s < g.NumVertices(); s++ {
			if res.Dist[s] >= Infinity {
				continue
			}
			ws := g.OutWeights(graph.VertexID(s))
			for j, d := range g.OutNeighbors(graph.VertexID(s)) {
				if res.Dist[d] > res.Dist[s]+int64(ws[j]) {
					t.Logf("seed %d: edge %d->%d relaxable", seed, s, d)
					return false
				}
			}
		}
		if res.Dist[root] != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCCLabelsAreFixpoint: every vertex's label equals the minimum label
// in its neighborhood closure — no edge connects different labels.
func TestCCLabelsAreFixpoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 10 + r.Intn(60)
		b := graph.NewBuilder(n, true)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), 1)
		}
		b.Dedup()
		g := b.Build("cc")
		res := CC(ligra.New(omegaMachine(g, 8), g))
		for v := 0; v < n; v++ {
			for _, u := range g.OutNeighbors(graph.VertexID(v)) {
				if res.Labels[v] != res.Labels[u] {
					t.Logf("seed %d: edge %d-%d crosses labels %d/%d",
						seed, v, u, res.Labels[v], res.Labels[u])
					return false
				}
			}
			// The label is a member of the component (label <= v is not
			// required per se, but the label must be the min member: at
			// minimum, label <= v).
			if res.Labels[v] > uint32(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPageRankMassConservation: on a graph with no sink vertices, total
// rank is conserved at 1 every iteration.
func TestPageRankMassConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 10 + r.Intn(50)
		b := graph.NewBuilder(n, false)
		// Ring guarantees out-degree >= 1 everywhere (no sinks).
		for v := 0; v < n; v++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n), 1)
		}
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), 1)
		}
		b.Dedup()
		g := b.Build("pr")
		res := PageRank(ligra.New(omegaMachine(g, 8), g), Params{Iterations: 3})
		var sum float64
		for _, x := range res.Ranks {
			sum += x
		}
		return math.Abs(sum-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTCHandshake: the total triangle count equals the handshake-counted
// reference on random undirected graphs, on both machines.
func TestTCHandshake(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 8 + r.Intn(40)
		b := graph.NewBuilder(n, true)
		for i := 0; i < n*3; i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), 1)
		}
		b.Dedup()
		g := b.Build("tc")
		return TC(ligra.New(omegaMachine(g, 8), g)).Total == ReferenceTC(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestKCCorenessInvariant: every vertex of coreness k has >= k neighbors
// of coreness >= k (the defining property of the k-core).
func TestKCCorenessInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := 8 + r.Intn(40)
		b := graph.NewBuilder(n, true)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)), 1)
		}
		b.Dedup()
		g := b.Build("kc")
		res := KC(ligra.New(omegaMachine(g, 4), g), 0)
		for v := 0; v < n; v++ {
			k := res.Coreness[v]
			if k == 0 {
				continue
			}
			cnt := int32(0)
			for _, u := range g.OutNeighbors(graph.VertexID(v)) {
				if res.Coreness[u] >= k {
					cnt++
				}
			}
			if cnt < k {
				t.Logf("seed %d: vertex %d coreness %d but only %d strong neighbors",
					seed, v, k, cnt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBaselineAndOmegaAgreeFunctionally: the machine must never change the
// computation — both machines give identical BFS parents arrays given the
// same deterministic schedule inputs... identical reachability and levels.
func TestBaselineAndOmegaAgreeFunctionally(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomDirected(seed, false)
		root := DefaultRoot(g)
		bcfg, ocfg := core.ScaledPair(g.NumVertices(), 4, 0.2)
		rb := BFS(ligra.New(core.NewMachine(bcfg), g), root)
		ro := BFS(ligra.New(core.NewMachine(ocfg), g), root)
		lb := rb.Levels(root)
		lo := ro.Levels(root)
		for v := range lb {
			if lb[v] != lo[v] {
				return false
			}
		}
		return rb.Visited == ro.Visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
