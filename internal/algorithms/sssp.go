package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// SSSPResult carries the functional output of a simulated SSSP.
type SSSPResult struct {
	// Dist[v] is the shortest distance from the root, or Infinity.
	Dist []int64
	// Rounds is the number of Bellman-Ford frontier rounds.
	Rounds int
}

// Infinity is the unreachable sentinel in SSSPResult.Dist.
const Infinity = infinity

// SSSP runs Ligra's frontier-based Bellman-Ford (the Figure 10 update
// function): each frontier vertex relaxes its outgoing edges with an
// atomic signed-min on ShortestLen, using a second Visited vtxProp to
// deduplicate frontier insertion (Table II: two vtxProps, signed min &
// bool comp., reads the source vertex's property — the access OMEGA's
// source vertex buffer accelerates).
func SSSP(fw *ligra.Framework, root uint32) *SSSPResult {
	dist := fw.NewProp("ShortestLen", 4, pisc.IntValue(infinity))
	visited := fw.NewProp("Visited", 4, pisc.Value(unreachable32))
	fw.Configure(pisc.StandardMicrocode("sssp-update", pisc.OpSignedMin, true, true))

	dist.Raw()[root] = pisc.IntValue(0)
	frontier := fw.NewVertexSubsetSparse([]uint32{root})
	round := uint64(0)

	fns := ligra.EdgeMapFns{
		UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			// Figure 10: read s's ShortestLen, add edge length, write-min
			// into d. The source read is buffer-eligible on OMEGA.
			sl := dist.GetSrc(ctx, s).Int()
			if !dist.AtomicUpdate(ctx, d, pisc.OpSignedMin, pisc.IntValue(sl+int64(w))) {
				return false
			}
			// Deduplicate frontier insertion: first improver of d in this
			// round wins (Visited tag, bool comp.).
			return visited.AtomicUpdate(ctx, d, pisc.OpBoolComp, pisc.Value(round))
		},
		Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			sl := dist.GetSrc(ctx, s).Int()
			if !dist.Update(ctx, d, pisc.OpSignedMin, pisc.IntValue(sl+int64(w))) {
				return false
			}
			return visited.Update(ctx, d, pisc.OpBoolComp, pisc.Value(round))
		},
	}
	rounds := 0
	for !frontier.IsEmpty() {
		frontier = fw.EdgeMap(frontier, fns, ligra.Auto)
		rounds++
		round++
		// Reset the Visited tags of the new frontier for the next round
		// (Ligra's reset pass).
		frontier = fw.VertexMap(frontier, func(ctx *core.Ctx, v uint32) bool {
			visited.Set(ctx, v, pisc.Value(unreachable32))
			return true
		})
		if rounds > fw.NumVertices()+1 {
			panic("sssp: negative cycle or divergence")
		}
	}
	res := &SSSPResult{Rounds: rounds, Dist: make([]int64, fw.NumVertices())}
	for v, d := range dist.Raw() {
		res.Dist[v] = d.Int()
	}
	return res
}

// ReferenceSSSP computes exact shortest distances with Bellman-Ford
// (non-negative weights assumed, matching the generators).
func ReferenceSSSP(g *graph.Graph, root uint32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = infinity
	}
	dist[root] = 0
	changed := true
	for iter := 0; iter < n && changed; iter++ {
		changed = false
		for s := 0; s < n; s++ {
			if dist[s] == infinity {
				continue
			}
			ws := g.OutWeights(graph.VertexID(s))
			for j, d := range g.OutNeighbors(graph.VertexID(s)) {
				var w int64 = 1
				if ws != nil {
					w = int64(ws[j])
				}
				if dist[s]+w < dist[d] {
					dist[d] = dist[s] + w
					changed = true
				}
			}
		}
	}
	return dist
}
