package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// KCResult carries the functional output of simulated k-core
// decomposition.
type KCResult struct {
	// Coreness[v] is the largest k such that v belongs to the k-core.
	Coreness []int32
	// MaxCore is the largest coreness in the graph.
	MaxCore int32
}

// KC computes the full coreness decomposition of an undirected graph by
// iterative peeling: for k = 1, 2, ... repeatedly remove vertices whose
// induced degree falls below k, decrementing neighbors' degrees with
// atomic signed adds. Table II: one 4-byte vtxProp (Degrees), signed add,
// no active-list — each peeling step scans all vertices. If maxK > 0 the
// decomposition stops early at that k (coreness values above it are
// reported as maxK).
func KC(fw *ligra.Framework, maxK int32) *KCResult {
	g := fw.Graph()
	if !g.Undirected {
		panic("kc: requires an undirected graph")
	}
	n := g.NumVertices()
	m := fw.Machine()

	degrees := fw.NewProp("Degrees", 4, pisc.IntValue(0))
	fw.Configure(pisc.StandardMicrocode("kc-update", pisc.OpSignedAdd, false, false))

	for v := 0; v < n; v++ {
		degrees.Raw()[v] = pisc.IntValue(int64(g.OutDegree(graph.VertexID(v))))
	}
	coreness := make([]int32, n)
	removed := make([]bool, n)
	alive := n

	k := int32(0)
	for alive > 0 {
		k++
		if maxK > 0 && k > maxK {
			for v := 0; v < n; v++ {
				if !removed[v] {
					coreness[v] = maxK
				}
			}
			break
		}
		// Peel repeatedly at this k until no vertex falls below it.
		for {
			var peel []uint32
			// "Active-list: no" — every peel step scans all vertices.
			m.ParallelFor(n, func(ctx *core.Ctx, vi int) {
				ctx.Exec(3)
				if removed[vi] {
					return
				}
				d := degrees.Get(ctx, uint32(vi)).Int()
				if d < int64(k) {
					peel = append(peel, uint32(vi))
				}
			})
			if len(peel) == 0 {
				break
			}
			// Mark removals first, then decrement neighbors with the
			// edge lists of high-degree vertices split across cores.
			for _, v := range peel {
				removed[v] = true
				coreness[v] = k - 1
			}
			fw.ParallelOutEdges(peel,
				func(ctx *core.Ctx, v uint32) { ctx.Exec(4) },
				func(ctx *core.Ctx, v uint32, j int, u uint32, w int32) {
					if !removed[u] {
						degrees.AtomicUpdate(ctx, u, pisc.OpSignedAdd, pisc.IntValue(-1))
					}
				})
			alive -= len(peel)
		}
	}
	res := &KCResult{Coreness: coreness}
	for _, c := range coreness {
		if c > res.MaxCore {
			res.MaxCore = c
		}
	}
	return res
}

// ReferenceKC computes exact coreness by sequential peeling.
func ReferenceKC(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VertexID(v))
	}
	coreness := make([]int32, n)
	removed := make([]bool, n)
	alive := n
	k := 0
	for alive > 0 {
		k++
		for {
			var peel []int
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] < k {
					peel = append(peel, v)
				}
			}
			if len(peel) == 0 {
				break
			}
			for _, v := range peel {
				removed[v] = true
				coreness[v] = int32(k - 1)
				for _, u := range g.OutNeighbors(graph.VertexID(v)) {
					if !removed[u] {
						deg[u]--
					}
				}
			}
			alive -= len(peel)
		}
	}
	return coreness
}
