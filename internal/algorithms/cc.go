package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// CCResult carries the functional output of simulated connected
// components.
type CCResult struct {
	// Labels[v] is the component label: the minimum vertex ID in v's
	// component.
	Labels []uint32
	// NumComponents is the number of distinct labels.
	NumComponents int
	// Rounds is the number of label-propagation rounds.
	Rounds int
}

// CC runs Ligra's label-propagation connected components on an undirected
// graph: every vertex starts with its own ID, and frontier vertices push
// their (previous-round) label to neighbors with an atomic signed-min;
// vertices whose label shrank form the next frontier. Two vtxProps (IDs
// and prevIDs — Table II: 8 bytes).
func CC(fw *ligra.Framework) *CCResult {
	g := fw.Graph()
	if !g.Undirected {
		panic("cc: requires an undirected graph")
	}
	n := g.NumVertices()

	ids := fw.NewProp("IDs", 4, pisc.IntValue(0))
	prev := fw.NewProp("prevIDs", 4, pisc.IntValue(0))
	fw.Configure(pisc.StandardMicrocode("cc-update", pisc.OpSignedMin, true, true))

	for v := 0; v < n; v++ {
		ids.Raw()[v] = pisc.IntValue(int64(v))
	}

	frontier := fw.NewVertexSubsetAll()
	rounds := 0
	for !frontier.IsEmpty() {
		rounds++
		// Snapshot labels of frontier members (Ligra's prevIDs copy).
		frontier = fw.VertexMap(frontier, func(ctx *core.Ctx, v uint32) bool {
			prev.Set(ctx, v, ids.Get(ctx, v))
			return true
		})
		fns := ligra.EdgeMapFns{
			UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
				label := prev.GetSrc(ctx, s)
				return ids.AtomicUpdate(ctx, d, pisc.OpSignedMin, label)
			},
			Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
				label := prev.GetSrc(ctx, s)
				return ids.Update(ctx, d, pisc.OpSignedMin, label)
			},
		}
		frontier = fw.EdgeMap(frontier, fns, ligra.Auto)
		if rounds > n+1 {
			panic("cc: did not converge")
		}
	}
	res := &CCResult{Rounds: rounds, Labels: make([]uint32, n)}
	seen := map[uint32]bool{}
	for v := range res.Labels {
		res.Labels[v] = uint32(ids.Value(uint32(v)).Int())
		seen[res.Labels[v]] = true
	}
	res.NumComponents = len(seen)
	return res
}

// ReferenceCC labels components with the minimum member ID using
// union-find.
func ReferenceCC(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			union(v, int(u))
		}
	}
	// Resolve to minimum ID per component.
	minOf := make(map[int]uint32)
	for v := 0; v < n; v++ {
		r := find(v)
		if cur, ok := minOf[r]; !ok || uint32(v) < cur {
			minOf[r] = uint32(v)
		}
	}
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = minOf[find(v)]
	}
	return out
}
