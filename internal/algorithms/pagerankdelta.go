package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/memsys"
	"omega/internal/pisc"
)

// PageRankDeltaResult carries the functional output of PageRankDelta.
type PageRankDeltaResult struct {
	// Ranks per vertex at termination.
	Ranks []float64
	// Iterations executed before the frontier emptied or the bound hit.
	Iterations int
	// Converged reports a naturally emptied frontier.
	Converged bool
}

// PageRankDelta is Ligra's frontier-based PageRank variant: instead of
// recomputing every vertex each iteration, only vertices whose rank
// changed by more than epsilon of their value propagate their *delta*
// along out-edges (atomic fp adds). On power-law graphs the frontier
// collapses quickly onto the hub vertices — exactly the OMEGA-resident
// set — making it a natural companion workload to the paper's PageRank.
func PageRankDelta(fw *ligra.Framework, maxIters int, damping, epsilon float64) *PageRankDeltaResult {
	g := fw.Graph()
	n := g.NumVertices()
	m := fw.Machine()
	if maxIters <= 0 {
		maxIters = 100
	}
	if epsilon <= 0 {
		epsilon = 1e-7
	}

	// nghSum accumulates incoming delta/degree contributions (the atomic
	// vtxProp); rank and delta are tracked functionally with charged
	// sequential sweeps like the paper's curr_pagerank temporary.
	nghSum := fw.NewProp("nghSum", 8, pisc.FloatValue(0))
	fw.Configure(pisc.StandardMicrocode("prdelta-update", pisc.OpFPAdd, true, false))

	rankRegion := m.Alloc("prdelta.rank", maxi(n, 1), 8, memsys.KindNGraphData)
	rank := make([]float64, n)
	delta := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0 / float64(n)
		delta[v] = rank[v]
	}

	frontier := fw.NewVertexSubsetAll()
	res := &PageRankDeltaResult{}
	for it := 0; it < maxIters && !frontier.IsEmpty(); it++ {
		res.Iterations++
		m.BeginIteration()
		// Scatter deltas from the frontier along out-edges.
		ids := frontier.IDs()
		fw.ParallelOutEdges(ids,
			func(ctx *core.Ctx, s uint32) {
				ctx.Exec(6)
				ctx.Read(rankRegion, int(s))
			},
			func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
				deg := g.OutDegree(graph.VertexID(s))
				if deg > 0 {
					nghSum.AtomicUpdate(ctx, d, pisc.OpFPAdd,
						pisc.FloatValue(delta[s]/float64(deg)))
				}
			})
		// Apply: vertices whose damped delta exceeds epsilon*rank stay
		// active.
		var next []uint32
		m.ParallelFor(n, func(ctx *core.Ctx, v int) {
			ctx.Exec(6)
			sum := nghSum.Get(ctx, uint32(v)).Float()
			nghSum.Set(ctx, uint32(v), pisc.FloatValue(0))
			var nd float64
			if it == 0 {
				// First iteration rebases every vertex on the damped sum.
				nd = (1-damping)/float64(n) + damping*sum - rank[v]
			} else {
				nd = damping * sum
			}
			delta[v] = nd
			if nd != 0 {
				rank[v] += nd
				ctx.Write(rankRegion, v)
			}
			if absf(nd) > epsilon*absf(rank[v]) {
				next = append(next, uint32(v))
			}
		})
		frontier = fw.NewVertexSubsetSparse(next)
	}
	res.Converged = frontier.IsEmpty()
	res.Ranks = rank
	return res
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ReferencePageRankDelta mirrors PageRankDelta functionally without
// simulation, for verification.
func ReferencePageRankDelta(g *graph.Graph, maxIters int, damping, epsilon float64) ([]float64, int) {
	n := g.NumVertices()
	if maxIters <= 0 {
		maxIters = 100
	}
	if epsilon <= 0 {
		epsilon = 1e-7
	}
	rank := make([]float64, n)
	delta := make([]float64, n)
	nghSum := make([]float64, n)
	active := make([]bool, n)
	for v := range rank {
		rank[v] = 1.0 / float64(n)
		delta[v] = rank[v]
		active[v] = true
	}
	iters := 0
	for it := 0; it < maxIters; it++ {
		any := false
		for _, a := range active {
			if a {
				any = true
				break
			}
		}
		if !any {
			break
		}
		iters++
		for i := range nghSum {
			nghSum[i] = 0
		}
		for s := 0; s < n; s++ {
			if !active[s] {
				continue
			}
			deg := g.OutDegree(graph.VertexID(s))
			if deg == 0 {
				continue
			}
			c := delta[s] / float64(deg)
			for _, d := range g.OutNeighbors(graph.VertexID(s)) {
				nghSum[d] += c
			}
		}
		for v := 0; v < n; v++ {
			var nd float64
			if it == 0 {
				nd = (1-damping)/float64(n) + damping*nghSum[v] - rank[v]
			} else {
				nd = damping * nghSum[v]
			}
			delta[v] = nd
			rank[v] += nd
			active[v] = absf(nd) > epsilon*absf(rank[v])
		}
	}
	return rank, iters
}
