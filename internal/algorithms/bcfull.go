package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/memsys"
)

// BCFullResult carries the complete Brandes betweenness computation from
// one root: path counts, levels, and the dependency (centrality
// contribution) scores of the backward pass.
type BCFullResult struct {
	Forward *BCResult
	// Dependency[v] is Brandes' delta(v): the fraction of shortest paths
	// from the root through v, accumulated over all reachable targets.
	Dependency []float64
}

// BCFull runs both passes of Brandes' algorithm: the forward
// path-counting BFS the paper simulates, then the backward dependency
// accumulation it skips for gem5-time reasons ("we simulate only the
// first pass of BC"). The backward pass processes levels in reverse,
// scattering delta contributions along reverse edges with atomic
// floating-point adds — the same PISC-offloadable update pattern.
func BCFull(fw *ligra.Framework, root uint32) *BCFullResult {
	g := fw.Graph()
	n := g.NumVertices()
	m := fw.Machine()

	forward := BC(fw, root)

	// Dependencies live in a second fp vtxProp. The forward pass already
	// configured the machine; allocate the region manually (the monitor
	// set is fixed after Configure, so the backward prop is served by the
	// cache path — a conservative choice matching the paper's scope).
	depRegion := m.Alloc("bc.dependency", maxi(n, 1), 8, memsys.KindVtxProp)
	dep := make([]float64, n)

	// Bucket vertices by level, deepest first.
	maxLevel := uint32(0)
	for _, l := range forward.Levels {
		if l != ^uint32(0) && l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]uint32, maxLevel+1)
	for v, l := range forward.Levels {
		if l != ^uint32(0) {
			byLevel[l] = append(byLevel[l], uint32(v))
		}
	}

	// Backward sweep: for each level L from deepest-1 down to 0, every
	// vertex s at level L accumulates, over its out-neighbors d at level
	// L+1: sigma(s)/sigma(d) * (1 + delta(d)).
	for level := int(maxLevel) - 1; level >= 0; level-- {
		vs := byLevel[level]
		if len(vs) == 0 {
			continue
		}
		m.BeginIteration()
		fw.ParallelOutEdges(vs,
			func(ctx *core.Ctx, s uint32) {
				ctx.Exec(4)
				ctx.Read(depRegion, int(s))
			},
			func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
				if forward.Levels[d] != forward.Levels[s]+1 {
					return
				}
				ctx.Exec(4)
				// sigma reads are source-buffer-class accesses on the
				// forward prop; the delta update is the atomic fp add.
				ctx.Read(depRegion, int(d))
				if forward.NumPaths[d] != 0 {
					contrib := forward.NumPaths[s] / forward.NumPaths[d] * (1 + dep[d])
					dep[s] += contrib
					ctx.Atomic(depRegion, int(s))
				}
			})
	}
	return &BCFullResult{Forward: forward, Dependency: dep}
}

// ReferenceBCFull computes exact Brandes dependencies from one root.
func ReferenceBCFull(g *graph.Graph, root uint32) []float64 {
	numPaths, levels := ReferenceBC(g, root)
	n := g.NumVertices()
	dep := make([]float64, n)
	maxLevel := uint32(0)
	for _, l := range levels {
		if l != ^uint32(0) && l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]uint32, maxLevel+1)
	for v, l := range levels {
		if l != ^uint32(0) {
			byLevel[l] = append(byLevel[l], uint32(v))
		}
	}
	for level := int(maxLevel) - 1; level >= 0; level-- {
		for _, s := range byLevel[level] {
			for _, d := range g.OutNeighbors(graph.VertexID(s)) {
				if levels[d] == levels[s]+1 && numPaths[d] != 0 {
					dep[s] += numPaths[s] / numPaths[d] * (1 + dep[d])
				}
			}
		}
	}
	return dep
}
