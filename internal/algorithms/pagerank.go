package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/memsys"
	"omega/internal/pisc"
)

// PageRankResult carries the functional output of a simulated PageRank.
type PageRankResult struct {
	// Ranks is the rank per vertex after the final iteration.
	Ranks []float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the Tolerance criterion stopped the run
	// (always false for fixed-iteration runs).
	Converged bool
}

// PageRank runs the paper's push-style PageRank (Figure 2): every vertex
// scatters curr_pagerank/out_degree along its outgoing edges with an
// atomic floating-point add into next_pagerank, then a vertex-parallel
// pass folds damping and swaps the arrays. All vertices are active every
// iteration (Table II: no active-list), and the fold's sequential walk of
// the vtxProp array is the chunk-mapping scenario of §V.D.
func PageRank(fw *ligra.Framework, p Params) *PageRankResult {
	p = p.withDefaults()
	g := fw.Graph()
	n := g.NumVertices()
	m := fw.Machine()

	next := fw.NewProp("next_pagerank", 8, pisc.FloatValue(0))
	fw.Configure(pisc.StandardMicrocode("pagerank-update", pisc.OpFPAdd, false, false))

	// curr_pagerank is the cache-resident temporary of §V.D.
	currRegion := m.Alloc("curr_pagerank", maxi(n, 1), 8, memsys.KindNGraphData)
	curr := make([]float64, n)
	contrib := make([]float64, n)
	for v := range curr {
		curr[v] = 1.0 / float64(n)
	}

	for it := 0; it < p.Iterations; it++ {
		m.BeginIteration()
		// Precompute per-vertex contribution (vertexMap over nGraphData).
		m.ParallelFor(n, func(ctx *core.Ctx, v int) {
			ctx.Exec(4)
			ctx.Read(currRegion, v)
			d := g.OutDegree(graph.VertexID(v))
			if d > 0 {
				contrib[v] = curr[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		})
		// Scatter: the Figure 2 loop. Push along out-edges with atomic
		// fp adds into next_pagerank; high-degree vertices' edge lists
		// are split across cores (Ligra's granular parallelism).
		sources := make([]uint32, n)
		for v := range sources {
			sources[v] = uint32(v)
		}
		fw.ParallelOutEdges(sources,
			func(ctx *core.Ctx, s uint32) {
				ctx.Exec(6)
				ctx.Read(currRegion, int(s))
			},
			func(ctx *core.Ctx, s uint32, j int, d uint32, w int32) {
				next.AtomicUpdate(ctx, d, pisc.OpFPAdd, pisc.FloatValue(contrib[s]))
			})
		// Fold damping and swap: sequential read of the vtxProp array
		// (the §V.D access pattern), write back to curr, reset next.
		delta := 0.0
		m.ParallelFor(n, func(ctx *core.Ctx, v int) {
			ctx.Exec(6)
			sum := next.Get(ctx, uint32(v)).Float()
			newRank := (1-p.Damping)/float64(n) + p.Damping*sum
			delta += abs64(newRank - curr[v])
			curr[v] = newRank
			ctx.Write(currRegion, v)
			next.Set(ctx, uint32(v), pisc.FloatValue(0))
		})
		if p.Tolerance > 0 && delta < p.Tolerance {
			return &PageRankResult{Ranks: curr, Iterations: it + 1, Converged: true}
		}
	}
	return &PageRankResult{Ranks: curr, Iterations: p.Iterations}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ReferencePageRank computes PageRank without simulation, for test
// verification.
func ReferencePageRank(g *graph.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	curr := make([]float64, n)
	next := make([]float64, n)
	for v := range curr {
		curr[v] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		for v := range next {
			next[v] = 0
		}
		for s := 0; s < n; s++ {
			d := g.OutDegree(graph.VertexID(s))
			if d == 0 {
				continue
			}
			c := curr[s] / float64(d)
			for _, t := range g.OutNeighbors(graph.VertexID(s)) {
				next[t] += c
			}
		}
		for v := range curr {
			curr[v] = (1-damping)/float64(n) + damping*next[v]
		}
	}
	return curr
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
