package algorithms

import (
	"math"
	"testing"

	"omega/internal/core"
	"omega/internal/ligra"
)

func TestPageRankDeltaConvergesToPageRank(t *testing.T) {
	g := directedTestGraph(t, 8)
	want := ReferencePageRank(g, 300, 0.85)
	base, om := testMachines(g, 8)
	for _, m := range []*core.Machine{base, om} {
		fw := ligra.New(m, g)
		res := PageRankDelta(fw, 300, 0.85, 1e-9)
		if !res.Converged {
			t.Fatalf("%s: did not converge", m.Config().Name)
		}
		for v := range want {
			if diff := math.Abs(res.Ranks[v] - want[v]); diff > 1e-6 {
				t.Fatalf("%s: rank[%d] = %v, want %v (diff %v)",
					m.Config().Name, v, res.Ranks[v], want[v], diff)
			}
		}
	}
}

func TestPageRankDeltaMatchesItsReference(t *testing.T) {
	g := directedTestGraph(t, 7)
	wantRanks, _ := ReferencePageRankDelta(g, 50, 0.85, 1e-6)
	_, om := testMachines(g, 8)
	res := PageRankDelta(ligra.New(om, g), 50, 0.85, 1e-6)
	for v := range wantRanks {
		if diff := math.Abs(res.Ranks[v] - wantRanks[v]); diff > 1e-6 {
			t.Fatalf("rank[%d] = %v, reference %v", v, res.Ranks[v], wantRanks[v])
		}
	}
}

func TestPageRankDeltaFrontierShrinks(t *testing.T) {
	// The variant's selling point: after the first iterations, far fewer
	// vertices stay active than the full vertex set — so the total
	// iteration count to convergence exceeds 2 but the work per round
	// decays. We check convergence takes several rounds yet terminates
	// well before the bound.
	g := directedTestGraph(t, 9)
	_, om := testMachines(g, 8)
	res := PageRankDelta(ligra.New(om, g), 500, 0.85, 1e-7)
	if !res.Converged {
		t.Fatal("should converge")
	}
	if res.Iterations < 3 || res.Iterations > 200 {
		t.Fatalf("implausible iteration count %d", res.Iterations)
	}
}

func TestPageRankDeltaRespectsBound(t *testing.T) {
	g := directedTestGraph(t, 7)
	_, om := testMachines(g, 8)
	res := PageRankDelta(ligra.New(om, g), 2, 0.85, 1e-12)
	if res.Iterations > 2 {
		t.Fatalf("bound ignored: %d", res.Iterations)
	}
}
