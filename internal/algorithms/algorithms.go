// Package algorithms implements the eight graph algorithms of the paper's
// evaluation (Table II) on the ligra framework: PageRank, BFS, SSSP, BC,
// Radii, CC, TC, and KC, together with plain-Go reference implementations
// used by the test suite to verify that the simulated runs compute correct
// results.
package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
)

// Spec is the Table II characterization of one algorithm plus a uniform
// entry point for the experiment harness.
type Spec struct {
	// Name is the short name used in the paper's figures.
	Name string
	// AtomicOp names the PISC operation(s) (Table II row 1-2).
	AtomicOp string
	// AtomicIntensity is the qualitative %atomic row ("high"/"medium"/"low").
	AtomicIntensity string
	// RandomIntensity is the qualitative %random row.
	RandomIntensity string
	// VtxPropBytes is the per-vertex property footprint.
	VtxPropBytes int
	// NumProps is the number of vtxProp structures.
	NumProps int
	// ActiveList reports whether the algorithm maintains a frontier.
	ActiveList bool
	// ReadsSrc reports whether updates read the source vertex's property.
	ReadsSrc bool
	// NeedsUndirected restricts the algorithm to symmetric graphs.
	NeedsUndirected bool
	// NeedsWeights restricts the algorithm to weighted graphs.
	NeedsWeights bool
	// Schedule names the iteration schedule Run bakes in (iteration
	// bounds, roots, sampling parameters) so two workloads that share a
	// Name but run different schedules stay distinguishable — the cell
	// cache keys on WorkloadID. Empty means the algorithm has no
	// tunables beyond the graph.
	Schedule string
	// Run executes the algorithm with default parameters on fw and
	// returns the machine statistics of the run.
	Run func(fw *ligra.Framework) core.MachineStats
}

// WorkloadID is the workload identity used in cache keys: the algorithm
// name qualified by its baked-in iteration schedule.
func (s Spec) WorkloadID() string {
	if s.Schedule == "" {
		return s.Name
	}
	return s.Name + "[" + s.Schedule + "]"
}

// All returns the specs in the paper's Table II order.
func All() []Spec {
	return []Spec{
		{
			Name: "PageRank", AtomicOp: "fp add",
			AtomicIntensity: "high", RandomIntensity: "high",
			VtxPropBytes: 8, NumProps: 1, ActiveList: false, ReadsSrc: false,
			Schedule: "iters=1,damping=0.85",
			Run: func(fw *ligra.Framework) core.MachineStats {
				PageRank(fw, Params{Iterations: 1})
				return fw.Machine().Stats()
			},
		},
		{
			Name: "BFS", AtomicOp: "unsigned comp.",
			AtomicIntensity: "low", RandomIntensity: "high",
			VtxPropBytes: 4, NumProps: 1, ActiveList: true, ReadsSrc: false,
			Schedule: "root=default",
			Run: func(fw *ligra.Framework) core.MachineStats {
				BFS(fw, DefaultRoot(fw.Graph()))
				return fw.Machine().Stats()
			},
		},
		{
			Name: "SSSP", AtomicOp: "signed min & bool comp.",
			AtomicIntensity: "high", RandomIntensity: "high",
			VtxPropBytes: 8, NumProps: 2, ActiveList: true, ReadsSrc: true,
			Schedule: "root=default",
			Run: func(fw *ligra.Framework) core.MachineStats {
				SSSP(fw, DefaultRoot(fw.Graph()))
				return fw.Machine().Stats()
			},
		},
		{
			Name: "BC", AtomicOp: "fp add",
			AtomicIntensity: "medium", RandomIntensity: "high",
			VtxPropBytes: 8, NumProps: 1, ActiveList: true, ReadsSrc: true,
			Schedule: "root=default",
			Run: func(fw *ligra.Framework) core.MachineStats {
				BC(fw, DefaultRoot(fw.Graph()))
				return fw.Machine().Stats()
			},
		},
		{
			Name: "Radii", AtomicOp: "or & signed min",
			AtomicIntensity: "high", RandomIntensity: "high",
			VtxPropBytes: 12, NumProps: 3, ActiveList: true, ReadsSrc: true,
			Schedule: "k=16,seed=12345",
			Run: func(fw *ligra.Framework) core.MachineStats {
				Radii(fw, 16, 12345)
				return fw.Machine().Stats()
			},
		},
		{
			Name: "CC", AtomicOp: "signed min",
			AtomicIntensity: "high", RandomIntensity: "high",
			VtxPropBytes: 8, NumProps: 2, ActiveList: true, ReadsSrc: true,
			NeedsUndirected: true,
			Schedule: "converge",
			Run: func(fw *ligra.Framework) core.MachineStats {
				CC(fw)
				return fw.Machine().Stats()
			},
		},
		{
			Name: "TC", AtomicOp: "signed add",
			AtomicIntensity: "low", RandomIntensity: "low",
			VtxPropBytes: 8, NumProps: 1, ActiveList: false, ReadsSrc: false,
			NeedsUndirected: true,
			Run: func(fw *ligra.Framework) core.MachineStats {
				TC(fw)
				return fw.Machine().Stats()
			},
		},
		{
			Name: "KC", AtomicOp: "signed add",
			AtomicIntensity: "low", RandomIntensity: "low",
			VtxPropBytes: 4, NumProps: 1, ActiveList: false, ReadsSrc: false,
			NeedsUndirected: true,
			Schedule: "k=0",
			Run: func(fw *ligra.Framework) core.MachineStats {
				KC(fw, 0)
				return fw.Machine().Stats()
			},
		},
	}
}

// ByName returns the spec with the given name, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// DefaultRoot picks a deterministic traversal root that reaches a large
// component, mirroring the paper's use of well-connected roots: among a
// small set of high-out-degree candidates (plus the hottest vertex), it
// returns the one whose BFS covers the most vertices.
func DefaultRoot(g *graph.Graph) uint32 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	// Candidates: top-4 by out-degree plus vertex 0 (the in-degree hub
	// after reordering) and a mid-ID vertex (late arrival in growth
	// models).
	type cand struct {
		v   uint32
		deg int
	}
	best4 := make([]cand, 0, 4)
	for v := 0; v < n; v++ {
		d := g.OutDegree(graph.VertexID(v))
		if len(best4) < 4 {
			best4 = append(best4, cand{uint32(v), d})
			continue
		}
		minI := 0
		for i := 1; i < 4; i++ {
			if best4[i].deg < best4[minI].deg {
				minI = i
			}
		}
		if d > best4[minI].deg {
			best4[minI] = cand{uint32(v), d}
		}
	}
	candidates := []uint32{0, uint32(n / 2), uint32(n - 1)}
	for _, c := range best4 {
		candidates = append(candidates, c.v)
	}
	bestRoot, bestCover := uint32(0), -1
	for _, r := range candidates {
		if g.OutDegree(graph.VertexID(r)) == 0 {
			continue
		}
		cover := 0
		for _, d := range ReferenceBFS(g, r) {
			if d != ^uint32(0) {
				cover++
			}
		}
		if cover > bestCover || (cover == bestCover && r < bestRoot) {
			bestRoot, bestCover = r, cover
		}
	}
	return bestRoot
}

// Params bundles the tunables shared by iterative algorithms.
type Params struct {
	// Iterations bounds iteration counts (PageRank). The paper simulates
	// a single PageRank iteration due to gem5 runtimes; we default to
	// the same.
	Iterations int
	// Damping is PageRank's damping factor.
	Damping float64
	// Tolerance, when positive, stops PageRank once the L1 delta between
	// consecutive rank vectors falls below it (run-to-convergence mode;
	// Iterations then acts as an upper bound).
	Tolerance float64
}

// withDefaults fills zero values.
func (p Params) withDefaults() Params {
	if p.Iterations <= 0 {
		p.Iterations = 1
	}
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	return p
}

// unreachable32 is the sentinel for "not yet assigned" unsigned values.
const unreachable32 = ^uint64(0)

// infinity is the sentinel distance for SSSP (int64 half-max avoids
// overflow when adding edge weights).
const infinity = int64(1) << 60
