package algorithms

import (
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/ligra"
	"omega/internal/pisc"
)

// BFSResult carries the functional output of a simulated BFS.
type BFSResult struct {
	// Parents[v] is the BFS-tree parent of v, or ^0 when unreachable;
	// the root is its own parent.
	Parents []uint32
	// Rounds is the number of frontier expansions (graph levels).
	Rounds int
	// Visited is the number of reached vertices (including the root).
	Visited int
}

// BFS runs Ligra's breadth-first search from root: frontier-based
// traversal with compare-and-swap parent assignment, switching between
// push and pull with Ligra's threshold. Per Table II the atomic is only
// attempted after the unvisited check, so the atomic fraction stays low
// while random vtxProp reads stay high.
func BFS(fw *ligra.Framework, root uint32) *BFSResult {
	parents := fw.NewProp("parents", 4, pisc.Value(unreachable32))
	fw.Configure(pisc.StandardMicrocode("bfs-update", pisc.OpUnsignedCompareSwap, true, true))

	parents.Raw()[root] = pisc.Value(uint64(root))
	frontier := fw.NewVertexSubsetSparse([]uint32{root})
	fns := ligra.EdgeMapFns{
		UpdateAtomic: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			return parents.AtomicUpdate(ctx, d, pisc.OpUnsignedCompareSwap,
				pisc.Value(uint64(s)))
		},
		Update: func(ctx *core.Ctx, s, d uint32, w int32) bool {
			return parents.Update(ctx, d, pisc.OpUnsignedCompareSwap,
				pisc.Value(uint64(s)))
		},
		Cond: func(ctx *core.Ctx, d uint32) bool {
			return uint64(parents.Get(ctx, d)) == unreachable32
		},
	}
	rounds := 0
	for !frontier.IsEmpty() {
		frontier = fw.EdgeMap(frontier, fns, ligra.Auto)
		rounds++
		if rounds > fw.NumVertices()+1 {
			panic("bfs: did not converge")
		}
	}
	res := &BFSResult{Rounds: rounds, Parents: make([]uint32, fw.NumVertices())}
	for v, p := range parents.Raw() {
		res.Parents[v] = uint32(uint64(p))
		if uint64(p) != unreachable32 {
			res.Visited++
		}
	}
	return res
}

// Levels derives per-vertex BFS levels from the parent array (root level
// 0, unreachable ^0).
func (r *BFSResult) Levels(root uint32) []uint32 {
	const unset = ^uint32(0)
	levels := make([]uint32, len(r.Parents))
	for i := range levels {
		levels[i] = unset
	}
	var walk func(v uint32) uint32
	walk = func(v uint32) uint32 {
		if levels[v] != unset {
			return levels[v]
		}
		if v == root {
			levels[v] = 0
			return 0
		}
		p := r.Parents[v]
		if p == ^uint32(0) {
			return unset
		}
		// Mark to catch cycles (would indicate a broken tree).
		levels[v] = unset - 1
		pl := walk(p)
		if pl >= unset-1 {
			panic("bfs: parent chain broken")
		}
		levels[v] = pl + 1
		return levels[v]
	}
	for v := range r.Parents {
		if r.Parents[v] != ^uint32(0) {
			walk(uint32(v))
		}
	}
	return levels
}

// ReferenceBFS computes per-vertex BFS distances from root without
// simulation; unreachable vertices get ^0.
func ReferenceBFS(g *graph.Graph, root uint32) []uint32 {
	const unset = ^uint32(0)
	dist := make([]uint32, g.NumVertices())
	for i := range dist {
		dist[i] = unset
	}
	dist[root] = 0
	queue := []uint32{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(graph.VertexID(v)) {
			if dist[u] == unset {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
