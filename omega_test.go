package omega

import (
	"context"
	"strings"
	"testing"
	"time"

	"omega/internal/experiments"
)

func TestQuickstartFlow(t *testing.T) {
	g := RMAT(11, 42)
	g = ReorderByInDegree(g)
	cmp, err := Compare("PageRank", g, 0.20)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if cmp.Speedup() <= 1.0 {
		t.Fatalf("OMEGA should beat the baseline on a power-law graph: %.2fx", cmp.Speedup())
	}
	if cmp.EnergySaving() <= 1.0 {
		t.Fatalf("OMEGA should save energy: %.2fx", cmp.EnergySaving())
	}
	if cmp.TrafficReduction() <= 1.0 {
		t.Fatalf("OMEGA should reduce on-chip traffic: %.2fx", cmp.TrafficReduction())
	}
}

func TestCompareErrors(t *testing.T) {
	g := RMAT(8, 1)
	if _, err := Compare("NoSuchAlgo", g, 0.2); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if _, err := Compare("CC", g, 0.2); err == nil {
		t.Fatal("CC on a directed graph should error")
	}
}

func TestGraphHelpers(t *testing.T) {
	g := SocialGraph(2000, 7)
	s := Characterize(g)
	if !s.PowerLaw {
		t.Fatal("social graph should be power-law")
	}
	r := RoadGraph(32, 7)
	if Characterize(r).PowerLaw {
		t.Fatal("road graph should not be power-law")
	}
	if !r.Undirected {
		t.Fatal("road graph should be undirected")
	}
}

func TestLoadEdgeListFacade(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n"), false, "x")
	if err != nil || g.NumVertices() != 3 {
		t.Fatalf("load: %v %v", g, err)
	}
}

func TestConfigsSameStorage(t *testing.T) {
	if BaselineConfig().TotalOnChipStorage() != OMEGAConfig().TotalOnChipStorage() {
		t.Fatal("paper machines must be same-sized")
	}
	g := RMAT(10, 3)
	b, o := ScaledConfigs(g, 8, 0.2)
	if b.TotalOnChipStorage() != o.TotalOnChipStorage() {
		t.Fatal("scaled machines must be same-sized")
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	if len(Algorithms()) != 8 {
		t.Fatal("eight algorithms expected")
	}
	if _, ok := AlgorithmByName("Radii"); !ok {
		t.Fatal("Radii should resolve")
	}
}

func TestRunExperimentResolvesAllIDs(t *testing.T) {
	// Light smoke: run the cheapest experiments through the facade; check
	// the rest resolve (their heavy runs are covered by bench_test.go).
	for _, id := range []string{"Table III", "Table IV"} {
		tbl, err := RunExperiment(id, ExperimentOptions{Scale: 10})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if !strings.Contains(tbl.Format(), tbl.ID) {
			t.Fatalf("%s: format missing ID", id)
		}
	}
	if _, err := RunExperiment("Figure 99", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if len(ExperimentIDs()) != 31 {
		t.Fatalf("expected 31 experiment IDs, got %d", len(ExperimentIDs()))
	}
}

// TestFacadeRegistryParity pins the facade to experiments.Registry():
// the ID list is the registry, in order, with no omissions (the
// hand-maintained map this replaced had already dropped Resilience R1)
// and every registered ID resolves through RunExperimentContext.
func TestFacadeRegistryParity(t *testing.T) {
	specs := experiments.Registry()
	ids := ExperimentIDs()
	if len(ids) != len(specs) {
		t.Fatalf("facade lists %d IDs, registry has %d", len(ids), len(specs))
	}
	for i, spec := range specs {
		if ids[i] != spec.ID {
			t.Fatalf("ID %d = %q, facade says %q", i, spec.ID, ids[i])
		}
	}
	found := false
	for _, id := range ids {
		if id == "Resilience R1" {
			found = true
		}
	}
	if !found {
		t.Fatal("Resilience R1 missing from the facade ID list")
	}
	// The context-aware entry point must honor ctx and the watchdog: a
	// cancelled context yields a Failed table, a live one a real result.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	tbl, err := RunExperimentContext(cancelled, "Table III", ExperimentOptions{Scale: 8})
	if err != nil || !tbl.Failed {
		t.Fatalf("cancelled run: table %+v, err %v; want a Failed table", tbl, err)
	}
	tbl, err = RunExperimentContext(context.Background(), "Table IV",
		ExperimentOptions{Scale: 8, Timeout: time.Minute})
	if err != nil || tbl.Failed || len(tbl.Rows) == 0 {
		t.Fatalf("live run: table %+v, err %v; want rows", tbl, err)
	}
}

// TestRunSuiteFacade runs the full parallel suite through the facade and
// checks it matches the sequential per-experiment path table for table.
func TestRunSuiteFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	opts := ExperimentOptions{Scale: 10, Parallelism: 4, Datasets: NewDatasetCache()}
	tables, summary := RunSuite(context.Background(), opts)
	if len(tables) != len(ExperimentIDs()) {
		t.Fatalf("suite returned %d tables, want %d", len(tables), len(ExperimentIDs()))
	}
	if summary == nil || len(summary.Rows) != len(tables) {
		t.Fatal("telemetry summary must carry one row per experiment")
	}
	for i, id := range ExperimentIDs() {
		if tables[i].Failed {
			t.Fatalf("%s failed: %s", id, tables[i].Title)
		}
		seq, err := RunExperiment(id, ExperimentOptions{Scale: 10, Datasets: opts.Datasets})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if seq.Format() != tables[i].Format() {
			t.Fatalf("%s: parallel suite table differs from sequential facade run", id)
		}
	}
}

func TestAllExperimentsRunnable(t *testing.T) {
	// Integration sweep: every registered experiment must produce a
	// non-empty table at a tiny scale. Guarded by -short for quick edits.
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := RunExperiment(id, ExperimentOptions{Scale: 10})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", id)
			}
			if tbl.Format() == "" || tbl.TSV() == "" {
				t.Fatalf("%s: rendering failed", id)
			}
		})
	}
}

func TestMachineFacade(t *testing.T) {
	g := ReorderByInDegree(RMAT(9, 5))
	_, oCfg := ScaledConfigs(g, 8, 0.2)
	m := NewMachine(oCfg)
	fw := NewFramework(m, g)
	if fw.NumVertices() != g.NumVertices() {
		t.Fatal("framework binding broken")
	}
	if !m.HasScratchpads() {
		t.Fatal("OMEGA machine should have scratchpads")
	}
}
