// Command omega-trace runs one algorithm under an access tracer and prints
// a per-(data-structure, hierarchy-level) latency summary — the raw
// material behind the paper's motivation figures: where do the accesses
// go, and what do they cost on each machine?
//
// Usage:
//
//	omega-trace -algo PageRank -scale 12                  # both machines
//	omega-trace -algo BFS -machine omega -tsv events.tsv  # dump raw events
package main

import (
	"flag"
	"fmt"
	"os"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graph/gen"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
	"omega/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "omega-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName = flag.String("algo", "PageRank", "algorithm to trace")
		scale    = flag.Int("scale", 12, "log2 vertex count (R-MAT)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		machine  = flag.String("machine", "both", "baseline, omega, or both")
		tsvPath  = flag.String("tsv", "", "write raw events (first 100k) as TSV")
	)
	flag.Parse()

	spec, ok := algorithms.ByName(*algoName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	cfg := gen.DefaultRMAT(*scale, *seed)
	cfg.Undirected = spec.NeedsUndirected
	cfg.Weighted = spec.Name == "SSSP"
	g := gen.RMAT(cfg)
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))

	baseCfg, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, 0.20)
	runOn := func(cfg core.Config) error {
		m, err := core.NewMachineChecked(cfg)
		if err != nil {
			return err
		}
		col := trace.NewCollector(100000)
		m.AttachSink(col)
		st := spec.Run(ligra.New(m, g))
		fmt.Printf("== %s: %s on %s (%d cycles) ==\n", cfg.Name, spec.Name, g.Name, st.Cycles)
		if err := col.WriteSummary(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *tsvPath != "" {
			f, err := os.Create(fmt.Sprintf("%s.%s", *tsvPath, cfg.Name))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := col.WriteTSV(f); err != nil {
				return err
			}
		}
		return nil
	}
	if *machine == "baseline" || *machine == "both" {
		if err := runOn(baseCfg); err != nil {
			return err
		}
	}
	if *machine == "omega" || *machine == "both" {
		if err := runOn(omCfg); err != nil {
			return err
		}
	}
	return nil
}
