// Command omega-translate is the paper's §V.F lightweight source-to-source
// translation tool: it reads a pre-annotated update function (the Figure
// 10 mini-DSL), classifies the atomic operation, and prints the generated
// PISC microcode stores and OMEGA configuration code (the Figure 13
// output).
//
// Usage:
//
//	omega-translate -demo                                 # built-in SSSP demo
//	omega-translate -src update.c -prop ShortestLen:4 -prop Visited:4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"omega/internal/translate"
)

const demoSrc = `// Figure 10 of the paper: the SSSP update function.
//@omega update
void update(int s, int d, int edgeLen) {
    newShortestLen = ShortestLen[s] + edgeLen;
    ShortestLen[d] = min(ShortestLen[d], newShortestLen);
    Visited[d] = 1;
}
`

type propFlags []translate.PropDecl

func (p *propFlags) String() string { return fmt.Sprint(*p) }

func (p *propFlags) Set(v string) error {
	parts := strings.SplitN(v, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want name:bytes, got %q", v)
	}
	size, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	*p = append(*p, translate.PropDecl{Name: parts[0], TypeSize: size})
	return nil
}

func main() {
	var props propFlags
	var (
		src    = flag.String("src", "", "annotated source file")
		demo   = flag.Bool("demo", false, "translate the built-in SSSP example")
		dense  = flag.Bool("dense", true, "microcode maintains the dense active-list")
		sparse = flag.Bool("sparse", true, "microcode maintains the sparse active-list")
	)
	flag.Var(&props, "prop", "declare a vtxProp as name:bytes (repeatable)")
	flag.Parse()

	var text string
	switch {
	case *demo:
		text = demoSrc
		if len(props) == 0 {
			props = propFlags{
				{Name: "ShortestLen", TypeSize: 4},
				{Name: "Visited", TypeSize: 4},
			}
		}
	case *src != "":
		b, err := os.ReadFile(*src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		text = string(b)
	default:
		fmt.Fprintln(os.Stderr, "need -demo or -src (see -h)")
		os.Exit(2)
	}

	tr, err := translate.Translate(text, props, *dense, *sparse)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *demo {
		fmt.Println("input:")
		fmt.Println(text)
	}
	fmt.Print(tr.Render())
}
