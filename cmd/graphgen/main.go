// Command graphgen generates or inspects graph datasets: it prints the
// Table I characterization (vertex/edge counts, top-20% connectivity,
// power-law classification) and can write graphs as binary CSR files or
// read SNAP edge lists.
//
// Usage:
//
//	graphgen -family rmat -scale 16                  # generate + characterize
//	graphgen -family ba -scale 15 -out social.omg    # write binary CSR
//	graphgen -in social.omg                          # inspect a saved graph
//	graphgen -edgelist snap.txt -undirected          # characterize a SNAP file
package main

import (
	"flag"
	"fmt"
	"os"

	"omega/internal/experiments"
	"omega/internal/graph"
	"omega/internal/graph/gio"
	"omega/internal/graph/reorder"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family     = flag.String("family", "rmat", "generator: rmat, ba, er, road, ws")
		scale      = flag.Int("scale", 14, "log2 vertex count")
		seed       = flag.Uint64("seed", 42, "generator seed")
		undirected = flag.Bool("undirected", false, "treat/generate as undirected")
		weighted   = flag.Bool("weighted", false, "attach edge weights")
		edgelist   = flag.String("edgelist", "", "read a SNAP edge list instead of generating")
		edgeErrs   = flag.Int("edge-errors", 0, "tolerate up to N malformed edge-list lines (0 = strict)")
		in         = flag.String("in", "", "read a binary CSR file instead of generating")
		out        = flag.String("out", "", "write the graph as binary CSR")
		doReorder  = flag.Bool("reorder", false, "apply in-degree reordering before writing")
	)
	flag.Parse()

	g, err := buildGraph(*family, *scale, *seed, *undirected, *weighted, *edgelist, *edgeErrs, *in)
	if err != nil {
		return err
	}
	if *doReorder {
		g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))
	}

	s := graph.ComputeDegreeStats(g)
	typ := "directed"
	if s.Undirected {
		typ = "undirected"
	}
	fmt.Printf("name:                  %s\n", g.Name)
	fmt.Printf("vertices:              %d\n", s.NumVertices)
	fmt.Printf("edges:                 %d (%s)\n", s.NumEdges, typ)
	fmt.Printf("in-degree con. (20%%):  %.2f%%\n", s.InDegreeConnectivity)
	fmt.Printf("out-degree con. (20%%): %.2f%%\n", s.OutDegreeConnectivity)
	fmt.Printf("max in/out degree:     %d / %d\n", s.MaxInDegree, s.MaxOutDegree)
	fmt.Printf("power law:             %v\n", s.PowerLaw)

	cum := graph.CumulativeDegreeShare(g)
	fmt.Printf("skew curve:            top 5%%->%.0f%%  10%%->%.0f%%  20%%->%.0f%%  50%%->%.0f%%\n",
		100*cum[4], 100*cum[9], 100*cum[19], 100*cum[49])

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := gio.StoreBinary(f, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func buildGraph(family string, scale int, seed uint64, undirected, weighted bool, edgelist string, edgeErrs int, in string) (*graph.Graph, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gio.LoadBinary(f)
	case edgelist != "":
		f, err := os.Open(edgelist)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, rep, err := gio.LoadEdgeListWithReport(f, edgelist, gio.EdgeListOptions{
			Undirected:  undirected,
			MaxBadLines: edgeErrs,
		})
		if err != nil {
			return nil, err
		}
		if rep.BadLines > 0 {
			fmt.Fprintf(os.Stderr, "warning: skipped %d/%d malformed lines (first: %s)\n",
				rep.BadLines, rep.Lines, rep.FirstBad)
		}
		return g, nil
	}
	return experiments.BuildFamily(family, scale, seed, undirected, weighted)
}
