// Command omega-sim runs one (algorithm × dataset × machine) simulation
// and prints the machine statistics, or a baseline-vs-OMEGA comparison.
//
// Usage:
//
//	omega-sim -algo PageRank -graph rmat -scale 14 [-machine both|baseline|omega]
//	omega-sim -algo BFS -graph road -scale 14 -coverage 0.2
//	omega-sim -algo CC -graph ba -scale 13 -edgelist path/to/snap.txt -edge-errors 10
//	omega-sim -algo PageRank -faults 1e-3 -fault-seed 7   # inject faults
//	omega-sim -algo PageRank -fault-site directory:1e-3,pisc-alu:1e-4   # per-site rates
//	omega-sim -algo PageRank -metrics run.jsonl           # per-iteration metric series
//	omega-sim -algo PageRank -timeline spans.json         # chrome://tracing core activity
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/experiments"
	"omega/internal/faults"
	"omega/internal/graph"
	"omega/internal/graph/gio"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
	"omega/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "omega-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName  = flag.String("algo", "PageRank", "algorithm (PageRank, BFS, SSSP, BC, Radii, CC, TC, KC)")
		graphKdn  = flag.String("graph", "rmat", "dataset family: rmat, ba, er, road")
		scale     = flag.Int("scale", 14, "log2 of the vertex count for generated graphs")
		seed      = flag.Uint64("seed", 42, "generator seed")
		machine   = flag.String("machine", "both", "baseline, omega, or both")
		coverage  = flag.Float64("coverage", 0.20, "fraction of vtxProp the scratchpads hold")
		edgelist  = flag.String("edgelist", "", "load a SNAP edge list instead of generating")
		edgeErrs  = flag.Int("edge-errors", 0, "tolerate up to N malformed edge-list lines (0 = strict)")
		noPISC    = flag.Bool("no-pisc", false, "disable PISC engines (scratchpads only)")
		faultRate = flag.Float64("faults", 0, "fault injection rate per DRAM read / NoC message (0 = off)")
		faultSite = flag.String("fault-site", "", "per-site injection rates, e.g. \"directory:1e-3,linebuf:1e-4\" (sites: dram, noc, sp-parity, directory, linebuf, pisc-alu)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the fault injector streams")
		serial    = flag.Bool("serial", false, "with -machine both, simulate the machines one after the other")
		verbose   = flag.Bool("v", false, "print full stats summaries")
		jsonOut   = flag.Bool("json", false, "print machine stats as JSON instead of text")
		metrics   = flag.String("metrics", "", "write per-iteration metric samples to this file (.tsv = TSV, else JSONL)")
		timeline  = flag.String("timeline", "", "write a chrome://tracing span timeline of per-core activity to this file")
	)
	flag.Parse()

	spec, ok := algorithms.ByName(*algoName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	g, err := buildGraph(*graphKdn, *scale, *seed, *edgelist, *edgeErrs, spec)
	if err != nil {
		return err
	}
	// OMEGA's static placement: in-degree reordering (§VI).
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))

	baseCfg, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, *coverage)
	if *noPISC {
		omCfg.PISC = false
		omCfg.Name = "omega-nopisc"
	}
	switch {
	case *faultRate != 0 && *faultSite != "":
		return fmt.Errorf("-faults and -fault-site are mutually exclusive")
	case *faultRate != 0:
		// Negative rates flow through so Config.Validate rejects them
		// with a clear error instead of silently running fault-free.
		fc := experiments.ResilienceFaults(*faultSeed, *faultRate)
		baseCfg.Faults = fc
		omCfg.Faults = fc
	case *faultSite != "":
		fc, err := faults.ParseSiteConfig(*faultSite)
		if err != nil {
			return err
		}
		fc.Seed = *faultSeed
		baseCfg.Faults = fc
		omCfg.Faults = fc
	}
	fmt.Printf("dataset %s: %d vertices, %d edges\n", g.Name, g.NumVertices(), g.NumEdges())

	emit := func(st core.MachineStats) error {
		if *jsonOut {
			data, err := st.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Print(st.Summary())
		return nil
	}
	// Both observability outputs are mutex-protected sinks, so the
	// concurrent -machine both path can share them; samples and spans
	// carry the machine name, and the writers sort canonically at the
	// end, so concurrent and -serial runs produce identical files.
	var buf *obs.Buffer
	if *metrics != "" {
		buf = obs.NewBuffer()
	}
	var spans *obs.Timeline
	if *timeline != "" {
		spans = obs.NewTimeline()
	}
	simulate := func(cfg core.Config) (core.MachineStats, error) {
		m, err := core.NewMachineChecked(cfg)
		if err != nil {
			return core.MachineStats{}, err
		}
		switch {
		case buf != nil && spans != nil:
			m.AttachSink(obs.Tee(buf, spans))
		case buf != nil:
			m.AttachSink(buf)
		case spans != nil:
			m.AttachSink(spans)
		}
		return spec.Run(ligra.New(m, g)), nil
	}
	runOn := func(cfg core.Config) (core.MachineStats, error) {
		st, err := simulate(cfg)
		if err != nil {
			return st, err
		}
		return st, emit(st)
	}
	var baseStats, omStats core.MachineStats
	switch *machine {
	case "baseline":
		if baseStats, err = runOn(baseCfg); err != nil {
			return err
		}
	case "omega":
		if omStats, err = runOn(omCfg); err != nil {
			return err
		}
	case "both":
		if *serial {
			if baseStats, err = runOn(baseCfg); err != nil {
				return err
			}
			if omStats, err = runOn(omCfg); err != nil {
				return err
			}
			break
		}
		// The two machines are independent deterministic simulations over
		// the same immutable graph, so they run concurrently; output is
		// held back and printed in baseline-then-omega order.
		var wg sync.WaitGroup
		var baseErr, omErr error
		wg.Add(2)
		go func() { defer wg.Done(); baseStats, baseErr = simulate(baseCfg) }()
		go func() { defer wg.Done(); omStats, omErr = simulate(omCfg) }()
		wg.Wait()
		if baseErr != nil {
			return baseErr
		}
		if omErr != nil {
			return omErr
		}
		if err := emit(baseStats); err != nil {
			return err
		}
		if err := emit(omStats); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -machine %q (want baseline, omega, or both)", *machine)
	}
	if *machine == "both" {
		fmt.Printf("speedup (omega vs baseline): %.2fx\n", omStats.Speedup(baseStats))
		if baseStats.NoCBytes > 0 && omStats.NoCBytes > 0 {
			fmt.Printf("on-chip traffic reduction: %.2fx\n",
				float64(baseStats.NoCBytes)/float64(omStats.NoCBytes))
		}
		if baseStats.DRAMUtilized > 0 && omStats.DRAMUtilized > 0 {
			fmt.Printf("DRAM bandwidth utilization: %.2fx\n",
				omStats.DRAMUtilized/baseStats.DRAMUtilized)
		}
		if *faultRate > 0 || *faultSite != "" {
			baseExp := float64(baseStats.DRAMBytes + baseStats.NoCBytes)
			omExp := float64(omStats.DRAMBytes + omStats.NoCBytes)
			if omExp > 0 {
				fmt.Printf("bytes exposed to faulty paths (base/omega): %.2fx fewer on omega\n",
					baseExp/omExp)
			}
		}
	}
	if buf != nil {
		if err := writeMetricsFile(*metrics, buf); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *metrics)
	}
	if spans != nil {
		if err := writeTimelineFile(*timeline, spans); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d spans)\n", *timeline, spans.Len())
	}
	_ = verbose
	return nil
}

// writeMetricsFile drains the buffered samples in canonical order into
// path, as TSV (.tsv) or JSONL (anything else).
func writeMetricsFile(path string, buf *obs.Buffer) error {
	samples := buf.Drain()
	obs.SortSamples(samples)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		w := obs.NewTSVWriter(f)
		for _, s := range samples {
			w.Sample(s)
		}
		return w.Flush()
	}
	w := obs.NewJSONLWriter(f)
	for _, s := range samples {
		w.Sample(s)
	}
	return w.Flush()
}

// writeTimelineFile renders the collected spans as a chrome://tracing
// JSON document (load via chrome://tracing or https://ui.perfetto.dev).
func writeTimelineFile(path string, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	defer f.Close()
	return tl.WriteChromeTrace(f)
}

func buildGraph(family string, scale int, seed uint64, edgelist string, edgeErrs int, spec algorithms.Spec) (*graph.Graph, error) {
	if edgelist != "" {
		f, err := os.Open(edgelist)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, rep, err := gio.LoadEdgeListWithReport(f, edgelist, gio.EdgeListOptions{
			Undirected:  spec.NeedsUndirected,
			MaxBadLines: edgeErrs,
		})
		if err != nil {
			return nil, err
		}
		if rep.BadLines > 0 {
			fmt.Fprintf(os.Stderr, "warning: skipped %d/%d malformed lines (first: %s)\n",
				rep.BadLines, rep.Lines, rep.FirstBad)
		}
		return g, nil
	}
	weighted := spec.NeedsWeights || spec.Name == "SSSP"
	return experiments.BuildFamily(family, scale, seed, spec.NeedsUndirected, weighted)
}
