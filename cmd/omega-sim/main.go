// Command omega-sim runs one (algorithm × dataset × machine) simulation
// and prints the machine statistics, or a baseline-vs-OMEGA comparison.
//
// Usage:
//
//	omega-sim -algo PageRank -graph rmat -scale 14 [-machine both|baseline|omega]
//	omega-sim -algo BFS -graph road -scale 14 -coverage 0.2
//	omega-sim -algo CC -graph ba -scale 13 -edgelist path/to/snap.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/experiments"
	"omega/internal/graph"
	"omega/internal/graph/gio"
	"omega/internal/graph/reorder"
	"omega/internal/ligra"
)

func main() {
	var (
		algoName = flag.String("algo", "PageRank", "algorithm (PageRank, BFS, SSSP, BC, Radii, CC, TC, KC)")
		graphKdn = flag.String("graph", "rmat", "dataset family: rmat, ba, er, road")
		scale    = flag.Int("scale", 14, "log2 of the vertex count for generated graphs")
		seed     = flag.Uint64("seed", 42, "generator seed")
		machine  = flag.String("machine", "both", "baseline, omega, or both")
		coverage = flag.Float64("coverage", 0.20, "fraction of vtxProp the scratchpads hold")
		edgelist = flag.String("edgelist", "", "load a SNAP edge list instead of generating")
		noPISC   = flag.Bool("no-pisc", false, "disable PISC engines (scratchpads only)")
		verbose  = flag.Bool("v", false, "print full stats summaries")
		jsonOut  = flag.Bool("json", false, "print machine stats as JSON instead of text")
	)
	flag.Parse()

	spec, ok := algorithms.ByName(*algoName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}
	g, err := buildGraph(*graphKdn, *scale, *seed, *edgelist, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// OMEGA's static placement: in-degree reordering (§VI).
	g = reorder.Apply(g, reorder.Compute(g, reorder.InDegree))

	baseCfg, omCfg := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, *coverage)
	if *noPISC {
		omCfg.PISC = false
		omCfg.Name = "omega-nopisc"
	}
	fmt.Printf("dataset %s: %d vertices, %d edges\n", g.Name, g.NumVertices(), g.NumEdges())

	emit := func(st core.MachineStats) {
		if *jsonOut {
			data, err := st.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(string(data))
			return
		}
		fmt.Print(st.Summary())
	}
	var baseStats, omStats core.MachineStats
	if *machine == "baseline" || *machine == "both" {
		m := core.NewMachine(baseCfg)
		baseStats = spec.Run(ligra.New(m, g))
		emit(baseStats)
	}
	if *machine == "omega" || *machine == "both" {
		m := core.NewMachine(omCfg)
		omStats = spec.Run(ligra.New(m, g))
		emit(omStats)
	}
	if *machine == "both" {
		fmt.Printf("speedup (omega vs baseline): %.2fx\n", omStats.Speedup(baseStats))
		if baseStats.NoCBytes > 0 && omStats.NoCBytes > 0 {
			fmt.Printf("on-chip traffic reduction: %.2fx\n",
				float64(baseStats.NoCBytes)/float64(omStats.NoCBytes))
		}
		if baseStats.DRAMUtilized > 0 && omStats.DRAMUtilized > 0 {
			fmt.Printf("DRAM bandwidth utilization: %.2fx\n",
				omStats.DRAMUtilized/baseStats.DRAMUtilized)
		}
	}
	_ = verbose
}

func buildGraph(family string, scale int, seed uint64, edgelist string, spec algorithms.Spec) (*graph.Graph, error) {
	if edgelist != "" {
		f, err := os.Open(edgelist)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gio.LoadEdgeList(f, spec.NeedsUndirected, edgelist)
	}
	weighted := spec.NeedsWeights || spec.Name == "SSSP"
	return experiments.BuildFamily(family, scale, seed, spec.NeedsUndirected, weighted)
}
