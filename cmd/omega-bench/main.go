// Command omega-bench regenerates the paper's tables and figures
// (DESIGN.md §4) and prints them as aligned text, optionally writing
// TSV files per experiment.
//
// Usage:
//
//	omega-bench                     # full suite at default scale
//	omega-bench -scale 14           # closer-to-paper regime (slower)
//	omega-bench -only "Figure 14"   # one experiment
//	omega-bench -tsv results/       # also write TSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"omega/internal/experiments"
)

func main() {
	var (
		scale    = flag.Int("scale", 13, "log2 vertex count for generated datasets")
		seed     = flag.Uint64("seed", 42, "generator seed")
		coverage = flag.Float64("coverage", 0.20, "scratchpad coverage of vtxProp")
		only     = flag.String("only", "", "run only experiments whose ID contains this substring")
		tsvDir   = flag.String("tsv", "", "directory to write per-experiment TSV files")
		chart    = flag.Int("chart", -1, "also render the given column as an ASCII bar chart")
		jsonDir  = flag.String("json", "", "directory to write per-experiment JSON files")
		htmlPath = flag.String("html", "", "write a self-contained HTML report")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Seed: *seed, Coverage: *coverage}
	start := time.Now()
	runners := []struct {
		id  string
		run func(experiments.Options) *experiments.Table
	}{
		{"Table I", experiments.Table1},
		{"Table II", experiments.Table2},
		{"Table III", experiments.Table3},
		{"Table IV", experiments.Table4},
		{"Figure 3", experiments.Figure3},
		{"Figure 4a", experiments.Figure4a},
		{"Figure 4b", experiments.Figure4b},
		{"Figure 5", experiments.Figure5},
		{"Figure 14", experiments.Figure14},
		{"Figure 15", experiments.Figure15},
		{"Figure 16", experiments.Figure16},
		{"Figure 17", experiments.Figure17},
		{"Figure 18", experiments.Figure18},
		{"Figure 19", experiments.Figure19},
		{"Figure 20", experiments.Figure20},
		{"Figure 21", experiments.Figure21},
		{"Ablation A1", experiments.AblationScratchpadOnly},
		{"Ablation A2", experiments.AblationAtomicOverhead},
		{"Ablation A3", experiments.AblationReordering},
		{"Ablation A4", experiments.AblationChunkMapping},
		{"Ablation A5", experiments.AblationLockedCache},
		{"Ablation A6", experiments.AblationPrefetcher},
		{"Extension E1", experiments.ExtensionSlicing},
		{"Extension E2", experiments.ExtensionDynamicGraph},
		{"Extension E3", experiments.ExtensionPagePolicy},
		{"Extension E4", experiments.ExtensionGraphMat},
		{"Extension E5", experiments.ExtensionScaleRobustness},
		{"Extension E6", experiments.ExtensionSeedSensitivity},
		{"Extension E7", experiments.ExtensionTraversalDirection},
	}
	ran := 0
	var collected []*experiments.Table
	for _, r := range runners {
		if *only != "" && !strings.Contains(r.id, *only) {
			continue
		}
		t0 := time.Now()
		tbl := r.run(opts)
		collected = append(collected, tbl)
		fmt.Println(tbl.Format())
		if *chart >= 0 {
			fmt.Println(tbl.Chart(*chart, 40))
		}
		fmt.Printf("(%s in %v)\n\n", r.id, time.Since(t0).Round(time.Millisecond))
		ran++
		if *tsvDir != "" {
			if err := writeArtifact(*tsvDir, r.id, ".tsv", []byte(tbl.TSV())); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			data, err := tbl.JSON()
			if err == nil {
				err = writeArtifact(*jsonDir, r.id, ".json", data)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		meta := experiments.ReportMeta{
			Title:     "OMEGA reproduction report (IISWC 2018)",
			Options:   experiments.Options{Scale: *scale, Seed: *seed, Coverage: *coverage},
			Generated: time.Now(),
			Runtime:   time.Since(start).Round(time.Millisecond),
		}
		if err := experiments.WriteHTMLReport(f, meta, collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}
	fmt.Printf("ran %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}

// writeArtifact stores one experiment rendering under dir.
func writeArtifact(dir, id, ext string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(strings.ToLower(id), " ", "_") + ext
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}
