// Command omega-bench regenerates the paper's tables and figures
// (DESIGN.md §4) and prints them as aligned text, optionally writing
// TSV files per experiment.
//
// The suite is hardened: every runner executes under a watchdog timeout
// with panic recovery, so one failing experiment reports a failed table
// and the suite completes; Ctrl-C stops cleanly after the in-flight
// experiment and still writes the partial artifacts collected so far.
//
// Usage:
//
//	omega-bench                     # full suite at default scale
//	omega-bench -scale 14           # closer-to-paper regime (slower)
//	omega-bench -only "Figure 14"   # one experiment
//	omega-bench -tsv results/       # also write TSV files
//	omega-bench -timeout 2m         # per-experiment watchdog
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"omega/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "omega-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Int("scale", 13, "log2 vertex count for generated datasets")
		seed     = flag.Uint64("seed", 42, "generator seed")
		coverage = flag.Float64("coverage", 0.20, "scratchpad coverage of vtxProp")
		only     = flag.String("only", "", "run only experiments whose ID contains this substring")
		tsvDir   = flag.String("tsv", "", "directory to write per-experiment TSV files")
		chart    = flag.Int("chart", -1, "also render the given column as an ASCII bar chart")
		jsonDir  = flag.String("json", "", "directory to write per-experiment JSON files")
		htmlPath = flag.String("html", "", "write a self-contained HTML report")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-experiment watchdog timeout (0 disables)")
	)
	flag.Parse()

	// SIGINT cancels the suite: the in-flight experiment is abandoned,
	// and everything collected so far is still printed and written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{Scale: *scale, Seed: *seed, Coverage: *coverage}
	start := time.Now()
	ran, failed := 0, 0
	var collected []*experiments.Table
	for _, spec := range experiments.Registry() {
		if *only != "" && !strings.Contains(spec.ID, *only) {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "interrupted; emitting %d partial results\n", len(collected))
			break
		}
		t0 := time.Now()
		tbl := experiments.RunSafe(ctx, spec, opts, *timeout)
		collected = append(collected, tbl)
		fmt.Println(tbl.Format())
		if tbl.Failed {
			failed++
		} else if *chart >= 0 {
			fmt.Println(tbl.Chart(*chart, 40))
		}
		fmt.Printf("(%s in %v)\n\n", spec.ID, time.Since(t0).Round(time.Millisecond))
		ran++
		if *tsvDir != "" {
			if err := writeArtifact(*tsvDir, spec.ID, ".tsv", []byte(tbl.TSV())); err != nil {
				return err
			}
		}
		if *jsonDir != "" {
			data, err := tbl.JSON()
			if err == nil {
				err = writeArtifact(*jsonDir, spec.ID, ".json", data)
			}
			if err != nil {
				return err
			}
		}
	}
	if *htmlPath != "" {
		if err := writeHTML(*htmlPath, opts, start, collected); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}
	fmt.Printf("ran %d experiments (%d failed) in %v\n", ran, failed, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeHTML(path string, opts experiments.Options, start time.Time, collected []*experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	meta := experiments.ReportMeta{
		Title:     "OMEGA reproduction report (IISWC 2018)",
		Options:   opts,
		Generated: time.Now(),
		Runtime:   time.Since(start).Round(time.Millisecond),
	}
	return experiments.WriteHTMLReport(f, meta, collected)
}

// writeArtifact stores one experiment rendering under dir.
func writeArtifact(dir, id, ext string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(strings.ToLower(id), " ", "_") + ext
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}
