// Command omega-bench regenerates the paper's tables and figures
// (DESIGN.md §4) and prints them as aligned text, optionally writing
// TSV files per experiment.
//
// The suite runs on a bounded worker pool (-parallel, default GOMAXPROCS)
// over a shared deterministic dataset cache, so independent experiments
// overlap while graphs common to several runners are generated once. A
// cross-experiment simulation-cell cache (DESIGN.md §12) additionally
// dedups identical (machine config, dataset, workload) simulations
// across experiments — disable with -no-cell-cache, inspect with
// -cell-stats. With -sched-hints, per-experiment wall times from the
// previous run schedule the pool longest-job-first.
// Output ordering is unchanged from the sequential harness: tables are
// flushed in registry order as soon as every earlier experiment has
// finished, and live per-experiment progress goes to stderr.
//
// The suite is hardened: every runner executes under a watchdog timeout
// with panic recovery, so one failing experiment reports a failed table
// and the suite completes; Ctrl-C abandons in-flight experiments, fails
// the queued rest, and still prints and writes everything collected.
//
// Usage:
//
//	omega-bench                     # full suite, parallelism = GOMAXPROCS
//	omega-bench -parallel 1         # sequential (identical tables)
//	omega-bench -scale 14           # closer-to-paper regime (slower)
//	omega-bench -only "Figure 14"   # one experiment
//	omega-bench -campaign           # only the Resilience R2 fault campaign
//	omega-bench -fault-seed 7       # re-key the campaign's fault streams
//	omega-bench -tsv results/       # also write TSV files
//	omega-bench -timeout 2m         # per-experiment watchdog
//	omega-bench -metrics out.jsonl  # stream per-iteration metric samples
//	omega-bench -json suite.json    # machine-readable suite summary
//	omega-bench -no-cell-cache      # re-simulate every cell (perf A/B)
//	omega-bench -cell-stats         # cell-cache hit/dedup breakdown
//	omega-bench -compare old.json   # min/mean deltas vs a prior bench JSON
//	omega-bench -sched-hints h.json # longest-job-first suite scheduling
//	omega-bench -cpuprofile cpu.out # profile the suite (go tool pprof)
//	omega-bench -memprofile mem.out # end-of-suite heap profile
//	omega-bench -trace exec.trace   # execution trace (go tool trace)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	"omega/internal/experiments"
	"omega/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "omega-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Int("scale", 13, "log2 vertex count for generated datasets")
		seed     = flag.Uint64("seed", 42, "generator seed")
		coverage = flag.Float64("coverage", 0.20, "scratchpad coverage of vtxProp")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker pool size (1 = sequential)")
		only     = flag.String("only", "", "run only experiments whose ID contains this substring")
		tsvDir   = flag.String("tsv", "", "directory to write per-experiment TSV files")
		chart    = flag.Int("chart", -1, "also render the given column as an ASCII bar chart")
		jsonDir  = flag.String("json-dir", "", "directory to write per-experiment JSON files")
		jsonPath = flag.String("json", "", "write a machine-readable suite summary JSON to this file")
		metrics  = flag.String("metrics", "", "stream per-iteration metric samples to this file (.tsv = TSV, else JSONL)")
		checkMet = flag.Bool("check-metrics", false, "schema-validate the -metrics JSONL after the run")
		htmlPath = flag.String("html", "", "write a self-contained HTML report")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-experiment watchdog timeout (0 disables)")
		serialVr = flag.Bool("serial-variants", false, "run machine variants inside each experiment sequentially (identical tables)")
		noBatch  = flag.Bool("no-batch", false, "disable run-fold access batching on every machine (identical tables; for equivalence checks and perf A/B)")
		runs     = flag.Int("runs", 1, "repeat the suite N times and report per-run wall times (tables print once)")
		benchOut = flag.String("bench-json", "", "write the -runs timing report as JSON to this file")
		compare  = flag.String("compare", "", "compare the timing report against a previous bench JSON file")
		noCells  = flag.Bool("no-cell-cache", false, "disable the cross-experiment simulation-cell cache (identical tables; for equivalence checks and perf A/B)")
		cellStat = flag.Bool("cell-stats", false, "print a detailed cell-cache report after the suite")
		hintPath = flag.String("sched-hints", "", "JSON file of per-experiment wall-time hints for longest-job-first scheduling (read if present, rewritten after the run)")
		campaign = flag.Bool("campaign", false, "run only the Resilience R2 fault campaign")
		faultSd  = flag.Uint64("fault-seed", 1, "base seed for resilience fault-injection streams")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memProf  = flag.String("memprofile", "", "write an end-of-suite heap profile to this file")
		traceOut = flag.String("trace", "", "write a runtime execution trace of the suite to this file (go tool trace)")
	)
	flag.Parse()

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "omega-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "omega-bench: memprofile:", err)
			}
		}()
	}

	// SIGINT cancels the suite: in-flight experiments are abandoned, the
	// queued rest fail fast, and everything is still printed and written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	filter := *only
	if *campaign {
		if filter != "" {
			return fmt.Errorf("-campaign and -only are mutually exclusive")
		}
		filter = "Resilience R2"
	}
	var specs []experiments.Spec
	for _, spec := range experiments.Registry() {
		if filter == "" || strings.Contains(spec.ID, filter) {
			specs = append(specs, spec)
		}
	}
	if len(specs) == 0 {
		return fmt.Errorf("no experiment ID contains %q", filter)
	}

	opts := experiments.Options{
		Scale: *scale, Seed: *seed, Coverage: *coverage,
		Parallelism: *parallel, Timeout: *timeout,
		SerialVariants: *serialVr, FaultSeed: *faultSd,
		SerialAccess: *noBatch, NoCellCache: *noCells,
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1")
	}
	if *hintPath != "" {
		hints, err := readSchedHints(*hintPath)
		if err != nil {
			return err
		}
		opts.SchedHints = hints
	}
	if *checkMet && *metrics == "" {
		return fmt.Errorf("-check-metrics requires -metrics")
	}
	var metricsFlush func() error
	if *metrics != "" {
		sink, flush, err := openMetricsSink(*metrics)
		if err != nil {
			return err
		}
		opts.Metrics = sink
		metricsFlush = flush
	}
	start := time.Now()

	// Tables print in registry order while the pool completes them in
	// whatever order it likes: each completion flushes the longest ready
	// prefix. Suite serializes progress callbacks, so no locking here.
	done := make([]*experiments.Table, len(specs))
	printed, completed := 0, 0
	var artifactErr error
	flush := func() {
		for printed < len(done) && done[printed] != nil {
			tbl := done[printed]
			fmt.Println(tbl.Format())
			if !tbl.Failed && *chart >= 0 {
				fmt.Println(tbl.Chart(*chart, 40))
			}
			if artifactErr == nil {
				artifactErr = writeTableArtifacts(tbl, specs[printed].ID, *tsvDir, *jsonDir)
			}
			printed++
		}
	}
	progress := func(ev experiments.SuiteEvent) {
		completed++
		fmt.Fprintf(os.Stderr, "[%d/%d] %s done in %v\n",
			completed, ev.Total, ev.ID, ev.Wall.Round(time.Millisecond))
		done[ev.Index] = ev.Table
		flush()
	}

	res := experiments.Suite(ctx, specs, opts, progress)
	flush()
	if artifactErr != nil {
		return artifactErr
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "interrupted; results collected before cancellation were emitted\n")
	}
	fmt.Println(res.Summary.Format())
	if *cellStat {
		printCellStats(res.Cells)
	}
	if metricsFlush != nil {
		if err := metricsFlush(); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Printf("wrote %s\n", *metrics)
		if *checkMet {
			if err := validateMetrics(*metrics); err != nil {
				return err
			}
		}
	}
	if *jsonPath != "" {
		if err := writeSuiteJSON(*jsonPath, opts, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *htmlPath != "" {
		if err := writeHTML(*htmlPath, opts, start, append(res.Tables, res.Summary)); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *htmlPath)
	}
	fmt.Printf("ran %d experiments (%d failed) in %v at parallelism %d\n",
		len(res.Tables), res.Failed(), time.Since(start).Round(time.Millisecond), res.Parallelism)
	// A failed experiment fails the invocation — CI and scripts must not
	// read a suite with failed tables as success.
	if n := res.Failed(); n > 0 {
		return fmt.Errorf("%d of %d experiments failed", n, len(res.Tables))
	}
	if *runs > 1 || *benchOut != "" || *compare != "" {
		// Repeat the suite for wall-time statistics. Tables were already
		// printed (and are identical every run — the suite is
		// deterministic); the repeats only contribute timing samples. Each
		// repeat keeps the exact options of the first run — in particular
		// Cells stays nil so every Suite call installs a fresh cell cache,
		// making the repeat walls honest, independent samples.
		walls := []float64{res.Wall.Seconds()}
		for r := 2; r <= *runs; r++ {
			if ctx.Err() != nil {
				break
			}
			rr := experiments.Suite(ctx, specs, opts, nil)
			if n := rr.Failed(); n > 0 {
				return fmt.Errorf("run %d: %d of %d experiments failed", r, n, len(rr.Tables))
			}
			fmt.Fprintf(os.Stderr, "run %d/%d: %v\n", r, *runs, rr.Wall.Round(time.Millisecond))
			walls = append(walls, rr.Wall.Seconds())
		}
		rep := benchReport(os.Args[1:], benchConfig{
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			Parallelism:    *parallel,
			Scale:          *scale,
			NoBatch:        *noBatch,
			NoCellCache:    *noCells,
			SerialVariants: *serialVr,
		}, walls)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("bench report: %w", err)
		}
		fmt.Printf("%s\n", data)
		if *benchOut != "" {
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("bench report: %w", err)
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		if *compare != "" {
			if err := printComparison(*compare, rep); err != nil {
				return err
			}
		}
	}
	if *hintPath != "" {
		if err := writeSchedHints(*hintPath, res.CostHints()); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *hintPath)
	}
	return nil
}

// printCellStats renders the -cell-stats report: totals, duplicate-cell
// rate, and the counted reasons cells bypassed the cache.
func printCellStats(cells *experiments.CellCache) {
	if cells == nil {
		fmt.Println("cell cache: disabled (-no-cell-cache)")
		return
	}
	cs := cells.Stats()
	total := cs.Hits + cs.Misses + cs.Dedups
	fmt.Printf("cell cache: %d cacheable cells requested\n", total)
	fmt.Printf("  built:               %d\n", cs.Misses)
	fmt.Printf("  replayed from cache: %d\n", cs.Hits)
	fmt.Printf("  singleflight-shared: %d\n", cs.Dedups)
	fmt.Printf("  resident:            %d\n", cs.Resident)
	fmt.Printf("  duplicate-cell rate: %.1f%%\n", 100*cs.DuplicateRate())
	if len(cs.Uncacheable) > 0 {
		var reasons []string
		for r := range cs.Uncacheable {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Println("  uncacheable (ran direct):")
		for _, r := range reasons {
			fmt.Printf("    %-10s %d\n", r, cs.Uncacheable[r])
		}
	}
}

// printComparison reads a previous bench JSON and prints min/mean deltas
// against the current report (negative percentages are speedups).
func printComparison(path string, cur benchJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var old benchJSON
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("compare: %s: %w", path, err)
	}
	if old.MinSeconds == 0 || old.MeanSeconds == 0 {
		return fmt.Errorf("compare: %s: not a bench report (missing min/mean seconds)", path)
	}
	delta := func(oldV, newV float64) string {
		return fmt.Sprintf("%.3fs -> %.3fs (%+.1f%%)", oldV, newV, 100*(newV-oldV)/oldV)
	}
	fmt.Printf("vs %s (%d runs there, %d here):\n", path, len(old.RunsSeconds), len(cur.RunsSeconds))
	fmt.Printf("  min:  %s\n", delta(old.MinSeconds, cur.MinSeconds))
	fmt.Printf("  mean: %s\n", delta(old.MeanSeconds, cur.MeanSeconds))
	if old.Command != cur.Command {
		fmt.Printf("  note: commands differ (%q vs %q)\n", old.Command, cur.Command)
	}
	for _, w := range compareWarnings(old, cur) {
		fmt.Printf("  warning: %s\n", w)
	}
	return nil
}

// compareWarnings lists the ways two timing reports are not an
// apples-to-apples comparison: different host or toolchain, or a config
// block that disagrees on scheduler width or workload shape. Reports
// written before the config block existed produce a single "no config"
// warning instead of failing.
func compareWarnings(old, cur benchJSON) []string {
	var warns []string
	if old.CPU != cur.CPU {
		warns = append(warns, fmt.Sprintf("hosts differ (%q vs %q) — deltas reflect hardware, not code", old.CPU, cur.CPU))
	}
	if old.GoVersion != cur.GoVersion {
		warns = append(warns, fmt.Sprintf("go versions differ (%s vs %s)", old.GoVersion, cur.GoVersion))
	}
	if old.Config == nil {
		warns = append(warns, "previous report has no config block (older omega-bench); flag equivalence unverified")
		return warns
	}
	if cur.Config == nil {
		return warns
	}
	o, c := *old.Config, *cur.Config
	diff := func(name string, ov, cv any) {
		if ov != cv {
			warns = append(warns, fmt.Sprintf("%s differs (%v vs %v)", name, ov, cv))
		}
	}
	diff("gomaxprocs", o.GOMAXPROCS, c.GOMAXPROCS)
	diff("parallelism", o.Parallelism, c.Parallelism)
	diff("scale", o.Scale, c.Scale)
	diff("no_batch", o.NoBatch, c.NoBatch)
	diff("no_cell_cache", o.NoCellCache, c.NoCellCache)
	diff("serial_variants", o.SerialVariants, c.SerialVariants)
	return warns
}

// readSchedHints loads the -sched-hints file: a JSON object mapping
// experiment IDs to wall-time milliseconds. A missing file is not an
// error (first run bootstraps it).
func readSchedHints(path string) (map[string]time.Duration, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sched-hints: %w", err)
	}
	var ms map[string]int64
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("sched-hints: %s: %w", path, err)
	}
	hints := make(map[string]time.Duration, len(ms))
	for id, m := range ms {
		hints[id] = time.Duration(m) * time.Millisecond
	}
	return hints, nil
}

// writeSchedHints persists this run's per-experiment wall times so the
// next invocation can schedule longest-job-first.
func writeSchedHints(path string, hints map[string]time.Duration) error {
	ms := make(map[string]int64, len(hints))
	for id, d := range hints {
		ms[id] = d.Milliseconds()
	}
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return fmt.Errorf("sched-hints: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchJSON is the -runs timing report, shaped like the repo's BENCH_*.json
// records so successive PRs' measurements stay comparable.
type benchJSON struct {
	Command     string       `json:"command"`
	GoVersion   string       `json:"go_version"`
	CPU         string       `json:"cpu"`
	Config      *benchConfig `json:"config,omitempty"`
	RunsSeconds []float64    `json:"runs_seconds"`
	MeanSeconds float64      `json:"mean_seconds"`
	MinSeconds  float64      `json:"min_seconds"`
}

// benchConfig records the measurement context that makes two timing
// reports comparable: the host's scheduler width and every flag that
// changes the amount or shape of work the suite does. -compare warns when
// any of it differs.
type benchConfig struct {
	GOMAXPROCS     int  `json:"gomaxprocs"`
	Parallelism    int  `json:"parallelism"`
	Scale          int  `json:"scale"`
	NoBatch        bool `json:"no_batch"`
	NoCellCache    bool `json:"no_cell_cache"`
	SerialVariants bool `json:"serial_variants"`
}

// benchReport assembles the timing report from the suite wall times.
func benchReport(args []string, cfg benchConfig, walls []float64) benchJSON {
	rep := benchJSON{
		Command:     strings.TrimSpace("omega-bench " + strings.Join(args, " ")),
		GoVersion:   runtime.Version(),
		CPU:         hostCPU(),
		Config:      &cfg,
		RunsSeconds: make([]float64, len(walls)),
	}
	var minW, sum float64
	for i, w := range walls {
		w = float64(int(w*1000+0.5)) / 1000 // millisecond precision
		rep.RunsSeconds[i] = w
		sum += w
		if i == 0 || w < minW {
			minW = w
		}
	}
	rep.MeanSeconds = float64(int(sum/float64(len(walls))*1000+0.5)) / 1000
	rep.MinSeconds = minW
	return rep
}

// hostCPU describes the measurement host: the first cpuinfo model name on
// Linux (with the logical CPU count), falling back to GOARCH.
func hostCPU() string {
	desc := runtime.GOARCH
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					desc = strings.TrimSpace(v)
					break
				}
			}
		}
	}
	if n := runtime.NumCPU(); n > 1 {
		return fmt.Sprintf("%s (%d cores)", desc, n)
	}
	return desc + " (1 core)"
}

// openMetricsSink creates the -metrics output file and picks the encoding
// by extension: .tsv gets the tabular series, anything else JSONL. The
// returned flush closes out buffered writes and surfaces any sticky
// writer error.
func openMetricsSink(path string) (obs.Sink, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics: %w", err)
	}
	if strings.HasSuffix(path, ".tsv") {
		w := obs.NewTSVWriter(f)
		return w, func() error {
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}, nil
	}
	w := obs.NewJSONLWriter(f)
	return w, func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// validateMetrics re-reads a JSONL metrics file and schema-checks every
// sample (-check-metrics). TSV output is not validated.
func validateMetrics(path string) error {
	if strings.HasSuffix(path, ".tsv") {
		fmt.Fprintln(os.Stderr, "omega-bench: -check-metrics skipped (TSV output)")
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("check-metrics: %w", err)
	}
	defer f.Close()
	rep, err := obs.ValidateJSONL(f)
	if err != nil {
		return fmt.Errorf("check-metrics: %s: %w", path, err)
	}
	fmt.Printf("metrics valid: %d samples, %d experiments, %d machines, %d components\n",
		rep.Samples, rep.Experiments, rep.Machines, rep.Components)
	return nil
}

// suiteJSON is the -json machine-readable summary schema.
type suiteJSON struct {
	Scale       int              `json:"scale"`
	Seed        uint64           `json:"seed"`
	Coverage    float64          `json:"coverage"`
	Parallelism int              `json:"parallelism"`
	WallMS      int64            `json:"wall_ms"`
	Failed      int              `json:"failed"`
	Experiments []suiteJSONEntry `json:"experiments"`
}

type suiteJSONEntry struct {
	ID          string `json:"id"`
	WallMS      int64  `json:"wall_ms"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Cells       uint64 `json:"cells"`
	CellHits    uint64 `json:"cell_hits"`
	Goroutines  int    `json:"peak_goroutines"`
	Rows        int    `json:"rows"`
	Failed      bool   `json:"failed"`
}

// writeSuiteJSON renders the suite result as machine-readable JSON for
// scripts and CI, mirroring the telemetry summary table.
func writeSuiteJSON(path string, opts experiments.Options, res *experiments.SuiteResult) error {
	out := suiteJSON{
		Scale:       opts.Scale,
		Seed:        opts.Seed,
		Coverage:    opts.Coverage,
		Parallelism: res.Parallelism,
		WallMS:      res.Wall.Milliseconds(),
		Failed:      res.Failed(),
		Experiments: make([]suiteJSONEntry, len(res.Telemetry)),
	}
	for i, te := range res.Telemetry {
		rows := 0
		if res.Tables[i] != nil {
			rows = len(res.Tables[i].Rows)
		}
		out.Experiments[i] = suiteJSONEntry{
			ID: te.ID, WallMS: te.Wall.Milliseconds(),
			CacheHits: te.CacheHits, CacheMisses: te.CacheMisses,
			Cells: te.Cells, CellHits: te.CellHits,
			Goroutines: te.Goroutines, Rows: rows, Failed: te.Failed,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTableArtifacts stores the per-experiment TSV/JSON renderings.
func writeTableArtifacts(tbl *experiments.Table, id, tsvDir, jsonDir string) error {
	if tsvDir != "" {
		if err := writeArtifact(tsvDir, id, ".tsv", []byte(tbl.TSV())); err != nil {
			return err
		}
	}
	if jsonDir != "" {
		data, err := tbl.JSON()
		if err == nil {
			err = writeArtifact(jsonDir, id, ".json", data)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHTML(path string, opts experiments.Options, start time.Time, collected []*experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	meta := experiments.ReportMeta{
		Title:     "OMEGA reproduction report (IISWC 2018)",
		Options:   opts,
		Generated: time.Now(),
		Runtime:   time.Since(start).Round(time.Millisecond),
	}
	return experiments.WriteHTMLReport(f, meta, collected)
}

// writeArtifact stores one experiment rendering under dir.
func writeArtifact(dir, id, ext string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(strings.ToLower(id), " ", "_") + ext
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}
