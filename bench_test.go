package omega

// This file holds the benchmark harness of DESIGN.md §4: one testing.B
// benchmark per paper table/figure (plus the ablations). Each benchmark
// regenerates its artifact and reports the artifact's headline number as
// a custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation and prints the measured shape next to wall-clock cost.
//
// Benchmarks default to a reduced scale (2^12 vertices) so the full sweep
// finishes quickly; set -benchtime=1x for single runs.

import (
	"strconv"
	"strings"
	"testing"

	"omega/internal/experiments"
)

// benchOpts is the shared reduced-scale configuration.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 12, Seed: 42, Coverage: 0.20}
}

// lastNoteMetric extracts the first float in the final note of a table —
// the convention the runners use for their headline number.
func lastNoteMetric(t *experiments.Table) (float64, bool) {
	for i := len(t.Notes) - 1; i >= 0; i-- {
		for _, f := range strings.Fields(strings.NewReplacer(
			"x", "", "%", "", "(", "", ")", "", ",", "").Replace(t.Notes[i])) {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func runExperimentBench(b *testing.B, run func(experiments.Options) *experiments.Table, metric string) {
	b.Helper()
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = run(benchOpts())
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	if metric != "" {
		if v, ok := lastNoteMetric(tbl); ok {
			b.ReportMetric(v, metric)
		}
	}
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// --- Tables ---

func BenchmarkTable1Datasets(b *testing.B) {
	runExperimentBench(b, experiments.Table1, "")
}

func BenchmarkTable2Algorithms(b *testing.B) {
	runExperimentBench(b, experiments.Table2, "")
}

func BenchmarkTable3Testbed(b *testing.B) {
	runExperimentBench(b, experiments.Table3, "")
}

func BenchmarkTable4AreaPower(b *testing.B) {
	runExperimentBench(b, experiments.Table4, "")
}

// --- Figures ---

func BenchmarkFigure3TMAM(b *testing.B) {
	// Headline: average memory-bound % (paper ~71%).
	runExperimentBench(b, experiments.Figure3, "mem-bound-%")
}

func BenchmarkFigure4aHitRates(b *testing.B) {
	runExperimentBench(b, experiments.Figure4a, "")
}

func BenchmarkFigure4bTopAccess(b *testing.B) {
	// Headline: paper says >75% of vtxProp accesses hit the top 20%.
	runExperimentBench(b, experiments.Figure4b, "paper-threshold-%")
}

func BenchmarkFigure5Heatmap(b *testing.B) {
	runExperimentBench(b, experiments.Figure5, "")
}

func BenchmarkFigure14Speedup(b *testing.B) {
	// Headline: geometric-mean OMEGA speedup (paper: 2x).
	runExperimentBench(b, experiments.Figure14, "geomean-speedup")
}

func BenchmarkFigure15HitRate(b *testing.B) {
	runExperimentBench(b, experiments.Figure15, "")
}

func BenchmarkFigure16DRAMBandwidth(b *testing.B) {
	// Headline: average utilization improvement (paper: 2.28x).
	runExperimentBench(b, experiments.Figure16, "avg-improvement")
}

func BenchmarkFigure17OnChipTraffic(b *testing.B) {
	// Headline: average traffic reduction (paper: ~3.2x).
	runExperimentBench(b, experiments.Figure17, "avg-reduction")
}

func BenchmarkFigure18NonPowerLaw(b *testing.B) {
	runExperimentBench(b, experiments.Figure18, "")
}

func BenchmarkFigure19SPSensitivity(b *testing.B) {
	runExperimentBench(b, experiments.Figure19, "")
}

func BenchmarkFigure20LargeGraphs(b *testing.B) {
	runExperimentBench(b, experiments.Figure20, "")
}

func BenchmarkFigure21Energy(b *testing.B) {
	// Headline: average energy saving (paper: 2.5x).
	runExperimentBench(b, experiments.Figure21, "avg-saving")
}

// --- Ablations ---

func BenchmarkAblationScratchpadOnly(b *testing.B) {
	runExperimentBench(b, experiments.AblationScratchpadOnly, "")
}

func BenchmarkAblationAtomicOverhead(b *testing.B) {
	runExperimentBench(b, experiments.AblationAtomicOverhead, "")
}

func BenchmarkAblationReordering(b *testing.B) {
	runExperimentBench(b, experiments.AblationReordering, "")
}

func BenchmarkAblationChunkMapping(b *testing.B) {
	runExperimentBench(b, experiments.AblationChunkMapping, "")
}

func BenchmarkAblationLockedCache(b *testing.B) {
	runExperimentBench(b, experiments.AblationLockedCache, "")
}

func BenchmarkAblationPrefetcher(b *testing.B) {
	runExperimentBench(b, experiments.AblationPrefetcher, "")
}

// --- Extensions (paper §VII / §IX future-work directions) ---

func BenchmarkExtensionSlicing(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionSlicing, "")
}

func BenchmarkExtensionDynamicGraph(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionDynamicGraph, "")
}

func BenchmarkExtensionPagePolicy(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionPagePolicy, "")
}

func BenchmarkExtensionGraphMat(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionGraphMat, "")
}

func BenchmarkExtensionScaleRobustness(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionScaleRobustness, "")
}

func BenchmarkExtensionSeedSensitivity(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionSeedSensitivity, "")
}

func BenchmarkExtensionTraversalDirection(b *testing.B) {
	runExperimentBench(b, experiments.ExtensionTraversalDirection, "")
}

// --- Resilience ---

func BenchmarkResilienceInjection(b *testing.B) {
	runExperimentBench(b, experiments.RunResilience, "speedup-under-faults")
}

// --- Microbenchmarks of the primary building blocks ---

func BenchmarkSimulatePageRankBaseline(b *testing.B) {
	g := ReorderByInDegree(RMAT(12, 42))
	spec, _ := AlgorithmByName("PageRank")
	baseCfg, _ := ScaledConfigs(g, spec.VtxPropBytes, 0.20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(baseCfg)
		spec.Run(NewFramework(m, g))
	}
}

func BenchmarkSimulatePageRankOMEGA(b *testing.B) {
	g := ReorderByInDegree(RMAT(12, 42))
	spec, _ := AlgorithmByName("PageRank")
	_, omCfg := ScaledConfigs(g, spec.VtxPropBytes, 0.20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(omCfg)
		spec.Run(NewFramework(m, g))
	}
}

func BenchmarkGraphGenerationRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(12, uint64(i))
	}
}

func BenchmarkReorderInDegree(b *testing.B) {
	g := RMAT(12, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReorderByInDegree(g)
	}
}
