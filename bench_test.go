package omega

// This file holds the benchmark harness of DESIGN.md §4: one testing.B
// benchmark per paper table/figure (plus the ablations). Each benchmark
// regenerates its artifact and reports the artifact's headline number as
// a custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation and prints the measured shape next to wall-clock cost.
//
// Benchmarks default to a reduced scale (2^12 vertices) so the full sweep
// finishes quickly; set -benchtime=1x for single runs.

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"omega/internal/experiments"
)

// benchOpts is the shared reduced-scale configuration.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 12, Seed: 42, Coverage: 0.20}
}

// lastNoteMetric extracts the first float in the final note of a table —
// the convention the runners use for their headline number.
func lastNoteMetric(t *experiments.Table) (float64, bool) {
	for i := len(t.Notes) - 1; i >= 0; i-- {
		for _, f := range strings.Fields(strings.NewReplacer(
			"x", "", "%", "", "(", "", ")", "", ",", "").Replace(t.Notes[i])) {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// runExperimentBench resolves the runner from experiments.Registry() by
// artifact ID, so the benchmark sweep can never drift from the suite.
func runExperimentBench(b *testing.B, id string, metric string) {
	b.Helper()
	spec, ok := experiments.SpecByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = spec.Run(benchOpts())
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	if metric != "" {
		if v, ok := lastNoteMetric(tbl); ok {
			b.ReportMetric(v, metric)
		}
	}
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// --- Tables ---

func BenchmarkTable1Datasets(b *testing.B) {
	runExperimentBench(b, "Table I", "")
}

func BenchmarkTable2Algorithms(b *testing.B) {
	runExperimentBench(b, "Table II", "")
}

func BenchmarkTable3Testbed(b *testing.B) {
	runExperimentBench(b, "Table III", "")
}

func BenchmarkTable4AreaPower(b *testing.B) {
	runExperimentBench(b, "Table IV", "")
}

// --- Figures ---

func BenchmarkFigure3TMAM(b *testing.B) {
	// Headline: average memory-bound % (paper ~71%).
	runExperimentBench(b, "Figure 3", "mem-bound-%")
}

func BenchmarkFigure4aHitRates(b *testing.B) {
	runExperimentBench(b, "Figure 4a", "")
}

func BenchmarkFigure4bTopAccess(b *testing.B) {
	// Headline: paper says >75% of vtxProp accesses hit the top 20%.
	runExperimentBench(b, "Figure 4b", "paper-threshold-%")
}

func BenchmarkFigure5Heatmap(b *testing.B) {
	runExperimentBench(b, "Figure 5", "")
}

func BenchmarkFigure14Speedup(b *testing.B) {
	// Headline: geometric-mean OMEGA speedup (paper: 2x).
	runExperimentBench(b, "Figure 14", "geomean-speedup")
}

func BenchmarkFigure15HitRate(b *testing.B) {
	runExperimentBench(b, "Figure 15", "")
}

func BenchmarkFigure16DRAMBandwidth(b *testing.B) {
	// Headline: average utilization improvement (paper: 2.28x).
	runExperimentBench(b, "Figure 16", "avg-improvement")
}

func BenchmarkFigure17OnChipTraffic(b *testing.B) {
	// Headline: average traffic reduction (paper: ~3.2x).
	runExperimentBench(b, "Figure 17", "avg-reduction")
}

func BenchmarkFigure18NonPowerLaw(b *testing.B) {
	runExperimentBench(b, "Figure 18", "")
}

func BenchmarkFigure19SPSensitivity(b *testing.B) {
	runExperimentBench(b, "Figure 19", "")
}

func BenchmarkFigure20LargeGraphs(b *testing.B) {
	runExperimentBench(b, "Figure 20", "")
}

func BenchmarkFigure21Energy(b *testing.B) {
	// Headline: average energy saving (paper: 2.5x).
	runExperimentBench(b, "Figure 21", "avg-saving")
}

// --- Ablations ---

func BenchmarkAblationScratchpadOnly(b *testing.B) {
	runExperimentBench(b, "Ablation A1", "")
}

func BenchmarkAblationAtomicOverhead(b *testing.B) {
	runExperimentBench(b, "Ablation A2", "")
}

func BenchmarkAblationReordering(b *testing.B) {
	runExperimentBench(b, "Ablation A3", "")
}

func BenchmarkAblationChunkMapping(b *testing.B) {
	runExperimentBench(b, "Ablation A4", "")
}

func BenchmarkAblationLockedCache(b *testing.B) {
	runExperimentBench(b, "Ablation A5", "")
}

func BenchmarkAblationPrefetcher(b *testing.B) {
	runExperimentBench(b, "Ablation A6", "")
}

// --- Extensions (paper §VII / §IX future-work directions) ---

func BenchmarkExtensionSlicing(b *testing.B) {
	runExperimentBench(b, "Extension E1", "")
}

func BenchmarkExtensionDynamicGraph(b *testing.B) {
	runExperimentBench(b, "Extension E2", "")
}

func BenchmarkExtensionPagePolicy(b *testing.B) {
	runExperimentBench(b, "Extension E3", "")
}

func BenchmarkExtensionGraphMat(b *testing.B) {
	runExperimentBench(b, "Extension E4", "")
}

func BenchmarkExtensionScaleRobustness(b *testing.B) {
	runExperimentBench(b, "Extension E5", "")
}

func BenchmarkExtensionSeedSensitivity(b *testing.B) {
	runExperimentBench(b, "Extension E6", "")
}

func BenchmarkExtensionTraversalDirection(b *testing.B) {
	runExperimentBench(b, "Extension E7", "")
}

// --- Resilience ---

func BenchmarkResilienceInjection(b *testing.B) {
	runExperimentBench(b, "Resilience R1", "speedup-under-faults")
}

// --- Suite-level benchmarks (worker pool + shared dataset cache) ---

// runSuiteBench measures a full-registry suite run at the given pool
// size. Scale 11 keeps one iteration short enough to sweep.
func runSuiteBench(b *testing.B, parallelism int) {
	b.Helper()
	var res *experiments.SuiteResult
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Scale = 11
		o.Parallelism = parallelism
		res = experiments.Suite(context.Background(), experiments.Registry(), o, nil)
		if failed := res.Failed(); failed != 0 {
			b.Fatalf("%d experiments failed", failed)
		}
	}
	if hits, misses := suiteCacheTotals(res); hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses)*100, "cache-hit-%")
	}
}

// suiteCacheTotals sums the per-experiment cache telemetry.
func suiteCacheTotals(res *experiments.SuiteResult) (hits, misses uint64) {
	for _, te := range res.Telemetry {
		hits += te.CacheHits
		misses += te.CacheMisses
	}
	return hits, misses
}

func BenchmarkSuiteSequential(b *testing.B) {
	runSuiteBench(b, 1)
}

func BenchmarkSuiteParallel(b *testing.B) {
	runSuiteBench(b, runtime.GOMAXPROCS(0))
}

// --- Microbenchmarks of the primary building blocks ---

func BenchmarkSimulatePageRankBaseline(b *testing.B) {
	g := ReorderByInDegree(RMAT(12, 42))
	spec, _ := AlgorithmByName("PageRank")
	baseCfg, _ := ScaledConfigs(g, spec.VtxPropBytes, 0.20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(baseCfg)
		spec.Run(NewFramework(m, g))
	}
}

func BenchmarkSimulatePageRankOMEGA(b *testing.B) {
	g := ReorderByInDegree(RMAT(12, 42))
	spec, _ := AlgorithmByName("PageRank")
	_, omCfg := ScaledConfigs(g, spec.VtxPropBytes, 0.20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(omCfg)
		spec.Run(NewFramework(m, g))
	}
}

func BenchmarkGraphGenerationRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(12, uint64(i))
	}
}

func BenchmarkReorderInDegree(b *testing.B) {
	g := RMAT(12, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReorderByInDegree(g)
	}
}
