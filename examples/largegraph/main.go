// Large-graph study (paper Figure 20 and §VII): when a graph's hot set no
// longer fits in the scratchpads — uk-2002 needs 42 MB for its top 20%,
// twitter-2010 needs 64 MB against 16 MB of scratchpad — OMEGA still wins
// by storing whatever prefix of the most-connected vertices fits. This
// example runs the paper's high-level analytical model across coverage
// levels, plus the skew curve that explains why partial coverage works.
package main

import (
	"fmt"

	"omega"
	"omega/internal/analytical"
	"omega/internal/graph"
)

func main() {
	// The access-skew curve on a generatable web-like graph: X% of the
	// hottest vertices cover Y% of vtxProp accesses (paper: 5% of twitter
	// covers 47%; 10% of lj covers 60.3%).
	g := omega.ReorderByInDegree(omega.RMAT(13, 42))
	cum := graph.CumulativeDegreeShare(g)
	fmt.Println("access-skew curve (RMAT stand-in):")
	for _, pct := range []int{5, 10, 20, 50} {
		fmt.Printf("  top %2d%% of vertices -> %.0f%% of in-edge accesses\n",
			pct, 100*cum[pct-1])
	}

	// The paper's high-level model on the two datasets gem5 could not
	// simulate.
	m := analytical.DefaultModel()
	fmt.Println("\nFigure 20 scenarios (paper's high-level model):")
	for _, p := range []analytical.Params{
		analytical.PageRankScenario("uk-2002 / PageRank", 18.5e6, 298e6, 0.10, 0.60, 0.40),
		analytical.PageRankScenario("twitter / PageRank", 41.6e6, 1468e6, 0.05, 0.47, 0.35),
		analytical.BFSScenario("uk-2002 / BFS", 18.5e6, 298e6, 0.10, 0.60, 0.40),
		analytical.BFSScenario("twitter / BFS", 41.6e6, 1468e6, 0.05, 0.47, 0.35),
	} {
		r := m.Estimate(p)
		fmt.Printf("  %-20s coverage %3.0f%%  hot-share %3.0f%%  speedup %.2fx\n",
			p.Name, 100*p.HotCoverage, 100*p.HotAccessShare, r.Speedup())
	}
	fmt.Println("\npaper: 1.68x for twitter PageRank storing only 5% of vtxProp;")
	fmt.Println("the skew is why small specialized storage keeps paying off.")
}
