// Road-network counterpoint (paper Figure 18): OMEGA's benefit depends on
// the power-law skew. A planar road network spreads its edges almost
// uniformly, so pinning 20% of its vertices in scratchpads captures only
// ~20% of the accesses — and the speedup largely evaporates.
package main

import (
	"fmt"
	"log"

	"omega"
)

func main() {
	social := omega.ReorderByInDegree(omega.SocialGraph(1<<13, 11))
	road := omega.ReorderByInDegree(omega.RoadGraph(90, 11))

	fmt.Printf("%-8s %-10s %-9s %-22s\n", "graph", "power-law", "speedup", "top-20% in-deg share")
	for _, g := range []*omega.Graph{social, road} {
		s := omega.Characterize(g)
		cmp, err := omega.Compare("PageRank", g, 0.20)
		if err != nil {
			log.Fatal(err)
		}
		name := "social"
		if !s.PowerLaw {
			name = "road"
		}
		fmt.Printf("%-8s %-10v %-9.2f %.0f%%\n",
			name, s.PowerLaw, cmp.Speedup(), s.InDegreeConnectivity)
	}

	fmt.Println("\npaper: the USA road graph gains at most 1.15x, while lj gains 2-3x —")
	fmt.Println("OMEGA is an architecture for natural (power-law) graphs.")
}
