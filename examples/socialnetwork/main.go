// Social-network study: run the traversal and analytics algorithms the
// paper's introduction motivates (ranking, reachability, communities) on
// a preferential-attachment graph and report the Figure 14/15-style
// results — speedups and last-level storage hit rates per algorithm.
package main

import (
	"fmt"
	"log"

	"omega"
)

func main() {
	const n = 1 << 13
	g := omega.ReorderByInDegree(omega.SocialGraph(n, 7))
	s := omega.Characterize(g)
	fmt.Printf("social graph: %d vertices, %d edges, top-20%% in-degree share %.0f%%\n\n",
		s.NumVertices, s.NumEdges, s.InDegreeConnectivity)

	fmt.Printf("%-10s %-9s %-14s %-14s %-10s\n",
		"algorithm", "speedup", "baseline LLC%", "omega LLC+SP%", "PISC ops")
	for _, name := range []string{"PageRank", "BFS", "SSSP", "BC", "Radii"} {
		cmp, err := omega.Compare(name, g, 0.20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-9.2f %-14.1f %-14.1f %-10d\n",
			name, cmp.Speedup(),
			100*cmp.Baseline.LLCHitRate, 100*cmp.OMEGA.LLCHitRate,
			cmp.OMEGA.PISCOps)
	}

	fmt.Println("\nThe scratchpads serve the hottest vertices at word granularity and the")
	fmt.Println("PISC engines absorb the atomic updates — the paper's Figure 14/15 story.")
}
