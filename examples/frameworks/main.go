// Framework independence (paper §V.F): the same pair of machines runs two
// different graph frameworks — the Ligra-style frontier framework and a
// GraphMat-style SPMV framework — and OMEGA accelerates both without any
// change to either programming interface. On the baseline, GraphMat's
// partitioned gather issues zero atomics; on OMEGA, its translated reduce
// is offloaded to the PISC engines just like Ligra's atomic updates.
package main

import (
	"fmt"
	"log"
	"math"

	"omega"
	"omega/internal/algorithms"
	"omega/internal/core"
	"omega/internal/graphmat"
	"omega/internal/ligra"
)

func main() {
	g := omega.ReorderByInDegree(omega.RMAT(13, 42))

	// Ligra-style PageRank (push with atomic fp-adds).
	spec, _ := omega.AlgorithmByName("PageRank")
	lBase, lOm := core.ScaledPair(g.NumVertices(), spec.VtxPropBytes, 0.20)
	mb := core.NewMachine(lBase)
	ligraBase := spec.Run(ligra.New(mb, g))
	mo := core.NewMachine(lOm)
	ligraOm := spec.Run(ligra.New(mo, g))

	// GraphMat-style PageRank (scatter/reduce/apply; 16 B/vertex since it
	// carries a message accumulator alongside the rank).
	gBase, gOm := core.ScaledPair(g.NumVertices(), 16, 0.20)
	gmb := core.NewMachine(gBase)
	ranksBase := graphmat.RunPageRank(gmb, g, 1, 0.85)
	gmo := core.NewMachine(gOm)
	ranksOm := graphmat.RunPageRank(gmo, g, 1, 0.85)

	// Both frameworks compute the same answer...
	ref := algorithms.ReferencePageRank(g, 1, 0.85)
	for v := range ref {
		if math.Abs(ranksBase[v]-ref[v]) > 1e-9 || math.Abs(ranksOm[v]-ref[v]) > 1e-9 {
			log.Fatalf("graphmat rank[%d] diverged from reference", v)
		}
	}
	fmt.Println("both frameworks match the reference PageRank exactly")

	gmBaseSt, gmOmSt := gmb.Stats(), gmo.Stats()
	fmt.Printf("\n%-16s %-9s %-16s %-10s\n", "framework", "speedup", "baseline atomics", "PISC ops")
	fmt.Printf("%-16s %-9.2f %-16d %-10d\n", "ligra-style",
		ligraOm.Speedup(ligraBase), ligraBase.Atomics, ligraOm.PISCOps)
	fmt.Printf("%-16s %-9.2f %-16d %-10d\n", "graphmat-style",
		gmOmSt.Speedup(gmBaseSt), gmBaseSt.Atomics, gmOmSt.PISCOps)

	fmt.Println("\npaper §V.F: the translation tool was applied to GraphMat in addition")
	fmt.Println("to Ligra — OMEGA is a memory subsystem, not a framework feature.")
}
