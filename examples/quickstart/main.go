// Quickstart: generate a power-law graph, reorder it for OMEGA's static
// vertex placement, and run PageRank on both the baseline CMP and the
// OMEGA machine — the paper's headline comparison in ~20 lines.
package main

import (
	"fmt"
	"log"

	"omega"
)

func main() {
	// 1. A natural (power-law) graph: R-MAT with 2^13 vertices.
	g := omega.RMAT(13, 42)
	stats := omega.Characterize(g)
	fmt.Printf("graph: %d vertices, %d edges, power-law=%v (top-20%% holds %.0f%% of in-edges)\n",
		stats.NumVertices, stats.NumEdges, stats.PowerLaw, stats.InDegreeConnectivity)

	// 2. OMEGA's offline preprocessing (paper §VI): in-degree reordering
	// so the most-connected vertices get the lowest IDs.
	g = omega.ReorderByInDegree(g)

	// 3. Run PageRank on a same-total-storage baseline/OMEGA pair whose
	// scratchpads hold the hottest 20% of vertex data.
	cmp, err := omega.Compare("PageRank", g, 0.20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- baseline CMP ---")
	fmt.Print(cmp.Baseline.Summary())
	fmt.Println("\n--- OMEGA ---")
	fmt.Print(cmp.OMEGA.Summary())

	fmt.Printf("\nspeedup:            %.2fx (paper: ~2.8x for PageRank)\n", cmp.Speedup())
	fmt.Printf("traffic reduction:  %.2fx (paper: ~3.2x)\n", cmp.TrafficReduction())
	fmt.Printf("energy saving:      %.2fx (paper: ~2.5x)\n", cmp.EnergySaving())

	// 4. Look inside via the observability layer: Compare records both
	// runs' per-iteration metric series (the same stream omega-bench
	// -metrics writes). This supersedes poking at LevelProfile() maps.
	offloads := uint64(0)
	for _, s := range cmp.Series() {
		if s.Machine == "omega" && s.Component == "machine" && s.Name == "offloads" {
			offloads = s.Value // cumulative; the last sample is the total
		}
	}
	fmt.Printf("PISC offloads:      %d (from Comparison.Series)\n", offloads)
}
